// compll_tool — the CompLL toolkit as a command-line program.
//
//   compll_tool list                 list the built-in DSL algorithms
//   compll_tool show <alg>           print an algorithm's DSL source
//   compll_tool gen  <alg>           generate its C++ implementation
//   compll_tool gen  <file.cll>      generate C++ from a DSL file
//   compll_tool run  <alg|file.cll>  interpret: round-trip a random
//                                    gradient and report size/error
//
// This is the paper's developer workflow: write ~25 lines of DSL, let the
// toolkit generate the optimized kernels and wire them into the framework.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/compll/builtin_algorithms.h"
#include "src/compll/codegen.h"
#include "src/compll/dsl_compressor.h"
#include "src/tensor/tensor.h"

using namespace hipress;
using namespace hipress::compll;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: compll_tool list\n"
               "       compll_tool show <algorithm>\n"
               "       compll_tool gen  <algorithm | file.cll>\n"
               "       compll_tool run  <algorithm | file.cll>\n");
  return 2;
}

// Resolves an argument to DSL source: built-in algorithm name or .cll path.
bool LoadSource(const std::string& arg, std::string* source,
                std::string* name, bool* is_sparse) {
  if (const DslAlgorithm* algorithm = FindDslAlgorithm(arg)) {
    *source = algorithm->source;
    *name = algorithm->algorithm;
    *is_sparse = algorithm->is_sparse;
    return true;
  }
  std::ifstream file(arg);
  if (!file.good()) {
    std::fprintf(stderr, "error: no built-in algorithm or file named '%s'\n",
                 arg.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  *source = buffer.str();
  std::string base = arg;
  if (const size_t slash = base.rfind('/'); slash != std::string::npos) {
    base = base.substr(slash + 1);
  }
  if (const size_t dot = base.rfind('.'); dot != std::string::npos) {
    base = base.substr(0, dot);
  }
  *name = base;
  // Heuristic: programs using scatter produce sparse payloads.
  *is_sparse = source->find("scatter(") != std::string::npos;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string command = argv[1];

  if (command == "list") {
    std::printf("%-14s %-10s %6s  %s\n", "name", "kind", "LoC",
                "registry id");
    for (const DslAlgorithm& algorithm : BuiltinDslAlgorithms()) {
      std::printf("%-14s %-10s %6d  %s\n", algorithm.algorithm.c_str(),
                  algorithm.is_sparse ? "sparse" : "quantize",
                  CountDslLines(algorithm.source), algorithm.name.c_str());
    }
    return 0;
  }

  if (argc < 3) {
    return Usage();
  }
  std::string source;
  std::string name;
  bool is_sparse = false;
  if (!LoadSource(argv[2], &source, &name, &is_sparse)) {
    return 1;
  }

  if (command == "show") {
    std::printf("%s", source.c_str());
    return 0;
  }

  if (command == "gen") {
    CodegenOptions options;
    options.algorithm_name = name;
    auto generated = GenerateCppFromSource(source, options);
    if (!generated.ok()) {
      std::fprintf(stderr, "codegen failed: %s\n",
                   generated.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", generated->c_str());
    return 0;
  }

  if (command == "run") {
    CompressorParams params;
    params.sparsity_ratio = 0.01;
    auto codec = DslCompressor::Create(name, source, is_sparse, params);
    if (!codec.ok()) {
      std::fprintf(stderr, "compile failed: %s\n",
                   codec.status().ToString().c_str());
      return 1;
    }
    Rng rng(7);
    Tensor gradient("probe", 64 * 1024);
    gradient.FillGaussian(rng);
    ByteBuffer encoded;
    if (auto status = (*codec)->Encode(gradient.span(), &encoded);
        !status.ok()) {
      std::fprintf(stderr, "encode failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::vector<float> decoded(gradient.size());
    if (auto status = (*codec)->Decode(encoded, decoded); !status.ok()) {
      std::fprintf(stderr, "decode failed: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("algorithm:  %s (%s)\n", name.c_str(),
                is_sparse ? "sparsification" : "quantization");
    std::printf("input:      %s (%zu elements)\n",
                HumanBytes(gradient.byte_size()).c_str(), gradient.size());
    std::printf("compressed: %s (rate %.4f)\n",
                HumanBytes(encoded.size()).c_str(),
                static_cast<double>(encoded.size()) / gradient.byte_size());
    std::printf("rms error:  %.5f\n",
                RmsDiff(gradient.span(), std::span<const float>(decoded)));
    return 0;
  }

  return Usage();
}
