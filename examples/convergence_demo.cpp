// convergence_demo — Figure 13 in miniature: train the same (real) model
// with and without gradient compression through the real CaSync dataflow
// and watch both reach the same accuracy, with the compressed run cheaper
// per iteration.
//
//   convergence_demo [algorithm]   (default: onebit; any registry name,
//                                   including DSL-built "dsl-terngrad")
#include <cstdio>
#include <string>

#include "src/hipress/hipress.h"
#include "src/minidnn/dist_trainer.h"

using namespace hipress;

int main(int argc, char** argv) {
  const std::string algorithm = argc > 1 ? argv[1] : "onebit";
  // DSL-authored algorithms participate through the same registry.
  if (auto status = RegisterDslAlgorithms(); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  auto make_config = [&](const std::string& name) {
    DistTrainConfig config;
    config.num_workers = 4;
    config.batch_per_worker = 32;
    config.learning_rate = 0.05f;
    config.momentum = 0.9f;
    config.algorithm = name;
    config.codec_params.sparsity_ratio = 0.25;
    config.codec_params.bitwidth = 4;
    return config;
  };

  std::printf("4 workers x batch 32, synthetic 4-class task, PS topology\n");
  std::printf("%-6s %16s %16s\n", "step", "baseline acc",
              (algorithm + " acc").c_str());

  auto baseline = DistTrainer::Create(make_config(""));
  auto compressed = DistTrainer::Create(make_config(algorithm));
  if (!baseline.ok() || !compressed.ok()) {
    std::fprintf(stderr, "setup failed: %s / %s\n",
                 baseline.status().ToString().c_str(),
                 compressed.status().ToString().c_str());
    return 1;
  }
  auto baseline_result = (*baseline)->Train(150, 10, 0.95);
  auto compressed_result = (*compressed)->Train(150, 10, 0.95);
  if (!baseline_result.ok() || !compressed_result.ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }
  for (size_t i = 0; i < baseline_result->curve.size(); ++i) {
    std::printf("%-6d %15.1f%% %15.1f%%\n", baseline_result->curve[i].step,
                baseline_result->curve[i].accuracy * 100.0,
                compressed_result->curve[i].accuracy * 100.0);
  }
  std::printf("\nsteps to 95%%: baseline %d, %s %d\n",
              baseline_result->steps_to_target, algorithm.c_str(),
              compressed_result->steps_to_target);
  std::printf("(with compression each step ships a fraction of the bytes —\n"
              " see bench_fig13 for the combined wall-clock picture)\n");
  return 0;
}
