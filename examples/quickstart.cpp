// Quickstart: the three layers of HiPress in ~100 lines.
//
//   1. Compress a gradient with each built-in algorithm (CompLL library).
//   2. Synchronize real tensors across simulated workers (CaSync dataflow).
//   3. Simulate distributed training end to end and read the metrics.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "src/casync/dataflow.h"
#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/compress/registry.h"
#include "src/hipress/hipress.h"

using namespace hipress;

int main() {
  // ------------------------------------------------------------------
  // 1. Gradient compression: encode/decode a 4M-element gradient.
  // ------------------------------------------------------------------
  std::printf("== 1. compression codecs ==\n");
  Rng rng(42);
  Tensor gradient("fc6", 4 << 20);
  gradient.FillGaussian(rng);

  for (const char* name : {"onebit", "tbq", "terngrad", "dgc", "graddrop"}) {
    CompressorParams params;
    params.sparsity_ratio = 0.001;  // DGC/GradDrop keep 0.1%
    auto codec = CreateCompressor(name, params);
    if (!codec.ok()) {
      std::printf("  %s: %s\n", name, codec.status().ToString().c_str());
      return 1;
    }
    ByteBuffer encoded;
    if (auto status = (*codec)->Encode(gradient.span(), &encoded);
        !status.ok()) {
      std::printf("  %s: %s\n", name, status.ToString().c_str());
      return 1;
    }
    std::vector<float> decoded(gradient.size());
    (void)(*codec)->Decode(encoded, decoded);
    std::printf("  %-9s %9s -> %9s (%5.2f%%), rms error %.4f\n", name,
                HumanBytes(gradient.byte_size()).c_str(),
                HumanBytes(encoded.size()).c_str(),
                100.0 * encoded.size() / gradient.byte_size(),
                RmsDiff(gradient.span(), std::span<const float>(decoded)));
  }

  // ------------------------------------------------------------------
  // 2. CaSync dataflow: 4 workers, real tensors, PS with onebit.
  // ------------------------------------------------------------------
  std::printf("\n== 2. compressed gradient synchronization (PS, 4 workers) ==\n");
  auto codec = CreateCompressor("onebit");
  std::vector<Tensor> worker_grads;
  for (int w = 0; w < 4; ++w) {
    Rng worker_rng(100 + w);
    Tensor tensor("layer0", 1024);
    tensor.FillGaussian(worker_rng);
    worker_grads.push_back(std::move(tensor));
  }
  DataflowRunner runner(StrategyKind::kPs, codec->get());
  auto outputs = runner.Run(worker_grads, /*partitions=*/2);
  if (!outputs.ok()) {
    std::printf("  sync failed: %s\n", outputs.status().ToString().c_str());
    return 1;
  }
  Tensor exact("exact", 1024);
  for (const Tensor& grad : worker_grads) {
    exact.Add(grad);
  }
  std::printf("  replicas identical: %s\n",
              MaxAbsDiff((*outputs)[0].span(), (*outputs)[3].span()) == 0.0
                  ? "yes"
                  : "NO");
  std::printf("  rms vs exact sum:   %.4f (onebit is lossy; error feedback "
              "recovers it across steps)\n",
              RmsDiff((*outputs)[0].span(), exact.span()));

  // ------------------------------------------------------------------
  // 3. End-to-end training simulation: Bert-large on 16 nodes.
  // ------------------------------------------------------------------
  std::printf("\n== 3. training simulation (Bert-large, 128 GPUs) ==\n");
  for (const char* system : {"ring", "hipress-ps"}) {
    HiPressOptions options;
    options.model = "bert-large";
    options.system = system;
    options.algorithm = "onebit";
    options.cluster = ClusterSpec::Ec2(16);
    auto result = RunTrainingSimulation(options);
    if (!result.ok()) {
      std::printf("  %s: %s\n", system, result.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-12s %8.0f sequences/s, scaling efficiency %.2f, "
                "iteration %.1f ms\n",
                system, result->report.throughput,
                result->report.scaling_efficiency,
                ToMillis(result->report.iteration_time));
  }
  std::printf("\nSee examples/compll_tool.cpp for the DSL toolkit and\n"
              "examples/train_cluster.cpp for the full simulation CLI.\n");
  return 0;
}
