// custom_algorithm — author a brand-new compression algorithm in CompLL's
// DSL, validate it, register it into the framework, and train through it.
// The paper's extensibility story (Section 4.4) end to end:
//
//   DSL source -> analyzer -> interpreter-backed Compressor -> registry
//   -> error-feedback distributed SGD -> converges.
//
// The algorithm here is Random-K sparsification (examples/algorithms/
// randomk.cll ships the same program as a standalone file for compll_tool).
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/compll/dsl_compressor.h"
#include "src/compress/registry.h"
#include "src/minidnn/dist_trainer.h"

using namespace hipress;
using namespace hipress::compll;

namespace {

constexpr const char* kRandomKDsl = R"DSL(
param EncodeParams {
  float ratio;
}
param DecodeParams {
  float ratio;
}
float keepRatio;

uint1 lottery(float elem) {
  if (random<float>(0, 1) < keepRatio) { return 1; }
  return 0;
}

void encode(float* gradient, uint8* compressed, EncodeParams params) {
  keepRatio = params.ratio;
  int32* idx = findex(gradient, lottery);
  float* vals = gather(gradient, idx);
  compressed = concat(gradient.size, idx.size, idx, vals);
}

void decode(uint8* compressed, float* gradient, DecodeParams params) {
  int32 n = extract<int32>(compressed);
  int32 k = extract<int32>(compressed);
  int32* idx = extract<int32*>(compressed, k);
  float* vals = extract<float*>(compressed, k);
  gradient = scatter(idx, vals, n);
}
)DSL";

}  // namespace

int main() {
  // 1. Compile the DSL program into a Compressor (parses + validates +
  //    probes the compression rate).
  CompressorParams params;
  params.sparsity_ratio = 0.25;
  auto probe =
      DslCompressor::Create("randomk", kRandomKDsl, /*is_sparse=*/true,
                            params);
  if (!probe.ok()) {
    std::fprintf(stderr, "DSL compile failed: %s\n",
                 probe.status().ToString().c_str());
    return 1;
  }
  std::printf("compiled randomk: rate %.3f at ratio %.2f\n",
              (*probe)->CompressionRate(1 << 20), params.sparsity_ratio);

  // 2. Quick functional check.
  Rng rng(11);
  Tensor gradient("g", 10000);
  gradient.FillGaussian(rng);
  ByteBuffer encoded;
  if (!(*probe)->Encode(gradient.span(), &encoded).ok()) {
    return 1;
  }
  std::vector<float> decoded(gradient.size());
  (void)(*probe)->Decode(encoded, decoded);
  size_t kept = 0;
  for (size_t i = 0; i < decoded.size(); ++i) {
    if (decoded[i] != 0.0f) {
      ++kept;
    }
  }
  std::printf("kept %zu / %zu elements (%.1f%%), payload %s\n", kept,
              gradient.size(), 100.0 * kept / gradient.size(),
              HumanBytes(encoded.size()).c_str());

  // 3. Register into the global framework registry (automated
  //    integration), then train with error feedback.
  (void)CompressorRegistry::Instance().Register(
      "randomk", [](const CompressorParams& p) -> std::unique_ptr<Compressor> {
        auto codec = DslCompressor::Create("randomk", kRandomKDsl, true, p);
        return codec.ok() ? std::move(codec).value() : nullptr;
      });

  DistTrainConfig config;
  config.num_workers = 4;
  config.batch_per_worker = 32;
  config.learning_rate = 0.05f;
  config.momentum = 0.9f;
  config.algorithm = "randomk";
  config.codec_params = params;
  auto trainer = DistTrainer::Create(config);
  if (!trainer.ok()) {
    std::fprintf(stderr, "trainer: %s\n",
                 trainer.status().ToString().c_str());
    return 1;
  }
  auto result = (*trainer)->Train(120, 20, 0.9);
  if (!result.ok()) {
    std::fprintf(stderr, "training: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntraining with randomk (4 workers, error feedback):\n");
  for (const TrainCurvePoint& point : result->curve) {
    std::printf("  step %3d  loss %.3f  accuracy %.1f%%\n", point.step,
                point.loss, point.accuracy * 100.0);
  }
  std::printf("final accuracy %.1f%% — a 25%%-density random sparsifier\n"
              "written in ~30 lines of DSL trains to convergence.\n",
              result->final_accuracy * 100.0);
  return 0;
}
