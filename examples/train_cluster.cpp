// train_cluster — simulate data-parallel training of any Table 6 model on a
// configurable cluster and print the evaluation metrics.
//
//   train_cluster [--model vgg19] [--system hipress-ps] [--algorithm onebit]
//                 [--nodes 16] [--cluster ec2|local] [--gbps <bandwidth>]
//                 [--bitwidth N] [--ratio R] [--no-rdma] [--compare]
//                 [--faults SPEC] [--chaos SEED[:EVENTS]]
//                 [--step-report steps.jsonl]
//                 [--iterations N] [--adaptive] [--adaptive-codecs a,b]
//                 [--topology flat|fattree[:RATIO[:HOSTS]]]
//                 [--jobs K] [--placement striped|packed]
//                 [--flight-record out.hpfr] [--health-exit]
//
// --compare runs all systems side by side (a miniature Figure 7/8 panel).
// --step-report writes one JSON object per iteration with the critical-path
// wall-time attribution (docs/OBSERVABILITY.md).
// --faults injects network faults (docs/FAULT_TOLERANCE.md), e.g.
//   --faults "drop=0.01,seed=7"              1% message loss
//   --faults "crash=3@40"                    node 3 dies 40 ms in
//   --faults "degrade=0-1@10-20@0.25"        link 0->1 at 25% bw for 10 ms
//   --faults "standby=3,join=3@60"           node 3 joins the view at 60 ms
//   --faults "crash=2@40,rejoin=2@200"       node 2 crashes, rejoins at 200 ms
// --chaos generates a seeded chaos-soak schedule (interleaved crashes,
// joins, leaves, rejoins and degradation windows) over --nodes; the
// optional :EVENTS suffix sets the event count (default 6). Chaos events
// merge on top of any --faults spec. Two runs with the same seed replay
// bit-identically (docs/FAULT_TOLERANCE.md).
// --adaptive turns on the runtime-adaptive compression controller
// (docs/ADAPTIVE.md); --adaptive-codecs adds candidate codec-ladder rungs
// beyond the configured algorithm, e.g. --adaptive-codecs onebit,tbq.
// Pair with --faults "degrade=..." to watch the controller re-plan.
// --topology selects the network model (docs/TOPOLOGY.md):
//   --topology fattree:3        NIC->ToR->spine, 3:1 oversubscribed
//   --topology fattree:3:8      same, 8 hosts per rack (default 16)
// --jobs K splits the cluster into K concurrent training jobs sharing one
// simulated fabric (docs/TOPOLOGY.md); --placement picks node striping
// across racks (default, adversarial) or packed per-rack blocks. Faults
// are single-job only and are rejected when --jobs > 1.
// --flight-record FILE arms the always-on flight recorder's dump path: a
// fatal error, retry-budget exhaustion, a watchdog trip or normal run end
// writes the per-node black-box rings there; decode with
// tools/flight_decode.py (docs/OBSERVABILITY.md).
// --health-exit exits 3 when a watchdog rule is still tripped at run end.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/common/profiler.h"
#include "src/common/string_util.h"
#include "src/casync/workflow.h"
#include "src/net/fault.h"
#include "src/net/topology.h"
#include "src/train/cluster_job.h"
#include "src/train/trace.h"

using namespace hipress;

namespace {

struct Args {
  std::string model = "bert-large";
  std::string system = "hipress-ps";
  std::string algorithm = "onebit";
  std::string cluster = "ec2";
  int nodes = 16;
  double gbps = 0.0;  // 0 = cluster default
  unsigned bitwidth = 2;
  double ratio = 0.001;
  bool no_rdma = false;
  bool compare = false;
  std::string trace_path;   // --trace out.json: chrome://tracing dump
  std::string faults;       // --faults "drop=0.01,crash=3@40,..."
  std::string step_report;  // --step-report steps.jsonl: per-iteration JSONL
  int iterations = 0;       // --iterations N (0 = trainer default)
  bool chaos = false;       // --chaos SEED[:EVENTS]: seeded soak schedule
  uint64_t chaos_seed = 1;
  int chaos_events = 6;
  bool adaptive = false;
  std::string adaptive_codecs;  // comma-separated extra ladder rungs
  std::string topology;         // flat | fattree[:RATIO[:HOSTS]]
  int jobs = 1;                 // --jobs K: concurrent jobs on one fabric
  std::string placement = "striped";
  std::string flight_record;  // --flight-record FILE: black-box dump path
  bool health_exit = false;   // --health-exit: exit 3 if still tripped
};

bool Parse(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--model") {
      args->model = next();
    } else if (flag == "--system") {
      args->system = next();
    } else if (flag == "--algorithm") {
      args->algorithm = next();
    } else if (flag == "--cluster") {
      args->cluster = next();
    } else if (flag == "--nodes") {
      args->nodes = std::atoi(next());
    } else if (flag == "--gbps") {
      args->gbps = std::atof(next());
    } else if (flag == "--bitwidth") {
      args->bitwidth = static_cast<unsigned>(std::atoi(next()));
    } else if (flag == "--ratio") {
      args->ratio = std::atof(next());
    } else if (flag == "--no-rdma") {
      args->no_rdma = true;
    } else if (flag == "--compare") {
      args->compare = true;
    } else if (flag == "--trace") {
      args->trace_path = next();
    } else if (flag == "--faults") {
      args->faults = next();
    } else if (flag == "--step-report") {
      args->step_report = next();
    } else if (flag == "--iterations") {
      args->iterations = std::atoi(next());
    } else if (flag == "--chaos") {
      args->chaos = true;
      const std::string spec = next();
      const size_t colon = spec.find(':');
      args->chaos_seed = std::strtoull(spec.c_str(), nullptr, 10);
      if (colon != std::string::npos) {
        args->chaos_events = std::atoi(spec.c_str() + colon + 1);
      }
    } else if (flag == "--adaptive") {
      args->adaptive = true;
    } else if (flag == "--adaptive-codecs") {
      args->adaptive_codecs = next();
    } else if (flag == "--topology") {
      args->topology = next();
    } else if (flag == "--jobs") {
      args->jobs = std::atoi(next());
    } else if (flag == "--placement") {
      args->placement = next();
    } else if (flag == "--flight-record") {
      args->flight_record = next();
    } else if (flag == "--health-exit") {
      args->health_exit = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

bool ApplyTopology(const std::string& spec, NetworkConfig* net) {
  if (spec == "flat") {
    net->topology.kind = TopologyKind::kFlat;
    return true;
  }
  if (spec.rfind("fattree", 0) != 0) {
    return false;
  }
  net->topology.kind = TopologyKind::kFatTree;
  size_t colon = spec.find(':');
  if (colon != std::string::npos) {
    net->topology.oversubscription = std::atof(spec.c_str() + colon + 1);
    colon = spec.find(':', colon + 1);
    if (colon != std::string::npos) {
      net->topology.hosts_per_tor = std::atoi(spec.c_str() + colon + 1);
    }
  }
  return net->topology.oversubscription >= 1.0 &&
         net->topology.hosts_per_tor >= 1;
}

void PrintSchedulerHealth(MetricsRegistry& metrics) {
  std::printf(
      "  scheduler: %.0f events, %.2fM events/s, peak depth %.0f, "
      "%.0f pool miss(es)\n",
      metrics.gauge("sim.events_processed").value(),
      metrics.gauge("sim.events_per_wall_second").value() / 1e6,
      metrics.gauge("sim.queue_peak_depth").value(),
      metrics.gauge("sim.sched_pool_misses").value());
}

void PrintReport(const std::string& system, const TrainReport& report,
                 const ModelProfile& profile) {
  std::printf("%-14s %10.0f %s/s   eff %.3f   iter %7.2f ms   "
              "p50/p95/p99 %.2f/%.2f/%.2f ms   tail %6.2f ms   comm %4.1f%%\n",
              system.c_str(), report.throughput,
              profile.sample_unit.c_str(), report.scaling_efficiency,
              ToMillis(report.iteration_time), report.iteration_p50_ms,
              report.iteration_p95_ms, report.iteration_p99_ms,
              ToMillis(report.sync_tail), report.comm_ratio * 100.0);
  if (report.cp_attribution.total() > 0) {
    const CpAttribution& cp = report.cp_attribution;
    std::printf("  critical path: compute %.2f  encode %.2f  merge %.2f  "
                "send %.2f  recv %.2f  decode %.2f  wait %.2f ms\n",
                ToMillis(cp[CpCategory::kCompute]),
                ToMillis(cp[CpCategory::kEncode]),
                ToMillis(cp[CpCategory::kMerge]),
                ToMillis(cp[CpCategory::kSend]),
                ToMillis(cp[CpCategory::kRecv]),
                ToMillis(cp[CpCategory::kDecode]),
                ToMillis(cp[CpCategory::kWait]));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!Parse(argc, argv, &args)) {
    return 2;
  }

  ClusterSpec cluster = args.cluster == "local"
                            ? ClusterSpec::Local(args.nodes)
                            : ClusterSpec::Ec2(args.nodes);
  if (args.gbps > 0) {
    cluster.net.link_bandwidth = Bandwidth::Gbps(args.gbps);
  }
  if (!args.topology.empty() && !ApplyTopology(args.topology, &cluster.net)) {
    std::fprintf(stderr,
                 "--topology: expected flat or fattree[:RATIO[:HOSTS]] with "
                 "RATIO >= 1, got '%s'\n",
                 args.topology.c_str());
    return 2;
  }
  if (!args.faults.empty()) {
    auto faults = ParseFaultSpec(args.faults);
    if (!faults.ok()) {
      std::fprintf(stderr, "--faults: %s\n",
                   faults.status().ToString().c_str());
      return 2;
    }
    cluster.net.faults = *faults;
  }
  if (args.chaos) {
    ChaosOptions chaos;
    chaos.seed = args.chaos_seed;
    chaos.num_nodes = args.nodes;
    chaos.events = args.chaos_events;
    const FaultConfig schedule = MakeChaosSchedule(chaos);
    FaultConfig& faults = cluster.net.faults;
    faults.seed = schedule.seed;
    faults.crashes.insert(faults.crashes.end(), schedule.crashes.begin(),
                          schedule.crashes.end());
    faults.degradations.insert(faults.degradations.end(),
                               schedule.degradations.begin(),
                               schedule.degradations.end());
    faults.membership.insert(faults.membership.end(),
                             schedule.membership.begin(),
                             schedule.membership.end());
    faults.standby_nodes.insert(faults.standby_nodes.end(),
                                schedule.standby_nodes.begin(),
                                schedule.standby_nodes.end());
    std::printf("chaos: seed %llu, %zu crash(es), %zu membership event(s), "
                "%zu degradation window(s), %zu standby\n",
                static_cast<unsigned long long>(args.chaos_seed),
                schedule.crashes.size(), schedule.membership.size(),
                schedule.degradations.size(), schedule.standby_nodes.size());
  }
  CompressorParams params;
  params.bitwidth = args.bitwidth;
  params.sparsity_ratio = args.ratio;

  auto profile = GetModelProfile(args.model);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  std::printf("model %s (%s): %zu gradients, %s total, batch %d %s/GPU\n",
              args.model.c_str(), profile->framework.c_str(),
              profile->num_gradients(),
              HumanBytes(profile->total_bytes()).c_str(),
              profile->batch_per_gpu, profile->sample_unit.c_str());
  std::printf("cluster: %d nodes x %d GPUs (%s), %.0f Gbps", args.nodes,
              cluster.gpus_per_node,
              cluster.platform == GpuPlatform::kV100 ? "V100" : "1080Ti",
              cluster.net.link_bandwidth.bits_per_second / 1e9);
  if (cluster.net.topology.kind == TopologyKind::kFatTree) {
    std::printf(", fat tree %.1f:1 (%d hosts/rack)",
                cluster.net.topology.oversubscription,
                cluster.net.topology.hosts_per_tor);
  }
  std::printf("\n");
  if (!args.compare) {
    if (auto config = MakeSystemConfig(args.system, cluster, args.algorithm);
        config.ok()) {
      std::printf("%s", DescribeStrategy(*config, config->compression).c_str());
    }
  }
  std::printf("\n");

  if (args.jobs > 1) {
    if (args.compare) {
      std::fprintf(stderr, "--jobs and --compare are mutually exclusive\n");
      return 2;
    }
    ClusterJobsOptions copts;
    copts.cluster = cluster;
    copts.placement = args.placement == "packed" ? JobPlacement::kPacked
                                                 : JobPlacement::kStriped;
    copts.observability.flight_dump_path = args.flight_record;
    for (int k = 0; k < args.jobs; ++k) {
      ClusterJobSpec spec;
      spec.model = args.model;
      spec.system = args.system;
      spec.algorithm = args.algorithm;
      spec.codec_params = params;
      if (args.iterations > 0) {
        spec.iterations = args.iterations;
      }
      if (args.adaptive) {
        spec.adaptive.enabled = true;
        for (const std::string& name : Split(args.adaptive_codecs, ',')) {
          if (!name.empty()) {
            spec.adaptive.candidate_algorithms.push_back(name);
          }
        }
      }
      copts.jobs.push_back(spec);
    }
    auto run = RunClusterJobs(copts);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    std::printf("%d jobs (%s placement), %d nodes each:\n", args.jobs,
                args.placement.c_str(),
                args.nodes / args.jobs);
    for (const ClusterJobReport& job : run->jobs) {
      std::printf(
          "%-8s %10.0f %s/s   iter %7.2f ms   send share %4.1f%%\n",
          job.name.c_str(), job.throughput, profile->sample_unit.c_str(),
          ToMillis(job.iteration_time), job.send_share * 100.0);
      if (job.adaptive.enabled) {
        std::printf("  adaptive: %d replan(s), %d codec switch(es), "
                    "final %s\n",
                    job.adaptive.replans, job.adaptive.codec_switches,
                    job.adaptive.final_algorithm.c_str());
      }
    }
    std::printf("sim: %.2f ms simulated in %.0f ms wall, fingerprint "
                "%016llx\n",
                ToMillis(run->sim_time), run->wall_seconds * 1e3,
                static_cast<unsigned long long>(run->replay_fingerprint));
    PrintSchedulerHealth(*run->metrics);
    std::printf("  %s\n", run->health.Summary().c_str());
    if (args.health_exit && !run->health.healthy()) {
      return 3;
    }
    return 0;
  }

  bool unhealthy = false;
  auto run_one = [&](const std::string& system) {
    HiPressOptions options;
    options.model = args.model;
    options.system = system;
    options.algorithm = args.algorithm;
    options.codec_params = params;
    options.cluster = cluster;
    options.disable_rdma =
        args.no_rdma ||
        (system.rfind("byteps", 0) == 0 &&
         cluster.platform == GpuPlatform::kV100);
    options.train.record_timeline = !args.trace_path.empty();
    options.train.observability.flight_dump_path = args.flight_record;
    if (args.iterations > 0) {
      options.train.iterations = args.iterations;
    }
    if (args.adaptive) {
      options.train.adaptive.enabled = true;
      for (const std::string& name : Split(args.adaptive_codecs, ',')) {
        if (!name.empty()) {
          options.train.adaptive.candidate_algorithms.push_back(name);
        }
      }
    }
    auto result = RunTrainingSimulation(options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", system.c_str(),
                   result.status().ToString().c_str());
      std::exit(1);
    }
    PrintReport(system, result->report, *profile);
    const TrainReport& report = result->report;
    if (!args.compare) {
      PrintSchedulerHealth(*report.metrics);
      std::printf("  %s\n", report.health.Summary().c_str());
    }
    unhealthy = unhealthy || !report.health.healthy();
    if (args.adaptive && report.adaptive.enabled) {
      std::printf("  adaptive: %d replan(s), %d codec switch(es), final %s\n",
                  report.adaptive.replans, report.adaptive.codec_switches,
                  report.adaptive.final_algorithm.c_str());
      std::printf("%s", report.adaptive.decision_log.c_str());
    }
    if (!args.faults.empty() || args.chaos) {
      std::printf(
          "  faults: %llu drops, %llu retries, %s retransmitted, "
          "%llu recoveries (%.2f ms)\n",
          static_cast<unsigned long long>(
              report.metrics->counter("net.drops").value()),
          static_cast<unsigned long long>(
              report.metrics->counter("net.retries").value()),
          HumanBytes(report.metrics->counter("net.retransmit_bytes").value())
              .c_str(),
          static_cast<unsigned long long>(report.recoveries),
          ToMillis(report.recovery_time));
      if (report.degraded) {
        std::string failed;
        for (const int node : report.failed_nodes) {
          failed += (failed.empty() ? "" : ",") + std::to_string(node);
        }
        std::printf("  degraded: node(s) %s failed, %d/%d surviving\n",
                    failed.c_str(), report.surviving_nodes, args.nodes);
      }
      if (report.membership.enabled) {
        const MembershipReport& membership = report.membership;
        std::string members;
        for (const int node : membership.final_members) {
          members += (members.empty() ? "" : ",") + std::to_string(node);
        }
        std::printf(
            "  membership: epoch %llu, members [%s], %llu join(s) "
            "%llu leave(s) %llu crash(es) %llu rejoin(s), %llu resync(s) "
            "(%s, %.2f ms), state %s, fingerprint %016llx\n",
            static_cast<unsigned long long>(membership.final_epoch),
            members.c_str(),
            static_cast<unsigned long long>(membership.joins),
            static_cast<unsigned long long>(membership.leaves),
            static_cast<unsigned long long>(membership.crashes),
            static_cast<unsigned long long>(membership.rejoins),
            static_cast<unsigned long long>(membership.resyncs),
            HumanBytes(membership.resync_bytes).c_str(),
            ToMillis(membership.resync_time),
            membership.state_consistent ? "consistent" : "DIVERGED",
            static_cast<unsigned long long>(membership.model_fingerprint));
        std::printf("%s", membership.event_log.c_str());
      }
    }
    if (!args.step_report.empty() && !args.compare) {
      auto status = WriteStepReport(args.step_report, report.steps);
      if (status.ok()) {
        std::printf("wrote %s (%zu iteration records)\n",
                    args.step_report.c_str(), report.steps.size());
      } else {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
      }
    }
    if (!args.trace_path.empty() && !args.compare) {
      // Merged cluster trace: per-node GPU kernel rows plus the
      // network-transfer and coordinator-round spans.
      auto status = WriteTrainReportTrace(args.trace_path, result->report);
      if (status.ok()) {
        std::printf("wrote %s (open in chrome://tracing or ui.perfetto.dev)\n",
                    args.trace_path.c_str());
      } else {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
      }
    }
  };

  if (args.compare) {
    for (const char* system : {"byteps", "ring", "byteps-oss", "ring-oss",
                               "hipress-ps", "hipress-ring"}) {
      run_one(system);
    }
  } else {
    run_one(args.system);
  }
  if (args.health_exit && unhealthy) {
    return 3;
  }
  return 0;
}
