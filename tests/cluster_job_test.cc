#include <gtest/gtest.h>

#include <vector>

#include "src/train/cluster_job.h"

namespace hipress {
namespace {

// A small oversubscribed fat tree where cross-job interference is visible
// but runs stay fast: 8 nodes in 2-host racks, 10 Gbps NICs, 4:1 fabric.
ClusterJobsOptions SmallFatTreeOptions(int nodes, int jobs, int iterations) {
  ClusterJobsOptions options;
  options.cluster = ClusterSpec::Ec2(nodes);
  options.cluster.net.link_bandwidth = Bandwidth::Gbps(10.0);
  options.cluster.net.topology.kind = TopologyKind::kFatTree;
  options.cluster.net.topology.oversubscription = 4.0;
  options.cluster.net.topology.hosts_per_tor = 2;
  options.placement = JobPlacement::kStriped;
  for (int k = 0; k < jobs; ++k) {
    ClusterJobSpec spec;
    spec.model = "resnet50";
    spec.system = "hipress-ps";
    spec.algorithm = "onebit";
    spec.iterations = iterations;
    options.jobs.push_back(spec);
  }
  return options;
}

TEST(AssignJobNodesTest, PackedGivesContiguousBlocks) {
  const auto assignment = AssignJobNodes(8, 2, JobPlacement::kPacked);
  ASSERT_EQ(assignment.size(), 2u);
  EXPECT_EQ(assignment[0], (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(assignment[1], (std::vector<int>{4, 5, 6, 7}));
}

TEST(AssignJobNodesTest, StripedRoundRobinsAcrossRacks) {
  const auto assignment = AssignJobNodes(8, 2, JobPlacement::kStriped);
  ASSERT_EQ(assignment.size(), 2u);
  EXPECT_EQ(assignment[0], (std::vector<int>{0, 2, 4, 6}));
  EXPECT_EQ(assignment[1], (std::vector<int>{1, 3, 5, 7}));
}

TEST(ClusterJobTest, RejectsIndivisibleNodeCounts) {
  ClusterJobsOptions options = SmallFatTreeOptions(9, 2, 1);
  EXPECT_FALSE(RunClusterJobs(options).ok());
}

TEST(ClusterJobTest, MultiJobContentionStretchesIterations) {
  // Two striped jobs share every rack's oversubscribed ToR uplink; each
  // job's iteration must be strictly slower than the same-size job running
  // alone on its own slice, and the critical-path send share must show the
  // network (not compute) eating the difference.
  auto solo = RunClusterJobs(SmallFatTreeOptions(4, 1, 2));
  ASSERT_TRUE(solo.ok()) << solo.status().ToString();
  auto multi = RunClusterJobs(SmallFatTreeOptions(8, 2, 2));
  ASSERT_TRUE(multi.ok()) << multi.status().ToString();
  ASSERT_EQ(multi->jobs.size(), 2u);
  for (const ClusterJobReport& job : multi->jobs) {
    EXPECT_GT(job.iteration_time, solo->jobs[0].iteration_time)
        << job.name << " shows no cross-job contention";
  }
  EXPECT_GT(multi->jobs[0].send_share, 0.0);
  EXPECT_EQ(multi->steady_sched_pool_misses, 0u);
}

TEST(ClusterJobTest, ReplayFingerprintIsBitStable) {
  const ClusterJobsOptions options = SmallFatTreeOptions(8, 2, 2);
  auto first = RunClusterJobs(options);
  auto second = RunClusterJobs(options);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->replay_fingerprint, second->replay_fingerprint);
  ASSERT_EQ(first->jobs.size(), second->jobs.size());
  for (size_t k = 0; k < first->jobs.size(); ++k) {
    EXPECT_EQ(first->jobs[k].iteration_end, second->jobs[k].iteration_end);
  }
}

TEST(ClusterJobTest, PlacementChangesTheSchedule) {
  ClusterJobsOptions striped = SmallFatTreeOptions(8, 2, 2);
  ClusterJobsOptions packed = striped;
  packed.placement = JobPlacement::kPacked;
  auto striped_run = RunClusterJobs(striped);
  auto packed_run = RunClusterJobs(packed);
  ASSERT_TRUE(striped_run.ok());
  ASSERT_TRUE(packed_run.ok());
  // Packed jobs keep more traffic rack-local, so the timelines genuinely
  // differ — placement is not a relabeling.
  EXPECT_NE(striped_run->replay_fingerprint, packed_run->replay_fingerprint);
}

TEST(ClusterJobTest, AdaptiveControllersConvergeWithoutFlapping) {
  // Per-job adaptive compression on a contended fabric: controllers may
  // re-plan while measurements settle, but must not oscillate — bounded
  // switches, and no decision churn in the final iterations.
  ClusterJobsOptions options = SmallFatTreeOptions(8, 2, 8);
  for (ClusterJobSpec& spec : options.jobs) {
    spec.adaptive.enabled = true;
    spec.adaptive.candidate_algorithms = {"dgc"};
  }
  auto run = RunClusterJobs(options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  for (const ClusterJobReport& job : run->jobs) {
    EXPECT_TRUE(job.adaptive.enabled);
    EXPECT_LE(job.adaptive.codec_switches, 2) << job.name << " flapped";
    // Convergence: every boundary is logged (holds included), but the last
    // two iterations must carry no new actions.
    int late_actions = 0;
    for (const AdaptiveDecision& decision : job.adaptive.decisions) {
      if ((decision.replanned || decision.codec_switched) &&
          decision.iteration >= options.jobs[0].iterations - 2) {
        ++late_actions;
      }
    }
    EXPECT_EQ(late_actions, 0) << job.name << " still churning at the end";
  }
}

}  // namespace
}  // namespace hipress
