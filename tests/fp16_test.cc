#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/common/rng.h"
#include "src/compress/fp16.h"
#include "src/compress/registry.h"

namespace hipress {
namespace {

TEST(HalfConversionTest, ExactValuesRoundTrip) {
  for (float value : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -2.5f, 1024.0f,
                      0.25f, -0.125f, 65504.0f /* max half */}) {
    EXPECT_EQ(HalfToFloat(FloatToHalf(value)), value) << value;
  }
}

TEST(HalfConversionTest, SignedZeroPreserved) {
  EXPECT_EQ(FloatToHalf(0.0f), 0x0000);
  EXPECT_EQ(FloatToHalf(-0.0f), 0x8000);
  EXPECT_TRUE(std::signbit(HalfToFloat(0x8000)));
}

TEST(HalfConversionTest, OverflowGoesToInfinity) {
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(1e6f))));
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(-1e6f))));
  EXPECT_LT(HalfToFloat(FloatToHalf(-1e6f)), 0.0f);
}

TEST(HalfConversionTest, NanPropagates) {
  EXPECT_TRUE(std::isnan(
      HalfToFloat(FloatToHalf(std::numeric_limits<float>::quiet_NaN()))));
}

TEST(HalfConversionTest, SubnormalsRoundTrip) {
  const float smallest_normal_half = 6.103515625e-05f;  // 2^-14
  EXPECT_EQ(HalfToFloat(FloatToHalf(smallest_normal_half)),
            smallest_normal_half);
  const float subnormal = 5.960464477539063e-08f;  // 2^-24, smallest half
  EXPECT_EQ(HalfToFloat(FloatToHalf(subnormal)), subnormal);
  // Underflow below the smallest subnormal snaps to zero.
  EXPECT_EQ(HalfToFloat(FloatToHalf(1e-9f)), 0.0f);
}

TEST(HalfConversionTest, RelativeErrorWithinHalfPrecision) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const float value =
        static_cast<float>(rng.NextUniform(-100.0, 100.0));
    const float round_tripped = HalfToFloat(FloatToHalf(value));
    if (value != 0.0f) {
      EXPECT_LE(std::abs(round_tripped - value) / std::abs(value),
                1.0f / 1024.0f)
          << value;
    }
  }
}

TEST(Fp16CompressorTest, RoundTripAndRate) {
  auto codec = CreateCompressor("fp16");
  ASSERT_TRUE(codec.ok());
  Rng rng(5);
  Tensor gradient("g", 4096);
  gradient.FillGaussian(rng);
  ByteBuffer encoded;
  ASSERT_TRUE((*codec)->Encode(gradient.span(), &encoded).ok());
  EXPECT_EQ(encoded.size(), 4u + 4096 * 2);
  EXPECT_NEAR((*codec)->CompressionRate(1 << 20), 0.5, 1e-4);
  std::vector<float> decoded(4096);
  ASSERT_TRUE((*codec)->Decode(encoded, decoded).ok());
  EXPECT_LT(RmsDiff(gradient.span(), std::span<const float>(decoded)),
            0.002);
}

TEST(Fp16CompressorTest, DecodeAddAccumulates) {
  Fp16Compressor codec;
  Tensor gradient("g", 64);
  gradient.Fill(1.5f);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  std::vector<float> accum(64, 2.0f);
  ASSERT_TRUE(codec.DecodeAdd(encoded, accum).ok());
  for (float v : accum) {
    EXPECT_FLOAT_EQ(v, 3.5f);
  }
}

TEST(Fp16CompressorTest, RejectsBadBuffers) {
  Fp16Compressor codec;
  std::vector<float> out(10);
  EXPECT_FALSE(codec.Decode(ByteBuffer(std::vector<uint8_t>{1, 2}), out).ok());
  Tensor gradient("g", 10);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  std::vector<float> wrong(9);
  EXPECT_FALSE(codec.Decode(encoded, wrong).ok());
}

}  // namespace
}  // namespace hipress
