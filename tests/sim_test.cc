#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace hipress {
namespace {

// Minimal copy of the pre-calendar engine: one global priority queue with
// the (when, seq) tie-break. The golden-ordering test drives identical
// churn through both engines and demands identical fire sequences.
class ReferenceHeap {
 public:
  SimTime now() const { return now_; }
  void Schedule(SimTime delay, std::function<void()> fn) {
    queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
  }
  void Run() {
    while (!queue_.empty()) {
      Event event = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      now_ = event.when;
      event.fn();
    }
  }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

TEST(SimulatorTest, StartsAtZeroAndIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.Run(), 0);
}

TEST(SimulatorTest, EventsRunAtScheduledTimes) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.Schedule(100, [&] { fired.push_back(sim.now()); });
  sim.Schedule(50, [&] { fired.push_back(sim.now()); });
  sim.Schedule(150, [&] { fired.push_back(sim.now()); });
  sim.Run();
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], 50);
  EXPECT_EQ(fired[1], 100);
  EXPECT_EQ(fired[2], 150);
}

TEST(SimulatorTest, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(42, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      sim.Schedule(10, chain);
    }
  };
  sim.Schedule(10, chain);
  const SimTime end = sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(end, 50);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  bool late_fired = false;
  sim.Schedule(100, [] {});
  sim.Schedule(300, [&] { late_fired = true; });
  sim.RunUntil(200);
  EXPECT_EQ(sim.now(), 100);
  EXPECT_FALSE(late_fired);
  sim.Run();
  EXPECT_TRUE(late_fired);
}

TEST(SimulatorTest, RunUntilAdvancesIdleClockToDeadline) {
  Simulator sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(SimulatorTest, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.Schedule(i, [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(SimulatorTest, RunUntilRunsEventsExactlyAtDeadline) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.Schedule(200, [&] { fired.push_back(sim.now()); });
  sim.Schedule(100, [&] { fired.push_back(sim.now()); });
  sim.Schedule(201, [&] { fired.push_back(sim.now()); });
  sim.RunUntil(200);
  // The t=200 event is inside the window; t=201 stays queued and the clock
  // holds at the last executed event, not the deadline.
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[1], 200);
  EXPECT_EQ(sim.now(), 200);
  EXPECT_FALSE(sim.idle());
  sim.Run();
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[2], 201);
}

TEST(SimulatorTest, StepInterleavesWithScheduleAtNow) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(10, [&] {
    order.push_back(0);
    // Same-time follow-up gets a later seq, so it runs after the already
    // queued t=10 peer — FIFO across a mid-step enqueue.
    sim.ScheduleAt(sim.now(), [&] { order.push_back(2); });
  });
  sim.Schedule(10, [&] { order.push_back(1); });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(sim.now(), 10);
  EXPECT_TRUE(sim.Step());
  EXPECT_TRUE(sim.Step());
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimulatorTest, SameTimeFifoAcrossBucketBoundaries) {
  // Timestamps straddle fine-bucket edges, the initial frame boundary, and
  // horizons deep enough to cross the spillover/outer calendar; same-time
  // groups must still fire in scheduling order everywhere.
  Simulator sim;
  const std::vector<SimTime> horizons = {
      0,
      63,
      64,
      65535,
      65536,
      (SimTime{2048} << 16) - 1,  // last tick of the initial frame
      SimTime{2048} << 16,        // first spillover tick
      SimTime{1} << 30,
      SimTime{1} << 40,
  };
  std::vector<std::pair<SimTime, int>> scheduled;
  std::vector<std::pair<SimTime, int>> fired;
  int id = 0;
  for (int round = 0; round < 3; ++round) {
    for (SimTime t : horizons) {
      scheduled.push_back({t, id});
      sim.ScheduleAt(t, [&fired, &sim, my = id] {
        fired.push_back({sim.now(), my});
      });
      ++id;
    }
  }
  sim.Run();
  std::stable_sort(scheduled.begin(), scheduled.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  EXPECT_EQ(fired, scheduled);
}

TEST(SimulatorTest, OversizedSameWindowChainStaysFifo) {
  // > kSplitThreshold events landing in one calendar window exercises the
  // ladder's narrow-then-heapify path (and the outer calendar on the way,
  // since they first gather in the far-future spillover).
  Simulator sim;
  std::vector<int> order;
  const SimTime when = SimTime{1} << 30;
  constexpr int kEvents = 3000;
  for (int i = 0; i < kEvents; ++i) {
    sim.ScheduleAt(when, [&order, i] { order.push_back(i); });
  }
  SimTime straggler = 0;
  sim.ScheduleAt(when + FromMillis(5), [&] { straggler = sim.now(); });
  sim.Run();
  ASSERT_EQ(order.size(), static_cast<size_t>(kEvents));
  for (int i = 0; i < kEvents; ++i) {
    ASSERT_EQ(order[i], i) << "FIFO broke at position " << i;
  }
  EXPECT_EQ(straggler, when + FromMillis(5));
}

TEST(SimulatorTest, MatchesReferenceHeapUnderDeepChurn) {
  // Deterministic self-rescheduling churn with a ~1 s horizon: thousands of
  // pending events force spillover rebuilds, the outer calendar, and frame
  // splits. The fire sequence (time per event) must match the original
  // heap engine exactly — bit-reproducibility is the contract.
  auto churn = [](auto* sim, std::vector<SimTime>* trace) {
    uint64_t rng = 0x243f6a8885a308d3ULL;
    int remaining = 20000;
    std::function<void()> fire = [&rng, &remaining, &fire, sim, trace] {
      trace->push_back(sim->now());
      if (remaining == 0) {
        return;
      }
      --remaining;
      rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      // Mostly sub-second delays with frequent exact ties (delay 0 keeps
      // same-time FIFO interleavings in play).
      const SimTime delay =
          (rng % 7 == 0) ? 0 : static_cast<SimTime>(rng >> 34);
      sim->Schedule(delay, fire);
    };
    for (int a = 0; a < 3000; ++a) {
      sim->Schedule(0, fire);
    }
    sim->Run();
  };
  std::vector<SimTime> calendar_trace;
  Simulator calendar;
  churn(&calendar, &calendar_trace);
  std::vector<SimTime> heap_trace;
  ReferenceHeap heap;
  churn(&heap, &heap_trace);
  ASSERT_EQ(calendar_trace.size(), heap_trace.size());
  EXPECT_EQ(calendar_trace, heap_trace);
}

TEST(SimulatorTest, EventPoolStopsMissingInSteadyState) {
  Simulator sim;
  auto burst = [&] {
    for (int i = 0; i < 512; ++i) {
      sim.Schedule(i, [] {});
    }
    sim.Run();
  };
  for (int round = 0; round < 3; ++round) {
    burst();  // warm the record arena
  }
  const uint64_t misses = sim.sched_pool_misses();
  for (int round = 0; round < 5; ++round) {
    burst();
  }
  EXPECT_EQ(sim.sched_pool_misses(), misses);
  EXPECT_GT(sim.sched_pool_hits(), 0u);
  EXPECT_GE(sim.queue_peak_depth(), 512u);
}

TEST(SimResourceTest, SerializesJobsBackToBack) {
  Simulator sim;
  SimResource resource(&sim, "link");
  std::vector<SimTime> done;
  resource.Submit(100, [&] { done.push_back(sim.now()); });
  resource.Submit(50, [&] { done.push_back(sim.now()); });
  resource.Submit(25, [&] { done.push_back(sim.now()); });
  sim.Run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], 100);
  EXPECT_EQ(done[1], 150);
  EXPECT_EQ(done[2], 175);
  EXPECT_EQ(resource.busy_time(), 175);
  EXPECT_EQ(resource.jobs_completed(), 3u);
}

TEST(SimResourceTest, IdleGapsDoNotAccumulateBusyTime) {
  Simulator sim;
  SimResource resource(&sim, "gpu");
  resource.Submit(10, [] {});
  sim.Run();
  sim.Schedule(100, [&] { resource.Submit(20, [] {}); });
  sim.Run();
  EXPECT_EQ(resource.busy_time(), 30);
  // Second job started at t=110 (after the idle gap), not t=10.
  EXPECT_EQ(resource.free_at(), 130);
}

TEST(SimResourceTest, SubmitFromWithinCompletionCallback) {
  Simulator sim;
  SimResource resource(&sim, "r");
  SimTime second_done = 0;
  resource.Submit(10, [&] {
    resource.Submit(5, [&] { second_done = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(second_done, 15);
}

}  // namespace
}  // namespace hipress
