#include <gtest/gtest.h>

#include <vector>

#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace hipress {
namespace {

TEST(SimulatorTest, StartsAtZeroAndIdle) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_TRUE(sim.idle());
  EXPECT_EQ(sim.Run(), 0);
}

TEST(SimulatorTest, EventsRunAtScheduledTimes) {
  Simulator sim;
  std::vector<SimTime> fired;
  sim.Schedule(100, [&] { fired.push_back(sim.now()); });
  sim.Schedule(50, [&] { fired.push_back(sim.now()); });
  sim.Schedule(150, [&] { fired.push_back(sim.now()); });
  sim.Run();
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0], 50);
  EXPECT_EQ(fired[1], 100);
  EXPECT_EQ(fired[2], 150);
}

TEST(SimulatorTest, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(42, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(SimulatorTest, HandlersCanScheduleMoreEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      sim.Schedule(10, chain);
    }
  };
  sim.Schedule(10, chain);
  const SimTime end = sim.Run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(end, 50);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  bool late_fired = false;
  sim.Schedule(100, [] {});
  sim.Schedule(300, [&] { late_fired = true; });
  sim.RunUntil(200);
  EXPECT_EQ(sim.now(), 100);
  EXPECT_FALSE(late_fired);
  sim.Run();
  EXPECT_TRUE(late_fired);
}

TEST(SimulatorTest, RunUntilAdvancesIdleClockToDeadline) {
  Simulator sim;
  sim.RunUntil(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(SimulatorTest, CountsProcessedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) {
    sim.Schedule(i, [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

TEST(SimResourceTest, SerializesJobsBackToBack) {
  Simulator sim;
  SimResource resource(&sim, "link");
  std::vector<SimTime> done;
  resource.Submit(100, [&] { done.push_back(sim.now()); });
  resource.Submit(50, [&] { done.push_back(sim.now()); });
  resource.Submit(25, [&] { done.push_back(sim.now()); });
  sim.Run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], 100);
  EXPECT_EQ(done[1], 150);
  EXPECT_EQ(done[2], 175);
  EXPECT_EQ(resource.busy_time(), 175);
  EXPECT_EQ(resource.jobs_completed(), 3u);
}

TEST(SimResourceTest, IdleGapsDoNotAccumulateBusyTime) {
  Simulator sim;
  SimResource resource(&sim, "gpu");
  resource.Submit(10, [] {});
  sim.Run();
  sim.Schedule(100, [&] { resource.Submit(20, [] {}); });
  sim.Run();
  EXPECT_EQ(resource.busy_time(), 30);
  // Second job started at t=110 (after the idle gap), not t=10.
  EXPECT_EQ(resource.free_at(), 130);
}

TEST(SimResourceTest, SubmitFromWithinCompletionCallback) {
  Simulator sim;
  SimResource resource(&sim, "r");
  SimTime second_done = 0;
  resource.Submit(10, [&] {
    resource.Submit(5, [&] { second_done = sim.now(); });
  });
  sim.Run();
  EXPECT_EQ(second_done, 15);
}

}  // namespace
}  // namespace hipress
