// Task graph structure and the PS/Ring builders: primitive counts must
// match the paper's alpha/beta/gamma analysis (Section 3.3, Table 3).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/casync/builder.h"
#include "src/casync/task.h"
#include "src/casync/workflow.h"

namespace hipress {
namespace {

std::map<PrimitiveType, int> CountByType(const TaskGraph& graph) {
  std::map<PrimitiveType, int> counts;
  for (const SyncTask& task : graph.tasks()) {
    ++counts[task.type];
  }
  return counts;
}

SyncConfig BaseConfig(StrategyKind strategy, int nodes) {
  SyncConfig config;
  config.strategy = strategy;
  config.num_nodes = nodes;
  return config;
}

GradientSync CompressedGradient(uint64_t bytes, int partitions) {
  GradientSync gradient;
  gradient.id = 0;
  gradient.bytes = bytes;
  gradient.compress = true;
  gradient.partitions = partitions;
  gradient.rate = 1.0 / 32;
  return gradient;
}

TEST(TaskGraphTest, AddAndDependencies) {
  TaskGraph graph;
  const TaskId a = graph.Add(SyncTask{});
  const TaskId b = graph.Add(SyncTask{});
  graph.AddDep(a, b);
  EXPECT_EQ(graph.task(b).pending_deps, 1);
  ASSERT_EQ(graph.task(a).dependents.size(), 1u);
  EXPECT_EQ(graph.task(a).dependents[0], b);
}

TEST(TaskGraphTest, AcyclicityCheck) {
  TaskGraph graph;
  const TaskId a = graph.Add(SyncTask{});
  const TaskId b = graph.Add(SyncTask{});
  const TaskId c = graph.Add(SyncTask{});
  graph.AddDep(a, b);
  graph.AddDep(b, c);
  EXPECT_TRUE(graph.IsAcyclic());
  graph.AddDep(c, a);
  EXPECT_FALSE(graph.IsAcyclic());
}

// ------------------------------------------------------------- PS builder

TEST(PsBuilderTest, CompressedPrimitiveCounts) {
  // N=4 workers, 1 partition, compressed:
  //   push: (N-1) worker encodes, (N-1) sends/recvs, (N-1) decodes
  //   + 1 local merge + 1 aggregate barrier + 1 encode-back
  //   pull: (N-1) sends/recvs/decodes.
  const SyncConfig config = BaseConfig(StrategyKind::kPs, 4);
  TaskGraph graph;
  AppendPsSyncTasks(config, CompressedGradient(1024, 1), &graph);
  const auto counts = CountByType(graph);
  EXPECT_EQ(counts.at(PrimitiveType::kEncode), 3 + 1);
  EXPECT_EQ(counts.at(PrimitiveType::kDecode), 3 + 3);
  EXPECT_EQ(counts.at(PrimitiveType::kSend), 6);
  EXPECT_EQ(counts.at(PrimitiveType::kRecv), 6);
  EXPECT_EQ(counts.at(PrimitiveType::kMerge), 1);  // co-located shard
  EXPECT_TRUE(graph.IsAcyclic());
}

TEST(PsBuilderTest, RawGradientHasNoCodecTasks) {
  const SyncConfig config = BaseConfig(StrategyKind::kPs, 4);
  GradientSync gradient;
  gradient.bytes = 4096;
  gradient.compress = false;
  gradient.partitions = 2;
  TaskGraph graph;
  AppendPsSyncTasks(config, gradient, &graph);
  const auto counts = CountByType(graph);
  EXPECT_EQ(counts.count(PrimitiveType::kEncode), 0u);
  EXPECT_EQ(counts.count(PrimitiveType::kDecode), 0u);
  EXPECT_GT(counts.at(PrimitiveType::kMerge), 0);
  EXPECT_TRUE(graph.IsAcyclic());
}

TEST(PsBuilderTest, PartitionsSpreadAcrossAggregators) {
  const SyncConfig config = BaseConfig(StrategyKind::kPs, 4);
  TaskGraph graph;
  AppendPsSyncTasks(config, CompressedGradient(4096, 4), &graph);
  // Each partition's barrier lands on a distinct node.
  std::set<int> aggregators;
  for (const SyncTask& task : graph.tasks()) {
    if (task.type == PrimitiveType::kBarrier) {
      aggregators.insert(task.node);
    }
  }
  EXPECT_EQ(aggregators.size(), 4u);
}

TEST(PsBuilderTest, WireBytesUseCompressionRate) {
  const SyncConfig config = BaseConfig(StrategyKind::kPs, 2);
  GradientSync gradient = CompressedGradient(32000, 1);
  TaskGraph graph;
  AppendPsSyncTasks(config, gradient, &graph);
  for (const SyncTask& task : graph.tasks()) {
    if (task.type == PrimitiveType::kSend) {
      EXPECT_EQ(task.bytes, 1000u);  // 32000 / 32
    }
    if (task.type == PrimitiveType::kEncode) {
      EXPECT_EQ(task.bytes, 32000u);  // cost model sees original bytes
    }
  }
}

TEST(PsBuilderTest, TinyCompressedSendsKeepHeaderFloor) {
  const SyncConfig config = BaseConfig(StrategyKind::kPs, 2);
  GradientSync gradient = CompressedGradient(64, 1);
  TaskGraph graph;
  AppendPsSyncTasks(config, gradient, &graph);
  for (const SyncTask& task : graph.tasks()) {
    if (task.type == PrimitiveType::kSend) {
      EXPECT_EQ(task.bytes, kMinWireBytes);
    }
  }
}

// ------------------------------------------------------------ Ring builder

TEST(RingBuilderTest, CompressedPrimitiveCountsMatchBetaGamma) {
  // One chunk over N=4: aggregation needs N-1 encodes and N-1 decodes;
  // dissemination adds 1 encode and N-1 decodes (Section 3.3's
  // beta = (N-1)+1 = N, gamma analysis).
  const SyncConfig config = BaseConfig(StrategyKind::kRing, 4);
  TaskGraph graph;
  AppendRingSyncTasks(config, CompressedGradient(1024, 1), &graph);
  const auto counts = CountByType(graph);
  EXPECT_EQ(counts.at(PrimitiveType::kEncode), 4);   // beta = N
  EXPECT_EQ(counts.at(PrimitiveType::kDecode), 6);   // 2(N-1)
  EXPECT_EQ(counts.at(PrimitiveType::kSend), 6);     // 2(N-1) steps
  EXPECT_EQ(counts.at(PrimitiveType::kRecv), 6);
  EXPECT_TRUE(graph.IsAcyclic());
}

TEST(RingBuilderTest, ChunksScaleTaskCounts) {
  const SyncConfig config = BaseConfig(StrategyKind::kRing, 4);
  TaskGraph one;
  AppendRingSyncTasks(config, CompressedGradient(4096, 1), &one);
  TaskGraph four;
  AppendRingSyncTasks(config, CompressedGradient(4096, 4), &four);
  EXPECT_EQ(four.size(), 4 * one.size());
}

TEST(RingBuilderTest, AggregationHopsAreChained) {
  // The h-th encode must transitively depend on the (h-1)-th decode: walk
  // the graph and confirm no encode (other than the first) has zero deps.
  const SyncConfig config = BaseConfig(StrategyKind::kRing, 4);
  TaskGraph graph;
  AppendRingSyncTasks(config, CompressedGradient(1024, 1), &graph);
  int roots = 0;
  for (const SyncTask& task : graph.tasks()) {
    if (task.pending_deps == 0) {
      ++roots;
      // Only the very first aggregation-phase encode+send can be rootless.
      EXPECT_TRUE(task.type == PrimitiveType::kEncode ||
                  task.type == PrimitiveType::kSend);
    }
  }
  EXPECT_EQ(roots, 1);
}

TEST(RingBuilderTest, SingleNodeDegeneratesToBarrier) {
  const SyncConfig config = BaseConfig(StrategyKind::kRing, 1);
  TaskGraph graph;
  AppendRingSyncTasks(config, CompressedGradient(1024, 1), &graph);
  EXPECT_EQ(graph.size(), 1u);
  EXPECT_EQ(graph.task(0).type, PrimitiveType::kBarrier);
}

TEST(RingBuilderTest, RawRingUsesMerges) {
  const SyncConfig config = BaseConfig(StrategyKind::kRing, 4);
  GradientSync gradient;
  gradient.bytes = 4096;
  gradient.compress = false;
  gradient.partitions = 4;
  TaskGraph graph;
  AppendRingSyncTasks(config, gradient, &graph);
  const auto counts = CountByType(graph);
  EXPECT_EQ(counts.count(PrimitiveType::kEncode), 0u);
  EXPECT_EQ(counts.at(PrimitiveType::kMerge), 4 * 3);  // K chunks x (N-1)
}

// ----------------------------------------------------------- Tree builder

TEST(TreeBuilderTest, CompressedPrimitiveCounts) {
  // N=8: reduce has N-1 = 7 sends (one per non-root subtree edge), each
  // with an encode and a decode+merge; broadcast re-encodes once and
  // forwards over the same 7 edges with a decode at each receiver.
  const SyncConfig config = BaseConfig(StrategyKind::kTree, 8);
  TaskGraph graph;
  AppendTreeSyncTasks(config, CompressedGradient(1024, 1), &graph);
  const auto counts = CountByType(graph);
  EXPECT_EQ(counts.at(PrimitiveType::kEncode), 7 + 1);
  EXPECT_EQ(counts.at(PrimitiveType::kDecode), 7 + 7);
  EXPECT_EQ(counts.at(PrimitiveType::kSend), 14);
  EXPECT_EQ(counts.at(PrimitiveType::kRecv), 14);
  EXPECT_TRUE(graph.IsAcyclic());
}

TEST(TreeBuilderTest, NonPowerOfTwoNodeCounts) {
  for (int nodes : {2, 3, 5, 6, 7, 9, 16}) {
    const SyncConfig config = BaseConfig(StrategyKind::kTree, nodes);
    TaskGraph graph;
    AppendTreeSyncTasks(config, CompressedGradient(4096, 2), &graph);
    EXPECT_TRUE(graph.IsAcyclic()) << nodes;
    const auto counts = CountByType(graph);
    // One send per tree edge per direction per partition.
    EXPECT_EQ(counts.at(PrimitiveType::kSend), 2 * (nodes - 1) * 2) << nodes;
  }
}

TEST(TreeBuilderTest, SingleNodeDegeneratesToBarrier) {
  const SyncConfig config = BaseConfig(StrategyKind::kTree, 1);
  TaskGraph graph;
  AppendTreeSyncTasks(config, CompressedGradient(1024, 1), &graph);
  EXPECT_EQ(graph.size(), 1u);
}

TEST(TreeBuilderTest, RawTreeUsesMerges) {
  const SyncConfig config = BaseConfig(StrategyKind::kTree, 8);
  GradientSync gradient;
  gradient.bytes = 4096;
  gradient.compress = false;
  gradient.partitions = 1;
  TaskGraph graph;
  AppendTreeSyncTasks(config, gradient, &graph);
  const auto counts = CountByType(graph);
  EXPECT_EQ(counts.count(PrimitiveType::kEncode), 0u);
  EXPECT_EQ(counts.at(PrimitiveType::kMerge), 7);
}

TEST(BuilderDispatchTest, AppendSyncTasksRoutesByStrategy) {
  TaskGraph ps_graph;
  AppendSyncTasks(BaseConfig(StrategyKind::kPs, 4),
                  CompressedGradient(1024, 1), &ps_graph);
  TaskGraph ring_graph;
  AppendSyncTasks(BaseConfig(StrategyKind::kRing, 4),
                  CompressedGradient(1024, 1), &ring_graph);
  EXPECT_NE(ps_graph.size(), ring_graph.size());
}

TEST(WorkflowTest, DescribesEachStrategy) {
  for (StrategyKind strategy :
       {StrategyKind::kPs, StrategyKind::kRing, StrategyKind::kTree}) {
    SyncConfig config = BaseConfig(strategy, 8);
    const std::string description = DescribeStrategy(config, true);
    EXPECT_NE(description.find(StrategyKindName(strategy)),
              std::string::npos);
    EXPECT_NE(description.find("encode"), std::string::npos) << description;
  }
}

TEST(WorkflowTest, CompressedWorkflowsMentionCodecSteps) {
  SyncConfig config = BaseConfig(StrategyKind::kPs, 4);
  const std::string compressed =
      DescribeWorkflow(config, NodeRole::kWorker, true);
  EXPECT_NE(compressed.find("encode"), std::string::npos);
  const std::string raw = DescribeWorkflow(config, NodeRole::kWorker, false);
  EXPECT_EQ(raw.find("encode"), std::string::npos);
}

TEST(WorkflowTest, AggregatorWorkflowCountsPeers) {
  SyncConfig config = BaseConfig(StrategyKind::kPs, 16);
  const std::string description =
      DescribeWorkflow(config, NodeRole::kAggregator, true);
  EXPECT_NE(description.find("x15"), std::string::npos);
}

}  // namespace
}  // namespace hipress
