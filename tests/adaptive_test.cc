// Runtime-adaptive compression controller (docs/ADAPTIVE.md): windowed
// bandwidth estimation over auditor snapshots, the SeCoPa re-plan path,
// trigger/cooldown/hysteresis mechanics on synthetic signals, the engine's
// codec-swap guard, and the end-to-end trainer integration (deterministic
// decision replay, adaptive beating fixed under a bandwidth collapse).
#include "src/casync/adaptive.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/casync/engine.h"
#include "src/compress/registry.h"
#include "src/hipress/hipress.h"
#include "src/net/fault.h"

namespace hipress {
namespace {

constexpr double kNominalGbps = 75.0;

SyncConfig AdaptiveConfig() {
  SyncConfig config;
  config.strategy = StrategyKind::kPs;
  config.num_nodes = 8;
  config.compression = true;
  config.secopa = true;
  config.algorithm = "fp16";
  config.net.link_bandwidth = Bandwidth::Gbps(kNominalGbps);
  return config;
}

AdaptiveCodecOption Rung(const SyncConfig& config,
                         const std::string& algorithm) {
  AdaptiveCodecOption option;
  option.algorithm = algorithm;
  option.impl = config.codec_impl;
  auto codec = CreateCompressor(algorithm);
  EXPECT_TRUE(codec.ok()) << codec.status().ToString();
  option.rate = (*codec)->CompressionRate(1 << 20);
  option.speed = GetCodecSpeed(algorithm, config.codec_impl, config.platform);
  return option;
}

std::vector<AdaptiveCodecOption> Ladder(const SyncConfig& config) {
  return {Rung(config, config.algorithm), Rung(config, "onebit")};
}

std::vector<uint64_t> UnitBytes() {
  return {1 << 20, 4 << 20, 16 << 20, 32 << 20};
}

CpAttribution MakeAttribution(double send_share) {
  CpAttribution attribution;
  attribution[CpCategory::kSend] =
      static_cast<SimTime>(send_share * 1e9);
  attribution[CpCategory::kCompute] =
      static_cast<SimTime>((1.0 - send_share) * 1e9);
  return attribution;
}

// Adds `n` send samples whose (bytes, latency) pairs sit exactly on the
// line of an effective `gbps` link with a fixed per-message overhead, so
// the windowed least-squares fit recovers gbps precisely.
void FeedSends(CostModelAuditor* auditor, double gbps, int n) {
  const double bps = gbps * 1e9 / 8.0;
  for (int i = 0; i < n; ++i) {
    const uint64_t bytes = static_cast<uint64_t>(256 * 1024) * (i + 1);
    const SimTime latency =
        FromMicros(12.0) + static_cast<SimTime>(static_cast<double>(bytes) /
                                                bps * kSecond);
    auditor->AddSample(CostPrimitive::kSend, bytes, latency);
  }
}

TEST(CostSampleStatsTest, WindowedFitTracksLatestPhaseOnly) {
  CostModelAuditor auditor;
  FeedSends(&auditor, 60.0, 6);
  const CostSampleStats boundary = auditor.Snapshot(CostPrimitive::kSend);
  FeedSends(&auditor, 15.0, 6);

  KernelCost window_fit;
  ASSERT_TRUE(
      auditor.Snapshot(CostPrimitive::kSend).Since(boundary).Fit(&window_fit));
  EXPECT_NEAR(window_fit.bytes_per_second * 8.0 / 1e9, 15.0, 0.1);

  // The whole-run fit blends both phases and lands in between.
  KernelCost blended;
  ASSERT_TRUE(auditor.Fit(CostPrimitive::kSend, &blended));
  EXPECT_GT(blended.bytes_per_second * 8.0 / 1e9, 15.5);
}

TEST(CostSampleStatsTest, DegenerateWindowRefusesToFit) {
  CostModelAuditor auditor;
  // Four samples at one byte size: the slope is unidentifiable.
  for (int i = 0; i < 4; ++i) {
    auditor.AddSample(CostPrimitive::kSend, 1 << 20, FromMicros(100.0));
  }
  const CostSampleStats window = auditor.Snapshot(CostPrimitive::kSend);
  KernelCost fit;
  EXPECT_FALSE(window.Fit(&fit));
  // The aggregate-throughput fallback still yields a usable estimate.
  EXPECT_GT(window.MeanThroughput(), 0.0);
}

TEST(SeCoPaReplanTest, WithBandwidthMovesTheCompressionCutoff) {
  const SyncConfig config = AdaptiveConfig();
  const AdaptiveCodecOption rung = Rung(config, "fp16");
  const SeCoPaPlanner full(config, rung.rate, rung.speed);
  const SeCoPaPlanner slow =
      full.WithBandwidth(Bandwidth::Gbps(kNominalGbps / 10.0));
  int flips = 0;
  for (uint64_t bytes = 64 * 1024; bytes <= (64u << 20); bytes *= 2) {
    const SyncPlan fast_plan = full.Plan(bytes);
    const SyncPlan slow_plan = slow.Plan(bytes);
    // A slower wire can only make compression more attractive.
    EXPECT_GE(slow_plan.compress, fast_plan.compress) << bytes;
    if (slow_plan.compress && !fast_plan.compress) {
      ++flips;
    }
    EXPECT_GT(slow_plan.t_plain, fast_plan.t_plain) << bytes;
  }
  EXPECT_GT(flips, 0) << "a 10x bandwidth drop should flip some gradient "
                         "below the compression cutoff";
}

TEST(SeCoPaReplanTest, WithCodecSwapsRateAndSpeedLines) {
  const SyncConfig config = AdaptiveConfig();
  const AdaptiveCodecOption fp16 = Rung(config, "fp16");
  const AdaptiveCodecOption onebit = Rung(config, "onebit");
  const SeCoPaPlanner base(config, fp16.rate, fp16.speed);
  const SeCoPaPlanner swapped = base.WithCodec(onebit.rate, onebit.speed);
  EXPECT_DOUBLE_EQ(swapped.rate(), onebit.rate);
  EXPECT_LT(swapped.rate(), base.rate());  // onebit compresses harder
}

TEST(AdaptiveControllerTest, InitialPlansMatchTheFixedPlanner) {
  const SyncConfig config = AdaptiveConfig();
  const auto ladder = Ladder(config);
  const AdaptiveController controller(config, {}, UnitBytes(), ladder);
  const SeCoPaPlanner fixed(config, ladder[0].rate, ladder[0].speed);
  const std::vector<uint64_t> bytes = UnitBytes();
  ASSERT_EQ(controller.plans().size(), bytes.size());
  for (size_t i = 0; i < bytes.size(); ++i) {
    const SyncPlan plan = fixed.Plan(bytes[i]);
    EXPECT_EQ(controller.plans()[i].compress, plan.compress) << i;
    EXPECT_EQ(controller.plans()[i].partitions, plan.partitions) << i;
    EXPECT_DOUBLE_EQ(controller.plans()[i].rate, ladder[0].rate) << i;
  }
  EXPECT_EQ(controller.active_codec().algorithm, "fp16");
  EXPECT_NEAR(controller.planned_gbps(), kNominalGbps, 1e-9);
}

TEST(AdaptiveControllerTest, TriggersAfterStreakThenCoolsDown) {
  const SyncConfig config = AdaptiveConfig();
  AdaptiveOptions options;  // trigger 2, cooldown 2, min change 0.2
  AdaptiveController controller(config, options, UnitBytes(),
                                Ladder(config));
  CostModelAuditor auditor;

  // Iteration 0: first breach arms the streak but must not act yet.
  FeedSends(&auditor, kNominalGbps / 2.0, 6);
  AdaptiveDecision d0 =
      controller.Observe(0, MakeAttribution(0.6), auditor);
  EXPECT_FALSE(d0.replanned);
  EXPECT_EQ(d0.reason, "hold");
  EXPECT_NEAR(d0.observed_gbps, kNominalGbps / 2.0, 0.5);

  // Iteration 1: second consecutive breach triggers the re-plan.
  FeedSends(&auditor, kNominalGbps / 2.0, 6);
  AdaptiveDecision d1 =
      controller.Observe(1, MakeAttribution(0.6), auditor);
  EXPECT_TRUE(d1.replanned);
  EXPECT_TRUE(d1.codec_switched);  // onebit wins at a halved link
  EXPECT_EQ(controller.active_codec().algorithm, "onebit");
  EXPECT_GT(d1.replanned_units, 0);
  EXPECT_NEAR(controller.planned_gbps(), kNominalGbps / 2.0, 0.5);
  EXPECT_EQ(d1.reason.rfind("tighten", 0), 0u) << d1.reason;

  // Iterations 2-3: cooldown absorbs further breaches.
  for (int i = 2; i <= 3; ++i) {
    FeedSends(&auditor, kNominalGbps / 4.0, 6);
    AdaptiveDecision d =
        controller.Observe(i, MakeAttribution(0.6), auditor);
    EXPECT_FALSE(d.replanned) << i;
    EXPECT_EQ(d.reason, "cooldown") << i;
  }
  EXPECT_EQ(controller.replans(), 1);
  EXPECT_EQ(controller.codec_switches(), 1);
  EXPECT_EQ(controller.decisions().size(), 4u);
}

TEST(AdaptiveControllerTest, HysteresisAbsorbsANoisyBoundary) {
  const SyncConfig config = AdaptiveConfig();
  AdaptiveOptions options;
  AdaptiveController controller(config, options, UnitBytes(),
                                Ladder(config));
  CostModelAuditor auditor;

  // Force one switch: two clean tighten iterations at half bandwidth.
  for (int i = 0; i < 2; ++i) {
    FeedSends(&auditor, kNominalGbps / 2.0, 6);
    controller.Observe(i, MakeAttribution(0.6), auditor);
  }
  ASSERT_EQ(controller.codec_switches(), 1);
  const double planned = controller.planned_gbps();

  // Noisy boundary: the estimate jitters +/-10% around the plan price and
  // the send share oscillates across the watermark band. Neither side of
  // the hysteresis (0.2 bandwidth deadband, 2-iteration streak) should
  // arm, even long after the cooldown expires.
  for (int i = 2; i < 20; ++i) {
    const double jitter = (i % 2 == 0) ? 0.9 : 1.1;
    FeedSends(&auditor, planned * jitter, 6);
    const double share = (i % 2 == 0) ? 0.6 : 0.05;
    controller.Observe(i, MakeAttribution(share), auditor);
  }
  EXPECT_EQ(controller.codec_switches(), 1) << controller.DecisionLog();
  EXPECT_EQ(controller.replans(), 1) << controller.DecisionLog();
}

TEST(AdaptiveControllerTest, CrashDuringCooldownReplansOverNewMembership) {
  const SyncConfig config = AdaptiveConfig();  // 8 nodes
  AdaptiveOptions options;
  AdaptiveController controller(config, options, UnitBytes(),
                                Ladder(config));
  CostModelAuditor auditor;

  // Trigger a decision so the cooldown window is open, and confirm the
  // active plan was built over the full 8-node view.
  for (int i = 0; i < 2; ++i) {
    FeedSends(&auditor, kNominalGbps / 2.0, 6);
    controller.Observe(i, MakeAttribution(0.6), auditor);
  }
  ASSERT_EQ(controller.replans(), 1);
  int widest = 0;
  for (const GradientSync& plan : controller.plans()) {
    widest = std::max(widest, plan.partitions);
  }
  ASSERT_GT(widest, 2 * 3) << "test premise: 8-node plans exceed the "
                              "6-partition cap of a 3-node view";

  // A crash eviction shrinks the view to 3 mid-cooldown. The plans must be
  // repriced immediately over the new membership (2N partition cap).
  ASSERT_TRUE(controller.OnMembershipChange(3));
  for (const GradientSync& plan : controller.plans()) {
    EXPECT_LE(plan.partitions, 2 * 3);
  }

  // The cooldown keeps running — the next boundary refuses a performance
  // decision and, crucially, does NOT reinstall the stale 8-node plan.
  FeedSends(&auditor, kNominalGbps / 4.0, 6);
  const AdaptiveDecision decision =
      controller.Observe(2, MakeAttribution(0.6), auditor);
  EXPECT_FALSE(decision.replanned);
  EXPECT_EQ(decision.reason, "cooldown");
  for (const GradientSync& plan : controller.plans()) {
    EXPECT_LE(plan.partitions, 2 * 3);
  }
  // Same-size notifications are no-ops.
  EXPECT_FALSE(controller.OnMembershipChange(3));
}

TEST(AdaptiveControllerTest, RelaxesWhenBandwidthRecovers) {
  const SyncConfig config = AdaptiveConfig();
  AdaptiveOptions options;
  AdaptiveController controller(config, options, UnitBytes(),
                                Ladder(config));
  CostModelAuditor auditor;

  for (int i = 0; i < 2; ++i) {
    FeedSends(&auditor, kNominalGbps / 2.0, 6);
    controller.Observe(i, MakeAttribution(0.6), auditor);
  }
  ASSERT_EQ(controller.replans(), 1);
  ASSERT_NEAR(controller.planned_gbps(), kNominalGbps / 2.0, 0.5);

  // Cooldown (2 iterations), then two clean recovery iterations: the wire
  // is back to nominal and off the critical path.
  int iteration = 2;
  for (; iteration < 4; ++iteration) {
    FeedSends(&auditor, kNominalGbps, 6);
    controller.Observe(iteration, MakeAttribution(0.05), auditor);
  }
  AdaptiveDecision relaxed;
  bool found = false;
  for (; iteration < 8 && !found; ++iteration) {
    FeedSends(&auditor, kNominalGbps, 6);
    const AdaptiveDecision d =
        controller.Observe(iteration, MakeAttribution(0.05), auditor);
    if (d.replanned) {
      relaxed = d;
      found = true;
    }
  }
  ASSERT_TRUE(found) << controller.DecisionLog();
  EXPECT_EQ(relaxed.reason.rfind("relax", 0), 0u) << relaxed.reason;
  EXPECT_NEAR(controller.planned_gbps(), kNominalGbps, 0.5);
  EXPECT_EQ(controller.replans(), 2);
}

TEST(AdaptiveControllerTest, ThinSendWindowKeepsThePreviousEstimate) {
  const SyncConfig config = AdaptiveConfig();
  AdaptiveOptions options;
  AdaptiveController controller(config, options, UnitBytes(),
                                Ladder(config));
  CostModelAuditor auditor;
  FeedSends(&auditor, kNominalGbps / 2.0, 6);
  const AdaptiveDecision first =
      controller.Observe(0, MakeAttribution(0.6), auditor);
  EXPECT_NEAR(first.observed_gbps, kNominalGbps / 2.0, 0.5);
  // Under min_send_samples new samples: the estimate must not move.
  FeedSends(&auditor, 1.0, 2);
  const AdaptiveDecision second =
      controller.Observe(1, MakeAttribution(0.6), auditor);
  EXPECT_DOUBLE_EQ(second.observed_gbps, first.observed_gbps);
}

// ---------------------------------------------------------------------------
// Engine codec swap
// ---------------------------------------------------------------------------

TEST(ApplyCodecTest, RepointsSpeedLinesAndAuditorBaselines) {
  SyncConfig config = AdaptiveConfig();
  config.num_nodes = 2;
  Simulator sim;
  Network net(&sim, config.num_nodes, config.net);
  std::vector<std::unique_ptr<GpuDevice>> storage;
  std::vector<GpuDevice*> gpus;
  for (int node = 0; node < config.num_nodes; ++node) {
    storage.push_back(std::make_unique<GpuDevice>(&sim, node));
    gpus.push_back(storage.back().get());
  }
  CaSyncEngine engine(&sim, &net, gpus, config);
  EXPECT_TRUE(engine.Idle());

  const CodecSpeed onebit =
      GetCodecSpeed("onebit", config.codec_impl, config.platform);
  engine.ApplyCodec("onebit", config.codec_impl, onebit);
  EXPECT_EQ(engine.config().algorithm, "onebit");
  EXPECT_DOUBLE_EQ(
      engine.auditor().prediction(CostPrimitive::kEncode).bytes_per_second,
      onebit.encode.bytes_per_second);
  EXPECT_DOUBLE_EQ(
      engine.auditor().prediction(CostPrimitive::kDecode).bytes_per_second,
      onebit.decode.bytes_per_second);
}

TEST(ApplyCodecDeathTest, RefusesWithGraphsInFlight) {
  SyncConfig config = AdaptiveConfig();
  config.num_nodes = 2;
  Simulator sim;
  Network net(&sim, config.num_nodes, config.net);
  std::vector<std::unique_ptr<GpuDevice>> storage;
  std::vector<GpuDevice*> gpus;
  for (int node = 0; node < config.num_nodes; ++node) {
    storage.push_back(std::make_unique<GpuDevice>(&sim, node));
    gpus.push_back(storage.back().get());
  }
  CaSyncEngine engine(&sim, &net, gpus, config);
  TaskGraph graph;
  SyncTask encode;
  encode.type = PrimitiveType::kEncode;
  encode.node = 0;
  encode.bytes = 4 << 20;
  graph.Add(encode);
  engine.Execute(&graph, [] {});
  // The kernel is on the device queue but the simulator has not run: the
  // graph is in flight and the swap must refuse.
  EXPECT_FALSE(engine.Idle());
  EXPECT_DEATH(engine.ApplyCodec("onebit", config.codec_impl,
                                 GetCodecSpeed("onebit", config.codec_impl,
                                               config.platform)),
               "in flight");
  sim.Run();
  EXPECT_TRUE(engine.Idle());
}

// ---------------------------------------------------------------------------
// End-to-end trainer integration
// ---------------------------------------------------------------------------

HiPressOptions DegradedScenario(bool adaptive) {
  HiPressOptions options;
  options.model = "vgg19";
  options.system = "hipress-ps";
  options.algorithm = "fp16";
  options.cluster = ClusterSpec::Ec2(8);
  options.train.iterations = 6;
  auto faults = ParseFaultSpec("degrade=*-*@30-1000000@0.5");
  EXPECT_TRUE(faults.ok());
  options.cluster.net.faults = *faults;
  if (adaptive) {
    options.train.adaptive.enabled = true;
    options.train.adaptive.candidate_algorithms = {"onebit"};
  }
  return options;
}

TEST(AdaptiveTrainerTest, DecisionReplayIsBitIdentical) {
  auto first = RunTrainingSimulation(DegradedScenario(true));
  auto second = RunTrainingSimulation(DegradedScenario(true));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(first->report.adaptive.enabled);
  EXPECT_GE(first->report.adaptive.replans, 1);
  EXPECT_GE(first->report.adaptive.codec_switches, 1);
  EXPECT_EQ(first->report.adaptive.decisions.size(), 6u);
  EXPECT_FALSE(first->report.adaptive.decision_log.empty());
  EXPECT_EQ(first->report.adaptive.decision_log,
            second->report.adaptive.decision_log);
  // The adaptive.* metrics the trainer publishes line up with the report.
  EXPECT_EQ(first->report.metrics->counter_value("adaptive.replans"),
            static_cast<uint64_t>(first->report.adaptive.replans));
  EXPECT_EQ(first->report.metrics->counter_value("adaptive.codec_switches"),
            static_cast<uint64_t>(first->report.adaptive.codec_switches));
}

TEST(AdaptiveTrainerTest, BeatsFixedUnderABandwidthCollapse) {
  auto fixed = RunTrainingSimulation(DegradedScenario(false));
  auto adaptive = RunTrainingSimulation(DegradedScenario(true));
  ASSERT_TRUE(fixed.ok()) << fixed.status().ToString();
  ASSERT_TRUE(adaptive.ok()) << adaptive.status().ToString();
  EXPECT_FALSE(fixed->report.adaptive.enabled);
  EXPECT_LT(ToMillis(adaptive->report.iteration_time),
            ToMillis(fixed->report.iteration_time));
  EXPECT_EQ(adaptive->report.adaptive.final_algorithm, "onebit");
}

TEST(AdaptiveTrainerTest, RejectsUnsupportedConfigurations) {
  auto profile = GetModelProfile("resnet50");
  ASSERT_TRUE(profile.ok());
  TrainOptions options;
  options.adaptive.enabled = true;
  SyncConfig no_compression = AdaptiveConfig();
  no_compression.compression = false;
  EXPECT_FALSE(SimulateTraining(*profile, no_compression, options).ok());
  SyncConfig no_secopa = AdaptiveConfig();
  no_secopa.secopa = false;
  EXPECT_FALSE(SimulateTraining(*profile, no_secopa, options).ok());
  TrainOptions ssp = options;
  ssp.staleness = 1;
  EXPECT_FALSE(SimulateTraining(*profile, AdaptiveConfig(), ssp).ok());
}

TEST(AdaptiveTrainerTest, UnknownCandidateCodecErrors) {
  HiPressOptions options = DegradedScenario(true);
  options.train.adaptive.candidate_algorithms = {"no-such-codec"};
  EXPECT_FALSE(RunTrainingSimulation(options).ok());
}

}  // namespace
}  // namespace hipress
