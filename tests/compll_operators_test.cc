// Direct tests of the CompLL common-operator library (Table 4), including
// the sub-byte packing rules of Section 4.3.
#include <gtest/gtest.h>

#include <cmath>

#include "src/compll/operators.h"

namespace hipress::compll {
namespace {

TEST(OperatorsTest, MapAppliesUdfElementwise) {
  const std::vector<double> input = {1, 2, 3, 4};
  const auto output = MapOp(input, [](double x) { return x * x; });
  EXPECT_EQ(output, (std::vector<double>{1, 4, 9, 16}));
}

TEST(OperatorsTest, MapOnLargeInputParallelizesCorrectly) {
  std::vector<double> input(300000);
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<double>(i);
  }
  const auto output = MapOp(input, [](double x) { return x + 1; });
  for (size_t i = 0; i < input.size(); ++i) {
    ASSERT_EQ(output[i], input[i] + 1) << i;
  }
}

TEST(OperatorsTest, ReduceBuiltins) {
  const std::vector<double> input = {3, -5, 2, 4};
  EXPECT_EQ(ReduceOp(input, BuiltinUdf::kSmaller), -5);
  EXPECT_EQ(ReduceOp(input, BuiltinUdf::kGreater), 4);
  EXPECT_EQ(ReduceOp(input, BuiltinUdf::kSum), 4);
  EXPECT_EQ(ReduceOp(input, BuiltinUdf::kMaxAbs), 5);
}

TEST(OperatorsTest, ReduceParallelMatchesSequential) {
  std::vector<double> input(500000);
  double expected_sum = 0;
  for (size_t i = 0; i < input.size(); ++i) {
    input[i] = std::sin(static_cast<double>(i));
    expected_sum += input[i];
  }
  EXPECT_NEAR(ReduceOp(input, BuiltinUdf::kSum), expected_sum, 1e-6);
}

TEST(OperatorsTest, ReduceEmptyIsZero) {
  EXPECT_EQ(ReduceOp(std::vector<double>{}, BuiltinUdf::kSum), 0.0);
}

TEST(OperatorsTest, ReduceUserCombinerFoldsInOrder) {
  const std::vector<double> input = {8, 4, 2};
  // Non-commutative fold: ((8 / 4) / 2) = 1.
  EXPECT_EQ(ReduceOp(input, [](double a, double b) { return a / b; }), 1.0);
}

TEST(OperatorsTest, FilterAndFilterIndex) {
  const std::vector<double> input = {5, -1, 7, -2, 9};
  auto positive = [](double x) { return x > 0 ? 1.0 : 0.0; };
  EXPECT_EQ(FilterOp(input, positive), (std::vector<double>{5, 7, 9}));
  EXPECT_EQ(FilterIndexOp(input, positive), (std::vector<double>{0, 2, 4}));
}

TEST(OperatorsTest, SortAscendingAndDescending) {
  const std::vector<double> input = {3, 1, 2};
  EXPECT_EQ(SortOp(input, BuiltinUdf::kSmaller),
            (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(SortOp(input, BuiltinUdf::kGreater),
            (std::vector<double>{3, 2, 1}));
}

TEST(OperatorsTest, RandomIsDeterministicPerIndex) {
  const double a = RandomOp(0, 1, 42, 7);
  EXPECT_EQ(RandomOp(0, 1, 42, 7), a);
  EXPECT_NE(RandomOp(0, 1, 42, 8), a);
  EXPECT_NE(RandomOp(0, 1, 43, 7), a);
  EXPECT_GE(a, 0.0);
  EXPECT_LT(a, 1.0);
  const double scaled = RandomOp(5, 9, 1, 1);
  EXPECT_GE(scaled, 5.0);
  EXPECT_LT(scaled, 9.0);
}

TEST(ConcatBuilderTest, ScalarsOccupyDeclaredWidths) {
  ConcatBuilder builder;
  builder.AppendScalar(ScalarType::kUint8, 200);   // 1 byte
  builder.AppendScalar(ScalarType::kUint2, 7);     // 1 byte, wraps to 3
  builder.AppendScalar(ScalarType::kFloat, 1.5);   // 4 bytes
  builder.AppendScalar(ScalarType::kInt32, -9);    // 4 bytes
  const auto bytes = builder.Finish();
  ASSERT_EQ(bytes.size(), 10u);
  EXPECT_EQ(bytes[0], 200);
  EXPECT_EQ(bytes[1], 3);  // 7 mod 4
}

TEST(ConcatBuilderTest, SubByteArraysPackWithMinimalPadding) {
  ConcatBuilder builder;
  // 10 x uint2 = 20 bits -> 3 bytes.
  std::vector<double> values(10, 3.0);
  builder.AppendArray(ScalarType::kUint2, values);
  EXPECT_EQ(builder.size(), 3u);
  // 9 x uint1 -> 2 bytes.
  ConcatBuilder bits;
  bits.AppendArray(ScalarType::kUint1, std::vector<double>(9, 1.0));
  EXPECT_EQ(bits.size(), 2u);
}

TEST(ConcatExtractTest, RoundTripAllTypes) {
  ConcatBuilder builder;
  builder.AppendScalar(ScalarType::kFloat, 2.75);
  builder.AppendScalar(ScalarType::kInt32, -1234);
  builder.AppendScalar(ScalarType::kUint8, 99);
  const std::vector<double> packed = {1, 0, 3, 2, 1};
  builder.AppendArray(ScalarType::kUint2, packed);
  const std::vector<double> floats = {1.5, -2.5};
  builder.AppendArray(ScalarType::kFloat, floats);
  const auto buffer = builder.Finish();

  size_t cursor = 0;
  ExtractReader reader(buffer, &cursor);
  EXPECT_EQ(reader.ReadScalar(ScalarType::kFloat).value(), 2.75);
  EXPECT_EQ(reader.ReadScalar(ScalarType::kInt32).value(), -1234);
  EXPECT_EQ(reader.ReadScalar(ScalarType::kUint8).value(), 99);
  EXPECT_EQ(reader.ReadArray(ScalarType::kUint2, 5).value(), packed);
  EXPECT_EQ(reader.ReadArray(ScalarType::kFloat, 2).value(), floats);
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(ConcatExtractTest, RestOfBufferArrayRead) {
  ConcatBuilder builder;
  builder.AppendScalar(ScalarType::kFloat, 1.0);
  builder.AppendArray(ScalarType::kUint1, std::vector<double>(16, 1.0));
  const auto buffer = builder.Finish();
  size_t cursor = 0;
  ExtractReader reader(buffer, &cursor);
  (void)reader.ReadScalar(ScalarType::kFloat);
  const auto rest = reader.ReadArray(ScalarType::kUint1, -1);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest->size(), 16u);
}

TEST(ConcatExtractTest, ExhaustedBufferErrors) {
  std::vector<uint8_t> tiny = {1, 2};
  size_t cursor = 0;
  ExtractReader reader(tiny, &cursor);
  EXPECT_FALSE(reader.ReadScalar(ScalarType::kFloat).ok());
  EXPECT_FALSE(reader.ReadArray(ScalarType::kFloat, 4).ok());
}

TEST(BuiltinUdfTest, ParseNames) {
  EXPECT_TRUE(ParseBuiltinUdf("smaller").ok());
  EXPECT_TRUE(ParseBuiltinUdf("greater").ok());
  EXPECT_TRUE(ParseBuiltinUdf("sum").ok());
  EXPECT_TRUE(ParseBuiltinUdf("maxAbs").ok());
  EXPECT_FALSE(ParseBuiltinUdf("median").ok());
}

}  // namespace
}  // namespace hipress::compll
