// Flight recorder, windowed time series and health watchdog
// (docs/OBSERVABILITY.md): ring semantics, the binary dump format and its
// Python decoder, the fatal-path dump hook, window aggregation, rule
// hysteresis, and the end-to-end crash post-mortem — a run with an
// unrecoverable node failure must leave a dump whose decoded tail
// reconstructs the failing node's last recorded events.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/flight_recorder.h"
#include "src/common/metrics.h"
#include "src/common/string_util.h"
#include "src/common/timeseries.h"
#include "src/common/watchdog.h"
#include "src/hipress/hipress.h"
#include "src/train/cluster_job.h"

namespace hipress {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

FlightRecorder::Options RingOptions(int nodes, size_t per_node,
                                    std::string dump_path = {}) {
  FlightRecorder::Options options;
  options.num_nodes = nodes;
  options.events_per_node = per_node;
  options.dump_path = std::move(dump_path);
  return options;
}

bool HavePython() {
  return std::system("python3 --version > /dev/null 2>&1") == 0;
}

// Runs tools/flight_decode.py over `dump` and returns the JSONL lines.
std::vector<std::string> DecodeDump(const std::string& dump,
                                    const std::string& extra_args = "") {
  const std::string out = dump + ".jsonl";
  const std::string command = "python3 \"" +
                              std::string(HIPRESS_SOURCE_DIR) +
                              "/tools/flight_decode.py\" \"" + dump + "\" " +
                              extra_args + " > \"" + out + "\" 2>/dev/null";
  EXPECT_EQ(std::system(command.c_str()), 0) << command;
  std::ifstream file(out);
  EXPECT_TRUE(file.good()) << out;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(file, line)) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

TEST(FlightRecorderTest, InternsStableIds) {
  FlightRecorder recorder(RingOptions(1, 8));
  const uint16_t send = recorder.Intern("net.send");
  const uint16_t drop = recorder.Intern("net.drop");
  EXPECT_NE(send, drop);
  EXPECT_EQ(send, recorder.Intern("net.send"));
  const std::vector<std::string> names = recorder.type_names();
  ASSERT_GT(names.size(), static_cast<size_t>(std::max(send, drop)));
  EXPECT_EQ(names[send], "net.send");
  EXPECT_EQ(names[drop], "net.drop");
}

TEST(FlightRecorderTest, RingKeepsNewestAfterWrap) {
  FlightRecorder recorder(RingOptions(2, 4));
  const uint16_t type = recorder.Intern("ev");
  for (uint64_t i = 0; i < 10; ++i) {
    recorder.Record(0, type, static_cast<SimTime>(100 + i), i, 2 * i);
  }
  EXPECT_EQ(recorder.events_recorded(), 10u);
  EXPECT_EQ(recorder.events_overwritten(), 6u);
  const std::vector<FlightRecord> records = recorder.Snapshot(0);
  ASSERT_EQ(records.size(), 4u);
  for (size_t i = 0; i < records.size(); ++i) {
    const uint64_t expect = 6 + i;  // events 6..9 survive
    EXPECT_EQ(records[i].time(), static_cast<SimTime>(100 + expect));
    EXPECT_EQ(records[i].type(), type);
    EXPECT_EQ(records[i].a0, expect);
    EXPECT_EQ(records[i].a1, 2 * expect);
  }
  EXPECT_TRUE(recorder.Snapshot(1).empty());
  // Out-of-range nodes are ignored, not fatal.
  recorder.Record(-1, type, 0);
  recorder.Record(99, type, 0);
  EXPECT_EQ(recorder.events_recorded(), 10u);
}

TEST(FlightRecorderTest, SerializeCarriesMagicAndTypeTable) {
  FlightRecorder recorder(RingOptions(1, 4));
  const uint16_t type = recorder.Intern("hello");
  recorder.Record(0, type, 42, 1, 2);
  const std::string bytes = recorder.Serialize();
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 4), "HPFR");
  EXPECT_NE(bytes.find("hello"), std::string::npos);
}

TEST(FlightRecorderTest, PythonDecoderRoundTrips) {
  if (!HavePython()) {
    GTEST_SKIP() << "python3 unavailable";
  }
  FlightRecorder recorder(RingOptions(2, 4));
  const uint16_t alpha = recorder.Intern("alpha");
  const uint16_t beta = recorder.Intern("beta");
  recorder.Record(0, alpha, 1000, 7, 8);
  recorder.Record(1, beta, 2000, 9, 10);
  recorder.Record(1, alpha, 3000, 11, 12);
  const std::string dump = TempPath("roundtrip.hpfr");
  ASSERT_TRUE(recorder.Dump(dump).ok());
  const std::vector<std::string> lines = DecodeDump(dump);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0],
            "{\"node\": 0, \"seq\": 0, \"t_ns\": 1000, \"type\": \"alpha\", "
            "\"a0\": 7, \"a1\": 8}");
  EXPECT_EQ(lines[1],
            "{\"node\": 1, \"seq\": 0, \"t_ns\": 2000, \"type\": \"beta\", "
            "\"a0\": 9, \"a1\": 10}");
  EXPECT_EQ(lines[2],
            "{\"node\": 1, \"seq\": 1, \"t_ns\": 3000, \"type\": \"alpha\", "
            "\"a0\": 11, \"a1\": 12}");
  // --node / --tail filter to one ring's newest records.
  const std::vector<std::string> tail =
      DecodeDump(dump, "--node 1 --tail 1");
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0], lines[2]);
}

TEST(FlightRecorderDeathTest, FatalCheckDumpsRings) {
  const std::string dump = TempPath("fatal.hpfr");
  std::remove(dump.c_str());
  EXPECT_DEATH(
      {
        FlightRecorder recorder(
            {.num_nodes = 1, .events_per_node = 8, .dump_path = dump});
        FlightRecorder::InstallGlobal(&recorder);
        recorder.Record(0, recorder.Intern("last.words"), 123, 4, 5);
        CHECK(false) << "boom";
      },
      "boom");
  std::ifstream file(dump, std::ios::binary);
  ASSERT_TRUE(file.good()) << "fatal handler did not write " << dump;
  char magic[4] = {};
  file.read(magic, 4);
  EXPECT_EQ(std::string(magic, 4), "HPFR");
}

TEST(WindowedSeriesTest, AggregatesWithinAndAcrossWindows) {
  WindowedSeries series("x", 10 * kMillisecond, 4);
  series.Observe(5 * kMillisecond, 2.0);
  series.Observe(7 * kMillisecond, 4.0);
  series.Observe(25 * kMillisecond, 10.0);
  const std::vector<SeriesWindow> windows = series.Windows();
  ASSERT_EQ(windows.size(), 3u);  // window 1 materialized empty
  EXPECT_EQ(windows[0].count, 2u);
  EXPECT_DOUBLE_EQ(windows[0].min, 2.0);
  EXPECT_DOUBLE_EQ(windows[0].max, 4.0);
  EXPECT_DOUBLE_EQ(windows[0].mean(), 3.0);
  EXPECT_EQ(windows[1].count, 0u);
  EXPECT_EQ(windows[2].count, 1u);
  EXPECT_DOUBLE_EQ(windows[2].last, 10.0);
  EXPECT_EQ(series.total_samples(), 3u);
  // Rolling baseline: only non-empty prior windows count.
  EXPECT_DOUBLE_EQ(series.RollingMedianBefore(8), 3.0);
}

TEST(WindowedSeriesTest, RingDropsOldestWindows) {
  WindowedSeries series("x", kMillisecond, 4);
  for (int i = 0; i < 6; ++i) {
    series.Observe(i * kMillisecond, static_cast<double>(i));
  }
  const std::vector<SeriesWindow> windows = series.Windows();
  ASSERT_EQ(windows.size(), 4u);
  EXPECT_DOUBLE_EQ(windows.front().last, 2.0);
  EXPECT_DOUBLE_EQ(windows.back().last, 5.0);
}

TEST(TimeSeriesHubTest, CounterAttachmentsSampleDeltas) {
  MetricsRegistry registry;
  TimeSeriesHub hub;
  hub.AttachCounter(&registry, "net.retries");
  registry.counter("net.retries").Increment(5);
  hub.SampleAll(10 * kMillisecond);
  registry.counter("net.retries").Increment(3);
  hub.SampleAll(10 * kMillisecond + hub.window_width());
  const WindowedSeries* series = hub.Find("net.retries");
  ASSERT_NE(series, nullptr);
  const std::vector<SeriesWindow> windows = series->Windows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_DOUBLE_EQ(windows[0].last, 5.0);  // first delta = total so far
  EXPECT_DOUBLE_EQ(windows[1].last, 3.0);
  hub.AttachGauge(&registry, "sim.queue_depth");
  registry.gauge("sim.queue_depth").Set(17.0);
  hub.SampleAll(10 * kMillisecond + 2 * hub.window_width());
  EXPECT_DOUBLE_EQ(hub.Find("sim.queue_depth")->last_value(), 17.0);
}

// Drives `values` one window apart through a monitor holding `rule`.
HealthReport RunRule(const HealthRule& rule,
                     const std::vector<double>& values,
                     MetricsRegistry* metrics = nullptr,
                     FlightRecorder* recorder = nullptr) {
  TimeSeriesHub hub;
  HealthMonitor monitor(&hub, metrics, recorder);
  monitor.AddRule(rule);
  SimTime t = 0;
  for (const double value : values) {
    t += hub.window_width();
    hub.Series(rule.series).Observe(t, value);
    monitor.Evaluate(t);
  }
  return monitor.Finalize();
}

TEST(WatchdogTest, StallTripsAndClearsWithHysteresis) {
  HealthRule stall{"stall", "iter_ms", HealthRuleKind::kAboveMedianFactor,
                   3.0, 3, 2, 2};
  // A single slow window must NOT trip (trip_after = 2)...
  const HealthReport spike =
      RunRule(stall, {10, 10, 10, 10, 80, 10, 10, 10});
  EXPECT_TRUE(spike.trips.empty());
  EXPECT_TRUE(spike.healthy());
  // ...two consecutive ones must, and recovery must clear the rule.
  FlightRecorder recorder(RingOptions(1, 16));
  MetricsRegistry metrics;
  const HealthReport burst = RunRule(
      stall, {10, 10, 10, 10, 80, 80, 10, 10, 10}, &metrics, &recorder);
  ASSERT_EQ(burst.trips.size(), 1u);
  EXPECT_EQ(burst.trips[0].rule, "stall");
  EXPECT_GT(burst.trips[0].cleared_at, burst.trips[0].tripped_at);
  EXPECT_DOUBLE_EQ(burst.trips[0].observed, 80.0);
  EXPECT_TRUE(burst.healthy());
  EXPECT_DOUBLE_EQ(metrics.counter("health.trips").value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.gauge("health.stall").value(), 0.0);  // cleared
  // Trip + clear landed in the black box.
  const std::vector<FlightRecord> records = recorder.Snapshot(0);
  ASSERT_EQ(records.size(), 2u);
  const std::vector<std::string> names = recorder.type_names();
  EXPECT_EQ(names[records[0].type()], "health.trip:stall");
  EXPECT_EQ(names[records[1].type()], "health.clear:stall");
}

TEST(WatchdogTest, StillTrippedAtEndIsUnhealthy) {
  HealthRule stall{"stall", "iter_ms", HealthRuleKind::kAboveMedianFactor,
                   3.0, 3, 2, 2};
  const HealthReport report =
      RunRule(stall, {10, 10, 10, 10, 80, 80, 80, 80});
  ASSERT_EQ(report.trips.size(), 1u);
  EXPECT_LT(report.trips[0].cleared_at, 0);  // still open
  EXPECT_FALSE(report.healthy());
  ASSERT_EQ(report.tripped_at_end.size(), 1u);
  EXPECT_EQ(report.tripped_at_end[0], "stall");
  EXPECT_NE(report.Summary().find("STILL TRIPPED: stall"),
            std::string::npos);
}

TEST(WatchdogTest, AboveValueRuleArmsAfterMinHistory) {
  // min_history must gate absolute rules too: warm-up pool misses in the
  // first windows are expected and must not trip.
  HealthRule misses{"pool_miss_growth", "misses",
                    HealthRuleKind::kAboveValue, 0.0, 3, 2, 2};
  EXPECT_TRUE(RunRule(misses, {50, 20, 0, 0, 0, 0}).trips.empty());
  const HealthReport late = RunRule(misses, {50, 20, 0, 0, 7, 7, 7});
  ASSERT_EQ(late.trips.size(), 1u);
  EXPECT_EQ(late.trips[0].rule, "pool_miss_growth");
}

TEST(WatchdogTest, TripsReplayDeterministically) {
  HealthRule stall{"stall", "iter_ms", HealthRuleKind::kAboveMedianFactor,
                   3.0, 3, 2, 2};
  const std::vector<double> values = {10, 10, 10, 10, 80, 80, 10, 10, 10};
  const HealthReport a = RunRule(stall, values);
  const HealthReport b = RunRule(stall, values);
  ASSERT_EQ(a.trips.size(), b.trips.size());
  for (size_t i = 0; i < a.trips.size(); ++i) {
    EXPECT_EQ(a.trips[i].tripped_at, b.trips[i].tripped_at);
    EXPECT_EQ(a.trips[i].cleared_at, b.trips[i].cleared_at);
  }
}

TEST(TrainerObservabilityTest, HealthyRunReportsCleanBlackBox) {
  HiPressOptions options;
  options.model = "resnet50";
  options.system = "hipress-ps";
  options.cluster = ClusterSpec::Ec2(4);
  options.train.iterations = 3;
  auto result = RunTrainingSimulation(options);
  ASSERT_TRUE(result.ok()) << result.status();
  const TrainReport& report = result->report;
  ASSERT_NE(report.flight, nullptr);
  EXPECT_GT(report.flight->events_recorded(), 0u);
  EXPECT_EQ(report.flight->num_nodes(), 4);
  EXPECT_TRUE(report.health.enabled);
  EXPECT_EQ(report.health.evaluations, 3u);
  EXPECT_TRUE(report.health.healthy());
  EXPECT_GT(report.metrics->gauge("fr.events_recorded").value(), 0.0);
  EXPECT_DOUBLE_EQ(report.metrics->gauge("health.rules").value(), 5.0);
  EXPECT_DOUBLE_EQ(report.metrics->gauge("health.tripped_at_end").value(),
                   0.0);
}

TEST(TrainerObservabilityTest, RecorderOffLeavesResultsIdentical) {
  auto run = [](bool observability) {
    HiPressOptions options;
    options.model = "vgg19";
    options.system = "hipress-ring";
    options.cluster = ClusterSpec::Ec2(4);
    options.train.observability.flight_recorder = observability;
    options.train.observability.watchdog = observability;
    auto result = RunTrainingSimulation(options);
    EXPECT_TRUE(result.ok()) << result.status();
    return result->report;
  };
  const TrainReport on = run(true);
  const TrainReport off = run(false);
  EXPECT_EQ(on.iteration_time, off.iteration_time);
  EXPECT_EQ(on.throughput, off.throughput);
  EXPECT_EQ(off.flight, nullptr);
  EXPECT_FALSE(off.health.enabled);
}

TEST(ClusterObservabilityTest, MultiJobRunCarriesHealthAndRings) {
  ClusterJobsOptions options;
  options.cluster = ClusterSpec::Ec2(8);
  for (int k = 0; k < 2; ++k) {
    ClusterJobSpec spec;
    spec.model = "resnet50";
    spec.iterations = 3;
    options.jobs.push_back(spec);
  }
  auto run = RunClusterJobs(options);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_NE(run->flight, nullptr);
  EXPECT_EQ(run->flight->num_nodes(), 8);
  EXPECT_GT(run->flight->events_recorded(), 0u);
  EXPECT_TRUE(run->health.enabled);
  // One evaluation per finished job iteration.
  EXPECT_EQ(run->health.evaluations, 6u);
  EXPECT_TRUE(run->health.healthy());
  // Per-job stall rules + queue_blowup + pool_miss_growth.
  EXPECT_DOUBLE_EQ(run->metrics->gauge("health.rules").value(), 4.0);
}

// The acceptance path (ISSUE 9): an unrecoverable node failure writes a
// black-box dump mid-run whose decoded JSONL tail reconstructs the failing
// node's final recorded events byte-for-byte.
TEST(PostMortemTest, CrashDumpReconstructsFailingNodeTail) {
  if (!HavePython()) {
    GTEST_SKIP() << "python3 unavailable";
  }
  const std::string dump = TempPath("postmortem.hpfr");
  std::remove(dump.c_str());
  const int crashed = 3;
  HiPressOptions options;
  options.model = "resnet50";
  options.system = "hipress-ps";
  options.cluster = ClusterSpec::Ec2(4);
  options.cluster.net.faults.crashes.push_back(
      {crashed, FromMillis(40.0)});
  options.train.iterations = 3;
  options.train.observability.flight_dump_path = dump;
  auto result = RunTrainingSimulation(options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->report.degraded);
  ASSERT_NE(result->report.flight, nullptr);
  EXPECT_GT(result->report.flight->dumps_written(), 0u);

  // The in-memory ring for the crashed node is ground truth; the decoded
  // dump's tail for that node must match it record-for-record.
  const std::vector<FlightRecord> truth =
      result->report.flight->Snapshot(crashed);
  ASSERT_FALSE(truth.empty());
  const std::vector<std::string> names =
      result->report.flight->type_names();
  constexpr size_t kTail = 8;
  const std::vector<std::string> lines = DecodeDump(
      dump, StrFormat("--node %d --tail %zu", crashed, kTail));
  ASSERT_EQ(lines.size(), std::min(kTail, truth.size()));
  const size_t skip = truth.size() - lines.size();
  for (size_t i = 0; i < lines.size(); ++i) {
    const FlightRecord& record = truth[skip + i];
    const std::string expect = StrFormat(
        "\"t_ns\": %lld, \"type\": \"%s\", \"a0\": %llu, \"a1\": %llu}",
        static_cast<long long>(record.time()),
        names[record.type()].c_str(),
        static_cast<unsigned long long>(record.a0),
        static_cast<unsigned long long>(record.a1));
    EXPECT_NE(lines[i].find(expect), std::string::npos)
        << "line " << i << ": " << lines[i] << " vs " << expect;
  }
  // The run survived the crash, so the last dump reason on node 0 is the
  // end-of-run one; the mid-run retry-exhaustion dump happened first.
  const std::vector<std::string> node0 =
      DecodeDump(dump, "--node 0 --tail 1");
  ASSERT_EQ(node0.size(), 1u);
  EXPECT_NE(node0[0].find("fr.dump:end-of-run"), std::string::npos);
}

}  // namespace
}  // namespace hipress
