// Critical-path profiler, cost-model auditor and step reports: exact chain
// extraction on hand-built graphs, window attribution invariants, safety on
// cancelled graphs, auditor fit/error math, and the end-to-end trainer
// integration (per-iteration records summing to the iteration time,
// straggler skew rising under link degradation).
#include "src/casync/critical_path.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/profiler.h"
#include "src/hipress/hipress.h"

namespace hipress {
namespace {

TaskId AddTimedTask(TaskGraph* graph, PrimitiveType type, int node,
                    SimTime ready, SimTime start, SimTime end) {
  SyncTask task;
  task.type = type;
  task.node = node;
  task.ready_time = ready;
  task.start_time = start;
  task.end_time = end;
  return graph->Add(task);
}

// encode(0..10) -> send(10..40) -> recv(40) -> decode(45..60 after a 5ns
// queue), plus a faster side encode that must NOT be picked as the gate.
TaskGraph MakeDiamondGraph() {
  TaskGraph graph;
  const TaskId encode =
      AddTimedTask(&graph, PrimitiveType::kEncode, 0, 0, 0, 10);
  const TaskId side = AddTimedTask(&graph, PrimitiveType::kEncode, 1, 0, 0, 5);
  const TaskId send =
      AddTimedTask(&graph, PrimitiveType::kSend, 0, 10, 10, 40);
  const TaskId recv =
      AddTimedTask(&graph, PrimitiveType::kRecv, 1, 40, 40, 40);
  const TaskId decode =
      AddTimedTask(&graph, PrimitiveType::kDecode, 1, 40, 45, 60);
  graph.AddDep(encode, send);
  graph.AddDep(side, send);
  graph.AddDep(send, recv);
  graph.AddDep(recv, decode);
  return graph;
}

TEST(CriticalPathTest, ExtractsGatingChainExactly) {
  const TaskGraph graph = MakeDiamondGraph();
  const CriticalPath path = AnalyzeCriticalPath(graph);
  ASSERT_EQ(path.steps.size(), 4u);
  EXPECT_EQ(path.steps[0].type, PrimitiveType::kEncode);
  EXPECT_EQ(path.steps[0].node, 0);  // the slower encode gates the send
  EXPECT_EQ(path.steps[1].type, PrimitiveType::kSend);
  EXPECT_EQ(path.steps[2].type, PrimitiveType::kRecv);
  EXPECT_EQ(path.steps[3].type, PrimitiveType::kDecode);
  EXPECT_EQ(path.path_start, 0);
  EXPECT_EQ(path.path_end, 60);
  EXPECT_EQ(path.attribution[CpCategory::kEncode], 10);
  EXPECT_EQ(path.attribution[CpCategory::kSend], 30);
  EXPECT_EQ(path.attribution[CpCategory::kRecv], 0);
  EXPECT_EQ(path.attribution[CpCategory::kDecode], 15);
  EXPECT_EQ(path.attribution[CpCategory::kWait], 5);
  // The chain's attribution covers its extent exactly.
  EXPECT_EQ(path.attribution.total(), path.path_end - path.path_start);
}

TEST(CriticalPathTest, IterationAttributionSumsToWindow) {
  const TaskGraph graph = MakeDiamondGraph();
  TaskGraph early;  // finishes before the diamond; must not bound
  const TaskId a = AddTimedTask(&early, PrimitiveType::kEncode, 0, 0, 0, 3);
  const TaskId b = AddTimedTask(&early, PrimitiveType::kSend, 0, 3, 3, 8);
  early.AddDep(a, b);
  const IterationAttribution attrib =
      AttributeIteration({&early, &graph}, -20, 100);
  EXPECT_EQ(attrib.bounding_graph, 1);
  // Pre-chain lead (20) and post-chain barrier tail (40) are compute.
  EXPECT_EQ(attrib.attribution[CpCategory::kCompute], 60);
  EXPECT_EQ(attrib.attribution.total(), 120);  // == window, exactly
}

TEST(CriticalPathTest, EmptyWindowIsAllCompute) {
  const IterationAttribution attrib = AttributeIteration({}, 0, 50);
  EXPECT_EQ(attrib.bounding_graph, -1);
  EXPECT_EQ(attrib.attribution[CpCategory::kCompute], 50);
  EXPECT_TRUE(attrib.path.empty());
}

TEST(CriticalPathTest, CancelledGraphDoesNotCrash) {
  // Nothing ran: all timestamps stay kTaskNeverRan.
  TaskGraph graph;
  const TaskId a = graph.Add(SyncTask{});
  const TaskId b = graph.Add(SyncTask{});
  graph.AddDep(a, b);
  EXPECT_TRUE(AnalyzeCriticalPath(graph).empty());
  const IterationAttribution attrib = AttributeIteration({&graph}, 0, 10);
  EXPECT_EQ(attrib.bounding_graph, -1);
  EXPECT_EQ(attrib.attribution[CpCategory::kCompute], 10);
}

TEST(CriticalPathTest, PartiallyExecutedGraphUsesCompletedPrefix) {
  TaskGraph graph;
  const TaskId done =
      AddTimedTask(&graph, PrimitiveType::kEncode, 0, 0, 0, 10);
  SyncTask pending;  // dispatched but cancelled mid-flight
  pending.type = PrimitiveType::kSend;
  pending.node = 0;
  pending.ready_time = 10;
  pending.start_time = 10;
  const TaskId cancelled = graph.Add(pending);
  graph.AddDep(done, cancelled);
  const CriticalPath path = AnalyzeCriticalPath(graph);
  ASSERT_EQ(path.steps.size(), 1u);
  EXPECT_EQ(path.steps[0].task, done);
  EXPECT_EQ(path.path_end, 10);
}

TEST(CriticalPathTest, SpansLandOnCriticalPathLane) {
  const TaskGraph graph = MakeDiamondGraph();
  const CriticalPath path = AnalyzeCriticalPath(graph);
  SpanCollector spans;
  AddCriticalPathSpans(path, -20, /*compute_node=*/0, &spans);
  const std::vector<TraceSpan> recorded = spans.spans();
  ASSERT_FALSE(recorded.empty());
  EXPECT_EQ(recorded[0].name, "cp:compute");
  EXPECT_EQ(recorded[0].start, -20);
  EXPECT_EQ(recorded[0].end, 0);
  for (const TraceSpan& span : recorded) {
    EXPECT_EQ(span.lane, kTraceLaneCriticalPath);
    EXPECT_EQ(span.name.rfind("cp:", 0), 0u);
  }
  // encode + send + recv(zero-width, skipped) + decode + its queue + lead.
  EXPECT_EQ(recorded.size(), 5u);
}

// ------------------------------------------------------------------ auditor

TEST(CostModelAuditorTest, ZeroErrorWhenSamplesMatchPrediction) {
  CostModelAuditor auditor;
  const KernelCost line{FromMicros(20.0), 1e9};
  auditor.SetPrediction(CostPrimitive::kEncode, line);
  for (uint64_t bytes : {1000u, 50000u, 1000000u}) {
    auditor.AddSample(CostPrimitive::kEncode, bytes, line.Time(bytes));
  }
  EXPECT_EQ(auditor.samples(CostPrimitive::kEncode), 3u);
  EXPECT_NEAR(auditor.MeanRelativeError(CostPrimitive::kEncode), 0.0, 1e-9);
}

TEST(CostModelAuditorTest, DriftRegistersAsRelativeError) {
  CostModelAuditor auditor;
  const KernelCost line{FromMicros(20.0), 1e9};
  auditor.SetPrediction(CostPrimitive::kSend, line);
  for (uint64_t bytes : {1000u, 50000u, 1000000u}) {
    auditor.AddSample(CostPrimitive::kSend, bytes, 2 * line.Time(bytes));
  }
  EXPECT_NEAR(auditor.MeanRelativeError(CostPrimitive::kSend), 1.0, 1e-6);
}

TEST(CostModelAuditorTest, FitRecoversKnownLine) {
  CostModelAuditor auditor;
  const KernelCost truth{FromMicros(35.0), 4e9};
  for (uint64_t bytes = 1 << 10; bytes <= 1 << 24; bytes *= 4) {
    auditor.AddSample(CostPrimitive::kMerge, bytes, truth.Time(bytes));
  }
  KernelCost fitted;
  ASSERT_TRUE(auditor.Fit(CostPrimitive::kMerge, &fitted));
  EXPECT_NEAR(static_cast<double>(fitted.launch_overhead),
              static_cast<double>(truth.launch_overhead),
              static_cast<double>(FromMicros(1.0)));
  EXPECT_NEAR(fitted.bytes_per_second, truth.bytes_per_second,
              0.01 * truth.bytes_per_second);
}

TEST(CostModelAuditorTest, FitRefusesDegenerateSamples) {
  CostModelAuditor auditor;
  KernelCost fitted;
  EXPECT_FALSE(auditor.Fit(CostPrimitive::kEncode, &fitted));  // no samples
  auditor.AddSample(CostPrimitive::kEncode, 4096, 100);
  auditor.AddSample(CostPrimitive::kEncode, 4096, 120);
  // All samples at one size: slope unidentifiable.
  EXPECT_FALSE(auditor.Fit(CostPrimitive::kEncode, &fitted));
}

TEST(CostModelAuditorTest, PublishIsIdempotent) {
  CostModelAuditor auditor;
  auditor.SetPrediction(CostPrimitive::kDecode, KernelCost{0, 1e9});
  auditor.AddSample(CostPrimitive::kDecode, 1000, 500);
  MetricsRegistry registry;
  auditor.Publish(&registry);
  auditor.Publish(&registry);
  EXPECT_EQ(registry.counter_value("costmodel.samples.decode"), 1u);
}

// --------------------------------------------------------------- step report

TEST(StepReportTest, JsonShapeIsStable) {
  StepRecord record;
  record.iteration = 3;
  record.iteration_ms = 12.5;
  record.compute_ms = 10.0;
  record.send_ms = 2.5;
  record.path_tasks = 7;
  record.degraded = true;
  EXPECT_EQ(StepRecordToJson(record),
            "{\"iteration\":3,\"iteration_ms\":12.500000,"
            "\"compute_ms\":10.000000,\"encode_ms\":0.000000,"
            "\"merge_ms\":0.000000,\"send_ms\":2.500000,"
            "\"recv_ms\":0.000000,\"decode_ms\":0.000000,"
            "\"wait_ms\":0.000000,\"path_tasks\":7,"
            "\"straggler_skew_ms\":0.000000,\"degraded\":true}");
}

TEST(StepReportTest, WritesOneLinePerIteration) {
  std::vector<StepRecord> steps(3);
  for (int i = 0; i < 3; ++i) {
    steps[i].iteration = i;
  }
  const std::string path = testing::TempDir() + "/steps_test.jsonl";
  ASSERT_TRUE(WriteStepReport(path, steps).ok());
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());
  int lines = 0;
  size_t pos = 0;
  while ((pos = contents.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, 3);
  EXPECT_EQ(contents.rfind("{\"iteration\":0,", 0), 0u);
}

// ------------------------------------------------------------- end to end

TrainReport MustRun(const std::string& model, const std::string& system,
                    int nodes, FaultConfig faults = {}) {
  HiPressOptions options;
  options.model = model;
  options.system = system;
  options.cluster = ClusterSpec::Ec2(nodes);
  options.cluster.net.faults = faults;
  auto result = RunTrainingSimulation(options);
  EXPECT_TRUE(result.ok()) << result.status();
  return result->report;
}

TEST(TrainerCriticalPathTest, StepAttributionSumsToIterationTime) {
  const TrainReport report = MustRun("vgg19", "hipress-ps", 4);
  ASSERT_FALSE(report.steps.empty());
  for (const StepRecord& step : report.steps) {
    const double sum = step.compute_ms + step.encode_ms + step.merge_ms +
                       step.send_ms + step.recv_ms + step.decode_ms +
                       step.wait_ms;
    EXPECT_NEAR(sum, step.iteration_ms, 0.05 * step.iteration_ms);
    EXPECT_GT(step.path_tasks, 0);
  }
  // The measured iteration's attribution is also exported as gauges.
  EXPECT_GT(report.cp_attribution.total(), 0);
  EXPECT_NEAR(report.metrics->gauge_value("cp.compute_ms") +
                  report.metrics->gauge_value("cp.encode_ms") +
                  report.metrics->gauge_value("cp.merge_ms") +
                  report.metrics->gauge_value("cp.send_ms") +
                  report.metrics->gauge_value("cp.recv_ms") +
                  report.metrics->gauge_value("cp.decode_ms") +
                  report.metrics->gauge_value("cp.wait_ms"),
              ToMillis(report.iteration_time),
              0.05 * ToMillis(report.iteration_time));
  EXPECT_GT(report.iteration_p50_ms, 0.0);
  EXPECT_LE(report.iteration_p50_ms, report.iteration_p99_ms);
}

TEST(TrainerCriticalPathTest, AuditorPublishesEveryActivePrimitive) {
  const TrainReport report = MustRun("vgg19", "hipress-ps", 4);
  for (const char* name : {"encode", "decode", "merge", "send"}) {
    EXPECT_GT(report.metrics->counter_value(
                  std::string("costmodel.samples.") + name),
              0u)
        << name;
  }
  // Kernels execute at exactly their modelled cost; drift there means the
  // engine and the speed profile diverged.
  EXPECT_NEAR(report.metrics->gauge_value("costmodel.err.encode"), 0.0, 1e-6);
  EXPECT_NEAR(report.metrics->gauge_value("costmodel.err.merge"), 0.0, 1e-6);
  // Sends queue and batch; their audited latency must exceed the
  // uncontended model at least occasionally.
  EXPECT_GT(report.metrics->gauge_value("costmodel.err.send"), 0.0);
}

TEST(TrainerCriticalPathTest, StragglerSkewRisesUnderLinkDegradation) {
  const TrainReport balanced = MustRun("vgg19", "hipress-ps", 4);
  ASSERT_FALSE(balanced.steps.empty());
  FaultConfig faults;
  // Every transfer into node 3 at 2% bandwidth for the whole run: node 3's
  // sync tail straggles while the other nodes finish on time.
  faults.degradations.push_back(
      LinkDegradation{-1, 3, 0, FromMillis(10000.0), 0.02});
  const TrainReport skewed = MustRun("vgg19", "hipress-ps", 4, faults);
  ASSERT_FALSE(skewed.steps.empty());
  EXPECT_GT(skewed.steps.back().straggler_skew_ms,
            balanced.steps.back().straggler_skew_ms);
  EXPECT_GT(skewed.metrics->gauge_value("train.straggler_skew_ms"),
            balanced.metrics->gauge_value("train.straggler_skew_ms"));
}

TEST(TrainerCriticalPathTest, RecalibrationFeedsPlannerCodecOverride) {
  const TrainReport report = MustRun("vgg19", "hipress-ps", 4);
  // Rebuild the planner from audited fits (the refresh path): fitted
  // encode/decode lines reproduce the calibrated planning inputs, so the
  // override planner prices like the original.
  SyncConfig config;
  config.num_nodes = 4;
  SeCoPaPlanner original(config, 0.05);
  CodecSpeed refreshed = original.codec_speed();
  CostModelAuditor auditor;
  for (uint64_t bytes = 1 << 12; bytes <= 1 << 26; bytes *= 2) {
    auditor.AddSample(CostPrimitive::kEncode, bytes,
                      original.codec_speed().encode.Time(bytes));
    auditor.AddSample(CostPrimitive::kDecode, bytes,
                      original.codec_speed().decode.Time(bytes));
  }
  ASSERT_TRUE(auditor.Fit(CostPrimitive::kEncode, &refreshed.encode));
  ASSERT_TRUE(auditor.Fit(CostPrimitive::kDecode, &refreshed.decode));
  SeCoPaPlanner recalibrated(config, 0.05, refreshed);
  const uint64_t bytes = 64u << 20;
  const SimTime before = original.SyncCostCompressed(bytes, 4);
  const SimTime after = recalibrated.SyncCostCompressed(bytes, 4);
  EXPECT_NEAR(static_cast<double>(after), static_cast<double>(before),
              0.02 * static_cast<double>(before));
  (void)report;
}

}  // namespace
}  // namespace hipress
