#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/common/rng.h"
#include "src/compress/error_feedback.h"
#include "src/compress/onebit.h"
#include "src/compress/registry.h"
#include "src/compress/tbq.h"

namespace hipress {
namespace {

std::shared_ptr<const Compressor> MakeShared(const char* name,
                                             CompressorParams params = {}) {
  auto codec = CreateCompressor(name, params);
  EXPECT_TRUE(codec.ok());
  return std::shared_ptr<const Compressor>(std::move(codec).value());
}

TEST(ErrorFeedbackTest, ResidualEqualsCompressionError) {
  auto codec = MakeShared("onebit");
  ErrorFeedback feedback(codec);
  Rng rng(1);
  Tensor gradient("g", 100);
  gradient.FillGaussian(rng);

  ByteBuffer encoded;
  ASSERT_TRUE(
      feedback.EncodeWithFeedback("g", gradient.span(), &encoded).ok());

  std::vector<float> decoded(100);
  ASSERT_TRUE(codec->Decode(encoded, decoded).ok());
  const auto residual = feedback.residual("g");
  ASSERT_EQ(residual.size(), 100u);
  for (size_t i = 0; i < 100; ++i) {
    // First step: corrected == gradient, so residual = g - decode(enc(g)).
    EXPECT_NEAR(residual[i], gradient[i] - decoded[i], 1e-6) << i;
  }
}

TEST(ErrorFeedbackTest, ResidualCarriesAcrossSteps) {
  CompressorParams params;
  params.threshold = 10.0f;  // TBQ quantizes everything to zero
  auto codec = MakeShared("tbq", params);
  ErrorFeedback feedback(codec);
  Tensor gradient("g", 10);
  gradient.Fill(1.0f);

  // With tau=10, every encode emits zeros; residual accumulates the full
  // gradient every step: after k steps residual = k * gradient.
  ByteBuffer encoded;
  for (int step = 1; step <= 3; ++step) {
    ASSERT_TRUE(
        feedback.EncodeWithFeedback("g", gradient.span(), &encoded).ok());
    const auto residual = feedback.residual("g");
    for (size_t i = 0; i < 10; ++i) {
      EXPECT_FLOAT_EQ(residual[i], static_cast<float>(step));
    }
  }
}

TEST(ErrorFeedbackTest, AccumulatedTransmissionApproachesAccumulatedGradient) {
  // The defining EF property: sum of decoded transmissions tracks the sum
  // of raw gradients with bounded lag.
  auto codec = MakeShared("onebit");
  ErrorFeedback feedback(codec);
  Rng rng(7);
  const size_t n = 200;
  std::vector<double> gradient_sum(n, 0.0);
  std::vector<double> sent_sum(n, 0.0);
  for (int step = 0; step < 50; ++step) {
    Tensor gradient("g", n);
    gradient.FillGaussian(rng, 0.5f);
    for (size_t i = 0; i < n; ++i) {
      gradient_sum[i] += gradient[i];
    }
    ByteBuffer encoded;
    ASSERT_TRUE(
        feedback.EncodeWithFeedback("g", gradient.span(), &encoded).ok());
    std::vector<float> decoded(n);
    ASSERT_TRUE(codec->Decode(encoded, decoded).ok());
    for (size_t i = 0; i < n; ++i) {
      sent_sum[i] += decoded[i];
    }
  }
  // The gap equals the current residual, which stays bounded.
  const auto residual = feedback.residual("g");
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(sent_sum[i] + residual[i], gradient_sum[i], 1e-3) << i;
  }
}

TEST(ErrorFeedbackTest, IndependentKeysKeepIndependentResiduals) {
  auto codec = MakeShared("onebit");
  ErrorFeedback feedback(codec);
  Tensor a("a", 10);
  a.Fill(1.0f);
  Tensor b("b", 20);
  b.Fill(-1.0f);
  ByteBuffer encoded;
  ASSERT_TRUE(feedback.EncodeWithFeedback("a", a.span(), &encoded).ok());
  ASSERT_TRUE(feedback.EncodeWithFeedback("b", b.span(), &encoded).ok());
  EXPECT_EQ(feedback.residual("a").size(), 10u);
  EXPECT_EQ(feedback.residual("b").size(), 20u);
  EXPECT_EQ(feedback.residual("c").size(), 0u);
}

TEST(ErrorFeedbackTest, ResetClearsState) {
  auto codec = MakeShared("onebit");
  ErrorFeedback feedback(codec);
  Tensor gradient("g", 10);
  gradient.Fill(1.0f);
  ByteBuffer encoded;
  ASSERT_TRUE(
      feedback.EncodeWithFeedback("g", gradient.span(), &encoded).ok());
  feedback.Reset();
  EXPECT_EQ(feedback.residual("g").size(), 0u);
}

}  // namespace
}  // namespace hipress
