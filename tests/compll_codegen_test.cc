// Code generator: structural checks on the emitted C++ plus a host-compiler
// syntax pass over every generated built-in algorithm (the generated unit
// must be a valid, self-contained translation unit).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/compll/builtin_algorithms.h"
#include "src/compll/codegen.h"

namespace hipress::compll {
namespace {

std::string MustGenerate(const std::string& source, const std::string& name) {
  CodegenOptions options;
  options.algorithm_name = name;
  auto generated = GenerateCppFromSource(source, options);
  EXPECT_TRUE(generated.ok()) << generated.status();
  return std::move(generated).value();
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(CodegenTest, EmitsEntryPointsAndNamespace) {
  const DslAlgorithm* terngrad = FindDslAlgorithm("terngrad");
  ASSERT_NE(terngrad, nullptr);
  const std::string code = MustGenerate(terngrad->source, "terngrad");
  EXPECT_TRUE(Contains(code, "namespace compll_gen_terngrad"));
  EXPECT_TRUE(Contains(code, "void terngrad_encode(const float* __input"));
  EXPECT_TRUE(Contains(code, "void terngrad_decode(const uint8_t* __input"));
  EXPECT_TRUE(Contains(code, "struct EncodeParams"));
}

TEST(CodegenTest, GlobalsBecomeFileScopeVariables) {
  const DslAlgorithm* terngrad = FindDslAlgorithm("terngrad");
  const std::string code = MustGenerate(terngrad->source, "terngrad");
  EXPECT_TRUE(Contains(code, "static double g_min"));
  EXPECT_TRUE(Contains(code, "static double g_max"));
  EXPECT_TRUE(Contains(code, "static double g_gap"));
}

TEST(CodegenTest, MapLowersToRuntimeHelperWithHiddenIndex) {
  const DslAlgorithm* terngrad = FindDslAlgorithm("terngrad");
  const std::string code = MustGenerate(terngrad->source, "terngrad");
  EXPECT_TRUE(Contains(code, "__map("));
  EXPECT_TRUE(Contains(code, "floatToUint(__x, __i)"));
  // random() lowers to the counter-based uniform keyed on the element index.
  EXPECT_TRUE(Contains(code, "__random(0, 1, kSeed, __idx)"));
}

TEST(CodegenTest, SubByteArraysUseBitPacking) {
  const DslAlgorithm* terngrad = FindDslAlgorithm("terngrad");
  const std::string code = MustGenerate(terngrad->source, "terngrad");
  EXPECT_TRUE(Contains(code, "__append_packed(__b, Q, 2)"));
  EXPECT_TRUE(Contains(code, "read_packed(2,"));
}

TEST(CodegenTest, SparseProgramsUseScatter) {
  const DslAlgorithm* dgc = FindDslAlgorithm("dgc");
  const std::string code = MustGenerate(dgc->source, "dgc");
  EXPECT_TRUE(Contains(code, "__scatter("));
  EXPECT_TRUE(Contains(code, "__findex("));
  EXPECT_TRUE(Contains(code, "__sort_desc("));
}

TEST(CodegenTest, IfElseAndElementAssignmentLower) {
  const std::string code = MustGenerate(R"(
float clampPositive(float x) {
  if (x > 0) {
    return x;
  } else {
    return 0;
  }
}
void encode(float* gradient, uint8* compressed) {
  gradient[0] = clampPositive(gradient[0]);
  compressed = concat(gradient);
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)",
                                        "clamp");
  EXPECT_TRUE(Contains(code, "if (("));
  EXPECT_TRUE(Contains(code, "} else {"));
  EXPECT_TRUE(Contains(code, "gradient[static_cast<size_t>(0)] ="));
  EXPECT_TRUE(Contains(code, "clampPositive("));
}

TEST(CodegenTest, CoercionsFollowDeclaredTypes) {
  const std::string code = MustGenerate(R"(
void encode(float* gradient, uint8* compressed) {
  uint2 q = 7;
  int32 n = gradient.size;
  compressed = concat(q, n, gradient);
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)",
                                        "coerce");
  EXPECT_TRUE(Contains(code, "__coerce_uint(7, 2)"));
  EXPECT_TRUE(Contains(code, "__coerce_int32("));
}

TEST(CodegenTest, EmitsCEntryPoints) {
  const DslAlgorithm* terngrad = FindDslAlgorithm("terngrad");
  const std::string code = MustGenerate(terngrad->source, "terngrad");
  EXPECT_TRUE(Contains(code, "extern \"C\" int terngrad_encode_c("));
  EXPECT_TRUE(Contains(code, "extern \"C\" int terngrad_decode_c("));
  // Positional param marshalling for the EncodeParams block.
  EXPECT_TRUE(Contains(code, "p.bitwidth = params[0]"));
}

TEST(CodegenTest, RejectsUnknownFunctions) {
  CodegenOptions options;
  auto generated = GenerateCppFromSource(R"(
void encode(float* g, uint8* out) {
  out = mystery(g);
}
void decode(uint8* in, float* g) {
  g = extract<float*>(in);
}
)",
                                         options);
  EXPECT_FALSE(generated.ok());
}

// Compile every generated built-in with the host compiler (-fsyntax-only):
// the generated unit must stand alone.
class CodegenCompileTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CodegenCompileTest, GeneratedCodeCompiles) {
  const DslAlgorithm* algorithm = FindDslAlgorithm(GetParam());
  ASSERT_NE(algorithm, nullptr);
  const std::string code = MustGenerate(algorithm->source, GetParam());

  const std::string path =
      std::string("/tmp/compll_gen_") + GetParam() + ".cc";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << code;
    // Reference the entry points so unused-function warnings cannot hide
    // missing definitions.
  }
  const std::string command =
      "c++ -std=c++20 -fsyntax-only -Wall " + path + " 2>/dev/null";
  const int rc = std::system(command.c_str());
  if (rc == -1 || WEXITSTATUS(rc) == 127) {
    GTEST_SKIP() << "host compiler unavailable";
  }
  EXPECT_EQ(WEXITSTATUS(rc), 0) << "generated code failed to compile:\n"
                                << code;
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CodegenCompileTest,
                         ::testing::Values("onebit", "tbq", "terngrad",
                                           "dgc", "graddrop"));

}  // namespace
}  // namespace hipress::compll
