// Code generator: structural checks on the emitted C++ plus a host-compiler
// syntax pass over every generated built-in algorithm (the generated unit
// must be a valid, self-contained translation unit).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/compll/builtin_algorithms.h"
#include "src/compll/codegen.h"

namespace hipress::compll {
namespace {

std::string MustGenerate(const std::string& source, const std::string& name,
                         bool simd = true) {
  CodegenOptions options;
  options.algorithm_name = name;
  options.simd = simd;
  auto generated = GenerateCppFromSource(source, options);
  EXPECT_TRUE(generated.ok()) << generated.status();
  return std::move(generated).value();
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(CodegenTest, EmitsEntryPointsAndNamespace) {
  const DslAlgorithm* terngrad = FindDslAlgorithm("terngrad");
  ASSERT_NE(terngrad, nullptr);
  const std::string code = MustGenerate(terngrad->source, "terngrad");
  EXPECT_TRUE(Contains(code, "namespace compll_gen_terngrad"));
  EXPECT_TRUE(Contains(code, "void terngrad_encode(const float* __input"));
  EXPECT_TRUE(Contains(code, "void terngrad_decode(const uint8_t* __input"));
  EXPECT_TRUE(Contains(code, "struct EncodeParams"));
}

TEST(CodegenTest, GlobalsBecomeFileScopeVariables) {
  const DslAlgorithm* terngrad = FindDslAlgorithm("terngrad");
  const std::string code = MustGenerate(terngrad->source, "terngrad");
  EXPECT_TRUE(Contains(code, "static double g_min"));
  EXPECT_TRUE(Contains(code, "static double g_max"));
  EXPECT_TRUE(Contains(code, "static double g_gap"));
}

TEST(CodegenTest, MapLowersToRuntimeHelperWithHiddenIndex) {
  // With the SIMD backend disabled, map lowers to the generic __map helper
  // with a (value, index) lambda over the udf.
  const DslAlgorithm* terngrad = FindDslAlgorithm("terngrad");
  const std::string code =
      MustGenerate(terngrad->source, "terngrad", /*simd=*/false);
  EXPECT_TRUE(Contains(code, "__map("));
  EXPECT_TRUE(Contains(code, "floatToUint(__x, __i)"));
  EXPECT_TRUE(Contains(code, "#define COMPLL_ENABLE_SIMD 0"));
  EXPECT_FALSE(Contains(code, "__map_vec_"));
  // random() lowers to the counter-based uniform keyed on the element index.
  EXPECT_TRUE(Contains(code, "__random(0, 1, kSeed, __idx)"));
}

TEST(CodegenTest, SimdMapLowersToTiledPerIsaKernels) {
  const DslAlgorithm* terngrad = FindDslAlgorithm("terngrad");
  const std::string code = MustGenerate(terngrad->source, "terngrad");
  EXPECT_TRUE(Contains(code, "#define COMPLL_ENABLE_SIMD 1"));
  // The map over floatToUint uses the tiled wrapper, not the lambda loop.
  EXPECT_TRUE(Contains(code, "__map_vec_floatToUint("));
  EXPECT_FALSE(Contains(code, "floatToUint(__x, __i)"));
  // One tile clone per ISA, dispatched on the runtime tier.
  EXPECT_TRUE(Contains(code, "__map_tile_floatToUint_scalar"));
  EXPECT_TRUE(Contains(code, "__map_tile_floatToUint_avx2"));
  EXPECT_TRUE(Contains(code, "__map_tile_floatToUint_avx512"));
  EXPECT_TRUE(Contains(code, "__simd_tier()"));
}

TEST(CodegenTest, SimdIfConvertsMappedUdfsToSelect) {
  // onebit's signBit is `if (elem >= 0) return 1; return 0;` — under the
  // SIMD backend it must become a single branch-free __select return.
  const DslAlgorithm* onebit = FindDslAlgorithm("onebit");
  ASSERT_NE(onebit, nullptr);
  const std::string code = MustGenerate(onebit->source, "onebit");
  EXPECT_TRUE(Contains(code, "return __select("));
  EXPECT_TRUE(Contains(code, "__map_vec_signBit("));
  // With the backend off, udfs keep the branchy scalar lowering (the
  // __select helper still exists in the preamble but is never called).
  const std::string branchy =
      MustGenerate(onebit->source, "onebit", /*simd=*/false);
  EXPECT_FALSE(Contains(branchy, "return __select("));
}

TEST(CodegenTest, SimdReduceSumUsesCanonicalBlockedSchedule) {
  const DslAlgorithm* onebit = FindDslAlgorithm("onebit");
  const std::string code = MustGenerate(onebit->source, "onebit");
  EXPECT_TRUE(Contains(code, "__reduce_sum("));
  EXPECT_TRUE(Contains(code, "__block_sum8"));
  EXPECT_TRUE(Contains(code, "__block_sum8_avx512"));
}

TEST(CodegenTest, ImpureUdfsStayOnBranchyLowering) {
  // A udf that assigns to a global cannot be if-converted; map must fall
  // back to the generic lambda helper even with the SIMD backend on.
  const std::string code = MustGenerate(R"(
float g;
float tally(float x) {
  if (x > 0) {
    g = g + 1;
    return x;
  }
  return 0;
}
void encode(float* gradient, uint8* compressed) {
  compressed = concat(map(gradient, tally));
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)",
                                        "tally");
  EXPECT_TRUE(Contains(code, "__map("));
  EXPECT_FALSE(Contains(code, "__map_vec_tally"));
}

TEST(CodegenTest, SubByteArraysUseBitPacking) {
  const DslAlgorithm* terngrad = FindDslAlgorithm("terngrad");
  const std::string code = MustGenerate(terngrad->source, "terngrad");
  EXPECT_TRUE(Contains(code, "__append_packed(__b, Q, 2)"));
  EXPECT_TRUE(Contains(code, "read_packed(2,"));
}

TEST(CodegenTest, SparseProgramsUseScatter) {
  const DslAlgorithm* dgc = FindDslAlgorithm("dgc");
  const std::string code = MustGenerate(dgc->source, "dgc");
  EXPECT_TRUE(Contains(code, "__scatter("));
  EXPECT_TRUE(Contains(code, "__findex("));
  EXPECT_TRUE(Contains(code, "__sort_desc("));
}

TEST(CodegenTest, IfElseAndElementAssignmentLower) {
  const std::string code = MustGenerate(R"(
float clampPositive(float x) {
  if (x > 0) {
    return x;
  } else {
    return 0;
  }
}
void encode(float* gradient, uint8* compressed) {
  gradient[0] = clampPositive(gradient[0]);
  compressed = concat(gradient);
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)",
                                        "clamp");
  EXPECT_TRUE(Contains(code, "if (("));
  EXPECT_TRUE(Contains(code, "} else {"));
  EXPECT_TRUE(Contains(code, "gradient[static_cast<size_t>(0)] ="));
  EXPECT_TRUE(Contains(code, "clampPositive("));
}

TEST(CodegenTest, CoercionsFollowDeclaredTypes) {
  const std::string code = MustGenerate(R"(
void encode(float* gradient, uint8* compressed) {
  uint2 q = 7;
  int32 n = gradient.size;
  compressed = concat(q, n, gradient);
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)",
                                        "coerce");
  EXPECT_TRUE(Contains(code, "__coerce_uint(7, 2)"));
  EXPECT_TRUE(Contains(code, "__coerce_int32("));
}

TEST(CodegenTest, EmitsCEntryPoints) {
  const DslAlgorithm* terngrad = FindDslAlgorithm("terngrad");
  const std::string code = MustGenerate(terngrad->source, "terngrad");
  EXPECT_TRUE(Contains(code, "extern \"C\" int terngrad_encode_c("));
  EXPECT_TRUE(Contains(code, "extern \"C\" int terngrad_decode_c("));
  // Positional param marshalling for the EncodeParams block.
  EXPECT_TRUE(Contains(code, "p.bitwidth = params[0]"));
}

TEST(CodegenTest, RejectsUnknownFunctions) {
  CodegenOptions options;
  auto generated = GenerateCppFromSource(R"(
void encode(float* g, uint8* out) {
  out = mystery(g);
}
void decode(uint8* in, float* g) {
  g = extract<float*>(in);
}
)",
                                         options);
  EXPECT_FALSE(generated.ok());
}

// Compile every generated built-in with the host compiler (-fsyntax-only):
// the generated unit must stand alone.
class CodegenCompileTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CodegenCompileTest, GeneratedCodeCompiles) {
  const DslAlgorithm* algorithm = FindDslAlgorithm(GetParam());
  ASSERT_NE(algorithm, nullptr);
  const std::string code = MustGenerate(algorithm->source, GetParam());

  const std::string path =
      std::string("/tmp/compll_gen_") + GetParam() + ".cc";
  {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << code;
    // Reference the entry points so unused-function warnings cannot hide
    // missing definitions.
  }
  const std::string command =
      "c++ -std=c++20 -fsyntax-only -Wall " + path + " 2>/dev/null";
  const int rc = std::system(command.c_str());
  if (rc == -1 || WEXITSTATUS(rc) == 127) {
    GTEST_SKIP() << "host compiler unavailable";
  }
  EXPECT_EQ(WEXITSTATUS(rc), 0) << "generated code failed to compile:\n"
                                << code;
  // The scalar pin must also compile: COMPLL_FORCE_SCALAR strips every
  // target-attributed clone from the unit.
  const std::string scalar_command =
      "c++ -std=c++20 -fsyntax-only -Wall -DCOMPLL_FORCE_SCALAR " + path +
      " 2>/dev/null";
  const int scalar_rc = std::system(scalar_command.c_str());
  EXPECT_EQ(WEXITSTATUS(scalar_rc), 0)
      << "generated code failed to compile with COMPLL_FORCE_SCALAR";
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CodegenCompileTest,
                         ::testing::Values("onebit", "tbq", "terngrad",
                                           "dgc", "graddrop"));

}  // namespace
}  // namespace hipress::compll
