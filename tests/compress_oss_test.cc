// OSS baselines must be functionally equivalent to the optimized codecs —
// slower by construction, never different. onebit/tbq/terngrad emit
// byte-identical payloads (same format, same seed), so optimized decoders
// can read OSS payloads and vice versa.
#include <gtest/gtest.h>

#include <cstring>

#include "src/common/rng.h"
#include "src/compress/dgc.h"
#include "src/compress/onebit.h"
#include "src/compress/oss_baselines.h"
#include "src/compress/sparse_format.h"
#include "src/compress/tbq.h"
#include "src/compress/terngrad.h"

namespace hipress {
namespace {

Tensor RandomGradient(size_t size, uint64_t seed) {
  Rng rng(seed);
  Tensor tensor("g", size);
  tensor.FillGaussian(rng);
  return tensor;
}

TEST(OssEquivalenceTest, OnebitPayloadsAreByteIdentical) {
  OnebitCompressor fast;
  OssOnebitCompressor slow;
  for (size_t size : {1u, 63u, 64u, 1000u, 8192u}) {
    Tensor gradient = RandomGradient(size, size);
    ByteBuffer a;
    ByteBuffer b;
    ASSERT_TRUE(fast.Encode(gradient.span(), &a).ok());
    ASSERT_TRUE(slow.Encode(gradient.span(), &b).ok());
    ASSERT_EQ(a.size(), b.size()) << size;
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0) << size;
  }
}

TEST(OssEquivalenceTest, TbqPayloadsAreByteIdentical) {
  CompressorParams params;
  params.threshold = 0.3f;
  TbqCompressor fast(params);
  OssTbqCompressor slow(params);
  for (size_t size : {1u, 5u, 128u, 10001u}) {
    Tensor gradient = RandomGradient(size, 100 + size);
    ByteBuffer a;
    ByteBuffer b;
    ASSERT_TRUE(fast.Encode(gradient.span(), &a).ok());
    ASSERT_TRUE(slow.Encode(gradient.span(), &b).ok());
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0) << size;
  }
}

TEST(OssEquivalenceTest, TernGradPayloadsAreByteIdenticalWithSameSeed) {
  CompressorParams params;
  params.bitwidth = 2;
  params.seed = 99;
  TernGradCompressor fast(params);
  OssTernGradCompressor slow(params);
  for (size_t size : {4u, 100u, 4096u}) {
    Tensor gradient = RandomGradient(size, 200 + size);
    ByteBuffer a;
    ByteBuffer b;
    ASSERT_TRUE(fast.Encode(gradient.span(), &a).ok());
    ASSERT_TRUE(slow.Encode(gradient.span(), &b).ok());
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0) << size;
  }
}

TEST(OssEquivalenceTest, CrossDecodeWorks) {
  // Optimized decoder reads an OSS payload and vice versa.
  OnebitCompressor fast;
  OssOnebitCompressor slow;
  Tensor gradient = RandomGradient(500, 42);
  ByteBuffer from_slow;
  ASSERT_TRUE(slow.Encode(gradient.span(), &from_slow).ok());
  std::vector<float> via_fast(500);
  ASSERT_TRUE(fast.Decode(from_slow, via_fast).ok());
  ByteBuffer from_fast;
  ASSERT_TRUE(fast.Encode(gradient.span(), &from_fast).ok());
  std::vector<float> via_slow(500);
  ASSERT_TRUE(slow.Decode(from_fast, via_slow).ok());
  EXPECT_EQ(MaxAbsDiff(std::span<const float>(via_fast),
                       std::span<const float>(via_slow)),
            0.0);
}

TEST(OssEquivalenceTest, DgcSelectsSameElementsOnExactPath) {
  // Small gradients: the optimized DGC takes the exact-selection path and
  // must match the OSS full-sort result (same k, same element set up to
  // magnitude ties).
  CompressorParams params;
  params.sparsity_ratio = 0.02;
  DgcCompressor fast(params);
  OssDgcCompressor slow(params);
  Tensor gradient = RandomGradient(5000, 77);
  ByteBuffer a;
  ByteBuffer b;
  ASSERT_TRUE(fast.Encode(gradient.span(), &a).ok());
  ASSERT_TRUE(slow.Encode(gradient.span(), &b).ok());
  auto va = SparseParse(a);
  auto vb = SparseParse(b);
  ASSERT_TRUE(va.ok());
  ASSERT_TRUE(vb.ok());
  ASSERT_EQ(va->k, vb->k);
  for (uint32_t i = 0; i < va->k; ++i) {
    EXPECT_EQ(va->indices[i], vb->indices[i]);
    EXPECT_FLOAT_EQ(va->values[i], vb->values[i]);
  }
}

TEST(OssEquivalenceTest, DefaultDecodeAddFallbackMatchesDecodePlusAdd) {
  // OSS codecs use Compressor's generic DecodeAdd (scratch decode + add).
  OssOnebitCompressor codec;
  Tensor gradient = RandomGradient(321, 9);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  std::vector<float> accum(321, 2.5f);
  ASSERT_TRUE(codec.DecodeAdd(encoded, accum).ok());
  std::vector<float> decoded(321);
  ASSERT_TRUE(codec.Decode(encoded, decoded).ok());
  for (size_t i = 0; i < accum.size(); ++i) {
    EXPECT_FLOAT_EQ(accum[i], 2.5f + decoded[i]);
  }
}

}  // namespace
}  // namespace hipress
