// Elastic membership layer (docs/FAULT_TOLERANCE.md): fault-spec clauses
// and liveness windows, the epoch-numbered MembershipManager, stale-epoch
// rejection and peer reinstatement on the reliable channel, the chaos
// schedule generator, and the trainer's full join/leave/crash-rejoin
// lifecycle with the bit-identical model-state gate.
#include "src/net/membership.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/hipress/hipress.h"
#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/net/reliable_channel.h"
#include "src/train/trainer.h"

namespace hipress {
namespace {

NetworkConfig FastConfig() {
  NetworkConfig config;
  config.link_bandwidth = Bandwidth::Gbps(100.0);
  config.latency = FromMicros(2.0);
  config.per_message_overhead = FromMicros(1.0);
  return config;
}

// ------------------------------------------------------- fault-spec layer

TEST(MembershipSpecTest, ParsesMembershipClauses) {
  auto config = ParseFaultSpec(
      "crash=3@40,rejoin=3@120,standby=5,join=5@60,leave=1@200");
  ASSERT_TRUE(config.ok()) << config.status();
  ASSERT_EQ(config->membership.size(), 3u);
  EXPECT_EQ(config->membership[0].kind, MembershipEventKind::kRejoin);
  EXPECT_EQ(config->membership[0].node, 3);
  EXPECT_EQ(config->membership[0].at, FromMillis(120.0));
  EXPECT_EQ(config->membership[1].kind, MembershipEventKind::kJoin);
  EXPECT_EQ(config->membership[1].node, 5);
  EXPECT_EQ(config->membership[2].kind, MembershipEventKind::kLeave);
  EXPECT_EQ(config->membership[2].node, 1);
  ASSERT_EQ(config->standby_nodes.size(), 1u);
  EXPECT_EQ(config->standby_nodes[0], 5);
  EXPECT_TRUE(config->any());
}

TEST(MembershipSpecTest, RejectsMalformedMembershipClauses) {
  for (const char* bad : {"join=5", "join=x@10", "leave=1@-5", "rejoin=@10",
                          "standby=", "standby=x"}) {
    EXPECT_FALSE(ParseFaultSpec(bad).ok()) << bad;
  }
}

TEST(MembershipSpecTest, StandbyAloneCountsAsFaultConfig) {
  auto config = ParseFaultSpec("standby=2");
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->any());
}

TEST(FaultConfigTest, AliveAtTracksCrashRejoinWindows) {
  auto config = ParseFaultSpec("crash=3@40,rejoin=3@120");
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->AliveAt(3, 0));
  EXPECT_TRUE(config->AliveAt(3, FromMillis(39.9)));
  EXPECT_FALSE(config->AliveAt(3, FromMillis(40.0)));
  EXPECT_FALSE(config->AliveAt(3, FromMillis(119.9)));
  EXPECT_TRUE(config->AliveAt(3, FromMillis(120.0)));
  EXPECT_TRUE(config->AliveAt(3, FromMillis(500.0)));
  // Other nodes are unaffected; a crash without rejoin stays fail-stop.
  EXPECT_TRUE(config->AliveAt(0, FromMillis(500.0)));
  auto fail_stop = ParseFaultSpec("crash=2@40");
  ASSERT_TRUE(fail_stop.ok());
  EXPECT_FALSE(fail_stop->AliveAt(2, FromMillis(1e6)));
}

TEST(FaultConfigTest, AliveAtHandlesRepeatedCrashWindows) {
  FaultConfig config;
  config.crashes.push_back({4, FromMillis(10.0)});
  config.crashes.push_back({4, FromMillis(100.0)});
  config.membership.push_back(
      {MembershipEventKind::kRejoin, 4, FromMillis(50.0)});
  EXPECT_FALSE(config.AliveAt(4, FromMillis(20.0)));
  EXPECT_TRUE(config.AliveAt(4, FromMillis(60.0)));
  // The second crash reopens the window; the old rejoin does not close it.
  EXPECT_FALSE(config.AliveAt(4, FromMillis(200.0)));
}

// ------------------------------------------------------ membership manager

TEST(MembershipManagerTest, LifecycleAdvancesEpochsAndCounters) {
  auto metrics = std::make_shared<MetricsRegistry>();
  MembershipManager manager(5, /*standby=*/{4}, metrics.get());
  EXPECT_EQ(manager.epoch(), 0u);
  EXPECT_EQ(manager.size(), 4);
  EXPECT_EQ(manager.members(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_FALSE(manager.is_member(4));

  EXPECT_EQ(manager.Remove(2, MembershipChange::kCrash, FromMillis(10.0)),
            1u);
  EXPECT_EQ(manager.Admit(4, MembershipChange::kJoin, FromMillis(20.0)), 2u);
  EXPECT_EQ(manager.Remove(1, MembershipChange::kLeave, FromMillis(30.0)),
            3u);
  EXPECT_EQ(manager.Admit(2, MembershipChange::kRejoin, FromMillis(40.0)),
            4u);

  EXPECT_EQ(manager.epoch(), 4u);
  EXPECT_EQ(manager.members(), (std::vector<int>{0, 2, 3, 4}));
  EXPECT_EQ(manager.joins(), 1u);
  EXPECT_EQ(manager.leaves(), 1u);
  EXPECT_EQ(manager.crashes(), 1u);
  EXPECT_EQ(manager.rejoins(), 1u);
  ASSERT_EQ(manager.log().size(), 4u);
  EXPECT_EQ(manager.log()[0].members_after, 3);
  EXPECT_EQ(manager.log()[3].members_after, 4);

  EXPECT_DOUBLE_EQ(metrics->gauge("membership.epoch").value(), 4.0);
  EXPECT_DOUBLE_EQ(metrics->gauge("membership.size").value(), 4.0);
  EXPECT_EQ(metrics->counter("membership.joins").value(), 1u);
  EXPECT_EQ(metrics->counter("membership.crashes").value(), 1u);
}

TEST(MembershipManagerTest, LogStringIsDeterministic) {
  auto run = [] {
    MembershipManager manager(4, {});
    manager.Remove(3, MembershipChange::kCrash, FromMillis(12.5));
    manager.Admit(3, MembershipChange::kRejoin, FromMillis(80.0));
    return manager.LogString();
  };
  const std::string log = run();
  EXPECT_EQ(log, run());
  EXPECT_NE(log.find("epoch 1: crash node 3"), std::string::npos) << log;
  EXPECT_NE(log.find("epoch 2: rejoin node 3"), std::string::npos) << log;
}

TEST(MembershipManagerDeathTest, RejectsInvalidTransitions) {
  MembershipManager manager(3, {});
  EXPECT_DEATH(manager.Admit(1, MembershipChange::kJoin, 0),
               "already a member");
  EXPECT_DEATH(manager.Remove(1, MembershipChange::kJoin, 0), "");
  manager.Remove(1, MembershipChange::kCrash, 0);
  EXPECT_DEATH(manager.Remove(1, MembershipChange::kCrash, 0),
               "not a member");
  manager.Remove(2, MembershipChange::kLeave, 0);
  EXPECT_DEATH(manager.Remove(0, MembershipChange::kLeave, 0), "last member");
}

// -------------------------------------------------------- chaos generator

TEST(ChaosScheduleTest, IsDeterministicAndFeasible) {
  ChaosOptions options;
  options.seed = 42;
  options.num_nodes = 8;
  options.num_standby = 2;
  options.events = 10;
  const FaultConfig a = MakeChaosSchedule(options);
  const FaultConfig b = MakeChaosSchedule(options);
  ASSERT_EQ(a.membership.size(), b.membership.size());
  for (size_t i = 0; i < a.membership.size(); ++i) {
    EXPECT_EQ(a.membership[i].kind, b.membership[i].kind) << i;
    EXPECT_EQ(a.membership[i].node, b.membership[i].node) << i;
    EXPECT_EQ(a.membership[i].at, b.membership[i].at) << i;
  }
  EXPECT_EQ(a.crashes.size(), b.crashes.size());
  EXPECT_EQ(a.standby_nodes, b.standby_nodes);

  // Every crash is closed by a later rejoin of the same node.
  for (const NodeCrash& crash : a.crashes) {
    bool closed = false;
    for (const MembershipEvent& event : a.membership) {
      if (event.kind == MembershipEventKind::kRejoin &&
          event.node == crash.node && event.at > crash.at) {
        closed = true;
      }
    }
    EXPECT_TRUE(closed) << "crash of node " << crash.node << " never rejoins";
  }
  // Different seeds diverge.
  options.seed = 43;
  const FaultConfig c = MakeChaosSchedule(options);
  bool differs = c.membership.size() != a.membership.size() ||
                 c.crashes.size() != a.crashes.size();
  for (size_t i = 0; !differs && i < a.membership.size(); ++i) {
    differs = c.membership[i].kind != a.membership[i].kind ||
              c.membership[i].node != a.membership[i].node ||
              c.membership[i].at != a.membership[i].at;
  }
  EXPECT_TRUE(differs);
}

TEST(ChaosScheduleTest, CoversEveryEventClass) {
  ChaosOptions options;
  options.seed = 7;
  options.events = 6;
  const FaultConfig config = MakeChaosSchedule(options);
  EXPECT_FALSE(config.crashes.empty());
  EXPECT_FALSE(config.degradations.empty());
  int joins = 0, leaves = 0, rejoins = 0;
  for (const MembershipEvent& event : config.membership) {
    joins += event.kind == MembershipEventKind::kJoin;
    leaves += event.kind == MembershipEventKind::kLeave;
    rejoins += event.kind == MembershipEventKind::kRejoin;
  }
  EXPECT_GT(joins, 0);
  EXPECT_GT(leaves, 0);
  EXPECT_GT(rejoins, 0);
}

// ------------------------------------------------------- reliable channel

TEST(ReliableChannelTest, StaleEpochFramesAreAckedButNotDelivered) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  ReliableChannel channel(&sim, &net, ReliableTransportConfig{});
  channel.set_epoch(3);
  int delivered = 0;
  Status sent = UnavailableError("pending");
  NetMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 1000;
  channel.Send(
      std::move(msg), [&](const NetMessage&) { ++delivered; },
      [&](const Status& status) { sent = status; });
  // The view advances while the frame is on the wire.
  channel.set_epoch(4);
  sim.Run();
  // Sender sees success (the ack round-trip completed); the receiver side
  // rejected the stale frame instead of handing it upward.
  EXPECT_TRUE(sent.ok()) << sent;
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(channel.stale_epoch_rejected(), 1u);

  // A fresh send under the current epoch delivers normally.
  NetMessage fresh;
  fresh.src = 0;
  fresh.dst = 1;
  fresh.bytes = 1000;
  channel.Send(
      std::move(fresh), [&](const NetMessage&) { ++delivered; },
      [](const Status&) {});
  sim.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(channel.stale_epoch_rejected(), 1u);
}

TEST(ReliableChannelTest, BudgetExhaustionCountsAndBlamesInStatus) {
  NetworkConfig net_config = FastConfig();
  net_config.faults.crashes.push_back({1, 0});
  auto metrics = std::make_shared<MetricsRegistry>();
  Simulator sim;
  Network net(&sim, 2, net_config);
  ReliableChannel channel(&sim, &net, ReliableTransportConfig{},
                          metrics.get());
  channel.set_epoch(5);
  Status result = OkStatus();
  NetMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 1000;
  channel.Send(std::move(msg),
               [&](const Status& status) { result = status; });
  sim.Run();
  EXPECT_EQ(result.code(), StatusCode::kUnavailable);
  // The fast-fail Status names the blamed peer and the epoch.
  EXPECT_NE(result.message().find("peer 1"), std::string::npos)
      << result.message();
  EXPECT_NE(result.message().find("epoch 5"), std::string::npos)
      << result.message();
  EXPECT_EQ(metrics->counter("net.retry_budget_exhausted").value(), 1u);

  // Fast-fail on the dead peer also carries peer + epoch.
  Status fast = OkStatus();
  NetMessage again;
  again.src = 0;
  again.dst = 1;
  again.bytes = 1000;
  channel.Send(std::move(again),
               [&](const Status& status) { fast = status; });
  sim.Run();
  EXPECT_EQ(fast.code(), StatusCode::kUnavailable);
  EXPECT_NE(fast.message().find("peer 1"), std::string::npos)
      << fast.message();
  // Fast-fails are not budget exhaustions.
  EXPECT_EQ(metrics->counter("net.retry_budget_exhausted").value(), 1u);
}

TEST(ReliableChannelTest, ReinstatePeerRestoresTraffic) {
  NetworkConfig net_config = FastConfig();
  net_config.faults.crashes.push_back({1, 0});
  net_config.faults.membership.push_back(
      {MembershipEventKind::kRejoin, 1, FromMillis(50.0)});
  Simulator sim;
  Network net(&sim, 2, net_config);
  ReliableChannel channel(&sim, &net, ReliableTransportConfig{});
  Status result = OkStatus();
  NetMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 1000;
  channel.Send(std::move(msg),
               [&](const Status& status) { result = status; });
  sim.Run();
  ASSERT_TRUE(channel.peer_failed(1));
  ASSERT_EQ(result.code(), StatusCode::kUnavailable);

  // Advance past the rejoin, reinstate, and traffic flows again.
  sim.ScheduleAt(FromMillis(60.0), [] {});
  sim.Run();
  channel.ReinstatePeer(1);
  EXPECT_FALSE(channel.peer_failed(1));
  EXPECT_TRUE(channel.failed_peers().empty());
  Status after = UnavailableError("pending");
  NetMessage fresh;
  fresh.src = 0;
  fresh.dst = 1;
  fresh.bytes = 1000;
  channel.Send(std::move(fresh),
               [&](const Status& status) { after = status; });
  sim.Run();
  EXPECT_TRUE(after.ok()) << after;
  // Reinstating a healthy peer is a no-op.
  channel.ReinstatePeer(0);
  EXPECT_FALSE(channel.peer_failed(0));
}

// ----------------------------------------------------------- trainer layer

HiPressOptions TrainOptionsFor(const std::string& faults, int iterations) {
  HiPressOptions options;
  options.model = "resnet50";
  options.system = "hipress-ps";
  options.cluster = ClusterSpec::Ec2(4);
  options.train.iterations = iterations;
  if (!faults.empty()) {
    auto parsed = ParseFaultSpec(faults);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    options.cluster.net.faults = *parsed;
  }
  return options;
}

TEST(TrainerMembershipTest, PlannedLeaveDrainsAndShrinksTheView) {
  auto churn_free = RunTrainingSimulation(TrainOptionsFor("", 4));
  ASSERT_TRUE(churn_free.ok());
  auto result = RunTrainingSimulation(TrainOptionsFor("leave=1@60", 4));
  ASSERT_TRUE(result.ok()) << result.status();
  const TrainReport& report = result->report;
  const MembershipReport& membership = report.membership;
  EXPECT_TRUE(membership.enabled);
  EXPECT_EQ(membership.leaves, 1u);
  EXPECT_EQ(membership.final_epoch, 1u);
  EXPECT_EQ(membership.final_members, (std::vector<int>{0, 2, 3}));
  EXPECT_EQ(report.surviving_nodes, 3);
  EXPECT_EQ(report.total_gpus, 3 * 8);
  EXPECT_FALSE(report.degraded);  // a drain is not a failure
  EXPECT_EQ(report.metrics->counter("membership.drains").value(), 1u);
  EXPECT_GT(report.metrics->histogram("membership.drain_ms").count(), 0u);
  // The leaver's exit never corrupts the survivors' replicated state.
  EXPECT_TRUE(membership.state_consistent);
  EXPECT_EQ(membership.model_fingerprint,
            churn_free->report.membership.model_fingerprint);
}

TEST(TrainerMembershipTest, StandbyJoinGrowsTheViewAndResyncs) {
  auto result =
      RunTrainingSimulation(TrainOptionsFor("standby=3,join=3@60", 4));
  ASSERT_TRUE(result.ok()) << result.status();
  const TrainReport& report = result->report;
  const MembershipReport& membership = report.membership;
  EXPECT_TRUE(membership.enabled);
  EXPECT_EQ(membership.joins, 1u);
  EXPECT_EQ(membership.resyncs, 1u);
  EXPECT_GT(membership.resync_bytes, 0u);
  EXPECT_GT(membership.resync_time, 0);
  EXPECT_EQ(membership.final_members, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(report.surviving_nodes, 4);
  EXPECT_TRUE(membership.state_consistent);
  // The joiner re-synced from a donor, so its replica matches the nodes
  // that never left — the fingerprint equals the churn-free run's.
  auto churn_free = RunTrainingSimulation(TrainOptionsFor("", 4));
  ASSERT_TRUE(churn_free.ok());
  EXPECT_EQ(membership.model_fingerprint,
            churn_free->report.membership.model_fingerprint);
}

TEST(TrainerMembershipTest, CrashRejoinRestoresFullStrength) {
  auto result =
      RunTrainingSimulation(TrainOptionsFor("crash=2@60,rejoin=2@400", 8));
  ASSERT_TRUE(result.ok()) << result.status();
  const TrainReport& report = result->report;
  const MembershipReport& membership = report.membership;
  EXPECT_EQ(membership.crashes, 1u);
  EXPECT_EQ(membership.rejoins, 1u);
  EXPECT_EQ(membership.resyncs, 1u);
  EXPECT_EQ(membership.final_members, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(report.surviving_nodes, 4);
  EXPECT_EQ(report.total_gpus, 4 * 8);
  // The rejoined node computed again after re-admission.
  EXPECT_GT(membership.rejoined_contributions, 0u);
  EXPECT_GT(
      report.metrics->counter("membership.rejoined_contributions").value(),
      0u);
  // Recovery happened (the crash cancelled graphs) and the re-sync landed
  // the node back on the shared state.
  EXPECT_GT(report.recoveries, 0u);
  EXPECT_TRUE(membership.state_consistent);
  auto churn_free = RunTrainingSimulation(TrainOptionsFor("", 8));
  ASSERT_TRUE(churn_free.ok());
  EXPECT_EQ(membership.model_fingerprint,
            churn_free->report.membership.model_fingerprint);
}

TEST(TrainerMembershipTest, EventLogAndMetricsReplayBitIdentically) {
  auto run = [] {
    return RunTrainingSimulation(
        TrainOptionsFor("crash=2@60,rejoin=2@400,standby=3,join=3@100", 8));
  };
  auto first = run();
  auto second = run();
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_FALSE(first->report.membership.event_log.empty());
  EXPECT_EQ(first->report.membership.event_log,
            second->report.membership.event_log);
  EXPECT_EQ(first->report.membership.model_fingerprint,
            second->report.membership.model_fingerprint);
  EXPECT_EQ(first->report.membership.final_epoch,
            second->report.membership.final_epoch);
  EXPECT_EQ(first->report.iteration_time, second->report.iteration_time);
  for (const char* counter :
       {"membership.resyncs", "membership.resync_bytes", "membership.drains",
        "membership.rejoined_contributions", "net.retries"}) {
    EXPECT_EQ(first->report.metrics->counter(counter).value(),
              second->report.metrics->counter(counter).value())
        << counter;
  }
}

TEST(TrainerMembershipTest, MiniChaosSoakConvergesToChurnFreeState) {
  ChaosOptions chaos;
  chaos.seed = 9;
  chaos.num_nodes = 4;
  chaos.num_standby = 1;
  chaos.events = 6;
  chaos.first_event_ms = 40.0;
  chaos.spacing_ms = 50.0;
  HiPressOptions options = TrainOptionsFor("", 16);
  options.cluster.net.faults = MakeChaosSchedule(chaos);
  auto churned = RunTrainingSimulation(options);
  ASSERT_TRUE(churned.ok()) << churned.status();
  const MembershipReport& membership = churned->report.membership;
  EXPECT_TRUE(membership.enabled);
  EXPECT_GE(membership.crashes + membership.joins + membership.leaves +
                membership.rejoins,
            4u);
  EXPECT_TRUE(membership.state_consistent);
  // Post-quiesce state is bit-identical to the churn-free run with the
  // same seed — the chaos-soak gate.
  HiPressOptions churn_free_options = TrainOptionsFor("", 16);
  churn_free_options.cluster.net.faults.seed =
      options.cluster.net.faults.seed;
  auto churn_free = RunTrainingSimulation(churn_free_options);
  ASSERT_TRUE(churn_free.ok());
  EXPECT_EQ(membership.model_fingerprint,
            churn_free->report.membership.model_fingerprint);
}

TEST(TrainerMembershipTest, RejectsInfeasibleSchedules) {
  for (const char* bad :
       {"join=1@50",                  // join of a current member
        "leave=0@10,leave=1@20,leave=2@30,leave=3@40",  // empties the view
        "rejoin=2@50",                // rejoin without a crash
        "standby=2,crash=2@40",       // crash of a standby is a no-op crash
        "crash=1@40,join=1@100"}) {   // crashed nodes rejoin, not join
    HiPressOptions options = TrainOptionsFor(bad, 2);
    const auto result = RunTrainingSimulation(options);
    if (std::string(bad) == "standby=2,crash=2@40") {
      // A crash of a node outside the view is tolerated (it never computes
      // or carries traffic), not an error.
      EXPECT_TRUE(result.ok()) << bad;
      continue;
    }
    EXPECT_FALSE(result.ok()) << bad;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(TrainerMembershipTest, MembershipRejectsUnsupportedModes) {
  auto profile = GetModelProfile("resnet50");
  ASSERT_TRUE(profile.ok());
  SyncConfig config;
  config.num_nodes = 4;
  config.net.faults.membership.push_back(
      {MembershipEventKind::kLeave, 1, FromMillis(50.0)});
  TrainOptions ssp;
  ssp.staleness = 2;
  EXPECT_EQ(SimulateTraining(*profile, config, ssp).status().code(),
            StatusCode::kInvalidArgument);
  config.sequential_collectives = true;
  EXPECT_EQ(SimulateTraining(*profile, config, {}).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hipress
