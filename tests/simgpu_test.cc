#include <gtest/gtest.h>

#include <vector>

#include "src/compress/speed_profile.h"
#include "src/sim/simulator.h"
#include "src/simgpu/gpu.h"

namespace hipress {
namespace {

TEST(GpuDeviceTest, StreamsSerializeIndependently) {
  Simulator sim;
  GpuDevice gpu(&sim, 0);
  std::vector<SimTime> compute_done;
  std::vector<SimTime> kernel_done;
  gpu.SubmitCompute(100, [&] { compute_done.push_back(sim.now()); });
  gpu.SubmitCompute(100, [&] { compute_done.push_back(sim.now()); });
  gpu.SubmitKernel(GpuTaskKind::kEncode, 30,
                   [&] { kernel_done.push_back(sim.now()); });
  gpu.SubmitKernel(GpuTaskKind::kDecode, 30,
                   [&] { kernel_done.push_back(sim.now()); });
  sim.Run();
  // Compute stream: back-to-back 100+100. Kernel stream: 30+30, overlapping
  // compute (separate streams).
  ASSERT_EQ(compute_done.size(), 2u);
  EXPECT_EQ(compute_done[0], 100);
  EXPECT_EQ(compute_done[1], 200);
  ASSERT_EQ(kernel_done.size(), 2u);
  EXPECT_EQ(kernel_done[0], 30);
  EXPECT_EQ(kernel_done[1], 60);
}

TEST(GpuDeviceTest, BusyTimePerStream) {
  Simulator sim;
  GpuDevice gpu(&sim, 0);
  gpu.SubmitCompute(100, [] {});
  gpu.SubmitKernel(GpuTaskKind::kMerge, 40, [] {});
  sim.Run();
  EXPECT_EQ(gpu.busy_time(GpuDevice::kComputeStream), 100);
  EXPECT_EQ(gpu.busy_time(GpuDevice::kKernelStream), 40);
}

TEST(GpuDeviceTest, TimelineRecordsIntervals) {
  Simulator sim;
  GpuDevice gpu(&sim, 0);
  gpu.set_record_timeline(true);
  gpu.SubmitCompute(100, [] {});
  gpu.SubmitKernel(GpuTaskKind::kEncode, 50, [] {});
  sim.Run();
  ASSERT_EQ(gpu.timeline().size(), 2u);
  EXPECT_EQ(gpu.timeline()[0].kind, GpuTaskKind::kCompute);
  EXPECT_EQ(gpu.timeline()[0].start, 0);
  EXPECT_EQ(gpu.timeline()[0].end, 100);
  EXPECT_EQ(gpu.timeline()[1].kind, GpuTaskKind::kEncode);
}

TEST(GpuDeviceTest, ComputeUtilizationOverWindow) {
  Simulator sim;
  GpuDevice gpu(&sim, 0);
  gpu.set_record_timeline(true);
  gpu.SubmitCompute(100, [] {});
  sim.Run();
  sim.Schedule(100, [&] { gpu.SubmitCompute(100, [] {}); });
  sim.RunUntil(200);
  sim.Run();
  // Busy [0,100) and [200,300): utilization over [0,400) = 0.5.
  EXPECT_DOUBLE_EQ(gpu.ComputeUtilization(0, 400), 0.5);
  EXPECT_DOUBLE_EQ(gpu.ComputeUtilization(0, 100), 1.0);
  EXPECT_DOUBLE_EQ(gpu.ComputeUtilization(100, 200), 0.0);
}

TEST(KernelCostTest, LinearInBytes) {
  KernelCost cost{FromMicros(10.0), 100e9};
  const SimTime t1 = cost.Time(100'000'000);  // 1 ms + overhead
  EXPECT_EQ(t1, FromMicros(10) + FromMillis(1));
  EXPECT_EQ(cost.Time(0), FromMicros(10));
}

TEST(SpeedProfileTest, CompLLBeatsOssBeatsCpu) {
  for (const char* alg : {"onebit", "tbq", "terngrad", "dgc", "graddrop"}) {
    const auto compll =
        GetCodecSpeed(alg, CodecImpl::kCompLL, GpuPlatform::kV100);
    const auto oss = GetCodecSpeed(alg, CodecImpl::kOss, GpuPlatform::kV100);
    const auto cpu = GetCodecSpeed(alg, CodecImpl::kCpu, GpuPlatform::kV100);
    EXPECT_GT(compll.encode.bytes_per_second, oss.encode.bytes_per_second)
        << alg;
    EXPECT_GT(oss.encode.bytes_per_second, 0.0) << alg;
    EXPECT_GT(compll.encode.bytes_per_second,
              10.0 * cpu.encode.bytes_per_second)
        << alg;
  }
}

TEST(SpeedProfileTest, TbqOssSlowdownMatchesPaper) {
  // OSS-TBQ: 256 MB in ~38.2 ms; CompLL 12x faster (Section 4.4).
  const auto oss = GetCodecSpeed("tbq", CodecImpl::kOss, GpuPlatform::kV100);
  const uint64_t bytes = 256ull * 1024 * 1024;
  const double oss_ms = ToMillis(oss.encode.Time(bytes));
  EXPECT_NEAR(oss_ms, 38.2, 6.0);
  const auto compll =
      GetCodecSpeed("tbq", CodecImpl::kCompLL, GpuPlatform::kV100);
  const double ratio = oss_ms / ToMillis(compll.encode.Time(bytes));
  EXPECT_NEAR(ratio, 12.0, 1.5);
}

TEST(SpeedProfileTest, CpuSimdSitsBetweenCpuAndGpu) {
  // The vectorized CPU tier must price strictly faster than the scalar CPU
  // path but stay well below the GPU kernels. The raw kernel ratio is 4x
  // (bench_kernels gates >= 3x), but both CPU tiers fold in the same
  // 12 GB/s PCIe round trip, which compresses the effective gap.
  for (const char* alg : {"onebit", "tbq", "fp16"}) {
    const auto compll =
        GetCodecSpeed(alg, CodecImpl::kCompLL, GpuPlatform::kV100);
    const auto cpu = GetCodecSpeed(alg, CodecImpl::kCpu, GpuPlatform::kV100);
    const auto simd =
        GetCodecSpeed(alg, CodecImpl::kCpuSimd, GpuPlatform::kV100);
    EXPECT_GT(simd.encode.bytes_per_second,
              1.5 * cpu.encode.bytes_per_second)
        << alg;
    EXPECT_LT(simd.encode.bytes_per_second, compll.encode.bytes_per_second)
        << alg;
    EXPECT_GT(simd.decode.bytes_per_second, cpu.decode.bytes_per_second)
        << alg;
  }
  // Platform scaling applies to GPU implementations only; the CPU tiers are
  // host-side and identical across clusters.
  EXPECT_EQ(GetCodecSpeed("onebit", CodecImpl::kCpuSimd, GpuPlatform::kV100)
                .encode.bytes_per_second,
            GetCodecSpeed("onebit", CodecImpl::kCpuSimd,
                          GpuPlatform::k1080Ti)
                .encode.bytes_per_second);
}

TEST(SpeedProfileTest, CpuOnebitSlowdownMatchesPaper) {
  const auto compll =
      GetCodecSpeed("onebit", CodecImpl::kCompLL, GpuPlatform::kV100);
  const auto cpu =
      GetCodecSpeed("onebit", CodecImpl::kCpu, GpuPlatform::kV100);
  const uint64_t bytes = 256ull * 1024 * 1024;
  const double ratio =
      static_cast<double>(cpu.encode.Time(bytes)) /
      static_cast<double>(compll.encode.Time(bytes));
  // 35.6x plus the PCIe round trip folded into the CPU path.
  EXPECT_GT(ratio, 30.0);
  EXPECT_LT(ratio, 60.0);
}

TEST(SpeedProfileTest, LocalPlatformIsSlower) {
  const auto v100 =
      GetCodecSpeed("onebit", CodecImpl::kCompLL, GpuPlatform::kV100);
  const auto ti =
      GetCodecSpeed("onebit", CodecImpl::kCompLL, GpuPlatform::k1080Ti);
  EXPECT_LT(ti.encode.bytes_per_second, v100.encode.bytes_per_second);
  EXPECT_LT(ComputeScale(GpuPlatform::k1080Ti), 1.0);
}

}  // namespace
}  // namespace hipress
