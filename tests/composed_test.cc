#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/compress/composed.h"
#include "src/compress/registry.h"
#include "src/compress/sparse_format.h"

namespace hipress {
namespace {

Tensor RandomGradient(size_t size, uint64_t seed) {
  Rng rng(seed);
  Tensor tensor("g", size);
  tensor.FillGaussian(rng);
  return tensor;
}

TEST(ComposedTest, RejectsWrongStageKinds) {
  CompressorParams params;
  // Dense outer codec: invalid.
  EXPECT_FALSE(
      ComposedCompressor::CreateFromNames("onebit", "fp16", params).ok());
  // Sparse inner codec: invalid.
  EXPECT_FALSE(
      ComposedCompressor::CreateFromNames("dgc", "graddrop", params).ok());
  EXPECT_FALSE(
      ComposedCompressor::CreateFromNames("dgc", "nope", params).ok());
}

TEST(ComposedTest, DgcPlusFp16RoundTrip) {
  CompressorParams params;
  params.sparsity_ratio = 0.01;
  auto codec = ComposedCompressor::CreateFromNames("dgc", "fp16", params);
  ASSERT_TRUE(codec.ok()) << codec.status();
  EXPECT_EQ((*codec)->name(), "dgc+fp16");
  EXPECT_TRUE((*codec)->is_sparse());

  Tensor gradient = RandomGradient(10000, 1);
  ByteBuffer encoded;
  ASSERT_TRUE((*codec)->Encode(gradient.span(), &encoded).ok());
  std::vector<float> decoded(gradient.size());
  ASSERT_TRUE((*codec)->Decode(encoded, decoded).ok());

  // Kept elements: the top-1% by magnitude, at half precision.
  size_t kept = 0;
  for (size_t i = 0; i < decoded.size(); ++i) {
    if (decoded[i] != 0.0f) {
      ++kept;
      EXPECT_NEAR(decoded[i], gradient[i],
                  std::abs(gradient[i]) / 512.0f)
          << i;
    }
  }
  EXPECT_EQ(kept, 100u);
}

TEST(ComposedTest, PayloadIsSmallerThanPlainSparsifier) {
  CompressorParams params;
  params.sparsity_ratio = 0.01;
  auto plain = CreateCompressor("dgc", params);
  auto composed =
      ComposedCompressor::CreateFromNames("dgc", "fp16", params);
  ASSERT_TRUE(plain.ok() && composed.ok());
  Tensor gradient = RandomGradient(50000, 2);
  ByteBuffer plain_wire;
  ByteBuffer composed_wire;
  ASSERT_TRUE((*plain)->Encode(gradient.span(), &plain_wire).ok());
  ASSERT_TRUE((*composed)->Encode(gradient.span(), &composed_wire).ok());
  EXPECT_LT(composed_wire.size(), plain_wire.size());
  EXPECT_LT((*composed)->CompressionRate(50000),
            (*plain)->CompressionRate(50000) * 0.95);
}

TEST(ComposedTest, DecodeAddAccumulates) {
  CompressorParams params;
  params.sparsity_ratio = 0.05;
  auto codec = ComposedCompressor::CreateFromNames("graddrop", "terngrad",
                                                   params);
  ASSERT_TRUE(codec.ok());
  Tensor gradient = RandomGradient(5000, 3);
  ByteBuffer encoded;
  ASSERT_TRUE((*codec)->Encode(gradient.span(), &encoded).ok());
  std::vector<float> base(5000, 1.0f);
  std::vector<float> accum = base;
  ASSERT_TRUE((*codec)->DecodeAdd(encoded, accum).ok());
  std::vector<float> decoded(5000);
  ASSERT_TRUE((*codec)->Decode(encoded, decoded).ok());
  for (size_t i = 0; i < accum.size(); ++i) {
    EXPECT_FLOAT_EQ(accum[i], base[i] + decoded[i]);
  }
}

TEST(ComposedTest, RejectsCorruptPayloads) {
  CompressorParams params;
  params.sparsity_ratio = 0.01;
  auto codec = ComposedCompressor::CreateFromNames("dgc", "fp16", params);
  ASSERT_TRUE(codec.ok());
  Tensor gradient = RandomGradient(1000, 4);
  ByteBuffer encoded;
  ASSERT_TRUE((*codec)->Encode(gradient.span(), &encoded).ok());
  std::vector<float> out(1000);
  for (size_t keep :
       {size_t{0}, size_t{3}, size_t{8}, encoded.size() - 1}) {
    ByteBuffer truncated(
        std::vector<uint8_t>(encoded.data(), encoded.data() + keep));
    EXPECT_FALSE((*codec)->Decode(truncated, out).ok()) << keep;
  }
  std::vector<float> wrong(999);
  EXPECT_FALSE((*codec)->Decode(encoded, wrong).ok());
}

TEST(ComposedTest, ElementCountComesFromHeader) {
  CompressorParams params;
  params.sparsity_ratio = 0.02;
  auto codec = ComposedCompressor::CreateFromNames("dgc", "fp16", params);
  ASSERT_TRUE(codec.ok());
  Tensor gradient = RandomGradient(777, 5);
  ByteBuffer encoded;
  ASSERT_TRUE((*codec)->Encode(gradient.span(), &encoded).ok());
  auto count = (*codec)->EncodedElementCount(encoded);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 777u);
}

}  // namespace
}  // namespace hipress
