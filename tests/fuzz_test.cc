// Robustness: decoders must survive arbitrary garbage, truncation, and bit
// flips — returning an error or tolerating the corruption, never crashing
// or reading out of bounds. Gradients cross the (simulated) network;
// defensive decoding is part of the codec contract.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/compll/dsl_compressor.h"
#include "src/compress/registry.h"

namespace hipress {
namespace {

const std::vector<std::string>& FuzzedCodecs() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "onebit", "fp16",   "tbq",      "terngrad",     "dgc",  "adacomp",
      "graddrop", "oss-onebit", "oss-tbq", "oss-terngrad", "oss-dgc"};
  return *names;
}

CompressorParams FuzzParams() {
  CompressorParams params;
  params.sparsity_ratio = 0.05;
  return params;
}

TEST(FuzzTest, RandomGarbageNeverCrashesDecoders) {
  Rng rng(0xfa22);
  for (const std::string& name : FuzzedCodecs()) {
    auto codec = CreateCompressor(name, FuzzParams());
    ASSERT_TRUE(codec.ok()) << name;
    for (int trial = 0; trial < 200; ++trial) {
      const size_t size = rng.NextBounded(256);
      ByteBuffer garbage(size);
      for (size_t i = 0; i < size; ++i) {
        garbage[i] = static_cast<uint8_t>(rng.NextU32());
      }
      std::vector<float> out(rng.NextBounded(128) + 1);
      // Must return (error or ok), never crash.
      (void)(*codec)->Decode(garbage, out);
      (void)(*codec)->EncodedElementCount(garbage);
    }
  }
}

TEST(FuzzTest, EveryTruncationIsHandled) {
  Rng rng(0x7276);
  Tensor gradient("g", 100);
  gradient.FillGaussian(rng);
  for (const std::string& name : FuzzedCodecs()) {
    auto codec = CreateCompressor(name, FuzzParams());
    ASSERT_TRUE(codec.ok()) << name;
    ByteBuffer encoded;
    ASSERT_TRUE((*codec)->Encode(gradient.span(), &encoded).ok()) << name;
    for (size_t keep = 0; keep < encoded.size(); ++keep) {
      ByteBuffer truncated(
          std::vector<uint8_t>(encoded.data(), encoded.data() + keep));
      std::vector<float> out(100);
      const Status status = (*codec)->Decode(truncated, out);
      // A strictly shorter buffer can never be a complete payload for the
      // same element count.
      EXPECT_FALSE(status.ok()) << name << " keep=" << keep;
    }
  }
}

TEST(FuzzTest, BitFlipsEitherErrorOrDecode) {
  Rng rng(0xb17);
  Tensor gradient("g", 64);
  gradient.FillGaussian(rng);
  for (const std::string& name : FuzzedCodecs()) {
    auto codec = CreateCompressor(name, FuzzParams());
    ASSERT_TRUE(codec.ok()) << name;
    ByteBuffer encoded;
    ASSERT_TRUE((*codec)->Encode(gradient.span(), &encoded).ok()) << name;
    for (int trial = 0; trial < 200; ++trial) {
      ByteBuffer corrupted(
          std::vector<uint8_t>(encoded.data(), encoded.data() + encoded.size()));
      const size_t byte = rng.NextBounded(corrupted.size());
      corrupted[byte] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
      std::vector<float> out(64);
      (void)(*codec)->Decode(corrupted, out);  // must not crash
    }
  }
}

TEST(FuzzTest, DecodeAddToleratesSameCorruptions) {
  Rng rng(0xadd);
  Tensor gradient("g", 64);
  gradient.FillGaussian(rng);
  for (const std::string& name :
       {std::string("onebit"), std::string("dgc"), std::string("fp16")}) {
    auto codec = CreateCompressor(name, FuzzParams());
    ASSERT_TRUE(codec.ok());
    ByteBuffer encoded;
    ASSERT_TRUE((*codec)->Encode(gradient.span(), &encoded).ok());
    for (int trial = 0; trial < 100; ++trial) {
      ByteBuffer corrupted(
          std::vector<uint8_t>(encoded.data(), encoded.data() + encoded.size()));
      corrupted[rng.NextBounded(corrupted.size())] ^=
          static_cast<uint8_t>(rng.NextU32() | 1);
      std::vector<float> accum(64, 1.0f);
      (void)(*codec)->DecodeAdd(corrupted, accum);
    }
  }
}

TEST(FuzzTest, DslDecodersRejectGarbage) {
  auto codec = compll::DslCompressor::CreateBuiltin("terngrad");
  ASSERT_TRUE(codec.ok());
  Rng rng(0xd51);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t size = rng.NextBounded(64);
    ByteBuffer garbage(size);
    for (size_t i = 0; i < size; ++i) {
      garbage[i] = static_cast<uint8_t>(rng.NextU32());
    }
    std::vector<float> out(16);
    (void)(*codec)->Decode(garbage, out);  // must not crash
  }
}

TEST(FuzzTest, EncodeHandlesAdversarialValues) {
  // Infinities, NaNs, denormals, huge magnitudes: encode/decode round trips
  // must not crash (NaN contamination is acceptable for quantizers).
  std::vector<float> nasty = {0.0f,
                              -0.0f,
                              1e38f,
                              -1e38f,
                              1e-38f,
                              std::numeric_limits<float>::infinity(),
                              -std::numeric_limits<float>::infinity(),
                              std::numeric_limits<float>::quiet_NaN(),
                              1.0f,
                              -1.0f};
  for (const std::string& name : FuzzedCodecs()) {
    auto codec = CreateCompressor(name, FuzzParams());
    ASSERT_TRUE(codec.ok()) << name;
    ByteBuffer encoded;
    const Status status =
        (*codec)->Encode(std::span<const float>(nasty), &encoded);
    if (status.ok()) {
      std::vector<float> out(nasty.size());
      (void)(*codec)->Decode(encoded, out);
    }
  }
}

}  // namespace
}  // namespace hipress
