#include <gtest/gtest.h>
#include <cmath>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace hipress {
namespace {

TEST(TensorTest, ConstructionAndNaming) {
  Tensor tensor("grad0", 128);
  EXPECT_EQ(tensor.name(), "grad0");
  EXPECT_EQ(tensor.size(), 128u);
  EXPECT_EQ(tensor.byte_size(), 512u);
  for (size_t i = 0; i < tensor.size(); ++i) {
    EXPECT_EQ(tensor[i], 0.0f);
  }
}

TEST(TensorTest, FillAndScale) {
  Tensor tensor(8);
  tensor.Fill(2.0f);
  tensor.Scale(1.5f);
  for (size_t i = 0; i < tensor.size(); ++i) {
    EXPECT_FLOAT_EQ(tensor[i], 3.0f);
  }
}

TEST(TensorTest, AddAccumulatesElementwise) {
  Tensor a(4);
  Tensor b(4);
  for (size_t i = 0; i < 4; ++i) {
    a[i] = static_cast<float>(i);
    b[i] = 10.0f;
  }
  a.Add(b);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(a[i], static_cast<float>(i) + 10.0f);
  }
}

TEST(TensorTest, NormOfUnitVector) {
  Tensor tensor(4);
  tensor[0] = 3.0f;
  tensor[1] = 4.0f;
  EXPECT_DOUBLE_EQ(tensor.Norm(), 5.0);
}

TEST(TensorTest, SliceViewsUnderlyingData) {
  Tensor tensor(10);
  auto slice = tensor.slice(2, 3);
  slice[0] = 7.0f;
  EXPECT_FLOAT_EQ(tensor[2], 7.0f);
  EXPECT_EQ(slice.size(), 3u);
}

TEST(TensorTest, FillGaussianIsDeterministic) {
  Rng rng1(5);
  Rng rng2(5);
  Tensor a(64);
  Tensor b(64);
  a.FillGaussian(rng1);
  b.FillGaussian(rng2);
  EXPECT_EQ(MaxAbsDiff(a.span(), b.span()), 0.0);
}

TEST(TensorTest, FillUniformRespectsRange) {
  Rng rng(6);
  Tensor tensor(1000);
  tensor.FillUniform(rng, -2.0f, 3.0f);
  for (size_t i = 0; i < tensor.size(); ++i) {
    EXPECT_GE(tensor[i], -2.0f);
    EXPECT_LT(tensor[i], 3.0f);
  }
}

TEST(ByteBufferTest, AppendAndReadScalars) {
  ByteBuffer buffer;
  buffer.Append<uint32_t>(42);
  buffer.Append<float>(1.5f);
  size_t offset = 0;
  EXPECT_EQ(buffer.ReadAt<uint32_t>(offset), 42u);
  EXPECT_FLOAT_EQ(buffer.ReadAt<float>(offset), 1.5f);
  EXPECT_EQ(offset, buffer.size());
}

TEST(ByteBufferTest, ResizeZeroFills) {
  ByteBuffer buffer(4);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(buffer[i], 0);
  }
  buffer.Resize(8);
  EXPECT_EQ(buffer.size(), 8u);
}

TEST(DiffHelpersTest, MaxAbsAndRms) {
  Tensor a(3);
  Tensor b(3);
  a[0] = 1.0f;
  b[0] = 2.0f;  // diff 1
  a[2] = -1.0f;
  b[2] = 1.0f;  // diff 2
  EXPECT_DOUBLE_EQ(MaxAbsDiff(a.span(), b.span()), 2.0);
  EXPECT_NEAR(RmsDiff(a.span(), b.span()), std::sqrt(5.0 / 3.0), 1e-9);
}

TEST(DiffHelpersTest, EmptySpansGiveZero) {
  std::vector<float> empty;
  EXPECT_EQ(RmsDiff(std::span<const float>(empty),
                    std::span<const float>(empty)),
            0.0);
}

}  // namespace
}  // namespace hipress
