#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/common/rng.h"
#include "src/compress/adacomp.h"
#include "src/compress/dgc.h"
#include "src/compress/graddrop.h"
#include "src/compress/onebit.h"
#include "src/compress/oss_baselines.h"
#include "src/compress/registry.h"
#include "src/compress/sparse_format.h"
#include "src/compress/tbq.h"
#include "src/compress/terngrad.h"

namespace hipress {
namespace {

Tensor RandomGradient(size_t size, uint64_t seed, float stddev = 1.0f) {
  Rng rng(seed);
  Tensor tensor("g", size);
  tensor.FillGaussian(rng, stddev);
  return tensor;
}

// ------------------------------------------------------------------ onebit

TEST(OnebitTest, RoundTripValuesAreSignedMeans) {
  OnebitCompressor codec;
  Tensor gradient = RandomGradient(1000, 1);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  std::vector<float> decoded(1000);
  ASSERT_TRUE(codec.Decode(encoded, decoded).ok());

  double pos_sum = 0.0;
  double neg_sum = 0.0;
  size_t pos_count = 0;
  for (size_t i = 0; i < gradient.size(); ++i) {
    if (gradient[i] >= 0) {
      pos_sum += gradient[i];
      ++pos_count;
    } else {
      neg_sum += gradient[i];
    }
  }
  const float pos_mean = static_cast<float>(pos_sum / pos_count);
  const float neg_mean =
      static_cast<float>(neg_sum / (gradient.size() - pos_count));
  for (size_t i = 0; i < gradient.size(); ++i) {
    if (gradient[i] >= 0) {
      EXPECT_FLOAT_EQ(decoded[i], pos_mean) << i;
    } else {
      EXPECT_FLOAT_EQ(decoded[i], neg_mean) << i;
    }
  }
}

TEST(OnebitTest, CompressedSizeIsOneBitPerElementPlusHeader) {
  OnebitCompressor codec;
  EXPECT_EQ(codec.MaxEncodedSize(800), 12u + 100u);
  // ~96.9% reduction for large gradients (Section 2.4).
  EXPECT_NEAR(codec.CompressionRate(1 << 20), 1.0 / 32, 1e-4);
}

TEST(OnebitTest, DecodeAddMatchesDecodePlusAdd) {
  OnebitCompressor codec;
  Tensor gradient = RandomGradient(257, 2);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  std::vector<float> base(257, 0.5f);
  std::vector<float> via_add = base;
  ASSERT_TRUE(codec.DecodeAdd(encoded, via_add).ok());
  std::vector<float> decoded(257);
  ASSERT_TRUE(codec.Decode(encoded, decoded).ok());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_FLOAT_EQ(via_add[i], base[i] + decoded[i]);
  }
}

TEST(OnebitTest, AllPositiveAndAllNegativeInputs) {
  OnebitCompressor codec;
  Tensor positive("p", 64);
  positive.Fill(2.0f);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(positive.span(), &encoded).ok());
  std::vector<float> decoded(64);
  ASSERT_TRUE(codec.Decode(encoded, decoded).ok());
  for (float v : decoded) {
    EXPECT_FLOAT_EQ(v, 2.0f);
  }

  Tensor negative("n", 64);
  negative.Fill(-3.0f);
  ASSERT_TRUE(codec.Encode(negative.span(), &encoded).ok());
  ASSERT_TRUE(codec.Decode(encoded, decoded).ok());
  for (float v : decoded) {
    EXPECT_FLOAT_EQ(v, -3.0f);
  }
}

TEST(OnebitTest, RejectsMismatchedOutputSize) {
  OnebitCompressor codec;
  Tensor gradient = RandomGradient(100, 3);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  std::vector<float> wrong(99);
  EXPECT_FALSE(codec.Decode(encoded, wrong).ok());
}

TEST(OnebitTest, RejectsTruncatedBuffer) {
  OnebitCompressor codec;
  Tensor gradient = RandomGradient(100, 4);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  ByteBuffer truncated(
      std::vector<uint8_t>(encoded.data(), encoded.data() + 13));
  std::vector<float> out(100);
  EXPECT_FALSE(codec.Decode(truncated, out).ok());
}

TEST(OnebitTest, EncodedElementCount) {
  OnebitCompressor codec;
  Tensor gradient = RandomGradient(12345, 5);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  auto count = codec.EncodedElementCount(encoded);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 12345u);
}

// --------------------------------------------------------------------- tbq

TEST(TbqTest, QuantizesToThreeLevels) {
  CompressorParams params;
  params.threshold = 0.5f;
  TbqCompressor codec(params);
  Tensor gradient = RandomGradient(1000, 6);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  std::vector<float> decoded(1000);
  ASSERT_TRUE(codec.Decode(encoded, decoded).ok());
  for (size_t i = 0; i < gradient.size(); ++i) {
    if (gradient[i] > 0.5f) {
      EXPECT_FLOAT_EQ(decoded[i], 0.5f);
    } else if (gradient[i] < -0.5f) {
      EXPECT_FLOAT_EQ(decoded[i], -0.5f);
    } else {
      EXPECT_FLOAT_EQ(decoded[i], 0.0f);
    }
  }
}

TEST(TbqTest, TwoBitsPerElement) {
  CompressorParams params;
  TbqCompressor codec(params);
  EXPECT_EQ(codec.MaxEncodedSize(400), 8u + 100u);
  EXPECT_NEAR(codec.CompressionRate(1 << 20), 1.0 / 16, 1e-4);
}

TEST(TbqTest, DecodeAddAccumulates) {
  CompressorParams params;
  params.threshold = 0.1f;
  TbqCompressor codec(params);
  Tensor gradient = RandomGradient(123, 7);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  std::vector<float> accum(123, 1.0f);
  ASSERT_TRUE(codec.DecodeAdd(encoded, accum).ok());
  std::vector<float> decoded(123);
  ASSERT_TRUE(codec.Decode(encoded, decoded).ok());
  for (size_t i = 0; i < accum.size(); ++i) {
    EXPECT_FLOAT_EQ(accum[i], 1.0f + decoded[i]);
  }
}

TEST(TbqTest, ZeroInputEncodesToZeros) {
  CompressorParams params;
  params.threshold = 0.05f;
  TbqCompressor codec(params);
  Tensor zeros("z", 77);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(zeros.span(), &encoded).ok());
  std::vector<float> decoded(77, 9.0f);
  ASSERT_TRUE(codec.Decode(encoded, decoded).ok());
  for (float v : decoded) {
    EXPECT_FLOAT_EQ(v, 0.0f);
  }
}

// ---------------------------------------------------------------- terngrad

TEST(TernGradTest, ReconstructionWithinOneGap) {
  CompressorParams params;
  params.bitwidth = 2;
  TernGradCompressor codec(params);
  Tensor gradient = RandomGradient(5000, 8);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  std::vector<float> decoded(5000);
  ASSERT_TRUE(codec.Decode(encoded, decoded).ok());

  float min_v = gradient[0];
  float max_v = gradient[0];
  for (size_t i = 0; i < gradient.size(); ++i) {
    min_v = std::min(min_v, gradient[i]);
    max_v = std::max(max_v, gradient[i]);
  }
  const float gap = (max_v - min_v) / 3.0f;
  for (size_t i = 0; i < gradient.size(); ++i) {
    EXPECT_LE(std::abs(decoded[i] - gradient[i]), gap * 1.0001f) << i;
  }
}

TEST(TernGradTest, StochasticRoundingIsUnbiased) {
  // Mean reconstruction error over many elements should be near zero.
  CompressorParams params;
  params.bitwidth = 2;
  TernGradCompressor codec(params);
  Tensor gradient = RandomGradient(200000, 9);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  std::vector<float> decoded(gradient.size());
  ASSERT_TRUE(codec.Decode(encoded, decoded).ok());
  double bias = 0.0;
  for (size_t i = 0; i < gradient.size(); ++i) {
    bias += static_cast<double>(decoded[i]) - gradient[i];
  }
  bias /= static_cast<double>(gradient.size());
  // Gap is ~2.8 for N(0,1) over 200k samples; bias should be tiny.
  EXPECT_LT(std::abs(bias), 0.02);
}

TEST(TernGradTest, ConstantTensorIsExact) {
  CompressorParams params;
  params.bitwidth = 2;
  TernGradCompressor codec(params);
  Tensor constant("c", 50);
  constant.Fill(1.25f);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(constant.span(), &encoded).ok());
  std::vector<float> decoded(50);
  ASSERT_TRUE(codec.Decode(encoded, decoded).ok());
  for (float v : decoded) {
    EXPECT_FLOAT_EQ(v, 1.25f);
  }
}

TEST(TernGradTest, RejectsInvalidBitwidth) {
  CompressorParams params;
  params.bitwidth = 3;
  TernGradCompressor codec(params);
  Tensor gradient = RandomGradient(10, 10);
  ByteBuffer encoded;
  EXPECT_FALSE(codec.Encode(gradient.span(), &encoded).ok());
}

TEST(TernGradTest, DeterministicForFixedSeed) {
  CompressorParams params;
  params.bitwidth = 2;
  params.seed = 777;
  TernGradCompressor codec(params);
  Tensor gradient = RandomGradient(4096, 11);
  ByteBuffer a;
  ByteBuffer b;
  ASSERT_TRUE(codec.Encode(gradient.span(), &a).ok());
  ASSERT_TRUE(codec.Encode(gradient.span(), &b).ok());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0);
}

class TernGradBitwidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(TernGradBitwidthTest, RoundTripBoundScalesWithBitwidth) {
  CompressorParams params;
  params.bitwidth = GetParam();
  TernGradCompressor codec(params);
  Tensor gradient = RandomGradient(10000, 12 + GetParam());
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  std::vector<float> decoded(gradient.size());
  ASSERT_TRUE(codec.Decode(encoded, decoded).ok());
  float min_v = gradient[0];
  float max_v = gradient[0];
  for (size_t i = 0; i < gradient.size(); ++i) {
    min_v = std::min(min_v, gradient[i]);
    max_v = std::max(max_v, gradient[i]);
  }
  const float gap =
      (max_v - min_v) / static_cast<float>((1u << GetParam()) - 1);
  double max_err = 0.0;
  for (size_t i = 0; i < gradient.size(); ++i) {
    max_err = std::max(
        max_err, std::abs(static_cast<double>(decoded[i]) - gradient[i]));
  }
  EXPECT_LE(max_err, gap * 1.0001);
  // Higher bitwidth -> bigger payload.
  EXPECT_NEAR(codec.CompressionRate(1 << 20),
              static_cast<double>(GetParam()) / 32.0, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Bitwidths, TernGradBitwidthTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

// --------------------------------------------------------------------- dgc

TEST(DgcTest, KeepsTargetFractionExactPath) {
  CompressorParams params;
  params.sparsity_ratio = 0.01;
  DgcCompressor codec(params);
  Tensor gradient = RandomGradient(10000, 20);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  auto view = SparseParse(encoded);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->count, 10000u);
  EXPECT_EQ(view->k, 100u);
}

TEST(DgcTest, SelectedElementsAreTheLargest) {
  CompressorParams params;
  params.sparsity_ratio = 0.01;
  DgcCompressor codec(params);
  Tensor gradient = RandomGradient(4096, 21);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  auto view = SparseParse(encoded);
  ASSERT_TRUE(view.ok());

  // The smallest selected magnitude must be >= the largest dropped one.
  std::set<uint32_t> selected(view->indices, view->indices + view->k);
  float min_selected = 1e30f;
  for (uint32_t i = 0; i < view->k; ++i) {
    min_selected =
        std::min(min_selected, std::abs(view->values[i]));
  }
  float max_dropped = 0.0f;
  for (size_t i = 0; i < gradient.size(); ++i) {
    if (selected.count(static_cast<uint32_t>(i)) == 0) {
      max_dropped = std::max(max_dropped, std::abs(gradient[i]));
    }
  }
  EXPECT_GE(min_selected, max_dropped);
}

TEST(DgcTest, IndicesAreSortedUniqueAndValuesMatch) {
  CompressorParams params;
  params.sparsity_ratio = 0.005;
  DgcCompressor codec(params);
  Tensor gradient = RandomGradient(50000, 22);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  auto view = SparseParse(encoded);
  ASSERT_TRUE(view.ok());
  for (uint32_t i = 1; i < view->k; ++i) {
    EXPECT_LT(view->indices[i - 1], view->indices[i]);
  }
  for (uint32_t i = 0; i < view->k; ++i) {
    EXPECT_FLOAT_EQ(view->values[i], gradient[view->indices[i]]);
  }
}

TEST(DgcTest, DecodeScattersAndZeroFills) {
  CompressorParams params;
  params.sparsity_ratio = 0.01;
  DgcCompressor codec(params);
  Tensor gradient = RandomGradient(2000, 23);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  std::vector<float> decoded(2000, 42.0f);
  ASSERT_TRUE(codec.Decode(encoded, decoded).ok());
  auto view = SparseParse(encoded);
  ASSERT_TRUE(view.ok());
  std::set<uint32_t> selected(view->indices, view->indices + view->k);
  for (size_t i = 0; i < decoded.size(); ++i) {
    if (selected.count(static_cast<uint32_t>(i)) > 0) {
      EXPECT_FLOAT_EQ(decoded[i], gradient[i]);
    } else {
      EXPECT_FLOAT_EQ(decoded[i], 0.0f);
    }
  }
}

TEST(DgcTest, SampledPathStaysNearTarget) {
  CompressorParams params;
  params.sparsity_ratio = 0.001;
  DgcCompressor codec(params);
  // Large enough to take the sampled-threshold path.
  Tensor gradient = RandomGradient(1 << 20, 24);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  auto view = SparseParse(encoded);
  ASSERT_TRUE(view.ok());
  const double target = 1048576 * 0.001;
  EXPECT_LE(view->k, static_cast<uint32_t>(target) + 1);
  EXPECT_GE(view->k, static_cast<uint32_t>(target * 0.3));
}

TEST(DgcTest, AllZeroGradientStillSendsOneElement) {
  CompressorParams params;
  params.sparsity_ratio = 0.001;
  DgcCompressor codec(params);
  Tensor zeros("z", 1000);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(zeros.span(), &encoded).ok());
  auto view = SparseParse(encoded);
  ASSERT_TRUE(view.ok());
  EXPECT_GE(view->k, 1u);
}

class DgcRatioTest : public ::testing::TestWithParam<double> {};

TEST_P(DgcRatioTest, CompressionRateTracksRatio) {
  CompressorParams params;
  params.sparsity_ratio = GetParam();
  DgcCompressor codec(params);
  // Sparse payload: 8 bytes per kept element vs 4 per original.
  EXPECT_NEAR(codec.CompressionRate(1 << 20), GetParam() * 2.0, 0.01);
  Tensor gradient = RandomGradient(100000, 25);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  std::vector<float> decoded(gradient.size());
  EXPECT_TRUE(codec.Decode(encoded, decoded).ok());
}

INSTANTIATE_TEST_SUITE_P(Ratios, DgcRatioTest,
                         ::testing::Values(0.001, 0.01, 0.05));

// ---------------------------------------------------------------- graddrop

TEST(GradDropTest, KeepsApproximatelyTargetFraction) {
  CompressorParams params;
  params.sparsity_ratio = 0.01;
  GradDropCompressor codec(params);
  Tensor gradient = RandomGradient(100000, 30);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  auto view = SparseParse(encoded);
  ASSERT_TRUE(view.ok());
  EXPECT_GT(view->k, 100000 * 0.003);
  EXPECT_LT(view->k, 100000 * 0.03);
}

TEST(GradDropTest, RoundTripPreservesKeptValues) {
  CompressorParams params;
  params.sparsity_ratio = 0.02;
  GradDropCompressor codec(params);
  Tensor gradient = RandomGradient(5000, 31);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  std::vector<float> decoded(5000);
  ASSERT_TRUE(codec.Decode(encoded, decoded).ok());
  for (size_t i = 0; i < decoded.size(); ++i) {
    if (decoded[i] != 0.0f) {
      EXPECT_FLOAT_EQ(decoded[i], gradient[i]);
    }
  }
}

TEST(GradDropTest, IsSparseAndDgcToo) {
  CompressorParams params;
  EXPECT_TRUE(GradDropCompressor(params).is_sparse());
  EXPECT_TRUE(DgcCompressor(params).is_sparse());
  EXPECT_FALSE(OnebitCompressor(params).is_sparse());
  EXPECT_FALSE(TbqCompressor(params).is_sparse());
  EXPECT_FALSE(TernGradCompressor(params).is_sparse());
}

// ---------------------------------------------------------------- adacomp

TEST(AdaCompTest, KeepsBinLocalMaxima) {
  CompressorParams params;
  params.threshold = 1.0f;  // selectivity 1.0: only each bin's max survives
  AdaCompCompressor codec(params);
  Tensor gradient = RandomGradient(4 * AdaCompCompressor::kBinSize, 40);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  auto view = SparseParse(encoded);
  ASSERT_TRUE(view.ok());
  // At selectivity 1.0 each bin keeps exactly its argmax (ties aside).
  EXPECT_GE(view->k, 4u);
  EXPECT_LE(view->k, 8u);
  for (uint32_t i = 0; i < view->k; ++i) {
    const size_t bin = view->indices[i] / AdaCompCompressor::kBinSize;
    float local_max = 0.0f;
    const size_t begin = bin * AdaCompCompressor::kBinSize;
    const size_t end =
        std::min(gradient.size(), begin + AdaCompCompressor::kBinSize);
    for (size_t j = begin; j < end; ++j) {
      local_max = std::max(local_max, std::abs(gradient[j]));
    }
    EXPECT_FLOAT_EQ(std::abs(view->values[i]), local_max);
  }
}

TEST(AdaCompTest, LowerSelectivityKeepsMore) {
  Tensor gradient = RandomGradient(1 << 16, 41);
  auto count_kept = [&](float selectivity) {
    CompressorParams params;
    params.threshold = selectivity;
    AdaCompCompressor codec(params);
    ByteBuffer encoded;
    EXPECT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
    auto view = SparseParse(encoded);
    EXPECT_TRUE(view.ok());
    return view->k;
  };
  EXPECT_GT(count_kept(0.5f), count_kept(0.9f));
}

TEST(AdaCompTest, AdaptsToBinSparsity) {
  // A gradient that is flat in one half and spiky in the other: the spiky
  // bins keep ~1 element, the flat bins keep many (everything ties the
  // local max) — the "adaptive" in AdaComp.
  CompressorParams params;
  params.threshold = 0.99f;
  AdaCompCompressor codec(params);
  const size_t bin = AdaCompCompressor::kBinSize;
  Tensor gradient("g", 2 * bin);
  for (size_t i = 0; i < bin; ++i) {
    gradient[i] = 1.0f;  // flat bin: all elements tie
  }
  gradient[bin] = 100.0f;  // spiky bin: single dominant element
  for (size_t i = bin + 1; i < 2 * bin; ++i) {
    gradient[i] = 0.01f;
  }
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(gradient.span(), &encoded).ok());
  auto view = SparseParse(encoded);
  ASSERT_TRUE(view.ok());
  size_t flat = 0;
  size_t spiky = 0;
  for (uint32_t i = 0; i < view->k; ++i) {
    (view->indices[i] < bin ? flat : spiky) += 1;
  }
  EXPECT_EQ(flat, bin);   // whole flat bin survives
  EXPECT_EQ(spiky, 1u);   // only the spike survives
}

TEST(AdaCompTest, ZeroBinsSendNothing) {
  CompressorParams params;
  AdaCompCompressor codec(params);
  Tensor zeros("z", 4096);
  ByteBuffer encoded;
  ASSERT_TRUE(codec.Encode(zeros.span(), &encoded).ok());
  auto view = SparseParse(encoded);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->k, 0u);
}

// ------------------------------------------------------------ sparse format

TEST(SparseFormatTest, RejectsCorruptPayloads) {
  ByteBuffer bogus(std::vector<uint8_t>{1, 2, 3});
  EXPECT_FALSE(SparseParse(bogus).ok());

  // k > count.
  ByteBuffer bad;
  bad.Append<uint32_t>(2);
  bad.Append<uint32_t>(5);
  EXPECT_FALSE(SparseParse(bad).ok());
}

TEST(SparseFormatTest, RejectsOutOfRangeIndexOnDecode) {
  std::vector<uint32_t> indices = {9};  // out of range for count=5
  std::vector<float> values = {1.0f};
  ByteBuffer buffer;
  SparseEncode(5, indices, values, &buffer);
  std::vector<float> out(5);
  EXPECT_FALSE(SparseDecode(buffer, out).ok());
}

TEST(SparseFormatTest, EmptyPayloadRoundTrip) {
  ByteBuffer buffer;
  SparseEncode(0, {}, {}, &buffer);
  auto view = SparseParse(buffer);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->count, 0u);
  EXPECT_EQ(view->k, 0u);
}

// ---------------------------------------------------------------- registry

TEST(RegistryTest, CreatesAllBuiltins) {
  for (const char* name : {"onebit", "tbq", "terngrad", "dgc", "graddrop",
                           "oss-onebit", "oss-tbq", "oss-terngrad",
                           "oss-dgc"}) {
    auto codec = CreateCompressor(name);
    ASSERT_TRUE(codec.ok()) << name;
    EXPECT_EQ((*codec)->name(), name);
  }
}

TEST(RegistryTest, UnknownNameFails) {
  EXPECT_FALSE(CreateCompressor("no-such-algorithm").ok());
}

TEST(RegistryTest, DuplicateRegistrationRejected) {
  auto& registry = CompressorRegistry::Instance();
  const Status status = registry.Register(
      "onebit", [](const CompressorParams& params) {
        return std::make_unique<OnebitCompressor>(params);
      });
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST(RegistryTest, NamesListsEverything) {
  const auto names = CompressorRegistry::Instance().Names();
  EXPECT_GE(names.size(), 9u);
}

// ----------------------------------------------- parameterized round trips

struct RoundTripCase {
  const char* algorithm;
  size_t size;
};

class RoundTripTest : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(RoundTripTest, EncodeDecodeSucceedsAtAllSizes) {
  const auto& param = GetParam();
  CompressorParams params;
  params.sparsity_ratio = 0.05;
  auto codec = CreateCompressor(param.algorithm, params);
  ASSERT_TRUE(codec.ok());
  Tensor gradient = RandomGradient(param.size, 1000 + param.size);
  ByteBuffer encoded;
  ASSERT_TRUE((*codec)->Encode(gradient.span(), &encoded).ok());
  EXPECT_LE(encoded.size(), (*codec)->MaxEncodedSize(param.size));
  std::vector<float> decoded(param.size);
  ASSERT_TRUE((*codec)->Decode(encoded, decoded).ok());
  auto count = (*codec)->EncodedElementCount(encoded);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, param.size);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlgorithms, RoundTripTest,
    ::testing::Values(
        RoundTripCase{"onebit", 1}, RoundTripCase{"onebit", 7},
        RoundTripCase{"onebit", 8}, RoundTripCase{"onebit", 4099},
        RoundTripCase{"tbq", 1}, RoundTripCase{"tbq", 5},
        RoundTripCase{"tbq", 4096}, RoundTripCase{"terngrad", 3},
        RoundTripCase{"terngrad", 4}, RoundTripCase{"terngrad", 4097},
        RoundTripCase{"dgc", 10}, RoundTripCase{"dgc", 65537},
        RoundTripCase{"graddrop", 10}, RoundTripCase{"graddrop", 30000},
        RoundTripCase{"oss-onebit", 9}, RoundTripCase{"oss-tbq", 9},
        RoundTripCase{"oss-terngrad", 9}, RoundTripCase{"oss-dgc", 100}));

}  // namespace
}  // namespace hipress
