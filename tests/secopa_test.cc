// SeCoPa cost model: Eq. 1/2 arithmetic, convexity-driven planning, and the
// Table 7 plan shapes (small gradients uncompressed or single-partition,
// large gradients compressed and partitioned, more partitions on bigger
// clusters).
#include <gtest/gtest.h>

#include <cmath>
#include "src/casync/secopa.h"

namespace hipress {
namespace {

SyncConfig PlannerConfig(StrategyKind strategy, int nodes) {
  SyncConfig config;
  config.strategy = strategy;
  config.num_nodes = nodes;
  config.algorithm = "onebit";
  config.codec_impl = CodecImpl::kCompLL;
  config.platform = GpuPlatform::kV100;
  config.net.link_bandwidth = Bandwidth::Gbps(75.0);
  config.net.latency = FromMicros(20.0);
  config.net.per_message_overhead = FromMicros(4.0);
  return config;
}

constexpr double kOnebitRate = 1.0 / 32;

TEST(SeCoPaTest, PlainCostMatchesFormula) {
  const SyncConfig config = PlannerConfig(StrategyKind::kPs, 4);
  SeCoPaPlanner planner(config, kOnebitRate);
  // alpha = 2(N-1) = 6; K=1: cost = 6 * T_send(m).
  const uint64_t m = 8 * kMiB;
  const SimTime t_send =
      config.net.link_bandwidth.TransferTime(m) + config.net.latency +
      config.net.per_message_overhead;
  EXPECT_NEAR(static_cast<double>(planner.SyncCostPlain(m, 1)),
              6.0 * static_cast<double>(t_send),
              static_cast<double>(kMicrosecond));
}

TEST(SeCoPaTest, CompressedCostIncludesCodecTerms) {
  const SyncConfig config = PlannerConfig(StrategyKind::kRing, 4);
  SeCoPaPlanner planner(config, kOnebitRate);
  const uint64_t m = 8 * kMiB;
  // Ring: alpha=6, beta=N=4, gamma=N=4.
  const auto codec =
      GetCodecSpeed("onebit", CodecImpl::kCompLL, GpuPlatform::kV100);
  const double t_send_cpr = static_cast<double>(
      config.net.link_bandwidth.TransferTime(
          static_cast<uint64_t>(kOnebitRate * m)) +
      config.net.latency + config.net.per_message_overhead);
  const double expected = 6.0 * t_send_cpr +
                          4.0 * static_cast<double>(codec.encode.Time(m)) +
                          4.0 * static_cast<double>(codec.decode.Time(m));
  EXPECT_NEAR(static_cast<double>(planner.SyncCostCompressed(m, 1)),
              expected, expected * 0.02);
}

TEST(SeCoPaTest, LargeGradientsCompress) {
  const SyncConfig config = PlannerConfig(StrategyKind::kPs, 16);
  SeCoPaPlanner planner(config, kOnebitRate);
  const SyncPlan plan = planner.Plan(392 * kMiB);
  EXPECT_TRUE(plan.compress);
  EXPECT_GT(plan.partitions, 1);
}

TEST(SeCoPaTest, TinyGradientsDoNotCompress) {
  const SyncConfig config = PlannerConfig(StrategyKind::kPs, 16);
  SeCoPaPlanner planner(config, kOnebitRate);
  // A 4 KB gradient: codec overheads dwarf the wire savings.
  const SyncPlan plan = planner.Plan(4 * 1024);
  EXPECT_FALSE(plan.compress);
}

TEST(SeCoPaTest, CompressionThresholdIsMegabyteScale) {
  // Section 6.1: with 16 nodes CaSync compresses gradients larger than
  // ~4 MB. Scan for our model's crossover and check the order of magnitude.
  const SyncConfig config = PlannerConfig(StrategyKind::kPs, 16);
  SeCoPaPlanner planner(config, kOnebitRate);
  uint64_t threshold = 0;
  for (uint64_t bytes = 64 * 1024; bytes <= 64 * kMiB; bytes *= 2) {
    if (planner.Plan(bytes).compress) {
      threshold = bytes;
      break;
    }
  }
  ASSERT_GT(threshold, 0u) << "compression never chosen";
  EXPECT_GE(threshold, 256u * 1024);
  EXPECT_LE(threshold, 16u * kMiB);
}

TEST(SeCoPaTest, BiggerClustersPartitionMore) {
  const uint64_t m = 392 * kMiB;
  SeCoPaPlanner small(PlannerConfig(StrategyKind::kPs, 4), kOnebitRate);
  SeCoPaPlanner large(PlannerConfig(StrategyKind::kPs, 16), kOnebitRate);
  const SyncPlan small_plan = small.Plan(m);
  const SyncPlan large_plan = large.Plan(m);
  EXPECT_TRUE(small_plan.compress);
  EXPECT_TRUE(large_plan.compress);
  EXPECT_GE(large_plan.partitions, small_plan.partitions);
}

TEST(SeCoPaTest, CompressedCostIsConvexInPartitions) {
  const SyncConfig config = PlannerConfig(StrategyKind::kPs, 8);
  SeCoPaPlanner planner(config, kOnebitRate);
  const uint64_t m = 64 * kMiB;
  // Scan K over [1, N]: the cost should decrease to a minimum then increase
  // (no second dip) — the property the planner's argmin relies on. Beyond
  // K = N the ceil(K/N) batching term introduces a legitimate step.
  int direction_changes = 0;
  SimTime previous = planner.SyncCostCompressed(m, 1);
  bool decreasing = true;
  for (int k = 2; k <= 8; ++k) {
    const SimTime cost = planner.SyncCostCompressed(m, k);
    // Ignore sub-microsecond wobble from integer nanosecond rounding.
    if (std::abs(cost - previous) > kMicrosecond) {
      const bool now_decreasing = cost < previous;
      if (now_decreasing != decreasing) {
        ++direction_changes;
        decreasing = now_decreasing;
      }
    }
    previous = cost;
  }
  EXPECT_LE(direction_changes, 1);
}

TEST(SeCoPaTest, SlowCodecDiscouragesCompression) {
  // With the on-CPU codec, compression should stop paying for mid-size
  // gradients that the GPU codec would compress.
  SyncConfig gpu_config = PlannerConfig(StrategyKind::kPs, 16);
  SyncConfig cpu_config = gpu_config;
  cpu_config.codec_impl = CodecImpl::kCpu;
  SeCoPaPlanner gpu(gpu_config, kOnebitRate);
  SeCoPaPlanner cpu(cpu_config, kOnebitRate);
  const uint64_t m = 16 * kMiB;
  EXPECT_TRUE(gpu.Plan(m).compress);
  EXPECT_LT(static_cast<double>(gpu.SyncCostCompressed(m, 1)),
            static_cast<double>(cpu.SyncCostCompressed(m, 1)));
}

TEST(SeCoPaTest, HigherRateReducesCompressionBenefit) {
  // Figure 12b's mechanism: TernGrad 8-bit (rate 1/4) saves less wire time
  // than 2-bit (rate 1/16), so its compressed sync cost is higher.
  const SyncConfig config = PlannerConfig(StrategyKind::kPs, 16);
  SeCoPaPlanner two_bit(config, 2.0 / 32);
  SeCoPaPlanner eight_bit(config, 8.0 / 32);
  const uint64_t m = 392 * kMiB;
  EXPECT_LT(
      static_cast<double>(two_bit.Plan(m).t_compressed),
      static_cast<double>(eight_bit.Plan(m).t_compressed));
}

TEST(SeCoPaTest, PartitionsBeyondNodeCountBatch) {
  const SyncConfig config = PlannerConfig(StrategyKind::kPs, 4);
  SeCoPaPlanner planner(config, kOnebitRate);
  const uint64_t m = 64 * kMiB;
  // K = 2N groups into 2 serial batches: cost must not be lower than half
  // the K=N cost (sanity on the ceil(K/N) term).
  EXPECT_GE(static_cast<double>(planner.SyncCostPlain(m, 8)),
            static_cast<double>(planner.SyncCostPlain(m, 4)) * 0.5);
}

}  // namespace
}  // namespace hipress
