#include <gtest/gtest.h>

#include "src/compll/analyzer.h"
#include "src/compll/builtin_algorithms.h"
#include "src/compll/parser.h"

namespace hipress::compll {
namespace {

std::vector<Diagnostic> Analyze(const std::string& source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status();
  return AnalyzeProgram(*program);
}

bool HasDiagnostic(const std::vector<Diagnostic>& diagnostics,
                   const std::string& fragment) {
  for (const Diagnostic& diagnostic : diagnostics) {
    if (diagnostic.message.find(fragment) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(AnalyzerTest, AllBuiltinProgramsAreClean) {
  for (const DslAlgorithm& algorithm : BuiltinDslAlgorithms()) {
    auto program = ParseProgram(algorithm.source);
    ASSERT_TRUE(program.ok());
    const auto diagnostics = AnalyzeProgram(*program);
    EXPECT_TRUE(diagnostics.empty())
        << algorithm.name << ": " << diagnostics[0].message;
  }
}

TEST(AnalyzerTest, UndefinedVariable) {
  const auto diagnostics = Analyze(R"(
float f(float x) {
  return y + 1;
}
)");
  EXPECT_TRUE(HasDiagnostic(diagnostics, "undefined variable 'y'"));
}

TEST(AnalyzerTest, AssignmentToUndefinedVariable) {
  const auto diagnostics = Analyze(R"(
float f(float x) {
  z = 3;
  return x;
}
)");
  EXPECT_TRUE(HasDiagnostic(diagnostics, "assignment to undefined"));
}

TEST(AnalyzerTest, UnknownFunction) {
  const auto diagnostics = Analyze(R"(
float f(float x) {
  return mystery(x);
}
)");
  EXPECT_TRUE(HasDiagnostic(diagnostics, "unknown function 'mystery'"));
}

TEST(AnalyzerTest, WrongUserFunctionArity) {
  const auto diagnostics = Analyze(R"(
float add(float a, float b) {
  return a + b;
}
float f(float x) {
  return add(x);
}
)");
  EXPECT_TRUE(HasDiagnostic(diagnostics, "takes 2 argument(s), given 1"));
}

TEST(AnalyzerTest, MapUdfMustTakeOneParameter) {
  const auto diagnostics = Analyze(R"(
float two(float a, float b) {
  return a;
}
void encode(float* gradient, uint8* compressed) {
  float* q = map(gradient, two);
  compressed = concat(q);
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)");
  EXPECT_TRUE(HasDiagnostic(diagnostics, "must take 1 parameter(s)"));
}

TEST(AnalyzerTest, ReduceAcceptsBuiltinCombiners) {
  const auto diagnostics = Analyze(R"(
void encode(float* gradient, uint8* compressed) {
  float lo = reduce(gradient, smaller);
  compressed = concat(lo);
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)");
  EXPECT_TRUE(diagnostics.empty());
}

TEST(AnalyzerTest, SortRequiresBuiltinOrder) {
  const auto diagnostics = Analyze(R"(
float weird(float a) {
  return a;
}
void encode(float* gradient, uint8* compressed) {
  float* s = sort(gradient, weird);
  compressed = concat(s);
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)");
  EXPECT_TRUE(HasDiagnostic(diagnostics, "sort order"));
}

TEST(AnalyzerTest, RandomAndExtractNeedTypeArguments) {
  auto program = ParseProgram(R"(
float f(float x) {
  return random(0, 1);
}
)");
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(HasDiagnostic(AnalyzeProgram(*program), "type argument"));
}

TEST(AnalyzerTest, ParamFieldMustExist) {
  const auto diagnostics = Analyze(R"(
param P {
  uint8 bitwidth;
}
void encode(float* gradient, uint8* compressed, P params) {
  uint8 b = params.missing;
  compressed = concat(b, gradient);
}
void decode(uint8* compressed, float* gradient, P params) {
  gradient = extract<float*>(compressed);
}
)");
  EXPECT_TRUE(HasDiagnostic(diagnostics, "no field 'missing'"));
}

TEST(AnalyzerTest, EntrySignatureIsValidated) {
  const auto diagnostics = Analyze(R"(
void encode(uint8* wrong, float* alsowrong) {
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)");
  EXPECT_TRUE(HasDiagnostic(diagnostics, "encode's first parameter"));
  EXPECT_TRUE(HasDiagnostic(diagnostics, "encode's second parameter"));
}

TEST(AnalyzerTest, MissingReturnOnFallthrough) {
  const auto diagnostics = Analyze(R"(
float f(float x) {
  if (x > 0) {
    return 1;
  }
}
)");
  EXPECT_TRUE(HasDiagnostic(diagnostics, "fall off the end"));
}

TEST(AnalyzerTest, IfElseBothReturningIsAccepted) {
  const auto diagnostics = Analyze(R"(
float sign(float x) {
  if (x >= 0) {
    return 1;
  } else {
    return -1;
  }
}
)");
  EXPECT_TRUE(diagnostics.empty());
}

TEST(AnalyzerTest, DuplicateDefinitions) {
  const auto diagnostics = Analyze(R"(
float x;
float x;
float f(float a) {
  return a;
}
float f(float a) {
  return a;
}
)");
  EXPECT_TRUE(HasDiagnostic(diagnostics, "duplicate global 'x'"));
  EXPECT_TRUE(HasDiagnostic(diagnostics, "duplicate function 'f'"));
}

TEST(AnalyzerTest, ExtensionOperatorsAreAccepted) {
  auto program = ParseProgram(R"(
void encode(float* gradient, uint8* compressed) {
  float* s = myop(gradient);
  compressed = concat(s);
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)");
  ASSERT_TRUE(program.ok());
  // Unknown without registration...
  EXPECT_TRUE(HasDiagnostic(AnalyzeProgram(*program), "unknown function"));
  // ...accepted once registered (the paper's open operator library).
  EXPECT_TRUE(AnalyzeProgram(*program, {"myop"}).empty());
}

TEST(AnalyzerTest, ValidateProgramJoinsDiagnostics) {
  auto program = ParseProgram(R"(
float f(float x) {
  return y + z;
}
)");
  ASSERT_TRUE(program.ok());
  const Status status = ValidateProgram(*program);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("'y'"), std::string::npos);
  EXPECT_NE(status.message().find("'z'"), std::string::npos);
}

}  // namespace
}  // namespace hipress::compll
