// Top-level facade behaviour, engine accounting, and cross-algorithm
// throughput sweeps through the public API.
#include <gtest/gtest.h>

#include "src/hipress/hipress.h"

namespace hipress {
namespace {

TEST(HiPressTest, UnknownModelIsRejected) {
  HiPressOptions options;
  options.model = "gpt5";
  auto result = RunTrainingSimulation(options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(HiPressTest, UnknownSystemIsRejected) {
  HiPressOptions options;
  options.system = "sorcery";
  EXPECT_FALSE(RunTrainingSimulation(options).ok());
}

TEST(HiPressTest, UnknownAlgorithmIsRejected) {
  HiPressOptions options;
  options.system = "hipress-ps";
  options.algorithm = "no-such-codec";
  EXPECT_FALSE(RunTrainingSimulation(options).ok());
}

TEST(HiPressTest, DisableRdmaSlowsTraining) {
  HiPressOptions options;
  options.model = "vgg19";
  options.system = "ring";
  options.cluster = ClusterSpec::Ec2(8);
  auto fast = RunTrainingSimulation(options);
  options.disable_rdma = true;
  auto slow = RunTrainingSimulation(options);
  ASSERT_TRUE(fast.ok() && slow.ok());
  EXPECT_GT(fast->report.throughput, slow->report.throughput);
}

TEST(HiPressTest, DslAlgorithmsRegisterAndRunEndToEnd) {
  ASSERT_TRUE(RegisterDslAlgorithms().ok());
  HiPressOptions options;
  options.model = "bert-base";
  options.system = "hipress-ps";
  options.algorithm = "dsl-onebit";  // DSL-built codec drives the plan
  options.cluster = ClusterSpec::Ec2(4);
  auto result = RunTrainingSimulation(options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->report.throughput, 0.0);
}

TEST(HiPressTest, ConfigReflectsPresetAndCluster) {
  HiPressOptions options;
  options.system = "hipress-ring";
  options.cluster = ClusterSpec::Local(8);
  auto result = RunTrainingSimulation(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->config.strategy, StrategyKind::kRing);
  EXPECT_EQ(result->config.num_nodes, 8);
  EXPECT_EQ(result->config.platform, GpuPlatform::k1080Ti);
  EXPECT_TRUE(result->config.secopa);
}

TEST(EngineStatsTest, CompressionRunsAccountKernelsAndWire) {
  HiPressOptions options;
  options.model = "vgg19";
  options.system = "hipress-ps";
  options.cluster = ClusterSpec::Ec2(8);
  auto result = RunTrainingSimulation(options);
  ASSERT_TRUE(result.ok());
  const EngineStats& stats = result->report.engine_stats;
  EXPECT_GT(stats.encode_tasks, 0u);
  EXPECT_GT(stats.decode_tasks, 0u);
  EXPECT_GT(stats.encode_time, 0);
  EXPECT_GT(stats.decode_time, 0);
  // onebit on VGG19: wire bytes far below the raw 2 x 548MB x (N-1)/N.
  EXPECT_LT(stats.wire_bytes, 600ull * 1024 * 1024);
  EXPECT_GT(stats.wire_bytes, 10ull * 1024 * 1024);
}

TEST(EngineStatsTest, RawRunsHaveNoCodecTasks) {
  HiPressOptions options;
  options.model = "resnet50";
  options.system = "ring";
  options.cluster = ClusterSpec::Ec2(4);
  auto result = RunTrainingSimulation(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->report.engine_stats.encode_tasks, 0u);
  EXPECT_EQ(result->report.engine_stats.decode_tasks, 0u);
  EXPECT_GT(result->report.engine_stats.merge_tasks, 0u);
}

struct AlgorithmSweepCase {
  const char* algorithm;
  double min_gain_over_ring;  // at 16 nodes on Bert-large
};

class AlgorithmSweepTest
    : public ::testing::TestWithParam<AlgorithmSweepCase> {};

TEST_P(AlgorithmSweepTest, EveryCodecAcceleratesCommBoundTraining) {
  HiPressOptions options;
  options.model = "bert-large";
  options.cluster = ClusterSpec::Ec2(16);
  options.system = "ring";
  auto base = RunTrainingSimulation(options);
  ASSERT_TRUE(base.ok());
  options.system = "hipress-ps";
  options.algorithm = GetParam().algorithm;
  options.codec_params.sparsity_ratio = 0.001;
  auto hipress = RunTrainingSimulation(options);
  ASSERT_TRUE(hipress.ok()) << GetParam().algorithm;
  EXPECT_GT(hipress->report.throughput,
            base->report.throughput * GetParam().min_gain_over_ring)
      << GetParam().algorithm;
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, AlgorithmSweepTest,
    ::testing::Values(AlgorithmSweepCase{"onebit", 1.5},
                      AlgorithmSweepCase{"fp16", 1.2},
                      AlgorithmSweepCase{"tbq", 1.5},
                      AlgorithmSweepCase{"terngrad", 1.5},
                      AlgorithmSweepCase{"dgc", 1.5},
                      AlgorithmSweepCase{"graddrop", 1.5},
                      AlgorithmSweepCase{"adacomp", 1.5}));

}  // namespace
}  // namespace hipress
