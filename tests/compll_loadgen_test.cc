// End-to-end code generation: compile the generated C++ into a shared
// object with the host compiler, dlopen it, and cross-validate the C entry
// points against the interpreter on the same inputs. This is the closest
// host-side analogue of the paper's generate-CUDA-and-link pipeline.
#include <gtest/gtest.h>

#include <dlfcn.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/compll/builtin_algorithms.h"
#include "src/compll/codegen.h"
#include "src/compll/dsl_compressor.h"
#include "src/tensor/tensor.h"

namespace hipress::compll {
namespace {

using EncodeFn = int (*)(const float*, size_t, uint8_t*, size_t, size_t*,
                         const double*, size_t);
using DecodeFn = int (*)(const uint8_t*, size_t, float*, size_t, size_t*,
                         const double*, size_t);

struct LoadedCodec {
  void* handle = nullptr;
  EncodeFn encode = nullptr;
  DecodeFn decode = nullptr;
};

// Generates, compiles and loads an algorithm; returns nullopt (and skips)
// when the host compiler is unavailable.
bool CompileAndLoad(const std::string& algorithm, LoadedCodec* codec) {
  const DslAlgorithm* entry = FindDslAlgorithm(algorithm);
  if (entry == nullptr) {
    return false;
  }
  CodegenOptions options;
  options.algorithm_name = algorithm;
  auto generated = GenerateCppFromSource(entry->source, options);
  EXPECT_TRUE(generated.ok()) << generated.status();

  const std::string base = "/tmp/compll_load_" + algorithm;
  {
    std::ofstream out(base + ".cc");
    out << *generated;
  }
  const std::string command = "c++ -std=c++20 -O1 -shared -fPIC -o " + base +
                              ".so " + base + ".cc 2>/dev/null";
  const int rc = std::system(command.c_str());
  if (rc != 0) {
    return false;
  }
  codec->handle = dlopen((base + ".so").c_str(), RTLD_NOW);
  if (codec->handle == nullptr) {
    return false;
  }
  codec->encode = reinterpret_cast<EncodeFn>(
      dlsym(codec->handle, (algorithm + "_encode_c").c_str()));
  codec->decode = reinterpret_cast<DecodeFn>(
      dlsym(codec->handle, (algorithm + "_decode_c").c_str()));
  return codec->encode != nullptr && codec->decode != nullptr;
}

class LoadGenTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LoadGenTest, GeneratedSharedObjectMatchesInterpreter) {
  const std::string algorithm = GetParam();
  LoadedCodec loaded;
  if (!CompileAndLoad(algorithm, &loaded)) {
    GTEST_SKIP() << "host compiler or dlopen unavailable";
  }

  // Reference: the interpreter-backed compressor with identical params.
  CompressorParams params;
  params.sparsity_ratio = 0.02;
  params.bitwidth = 2;
  auto reference = DslCompressor::CreateBuiltin(algorithm, params);
  ASSERT_TRUE(reference.ok()) << reference.status();

  Rng rng(99);
  Tensor gradient("g", 2048);
  gradient.FillGaussian(rng);

  // Generated-code round trip.
  std::vector<uint8_t> wire(1 << 20);
  size_t wire_size = 0;
  const double fields[] = {algorithm == "terngrad"
                               ? static_cast<double>(params.bitwidth)
                               : (algorithm == "tbq"
                                      ? static_cast<double>(params.threshold)
                                      : params.sparsity_ratio)};
  ASSERT_EQ(loaded.encode(gradient.data(), gradient.size(), wire.data(),
                          wire.size(), &wire_size, fields, 1),
            0);
  std::vector<float> generated_out(gradient.size() + 16, 0.0f);
  size_t decoded_size = 0;
  ASSERT_EQ(loaded.decode(wire.data(), wire_size, generated_out.data(),
                          generated_out.size(), &decoded_size, fields, 1),
            0);
  ASSERT_GE(decoded_size, gradient.size());

  // Interpreter round trip on the same gradient.
  ByteBuffer reference_wire;
  ASSERT_TRUE((*reference)->Encode(gradient.span(), &reference_wire).ok());
  std::vector<float> reference_out(gradient.size());
  ASSERT_TRUE((*reference)->Decode(reference_wire, reference_out).ok());

  // The DslCompressor frames the payload with a count header; the raw
  // generated payload should equal the framed payload minus the header.
  ASSERT_EQ(wire_size, reference_wire.size() - kCountHeaderBytes);
  EXPECT_EQ(std::memcmp(wire.data(),
                        reference_wire.data() + kCountHeaderBytes,
                        wire_size),
            0)
      << algorithm << ": generated payload differs from interpreter";

  for (size_t i = 0; i < gradient.size(); ++i) {
    EXPECT_NEAR(generated_out[i], reference_out[i], 1e-6)
        << algorithm << " element " << i;
  }
  dlclose(loaded.handle);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, LoadGenTest,
                         ::testing::Values("onebit", "tbq", "terngrad",
                                           "dgc", "graddrop"));

bool CopyFile(const std::string& from, const std::string& to) {
  std::ifstream in(from, std::ios::binary);
  std::ofstream out(to, std::ios::binary);
  out << in.rdbuf();
  return in.good() && out.good();
}

// Large-input cross-validation: at ~100k elements the interpreter shards
// its reductions and the generated unit runs multi-block __reduce_sum on
// whatever SIMD tier the host supports. Payloads must still match byte for
// byte — this is what pins the canonical blocked-sum schedule — and the
// generated payload must be invariant under HIPRESS_SIMD=scalar (each .so
// copy caches its tier independently, so we load the same unit twice).
TEST(LoadGenLargeTest, LargePayloadMatchesInterpreterAndIsTierInvariant) {
  const std::string algorithm = "onebit";
  LoadedCodec native;
  if (!CompileAndLoad(algorithm, &native)) {
    GTEST_SKIP() << "host compiler or dlopen unavailable";
  }

  Rng rng(1234);
  Tensor gradient("g", 100003);  // multi-block, non-multiple-of-4096 tail
  gradient.FillGaussian(rng);
  const double fields[] = {0.02};

  std::vector<uint8_t> wire_native(1 << 21);
  size_t native_size = 0;
  ASSERT_EQ(native.encode(gradient.data(), gradient.size(),
                          wire_native.data(), wire_native.size(),
                          &native_size, fields, 1),
            0);

  // Same unit, tier pinned to scalar via the environment (read lazily at
  // the first encode of the fresh copy).
  const std::string base = "/tmp/compll_load_" + algorithm;
  const std::string scalar_so = base + "_scalar.so";
  ASSERT_TRUE(CopyFile(base + ".so", scalar_so));
  ASSERT_EQ(setenv("HIPRESS_SIMD", "scalar", 1), 0);
  void* scalar_handle = dlopen(scalar_so.c_str(), RTLD_NOW | RTLD_LOCAL);
  ASSERT_NE(scalar_handle, nullptr);
  auto scalar_encode = reinterpret_cast<EncodeFn>(
      dlsym(scalar_handle, (algorithm + "_encode_c").c_str()));
  ASSERT_NE(scalar_encode, nullptr);
  std::vector<uint8_t> wire_scalar(1 << 21);
  size_t scalar_size = 0;
  ASSERT_EQ(scalar_encode(gradient.data(), gradient.size(),
                          wire_scalar.data(), wire_scalar.size(),
                          &scalar_size, fields, 1),
            0);
  ASSERT_EQ(unsetenv("HIPRESS_SIMD"), 0);

  ASSERT_EQ(native_size, scalar_size);
  EXPECT_EQ(std::memcmp(wire_native.data(), wire_scalar.data(), native_size),
            0)
      << algorithm << ": payload depends on the SIMD tier";

  // Interpreter reference on the same gradient.
  CompressorParams params;
  params.sparsity_ratio = 0.02;
  auto reference = DslCompressor::CreateBuiltin(algorithm, params);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ByteBuffer reference_wire;
  ASSERT_TRUE((*reference)->Encode(gradient.span(), &reference_wire).ok());
  ASSERT_EQ(native_size, reference_wire.size() - kCountHeaderBytes);
  EXPECT_EQ(std::memcmp(wire_native.data(),
                        reference_wire.data() + kCountHeaderBytes,
                        native_size),
            0)
      << algorithm << ": generated payload differs from interpreter";

  dlclose(scalar_handle);
  dlclose(native.handle);
  std::remove(scalar_so.c_str());
}

}  // namespace
}  // namespace hipress::compll
