// Model profiles must reproduce Table 6's statistics.
#include <gtest/gtest.h>

#include "src/models/model_profile.h"

namespace hipress {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

struct TableSixRow {
  const char* name;
  double total_mb;
  double max_mb;
  size_t gradients;
};

class TableSixTest : public ::testing::TestWithParam<TableSixRow> {};

TEST_P(TableSixTest, MatchesPaperStatistics) {
  const TableSixRow& row = GetParam();
  auto profile = GetModelProfile(row.name);
  ASSERT_TRUE(profile.ok()) << profile.status();
  EXPECT_EQ(profile->num_gradients(), row.gradients);
  EXPECT_NEAR(static_cast<double>(profile->total_bytes()) / kMB,
              row.total_mb, row.total_mb * 0.002)
      << row.name;
  EXPECT_NEAR(static_cast<double>(profile->max_gradient_bytes()) / kMB,
              row.max_mb, row.max_mb * 0.01)
      << row.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, TableSixTest,
    ::testing::Values(TableSixRow{"vgg19", 548.05, 392.0, 38},
                      TableSixRow{"resnet50", 97.46, 9.0, 155},
                      TableSixRow{"ugatit", 2558.75, 1024.0, 148},
                      TableSixRow{"ugatit-light", 511.25, 128.0, 148},
                      TableSixRow{"bert-base", 420.02, 89.42, 207},
                      TableSixRow{"bert-large", 1282.60, 119.23, 399},
                      TableSixRow{"lstm", 327.97, 190.42, 10},
                      TableSixRow{"transformer", 234.08, 65.84, 185}));

TEST(ModelProfileTest, UnknownModelIsNotFound) {
  EXPECT_FALSE(GetModelProfile("alexnet").ok());
}

TEST(ModelProfileTest, AllNamesResolve) {
  for (const std::string& name : ModelProfileNames()) {
    EXPECT_TRUE(GetModelProfile(name).ok()) << name;
  }
}

TEST(ModelProfileTest, Vgg19HasTheFamous392MbGradient) {
  auto profile = GetModelProfile("vgg19");
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->max_gradient_bytes(), 102760448ull * 4);
}

TEST(ModelProfileTest, BertBaseSmallGradientFractionMatchesSection63) {
  // Section 6.3: 62.7% of Bert-base gradients are below 16 KB.
  auto profile = GetModelProfile("bert-base");
  ASSERT_TRUE(profile.ok());
  size_t small = 0;
  for (uint64_t bytes : profile->gradient_bytes) {
    if (bytes < 16 * 1024) {
      ++small;
    }
  }
  const double fraction =
      static_cast<double>(small) / profile->num_gradients();
  EXPECT_NEAR(fraction, 0.627, 0.05);
}

TEST(ModelProfileTest, GradientReadyOffsetsAreMonotone) {
  auto profile = GetModelProfile("bert-large");
  ASSERT_TRUE(profile.ok());
  SimTime previous = 0;
  for (size_t i = 0; i < profile->num_gradients(); ++i) {
    const SimTime ready = profile->GradientReadyOffset(i, 1.0);
    EXPECT_GT(ready, previous);
    previous = ready;
  }
  // The last gradient lands at the end of backward.
  EXPECT_NEAR(
      static_cast<double>(
          profile->GradientReadyOffset(profile->num_gradients() - 1, 1.0)),
      static_cast<double>(profile->backward_time_v100),
      static_cast<double>(kMillisecond));
}

TEST(ModelProfileTest, ComputeScaleStretchesReadyTimes) {
  auto profile = GetModelProfile("vgg19");
  ASSERT_TRUE(profile.ok());
  const SimTime fast = profile->GradientReadyOffset(5, 1.0);
  const SimTime slow = profile->GradientReadyOffset(5, 0.5);
  EXPECT_NEAR(static_cast<double>(slow), 2.0 * static_cast<double>(fast),
              1.0);
}

TEST(ModelProfileTest, ProfilesAreDeterministic) {
  auto a = GetModelProfile("transformer");
  auto b = GetModelProfile("transformer");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->gradient_bytes, b->gradient_bytes);
}

}  // namespace
}  // namespace hipress
