#include <gtest/gtest.h>

#include <vector>

#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace hipress {
namespace {

NetworkConfig FastConfig() {
  NetworkConfig config;
  config.link_bandwidth = Bandwidth::Gbps(80.0);  // 10 GB/s
  config.latency = FromMicros(10.0);
  config.per_message_overhead = FromMicros(2.0);
  return config;
}

TEST(NetworkTest, SingleTransferTiming) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  SimTime delivered_at = -1;
  NetMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 10'000'000;  // 1 ms at 10 GB/s
  net.Send(msg, [&](const NetMessage&) { delivered_at = sim.now(); });
  sim.Run();
  // overhead (2us) + serialize (1ms) + latency (10us).
  EXPECT_EQ(delivered_at, FromMicros(2) + FromMillis(1) + FromMicros(10));
  EXPECT_EQ(net.tx_bytes(0), 10'000'000u);
  EXPECT_EQ(net.rx_bytes(1), 10'000'000u);
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST(NetworkTest, UplinkSerializesTransfersFromSameSource) {
  Simulator sim;
  Network net(&sim, 3, FastConfig());
  std::vector<SimTime> delivered;
  for (int dst = 1; dst <= 2; ++dst) {
    NetMessage msg;
    msg.src = 0;
    msg.dst = dst;
    msg.bytes = 10'000'000;
    net.Send(msg, [&](const NetMessage&) { delivered.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(delivered.size(), 2u);
  // The second transfer waits for the first to finish serializing.
  EXPECT_GE(delivered[1] - delivered[0], FromMillis(1));
}

TEST(NetworkTest, DisjointLinksRunInParallel) {
  Simulator sim;
  Network net(&sim, 4, FastConfig());
  std::vector<SimTime> delivered;
  // 0->1 and 2->3 share no endpoints.
  for (const auto& [src, dst] : std::vector<std::pair<int, int>>{{0, 1},
                                                                 {2, 3}}) {
    NetMessage msg;
    msg.src = src;
    msg.dst = dst;
    msg.bytes = 10'000'000;
    net.Send(msg, [&](const NetMessage&) { delivered.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], delivered[1]);
}

TEST(NetworkTest, DownlinkContentionSerializesIncast) {
  Simulator sim;
  Network net(&sim, 3, FastConfig());
  std::vector<SimTime> delivered;
  // 0->2 and 1->2 share the receiver's downlink.
  for (int src = 0; src <= 1; ++src) {
    NetMessage msg;
    msg.src = src;
    msg.dst = 2;
    msg.bytes = 10'000'000;
    net.Send(msg, [&](const NetMessage&) { delivered.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_GE(delivered[1] - delivered[0], FromMillis(1));
}

TEST(NetworkTest, FullDuplexOppositeDirectionsOverlap) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  std::vector<SimTime> delivered;
  for (const auto& [src, dst] : std::vector<std::pair<int, int>>{{0, 1},
                                                                 {1, 0}}) {
    NetMessage msg;
    msg.src = src;
    msg.dst = dst;
    msg.bytes = 10'000'000;
    net.Send(msg, [&](const NetMessage&) { delivered.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], delivered[1]);
}

TEST(NetworkTest, UncontendedSendTimeMatchesObserved) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  SimTime delivered_at = -1;
  NetMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 123456;
  net.Send(msg, [&](const NetMessage&) { delivered_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(delivered_at, net.UncontendedSendTime(123456));
}

TEST(NetworkTest, PayloadPointerTravelsWithMessage) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  auto payload = std::make_shared<int>(99);
  NetMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 100;
  msg.payload = payload;
  int received = 0;
  net.Send(msg, [&](const NetMessage& delivered) {
    received = *std::static_pointer_cast<int>(delivered.payload);
  });
  sim.Run();
  EXPECT_EQ(received, 99);
}

TEST(NetworkTest, UplinkBusyAccountsSerialization) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  NetMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 10'000'000;
  net.Send(msg, [](const NetMessage&) {});
  sim.Run();
  EXPECT_EQ(net.uplink_busy(0), FromMillis(1));
  EXPECT_EQ(net.uplink_busy(1), 0);
}

TEST(NetworkTest, BandwidthJitterSlowsTransfersDeterministically) {
  NetworkConfig config = FastConfig();
  config.bandwidth_jitter = 0.5;
  auto run = [&] {
    Simulator sim;
    Network net(&sim, 2, config);
    SimTime delivered = 0;
    for (int i = 0; i < 8; ++i) {
      NetMessage msg;
      msg.src = 0;
      msg.dst = 1;
      msg.bytes = 10'000'000;
      net.Send(msg, [&](const NetMessage&) { delivered = sim.now(); });
    }
    sim.Run();
    return delivered;
  };
  const SimTime jittered = run();
  config.bandwidth_jitter = 0.0;
  Simulator sim;
  Network net(&sim, 2, config);
  SimTime clean = 0;
  for (int i = 0; i < 8; ++i) {
    NetMessage msg;
    msg.src = 0;
    msg.dst = 1;
    msg.bytes = 10'000'000;
    net.Send(msg, [&](const NetMessage&) { clean = sim.now(); });
  }
  sim.Run();
  // Jitter only slows (factor in [1, 1.5]) and is deterministic.
  EXPECT_GT(jittered, clean);
  EXPECT_LT(jittered, clean * 3 / 2 + FromMillis(1));
  config.bandwidth_jitter = 0.5;  // run() captures config by reference
  EXPECT_EQ(run(), jittered);
}

NetworkConfig FatTreeConfig(double oversubscription, int hosts_per_tor) {
  NetworkConfig config = FastConfig();
  config.topology.kind = TopologyKind::kFatTree;
  config.topology.oversubscription = oversubscription;
  config.topology.hosts_per_tor = hosts_per_tor;
  return config;
}

SimTime SendAndMeasure(Network* net, Simulator* sim, int src, int dst,
                       uint64_t bytes, uint64_t tag = 0) {
  SimTime delivered_at = -1;
  NetMessage msg;
  msg.src = src;
  msg.dst = dst;
  msg.bytes = bytes;
  msg.tag = tag;
  net->Send(msg, [&, sim](const NetMessage&) { delivered_at = sim->now(); });
  sim->Run();
  return delivered_at;
}

TEST(FatTreeTest, SameRackMatchesFlatTiming) {
  Simulator sim;
  Network net(&sim, 4, FatTreeConfig(1.0, 2));  // racks {0,1} and {2,3}
  const SimTime delivered = SendAndMeasure(&net, &sim, 0, 1, 10'000'000);
  // Rack-local traffic short-cuts through the ToR: identical to flat.
  EXPECT_EQ(delivered, FromMicros(2) + FromMillis(1) + FromMicros(10));
}

TEST(FatTreeTest, CrossRackAddsTorHopLatency) {
  NetworkConfig config = FatTreeConfig(1.0, 2);
  Simulator sim;
  Network net(&sim, 4, config);
  const SimTime delivered = SendAndMeasure(&net, &sim, 0, 2, 10'000'000);
  // Non-oversubscribed fabric forwards cut-through at full rate, so the
  // route only adds the two ToR hop latencies.
  EXPECT_EQ(delivered, FromMicros(2) + FromMillis(1) + FromMicros(10) +
                           2 * config.topology.tor_hop_latency);
}

TEST(FatTreeTest, OversubscribedFabricBoundsSingleFlow) {
  // oversubscription 4 over 2 hosts/rack: the ToR uplink runs at half the
  // NIC rate, so even an uncontended cross-rack flow serializes twice as
  // long — and UncontendedSendTime (what SeCoPa and the adaptive
  // controller price against) must predict exactly that.
  Simulator sim;
  Network net(&sim, 4, FatTreeConfig(4.0, 2));
  const SimTime delivered = SendAndMeasure(&net, &sim, 0, 2, 10'000'000);
  EXPECT_EQ(delivered, net.UncontendedSendTime(10'000'000));
  EXPECT_GE(delivered, FromMicros(2) + 2 * FromMillis(1));
}

TEST(FatTreeTest, SharedTorUplinkSerializesCrossRackFlows) {
  Simulator sim;
  Network net(&sim, 4, FatTreeConfig(2.0, 2));
  std::vector<SimTime> delivered;
  // 0->2 and 1->3: disjoint NICs, but both cross rack 0's ToR uplink.
  for (const auto& [src, dst] :
       std::vector<std::pair<int, int>>{{0, 2}, {1, 3}}) {
    NetMessage msg;
    msg.src = src;
    msg.dst = dst;
    msg.bytes = 10'000'000;
    net.Send(msg, [&](const NetMessage&) { delivered.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(delivered.size(), 2u);
  // The second flow queues behind the first on the shared fabric link.
  EXPECT_GE(delivered[1] - delivered[0], FromMillis(1));
}

TEST(NetworkTest, DownlinkBusyAccountsReceiveSide) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  NetMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 10'000'000;
  net.Send(msg, [](const NetMessage&) {});
  sim.Run();
  EXPECT_EQ(net.downlink_busy(1), FromMillis(1));
  EXPECT_EQ(net.downlink_busy(0), 0);
}

TEST(NetworkTest, JitterStreamsIndependentAcrossSenders) {
  // (src, dst, tag) and a per-sender sequence feed the jitter hash, so one
  // flow's traffic cannot shift another flow's draws — the aliasing a
  // single counter-hashed stream had.
  NetworkConfig config = FastConfig();
  config.bandwidth_jitter = 0.5;
  SimTime alone;
  {
    Simulator sim;
    Network net(&sim, 4, config);
    alone = SendAndMeasure(&net, &sim, 0, 1, 10'000'000);
  }
  {
    Simulator sim;
    Network net(&sim, 4, config);
    // Interleave unrelated traffic first; 0->1 must draw the same jitter.
    NetMessage other;
    other.src = 2;
    other.dst = 3;
    other.bytes = 10'000'000;
    net.Send(other, [](const NetMessage&) {});
    EXPECT_EQ(SendAndMeasure(&net, &sim, 0, 1, 10'000'000), alone);
  }
}

TEST(NetworkTest, JitterMixesMessageTag) {
  NetworkConfig config = FastConfig();
  config.bandwidth_jitter = 0.5;
  auto timed = [&](uint64_t tag) {
    Simulator sim;
    Network net(&sim, 2, config);
    return SendAndMeasure(&net, &sim, 0, 1, 10'000'000, tag);
  };
  // Different tags draw from different stream positions (deterministic,
  // fixed seed), while the same tag replays identically.
  EXPECT_NE(timed(7), timed(8));
  EXPECT_EQ(timed(7), timed(7));
}

using NetworkDeathTest = ::testing::Test;

TEST(NetworkDeathTest, SendChecksEndpointValidity) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  auto send = [&](int src, int dst) {
    NetMessage msg;
    msg.src = src;
    msg.dst = dst;
    msg.bytes = 1;
    net.Send(msg, [](const NetMessage&) {});
  };
  EXPECT_DEATH(send(-1, 1), "Check failed");   // negative source
  EXPECT_DEATH(send(0, 2), "Check failed");    // destination out of range
  EXPECT_DEATH(send(2, 1), "Check failed");    // source out of range
  EXPECT_DEATH(send(1, 1), "Check failed");    // self-send
  send(0, 1);  // valid endpoints still accepted
  sim.Run();
  EXPECT_EQ(net.messages_delivered(), 1u);
}

}  // namespace
}  // namespace hipress
