#include <gtest/gtest.h>

#include <vector>

#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace hipress {
namespace {

NetworkConfig FastConfig() {
  NetworkConfig config;
  config.link_bandwidth = Bandwidth::Gbps(80.0);  // 10 GB/s
  config.latency = FromMicros(10.0);
  config.per_message_overhead = FromMicros(2.0);
  return config;
}

TEST(NetworkTest, SingleTransferTiming) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  SimTime delivered_at = -1;
  NetMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 10'000'000;  // 1 ms at 10 GB/s
  net.Send(msg, [&](const NetMessage&) { delivered_at = sim.now(); });
  sim.Run();
  // overhead (2us) + serialize (1ms) + latency (10us).
  EXPECT_EQ(delivered_at, FromMicros(2) + FromMillis(1) + FromMicros(10));
  EXPECT_EQ(net.tx_bytes(0), 10'000'000u);
  EXPECT_EQ(net.rx_bytes(1), 10'000'000u);
  EXPECT_EQ(net.messages_delivered(), 1u);
}

TEST(NetworkTest, UplinkSerializesTransfersFromSameSource) {
  Simulator sim;
  Network net(&sim, 3, FastConfig());
  std::vector<SimTime> delivered;
  for (int dst = 1; dst <= 2; ++dst) {
    NetMessage msg;
    msg.src = 0;
    msg.dst = dst;
    msg.bytes = 10'000'000;
    net.Send(msg, [&](const NetMessage&) { delivered.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(delivered.size(), 2u);
  // The second transfer waits for the first to finish serializing.
  EXPECT_GE(delivered[1] - delivered[0], FromMillis(1));
}

TEST(NetworkTest, DisjointLinksRunInParallel) {
  Simulator sim;
  Network net(&sim, 4, FastConfig());
  std::vector<SimTime> delivered;
  // 0->1 and 2->3 share no endpoints.
  for (const auto& [src, dst] : std::vector<std::pair<int, int>>{{0, 1},
                                                                 {2, 3}}) {
    NetMessage msg;
    msg.src = src;
    msg.dst = dst;
    msg.bytes = 10'000'000;
    net.Send(msg, [&](const NetMessage&) { delivered.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], delivered[1]);
}

TEST(NetworkTest, DownlinkContentionSerializesIncast) {
  Simulator sim;
  Network net(&sim, 3, FastConfig());
  std::vector<SimTime> delivered;
  // 0->2 and 1->2 share the receiver's downlink.
  for (int src = 0; src <= 1; ++src) {
    NetMessage msg;
    msg.src = src;
    msg.dst = 2;
    msg.bytes = 10'000'000;
    net.Send(msg, [&](const NetMessage&) { delivered.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_GE(delivered[1] - delivered[0], FromMillis(1));
}

TEST(NetworkTest, FullDuplexOppositeDirectionsOverlap) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  std::vector<SimTime> delivered;
  for (const auto& [src, dst] : std::vector<std::pair<int, int>>{{0, 1},
                                                                 {1, 0}}) {
    NetMessage msg;
    msg.src = src;
    msg.dst = dst;
    msg.bytes = 10'000'000;
    net.Send(msg, [&](const NetMessage&) { delivered.push_back(sim.now()); });
  }
  sim.Run();
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], delivered[1]);
}

TEST(NetworkTest, UncontendedSendTimeMatchesObserved) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  SimTime delivered_at = -1;
  NetMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 123456;
  net.Send(msg, [&](const NetMessage&) { delivered_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(delivered_at, net.UncontendedSendTime(123456));
}

TEST(NetworkTest, PayloadPointerTravelsWithMessage) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  auto payload = std::make_shared<int>(99);
  NetMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 100;
  msg.payload = payload;
  int received = 0;
  net.Send(msg, [&](const NetMessage& delivered) {
    received = *std::static_pointer_cast<int>(delivered.payload);
  });
  sim.Run();
  EXPECT_EQ(received, 99);
}

TEST(NetworkTest, UplinkBusyAccountsSerialization) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  NetMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 10'000'000;
  net.Send(msg, [](const NetMessage&) {});
  sim.Run();
  EXPECT_EQ(net.uplink_busy(0), FromMillis(1));
  EXPECT_EQ(net.uplink_busy(1), 0);
}

TEST(NetworkTest, BandwidthJitterSlowsTransfersDeterministically) {
  NetworkConfig config = FastConfig();
  config.bandwidth_jitter = 0.5;
  auto run = [&] {
    Simulator sim;
    Network net(&sim, 2, config);
    SimTime delivered = 0;
    for (int i = 0; i < 8; ++i) {
      NetMessage msg;
      msg.src = 0;
      msg.dst = 1;
      msg.bytes = 10'000'000;
      net.Send(msg, [&](const NetMessage&) { delivered = sim.now(); });
    }
    sim.Run();
    return delivered;
  };
  const SimTime jittered = run();
  config.bandwidth_jitter = 0.0;
  Simulator sim;
  Network net(&sim, 2, config);
  SimTime clean = 0;
  for (int i = 0; i < 8; ++i) {
    NetMessage msg;
    msg.src = 0;
    msg.dst = 1;
    msg.bytes = 10'000'000;
    net.Send(msg, [&](const NetMessage&) { clean = sim.now(); });
  }
  sim.Run();
  // Jitter only slows (factor in [1, 1.5]) and is deterministic.
  EXPECT_GT(jittered, clean);
  EXPECT_LT(jittered, clean * 3 / 2 + FromMillis(1));
  config.bandwidth_jitter = 0.5;  // run() captures config by reference
  EXPECT_EQ(run(), jittered);
}

using NetworkDeathTest = ::testing::Test;

TEST(NetworkDeathTest, SendChecksEndpointValidity) {
  Simulator sim;
  Network net(&sim, 2, FastConfig());
  auto send = [&](int src, int dst) {
    NetMessage msg;
    msg.src = src;
    msg.dst = dst;
    msg.bytes = 1;
    net.Send(msg, [](const NetMessage&) {});
  };
  EXPECT_DEATH(send(-1, 1), "Check failed");   // negative source
  EXPECT_DEATH(send(0, 2), "Check failed");    // destination out of range
  EXPECT_DEATH(send(2, 1), "Check failed");    // source out of range
  EXPECT_DEATH(send(1, 1), "Check failed");    // self-send
  send(0, 1);  // valid endpoints still accepted
  sim.Run();
  EXPECT_EQ(net.messages_delivered(), 1u);
}

}  // namespace
}  // namespace hipress
