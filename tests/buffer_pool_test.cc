#include "src/common/buffer_pool.h"

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/thread_pool.h"
#include "src/minidnn/dist_trainer.h"
#include "src/tensor/tensor.h"

namespace hipress {
namespace {

// --------------------------------------------------------------- buckets

TEST(BufferPoolTest, BucketCapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(BufferPool::BucketCapacity(0), 64u);
  EXPECT_EQ(BufferPool::BucketCapacity(1), 64u);
  EXPECT_EQ(BufferPool::BucketCapacity(64), 64u);
  EXPECT_EQ(BufferPool::BucketCapacity(65), 128u);
  EXPECT_EQ(BufferPool::BucketCapacity(4096), 4096u);
  EXPECT_EQ(BufferPool::BucketCapacity(4097), 8192u);
}

TEST(BufferPoolTest, AcquireReturnsBucketRoundedBlocks) {
  BufferPool pool;
  BufferPool::Block block = pool.Acquire(100);
  ASSERT_TRUE(block);
  EXPECT_EQ(block.capacity, 128u);
  pool.Release(block);
}

TEST(BufferPoolTest, ZeroByteAcquireIsEmptyAndReleaseIsNoop) {
  BufferPool pool;
  BufferPool::Block block = pool.Acquire(0);
  EXPECT_FALSE(block);
  pool.Release(block);  // must not crash
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().misses, 0u);
}

// ------------------------------------------------------------ accounting

TEST(BufferPoolTest, MissThenHitAccounting) {
  BufferPool pool;
  BufferPool::Block a = pool.Acquire(1000);  // cold: miss
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 0u);
  EXPECT_EQ(pool.stats().bytes_in_use, 1024u);

  pool.Release(a);
  EXPECT_EQ(pool.stats().bytes_in_use, 0u);
  EXPECT_EQ(pool.stats().free_bytes, 1024u);
  EXPECT_EQ(pool.stats().free_blocks, 1u);

  // Any request rounding to the same bucket reuses the cached block.
  BufferPool::Block b = pool.Acquire(513);
  EXPECT_EQ(pool.stats().misses, 1u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(b.capacity, 1024u);
  pool.Release(b);

  EXPECT_EQ(pool.stats().peak_bytes, 1024u);
}

TEST(BufferPoolTest, TrimDropsCachedBlocks) {
  BufferPool pool;
  pool.Release(pool.Acquire(256));
  pool.Release(pool.Acquire(512));
  EXPECT_EQ(pool.stats().free_blocks, 2u);
  pool.Trim();
  EXPECT_EQ(pool.stats().free_blocks, 0u);
  EXPECT_EQ(pool.stats().free_bytes, 0u);
  // Next acquire after a trim is a fresh allocation again.
  const uint64_t misses_before = pool.stats().misses;
  pool.Release(pool.Acquire(256));
  EXPECT_EQ(pool.stats().misses, misses_before + 1);
}

TEST(BufferPoolTest, WatermarkTrimReleasesLargestBucketsFirst) {
  BufferPool pool;
  pool.Release(pool.Acquire(256));
  pool.Release(pool.Acquire(1024));
  pool.Release(pool.Acquire(64 << 10));
  ASSERT_EQ(pool.stats().free_bytes, 256u + 1024u + (64u << 10));

  // Trim down to a watermark that only the two small buckets fit under:
  // the peak-size 64 KiB block goes, the warm small blocks stay.
  const size_t released = pool.Trim(/*keep_free_bytes=*/2048);
  EXPECT_EQ(released, 64u << 10);
  EXPECT_EQ(pool.stats().free_bytes, 256u + 1024u);
  EXPECT_EQ(pool.stats().free_blocks, 2u);
  EXPECT_EQ(pool.stats().trims, 1u);
  EXPECT_EQ(pool.stats().trimmed_bytes, 64u << 10);

  // The surviving blocks still serve hits.
  const uint64_t hits_before = pool.stats().hits;
  pool.Release(pool.Acquire(256));
  EXPECT_EQ(pool.stats().hits, hits_before + 1);

  // A trim already under the watermark is a no-op and not counted.
  EXPECT_EQ(pool.Trim(/*keep_free_bytes=*/4096), 0u);
  EXPECT_EQ(pool.stats().trims, 1u);

  // Trim() without a watermark keeps the historical drop-everything
  // behavior.
  EXPECT_EQ(pool.Trim(), 256u + 1024u);
  EXPECT_EQ(pool.stats().free_bytes, 0u);
  EXPECT_EQ(pool.stats().trims, 2u);
}

TEST(BufferPoolTest, PublishesMetricsWhenRegistryWired) {
  MetricsRegistry registry;
  BufferPool pool(&registry);
  BufferPool::Block block = pool.Acquire(100);
  EXPECT_EQ(registry.counter("mem.pool_misses").value(), 1u);
  EXPECT_EQ(registry.gauge("mem.bytes_in_use").value(), 128.0);
  EXPECT_EQ(registry.gauge("mem.peak_bytes").value(), 128.0);
  pool.Release(block);
  pool.Release(pool.Acquire(128));
  EXPECT_EQ(registry.counter("mem.pool_hits").value(), 1u);
  EXPECT_EQ(registry.gauge("mem.bytes_in_use").value(), 0.0);
}

TEST(BufferPoolTest, MissesRecordTraceSpansOnMemAllocLane) {
  BufferPool pool;
  SpanCollector spans;
  pool.set_trace(&spans, /*node=*/3);
  BufferPool::Block block = pool.Acquire(100);  // miss: one span
  pool.Release(block);
  pool.Release(pool.Acquire(100));  // hit: no span
  ASSERT_EQ(spans.size(), 1u);
  const TraceSpan span = spans.spans()[0];
  EXPECT_EQ(span.node, 3);
  EXPECT_EQ(span.lane, kTraceLaneMemAlloc);
  EXPECT_NE(span.name.find("alloc"), std::string::npos);
  pool.set_trace(nullptr);
}

// ---------------------------------------------------------- PooledArray

TEST(PooledArrayTest, ResizeAssignPushBack) {
  BufferPool pool;
  PooledFloats floats(&pool);
  floats.assign(10, 1.5f);
  ASSERT_EQ(floats.size(), 10u);
  EXPECT_EQ(floats[9], 1.5f);
  floats.resize(4);
  EXPECT_EQ(floats.size(), 4u);
  for (int i = 0; i < 100; ++i) {
    floats.push_back(static_cast<float>(i));
  }
  EXPECT_EQ(floats.size(), 104u);
  EXPECT_EQ(floats[4], 0.0f);
  EXPECT_EQ(floats[103], 99.0f);
}

TEST(PooledArrayTest, ClearKeepsCapacityAndBlock) {
  BufferPool pool;
  PooledFloats floats(&pool, 100);
  const size_t cap = floats.capacity();
  const uint64_t misses = pool.stats().misses;
  floats.clear();
  floats.resize(100);
  EXPECT_EQ(floats.capacity(), cap);
  EXPECT_EQ(pool.stats().misses, misses);  // no round-trip through the pool
}

TEST(PooledArrayTest, BlocksRecycleAcrossElementTypes) {
  BufferPool pool;
  {
    PooledFloats floats(&pool, 256);  // 1024 bytes: miss
  }
  EXPECT_EQ(pool.stats().misses, 1u);
  PooledBytes bytes(&pool, 1000);  // same bucket: hit
  EXPECT_EQ(bytes.size(), 1000u);
  EXPECT_EQ(pool.stats().hits, 1u);
  EXPECT_EQ(pool.stats().misses, 1u);
}

TEST(PooledArrayTest, MoveTransfersOwnership) {
  BufferPool pool;
  PooledFloats a(&pool, 8);
  a[0] = 42.0f;
  PooledFloats b = std::move(a);
  EXPECT_EQ(b.size(), 8u);
  EXPECT_EQ(b[0], 42.0f);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): reset state
  EXPECT_EQ(pool.stats().bytes_in_use, BufferPool::BucketCapacity(32));
}

TEST(WorkspaceTest, ZeroedFloatsAreZero) {
  BufferPool pool;
  Workspace ws(&pool);
  {
    PooledFloats scratch = ws.floats(64);
    for (auto& f : scratch) {
      f = 7.0f;  // dirty the block
    }
  }
  PooledFloats zeroed = ws.zeroed_floats(64);
  for (const float f : zeroed) {
    EXPECT_EQ(f, 0.0f);
  }
}

// ------------------------------------------------------------- threading

TEST(BufferPoolTest, CrossThreadRecycleUnderThreadPool) {
  BufferPool pool;
  ThreadPool& workers = ThreadPool::Global();
  const size_t lanes = workers.num_threads();

  // Warm one block per concurrent lane; each task holds at most one block
  // at a time, so the free list never runs dry afterwards.
  {
    std::vector<BufferPool::Block> warm;
    for (size_t i = 0; i < lanes; ++i) {
      warm.push_back(pool.Acquire(4096));
    }
    for (BufferPool::Block& block : warm) {
      pool.Release(block);
    }
  }
  const uint64_t misses_after_warmup = pool.stats().misses;
  EXPECT_EQ(misses_after_warmup, lanes);

  constexpr int kRounds = 200;
  std::vector<std::future<void>> futures;
  for (size_t t = 0; t < lanes; ++t) {
    futures.push_back(workers.Submit([&pool] {
      for (int i = 0; i < kRounds; ++i) {
        BufferPool::Block block = pool.Acquire(4096);
        static_cast<uint8_t*>(block.data)[0] = 1;
        pool.Release(block);
      }
    }));
  }
  for (auto& future : futures) {
    future.wait();
  }

  const BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.misses, misses_after_warmup);  // steady state: all hits
  EXPECT_EQ(stats.hits, lanes * kRounds);
  EXPECT_EQ(stats.bytes_in_use, 0u);
}

// ------------------------------------------------------------- ReadAt

TEST(ByteBufferDeathTest, ReadAtPastEndAborts) {
  // The ThreadPool test above leaves global worker threads running; fork
  // through exec so the death assertion stays reliable.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ByteBuffer buffer(4);
  size_t offset = 2;
  EXPECT_DEATH(buffer.ReadAt<uint32_t>(offset), "overruns buffer");
  size_t far = 100;
  EXPECT_DEATH(buffer.ReadAt<uint8_t>(far), "overruns buffer");
}

// ------------------------------------------------- steady-state invariant

// The tentpole invariant: after one warm-up iteration, a compressed
// multi-node training step performs zero pool misses — every sync-path
// buffer (gradients, codec scratch, wire payloads, dataflow aggregation)
// is recycled. DistTrainer mirrors the global pool's per-step miss delta
// into its registry as "mem.step_pool_misses".
TEST(BufferPoolSteadyStateTest, CompressedTrainingStopsMissingAfterWarmup) {
  DistTrainConfig config;
  config.num_workers = 3;
  config.batch_per_worker = 16;
  config.algorithm = "onebit";
  config.strategy = StrategyKind::kPs;
  config.partitions = 2;
  auto trainer_or = DistTrainer::Create(config);
  ASSERT_TRUE(trainer_or.ok()) << trainer_or.status();
  std::unique_ptr<DistTrainer> trainer = std::move(*trainer_or);

  // Warm-up: the first iteration faults every bucket in.
  ASSERT_TRUE(trainer->Train(1, 1, 1.0).ok());
  EXPECT_GT(trainer->metrics().gauge("mem.pool_misses").value(), 0.0);

  // Steady state: every subsequent step must run entirely from the pool.
  for (int step = 0; step < 5; ++step) {
    ASSERT_TRUE(trainer->Train(1, 1, 1.0).ok());
    EXPECT_EQ(trainer->metrics().gauge("mem.step_pool_misses").value(), 0.0)
        << "pool miss on steady-state step " << step;
  }
}

}  // namespace
}  // namespace hipress
