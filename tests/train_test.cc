// Training-loop simulator: metric sanity and the evaluation section's
// qualitative shapes (compression helps communication-bound models, HiPress
// beats the OSS co-designs, optimizations stack).
#include <gtest/gtest.h>

#include "src/hipress/hipress.h"

namespace hipress {
namespace {

TrainReport MustRun(const std::string& model, const std::string& system,
                    int nodes, const std::string& algorithm = "onebit",
                    bool disable_rdma = false) {
  HiPressOptions options;
  options.model = model;
  options.system = system;
  options.algorithm = algorithm;
  options.cluster = ClusterSpec::Ec2(nodes);
  options.disable_rdma = disable_rdma;
  auto result = RunTrainingSimulation(options);
  EXPECT_TRUE(result.ok()) << result.status();
  return result->report;
}

TEST(TrainerTest, ReportsConsistentMetrics) {
  const TrainReport report = MustRun("resnet50", "ring", 4);
  EXPECT_GT(report.iteration_time, 0);
  EXPECT_GE(report.iteration_time, report.compute_time);
  EXPECT_GT(report.throughput, 0.0);
  EXPECT_GT(report.scaling_efficiency, 0.0);
  EXPECT_LE(report.scaling_efficiency, 1.0);
  EXPECT_GE(report.comm_ratio, 0.0);
  EXPECT_LE(report.comm_ratio, 1.0);
  EXPECT_EQ(report.total_gpus, 32);
  // iteration = compute + visible tail.
  EXPECT_EQ(report.iteration_time, report.compute_time + report.sync_tail);
}

TEST(TrainerTest, DeterministicAcrossRuns) {
  const TrainReport a = MustRun("vgg19", "hipress-ps", 4);
  const TrainReport b = MustRun("vgg19", "hipress-ps", 4);
  EXPECT_EQ(a.iteration_time, b.iteration_time);
  EXPECT_EQ(a.throughput, b.throughput);
}

TEST(TrainerTest, SingleNodeHasNegligibleCommunicationTail) {
  // One node: no network traffic; only the sync-launch bookkeeping after
  // the last gradient remains (sub-millisecond).
  const TrainReport report = MustRun("resnet50", "hipress-ring", 1);
  EXPECT_LT(report.sync_tail, FromMillis(1.0));
  EXPECT_GT(report.scaling_efficiency, 0.99);
}

TEST(TrainerShapeTest, HiPressBeatsNonCompressionBaselines) {
  // Communication-heavy VGG19 at 16 nodes: HiPress-PS with onebit must beat
  // both BytePS and Ring (Figure 7a's headline).
  const TrainReport byteps = MustRun("vgg19", "byteps", 16, "onebit",
                                     /*disable_rdma=*/true);
  const TrainReport ring = MustRun("vgg19", "ring", 16);
  const TrainReport hipress = MustRun("vgg19", "hipress-ps", 16);
  EXPECT_GT(hipress.throughput, byteps.throughput);
  EXPECT_GT(hipress.throughput, ring.throughput);
}

TEST(TrainerShapeTest, HiPressBeatsOssCompressionBaseline) {
  const TrainReport oss = MustRun("bert-large", "byteps-oss", 16);
  const TrainReport hipress = MustRun("bert-large", "hipress-ps", 16);
  EXPECT_GT(hipress.throughput, oss.throughput);
}

TEST(TrainerShapeTest, OssCompressionBarelyHelpsBytePs) {
  // Table 1 / Section 6.2: BytePS(OSS-onebit) brings only limited
  // improvement over BytePS (at worst it even regresses, as on the local
  // cluster where it ran 8.5% slower than Ring) — nowhere near the 32x
  // wire-volume reduction would suggest.
  const TrainReport byteps = MustRun("bert-large", "byteps", 16, "onebit",
                                     /*disable_rdma=*/true);
  const TrainReport oss = MustRun("bert-large", "byteps-oss", 16, "onebit",
                                  /*disable_rdma=*/true);
  EXPECT_LT(oss.throughput, byteps.throughput * 1.35);
  EXPECT_GT(oss.throughput, byteps.throughput * 0.6);
}

TEST(TrainerShapeTest, ScalingEfficiencyDropsWithClusterSize) {
  const TrainReport small = MustRun("transformer", "ring", 2);
  const TrainReport large = MustRun("transformer", "ring", 16);
  EXPECT_GT(small.scaling_efficiency, large.scaling_efficiency);
}

TEST(TrainerShapeTest, HiPressAdvantageGrowsWithClusterSize) {
  // Section 6.2: "the improvements of HiPress become larger when the number
  // of GPUs increases".
  auto gain = [&](int nodes) {
    const TrainReport base = MustRun("bert-large", "ring", nodes);
    const TrainReport hipress = MustRun("bert-large", "hipress-ps", nodes);
    return hipress.throughput / base.throughput;
  };
  EXPECT_GT(gain(16), gain(2));
}

TEST(TrainerShapeTest, ComputeBoundModelGainsLess) {
  // ResNet50 is computation-intensive: compression gains exist but are far
  // smaller than VGG19's (Figure 7b vs 7a).
  auto gain = [&](const std::string& model) {
    const TrainReport base = MustRun(model, "ring", 16);
    const TrainReport hipress = MustRun(model, "hipress-ring", 16, "dgc");
    return hipress.throughput / base.throughput;
  };
  EXPECT_GT(gain("vgg19"), gain("resnet50"));
}

TEST(TrainerShapeTest, LowerBandwidthIncreasesCompressionBenefit) {
  auto gain = [&](bool slow) {
    HiPressOptions options;
    options.model = "bert-base";
    options.cluster = ClusterSpec::Ec2(16);
    if (slow) {
      options.cluster.net.link_bandwidth = Bandwidth::Gbps(25.0 * 0.75);
    }
    options.system = "ring";
    auto base = RunTrainingSimulation(options);
    options.system = "hipress-ps";
    auto hipress = RunTrainingSimulation(options);
    EXPECT_TRUE(base.ok() && hipress.ok());
    return hipress->report.throughput / base->report.throughput;
  };
  EXPECT_GT(gain(true), gain(false));
}

TEST(TrainerTest, TimelineRecordsComputeBlocks) {
  HiPressOptions options;
  options.model = "bert-large";
  options.system = "hipress-ps";
  options.cluster = ClusterSpec::Ec2(4);
  options.train.record_timeline = true;
  auto result = RunTrainingSimulation(options);
  ASSERT_TRUE(result.ok()) << result.status();
  bool saw_compute = false;
  bool saw_codec = false;
  for (const GpuInterval& interval : result->report.timeline) {
    if (interval.kind == GpuTaskKind::kCompute) {
      saw_compute = true;
    }
    if (interval.kind == GpuTaskKind::kEncode ||
        interval.kind == GpuTaskKind::kDecode) {
      saw_codec = true;
    }
  }
  EXPECT_TRUE(saw_compute);
  EXPECT_TRUE(saw_codec);
}

TEST(SspTest, StalenessHidesSyncTailForCommBoundModel) {
  // SSP overlaps iteration k's sync with iteration k+1's compute, so a
  // communication-bound model gains throughput; the gain is bounded by the
  // compute-only rate.
  HiPressOptions options;
  options.model = "bert-large";
  options.system = "ring";
  options.cluster = ClusterSpec::Ec2(16);
  auto bsp = RunTrainingSimulation(options);
  ASSERT_TRUE(bsp.ok());
  options.train.staleness = 1;
  options.train.iterations = 6;
  auto ssp = RunTrainingSimulation(options);
  ASSERT_TRUE(ssp.ok());
  EXPECT_GT(ssp->report.throughput, bsp->report.throughput);
  EXPECT_LE(ssp->report.scaling_efficiency, 1.0 + 1e-9);
}

TEST(SspTest, StalenessIsNoOpWhenSyncAlreadyHidden) {
  // HiPress already hides the tail; SSP cannot make iterations faster than
  // compute.
  HiPressOptions options;
  options.model = "bert-large";
  options.system = "hipress-ps";
  options.cluster = ClusterSpec::Ec2(16);
  auto bsp = RunTrainingSimulation(options);
  ASSERT_TRUE(bsp.ok());
  options.train.staleness = 2;
  options.train.iterations = 6;
  auto ssp = RunTrainingSimulation(options);
  ASSERT_TRUE(ssp.ok());
  EXPECT_NEAR(ssp->report.iteration_time,
              static_cast<double>(bsp->report.compute_time),
              static_cast<double>(bsp->report.compute_time) * 0.05);
}

TEST(StragglerTest, SlowNodeStretchesBspIterations) {
  HiPressOptions options;
  options.model = "resnet50";
  options.system = "hipress-ring";
  options.cluster = ClusterSpec::Ec2(8);
  auto clean = RunTrainingSimulation(options);
  ASSERT_TRUE(clean.ok());
  options.train.straggler_node = 3;
  options.train.straggler_factor = 1.5;
  auto slow = RunTrainingSimulation(options);
  ASSERT_TRUE(slow.ok());
  // BSP: every aggregation waits for the straggler; the iteration stretches
  // by roughly the straggler factor.
  EXPECT_GE(slow->report.iteration_time,
            static_cast<SimTime>(clean->report.iteration_time * 1.45));
  EXPECT_LE(slow->report.iteration_time,
            static_cast<SimTime>(clean->report.iteration_time * 1.8));
}

TEST(StragglerTest, StragglerKnobsSurfaceInMetrics) {
  // The straggler knobs must show up both in the report and in the
  // observability layer: the iteration histogram/gauge stretch by roughly
  // the straggler factor relative to a clean run.
  HiPressOptions options;
  options.model = "resnet50";
  options.system = "hipress-ring";
  options.cluster = ClusterSpec::Ec2(8);
  auto clean = RunTrainingSimulation(options);
  ASSERT_TRUE(clean.ok());
  options.train.straggler_node = 2;
  options.train.straggler_factor = 2.0;
  auto slow = RunTrainingSimulation(options);
  ASSERT_TRUE(slow.ok());

  // Report-level stretch: ~2x, bounded loosely above (sync overlaps).
  EXPECT_GE(slow->report.iteration_time,
            static_cast<SimTime>(clean->report.iteration_time * 1.9));
  EXPECT_LE(slow->report.iteration_time,
            static_cast<SimTime>(clean->report.iteration_time * 2.4));

  // Metrics-level: both runs' registries carry per-iteration histograms
  // and the last-iteration gauge; they must reflect the same stretch.
  MetricsRegistry& clean_metrics = *clean->report.metrics;
  MetricsRegistry& slow_metrics = *slow->report.metrics;
  const Histogram& clean_iter = clean_metrics.histogram("train.iteration_ms");
  const Histogram& slow_iter = slow_metrics.histogram("train.iteration_ms");
  ASSERT_GT(clean_iter.count(), 0u);
  ASSERT_EQ(clean_iter.count(), slow_iter.count());
  EXPECT_GE(slow_iter.max(), clean_iter.max() * 1.9);
  EXPECT_NEAR(slow_metrics.gauge("train.iteration_ms_last").value(),
              ToMillis(slow->report.iteration_time), 1e-6);
  // The straggler's slow compute also lengthens the sync tail histogram.
  EXPECT_GE(slow_metrics.histogram("train.sync_tail_ms").max(),
            clean_metrics.histogram("train.sync_tail_ms").max());
}

TEST(JitterTest, SeCoPaPlansStillHelpUnderBandwidthVariance) {
  // The paper's future-work concern: profiling-based plans under network
  // dynamics. With 30% jitter the plans are computed from clean profiles
  // yet HiPress keeps (nearly all of) its advantage.
  HiPressOptions options;
  options.model = "bert-large";
  options.cluster = ClusterSpec::Ec2(16);
  options.cluster.net.bandwidth_jitter = 0.3;
  options.system = "ring";
  auto base = RunTrainingSimulation(options);
  options.system = "hipress-ps";
  auto hipress = RunTrainingSimulation(options);
  ASSERT_TRUE(base.ok() && hipress.ok());
  EXPECT_GT(hipress->report.throughput, base->report.throughput * 1.4);
}

TEST(PresetsTest, UnknownSystemIsRejected) {
  auto config = MakeSystemConfig("magic", ClusterSpec::Ec2(4));
  EXPECT_FALSE(config.ok());
}

TEST(PresetsTest, AllPresetsProduceValidConfigs) {
  for (const char* system : {"byteps", "ring", "byteps-oss", "byteps-cpu",
                             "ring-oss", "hipress-ps", "hipress-ring", "hipress-tree"}) {
    auto config = MakeSystemConfig(system, ClusterSpec::Local(8), "onebit");
    ASSERT_TRUE(config.ok()) << system;
    EXPECT_EQ(config->num_nodes, 8);
  }
}

TEST(PresetsTest, WithoutRdmaDegradesNetwork) {
  const NetworkConfig rdma = ClusterSpec::Ec2(4).net;
  const NetworkConfig tcp = WithoutRdma(rdma);
  EXPECT_LT(tcp.link_bandwidth.bits_per_second,
            rdma.link_bandwidth.bits_per_second);
  EXPECT_GT(tcp.latency, rdma.latency);
  EXPECT_GT(tcp.per_message_overhead, rdma.per_message_overhead);
}

TEST(PresetsTest, ClusterSpecsMatchPaperTestbeds) {
  const ClusterSpec ec2 = ClusterSpec::Ec2(16);
  EXPECT_EQ(ec2.gpus_per_node, 8);
  EXPECT_EQ(ec2.platform, GpuPlatform::kV100);
  const ClusterSpec local = ClusterSpec::Local(16);
  EXPECT_EQ(local.gpus_per_node, 2);
  EXPECT_EQ(local.platform, GpuPlatform::k1080Ti);
  EXPECT_LT(local.net.link_bandwidth.bits_per_second,
            ec2.net.link_bandwidth.bits_per_second);
}

}  // namespace
}  // namespace hipress
