#include "src/common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

namespace hipress {
namespace {

// ------------------------------------------------- mini JSON parser
// Just enough of a recursive-descent JSON parser to round-trip what
// MetricsRegistry::ToJson emits: objects, arrays, numbers, strings.
struct JsonValue;
using JsonObject = std::map<std::string, std::shared_ptr<JsonValue>>;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;

struct JsonValue {
  std::variant<double, std::string, JsonObject, JsonArray> value;

  double number() const { return std::get<double>(value); }
  const JsonObject& object() const { return std::get<JsonObject>(value); }
  const JsonArray& array() const { return std::get<JsonArray>(value); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::shared_ptr<JsonValue> Parse() {
    auto value = ParseValue();
    SkipSpace();
    EXPECT_EQ(pos_, text_.size()) << "trailing garbage";
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipSpace();
    EXPECT_LT(pos_, text_.size()) << "unexpected end of JSON";
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  void Expect(char c) {
    EXPECT_EQ(Peek(), c) << "at offset " << pos_;
    ++pos_;
  }

  std::shared_ptr<JsonValue> ParseValue() {
    const char c = Peek();
    auto value = std::make_shared<JsonValue>();
    if (c == '{') {
      value->value = ParseObject();
    } else if (c == '[') {
      value->value = ParseArray();
    } else if (c == '"') {
      value->value = ParseString();
    } else {
      value->value = ParseNumber();
    }
    return value;
  }

  JsonObject ParseObject() {
    JsonObject object;
    Expect('{');
    if (Peek() == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      const std::string key = ParseString();
      Expect(':');
      object[key] = ParseValue();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return object;
    }
  }

  JsonArray ParseArray() {
    JsonArray array;
    Expect('[');
    if (Peek() == ']') {
      ++pos_;
      return array;
    }
    for (;;) {
      array.push_back(ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return array;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char escape = text_[pos_++];
        switch (escape) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            // Only \u00XX (control chars) are emitted by the serializer.
            EXPECT_LE(pos_ + 4, text_.size());
            c = static_cast<char>(
                std::stoi(text_.substr(pos_ + 2, 2), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: c = escape;
        }
      }
      out.push_back(c);
    }
    Expect('"');
    return out;
  }

  double ParseNumber() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    EXPECT_GT(pos_, start) << "expected a number";
    return std::stod(text_.substr(start, pos_ - start));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ----------------------------------------------------------- counters etc.

TEST(MetricsTest, CounterIncrements) {
  MetricsRegistry registry;
  registry.counter("x").Increment();
  registry.counter("x").Increment(41);
  EXPECT_EQ(registry.counter_value("x"), 42u);
  EXPECT_EQ(registry.counter_value("missing"), 0u);
}

TEST(MetricsTest, GaugeLastWriteWins) {
  MetricsRegistry registry;
  registry.gauge("g").Set(1.5);
  registry.gauge("g").Set(-2.25);
  EXPECT_DOUBLE_EQ(registry.gauge_value("g"), -2.25);
}

TEST(MetricsTest, RegistrationReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("stable");
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler" + std::to_string(i));
  }
  counter.Increment(7);
  EXPECT_EQ(registry.counter_value("stable"), 7u);
}

TEST(MetricsTest, HistogramBucketsAndStats) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("h", {1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket 0 (le 1)
  histogram.Observe(1.0);    // bucket 0 (inclusive bound)
  histogram.Observe(50.0);   // bucket 2
  histogram.Observe(1e6);    // overflow
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.min(), 0.5);
  EXPECT_DOUBLE_EQ(histogram.max(), 1e6);
  const std::vector<uint64_t> counts = histogram.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);  // overflow
}

TEST(MetricsTest, HistogramFirstRegistrationFixesBounds) {
  MetricsRegistry registry;
  registry.histogram("h", {1.0, 2.0});
  Histogram& again = registry.histogram("h", {99.0});
  EXPECT_EQ(again.bounds().size(), 2u);
}

TEST(MetricsTest, BucketHelpers) {
  const auto exponential = HistogramBuckets::Exponential(1.0, 2.0, 4);
  EXPECT_EQ(exponential, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  const auto linear = HistogramBuckets::Linear(0.0, 5.0, 3);
  EXPECT_EQ(linear, (std::vector<double>{0.0, 5.0, 10.0}));
  EXPECT_EQ(HistogramBuckets::DefaultTime().size(), 20u);
  EXPECT_EQ(HistogramBuckets::DefaultBytes().size(), 22u);
}

TEST(MetricsTest, ConcurrentIncrementsDontLoseCounts) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("c");
  Histogram& histogram = registry.histogram("h");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        counter.Increment();
        histogram.Observe(static_cast<double>(i % 100));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.value(), 40000u);
  EXPECT_EQ(histogram.count(), 40000u);
}

TEST(MetricsTest, ConcurrentWritersAndJsonReaderAreSafe) {
  // Counter/gauge/histogram writers racing a ToJson snapshotter: the TSan
  // CI job runs this to prove the registry's cross-thread contract.
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&registry, t] {
      for (int i = 0; i < 5000; ++i) {
        registry.counter("w" + std::to_string(t)).Increment();
        registry.gauge("g" + std::to_string(t))
            .Set(static_cast<double>(i));
        registry.histogram("h").Observe(static_cast<double>(i % 64));
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      EXPECT_FALSE(registry.ToJson().empty());
    }
  });
  for (auto& writer : writers) {
    writer.join();
  }
  stop.store(true);
  reader.join();
  auto root = JsonParser(registry.ToJson()).Parse();
  const JsonObject& counters = root->object().at("counters")->object();
  EXPECT_DOUBLE_EQ(counters.at("w0")->number(), 5000.0);
  EXPECT_DOUBLE_EQ(counters.at("w2")->number(), 5000.0);
  EXPECT_DOUBLE_EQ(
      root->object().at("histograms")->object().at("h")->object()
          .at("count")->number(),
      15000.0);
}

// -------------------------------------------------------- JSON round-trip

TEST(MetricsTest, JsonRoundTripThroughParser) {
  MetricsRegistry registry;
  registry.counter("engine.send_tasks").Increment(12);
  registry.counter("zeta").Increment(0);
  registry.gauge("train.throughput").Set(1234.5);
  registry.gauge("negative").Set(-0.125);
  Histogram& histogram = registry.histogram("lat_us", {1.0, 10.0});
  histogram.Observe(0.5);
  histogram.Observe(5.0);
  histogram.Observe(99.0);

  const std::string json = registry.ToJson();
  auto root = JsonParser(json).Parse();
  const JsonObject& top = root->object();
  ASSERT_EQ(top.count("counters"), 1u);
  ASSERT_EQ(top.count("gauges"), 1u);
  ASSERT_EQ(top.count("histograms"), 1u);

  const JsonObject& counters = top.at("counters")->object();
  EXPECT_EQ(counters.size(), 2u);
  EXPECT_DOUBLE_EQ(counters.at("engine.send_tasks")->number(), 12.0);
  EXPECT_DOUBLE_EQ(counters.at("zeta")->number(), 0.0);

  const JsonObject& gauges = top.at("gauges")->object();
  EXPECT_DOUBLE_EQ(gauges.at("train.throughput")->number(), 1234.5);
  EXPECT_DOUBLE_EQ(gauges.at("negative")->number(), -0.125);

  const JsonObject& hist = top.at("histograms")->object().at("lat_us")
                               ->object();
  EXPECT_DOUBLE_EQ(hist.at("count")->number(), 3.0);
  EXPECT_DOUBLE_EQ(hist.at("sum")->number(), 104.5);
  EXPECT_DOUBLE_EQ(hist.at("min")->number(), 0.5);
  EXPECT_DOUBLE_EQ(hist.at("max")->number(), 99.0);
  EXPECT_DOUBLE_EQ(hist.at("overflow")->number(), 1.0);
  const JsonArray& buckets = hist.at("buckets")->array();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0]->object().at("le")->number(), 1.0);
  EXPECT_DOUBLE_EQ(buckets[0]->object().at("count")->number(), 1.0);
  EXPECT_DOUBLE_EQ(buckets[1]->object().at("le")->number(), 10.0);
  EXPECT_DOUBLE_EQ(buckets[1]->object().at("count")->number(), 1.0);
}

TEST(MetricsTest, JsonNumbersRoundTripBitExactly) {
  // JsonNumber emits std::to_chars shortest round-trip literals: parsing
  // what ToJson wrote must reproduce the stored double bit-for-bit, with
  // no fixed-precision truncation (0.1, 1/3) and no overflow to inf at
  // the extremes of the double range.
  const double values[] = {0.1,
                           1.0 / 3.0,
                           -0.125,
                           1e300,
                           std::numeric_limits<double>::max(),
                           // Smallest normal; subnormals stay out because
                           // this test's std::stod-based parser reports
                           // ERANGE on them, not because JsonNumber can't
                           // print them.
                           std::numeric_limits<double>::min(),
                           1e-7,
                           123456789.123456789};
  MetricsRegistry registry;
  for (size_t i = 0; i < std::size(values); ++i) {
    registry.gauge("g" + std::to_string(i)).Set(values[i]);
  }
  auto root = JsonParser(registry.ToJson()).Parse();
  const JsonObject& gauges = root->object().at("gauges")->object();
  for (size_t i = 0; i < std::size(values); ++i) {
    const double parsed = gauges.at("g" + std::to_string(i))->number();
    EXPECT_EQ(std::memcmp(&parsed, &values[i], sizeof(double)), 0)
        << "gauge g" << i << " drifted: " << parsed << " vs " << values[i];
  }
}

TEST(MetricsTest, JsonEscapesMetricNames) {
  MetricsRegistry registry;
  registry.counter("weird \"name\"\nwith\tescapes\\").Increment(3);
  const std::string json = registry.ToJson();
  auto root = JsonParser(json).Parse();
  const JsonObject& counters = root->object().at("counters")->object();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_DOUBLE_EQ(counters.at("weird \"name\"\nwith\tescapes\\")->number(),
                   3.0);
}

TEST(MetricsTest, JsonClampsNonFiniteGauges) {
  MetricsRegistry registry;
  registry.gauge("inf").Set(std::numeric_limits<double>::infinity());
  registry.gauge("nan").Set(std::nan(""));
  auto root = JsonParser(registry.ToJson()).Parse();
  const JsonObject& gauges = root->object().at("gauges")->object();
  EXPECT_DOUBLE_EQ(gauges.at("inf")->number(), 0.0);
  EXPECT_DOUBLE_EQ(gauges.at("nan")->number(), 0.0);
}

TEST(MetricsTest, NonFiniteGaugesAreCounted) {
  MetricsRegistry registry;
  registry.gauge("bad").Set(std::nan(""));
  registry.gauge("good").Set(1.0);
  auto root = JsonParser(registry.ToJson()).Parse();
  const JsonObject& counters = root->object().at("counters")->object();
  ASSERT_EQ(counters.count("metrics.nonfinite_gauges"), 1u);
  EXPECT_DOUBLE_EQ(counters.at("metrics.nonfinite_gauges")->number(), 1.0);
  EXPECT_EQ(registry.counter_value("metrics.nonfinite_gauges"), 1u);
  // Every dump of a still-broken gauge counts again.
  registry.ToJson();
  EXPECT_EQ(registry.counter_value("metrics.nonfinite_gauges"), 2u);
  // A healthy registry does not grow the synthetic counter.
  MetricsRegistry clean;
  clean.gauge("fine").Set(0.5);
  auto clean_root = JsonParser(clean.ToJson()).Parse();
  EXPECT_EQ(clean_root->object().at("counters")->object().count(
                "metrics.nonfinite_gauges"),
            0u);
}

TEST(MetricsTest, HistogramQuantilesInterpolate) {
  Histogram histogram(HistogramBuckets::Linear(10.0, 10.0, 10));
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);  // empty
  for (int i = 1; i <= 100; ++i) {
    histogram.Observe(static_cast<double>(i));
  }
  // Uniform 1..100: interpolated quantiles land within one bucket width.
  EXPECT_NEAR(histogram.Quantile(0.5), 50.0, 10.0);
  EXPECT_NEAR(histogram.Quantile(0.95), 95.0, 10.0);
  EXPECT_NEAR(histogram.Quantile(0.99), 99.0, 10.0);
  // Extremes clamp to the observed range.
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 100.0);
  EXPECT_GE(histogram.Quantile(0.0), 1.0);
}

TEST(MetricsTest, HistogramQuantileSingleObservation) {
  Histogram histogram({10.0});
  histogram.Observe(5.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 5.0);
}

TEST(MetricsTest, HistogramQuantileBucketBoundaries) {
  // 10 samples in (.., 10], 10 in (10, 20]: the median rank lands exactly
  // on the shared bucket edge and must interpolate to that bound, with
  // higher q continuing smoothly into the next bucket.
  Histogram histogram({10.0, 20.0, 30.0});
  for (int i = 0; i < 10; ++i) {
    histogram.Observe(5.0);
    histogram.Observe(15.0);
  }
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.75), 12.5);
  // The ends clamp to the observed extremes, not the bucket bounds.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 15.0);
  // Out-of-range q clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(histogram.Quantile(-1.0), 5.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(2.0), 15.0);
}

TEST(MetricsTest, JsonHistogramCarriesQuantiles) {
  MetricsRegistry registry;
  Histogram& histogram = registry.histogram("lat", {1.0, 10.0, 100.0});
  for (int i = 1; i <= 99; ++i) {
    histogram.Observe(static_cast<double>(i));
  }
  auto root = JsonParser(registry.ToJson()).Parse();
  const JsonObject& hist =
      root->object().at("histograms")->object().at("lat")->object();
  ASSERT_EQ(hist.count("p50"), 1u);
  ASSERT_EQ(hist.count("p95"), 1u);
  ASSERT_EQ(hist.count("p99"), 1u);
  EXPECT_LE(hist.at("p50")->number(), hist.at("p95")->number());
  EXPECT_LE(hist.at("p95")->number(), hist.at("p99")->number());
  EXPECT_LE(hist.at("p99")->number(), hist.at("max")->number());
}

TEST(MetricsTest, WriteJsonRoundTripsThroughFile) {
  MetricsRegistry registry;
  registry.counter("written").Increment(5);
  const std::string path =
      testing::TempDir() + "/metrics_test_write.json";
  ASSERT_TRUE(registry.WriteJson(path).ok());
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  std::string contents;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(file);
  std::remove(path.c_str());
  auto root = JsonParser(contents).Parse();
  EXPECT_DOUBLE_EQ(
      root->object().at("counters")->object().at("written")->number(), 5.0);
}

TEST(MetricsTest, WriteJsonRejectsBadPath) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.WriteJson("/nonexistent-dir/x/y.json").ok());
}

TEST(MetricsTest, DefaultRegistryIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

// ----------------------------------------------------------------- spans

TEST(SpanCollectorTest, RecordsInInsertionOrder) {
  SpanCollector collector;
  collector.Add(0, kTraceLaneNetUplink, "tx a", 10, 20);
  collector.Add(3, kTraceLaneCoordinator, "round", 5, 40);
  ASSERT_EQ(collector.size(), 2u);
  const std::vector<TraceSpan> spans = collector.spans();
  EXPECT_EQ(spans[0].node, 0);
  EXPECT_EQ(spans[0].lane, kTraceLaneNetUplink);
  EXPECT_EQ(spans[0].name, "tx a");
  EXPECT_EQ(spans[0].start, 10);
  EXPECT_EQ(spans[0].end, 20);
  EXPECT_EQ(spans[1].node, 3);
  EXPECT_EQ(spans[1].lane, kTraceLaneCoordinator);
}

TEST(SpanCollectorTest, ConcurrentAddsAreSafe) {
  SpanCollector collector;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&collector, t] {
      for (int i = 0; i < 1000; ++i) {
        collector.Add(t, 0, "s", i, i + 1);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(collector.size(), 4000u);
}

TEST(SpanCollectorTest, LaneNames) {
  EXPECT_STREQ(TraceLaneName(kTraceLaneNetUplink), "net:uplink");
  EXPECT_STREQ(TraceLaneName(kTraceLaneNetDownlink), "net:downlink");
  EXPECT_STREQ(TraceLaneName(kTraceLaneCoordinator), "coordinator");
}

}  // namespace
}  // namespace hipress
