// MiniDNN: gradient correctness of the MLP and convergence parity of
// compressed distributed training (the Figure 13 property).
#include <gtest/gtest.h>

#include <cmath>

#include "src/minidnn/dist_trainer.h"
#include "src/minidnn/mlp.h"

namespace hipress {
namespace {

TEST(MlpTest, GradientsMatchFiniteDifferences) {
  MlpConfig config;
  config.input_dim = 3;
  config.hidden_dim = 4;
  config.output_dim = 2;
  Mlp mlp(config);

  Rng rng(9);
  std::vector<float> inputs(3 * 2);
  for (float& v : inputs) {
    v = static_cast<float>(rng.NextGaussian());
  }
  std::vector<int> labels = {0, 1};

  auto grads = mlp.MakeGradients();
  mlp.BackwardCrossEntropy(inputs, labels, 2, &grads);

  // Check several weights per layer against central differences.
  const float eps = 1e-3f;
  for (size_t p = 0; p < mlp.parameters().size(); ++p) {
    const size_t size = mlp.parameters()[p].size();
    for (size_t i = 0; i < size; i += std::max<size_t>(1, size / 5)) {
      Mlp plus = mlp;
      plus.mutable_parameters()[p][i] += eps;
      Mlp minus = mlp;
      minus.mutable_parameters()[p][i] -= eps;
      auto scratch_p = plus.MakeGradients();
      auto scratch_m = minus.MakeGradients();
      const double loss_plus =
          plus.BackwardCrossEntropy(inputs, labels, 2, &scratch_p);
      const double loss_minus =
          minus.BackwardCrossEntropy(inputs, labels, 2, &scratch_m);
      const double numeric = (loss_plus - loss_minus) / (2.0 * eps);
      EXPECT_NEAR(grads[p][i], numeric, 2e-2)
          << "param " << p << " index " << i;
    }
  }
}

TEST(MlpTest, SgdWithMomentumUpdatesParameters) {
  MlpConfig config;
  Mlp mlp(config);
  auto grads = mlp.MakeGradients();
  grads[0][0] = 1.0f;
  std::vector<Tensor> velocity;
  const float before = mlp.parameters()[0][0];
  mlp.ApplySgd(grads, 0.1f, 0.9f, &velocity);
  EXPECT_FLOAT_EQ(mlp.parameters()[0][0], before - 0.1f);
  // Momentum keeps pushing on the next step even with zero gradient.
  grads[0][0] = 0.0f;
  const float after_first = mlp.parameters()[0][0];
  mlp.ApplySgd(grads, 0.1f, 0.9f, &velocity);
  EXPECT_FLOAT_EQ(mlp.parameters()[0][0], after_first - 0.1f * 0.9f);
}

TEST(SyntheticTaskTest, DeterministicAndLabeledInRange) {
  SyntheticTask task;
  Rng rng1(3);
  Rng rng2(3);
  std::vector<float> a;
  std::vector<float> b;
  std::vector<int> la;
  std::vector<int> lb;
  task.Sample(rng1, 16, &a, &la);
  task.Sample(rng2, 16, &b, &lb);
  EXPECT_EQ(a, b);
  EXPECT_EQ(la, lb);
  for (int label : la) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, task.num_classes);
  }
}

DistTrainConfig BaseConfig() {
  DistTrainConfig config;
  config.num_workers = 4;
  config.batch_per_worker = 32;
  config.learning_rate = 0.05f;
  config.momentum = 0.9f;
  return config;
}

TEST(DistTrainerTest, UncompressedTrainingConverges) {
  auto trainer = DistTrainer::Create(BaseConfig());
  ASSERT_TRUE(trainer.ok()) << trainer.status();
  auto result = (*trainer)->Train(120, 10, 0.9);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->final_accuracy, 0.9);
  EXPECT_GT(result->steps_to_target, 0);
}

struct ConvergenceCase {
  const char* algorithm;
  StrategyKind strategy;
};

class CompressedConvergenceTest
    : public ::testing::TestWithParam<ConvergenceCase> {};

TEST_P(CompressedConvergenceTest, ReachesSameAccuracyAsBaseline) {
  // Figure 13's claim: compression-enabled training converges to the same
  // accuracy within a comparable number of iterations.
  DistTrainConfig baseline_config = BaseConfig();
  auto baseline = DistTrainer::Create(baseline_config);
  ASSERT_TRUE(baseline.ok());
  auto baseline_result = (*baseline)->Train(150, 10, 0.9);
  ASSERT_TRUE(baseline_result.ok());

  DistTrainConfig config = BaseConfig();
  config.algorithm = GetParam().algorithm;
  config.strategy = GetParam().strategy;
  config.codec_params.sparsity_ratio = 0.25;  // tiny model: keep 25%
  // 4-bit keeps the quantization grid fine enough for this small model;
  // the original TernGrad recipe also relies on layer-wise scaling and
  // gradient clipping we do not replicate here.
  config.codec_params.bitwidth = 4;
  auto trainer = DistTrainer::Create(config);
  ASSERT_TRUE(trainer.ok()) << trainer.status();
  auto result = (*trainer)->Train(150, 10, 0.9);
  ASSERT_TRUE(result.ok()) << result.status();

  EXPECT_GT(result->final_accuracy, baseline_result->final_accuracy - 0.05)
      << GetParam().algorithm;
  ASSERT_GT(result->steps_to_target, 0) << GetParam().algorithm;
  EXPECT_LE(result->steps_to_target, baseline_result->steps_to_target * 3)
      << GetParam().algorithm;
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, CompressedConvergenceTest,
    ::testing::Values(ConvergenceCase{"onebit", StrategyKind::kPs},
                      ConvergenceCase{"terngrad", StrategyKind::kPs},
                      ConvergenceCase{"dgc", StrategyKind::kRing},
                      ConvergenceCase{"tbq", StrategyKind::kPs},
                      ConvergenceCase{"adacomp", StrategyKind::kPs},
                      ConvergenceCase{"fp16", StrategyKind::kRing}));

TEST(DistTrainerTest, RejectsMismatchedDims) {
  DistTrainConfig config = BaseConfig();
  config.model.input_dim = 8;  // task default is 16
  EXPECT_FALSE(DistTrainer::Create(config).ok());
}

TEST(DistTrainerTest, SingleWorkerEqualsLocalTraining) {
  DistTrainConfig config = BaseConfig();
  config.num_workers = 1;
  auto trainer = DistTrainer::Create(config);
  ASSERT_TRUE(trainer.ok());
  auto result = (*trainer)->Train(60, 10, 0.85);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->final_accuracy, 0.85);
}

}  // namespace
}  // namespace hipress
