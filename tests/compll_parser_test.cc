#include <gtest/gtest.h>

#include "src/compll/builtin_algorithms.h"
#include "src/compll/parser.h"

namespace hipress::compll {
namespace {

Program MustParse(const std::string& source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

TEST(ParserTest, ParamBlock) {
  const Program program = MustParse(R"(
param EncodeParams {
  uint8 bitwidth;
  float ratio;
}
)");
  ASSERT_EQ(program.param_blocks.size(), 1u);
  const ParamBlock& block = program.param_blocks[0];
  EXPECT_EQ(block.name, "EncodeParams");
  ASSERT_EQ(block.fields.size(), 2u);
  EXPECT_EQ(block.fields[0].name, "bitwidth");
  EXPECT_EQ(block.fields[0].type.scalar, ScalarType::kUint8);
  EXPECT_EQ(block.fields[1].type.scalar, ScalarType::kFloat);
}

TEST(ParserTest, GlobalDeclarationList) {
  const Program program = MustParse("float min, max, gap;\n");
  ASSERT_EQ(program.globals.size(), 1u);
  EXPECT_EQ(program.globals[0].names.size(), 3u);
  EXPECT_EQ(program.globals[0].names[1], "max");
}

TEST(ParserTest, FunctionWithParamsAndBody) {
  const Program program = MustParse(R"(
float f(float a, int32 b) {
  float c = a + b;
  return c * 2;
}
)");
  ASSERT_EQ(program.functions.size(), 1u);
  const FunctionDecl& fn = program.functions[0];
  EXPECT_EQ(fn.name, "f");
  EXPECT_EQ(fn.return_type.scalar, ScalarType::kFloat);
  ASSERT_EQ(fn.params.size(), 2u);
  EXPECT_EQ(fn.params[1].type.scalar, ScalarType::kInt32);
  ASSERT_EQ(fn.body.size(), 2u);
  EXPECT_EQ(fn.body[0]->kind, StmtKind::kDecl);
  EXPECT_EQ(fn.body[1]->kind, StmtKind::kReturn);
}

TEST(ParserTest, ArrayTypesAndDeclarations) {
  const Program program = MustParse(R"(
void encode(float* gradient, uint8* compressed) {
  uint2* Q = map(gradient, f);
}
)");
  const FunctionDecl& fn = program.functions[0];
  EXPECT_TRUE(fn.params[0].type.is_array);
  EXPECT_EQ(fn.params[1].type.scalar, ScalarType::kUint8);
  const auto& decl = static_cast<const DeclStmt&>(*fn.body[0]);
  EXPECT_TRUE(decl.type.is_array);
  EXPECT_EQ(decl.type.scalar, ScalarType::kUint2);
  ASSERT_NE(decl.init, nullptr);
  EXPECT_EQ(decl.init->kind, ExprKind::kCall);
}

TEST(ParserTest, GenericCallVersusComparison) {
  const Program program = MustParse(R"(
float f(float a) {
  float r = random<float>(0, 1);
  if (a < r) { return 1; }
  return 0;
}
)");
  const FunctionDecl& fn = program.functions[0];
  const auto& decl = static_cast<const DeclStmt&>(*fn.body[0]);
  const auto& call = static_cast<const CallExpr&>(*decl.init);
  EXPECT_EQ(call.callee, "random");
  ASSERT_TRUE(call.type_arg.has_value());
  EXPECT_EQ(call.type_arg->scalar, ScalarType::kFloat);
  EXPECT_EQ(fn.body[1]->kind, StmtKind::kIf);
}

TEST(ParserTest, ExtractWithArrayTypeArgument) {
  const Program program = MustParse(R"(
void decode(uint8* compressed, float* gradient) {
  uint2* Q = extract<uint2*>(compressed);
}
)");
  const auto& decl =
      static_cast<const DeclStmt&>(*program.functions[0].body[0]);
  const auto& call = static_cast<const CallExpr&>(*decl.init);
  EXPECT_EQ(call.callee, "extract");
  ASSERT_TRUE(call.type_arg.has_value());
  EXPECT_TRUE(call.type_arg->is_array);
  EXPECT_EQ(call.type_arg->scalar, ScalarType::kUint2);
}

TEST(ParserTest, OperatorPrecedence) {
  const Program program = MustParse(R"(
float f(float a) {
  return a + 2 * 3 << 1;
}
)");
  // '<<' binds loosest: ((a + (2*3)) << 1).
  const auto& ret =
      static_cast<const ReturnStmt&>(*program.functions[0].body[0]);
  const auto& shl = static_cast<const BinaryExpr&>(*ret.value);
  EXPECT_EQ(shl.op, TokenKind::kShl);
  const auto& add = static_cast<const BinaryExpr&>(*shl.lhs);
  EXPECT_EQ(add.op, TokenKind::kPlus);
  const auto& mul = static_cast<const BinaryExpr&>(*add.rhs);
  EXPECT_EQ(mul.op, TokenKind::kStar);
}

TEST(ParserTest, MemberAccessAndIndexing) {
  const Program program = MustParse(R"(
param P {
  uint8 bitwidth;
}
void encode(float* g, uint8* out, P params) {
  int32 n = g.size;
  float x = g[n - 1];
  float b = params.bitwidth;
}
)");
  const FunctionDecl& fn = program.functions[0];
  ASSERT_EQ(fn.params.size(), 3u);
  EXPECT_EQ(fn.params[2].type.scalar, ScalarType::kParamStruct);
  EXPECT_EQ(fn.params[2].type.struct_name, "P");
  const auto& size_decl = static_cast<const DeclStmt&>(*fn.body[0]);
  EXPECT_EQ(size_decl.init->kind, ExprKind::kMember);
  const auto& index_decl = static_cast<const DeclStmt&>(*fn.body[1]);
  EXPECT_EQ(index_decl.init->kind, ExprKind::kIndex);
  const auto& member_decl = static_cast<const DeclStmt&>(*fn.body[2]);
  EXPECT_EQ(member_decl.init->kind, ExprKind::kMember);
}

TEST(ParserTest, ParamStructParameterRequiresPriorBlock) {
  EXPECT_FALSE(ParseProgram(R"(
void encode(float* g, uint8* out, Unknown params) {
}
)")
                   .ok());
}

TEST(ParserTest, ReportsLineNumbersInErrors) {
  const auto result = ParseProgram("float f() {\n  return ;;\n}\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 2"), std::string::npos);
}

TEST(ParserTest, RejectsAssignmentToCall) {
  EXPECT_FALSE(ParseProgram(R"(
void f(float* g, uint8* o) {
  foo() = 3;
}
)")
                   .ok());
}

TEST(ParserTest, IfElseBlocks) {
  const Program program = MustParse(R"(
float sign(float x) {
  if (x >= 0) {
    return 1;
  } else {
    return -1;
  }
}
)");
  const auto& if_stmt =
      static_cast<const IfStmt&>(*program.functions[0].body[0]);
  EXPECT_EQ(if_stmt.then_body.size(), 1u);
  EXPECT_EQ(if_stmt.else_body.size(), 1u);
}

TEST(ParserTest, AllBuiltinProgramsParse) {
  for (const DslAlgorithm& algorithm : BuiltinDslAlgorithms()) {
    auto program = ParseProgram(algorithm.source);
    ASSERT_TRUE(program.ok()) << algorithm.name << ": " << program.status();
    EXPECT_NE(program->FindFunction("encode"), nullptr) << algorithm.name;
    EXPECT_NE(program->FindFunction("decode"), nullptr) << algorithm.name;
  }
}

TEST(ParserTest, Figure5ListingParses) {
  // The paper's TernGrad encode, as printed (with line continuations).
  const char* figure5 = R"(
param EncodeParams {
  uint8 bitwidth;
}
float min, max, gap;
uint2 floatToUint(float elem) {
  float r = (elem - min) / gap;
  return floor(r + random<float>(0, 1));
}
void encode(float* gradient, uint8* compressed, \
            EncodeParams params) {
  min = reduce(gradient, smaller);
  max = reduce(gradient, greater);
  gap = (max - min) / ((1 << params.bitwidth) - 1);
  uint8 tail = gradient.size % (1 << params.bitwidth);
  uint2* Q = map(gradient, floatToUint);
  compressed = concat(params.bitwidth, tail, \
                      min, max, Q);
}
)";
  auto program = ParseProgram(figure5);
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->functions.size(), 2u);
  EXPECT_EQ(program->globals.size(), 1u);
}

TEST(CountDslLinesTest, SkipsBlanksAndComments) {
  EXPECT_EQ(CountDslLines("// comment\n\nfloat x;\n  // more\nfloat y;\n"),
            2);
}

TEST(CountDslLinesTest, BuiltinLineCountsAreTableFiveSized) {
  // Table 5 reports 13-29 lines of algorithm logic plus udfs; our DSL
  // programs (logic + udfs + params) land in the same few-dozen range.
  for (const DslAlgorithm& algorithm : BuiltinDslAlgorithms()) {
    const int lines = CountDslLines(algorithm.source);
    EXPECT_GE(lines, 10) << algorithm.name;
    EXPECT_LE(lines, 60) << algorithm.name;
  }
}

}  // namespace
}  // namespace hipress::compll
