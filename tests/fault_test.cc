// Fault-injection and recovery layer: deterministic drop schedules, link
// degradation, node crashes, the reliable ack/retry/backoff transport, task
// graph cancellation + survivor rebuilds, and iteration-level trainer
// recovery (docs/FAULT_TOLERANCE.md).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/casync/builder.h"
#include "src/casync/engine.h"
#include "src/hipress/hipress.h"
#include "src/net/fault.h"
#include "src/net/network.h"
#include "src/net/reliable_channel.h"
#include "src/train/trainer.h"

namespace hipress {
namespace {

// ------------------------------------------------------------ fault config

TEST(FaultSpecTest, ParsesFullSpec) {
  auto config = ParseFaultSpec("drop=0.01,seed=7,crash=3@40,"
                               "degrade=0-1@10-20@0.5");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_DOUBLE_EQ(config->drop_prob, 0.01);
  EXPECT_EQ(config->seed, 7u);
  ASSERT_EQ(config->crashes.size(), 1u);
  EXPECT_EQ(config->crashes[0].node, 3);
  EXPECT_EQ(config->crashes[0].at, FromMillis(40.0));
  ASSERT_EQ(config->degradations.size(), 1u);
  EXPECT_EQ(config->degradations[0].src, 0);
  EXPECT_EQ(config->degradations[0].dst, 1);
  EXPECT_EQ(config->degradations[0].start, FromMillis(10.0));
  EXPECT_EQ(config->degradations[0].end, FromMillis(20.0));
  EXPECT_DOUBLE_EQ(config->degradations[0].bandwidth_factor, 0.5);
  EXPECT_TRUE(config->any());
}

TEST(FaultSpecTest, ParsesWildcardEndpoints) {
  auto config = ParseFaultSpec("degrade=*-2@0-5@0.25");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config->degradations[0].src, -1);
  EXPECT_EQ(config->degradations[0].dst, 2);
}

TEST(FaultSpecTest, EmptySpecHasNoFaults) {
  auto config = ParseFaultSpec("");
  ASSERT_TRUE(config.ok());
  EXPECT_FALSE(config->any());
}

TEST(FaultSpecTest, RejectsMalformedClauses) {
  for (const char* bad :
       {"drop", "drop=1.5", "drop=-0.1", "crash=3", "crash=x@40",
        "crash=3@-1", "degrade=0-1@10-20", "degrade=0-1@20-10@0.5",
        "degrade=0-1@10-20@0", "degrade=0-1@10-20@1.5", "nonsense=1"}) {
    EXPECT_FALSE(ParseFaultSpec(bad).ok()) << bad;
  }
}

TEST(FaultConfigTest, CrashTimeAndDegradationFactor) {
  FaultConfig config;
  config.crashes.push_back({2, FromMillis(5.0)});
  EXPECT_EQ(config.CrashTime(2), FromMillis(5.0));
  EXPECT_EQ(config.CrashTime(0), -1);
  config.degradations.push_back(
      {/*src=*/-1, /*dst=*/1, FromMillis(1.0), FromMillis(2.0), 0.5});
  config.degradations.push_back(
      {/*src=*/0, /*dst=*/1, FromMillis(1.0), FromMillis(3.0), 0.25});
  // Overlapping windows: the deepest cut wins.
  EXPECT_DOUBLE_EQ(config.DegradationFactor(0, 1, FromMillis(1.5)), 0.25);
  // Only the wildcard window matches 2->1.
  EXPECT_DOUBLE_EQ(config.DegradationFactor(2, 1, FromMillis(1.5)), 0.5);
  // Window end is exclusive.
  EXPECT_DOUBLE_EQ(config.DegradationFactor(2, 1, FromMillis(2.0)), 1.0);
  // Wrong direction.
  EXPECT_DOUBLE_EQ(config.DegradationFactor(1, 0, FromMillis(1.5)), 1.0);
}

TEST(FaultConfigTest, FaultUniformIsDeterministicAndRoughlyUniform) {
  double sum = 0.0;
  for (uint64_t i = 0; i < 10'000; ++i) {
    const double u = FaultUniform(42, i);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_EQ(u, FaultUniform(42, i));  // pure function of (seed, ordinal)
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000.0, 0.5, 0.05);
  EXPECT_NE(FaultUniform(42, 0), FaultUniform(43, 0));
}

// ------------------------------------------------------------ network layer

NetworkConfig FastConfig() {
  NetworkConfig config;
  config.link_bandwidth = Bandwidth::Gbps(80.0);  // 10 GB/s
  config.latency = FromMicros(10.0);
  config.per_message_overhead = FromMicros(2.0);
  return config;
}

// Sends `count` one-byte-each messages 0->1 and returns the delivered
// ordinal bitmap.
std::vector<bool> DropSchedule(const NetworkConfig& config, int count) {
  Simulator sim;
  Network net(&sim, 2, config);
  std::vector<bool> delivered(count, false);
  for (int i = 0; i < count; ++i) {
    NetMessage msg;
    msg.src = 0;
    msg.dst = 1;
    msg.bytes = 1;
    msg.tag = static_cast<uint32_t>(i);
    net.Send(msg, [&delivered](const NetMessage& m) {
      delivered[m.tag] = true;
    });
  }
  sim.Run();
  return delivered;
}

TEST(NetworkFaultTest, DropsAreSeededDeterministicAndCounted) {
  NetworkConfig config = FastConfig();
  config.faults.drop_prob = 0.3;
  config.faults.seed = 7;
  const std::vector<bool> first = DropSchedule(config, 1000);
  const int survivors =
      static_cast<int>(std::count(first.begin(), first.end(), true));
  // ~70% survive; generous bounds keep the assertion schedule-independent.
  EXPECT_GT(survivors, 600);
  EXPECT_LT(survivors, 800);
  // Same seed => bit-identical schedule.
  EXPECT_EQ(DropSchedule(config, 1000), first);
  // Different seed => a different schedule.
  config.faults.seed = 8;
  EXPECT_NE(DropSchedule(config, 1000), first);
}

TEST(NetworkFaultTest, DroppedMessagesStillOccupyTheLink) {
  NetworkConfig config = FastConfig();
  config.faults.drop_prob = 0.5;
  config.faults.seed = 3;
  Simulator sim;
  Network net(&sim, 2, config);
  for (int i = 0; i < 10; ++i) {
    NetMessage msg;
    msg.src = 0;
    msg.dst = 1;
    msg.bytes = 10'000'000;  // 1 ms serialization each
    net.Send(msg, [](const NetMessage&) {});
  }
  sim.Run();
  // The bits were transmitted whether or not they arrived.
  EXPECT_EQ(net.uplink_busy(0), 10 * FromMillis(1.0));
  EXPECT_EQ(net.messages_dropped() + net.messages_delivered(), 10u);
  EXPECT_GT(net.messages_dropped(), 0u);
}

TEST(NetworkFaultTest, CrashedReceiverBlackholesLateDeliveries) {
  NetworkConfig config = FastConfig();
  config.faults.crashes.push_back({1, FromMicros(500.0)});
  Simulator sim;
  Network net(&sim, 2, config);
  int delivered = 0;
  // Small message arrives ~12.1us: before the crash.
  NetMessage early;
  early.src = 0;
  early.dst = 1;
  early.bytes = 1000;
  net.Send(early, [&](const NetMessage&) { ++delivered; });
  // 10 MB arrives ~1ms: after the crash -> blackholed at send time.
  NetMessage late;
  late.src = 0;
  late.dst = 1;
  late.bytes = 10'000'000;
  net.Send(late, [&](const NetMessage&) { ++delivered; });
  sim.Run();
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_TRUE(net.AliveAt(1, FromMicros(499.0)));
  EXPECT_FALSE(net.AliveAt(1, FromMicros(500.0)));
}

TEST(NetworkFaultTest, CrashedSenderTransmitsNothing) {
  NetworkConfig config = FastConfig();
  config.faults.crashes.push_back({0, 0});
  Simulator sim;
  Network net(&sim, 2, config);
  int delivered = 0;
  NetMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 10'000'000;
  net.Send(msg, [&](const NetMessage&) { ++delivered; });
  sim.Run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.messages_dropped(), 1u);
  // A dead sender does not even occupy its uplink.
  EXPECT_EQ(net.uplink_busy(0), 0);
}

TEST(NetworkFaultTest, DegradationWindowCutsBandwidth) {
  NetworkConfig config = FastConfig();
  config.faults.degradations.push_back(
      {/*src=*/0, /*dst=*/1, 0, FromMillis(10.0), 0.25});
  Simulator sim;
  Network net(&sim, 2, config);
  SimTime delivered_at = -1;
  NetMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 10'000'000;  // 1 ms clean, 4 ms at quarter bandwidth
  net.Send(msg, [&](const NetMessage&) { delivered_at = sim.now(); });
  sim.Run();
  EXPECT_EQ(delivered_at,
            FromMicros(2.0) + 4 * FromMillis(1.0) + FromMicros(10.0));
  // Outside the window the link runs at full speed again.
  Simulator sim2;
  Network net2(&sim2, 2, config);
  SimTime late_delivery = -1;
  sim2.ScheduleAt(FromMillis(10.0), [&] {
    NetMessage clean;
    clean.src = 0;
    clean.dst = 1;
    clean.bytes = 10'000'000;
    net2.Send(clean, [&](const NetMessage&) { late_delivery = sim2.now(); });
  });
  sim2.Run();
  EXPECT_EQ(late_delivery, FromMillis(10.0) + FromMicros(2.0) +
                               FromMillis(1.0) + FromMicros(10.0));
}

// ------------------------------------------------------- reliable transport

TEST(ReliableChannelTest, RetriesUntilDeliveredUnderLoss) {
  NetworkConfig net_config = FastConfig();
  net_config.faults.drop_prob = 0.3;  // data AND acks are lossy
  net_config.faults.seed = 11;
  Simulator sim;
  Network net(&sim, 2, net_config);
  ReliableTransportConfig config;
  config.max_attempts = 30;
  ReliableChannel channel(&sim, &net, config);
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    NetMessage msg;
    msg.src = 0;
    msg.dst = 1;
    msg.bytes = 100'000;
    channel.Send(std::move(msg), [&](const Status& status) {
      EXPECT_TRUE(status.ok()) << status;
      ++completed;
    });
  }
  sim.Run();
  EXPECT_EQ(completed, 20);
  EXPECT_GT(channel.retries(), 0u);
  EXPECT_EQ(channel.acks(), 20u);
  EXPECT_TRUE(channel.failed_peers().empty());
}

TEST(ReliableChannelTest, ExhaustedBudgetDeclaresDeadReceiver) {
  NetworkConfig net_config = FastConfig();
  net_config.faults.crashes.push_back({1, 0});
  Simulator sim;
  Network net(&sim, 2, net_config);
  ReliableChannel channel(&sim, &net, ReliableTransportConfig{});
  std::vector<int> failure_events;
  channel.set_on_peer_failure(
      [&](int peer) { failure_events.push_back(peer); });
  Status result = OkStatus();
  NetMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 1000;
  channel.Send(std::move(msg), [&](const Status& status) { result = status; });
  sim.Run();
  EXPECT_EQ(result.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(channel.peer_failed(1));
  EXPECT_FALSE(channel.peer_failed(0));
  ASSERT_EQ(failure_events.size(), 1u);
  EXPECT_EQ(failure_events[0], 1);

  // Subsequent sends to the dead peer fail fast, without a retry budget.
  const uint64_t retries_before = channel.retries();
  Status fast = OkStatus();
  NetMessage again;
  again.src = 0;
  again.dst = 1;
  again.bytes = 1000;
  channel.Send(std::move(again), [&](const Status& status) { fast = status; });
  sim.Run();
  EXPECT_EQ(fast.code(), StatusCode::kUnavailable);
  EXPECT_EQ(channel.retries(), retries_before);
  EXPECT_EQ(failure_events.size(), 1u);  // handler fires once per peer
}

TEST(ReliableChannelTest, BlamesCrashedSenderNotReceiver) {
  // The engine dispatches sends on behalf of every node; when the *sender*
  // is the corpse, its retransmits blackhole and the failure must be pinned
  // on it, not on the healthy destination.
  NetworkConfig net_config = FastConfig();
  net_config.faults.crashes.push_back({0, 0});
  Simulator sim;
  Network net(&sim, 2, net_config);
  ReliableChannel channel(&sim, &net, ReliableTransportConfig{});
  Status result = OkStatus();
  NetMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 1000;
  channel.Send(std::move(msg), [&](const Status& status) { result = status; });
  sim.Run();
  EXPECT_EQ(result.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(channel.peer_failed(0));
  EXPECT_FALSE(channel.peer_failed(1));
}

TEST(ReliableChannelTest, BackoffIsCappedExponential) {
  NetworkConfig net_config = FastConfig();
  net_config.faults.crashes.push_back({1, 0});
  auto metrics = std::make_shared<MetricsRegistry>();
  Simulator sim;
  Network net(&sim, 2, net_config);
  ReliableTransportConfig config;
  config.max_attempts = 12;
  config.backoff_base = FromMicros(100.0);
  config.backoff_factor = 2.0;
  config.backoff_cap = FromMicros(800.0);
  ReliableChannel channel(&sim, &net, config, metrics.get());
  NetMessage msg;
  msg.src = 0;
  msg.dst = 1;
  msg.bytes = 1000;
  channel.Send(std::move(msg), [](const Status&) {});
  sim.Run();
  const Histogram& backoff = metrics->histogram("net.backoff_us");
  EXPECT_EQ(backoff.count(), 11u);  // one wait between each pair of attempts
  EXPECT_DOUBLE_EQ(backoff.max(), 800.0);  // cap respected
  // 100 + 200 + 400 + 8 * 800 us.
  EXPECT_DOUBLE_EQ(backoff.sum(), 100.0 + 200.0 + 400.0 + 8 * 800.0);
}

// ----------------------------------------------------- engine + graph layer

struct Cluster {
  explicit Cluster(const SyncConfig& config)
      : net(&sim, config.num_nodes, config.net) {
    for (int node = 0; node < config.num_nodes; ++node) {
      gpu_storage.push_back(std::make_unique<GpuDevice>(&sim, node));
      gpus.push_back(gpu_storage.back().get());
    }
    engine = std::make_unique<CaSyncEngine>(&sim, &net, gpus, config);
  }

  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<GpuDevice>> gpu_storage;
  std::vector<GpuDevice*> gpus;
  std::unique_ptr<CaSyncEngine> engine;
};

SyncConfig EngineConfig(int nodes) {
  SyncConfig config;
  config.strategy = StrategyKind::kPs;
  config.num_nodes = nodes;
  config.compression = true;
  config.algorithm = "onebit";
  config.net = FastConfig();
  config.bulk = false;
  return config;
}

TEST(EngineFaultTest, PeerFailureCancelsGraphWithUnavailable) {
  SyncConfig config = EngineConfig(4);
  config.net.faults.crashes.push_back({2, 0});
  Cluster cluster(config);
  ASSERT_NE(cluster.engine->reliable_channel(), nullptr);
  GradientSync gradient;
  gradient.bytes = 1 * kMiB;
  gradient.compress = true;
  gradient.rate = 1.0 / 32;
  TaskGraph graph;
  AppendPsSyncTasks(config, gradient, &graph);
  Status result = OkStatus();
  int completions = 0;
  cluster.engine->Execute(&graph, [&](const Status& status) {
    result = status;
    ++completions;
  });
  cluster.sim.Run();
  EXPECT_EQ(completions, 1);  // fails exactly once, never hangs
  EXPECT_EQ(result.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(cluster.engine->node_failed(2));
  ASSERT_EQ(cluster.engine->failed_nodes().size(), 1u);
  EXPECT_EQ(cluster.engine->failed_nodes()[0], 2);
}

TEST(EngineFaultTest, GraphTouchingFailedNodeFailsUpFront) {
  SyncConfig config = EngineConfig(4);
  config.net.faults.crashes.push_back({2, 0});
  Cluster cluster(config);
  GradientSync gradient;
  gradient.bytes = 1 * kMiB;
  gradient.compress = true;
  gradient.rate = 1.0 / 32;
  TaskGraph first;
  AppendPsSyncTasks(config, gradient, &first);
  Status status = OkStatus();
  cluster.engine->Execute(&first, [&](const Status& s) { status = s; });
  cluster.sim.Run();
  ASSERT_EQ(status.code(), StatusCode::kUnavailable);

  // With node 2 now known-dead, a graph involving it fails synchronously.
  TaskGraph second;
  AppendPsSyncTasks(config, gradient, &second);
  Status upfront = OkStatus();
  cluster.engine->Execute(&second, [&](const Status& s) { upfront = s; });
  EXPECT_EQ(upfront.code(), StatusCode::kUnavailable);

  // A survivor-only rebuild of the same gradient completes.
  TaskGraph degraded;
  AppendSyncTasksOver(config, gradient, {0, 1, 3}, &degraded);
  Status recovered = InternalError("never fired");
  cluster.engine->Execute(&degraded, [&](const Status& s) { recovered = s; });
  cluster.sim.Run();
  EXPECT_TRUE(recovered.ok()) << recovered;
}

TEST(BuilderTest, AppendSyncTasksOverRemapsOntoSurvivors) {
  SyncConfig config = EngineConfig(4);
  GradientSync gradient;
  gradient.bytes = 1 * kMiB;
  gradient.compress = true;
  gradient.partitions = 4;  // clamped to the 3 survivors
  gradient.rate = 1.0 / 32;
  const std::vector<int> survivors = {0, 2, 3};
  TaskGraph graph;
  AppendSyncTasksOver(config, gradient, survivors, &graph);
  ASSERT_GT(graph.size(), 0u);
  EXPECT_TRUE(graph.IsAcyclic());
  bool uses_each[4] = {false, false, false, false};
  for (TaskId id = 0; id < graph.size(); ++id) {
    const SyncTask& task = graph.task(id);
    ASSERT_NE(task.node, 1) << "task scheduled on the dead node";
    ASSERT_NE(task.peer, 1) << "task talks to the dead node";
    if (task.node >= 0) {
      uses_each[task.node] = true;
    }
  }
  for (const int node : survivors) {
    EXPECT_TRUE(uses_each[node]) << "survivor " << node << " unused";
  }
  // Structure matches a 3-node build of the same plan (modulo renaming).
  SyncConfig shrunk = config;
  shrunk.num_nodes = 3;
  GradientSync clamped = gradient;
  clamped.partitions = 3;
  TaskGraph reference;
  AppendSyncTasks(shrunk, clamped, &reference);
  EXPECT_EQ(graph.size(), reference.size());
}

// Raw (uncompressed) PS sum with real buffers: every worker pushes its
// vector to the aggregator, which sums and pushes back. Loss + retries must
// not change the synchronized values, only the timing.
struct SumFixture {
  explicit SumFixture(int workers, size_t elements) {
    for (int w = 0; w < workers; ++w) {
      // Integer-valued floats: addition is exact in any arrival order.
      std::vector<float> input(elements);
      for (size_t i = 0; i < elements; ++i) {
        input[i] = static_cast<float>((w + 1) * 100 + i % 7);
      }
      inputs.push_back(std::move(input));
      outputs.emplace_back(elements, 0.0f);
    }
    aggregate.assign(elements, 0.0f);
  }

  void Build(TaskGraph* graph) {
    const int workers = static_cast<int>(inputs.size());
    const size_t bytes = aggregate.size() * 4;
    SyncTask barrier;
    barrier.type = PrimitiveType::kBarrier;
    barrier.node = 0;
    barrier.action = [this] {
      for (size_t i = 0; i < aggregate.size(); ++i) {
        aggregate[i] += inputs[0][i];
      }
    };
    const TaskId barrier_id = graph->Add(barrier);
    for (int w = 1; w < workers; ++w) {
      SyncTask send;
      send.type = PrimitiveType::kSend;
      send.node = w;
      send.peer = 0;
      send.bytes = bytes;
      const TaskId send_id = graph->Add(send);
      SyncTask recv;
      recv.type = PrimitiveType::kRecv;
      recv.node = 0;
      recv.action = [this, w] {
        for (size_t i = 0; i < aggregate.size(); ++i) {
          aggregate[i] += inputs[w][i];
        }
      };
      const TaskId recv_id = graph->Add(recv);
      graph->AddDep(send_id, recv_id);
      graph->AddDep(recv_id, barrier_id);
    }
    for (int w = 0; w < workers; ++w) {
      SyncTask recv;
      recv.type = PrimitiveType::kRecv;
      recv.node = w;
      recv.action = [this, w] { outputs[w] = aggregate; };
      const TaskId recv_id = graph->Add(recv);
      if (w == 0) {
        graph->AddDep(barrier_id, recv_id);
        continue;
      }
      SyncTask send;
      send.type = PrimitiveType::kSend;
      send.node = 0;
      send.peer = w;
      send.bytes = bytes;
      const TaskId send_id = graph->Add(send);
      graph->AddDep(barrier_id, send_id);
      graph->AddDep(send_id, recv_id);
    }
  }

  std::vector<std::vector<float>> inputs;
  std::vector<std::vector<float>> outputs;
  std::vector<float> aggregate;
};

TEST(EngineFaultTest, LossyRunSynchronizesSameValuesAsClean) {
  const int workers = 4;
  const size_t elements = 256;
  auto run = [&](double drop_prob, uint64_t* retries) {
    SyncConfig config = EngineConfig(workers);
    config.compression = false;
    config.net.faults.drop_prob = drop_prob;
    config.net.faults.seed = 21;
    config.reliable.max_attempts = 20;
    SumFixture fixture(workers, elements);
    Cluster cluster(config);
    TaskGraph graph;
    fixture.Build(&graph);
    bool done = false;
    cluster.engine->Execute(&graph, [&] { done = true; });
    cluster.sim.Run();
    EXPECT_TRUE(done);
    if (retries != nullptr) {
      *retries = cluster.engine->reliable_channel() != nullptr
                     ? cluster.engine->reliable_channel()->retries()
                     : 0;
    }
    return fixture.outputs;
  };
  const auto clean = run(0.0, nullptr);
  uint64_t retries = 0;
  const auto lossy = run(0.25, &retries);
  EXPECT_GT(retries, 0u);  // loss actually happened and was repaired
  EXPECT_EQ(clean, lossy);
  // Deterministic replay: the lossy run reproduces bit-identically.
  uint64_t retries_again = 0;
  EXPECT_EQ(run(0.25, &retries_again), lossy);
  EXPECT_EQ(retries_again, retries);
}

// ------------------------------------------------- pooled wire path + faults

TEST(ReliableChannelTest, RetransmitsResendTheSamePooledBlock) {
  // The channel's ack/timeout/backoff bookkeeping holds a shared_ptr to the
  // payload: a retransmit re-sends the original pooled block, so loss costs
  // wire time but never a fresh allocation or a byte copy.
  NetworkConfig net_config = FastConfig();
  net_config.faults.drop_prob = 0.3;  // data AND acks are lossy
  net_config.faults.seed = 11;
  Simulator sim;
  Network net(&sim, 2, net_config);
  ReliableTransportConfig config;
  config.max_attempts = 30;
  ReliableChannel channel(&sim, &net, config);

  const int kTransfers = 20;
  std::vector<std::vector<uint8_t>> sent(kTransfers);
  std::vector<const void*> sent_block(kTransfers, nullptr);
  std::vector<int> deliveries(kTransfers, 0);
  int completed = 0;
  uint64_t misses_after_creation = 0;
  for (int t = 0; t < kTransfers; ++t) {
    sent[t].resize(1024);
    for (size_t i = 0; i < sent[t].size(); ++i) {
      sent[t][i] = static_cast<uint8_t>((t + 1) * 31 + i);
    }
    auto payload = MakePooledPayload(sent[t], net.wire_pool());
    sent_block[t] = payload->data();
    NetMessage msg;
    msg.src = 0;
    msg.dst = 1;
    msg.bytes = payload->size();
    msg.tag = static_cast<uint64_t>(t);
    msg.payload = std::move(payload);
    channel.Send(
        std::move(msg),
        [&](const NetMessage& delivered) {
          const int tag = static_cast<int>(delivered.tag);
          ++deliveries[tag];
          auto bytes =
              std::static_pointer_cast<PooledBytes>(delivered.payload);
          ASSERT_NE(bytes, nullptr);
          // Same block the sender enqueued — delivery aliases, never copies.
          EXPECT_EQ(static_cast<const void*>(bytes->data()), sent_block[tag]);
          EXPECT_TRUE(std::equal(bytes->begin(), bytes->end(),
                                 sent[tag].begin(), sent[tag].end()));
        },
        [&](const Status& status) {
          EXPECT_TRUE(status.ok()) << status;
          ++completed;
        });
  }
  misses_after_creation = net.wire_pool()->stats().misses;
  sim.Run();
  EXPECT_EQ(completed, kTransfers);
  EXPECT_GT(channel.retries(), 0u);  // loss actually happened
  for (int t = 0; t < kTransfers; ++t) {
    // on_deliver latches to the first delivered copy despite retransmits.
    EXPECT_EQ(deliveries[t], 1) << "transfer " << t;
  }
  // The whole retry storm allocated nothing: every retransmit re-sent the
  // block acquired before the first attempt.
  EXPECT_EQ(net.wire_pool()->stats().misses, misses_after_creation);
}

TEST(WirePoolFaultTest, DropInjectionStaysAllocationFreeAfterWarmup) {
  // 3-worker compressed-style run through the full pooled wire path:
  // staging blocks from the network's wire pool, batch frames assembled by
  // the coordinator, retransmits under seeded drops. After the first
  // iteration (warm-up) the wire pool must stop missing, and every
  // delivered payload must be bit-identical to what the sender staged.
  SyncConfig config = EngineConfig(3);
  config.bulk = true;  // payload sends ride coordinator batch frames
  config.net.faults.drop_prob = 0.2;
  config.net.faults.seed = 9;
  config.reliable.max_attempts = 30;
  Cluster cluster(config);
  ASSERT_NE(cluster.engine->reliable_channel(), nullptr);
  for (GpuDevice* gpu : cluster.gpus) {
    // Route staging through the wire pool so the encode→staging→batch→wire
    // chain is gated by one allocator.
    gpu->set_staging_pool(cluster.net.wire_pool());
  }

  static constexpr size_t kPayloadBytes = 3000;
  auto pattern = [](int worker, int iteration, size_t i) {
    return static_cast<uint8_t>(worker * 7 + iteration * 13 + i * 31);
  };
  uint64_t misses_after_warmup = 0;
  for (int iteration = 0; iteration < 6; ++iteration) {
    TaskGraph graph;
    int delivered = 0;
    for (int w = 1; w < 3; ++w) {
      // "Encode" into shared staging: the same block becomes the payload.
      auto staged = cluster.gpus[w]->AcquireSharedStaging(kPayloadBytes);
      for (size_t i = 0; i < kPayloadBytes; ++i) {
        (*staged)[i] = pattern(w, iteration, i);
      }
      SyncTask send;
      send.type = PrimitiveType::kSend;
      send.node = w;
      send.peer = 0;
      send.bytes = staged->size();
      send.gradient_id = static_cast<uint32_t>(w);
      send.payload = std::move(staged);
      send.deliver = [&delivered, w, iteration,
                      pattern](std::span<const uint8_t> bytes) {
        // "Decode" at the receiver: the frame slice must be bit-identical
        // to the staged payload.
        ASSERT_EQ(bytes.size(), kPayloadBytes);
        for (size_t i = 0; i < bytes.size(); ++i) {
          ASSERT_EQ(bytes[i], pattern(w, iteration, i))
              << "worker " << w << " iteration " << iteration << " byte " << i;
        }
        ++delivered;
      };
      graph.Add(send);
    }
    bool done = false;
    cluster.engine->Execute(&graph, [&] { done = true; });
    cluster.sim.Run();
    EXPECT_TRUE(done);
    EXPECT_EQ(delivered, 2) << "iteration " << iteration;
    if (iteration == 0) {
      misses_after_warmup = cluster.net.wire_pool()->stats().misses;
      EXPECT_GT(misses_after_warmup, 0u);  // warm-up really allocated
    }
  }
  // Retransmits happened (the drop schedule is seeded to hit) yet the wire
  // path never allocated again after iteration 0.
  EXPECT_GT(cluster.engine->reliable_channel()->retries(), 0u);
  EXPECT_EQ(cluster.net.wire_pool()->stats().misses, misses_after_warmup);
}

// ----------------------------------------------------------- trainer layer

HiPressOptions TrainOptionsFor(const std::string& faults) {
  HiPressOptions options;
  options.model = "resnet50";
  options.system = "hipress-ps";
  options.cluster = ClusterSpec::Ec2(4);
  if (!faults.empty()) {
    auto parsed = ParseFaultSpec(faults);
    EXPECT_TRUE(parsed.ok()) << parsed.status();
    options.cluster.net.faults = *parsed;
  }
  return options;
}

TEST(TrainerFaultTest, LossyTrainingCompletesAndCountsRepairs) {
  auto clean = RunTrainingSimulation(TrainOptionsFor(""));
  ASSERT_TRUE(clean.ok());
  auto lossy = RunTrainingSimulation(TrainOptionsFor("drop=0.02,seed=5"));
  ASSERT_TRUE(lossy.ok());
  const TrainReport& report = lossy->report;
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(report.surviving_nodes, 4);
  EXPECT_GT(report.metrics->counter("net.drops").value(), 0u);
  EXPECT_GT(report.metrics->counter("net.retries").value(), 0u);
  EXPECT_GT(report.metrics->counter("net.retransmit_bytes").value(), 0u);
  // Repairs cost time, never correctness.
  EXPECT_GE(report.iteration_time, clean->report.iteration_time);
}

TEST(TrainerFaultTest, NodeCrashDegradesInsteadOfHanging) {
  HiPressOptions options = TrainOptionsFor("crash=2@60");
  options.train.record_timeline = true;
  auto result = RunTrainingSimulation(options);
  ASSERT_TRUE(result.ok()) << result.status();
  const TrainReport& report = result->report;
  EXPECT_TRUE(report.degraded);
  ASSERT_EQ(report.failed_nodes.size(), 1u);
  EXPECT_EQ(report.failed_nodes[0], 2);
  EXPECT_EQ(report.surviving_nodes, 3);
  EXPECT_EQ(report.total_gpus, 3 * 8);  // throughput from survivors only
  EXPECT_GT(report.recoveries, 0u);
  EXPECT_GT(report.recovery_time, 0);
  EXPECT_GT(report.throughput, 0.0);
  // Observability: recovery metrics and the recovery trace lane.
  EXPECT_EQ(report.metrics->counter("train.recoveries").value(),
            report.recoveries);
  EXPECT_GT(report.metrics->histogram("train.recovery_ms").count(), 0u);
  EXPECT_EQ(report.metrics->counter("net.peer_failures").value(), 1u);
  EXPECT_DOUBLE_EQ(report.metrics->gauge("train.surviving_nodes").value(),
                   3.0);
  ASSERT_NE(report.spans, nullptr);
  bool recovery_span = false;
  for (const TraceSpan& span : report.spans->spans()) {
    if (span.lane == kTraceLaneRecovery) {
      recovery_span = true;
      EXPECT_GT(span.end, span.start);
    }
  }
  EXPECT_TRUE(recovery_span);
}

TEST(TrainerFaultTest, SameSeedReplaysBitIdentically) {
  auto run = [] {
    return RunTrainingSimulation(
        TrainOptionsFor("drop=0.03,seed=77,crash=3@150"));
  };
  auto first = run();
  auto second = run();
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first->report.iteration_time, second->report.iteration_time);
  EXPECT_EQ(first->report.throughput, second->report.throughput);
  EXPECT_EQ(first->report.recoveries, second->report.recoveries);
  EXPECT_EQ(first->report.recovery_time, second->report.recovery_time);
  EXPECT_EQ(first->report.failed_nodes, second->report.failed_nodes);
  for (const char* counter : {"net.drops", "net.retries",
                              "net.retransmit_bytes", "net.peer_failures",
                              "train.recoveries", "engine.graphs_cancelled"}) {
    EXPECT_EQ(first->report.metrics->counter(counter).value(),
              second->report.metrics->counter(counter).value())
        << counter;
  }
}

TEST(TrainerFaultTest, CrashRecoveryRejectsUnsupportedModes) {
  auto profile = GetModelProfile("resnet50");
  ASSERT_TRUE(profile.ok());
  SyncConfig config;
  config.num_nodes = 4;
  config.net.faults.crashes.push_back({1, FromMillis(50.0)});
  TrainOptions ssp;
  ssp.staleness = 2;
  EXPECT_EQ(SimulateTraining(*profile, config, ssp).status().code(),
            StatusCode::kInvalidArgument);
  config.sequential_collectives = true;
  EXPECT_EQ(SimulateTraining(*profile, config, {}).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace hipress
