// Integration correctness: real tensors through the full PS/Ring primitive
// chains, with and without compression.
#include <gtest/gtest.h>

#include <cmath>

#include "src/casync/dataflow.h"
#include "src/common/rng.h"
#include "src/compress/registry.h"

namespace hipress {
namespace {

std::vector<Tensor> WorkerGradients(int workers, size_t size,
                                    uint64_t seed) {
  Rng root(seed);
  std::vector<Tensor> gradients;
  for (int w = 0; w < workers; ++w) {
    Rng rng = root.Fork(static_cast<uint64_t>(w));
    Tensor tensor("g", size);
    tensor.FillGaussian(rng);
    gradients.push_back(std::move(tensor));
  }
  return gradients;
}

Tensor ExactSum(const std::vector<Tensor>& inputs) {
  Tensor sum("sum", inputs[0].size());
  for (const Tensor& input : inputs) {
    sum.Add(input);
  }
  return sum;
}

struct RawCase {
  StrategyKind strategy;
  int workers;
  int partitions;
  size_t size;
};

class RawSyncTest : public ::testing::TestWithParam<RawCase> {};

TEST_P(RawSyncTest, MatchesExactSumOnEveryNode) {
  const RawCase& param = GetParam();
  const auto inputs =
      WorkerGradients(param.workers, param.size, 42 + param.size);
  DataflowRunner runner(param.strategy, nullptr);
  auto outputs = runner.Run(inputs, param.partitions);
  ASSERT_TRUE(outputs.ok()) << outputs.status();
  const Tensor expected = ExactSum(inputs);
  for (int w = 0; w < param.workers; ++w) {
    EXPECT_LT(MaxAbsDiff((*outputs)[w].span(), expected.span()), 1e-4)
        << "worker " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RawSyncTest,
    ::testing::Values(RawCase{StrategyKind::kPs, 2, 1, 100},
                      RawCase{StrategyKind::kPs, 4, 3, 1000},
                      RawCase{StrategyKind::kPs, 8, 8, 4096},
                      RawCase{StrategyKind::kPs, 3, 7, 65},
                      RawCase{StrategyKind::kTree, 2, 1, 100},
                      RawCase{StrategyKind::kTree, 5, 3, 1000},
                      RawCase{StrategyKind::kTree, 8, 8, 4096},
                      RawCase{StrategyKind::kRing, 2, 1, 100},
                      RawCase{StrategyKind::kRing, 4, 4, 1000},
                      RawCase{StrategyKind::kRing, 8, 3, 4096},
                      RawCase{StrategyKind::kRing, 5, 5, 63}));

struct CompressedCase {
  StrategyKind strategy;
  const char* algorithm;
  int workers;
  int partitions;
};

class CompressedSyncTest : public ::testing::TestWithParam<CompressedCase> {};

TEST_P(CompressedSyncTest, ReplicasAreBitIdentical) {
  const CompressedCase& param = GetParam();
  CompressorParams codec_params;
  codec_params.sparsity_ratio = 0.05;
  auto codec = CreateCompressor(param.algorithm, codec_params);
  ASSERT_TRUE(codec.ok());
  const auto inputs = WorkerGradients(param.workers, 2048, 7);
  DataflowRunner runner(param.strategy, codec->get());
  auto outputs = runner.Run(inputs, param.partitions);
  ASSERT_TRUE(outputs.ok()) << outputs.status();
  for (int w = 1; w < param.workers; ++w) {
    EXPECT_EQ(MaxAbsDiff((*outputs)[0].span(), (*outputs)[w].span()), 0.0)
        << param.algorithm << " worker " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndTopologies, CompressedSyncTest,
    ::testing::Values(
        CompressedCase{StrategyKind::kPs, "onebit", 4, 2},
        CompressedCase{StrategyKind::kPs, "terngrad", 4, 3},
        CompressedCase{StrategyKind::kPs, "tbq", 3, 1},
        CompressedCase{StrategyKind::kPs, "dgc", 4, 2},
        CompressedCase{StrategyKind::kPs, "graddrop", 4, 2},
        CompressedCase{StrategyKind::kTree, "onebit", 4, 2},
        CompressedCase{StrategyKind::kTree, "terngrad", 5, 3},
        CompressedCase{StrategyKind::kTree, "dgc", 6, 2},
        CompressedCase{StrategyKind::kRing, "onebit", 4, 2},
        CompressedCase{StrategyKind::kRing, "terngrad", 5, 5},
        CompressedCase{StrategyKind::kRing, "tbq", 3, 2},
        CompressedCase{StrategyKind::kRing, "dgc", 4, 1},
        CompressedCase{StrategyKind::kRing, "graddrop", 4, 4}));

TEST(CompressedSyncAccuracyTest, TernGradStaysWithinAggregateGap) {
  // PS with TernGrad: each of the N-1 pushes quantizes within one gap of
  // its input, the pull adds one more stage; the total deviation from the
  // exact sum is bounded by the sum of stage gaps.
  CompressorParams params;
  params.bitwidth = 8;  // fine quantization for a tight bound
  auto codec = CreateCompressor("terngrad", params);
  ASSERT_TRUE(codec.ok());
  const int workers = 4;
  const auto inputs = WorkerGradients(workers, 4096, 21);
  DataflowRunner runner(StrategyKind::kPs, codec->get());
  auto outputs = runner.Run(inputs, 2);
  ASSERT_TRUE(outputs.ok());
  const Tensor expected = ExactSum(inputs);
  // Each worker's range is ~[-4.5, 4.5]; gap ~ 9/255 ~ 0.035. Aggregate
  // passes multiply the error; 1.0 is a comfortably tight envelope compared
  // to gradient magnitudes (~4).
  EXPECT_LT(MaxAbsDiff((*outputs)[0].span(), expected.span()), 1.0);
}

TEST(CompressedSyncAccuracyTest, OnebitPreservesAggregateSignStructure) {
  auto codec = CreateCompressor("onebit");
  ASSERT_TRUE(codec.ok());
  const int workers = 4;
  // Strongly-signed inputs: all workers agree on each element's sign.
  Rng rng(5);
  std::vector<Tensor> inputs;
  Tensor signs("s", 512);
  signs.FillGaussian(rng);
  for (int w = 0; w < workers; ++w) {
    Tensor tensor("g", 512);
    for (size_t i = 0; i < 512; ++i) {
      tensor[i] = (signs[i] >= 0 ? 1.0f : -1.0f) *
                  (0.5f + 0.5f * rng.NextFloat());
    }
    inputs.push_back(std::move(tensor));
  }
  DataflowRunner runner(StrategyKind::kRing, codec->get());
  auto outputs = runner.Run(inputs, 2);
  ASSERT_TRUE(outputs.ok());
  for (size_t i = 0; i < 512; ++i) {
    EXPECT_EQ((*outputs)[0][i] >= 0, signs[i] >= 0) << i;
  }
}

TEST(DataflowTest, RejectsMismatchedWorkerSizes) {
  std::vector<Tensor> inputs;
  inputs.emplace_back("a", 10);
  inputs.emplace_back("b", 11);
  DataflowRunner runner(StrategyKind::kPs, nullptr);
  EXPECT_FALSE(runner.Run(inputs, 1).ok());
}

TEST(DataflowTest, RejectsEmptyInput) {
  DataflowRunner runner(StrategyKind::kPs, nullptr);
  EXPECT_FALSE(runner.Run({}, 1).ok());
}

TEST(DataflowTest, MorePartitionsThanElements) {
  const auto inputs = WorkerGradients(3, 5, 11);
  DataflowRunner runner(StrategyKind::kRing, nullptr);
  auto outputs = runner.Run(inputs, 16);
  ASSERT_TRUE(outputs.ok()) << outputs.status();
  const Tensor expected = ExactSum(inputs);
  EXPECT_LT(MaxAbsDiff((*outputs)[0].span(), expected.span()), 1e-4);
}

}  // namespace
}  // namespace hipress
