#include <gtest/gtest.h>

#include "src/compll/lexer.h"

namespace hipress::compll {
namespace {

std::vector<Token> MustTokenize(const std::string& source) {
  auto tokens = Tokenize(source);
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  return std::move(tokens).value();
}

TEST(LexerTest, EmptyInputYieldsEof) {
  const auto tokens = MustTokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEof);
}

TEST(LexerTest, IdentifiersAndNumbers) {
  const auto tokens = MustTokenize("foo 42 3.5 1e3 2.5f _bar");
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "foo");
  EXPECT_EQ(tokens[1].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(tokens[1].number, 42.0);
  EXPECT_EQ(tokens[2].kind, TokenKind::kFloatLiteral);
  EXPECT_EQ(tokens[2].number, 3.5);
  EXPECT_EQ(tokens[3].kind, TokenKind::kFloatLiteral);
  EXPECT_EQ(tokens[3].number, 1000.0);
  EXPECT_EQ(tokens[4].kind, TokenKind::kFloatLiteral);
  EXPECT_EQ(tokens[4].number, 2.5);
  EXPECT_EQ(tokens[5].text, "_bar");
}

TEST(LexerTest, TwoCharOperators) {
  const auto tokens = MustTokenize("<< >> <= >= == != && ||");
  const TokenKind expected[] = {TokenKind::kShl,    TokenKind::kShr,
                                TokenKind::kLessEq, TokenKind::kGreaterEq,
                                TokenKind::kEqEq,   TokenKind::kNotEq,
                                TokenKind::kAndAnd, TokenKind::kOrOr};
  ASSERT_EQ(tokens.size(), 9u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << i;
  }
}

TEST(LexerTest, SingleCharPunctuation) {
  const auto tokens = MustTokenize("(){}[],;.=+-*/%<>&|^!");
  ASSERT_EQ(tokens.size(), 22u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kLParen);
  EXPECT_EQ(tokens[4].kind, TokenKind::kLBracket);
  EXPECT_EQ(tokens[8].kind, TokenKind::kDot);
  EXPECT_EQ(tokens[9].kind, TokenKind::kAssign);
  EXPECT_EQ(tokens[20].kind, TokenKind::kBang);
}

TEST(LexerTest, CommentsRunToEndOfLine) {
  const auto tokens = MustTokenize("a // comment with * and (\nb");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, LineContinuationIsSkipped) {
  // The paper's Figure 5 wraps lines with a trailing backslash.
  const auto tokens = MustTokenize("concat(a, \\\n b)");
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[4].text, "b");
}

TEST(LexerTest, TracksLineNumbers) {
  const auto tokens = MustTokenize("a\nb\n  c");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 3);
  EXPECT_EQ(tokens[2].column, 3);
}

TEST(LexerTest, RejectsUnknownCharacters) {
  EXPECT_FALSE(Tokenize("a @ b").ok());
  EXPECT_FALSE(Tokenize("x # y").ok());
}

TEST(LexerTest, FloatWithExponentSign) {
  const auto tokens = MustTokenize("1.5e-3 2E+4");
  EXPECT_EQ(tokens[0].number, 0.0015);
  EXPECT_EQ(tokens[1].number, 20000.0);
}

}  // namespace
}  // namespace hipress::compll
