// Real data through the simulated engine: attach buffer-moving actions to a
// PS task graph, execute it on the discrete-event cluster, and check the
// result matches (a) the exact sum for raw sync and (b) the functional
// DataflowRunner for compressed sync. This pins down that the engine's
// asynchronous, dependency-driven execution preserves the dataflow ordering
// (Figure 2's correctness property), not just the timing.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/casync/dataflow.h"
#include "src/casync/engine.h"
#include "src/common/rng.h"
#include "src/compress/registry.h"

namespace hipress {
namespace {

// Builds a one-partition PS graph by hand with actions that move real
// tensors, mirroring builder.cc's compressed structure.
struct PsDataflowFixture {
  explicit PsDataflowFixture(int workers, size_t elements,
                             const Compressor* codec)
      : codec_(codec) {
    Rng root(99);
    for (int w = 0; w < workers; ++w) {
      Rng rng = root.Fork(static_cast<uint64_t>(w));
      Tensor tensor("g", elements);
      tensor.FillGaussian(rng);
      inputs.push_back(std::move(tensor));
      outputs.emplace_back("out", elements);
    }
    aggregate.assign(elements, 0.0f);
  }

  // Graph: worker w encodes its gradient -> send -> aggregator decodes+adds
  // -> barrier -> aggregator encodes aggregate -> send -> worker decodes.
  void Build(TaskGraph* graph, int aggregator) {
    const int workers = static_cast<int>(inputs.size());
    const size_t elements = inputs[0].size();

    // Aggregator's local shard seeds the aggregate.
    SyncTask seed;
    seed.type = PrimitiveType::kMerge;
    seed.node = aggregator;
    seed.bytes = elements * 4;
    seed.action = [this, aggregator] {
      for (size_t i = 0; i < aggregate.size(); ++i) {
        aggregate[i] += inputs[aggregator][i];
      }
    };
    const TaskId seed_id = graph->Add(seed);

    SyncTask barrier;
    barrier.type = PrimitiveType::kBarrier;
    barrier.node = aggregator;
    const TaskId barrier_id = graph->Add(barrier);
    graph->AddDep(seed_id, barrier_id);

    for (int w = 0; w < workers; ++w) {
      if (w == aggregator) {
        continue;
      }
      SyncTask enc;
      enc.type = PrimitiveType::kEncode;
      enc.node = w;
      enc.bytes = elements * 4;
      enc.action = [this, w] {
        ASSERT_TRUE(codec_->Encode(inputs[w].span(), &push_wire[w]).ok());
      };
      const TaskId enc_id = graph->Add(enc);

      SyncTask send;
      send.type = PrimitiveType::kSend;
      send.node = w;
      send.peer = aggregator;
      send.bytes = 64;
      const TaskId send_id = graph->Add(send);
      graph->AddDep(enc_id, send_id);

      SyncTask dec;
      dec.type = PrimitiveType::kDecode;
      dec.node = aggregator;
      dec.bytes = elements * 4;
      dec.action = [this, w] {
        ASSERT_TRUE(
            codec_->DecodeAdd(push_wire[w], std::span<float>(aggregate))
                .ok());
      };
      const TaskId dec_id = graph->Add(dec);
      graph->AddDep(send_id, dec_id);
      graph->AddDep(dec_id, barrier_id);
    }

    SyncTask enc_back;
    enc_back.type = PrimitiveType::kEncode;
    enc_back.node = aggregator;
    enc_back.bytes = elements * 4;
    enc_back.action = [this] {
      ASSERT_TRUE(
          codec_->Encode(std::span<const float>(aggregate), &pull_wire)
              .ok());
    };
    const TaskId enc_back_id = graph->Add(enc_back);
    graph->AddDep(barrier_id, enc_back_id);

    for (int w = 0; w < workers; ++w) {
      SyncTask dec;
      dec.type = PrimitiveType::kDecode;
      dec.node = w;
      dec.bytes = elements * 4;
      dec.action = [this, w] {
        ASSERT_TRUE(codec_->Decode(pull_wire, outputs[w].span()).ok());
      };
      const TaskId dec_id = graph->Add(dec);
      if (w == aggregator) {
        // Co-located replica: decodes the local buffer, no network hop.
        graph->AddDep(enc_back_id, dec_id);
        continue;
      }
      SyncTask send;
      send.type = PrimitiveType::kSend;
      send.node = aggregator;
      send.peer = w;
      send.bytes = 64;
      const TaskId send_id = graph->Add(send);
      graph->AddDep(enc_back_id, send_id);
      graph->AddDep(send_id, dec_id);
    }
  }

  const Compressor* codec_;
  std::vector<Tensor> inputs;
  std::vector<Tensor> outputs;
  std::vector<float> aggregate;
  std::map<int, ByteBuffer> push_wire;
  ByteBuffer pull_wire;
};

TEST(EngineDataflowTest, CompressedPsThroughEngineMatchesDataflowRunner) {
  const int workers = 4;
  const size_t elements = 512;
  auto codec = CreateCompressor("onebit");
  ASSERT_TRUE(codec.ok());

  PsDataflowFixture fixture(workers, elements, codec->get());

  SyncConfig config;
  config.strategy = StrategyKind::kPs;
  config.num_nodes = workers;
  config.compression = true;
  config.algorithm = "onebit";
  config.bulk = false;

  Simulator sim;
  Network net(&sim, workers, config.net);
  std::vector<std::unique_ptr<GpuDevice>> storage;
  std::vector<GpuDevice*> gpus;
  for (int node = 0; node < workers; ++node) {
    storage.push_back(std::make_unique<GpuDevice>(&sim, node));
    gpus.push_back(storage.back().get());
  }
  CaSyncEngine engine(&sim, &net, gpus, config);

  TaskGraph graph;
  fixture.Build(&graph, /*aggregator=*/1);
  ASSERT_TRUE(graph.IsAcyclic());
  bool done = false;
  engine.Execute(&graph, [&] { done = true; });
  sim.Run();
  ASSERT_TRUE(done);

  // Functional reference: one-partition PS with the same codec. The
  // aggregation order may differ, but onebit's decode values depend only
  // on the set of pushed payloads, which are identical.
  DataflowRunner runner(StrategyKind::kPs, codec->get());
  // Align the reference's aggregator choice (partition 0 -> node 0) by
  // comparing decoded values rather than byte layouts: all replicas must
  // agree with decode(encode(aggregate)).
  std::vector<float> expected(elements, 0.0f);
  for (int w = 0; w < workers; ++w) {
    if (w == 1) {
      continue;
    }
    ByteBuffer wire;
    ASSERT_TRUE(codec->get()->Encode(fixture.inputs[w].span(), &wire).ok());
    ASSERT_TRUE(
        codec->get()->DecodeAdd(wire, std::span<float>(expected)).ok());
  }
  for (size_t i = 0; i < elements; ++i) {
    expected[i] += fixture.inputs[1][i];
  }
  ByteBuffer expected_wire;
  ASSERT_TRUE(
      codec->get()->Encode(std::span<const float>(expected), &expected_wire)
          .ok());
  std::vector<float> expected_out(elements);
  ASSERT_TRUE(codec->get()->Decode(expected_wire, expected_out).ok());

  for (int w = 0; w < workers; ++w) {
    EXPECT_EQ(MaxAbsDiff(fixture.outputs[w].span(),
                         std::span<const float>(expected_out)),
              0.0)
        << "worker " << w;
  }
}

TEST(EngineDataflowTest, ActionsNeverRunBeforeDependencies) {
  // Randomized DAG property: record completion order; every edge must be
  // respected, across many random graphs and seeds.
  Rng rng(1234);
  for (int trial = 0; trial < 25; ++trial) {
    SyncConfig config;
    config.num_nodes = 4;
    config.bulk = (trial % 2) == 0;
    config.pipelining = (trial % 3) != 0;

    Simulator sim;
    Network net(&sim, 4, config.net);
    std::vector<std::unique_ptr<GpuDevice>> storage;
    std::vector<GpuDevice*> gpus;
    for (int node = 0; node < 4; ++node) {
      storage.push_back(std::make_unique<GpuDevice>(&sim, node));
      gpus.push_back(storage.back().get());
    }
    CaSyncEngine engine(&sim, &net, gpus, config);

    TaskGraph graph;
    std::vector<int> completion_order;
    const int num_tasks = 30;
    for (int t = 0; t < num_tasks; ++t) {
      SyncTask task;
      const int kind = static_cast<int>(rng.NextBounded(4));
      task.node = static_cast<int>(rng.NextBounded(4));
      switch (kind) {
        case 0:
          task.type = PrimitiveType::kEncode;
          task.bytes = rng.NextBounded(1 << 20);
          break;
        case 1:
          task.type = PrimitiveType::kDecode;
          task.bytes = rng.NextBounded(1 << 20);
          break;
        case 2:
          task.type = PrimitiveType::kSend;
          task.peer = (task.node + 1 + static_cast<int>(rng.NextBounded(3))) % 4;
          task.bytes = rng.NextBounded(1 << 16) + 1;
          break;
        default:
          task.type = PrimitiveType::kBarrier;
          break;
      }
      task.action = [&completion_order, t] { completion_order.push_back(t); };
      graph.Add(task);
    }
    // Random forward edges (i -> j with i < j keeps it acyclic).
    std::vector<std::pair<int, int>> edges;
    for (int e = 0; e < 40; ++e) {
      const int a = static_cast<int>(rng.NextBounded(num_tasks - 1));
      const int b =
          a + 1 + static_cast<int>(rng.NextBounded(num_tasks - a - 1));
      graph.AddDep(static_cast<TaskId>(a), static_cast<TaskId>(b));
      edges.emplace_back(a, b);
    }
    ASSERT_TRUE(graph.IsAcyclic());

    bool done = false;
    engine.Execute(&graph, [&] { done = true; });
    sim.Run();
    ASSERT_TRUE(done) << "trial " << trial;
    ASSERT_EQ(completion_order.size(), static_cast<size_t>(num_tasks));

    std::vector<int> position(num_tasks);
    for (int i = 0; i < num_tasks; ++i) {
      position[completion_order[i]] = i;
    }
    for (const auto& [from, to] : edges) {
      EXPECT_LT(position[from], position[to])
          << "trial " << trial << " edge " << from << "->" << to;
    }
  }
}

}  // namespace
}  // namespace hipress
