// Interpreter semantics beyond the algorithm round trips: coercions,
// element assignment, buffer concatenation, extension operators, and error
// paths.
#include <gtest/gtest.h>

#include <cmath>

#include "src/compll/interpreter.h"
#include "src/compll/parser.h"

namespace hipress::compll {
namespace {

Program MustParse(const std::string& source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

double Call1(const std::string& source, const std::string& fn, double arg) {
  Program program = MustParse(source);
  Interpreter interpreter(&program);
  auto result = interpreter.CallFunction(fn, {Value::Float(arg)});
  EXPECT_TRUE(result.ok()) << result.status();
  return result->scalar;
}

TEST(SemanticsTest, DeclarationCoercesToDeclaredType) {
  EXPECT_EQ(Call1(R"(
float f(float x) {
  int32 t = x;
  return t;
}
)",
                  "f", 3.9),
            3.0);  // truncation toward zero
  EXPECT_EQ(Call1(R"(
float f(float x) {
  uint4 t = x;
  return t;
}
)",
                  "f", 20.0),
            4.0);  // 20 mod 16
}

TEST(SemanticsTest, AssignmentPreservesSlotType) {
  // `t` is declared uint2; later assignments keep wrapping.
  EXPECT_EQ(Call1(R"(
float f(float x) {
  uint2 t = 0;
  t = x;
  return t;
}
)",
                  "f", 7.0),
            3.0);
}

TEST(SemanticsTest, NegativeFloatsTruncateTowardZero) {
  EXPECT_EQ(Call1(R"(
float f(float x) {
  int32 t = x;
  return t;
}
)",
                  "f", -3.7),
            -3.0);
}

TEST(SemanticsTest, ElementAssignmentWritesThroughArray) {
  Program program = MustParse(R"(
void encode(float* gradient, uint8* compressed) {
  gradient[0] = 42;
  gradient[2] = gradient[0] + 1;
  compressed = concat(gradient);
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)");
  Interpreter interpreter(&program);
  std::vector<float> input = {1, 2, 3};
  auto encoded = interpreter.RunEncode(input, {});
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  auto decoded = interpreter.RunDecode(*encoded, {});
  ASSERT_TRUE(decoded.ok());
  EXPECT_FLOAT_EQ((*decoded)[0], 42.0f);
  EXPECT_FLOAT_EQ((*decoded)[1], 2.0f);
  EXPECT_FLOAT_EQ((*decoded)[2], 43.0f);
}

TEST(SemanticsTest, ElementAssignmentOutOfRangeErrors) {
  Program program = MustParse(R"(
void encode(float* gradient, uint8* compressed) {
  gradient[99] = 1;
  compressed = concat(gradient);
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)");
  Interpreter interpreter(&program);
  std::vector<float> input = {1, 2, 3};
  EXPECT_FALSE(interpreter.RunEncode(input, {}).ok());
}

TEST(SemanticsTest, IndexReadOutOfRangeErrors) {
  Program program = MustParse(R"(
void encode(float* gradient, uint8* compressed) {
  float x = gradient[gradient.size];
  compressed = concat(x);
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)");
  Interpreter interpreter(&program);
  std::vector<float> input = {1, 2};
  EXPECT_FALSE(interpreter.RunEncode(input, {}).ok());
}

TEST(SemanticsTest, ScatterRejectsBadIndices) {
  Program program = MustParse(R"(
void encode(float* gradient, uint8* compressed) {
  compressed = concat(gradient);
}
void decode(uint8* compressed, float* gradient) {
  float* vals = extract<float*>(compressed);
  gradient = scatter(vals, vals, 1);
}
)");
  Interpreter interpreter(&program);
  RegisterStandardExtensions(interpreter);
  std::vector<float> input = {5, 6};  // index 5 and 6 out of range for n=1
  auto encoded = interpreter.RunEncode(input, {});
  ASSERT_TRUE(encoded.ok());
  EXPECT_FALSE(interpreter.RunDecode(*encoded, {}).ok());
}

TEST(SemanticsTest, LogicalOperatorsShortCircuitSemantics) {
  // Values, not short-circuit evaluation (no side effects in the DSL).
  EXPECT_EQ(Call1(R"(
float f(float x) {
  if (x > 0 && x < 10) { return 1; }
  if (x < 0 || x > 100) { return 2; }
  return 3;
}
)",
                  "f", 5.0),
            1.0);
  EXPECT_EQ(Call1(R"(
float f(float x) {
  if (x > 0 && x < 10) { return 1; }
  if (x < 0 || x > 100) { return 2; }
  return 3;
}
)",
                  "f", 500.0),
            2.0);
}

TEST(SemanticsTest, UnaryNotAndMinus) {
  EXPECT_EQ(Call1("float f(float x) { return !x; }", "f", 0.0), 1.0);
  EXPECT_EQ(Call1("float f(float x) { return !x; }", "f", 2.0), 0.0);
  EXPECT_EQ(Call1("float f(float x) { return -x; }", "f", 2.5), -2.5);
}

TEST(SemanticsTest, DivisionAndModuloByZeroError) {
  Program int_div = MustParse("float f(float x) { return 1 / 0; }");
  Interpreter interpreter(&int_div);
  EXPECT_FALSE(interpreter.CallFunction("f", {Value::Float(0)}).ok());
  Program mod = MustParse("float f(float x) { return 1 % 0; }");
  Interpreter mod_interp(&mod);
  EXPECT_FALSE(mod_interp.CallFunction("f", {Value::Float(0)}).ok());
}

TEST(SemanticsTest, FloatDivisionByZeroIsInfinity) {
  const double v = Call1("float f(float x) { return x / 0.0; }", "f", 1.0);
  EXPECT_TRUE(std::isinf(v));
}

TEST(SemanticsTest, GlobalsPersistAcrossUdfCalls) {
  Program program = MustParse(R"(
float counter;
float bump(float x) {
  counter = counter + 1;
  return counter;
}
void encode(float* gradient, uint8* compressed) {
  float a = bump(0);
  float b = bump(0);
  compressed = concat(a, b, counter);
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)");
  Interpreter interpreter(&program);
  std::vector<float> input = {0.0f};
  auto encoded = interpreter.RunEncode(input, {});
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  auto decoded = interpreter.RunDecode(*encoded, {});
  ASSERT_TRUE(decoded.ok());
  EXPECT_FLOAT_EQ((*decoded)[0], 1.0f);
  EXPECT_FLOAT_EQ((*decoded)[1], 2.0f);
  EXPECT_FLOAT_EQ((*decoded)[2], 2.0f);
}

TEST(SemanticsTest, RandomInMapIsIndexKeyed) {
  // Two encodes of the same input give identical payloads: randomness is
  // keyed on (seed, element index), not on a mutating stream.
  Program program = MustParse(R"(
float jitter(float x) {
  return x + random<float>(0, 1);
}
void encode(float* gradient, uint8* compressed) {
  float* j = map(gradient, jitter);
  compressed = concat(j);
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)");
  Interpreter interpreter(&program);
  std::vector<float> input(32, 1.0f);
  auto a = interpreter.RunEncode(input, {});
  auto b = interpreter.RunEncode(input, {});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(SemanticsTest, ExtensionRegistrationConflictsAreRejected) {
  Program program = MustParse("float f(float x) { return x; }");
  Interpreter interpreter(&program);
  ASSERT_TRUE(interpreter
                  .RegisterOperator("twice",
                                    [](std::vector<Value>& args) {
                                      return StatusOr<Value>(Value::Float(
                                          args[0].scalar * 2));
                                    })
                  .ok());
  EXPECT_FALSE(interpreter
                   .RegisterOperator("twice",
                                     [](std::vector<Value>& args) {
                                       return StatusOr<Value>(
                                           Value::Float(0));
                                     })
                   .ok());
}

}  // namespace
}  // namespace hipress::compll
