// Engine timing semantics: dependency-driven execution, pipelining vs
// serialized sync paths, bulk coordination, and completion callbacks.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/casync/builder.h"
#include "src/casync/coordinator.h"
#include "src/casync/engine.h"

namespace hipress {
namespace {

struct Cluster {
  explicit Cluster(const SyncConfig& config) : net(&sim, config.num_nodes, config.net) {
    for (int node = 0; node < config.num_nodes; ++node) {
      gpu_storage.push_back(std::make_unique<GpuDevice>(&sim, node));
      gpus.push_back(gpu_storage.back().get());
    }
    engine = std::make_unique<CaSyncEngine>(&sim, &net, gpus, config);
  }

  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<GpuDevice>> gpu_storage;
  std::vector<GpuDevice*> gpus;
  std::unique_ptr<CaSyncEngine> engine;
};

SyncConfig TestConfig(int nodes) {
  SyncConfig config;
  config.strategy = StrategyKind::kPs;
  config.num_nodes = nodes;
  config.compression = true;
  config.algorithm = "onebit";
  config.net.link_bandwidth = Bandwidth::Gbps(80.0);
  config.net.latency = FromMicros(10.0);
  config.net.per_message_overhead = FromMicros(2.0);
  config.bulk = false;
  return config;
}

TEST(EngineTest, EmptyGraphCompletesImmediately) {
  SyncConfig config = TestConfig(2);
  Cluster cluster(config);
  TaskGraph graph;
  bool done = false;
  cluster.engine->Execute(&graph, [&] { done = true; });
  EXPECT_TRUE(done);
}

TEST(EngineTest, DependenciesGateExecution) {
  SyncConfig config = TestConfig(2);
  Cluster cluster(config);
  TaskGraph graph;
  SyncTask encode;
  encode.type = PrimitiveType::kEncode;
  encode.node = 0;
  encode.bytes = 1'000'000;
  const TaskId enc = graph.Add(encode);
  SyncTask send;
  send.type = PrimitiveType::kSend;
  send.node = 0;
  send.peer = 1;
  send.bytes = 31250;
  const TaskId snd = graph.Add(send);
  graph.AddDep(enc, snd);

  SimTime done_at = -1;
  cluster.engine->Execute(&graph, [&] { done_at = cluster.sim.now(); });
  cluster.sim.Run();
  // encode: 15us overhead + 1MB at 120 GB/s (~8.3us); send: 2us + ~3.9us
  // serialize + 10us latency. Total ~39us; assert ordering-critical lower
  // bound (send cannot start before encode completes).
  const SimTime encode_time =
      GetCodecSpeed("onebit", CodecImpl::kCompLL, GpuPlatform::kV100)
          .encode.Time(1'000'000);
  EXPECT_GE(done_at, encode_time + cluster.net.UncontendedSendTime(31250));
}

TEST(EngineTest, ActionsRunOnCompletion) {
  SyncConfig config = TestConfig(2);
  Cluster cluster(config);
  TaskGraph graph;
  std::vector<int> order;
  SyncTask first;
  first.type = PrimitiveType::kMerge;
  first.node = 0;
  first.bytes = 1000;
  first.action = [&] { order.push_back(1); };
  const TaskId a = graph.Add(first);
  SyncTask second;
  second.type = PrimitiveType::kBarrier;
  second.node = 0;
  second.action = [&] { order.push_back(2); };
  const TaskId b = graph.Add(second);
  graph.AddDep(a, b);
  cluster.engine->Execute(&graph, std::function<void()>());
  cluster.sim.Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(EngineTest, PipeliningOverlapsKernelsAndTransfers) {
  // Several encode->send chains while the device runs backward compute.
  // With pipelining, kernels use the dedicated stream and overlap both the
  // backward block and the transfers; without it they queue behind the
  // backward computation (the OSS integration), finishing much later.
  auto run = [](bool pipelining) {
    SyncConfig config = TestConfig(2);
    config.pipelining = pipelining;
    Cluster cluster(config);
    cluster.gpus[0]->SubmitCompute(FromMillis(5.0), [] {});
    TaskGraph graph;
    for (int i = 0; i < 4; ++i) {
      SyncTask encode;
      encode.type = PrimitiveType::kEncode;
      encode.node = 0;
      encode.bytes = 8'000'000;
      const TaskId enc = graph.Add(encode);
      SyncTask send;
      send.type = PrimitiveType::kSend;
      send.node = 0;
      send.peer = 1;
      send.bytes = 250'000;
      const TaskId snd = graph.Add(send);
      graph.AddDep(enc, snd);
    }
    SimTime done_at = 0;
    cluster.engine->Execute(&graph, [&] { done_at = cluster.sim.now(); });
    cluster.sim.Run();
    return done_at;
  };
  const SimTime with_pipelining = run(true);
  const SimTime without_pipelining = run(false);
  EXPECT_LT(with_pipelining, without_pipelining);
}

TEST(EngineTest, ExtraCopyOverheadDelaysSends) {
  auto run = [](SimTime copy_overhead) {
    SyncConfig config = TestConfig(2);
    config.extra_copy_overhead = copy_overhead;
    Cluster cluster(config);
    TaskGraph graph;
    SyncTask send;
    send.type = PrimitiveType::kSend;
    send.node = 0;
    send.peer = 1;
    send.bytes = 1000;
    graph.Add(send);
    SimTime done_at = 0;
    cluster.engine->Execute(&graph, [&] { done_at = cluster.sim.now(); });
    cluster.sim.Run();
    return done_at;
  };
  EXPECT_EQ(run(FromMicros(100)) - run(0), FromMicros(100));
}

TEST(EngineTest, ConcurrentGraphsShareResources) {
  SyncConfig config = TestConfig(2);
  Cluster cluster(config);
  TaskGraph a;
  TaskGraph b;
  for (TaskGraph* graph : {&a, &b}) {
    SyncTask send;
    send.type = PrimitiveType::kSend;
    send.node = 0;
    send.peer = 1;
    send.bytes = 10'000'000;  // 1ms serialization each
    graph->Add(send);
  }
  std::vector<SimTime> done;
  cluster.engine->Execute(&a, [&] { done.push_back(cluster.sim.now()); });
  cluster.engine->Execute(&b, [&] { done.push_back(cluster.sim.now()); });
  cluster.sim.Run();
  ASSERT_EQ(done.size(), 2u);
  // Same uplink: second completes a full serialization later.
  EXPECT_GE(done[1] - done[0], FromMillis(1));
}

TEST(EngineTest, EndToEndPsGraphCompletes) {
  SyncConfig config = TestConfig(4);
  Cluster cluster(config);
  GradientSync gradient;
  gradient.id = 3;
  gradient.bytes = 4 * kMiB;
  gradient.compress = true;
  gradient.partitions = 2;
  gradient.rate = 1.0 / 32;
  TaskGraph graph;
  AppendPsSyncTasks(config, gradient, &graph);
  SimTime done_at = 0;
  cluster.engine->Execute(&graph, [&] { done_at = cluster.sim.now(); });
  cluster.sim.Run();
  EXPECT_GT(done_at, 0);
}

TEST(EngineTest, EndToEndRingGraphCompletes) {
  SyncConfig config = TestConfig(4);
  config.strategy = StrategyKind::kRing;
  Cluster cluster(config);
  GradientSync gradient;
  gradient.id = 1;
  gradient.bytes = 4 * kMiB;
  gradient.compress = true;
  gradient.partitions = 4;
  gradient.rate = 1.0 / 32;
  TaskGraph graph;
  AppendRingSyncTasks(config, gradient, &graph);
  SimTime done_at = 0;
  cluster.engine->Execute(&graph, [&] { done_at = cluster.sim.now(); });
  cluster.sim.Run();
  EXPECT_GT(done_at, 0);
}

TEST(EngineTest, CompressionReducesRingSyncTimeForLargeGradients) {
  auto run = [](bool compress) {
    SyncConfig config = TestConfig(8);
    config.strategy = StrategyKind::kRing;
    Cluster cluster(config);
    GradientSync gradient;
    gradient.bytes = 128 * kMiB;
    gradient.compress = compress;
    gradient.partitions = 8;
    gradient.rate = 1.0 / 32;
    TaskGraph graph;
    AppendRingSyncTasks(config, gradient, &graph);
    SimTime done_at = 0;
    cluster.engine->Execute(&graph, [&] { done_at = cluster.sim.now(); });
    cluster.sim.Run();
    return done_at;
  };
  // 128 MB over 10 GB/s links: compression (1/32 wire volume) must win big.
  EXPECT_LT(run(true) * 4, run(false));
}

// ------------------------------------------------------------- coordinator

TEST(CoordinatorTest, IdleLinkFlushesImmediately) {
  // Work-conserving rule: nothing in flight means nothing to batch
  // against, so the transfer leaves at once.
  Simulator sim;
  NetworkConfig net_config;
  Network net(&sim, 2, net_config);
  BulkCoordinator coordinator(&sim, &net, 1 * kMiB, FromMillis(10.0));
  SimTime delivered_at = -1;
  coordinator.Enqueue(0, 1, 100, [&] { delivered_at = sim.now(); });
  sim.Run();
  EXPECT_LT(delivered_at, FromMillis(1.0));
}

TEST(CoordinatorTest, BatchesSmallTransfersUnderBackpressure) {
  Simulator sim;
  NetworkConfig net_config;
  net_config.link_bandwidth = Bandwidth::Gbps(80.0);
  net_config.per_message_overhead = FromMicros(50.0);  // expensive messages
  Network net(&sim, 2, net_config);
  BulkCoordinator coordinator(&sim, &net, 1 * kMiB, FromMicros(100.0));
  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    coordinator.Enqueue(0, 1, 1000, [&] { ++delivered; });
  }
  sim.Run();
  EXPECT_EQ(delivered, 10);
  // First transfer leaves alone (idle link); the rest batch behind it.
  EXPECT_EQ(coordinator.batches_sent(), 2u);
  EXPECT_EQ(net.messages_delivered(), 2u);
}

TEST(CoordinatorTest, SizeThresholdFlushesEarly) {
  Simulator sim;
  NetworkConfig net_config;
  net_config.link_bandwidth = Bandwidth::Gbps(1.0);  // slow: keep link busy
  Network net(&sim, 2, net_config);
  BulkCoordinator coordinator(&sim, &net, 10'000, FromMillis(50.0));
  int delivered = 0;
  coordinator.Enqueue(0, 1, 100'000, [&] { ++delivered; });  // occupies link
  coordinator.Enqueue(0, 1, 9'000, [&] { ++delivered; });
  coordinator.Enqueue(0, 1, 9'000, [&] { ++delivered; });
  // The 10'000 threshold rounds up to its 16384-byte pool bucket; 18'000
  // queued bytes cross it and flush the pending batch without waiting for
  // the 50 ms timeout.
  sim.RunUntil(FromMillis(2.0));
  EXPECT_EQ(delivered, 3);
}

TEST(CoordinatorTest, ThresholdRoundsUpToBucketCapacity) {
  // Bucket-aligned sizing: a size-triggered flush should fill a whole
  // BufferPool bucket so the frame lands in a recycled block. The
  // configured threshold therefore rounds up to BucketCapacity.
  Simulator sim;
  NetworkConfig net_config;
  net_config.link_bandwidth = Bandwidth::Gbps(1.0);  // keep the link busy
  Network net(&sim, 2, net_config);
  BulkCoordinator coordinator(&sim, &net, 10'000, FromMillis(50.0));
  EXPECT_EQ(coordinator.size_threshold(), BufferPool::BucketCapacity(10'000));
  EXPECT_EQ(coordinator.size_threshold(), 16'384u);
  // An already-bucket-aligned threshold is unchanged.
  BulkCoordinator aligned(&sim, &net, 8 * kMiB, FromMillis(50.0));
  EXPECT_EQ(aligned.size_threshold(), 8 * kMiB);

  int delivered = 0;
  coordinator.Enqueue(0, 1, 100'000, [&] { ++delivered; });  // occupies link
  // 12'000 bytes crossed the configured 10'000 but not the bucket-rounded
  // threshold: the batch must keep queueing.
  coordinator.Enqueue(0, 1, 6'000, [&] { ++delivered; });
  coordinator.Enqueue(0, 1, 6'000, [&] { ++delivered; });
  sim.RunUntil(FromMillis(2.0));
  EXPECT_EQ(delivered, 1);
  // Crossing the bucket boundary (18'000 >= 16'384) flushes.
  coordinator.Enqueue(0, 1, 6'000, [&] { ++delivered; });
  sim.RunUntil(FromMillis(4.0));
  EXPECT_EQ(delivered, 4);
  sim.Run();
}

TEST(CoordinatorTest, BucketWasteAccountsFramePadding) {
  // The waste metric records the padding between each flushed batch and
  // the pool bucket it occupies.
  Simulator sim;
  NetworkConfig net_config;
  Network net(&sim, 2, net_config);
  MetricsRegistry metrics;
  BulkCoordinator coordinator(&sim, &net, 1 * kMiB, FromMicros(100.0),
                              &metrics);
  // Idle link: the metadata-only transfer flushes alone as a 6'000-byte
  // batch, occupying an 8192-byte bucket -> 2192 bytes of padding.
  coordinator.Enqueue(0, 1, 6'000, [] {});
  sim.Run();
  EXPECT_EQ(coordinator.bucket_waste_bytes(), 8192u - 6'000u);
  EXPECT_EQ(
      static_cast<uint64_t>(
          metrics.counter("coordinator.batch_bucket_waste_bytes").value()),
      coordinator.bucket_waste_bytes());

  // A payload batch accounts the *frame* (payload + headers): 4-byte count
  // + 12-byte entry header + 2048 payload bytes = 2064 -> 4096 bucket.
  auto payload = MakePooledPayload(std::vector<uint8_t>(2048, 0xAB));
  const uint64_t before = coordinator.bucket_waste_bytes();
  bool delivered = false;
  coordinator.EnqueueTransfer(
      1, 0, /*tag=*/7, payload,
      [&](std::span<const uint8_t> bytes) {
        delivered = true;
        EXPECT_EQ(bytes.size(), 2048u);
      },
      [](const Status& status) { EXPECT_TRUE(status.ok()); });
  sim.Run();
  EXPECT_TRUE(delivered);
  EXPECT_EQ(coordinator.bucket_waste_bytes() - before, 4096u - 2064u);
}

TEST(CoordinatorTest, BatchedPayloadsDeliverBitIdentical) {
  // Several pooled payloads batched behind a busy link arrive in one
  // frame, each dispatched to its own on_deliver with its exact bytes.
  Simulator sim;
  NetworkConfig net_config;
  net_config.link_bandwidth = Bandwidth::Gbps(1.0);  // keep the link busy
  Network net(&sim, 2, net_config);
  BulkCoordinator coordinator(&sim, &net, 64 * kKiB, FromMicros(200.0));
  coordinator.Enqueue(0, 1, 100'000, [] {});  // occupies the link
  std::vector<std::vector<uint8_t>> sent;
  std::vector<std::vector<uint8_t>> received(3);
  int completions = 0;
  for (int i = 0; i < 3; ++i) {
    sent.emplace_back(static_cast<size_t>(100 + 37 * i),
                      static_cast<uint8_t>(0x11 * (i + 1)));
    coordinator.EnqueueTransfer(
        0, 1, /*tag=*/static_cast<uint64_t>(i),
        MakePooledPayload(sent.back(), net.wire_pool()),
        [&received, i](std::span<const uint8_t> bytes) {
          received[i].assign(bytes.begin(), bytes.end());
        },
        [&](const Status& status) {
          EXPECT_TRUE(status.ok());
          ++completions;
        });
  }
  sim.Run();
  EXPECT_EQ(completions, 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(received[i], sent[i]) << "payload " << i;
  }
  // All three payloads travelled as one batch frame.
  EXPECT_EQ(coordinator.batches_sent(), 2u);
}

TEST(BatchFrameReaderDeathTest, TruncatedFrameAborts) {
  // ReadAt-style hardening: parsing must CHECK, not read out of bounds,
  // when a frame is shorter than its own headers claim.
  // Frame declaring one entry of 100 bytes, then cut off after the entry
  // header: Next() must abort on the missing payload.
  std::vector<uint8_t> frame;
  const uint32_t count = 1;
  const uint64_t tag = 42;
  const uint32_t len = 100;
  auto append = [&frame](const void* p, size_t n) {
    const auto* bytes = static_cast<const uint8_t*>(p);
    frame.insert(frame.end(), bytes, bytes + n);
  };
  append(&count, sizeof(count));
  append(&tag, sizeof(tag));
  append(&len, sizeof(len));
  BatchFrameReader reader(frame);
  EXPECT_EQ(reader.entry_count(), 1u);
  EXPECT_DEATH(reader.Next(), "overruns frame");

  // A frame too short for even the entry count aborts at construction.
  std::vector<uint8_t> stub(2, 0);
  EXPECT_DEATH(BatchFrameReader{stub}, "overruns frame");

  // Reading past the declared entry count aborts too.
  const uint32_t zero = 0;
  frame.clear();
  append(&zero, sizeof(zero));
  BatchFrameReader empty(frame);
  EXPECT_DEATH(empty.Next(), "past the 0 entries");
}

TEST(CoordinatorTest, TimeoutFlushesSmallBatchBehindBusyLink) {
  Simulator sim;
  NetworkConfig net_config;
  net_config.link_bandwidth = Bandwidth::Gbps(1.0);
  Network net(&sim, 2, net_config);
  BulkCoordinator coordinator(&sim, &net, 1 * kMiB, FromMicros(200.0));
  SimTime delivered_at = -1;
  coordinator.Enqueue(0, 1, 100'000, [] {});  // occupies the link ~800us
  coordinator.Enqueue(0, 1, 100, [&] { delivered_at = sim.now(); });
  sim.Run();
  // The small transfer waited for the timeout (not the full first message).
  EXPECT_GE(delivered_at, FromMicros(200.0));
}

TEST(CoordinatorTest, StaleTimeoutIgnoredAfterSizeTriggeredFlush) {
  // The timeout-vs-threshold race: a batch timeout armed for queue
  // generation E must not flush the queue after a size-triggered flush
  // advanced it to E+1 — otherwise a later batch gets cut short by a
  // timer belonging to transfers long gone (flush_epoch guard).
  Simulator sim;
  NetworkConfig net_config;
  net_config.link_bandwidth = Bandwidth::Gbps(1.0);  // keep the link busy
  Network net(&sim, 2, net_config);
  BulkCoordinator coordinator(&sim, &net, 10'000, FromMicros(200.0));
  // Occupies the link for ~800us so everything below queues.
  coordinator.Enqueue(0, 1, 100'000, [] {});
  // Arms the batch timeout for t=200us (epoch E).
  coordinator.Enqueue(0, 1, 100, [] {});
  // t=50us: threshold reached -> size-triggered flush, epoch becomes E+1.
  sim.Schedule(FromMicros(50.0), [&] {
    coordinator.Enqueue(0, 1, 20'000, [] {});
  });
  // t=60us: a fresh transfer arms its own timeout for t=260us.
  sim.Schedule(FromMicros(60.0), [&] {
    coordinator.Enqueue(0, 1, 100, [] {});
  });
  // At t=250us the stale epoch-E timeout (t=200us) has fired; the fresh
  // transfer must still be queued.
  sim.RunUntil(FromMicros(250.0));
  EXPECT_EQ(coordinator.batches_sent(), 2u);
  // Its own timeout at t=260us flushes it.
  sim.RunUntil(FromMicros(300.0));
  EXPECT_EQ(coordinator.batches_sent(), 3u);
  sim.Run();
}

TEST(CoordinatorTest, DistinctLinksBatchIndependently) {
  Simulator sim;
  NetworkConfig net_config;
  Network net(&sim, 3, net_config);
  BulkCoordinator coordinator(&sim, &net, 1000, FromMicros(100.0));
  int delivered = 0;
  coordinator.Enqueue(0, 1, 600, [&] { ++delivered; });
  coordinator.Enqueue(0, 2, 600, [&] { ++delivered; });
  sim.Run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(coordinator.batches_sent(), 2u);
}

}  // namespace
}  // namespace hipress
