// Interpreter semantics: operator behaviour, the five built-in DSL
// algorithms end-to-end, and cross-validation of the DSL implementations
// against the hand-optimized native codecs.
#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/compll/builtin_algorithms.h"
#include "src/compll/dsl_compressor.h"
#include "src/compll/interpreter.h"
#include "src/compll/parser.h"
#include <fstream>
#include <sstream>

#include "src/compress/registry.h"
#include "src/tensor/tensor.h"

namespace hipress::compll {
namespace {

Program MustParse(const std::string& source) {
  auto program = ParseProgram(source);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).value();
}

Tensor RandomGradient(size_t size, uint64_t seed) {
  Rng rng(seed);
  Tensor tensor("g", size);
  tensor.FillGaussian(rng);
  return tensor;
}

// --------------------------------------------------------- call semantics

TEST(InterpreterTest, CallsUserFunction) {
  Program program = MustParse(R"(
float add3(float a, float b, float c) {
  return a + b + c;
}
)");
  Interpreter interpreter(&program);
  auto result = interpreter.CallFunction(
      "add3", {Value::Float(1), Value::Float(2), Value::Float(3)});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(result->scalar, 6.0);
}

TEST(InterpreterTest, IntegerAndFloatArithmetic) {
  Program program = MustParse(R"(
float f(float x) {
  return (7 / 2) + x / 2;
}
)");
  Interpreter interpreter(&program);
  auto result = interpreter.CallFunction("f", {Value::Float(1.0)});
  ASSERT_TRUE(result.ok());
  // 7/2 is integer division (3); 1.0/2 is float (0.5).
  EXPECT_DOUBLE_EQ(result->scalar, 3.5);
}

TEST(InterpreterTest, ShiftAndModulo) {
  Program program = MustParse(R"(
float f(int32 b) {
  return ((1 << b) - 1) + (10 % 4) * 100;
}
)");
  Interpreter interpreter(&program);
  auto result = interpreter.CallFunction("f", {Value::Int(3)});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->scalar, 7 + 200);
}

TEST(InterpreterTest, SubByteReturnTypesWrap) {
  Program program = MustParse(R"(
uint2 f(float x) {
  return x;
}
)");
  Interpreter interpreter(&program);
  auto result = interpreter.CallFunction("f", {Value::Float(5.0)});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->scalar, 1.0);  // 5 mod 4
}

TEST(InterpreterTest, IfElseAndComparisons) {
  Program program = MustParse(R"(
float sign(float x) {
  if (x > 0) { return 1; }
  if (x < 0) { return -1; }
  return 0;
}
)");
  Interpreter interpreter(&program);
  EXPECT_DOUBLE_EQ(
      interpreter.CallFunction("sign", {Value::Float(3)})->scalar, 1.0);
  EXPECT_DOUBLE_EQ(
      interpreter.CallFunction("sign", {Value::Float(-3)})->scalar, -1.0);
  EXPECT_DOUBLE_EQ(
      interpreter.CallFunction("sign", {Value::Float(0)})->scalar, 0.0);
}

TEST(InterpreterTest, RecursionDepthIsBounded) {
  Program program = MustParse(R"(
float loop(float x) {
  return loop(x + 1);
}
)");
  Interpreter interpreter(&program);
  EXPECT_FALSE(interpreter.CallFunction("loop", {Value::Float(0)}).ok());
}

TEST(InterpreterTest, UndefinedVariableIsError) {
  Program program = MustParse(R"(
float f(float x) {
  return y;
}
)");
  Interpreter interpreter(&program);
  EXPECT_FALSE(interpreter.CallFunction("f", {Value::Float(0)}).ok());
}

// ------------------------------------------------------- encode pipelines

TEST(InterpreterTest, MinimalEncodeDecodeRoundTrip) {
  // Identity-ish program: pack floats into the payload, read them back.
  Program program = MustParse(R"(
void encode(float* gradient, uint8* compressed) {
  compressed = concat(gradient);
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)");
  Interpreter interpreter(&program);
  std::vector<float> input = {1.5f, -2.25f, 3.0f};
  auto encoded = interpreter.RunEncode(input, {});
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  EXPECT_EQ(encoded->size(), 12u);
  auto decoded = interpreter.RunDecode(*encoded, {});
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_FLOAT_EQ((*decoded)[i], input[i]);
  }
}

TEST(InterpreterTest, ReduceBuiltins) {
  Program program = MustParse(R"(
void encode(float* gradient, uint8* compressed) {
  float lo = reduce(gradient, smaller);
  float hi = reduce(gradient, greater);
  float total = reduce(gradient, sum);
  float amax = reduce(gradient, maxAbs);
  compressed = concat(lo, hi, total, amax);
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)");
  Interpreter interpreter(&program);
  std::vector<float> input = {3.0f, -5.0f, 2.0f};
  auto encoded = interpreter.RunEncode(input, {});
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  auto decoded = interpreter.RunDecode(*encoded, {});
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 4u);
  EXPECT_FLOAT_EQ((*decoded)[0], -5.0f);
  EXPECT_FLOAT_EQ((*decoded)[1], 3.0f);
  EXPECT_FLOAT_EQ((*decoded)[2], 0.0f);
  EXPECT_FLOAT_EQ((*decoded)[3], 5.0f);
}

TEST(InterpreterTest, SubBytePackingIsCompact) {
  // 10 uint2 values pack into 3 bytes (minimal zero padding).
  Program program = MustParse(R"(
uint2 two(float x) {
  return 2;
}
void encode(float* gradient, uint8* compressed) {
  uint2* Q = map(gradient, two);
  compressed = concat(Q);
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)");
  Interpreter interpreter(&program);
  std::vector<float> input(10, 0.0f);
  auto encoded = interpreter.RunEncode(input, {});
  ASSERT_TRUE(encoded.ok()) << encoded.status();
  EXPECT_EQ(encoded->size(), 3u);
}

// ---------------------------------------------- built-in DSL algorithms

class BuiltinDslTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BuiltinDslTest, CreatesAndRoundTrips) {
  CompressorParams params;
  params.sparsity_ratio = 0.05;
  auto codec = DslCompressor::CreateBuiltin(GetParam(), params);
  ASSERT_TRUE(codec.ok()) << codec.status();
  Tensor gradient = RandomGradient(503, 1234);
  ByteBuffer encoded;
  ASSERT_TRUE((*codec)->Encode(gradient.span(), &encoded).ok());
  std::vector<float> decoded(gradient.size());
  ASSERT_TRUE((*codec)->Decode(encoded, decoded).ok());
  auto count = (*codec)->EncodedElementCount(encoded);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, gradient.size());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, BuiltinDslTest,
                         ::testing::Values("onebit", "tbq", "terngrad",
                                           "dgc", "graddrop"));

TEST(DslCrossValidationTest, OnebitMatchesNativeCodec) {
  auto dsl = DslCompressor::CreateBuiltin("onebit");
  ASSERT_TRUE(dsl.ok()) << dsl.status();
  auto native = CreateCompressor("onebit");
  ASSERT_TRUE(native.ok());
  Tensor gradient = RandomGradient(1000, 55);

  ByteBuffer dsl_encoded;
  ASSERT_TRUE((*dsl)->Encode(gradient.span(), &dsl_encoded).ok());
  std::vector<float> dsl_decoded(1000);
  ASSERT_TRUE((*dsl)->Decode(dsl_encoded, dsl_decoded).ok());

  ByteBuffer native_encoded;
  ASSERT_TRUE((*native)->Encode(gradient.span(), &native_encoded).ok());
  std::vector<float> native_decoded(1000);
  ASSERT_TRUE((*native)->Decode(native_encoded, native_decoded).ok());

  EXPECT_LT(MaxAbsDiff(std::span<const float>(dsl_decoded),
                       std::span<const float>(native_decoded)),
            1e-5);
}

TEST(DslCrossValidationTest, TbqMatchesNativeCodec) {
  CompressorParams params;
  params.threshold = 0.4f;
  auto dsl = DslCompressor::CreateBuiltin("tbq", params);
  ASSERT_TRUE(dsl.ok()) << dsl.status();
  auto native = CreateCompressor("tbq", params);
  ASSERT_TRUE(native.ok());
  Tensor gradient = RandomGradient(777, 56);

  ByteBuffer encoded;
  ASSERT_TRUE((*dsl)->Encode(gradient.span(), &encoded).ok());
  std::vector<float> dsl_decoded(777);
  ASSERT_TRUE((*dsl)->Decode(encoded, dsl_decoded).ok());
  ByteBuffer native_encoded;
  ASSERT_TRUE((*native)->Encode(gradient.span(), &native_encoded).ok());
  std::vector<float> native_decoded(777);
  ASSERT_TRUE((*native)->Decode(native_encoded, native_decoded).ok());
  EXPECT_EQ(MaxAbsDiff(std::span<const float>(dsl_decoded),
                       std::span<const float>(native_decoded)),
            0.0);
}

TEST(DslCrossValidationTest, TernGradReconstructionBound) {
  auto dsl = DslCompressor::CreateBuiltin("terngrad");
  ASSERT_TRUE(dsl.ok()) << dsl.status();
  Tensor gradient = RandomGradient(2000, 57);
  ByteBuffer encoded;
  ASSERT_TRUE((*dsl)->Encode(gradient.span(), &encoded).ok());
  std::vector<float> decoded(2000);
  ASSERT_TRUE((*dsl)->Decode(encoded, decoded).ok());

  float min_v = gradient[0];
  float max_v = gradient[0];
  for (size_t i = 0; i < gradient.size(); ++i) {
    min_v = std::min(min_v, gradient[i]);
    max_v = std::max(max_v, gradient[i]);
  }
  const float gap = (max_v - min_v) / 3.0f;
  // Allow one wrap outlier from the paper-faithful floor(+u) formulation.
  size_t outliers = 0;
  for (size_t i = 0; i < gradient.size(); ++i) {
    if (std::abs(decoded[i] - gradient[i]) > gap * 1.0001f) {
      ++outliers;
    }
  }
  EXPECT_LE(outliers, 2u);
}

TEST(DslCrossValidationTest, DgcKeepsLargestElements) {
  CompressorParams params;
  params.sparsity_ratio = 0.02;
  auto dsl = DslCompressor::CreateBuiltin("dgc", params);
  ASSERT_TRUE(dsl.ok()) << dsl.status();
  Tensor gradient = RandomGradient(500, 58);
  ByteBuffer encoded;
  ASSERT_TRUE((*dsl)->Encode(gradient.span(), &encoded).ok());
  std::vector<float> decoded(500);
  ASSERT_TRUE((*dsl)->Decode(encoded, decoded).ok());
  size_t kept = 0;
  float min_kept = 1e30f;
  float max_dropped = 0.0f;
  for (size_t i = 0; i < 500; ++i) {
    if (decoded[i] != 0.0f) {
      EXPECT_FLOAT_EQ(decoded[i], gradient[i]);
      min_kept = std::min(min_kept, std::abs(gradient[i]));
      ++kept;
    } else {
      max_dropped = std::max(max_dropped, std::abs(gradient[i]));
    }
  }
  EXPECT_GE(kept, 10u);  // ceil(500 * 0.02) = 10, ties may add more
  EXPECT_GE(min_kept, max_dropped);
}

TEST(DslCrossValidationTest, GradDropKeepsApproximateFraction) {
  CompressorParams params;
  params.sparsity_ratio = 0.05;
  auto dsl = DslCompressor::CreateBuiltin("graddrop", params);
  ASSERT_TRUE(dsl.ok()) << dsl.status();
  Tensor gradient = RandomGradient(20000, 59);
  ByteBuffer encoded;
  ASSERT_TRUE((*dsl)->Encode(gradient.span(), &encoded).ok());
  std::vector<float> decoded(20000);
  ASSERT_TRUE((*dsl)->Decode(encoded, decoded).ok());
  size_t kept = 0;
  for (float v : decoded) {
    if (v != 0.0f) {
      ++kept;
    }
  }
  EXPECT_GT(kept, 20000 * 0.05 * 0.3);
  EXPECT_LT(kept, 20000 * 0.05 * 3.0);
}

TEST(DslRegistryTest, RegisteredAlgorithmsWorkThroughRegistry) {
  ASSERT_TRUE(DslCompressor::RegisterBuiltinsIntoRegistry().ok());
  auto codec = CreateCompressor("dsl-terngrad");
  ASSERT_TRUE(codec.ok()) << codec.status();
  Tensor gradient = RandomGradient(256, 60);
  ByteBuffer encoded;
  ASSERT_TRUE((*codec)->Encode(gradient.span(), &encoded).ok());
  std::vector<float> decoded(256);
  EXPECT_TRUE((*codec)->Decode(encoded, decoded).ok());
  // Idempotent.
  EXPECT_TRUE(DslCompressor::RegisterBuiltinsIntoRegistry().ok());
}

TEST(DslCompressorTest, CompressionRateIsProbed) {
  auto onebit = DslCompressor::CreateBuiltin("onebit");
  ASSERT_TRUE(onebit.ok());
  EXPECT_NEAR((*onebit)->CompressionRate(1 << 20), 1.0 / 32, 0.01);
  CompressorParams params;
  params.sparsity_ratio = 0.01;
  auto dgc = DslCompressor::CreateBuiltin("dgc", params);
  ASSERT_TRUE(dgc.ok());
  EXPECT_NEAR((*dgc)->CompressionRate(1 << 20), 0.02, 0.015);
}

TEST(DslCompressorTest, ShippedRandomKFileCompilesAndRuns) {
  // The user-facing .cll file must stay a working program.
  std::ifstream file(std::string(HIPRESS_SOURCE_DIR) +
                     "/examples/algorithms/randomk.cll");
  ASSERT_TRUE(file.good());
  std::ostringstream buffer;
  buffer << file.rdbuf();
  CompressorParams params;
  params.sparsity_ratio = 0.5;
  auto codec = DslCompressor::Create("randomk", buffer.str(),
                                     /*is_sparse=*/true, params);
  ASSERT_TRUE(codec.ok()) << codec.status();
  Tensor gradient = RandomGradient(2000, 77);
  ByteBuffer encoded;
  ASSERT_TRUE((*codec)->Encode(gradient.span(), &encoded).ok());
  std::vector<float> decoded(2000);
  ASSERT_TRUE((*codec)->Decode(encoded, decoded).ok());
  size_t kept = 0;
  for (float v : decoded) {
    if (v != 0.0f) {
      ++kept;
    }
  }
  EXPECT_NEAR(static_cast<double>(kept) / 2000.0, 0.5, 0.1);
}

TEST(DslCompressorTest, RejectsProgramsWithoutEntryPoints) {
  EXPECT_FALSE(
      DslCompressor::Create("x", "float f(float a) { return a; }", false, {})
          .ok());
}

TEST(DslCompressorTest, UnknownParamFieldIsRejected) {
  const char* source = R"(
param EncodeParams {
  float mystery;
}
void encode(float* gradient, uint8* compressed, EncodeParams params) {
  compressed = concat(gradient);
}
void decode(uint8* compressed, float* gradient) {
  gradient = extract<float*>(compressed);
}
)";
  EXPECT_FALSE(DslCompressor::Create("x", source, false, {}).ok());
}

}  // namespace
}  // namespace hipress::compll
