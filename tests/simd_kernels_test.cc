// Cross-tier bit-identity tests for the hand-vectorized codec kernels
// (src/compress/simd_kernels.h). Every primitive is run at every SIMD tier
// the host supports and compared bit-for-bit against the scalar tier — on
// unaligned spans, on lengths that are not a multiple of any vector width,
// and on adversarial values (NaN, ±inf, ±0, subnormals, threshold ties).
#include "src/compress/simd_kernels.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/bitops.h"
#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/compress/fp16.h"

namespace hipress {
namespace {

// Lengths that straddle every vector width (8, 16) and the reduce block.
const size_t kLengths[] = {0,  1,  7,   8,   9,    15,   16,  17,
                           31, 32, 33,  63,  64,   65,   100, 1023,
                           4095, 4096, 4097, 10000};

std::vector<SimdTier> AvailableTiers() {
  std::vector<SimdTier> tiers = {SimdTier::kScalar};
  if (SimdHostTier() >= SimdTier::kAvx2) {
    tiers.push_back(SimdTier::kAvx2);
  }
  if (SimdHostTier() >= SimdTier::kAvx512) {
    tiers.push_back(SimdTier::kAvx512);
  }
  return tiers;
}

// Fills n floats starting at an intentionally misaligned pointer: the
// backing store is over-allocated and the span starts one element in, so
// every vector load/store in the kernels must tolerate arbitrary alignment.
class UnalignedSpan {
 public:
  explicit UnalignedSpan(size_t n) : storage_(n + 1), n_(n) {}
  float* data() { return storage_.data() + 1; }
  const float* data() const { return storage_.data() + 1; }
  size_t size() const { return n_; }

 private:
  std::vector<float> storage_;
  size_t n_;
};

void FillAdversarial(float* x, size_t n, uint64_t seed) {
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    switch (rng.NextBounded(12)) {
      case 0:
        x[i] = 0.0f;
        break;
      case 1:
        x[i] = -0.0f;
        break;
      case 2:
        x[i] = std::numeric_limits<float>::quiet_NaN();
        break;
      case 3:
        x[i] = std::numeric_limits<float>::infinity();
        break;
      case 4:
        x[i] = -std::numeric_limits<float>::infinity();
        break;
      case 5:
        x[i] = std::numeric_limits<float>::denorm_min();
        break;
      case 6:
        x[i] = -std::numeric_limits<float>::denorm_min();
        break;
      case 7:
        x[i] = 0.5f;  // exactly the TBQ threshold used below
        break;
      case 8:
        x[i] = -0.5f;
        break;
      case 9:
        x[i] = 65520.0f;  // fp16 overflow boundary (ties to inf)
        break;
      default:
        x[i] = static_cast<float>(rng.NextGaussian()) * 2.0f;
        break;
    }
  }
}

// Bit-pattern comparison: EXPECT_EQ on doubles rejects NaN == NaN, but a
// NaN sum (gradient containing NaN) must still be the *same* NaN bits.
uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

class SimdTierGuard {
 public:
  explicit SimdTierGuard(SimdTier tier) { SimdTierOverride(tier); }
  ~SimdTierGuard() { ClearSimdTierOverride(); }
};

TEST(SimdKernelsTest, OnebitSignStatsBitIdenticalAcrossTiers) {
  for (size_t n : kLengths) {
    UnalignedSpan x(n);
    FillAdversarial(x.data(), n, /*seed=*/n * 7919 + 1);
    simd::SignStats ref;
    {
      SimdTierGuard guard(SimdTier::kScalar);
      ref = simd::OnebitSignStats(x.data(), n);
    }
    for (SimdTier tier : AvailableTiers()) {
      SimdTierGuard guard(tier);
      const simd::SignStats got = simd::OnebitSignStats(x.data(), n);
      // Exact bit equality: the lane schedule is fixed across tiers.
      EXPECT_EQ(DoubleBits(ref.pos_sum), DoubleBits(got.pos_sum))
          << "n=" << n << " tier=" << SimdTierName(tier);
      EXPECT_EQ(DoubleBits(ref.neg_sum), DoubleBits(got.neg_sum))
          << "n=" << n << " tier=" << SimdTierName(tier);
      EXPECT_EQ(ref.pos_count, got.pos_count)
          << "n=" << n << " tier=" << SimdTierName(tier);
    }
  }
}

TEST(SimdKernelsTest, OnebitPackUnpackBitIdenticalAcrossTiers) {
  for (size_t n : kLengths) {
    UnalignedSpan x(n);
    FillAdversarial(x.data(), n, /*seed=*/n * 104729 + 2);
    const size_t packed_bytes = PackedBytes(n, 1);
    std::vector<uint8_t> ref_packed(packed_bytes, 0xee);
    std::vector<float> ref_out(n), ref_accum(n, 0.25f);
    {
      SimdTierGuard guard(SimdTier::kScalar);
      simd::OnebitPackSigns(x.data(), n, ref_packed.data(), packed_bytes);
      simd::OnebitUnpackSigns(ref_packed.data(), n, -1.5f, 2.5f,
                              ref_out.data());
      simd::OnebitUnpackSignsAdd(ref_packed.data(), n, -1.5f, 2.5f,
                                 ref_accum.data());
    }
    for (SimdTier tier : AvailableTiers()) {
      SimdTierGuard guard(tier);
      std::vector<uint8_t> packed(packed_bytes, 0xee);
      simd::OnebitPackSigns(x.data(), n, packed.data(), packed_bytes);
      EXPECT_EQ(ref_packed, packed)
          << "n=" << n << " tier=" << SimdTierName(tier);
      std::vector<float> out(n), accum(n, 0.25f);
      simd::OnebitUnpackSigns(packed.data(), n, -1.5f, 2.5f, out.data());
      simd::OnebitUnpackSignsAdd(packed.data(), n, -1.5f, 2.5f,
                                 accum.data());
      EXPECT_EQ(0, std::memcmp(ref_out.data(), out.data(),
                               n * sizeof(float)))
          << "n=" << n << " tier=" << SimdTierName(tier);
      EXPECT_EQ(0, std::memcmp(ref_accum.data(), accum.data(),
                               n * sizeof(float)))
          << "n=" << n << " tier=" << SimdTierName(tier);
    }
  }
}

TEST(SimdKernelsTest, TbqPackUnpackBitIdenticalAcrossTiers) {
  for (float tau : {0.5f, 0.0f}) {
    for (size_t n : kLengths) {
      UnalignedSpan x(n);
      FillAdversarial(x.data(), n, /*seed=*/n * 31337 + 3);
      const size_t packed_bytes = PackedBytes(n, 2);
      std::vector<uint8_t> ref_packed(packed_bytes, 0xee);
      std::vector<float> ref_out(n), ref_accum(n, -0.75f);
      {
        SimdTierGuard guard(SimdTier::kScalar);
        simd::TbqPackCodes(x.data(), n, tau, ref_packed.data(),
                           packed_bytes);
        simd::TbqUnpackCodes(ref_packed.data(), n, tau, ref_out.data());
        simd::TbqUnpackCodesAdd(ref_packed.data(), n, tau,
                                ref_accum.data());
      }
      for (SimdTier tier : AvailableTiers()) {
        SimdTierGuard guard(tier);
        std::vector<uint8_t> packed(packed_bytes, 0xee);
        simd::TbqPackCodes(x.data(), n, tau, packed.data(), packed_bytes);
        EXPECT_EQ(ref_packed, packed)
            << "n=" << n << " tau=" << tau << " tier=" << SimdTierName(tier);
        std::vector<float> out(n), accum(n, -0.75f);
        simd::TbqUnpackCodes(packed.data(), n, tau, out.data());
        simd::TbqUnpackCodesAdd(packed.data(), n, tau, accum.data());
        EXPECT_EQ(0, std::memcmp(ref_out.data(), out.data(),
                                 n * sizeof(float)))
            << "n=" << n << " tau=" << tau << " tier=" << SimdTierName(tier);
        EXPECT_EQ(0, std::memcmp(ref_accum.data(), accum.data(),
                                 n * sizeof(float)))
            << "n=" << n << " tau=" << tau << " tier=" << SimdTierName(tier);
      }
    }
  }
}

TEST(SimdKernelsTest, Fp16EncodeBitIdenticalAcrossTiers) {
  for (size_t n : kLengths) {
    UnalignedSpan x(n);
    FillAdversarial(x.data(), n, /*seed=*/n * 65537 + 4);
    std::vector<uint16_t> ref(n);
    {
      SimdTierGuard guard(SimdTier::kScalar);
      simd::Fp16Encode(x.data(), n, ref.data(), n);
    }
    for (SimdTier tier : AvailableTiers()) {
      SimdTierGuard guard(tier);
      std::vector<uint16_t> got(n);
      simd::Fp16Encode(x.data(), n, got.data(), n);
      EXPECT_EQ(ref, got) << "n=" << n << " tier=" << SimdTierName(tier);
    }
  }
}

// The scalar FloatToHalf must mirror the F16C/AVX-512 hardware conversion
// on *every* interesting bit pattern, not just the random mix above: sweep
// all 65536 upper-half patterns (which cover every sign/exponent and the
// mantissa bits that select the rounding case) with the low mantissa bits
// varied, and compare the vector tiers against scalar.
TEST(SimdKernelsTest, Fp16EncodeHardwareSemanticsSweep) {
  if (SimdHostTier() == SimdTier::kScalar) {
    GTEST_SKIP() << "no vector tier on this host";
  }
  constexpr size_t kN = 1u << 16;
  std::vector<float> x(4 * kN);
  for (uint32_t upper = 0; upper < kN; ++upper) {
    // Low bits chosen to exercise RNE ties: all-zero, guard-bit-only,
    // sticky-only, and all-ones.
    const uint32_t lows[4] = {0x0000u, 0x1000u, 0x0001u, 0xffffu};
    for (int j = 0; j < 4; ++j) {
      const uint32_t bits = (upper << 16) | lows[j];
      std::memcpy(&x[4 * upper + j], &bits, sizeof(float));
    }
  }
  std::vector<uint16_t> scalar_out(x.size());
  {
    SimdTierGuard guard(SimdTier::kScalar);
    simd::Fp16Encode(x.data(), x.size(), scalar_out.data(), x.size());
  }
  for (SimdTier tier : AvailableTiers()) {
    if (tier == SimdTier::kScalar) {
      continue;
    }
    SimdTierGuard guard(tier);
    std::vector<uint16_t> got(x.size());
    simd::Fp16Encode(x.data(), x.size(), got.data(), x.size());
    for (size_t i = 0; i < x.size(); ++i) {
      uint32_t bits;
      std::memcpy(&bits, &x[i], sizeof(bits));
      ASSERT_EQ(scalar_out[i], got[i])
          << "input bits 0x" << std::hex << bits << " tier "
          << SimdTierName(tier);
    }
  }
}

// Decode of every possible half pattern must match across tiers, including
// signaling NaNs (which the hardware quiets).
TEST(SimdKernelsTest, Fp16DecodeAllPatternsBitIdenticalAcrossTiers) {
  constexpr size_t kN = 1u << 16;
  std::vector<uint16_t> halves(kN);
  for (uint32_t h = 0; h < kN; ++h) {
    halves[h] = static_cast<uint16_t>(h);
  }
  std::vector<float> ref(kN);
  {
    SimdTierGuard guard(SimdTier::kScalar);
    simd::Fp16Decode(halves.data(), kN, ref.data());
  }
  for (SimdTier tier : AvailableTiers()) {
    SimdTierGuard guard(tier);
    std::vector<float> got(kN);
    simd::Fp16Decode(halves.data(), kN, got.data());
    for (size_t i = 0; i < kN; ++i) {
      uint32_t ref_bits, got_bits;
      std::memcpy(&ref_bits, &ref[i], sizeof(ref_bits));
      std::memcpy(&got_bits, &got[i], sizeof(got_bits));
      ASSERT_EQ(ref_bits, got_bits)
          << "half 0x" << std::hex << i << " tier " << SimdTierName(tier);
    }
  }
}

TEST(SimdKernelsTest, Fp16DecodeAddMatchesAcrossTiers) {
  const size_t n = 4097;
  std::vector<float> src(n);
  FillAdversarial(src.data(), n, /*seed=*/99);
  std::vector<uint16_t> halves(n);
  simd::Fp16Encode(src.data(), n, halves.data(), n);
  std::vector<float> ref(n, 0.125f);
  {
    SimdTierGuard guard(SimdTier::kScalar);
    simd::Fp16DecodeAdd(halves.data(), n, ref.data());
  }
  for (SimdTier tier : AvailableTiers()) {
    SimdTierGuard guard(tier);
    std::vector<float> accum(n, 0.125f);
    simd::Fp16DecodeAdd(halves.data(), n, accum.data());
    EXPECT_EQ(0, std::memcmp(ref.data(), accum.data(), n * sizeof(float)))
        << "tier=" << SimdTierName(tier);
  }
}

// Misreported capacity is a contract violation, not a recoverable error:
// the pack kernels must abort rather than scribble past the buffer at
// vector width.
TEST(SimdKernelsDeathTest, OnebitPackAbortsOnMisreportedCapacity) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  std::vector<float> x(64, 1.0f);
  std::vector<uint8_t> out(PackedBytes(x.size(), 1));
  EXPECT_DEATH(
      simd::OnebitPackSigns(x.data(), x.size(), out.data(), out.size() - 1),
      "misreported output capacity");
}

TEST(SimdKernelsDeathTest, TbqPackAbortsOnMisreportedCapacity) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  std::vector<float> x(64, 1.0f);
  std::vector<uint8_t> out(PackedBytes(x.size(), 2));
  EXPECT_DEATH(
      simd::TbqPackCodes(x.data(), x.size(), 0.5f, out.data(),
                         out.size() - 1),
      "misreported output capacity");
}

TEST(SimdKernelsDeathTest, Fp16EncodeAbortsOnMisreportedCapacity) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  std::vector<float> x(64, 1.0f);
  std::vector<uint16_t> out(x.size());
  EXPECT_DEATH(simd::Fp16Encode(x.data(), x.size(), out.data(), x.size() - 1),
               "misreported output capacity");
}

}  // namespace
}  // namespace hipress
