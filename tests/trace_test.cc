#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/string_util.h"
#include "src/hipress/hipress.h"
#include "src/train/trace.h"

namespace hipress {
namespace {

std::vector<GpuInterval> SampleTimeline() {
  return {
      GpuInterval{0, FromMillis(10), GpuTaskKind::kCompute},
      GpuInterval{FromMillis(2), FromMillis(3), GpuTaskKind::kEncode},
      GpuInterval{FromMillis(3), FromMillis(4), GpuTaskKind::kDecode},
  };
}

TEST(TraceTest, EmitsCompleteEventsPerInterval) {
  const std::string json = TimelineToChromeTrace(SampleTimeline());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"encode\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"decode\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // 10 ms compute = 10000 us duration.
  EXPECT_NE(json.find("\"dur\":10000.000"), std::string::npos);
}

TEST(TraceTest, OriginShiftsAndFilters) {
  const std::string json =
      TimelineToChromeTrace(SampleTimeline(), FromMillis(5));
  // The encode/decode blocks end before the origin and are dropped; the
  // compute block remains, starting at a negative-free offset... its start
  // is clipped arithmetic-wise but the event is kept.
  EXPECT_EQ(json.find("\"name\":\"encode\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
}

TEST(TraceTest, EmptyTimelineIsValidJson) {
  const std::string json = TimelineToChromeTrace({});
  EXPECT_EQ(json.find("},{"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

TEST(TraceTest, WritesFile) {
  const std::string path = "/tmp/hipress_trace_test.json";
  ASSERT_TRUE(WriteChromeTrace(path, SampleTimeline()).ok());
  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  EXPECT_NE(buffer.str().find("traceEvents"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceTest, RejectsUnwritablePath) {
  EXPECT_FALSE(
      WriteChromeTrace("/nonexistent-dir/x.json", SampleTimeline()).ok());
}

// ------------------------------------------------------------ unified trace

TEST(UnifiedTraceTest, MergesGpuRowsAndSpansPerNode) {
  UnifiedTraceInput input;
  input.node_timelines.push_back(SampleTimeline());  // node 0
  input.node_timelines.push_back({
      GpuInterval{0, FromMillis(5), GpuTaskKind::kCompute},
  });  // node 1
  SpanCollector spans;
  spans.Add(0, kTraceLaneNetUplink, "tx 1MB 0->1", FromMillis(1),
            FromMillis(2));
  spans.Add(1, kTraceLaneNetDownlink, "rx 1MB 0->1", FromMillis(2),
            FromMillis(3));
  spans.Add(0, kTraceLaneCoordinator, "round 0->1 (3, 96KB)", FromMillis(1),
            FromMillis(4));
  input.spans = &spans;

  const std::string json = UnifiedTraceToJson(input);
  // Process tracks, one per node.
  EXPECT_NE(json.find("\"args\":{\"name\":\"node0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"node1\"}"), std::string::npos);
  // Thread rows: GPU kinds resolve against GpuTaskKindName, net and
  // coordinator lanes against TraceLaneName.
  EXPECT_NE(json.find("\"args\":{\"name\":\"gpu:compute\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"net:uplink\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"net:downlink\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"coordinator\"}"),
            std::string::npos);
  // The span events themselves, pinned to the right pid/tid.
  EXPECT_NE(json.find("\"name\":\"tx 1MB 0->1\""), std::string::npos);
  EXPECT_NE(json.find(StrFormat("\"pid\":1,\"tid\":%d",
                                kTraceLaneNetDownlink)),
            std::string::npos);
}

TEST(UnifiedTraceTest, SpansOnlyInputStillProducesTracks) {
  UnifiedTraceInput input;
  SpanCollector spans;
  spans.Add(2, kTraceLaneCoordinator, "round 2->0 (1, 4KB)", 0, FromMillis(1));
  input.spans = &spans;
  const std::string json = UnifiedTraceToJson(input);
  EXPECT_NE(json.find("\"args\":{\"name\":\"node2\"}"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"round 2->0 (1, 4KB)\""), std::string::npos);
}

TEST(UnifiedTraceTest, OriginDropsFinishedEventsAndTheirTracks) {
  UnifiedTraceInput input;
  input.node_timelines.push_back({
      GpuInterval{0, FromMillis(1), GpuTaskKind::kEncode},
  });
  SpanCollector spans;
  spans.Add(5, kTraceLaneNetUplink, "tx old", 0, FromMillis(2));
  input.spans = &spans;
  input.origin = FromMillis(3);
  const std::string json = UnifiedTraceToJson(input);
  EXPECT_EQ(json.find("node0"), std::string::npos);
  EXPECT_EQ(json.find("node5"), std::string::npos);
  EXPECT_EQ(json.find("tx old"), std::string::npos);
}

TEST(UnifiedTraceTest, WriteTrainReportTraceRequiresRecording) {
  TrainReport report;
  EXPECT_EQ(
      WriteTrainReportTrace("/tmp/hipress_unified_unused.json", report).code(),
      StatusCode::kFailedPrecondition);
}

// The acceptance path: one simulated training run exports a single
// Perfetto JSON whose tracks carry GPU kernel rows alongside the
// network-transfer and coordinator-round rows.
TEST(UnifiedTraceTest, TrainerRunExportsMergedClusterTrace) {
  HiPressOptions options;
  options.model = "vgg19";
  options.system = "hipress-ps";
  options.algorithm = "onebit";
  options.cluster = ClusterSpec::Local(4);
  options.train.record_timeline = true;
  auto result = RunTrainingSimulation(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TrainReport& report = result->report;
  ASSERT_EQ(report.node_timelines.size(), 4u);
  ASSERT_NE(report.spans, nullptr);
  EXPECT_GT(report.spans->size(), 0u);

  const std::string json = UnifiedTraceToJson(UnifiedTraceInput{
      report.node_timelines, report.spans.get(), report.timeline_origin});
  EXPECT_NE(json.find("\"args\":{\"name\":\"node0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"node3\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"gpu:encode\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"net:uplink\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"coordinator\"}"),
            std::string::npos);

  const std::string path = "/tmp/hipress_cluster_trace_test.json";
  ASSERT_TRUE(WriteTrainReportTrace(path, report).ok());
  std::remove(path.c_str());
}

TEST(UnifiedTraceTest, WriteTrainReportTraceFallsBackToLegacyTimeline) {
  TrainReport report;
  report.timeline = SampleTimeline();  // node_timelines left empty
  const std::string path = "/tmp/hipress_unified_trace_test.json";
  ASSERT_TRUE(WriteTrainReportTrace(path, report).ok());
  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  EXPECT_NE(buffer.str().find("\"name\":\"compute\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hipress
