#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/train/trace.h"

namespace hipress {
namespace {

std::vector<GpuInterval> SampleTimeline() {
  return {
      GpuInterval{0, FromMillis(10), GpuTaskKind::kCompute},
      GpuInterval{FromMillis(2), FromMillis(3), GpuTaskKind::kEncode},
      GpuInterval{FromMillis(3), FromMillis(4), GpuTaskKind::kDecode},
  };
}

TEST(TraceTest, EmitsCompleteEventsPerInterval) {
  const std::string json = TimelineToChromeTrace(SampleTimeline());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"encode\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"decode\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // 10 ms compute = 10000 us duration.
  EXPECT_NE(json.find("\"dur\":10000.000"), std::string::npos);
}

TEST(TraceTest, OriginShiftsAndFilters) {
  const std::string json =
      TimelineToChromeTrace(SampleTimeline(), FromMillis(5));
  // The encode/decode blocks end before the origin and are dropped; the
  // compute block remains, starting at a negative-free offset... its start
  // is clipped arithmetic-wise but the event is kept.
  EXPECT_EQ(json.find("\"name\":\"encode\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"compute\""), std::string::npos);
}

TEST(TraceTest, EmptyTimelineIsValidJson) {
  const std::string json = TimelineToChromeTrace({});
  EXPECT_EQ(json.find("},{"), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

TEST(TraceTest, WritesFile) {
  const std::string path = "/tmp/hipress_trace_test.json";
  ASSERT_TRUE(WriteChromeTrace(path, SampleTimeline()).ok());
  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  EXPECT_NE(buffer.str().find("traceEvents"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceTest, RejectsUnwritablePath) {
  EXPECT_FALSE(
      WriteChromeTrace("/nonexistent-dir/x.json", SampleTimeline()).ok());
}

}  // namespace
}  // namespace hipress
