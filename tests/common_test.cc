#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/common/bitops.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/string_util.h"
#include "src/common/thread_pool.h"
#include "src/common/units.h"

namespace hipress {
namespace {

// ------------------------------------------------------------------ Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad input");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(CancelledError("x").code(), StatusCode::kCancelled);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(NotFoundError("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Status UseHalf(int x, int* out) {
  ASSIGN_OR_RETURN(*out, Half(x));
  return OkStatus();
}

TEST(StatusOrTest, AssignOrReturnPropagatesErrors) {
  int out = 0;
  EXPECT_TRUE(UseHalf(4, &out).ok());
  EXPECT_EQ(out, 2);
  EXPECT_EQ(UseHalf(3, &out).code(), StatusCode::kInvalidArgument);
}

// --------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBounded(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, GaussianHasRoughlyUnitMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng root(42);
  Rng a = root.Fork(1);
  Rng b = root.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

// ------------------------------------------------------------------ bitops

TEST(BitopsTest, PackedBytesRoundsUp) {
  EXPECT_EQ(PackedBytes(0, 1), 0u);
  EXPECT_EQ(PackedBytes(1, 1), 1u);
  EXPECT_EQ(PackedBytes(8, 1), 1u);
  EXPECT_EQ(PackedBytes(9, 1), 2u);
  EXPECT_EQ(PackedBytes(4, 2), 1u);
  EXPECT_EQ(PackedBytes(5, 2), 2u);
  EXPECT_EQ(PackedBytes(3, 4), 2u);
}

TEST(BitopsTest, WriteReadRoundTrip) {
  uint8_t buffer[16] = {};
  for (unsigned bits : {1u, 2u, 3u, 4u, 5u, 8u}) {
    std::fill(std::begin(buffer), std::end(buffer), 0);
    const uint32_t mask = (1u << bits) - 1;
    for (size_t i = 0; i < 16; ++i) {
      WriteBits(buffer, i * bits, bits, static_cast<uint32_t>(i * 7) & mask);
    }
    for (size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(ReadBits(buffer, i * bits, bits),
                (static_cast<uint32_t>(i * 7) & mask))
          << "bits=" << bits << " i=" << i;
    }
  }
}

TEST(BitopsTest, WriteBitsClearsOldBits) {
  uint8_t buffer[2] = {0xff, 0xff};
  WriteBits(buffer, 4, 4, 0x0);
  EXPECT_EQ(ReadBits(buffer, 4, 4), 0u);
  EXPECT_EQ(ReadBits(buffer, 0, 4), 0xfu);
  EXPECT_EQ(ReadBits(buffer, 8, 8), 0xffu);
}

TEST(BitopsTest, FastPackPathsMatchGeneric) {
  uint8_t values8[8] = {1, 0, 1, 1, 0, 0, 1, 0};
  uint8_t generic[1] = {};
  for (int i = 0; i < 8; ++i) {
    WriteBits(generic, i, 1, values8[i]);
  }
  EXPECT_EQ(Pack8x1(values8), generic[0]);
  uint8_t unpacked[8];
  Unpack8x1(generic[0], unpacked);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(unpacked[i], values8[i]);
  }

  uint8_t values4[4] = {3, 0, 2, 1};
  uint8_t generic2[1] = {};
  for (int i = 0; i < 4; ++i) {
    WriteBits(generic2, i * 2, 2, values4[i]);
  }
  EXPECT_EQ(Pack4x2(values4), generic2[0]);

  uint8_t values2[2] = {0xa, 0x5};
  EXPECT_EQ(Pack2x4(values2), 0x5a);
}

// ------------------------------------------------------------- thread pool

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& future : futures) {
    future.wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, 10, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ++hits[i];
    }
  });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, 1024, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForZeroGrainActsAsGrainOne) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(64, 0, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ++hits[i];
    }
  });
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForZeroTotalNeverCallsEvenWithZeroGrain) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, 0, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForGrainLargerThanTotalRunsSingleShard) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(10, 100, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

// ------------------------------------------------------------ string utils

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hipress", "hi"));
  EXPECT_FALSE(StartsWith("hi", "hipress"));
  EXPECT_TRUE(EndsWith("task.cc", ".cc"));
  EXPECT_FALSE(EndsWith("task.cc", ".h"));
}

TEST(StringUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512B");
  EXPECT_EQ(HumanBytes(4096), "4KB");
  EXPECT_EQ(HumanBytes(static_cast<uint64_t>(392) * 1024 * 1024), "392.0MB");
}

// ------------------------------------------------------------------- units

TEST(UnitsTest, TimeConversions) {
  EXPECT_EQ(FromMillis(1.5), 1500000);
  EXPECT_EQ(FromMicros(2.0), 2000);
  EXPECT_DOUBLE_EQ(ToSeconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(ToMillis(kMillisecond), 1.0);
}

TEST(UnitsTest, BandwidthTransferTime) {
  const Bandwidth bw = Bandwidth::Gbps(100.0);
  // 12.5 GB/s -> 1 MB takes 80 microseconds.
  EXPECT_NEAR(static_cast<double>(bw.TransferTime(1000000)),
              80.0 * kMicrosecond, 1.0 * kMicrosecond);
  EXPECT_EQ(Bandwidth{0.0}.TransferTime(1000), 0);
}

TEST(UnitsTest, GBpsMatchesGbpsTimesEight) {
  EXPECT_DOUBLE_EQ(Bandwidth::GBps(1.0).bits_per_second,
                   Bandwidth::Gbps(8.0).bits_per_second);
}

}  // namespace
}  // namespace hipress
