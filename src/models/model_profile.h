// DNN model workload profiles (Table 6).
//
// The throughput experiments need, per model: the per-layer gradient sizes
// (count / total / max matching Table 6), per-GPU batch size, and single-GPU
// forward/backward times. Layer lists for VGG19 and the transformer-family
// models follow the real architectures; the remaining models use a
// deterministic generator tuned to reproduce the paper's reported
// statistics (e.g. 62.7% of Bert-base gradients below 16 KB, Section 6.3).
//
// Compute times are calibrated to public V100 fp32 throughput figures of
// the paper's era; the evaluation compares systems against each other on
// identical compute, so only the compute:communication ratio matters, not
// the absolute values.
#ifndef HIPRESS_SRC_MODELS_MODEL_PROFILE_H_
#define HIPRESS_SRC_MODELS_MODEL_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace hipress {

struct ModelProfile {
  std::string name;
  std::string framework;  // DNN system the paper evaluates it on
  // Gradient sizes in bytes, in the order backward produces them
  // (output-side layers first).
  std::vector<uint64_t> gradient_bytes;
  int batch_per_gpu = 32;
  std::string sample_unit = "samples";
  SimTime forward_time_v100 = 0;
  SimTime backward_time_v100 = 0;

  uint64_t total_bytes() const;
  uint64_t max_gradient_bytes() const;
  size_t num_gradients() const { return gradient_bytes.size(); }

  // Time from backward start until gradient i is produced: backward time is
  // apportioned per layer as a fixed share plus a bytes-proportional share.
  SimTime GradientReadyOffset(size_t i, double compute_scale) const;

  SimTime iteration_compute(double compute_scale) const {
    return static_cast<SimTime>(
        static_cast<double>(forward_time_v100 + backward_time_v100) /
        compute_scale);
  }
};

// Models: "vgg19", "resnet50", "ugatit", "ugatit-light", "bert-base",
// "bert-large", "lstm", "transformer".
StatusOr<ModelProfile> GetModelProfile(const std::string& name);
std::vector<std::string> ModelProfileNames();

}  // namespace hipress

#endif  // HIPRESS_SRC_MODELS_MODEL_PROFILE_H_
