#include "src/models/model_profile.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace hipress {
namespace {

constexpr uint64_t kKB = 1024;
constexpr double kMB = 1024.0 * 1024.0;

uint64_t Mb(double mb) { return static_cast<uint64_t>(mb * kMB); }

// Deterministically generates `count` gradient sizes summing to `total`
// with the given maximum, where `small_fraction` of the gradients (bias /
// LayerNorm shaped) fall below `small_max`. Used for the models whose layer
// lists we do not hardcode; the outputs reproduce Table 6's statistics.
std::vector<uint64_t> GenerateSizes(size_t count, uint64_t total,
                                    uint64_t max_gradient,
                                    double small_fraction, uint64_t small_max,
                                    uint64_t seed) {
  CHECK_GE(count, 2u);
  CHECK_GT(total, max_gradient);
  Rng rng(seed);
  const size_t num_small = std::min(
      count - 1,
      static_cast<size_t>(std::round(small_fraction * static_cast<double>(count))));
  const size_t num_big = count - 1 - num_small;

  std::vector<double> small_sizes(num_small);
  double small_total = 0.0;
  for (double& size : small_sizes) {
    // Log-uniform in [1 KB, small_max).
    const double lo = std::log(1024.0);
    const double hi = std::log(static_cast<double>(small_max));
    size = std::exp(rng.NextUniform(lo, hi));
    small_total += size;
  }

  std::vector<double> big_sizes(num_big);
  double big_total = 0.0;
  const double big_hi = static_cast<double>(max_gradient) / 3.0;
  const double big_lo = static_cast<double>(small_max) * 4.0;
  for (double& size : big_sizes) {
    size = std::exp(
        rng.NextUniform(std::log(big_lo), std::log(std::max(big_lo * 2, big_hi))));
    big_total += size;
  }

  // Scale the big cluster so everything sums to `total`.
  const double target_big =
      static_cast<double>(total - max_gradient) - small_total;
  CHECK_GT(target_big, 0.0) << "small cluster exceeds the total budget";
  const double scale = big_total > 0 ? target_big / big_total : 0.0;
  for (double& size : big_sizes) {
    size = std::min(size * scale, static_cast<double>(max_gradient));
  }

  std::vector<uint64_t> sizes;
  sizes.reserve(count);
  sizes.push_back(max_gradient);
  for (double size : big_sizes) {
    sizes.push_back(std::max<uint64_t>(4, static_cast<uint64_t>(size) & ~3ull));
  }
  for (double size : small_sizes) {
    sizes.push_back(std::max<uint64_t>(4, static_cast<uint64_t>(size) & ~3ull));
  }

  // Fix the rounding drift on the second-largest entry, then interleave the
  // clusters deterministically so backward emits a realistic mix.
  uint64_t sum = 0;
  for (uint64_t size : sizes) {
    sum += size;
  }
  size_t adjust = sizes.size() > 1 ? 1 : 0;
  if (sum < total) {
    sizes[adjust] += total - sum;
  } else if (sum > total && sizes[adjust] > (sum - total) + 4) {
    sizes[adjust] -= sum - total;
  }
  // Deterministic shuffle (Fisher-Yates with the seeded RNG).
  for (size_t i = sizes.size() - 1; i > 0; --i) {
    const size_t j = static_cast<size_t>(rng.NextBounded(i + 1));
    std::swap(sizes[i], sizes[j]);
  }
  return sizes;
}

// VGG19's real layer list (weights + biases, output side first: the order
// backward produces gradients). fc6 is the famous 392 MB gradient.
std::vector<uint64_t> Vgg19Gradients() {
  struct Layer {
    uint64_t weight;
    uint64_t bias;
  };
  const std::vector<Layer> layers = {
      {4096000ull * 4, 1000 * 4},        // fc8
      {16777216ull * 4, 4096 * 4},       // fc7
      {102760448ull * 4, 4096 * 4},      // fc6 (392 MB)
      {2359296ull * 4, 512 * 4},         // conv5_4
      {2359296ull * 4, 512 * 4},         // conv5_3
      {2359296ull * 4, 512 * 4},         // conv5_2
      {2359296ull * 4, 512 * 4},         // conv5_1
      {2359296ull * 4, 512 * 4},         // conv4_4
      {2359296ull * 4, 512 * 4},         // conv4_3
      {2359296ull * 4, 512 * 4},         // conv4_2
      {1179648ull * 4, 512 * 4},         // conv4_1
      {589824ull * 4, 256 * 4},          // conv3_4
      {589824ull * 4, 256 * 4},          // conv3_3
      {589824ull * 4, 256 * 4},          // conv3_2
      {294912ull * 4, 256 * 4},          // conv3_1
      {147456ull * 4, 128 * 4},          // conv2_2
      {73728ull * 4, 128 * 4},           // conv2_1
      {36864ull * 4, 64 * 4},            // conv1_2
      {1728ull * 4, 64 * 4},             // conv1_1
  };
  std::vector<uint64_t> gradients;
  gradients.reserve(layers.size() * 2);
  for (const Layer& layer : layers) {
    gradients.push_back(layer.weight);
    gradients.push_back(layer.bias);
  }
  return gradients;
}

// AWD-LSTM-style language model: 10 gradients dominated by the embedding /
// softmax matrices (Table 6: 327.97 MB total, 190.42 MB max).
std::vector<uint64_t> LstmGradients() {
  return {Mb(190.42), Mb(72.0), Mb(33.0), Mb(17.0), Mb(8.0),
          Mb(4.0),    Mb(2.0),  Mb(1.0),  Mb(0.4),  Mb(0.15)};
}

ModelProfile MakeProfile(const std::string& name) {
  ModelProfile profile;
  profile.name = name;
  if (name == "vgg19") {
    profile.framework = "MXNet";
    profile.gradient_bytes = Vgg19Gradients();
    profile.batch_per_gpu = 32;
    profile.sample_unit = "images";
    profile.forward_time_v100 = FromMillis(45);
    profile.backward_time_v100 = FromMillis(90);
  } else if (name == "resnet50") {
    profile.framework = "TensorFlow";
    profile.gradient_bytes =
        GenerateSizes(155, Mb(97.46), Mb(9.0), 0.55, 16 * kKB, 0x4e550);
    profile.batch_per_gpu = 64;
    profile.sample_unit = "images";
    profile.forward_time_v100 = FromMillis(65);
    profile.backward_time_v100 = FromMillis(115);
  } else if (name == "ugatit") {
    profile.framework = "PyTorch";
    profile.gradient_bytes =
        GenerateSizes(148, Mb(2558.75), Mb(1024.0), 0.40, 32 * kKB, 0x06a717);
    profile.batch_per_gpu = 2;
    profile.sample_unit = "images";
    profile.forward_time_v100 = FromMillis(180);
    profile.backward_time_v100 = FromMillis(320);
  } else if (name == "ugatit-light") {
    profile.framework = "PyTorch";
    profile.gradient_bytes =
        GenerateSizes(148, Mb(511.25), Mb(128.0), 0.40, 32 * kKB, 0x16a717);
    profile.batch_per_gpu = 2;
    profile.sample_unit = "images";
    profile.forward_time_v100 = FromMillis(90);
    profile.backward_time_v100 = FromMillis(160);
  } else if (name == "bert-base") {
    profile.framework = "MXNet";
    // Section 6.3: 62.7% of Bert-base gradients are below 16 KB.
    profile.gradient_bytes =
        GenerateSizes(207, Mb(420.02), Mb(89.42), 0.627, 16 * kKB, 0xbe27ba5e);
    profile.batch_per_gpu = 32;
    profile.sample_unit = "sequences";
    profile.forward_time_v100 = FromMillis(45);
    profile.backward_time_v100 = FromMillis(85);
  } else if (name == "bert-large") {
    profile.framework = "MXNet";
    profile.gradient_bytes = GenerateSizes(399, Mb(1282.60), Mb(119.23), 0.60,
                                           16 * kKB, 0xbe271a26e);
    profile.batch_per_gpu = 32;
    profile.sample_unit = "sequences";
    profile.forward_time_v100 = FromMillis(95);
    profile.backward_time_v100 = FromMillis(185);
  } else if (name == "lstm") {
    profile.framework = "PyTorch";
    profile.gradient_bytes = LstmGradients();
    profile.batch_per_gpu = 80;
    profile.sample_unit = "sequences";
    profile.forward_time_v100 = FromMillis(35);
    profile.backward_time_v100 = FromMillis(70);
  } else if (name == "transformer") {
    profile.framework = "TensorFlow";
    profile.gradient_bytes = GenerateSizes(185, Mb(234.08), Mb(65.84), 0.55,
                                           16 * kKB, 0x7a4f);
    profile.batch_per_gpu = 2048;
    profile.sample_unit = "tokens";
    profile.forward_time_v100 = FromMillis(42);
    profile.backward_time_v100 = FromMillis(82);
  }
  return profile;
}

}  // namespace

uint64_t ModelProfile::total_bytes() const {
  uint64_t total = 0;
  for (uint64_t bytes : gradient_bytes) {
    total += bytes;
  }
  return total;
}

uint64_t ModelProfile::max_gradient_bytes() const {
  uint64_t max_bytes = 0;
  for (uint64_t bytes : gradient_bytes) {
    max_bytes = std::max(max_bytes, bytes);
  }
  return max_bytes;
}

SimTime ModelProfile::GradientReadyOffset(size_t i,
                                          double compute_scale) const {
  CHECK_LT(i, gradient_bytes.size());
  const double total = static_cast<double>(total_bytes());
  const double layers = static_cast<double>(gradient_bytes.size());
  double share = 0.0;
  for (size_t j = 0; j <= i; ++j) {
    // Per-layer backward cost: a fixed scheduling share plus a
    // bytes-proportional share (large layers back-propagate longer).
    share += 0.3 / layers +
             0.7 * static_cast<double>(gradient_bytes[j]) / total;
  }
  return static_cast<SimTime>(share *
                              static_cast<double>(backward_time_v100) /
                              compute_scale);
}

StatusOr<ModelProfile> GetModelProfile(const std::string& name) {
  ModelProfile profile = MakeProfile(name);
  if (profile.gradient_bytes.empty()) {
    return NotFoundError("unknown model: " + name);
  }
  return profile;
}

std::vector<std::string> ModelProfileNames() {
  return {"vgg19",     "resnet50",  "ugatit", "ugatit-light",
          "bert-base", "bert-large", "lstm",   "transformer"};
}

}  // namespace hipress
