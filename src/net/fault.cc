#include "src/net/fault.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/string_util.h"

namespace hipress {

const char* MembershipEventKindName(MembershipEventKind kind) {
  switch (kind) {
    case MembershipEventKind::kJoin:
      return "join";
    case MembershipEventKind::kLeave:
      return "leave";
    case MembershipEventKind::kRejoin:
      return "rejoin";
  }
  return "unknown";
}

SimTime FaultConfig::CrashTime(int node) const {
  SimTime earliest = -1;
  for (const NodeCrash& crash : crashes) {
    if (crash.node == node && (earliest < 0 || crash.at < earliest)) {
      earliest = crash.at;
    }
  }
  return earliest;
}

bool FaultConfig::AliveAt(int node, SimTime when) const {
  // The node is dead iff the most recent crash at or before `when` has not
  // been closed by a later rejoin at or before `when`. Crash/rejoin
  // schedules are static, so this is decidable for any `when`.
  SimTime latest_crash = -1;
  for (const NodeCrash& crash : crashes) {
    if (crash.node == node && crash.at <= when && crash.at > latest_crash) {
      latest_crash = crash.at;
    }
  }
  if (latest_crash < 0) {
    return true;
  }
  for (const MembershipEvent& event : membership) {
    if (event.kind == MembershipEventKind::kRejoin && event.node == node &&
        event.at > latest_crash && event.at <= when) {
      return true;
    }
  }
  return false;
}

double FaultConfig::DegradationFactor(int src, int dst, SimTime when) const {
  double factor = 1.0;
  for (const LinkDegradation& window : degradations) {
    const bool src_match = window.src < 0 || window.src == src;
    const bool dst_match = window.dst < 0 || window.dst == dst;
    if (src_match && dst_match && when >= window.start && when < window.end &&
        window.bandwidth_factor > 0.0) {
      factor = std::min(factor, window.bandwidth_factor);
    }
  }
  return factor;
}

double FaultUniform(uint64_t seed, uint64_t ordinal) {
  uint64_t z = seed + (ordinal + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

namespace {

// Parses an endpoint that is either an integer or the '*' wildcard (-1).
StatusOr<int> ParseEndpoint(const std::string& text) {
  if (text == "*") {
    return -1;
  }
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value < 0) {
    return InvalidArgumentError("bad fault endpoint: " + text);
  }
  return static_cast<int>(value);
}

StatusOr<double> ParseDouble(const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return InvalidArgumentError("bad fault number: " + text);
  }
  return value;
}

}  // namespace

StatusOr<FaultConfig> ParseFaultSpec(const std::string& spec) {
  FaultConfig config;
  for (const std::string& raw : Split(spec, ',')) {
    const std::string clause = Trim(raw);
    if (clause.empty()) {
      continue;
    }
    const size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("fault clause missing '=': " + clause);
    }
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    if (key == "drop") {
      ASSIGN_OR_RETURN(config.drop_prob, ParseDouble(value));
      if (config.drop_prob < 0.0 || config.drop_prob >= 1.0) {
        return InvalidArgumentError("drop probability must be in [0, 1)");
      }
    } else if (key == "seed") {
      ASSIGN_OR_RETURN(const double seed, ParseDouble(value));
      config.seed = static_cast<uint64_t>(seed);
    } else if (key == "crash") {
      // crash=N@MS
      const std::vector<std::string> parts = Split(value, '@');
      if (parts.size() != 2) {
        return InvalidArgumentError("crash clause wants N@MS: " + value);
      }
      NodeCrash crash;
      ASSIGN_OR_RETURN(crash.node, ParseEndpoint(parts[0]));
      ASSIGN_OR_RETURN(const double at_ms, ParseDouble(parts[1]));
      if (crash.node < 0 || at_ms < 0.0) {
        return InvalidArgumentError("bad crash clause: " + value);
      }
      crash.at = FromMillis(at_ms);
      config.crashes.push_back(crash);
    } else if (key == "degrade") {
      // degrade=A-B@T0-T1@F (ms, remaining-bandwidth factor)
      const std::vector<std::string> parts = Split(value, '@');
      if (parts.size() != 3) {
        return InvalidArgumentError("degrade clause wants A-B@T0-T1@F: " +
                                    value);
      }
      const std::vector<std::string> link = Split(parts[0], '-');
      const std::vector<std::string> window = Split(parts[1], '-');
      if (link.size() != 2 || window.size() != 2) {
        return InvalidArgumentError("bad degrade clause: " + value);
      }
      LinkDegradation degradation;
      ASSIGN_OR_RETURN(degradation.src, ParseEndpoint(link[0]));
      ASSIGN_OR_RETURN(degradation.dst, ParseEndpoint(link[1]));
      ASSIGN_OR_RETURN(const double start_ms, ParseDouble(window[0]));
      ASSIGN_OR_RETURN(const double end_ms, ParseDouble(window[1]));
      ASSIGN_OR_RETURN(degradation.bandwidth_factor, ParseDouble(parts[2]));
      if (start_ms < 0.0 || end_ms <= start_ms ||
          degradation.bandwidth_factor <= 0.0 ||
          degradation.bandwidth_factor > 1.0) {
        return InvalidArgumentError("bad degrade clause: " + value);
      }
      degradation.start = FromMillis(start_ms);
      degradation.end = FromMillis(end_ms);
      config.degradations.push_back(degradation);
    } else if (key == "join" || key == "leave" || key == "rejoin") {
      // join=N@MS / leave=N@MS / rejoin=N@MS
      const std::vector<std::string> parts = Split(value, '@');
      if (parts.size() != 2) {
        return InvalidArgumentError(key + " clause wants N@MS: " + value);
      }
      MembershipEvent event;
      event.kind = key == "join"    ? MembershipEventKind::kJoin
                   : key == "leave" ? MembershipEventKind::kLeave
                                    : MembershipEventKind::kRejoin;
      ASSIGN_OR_RETURN(event.node, ParseEndpoint(parts[0]));
      ASSIGN_OR_RETURN(const double at_ms, ParseDouble(parts[1]));
      if (event.node < 0 || at_ms < 0.0) {
        return InvalidArgumentError("bad " + key + " clause: " + value);
      }
      event.at = FromMillis(at_ms);
      config.membership.push_back(event);
    } else if (key == "standby") {
      int node = -1;
      ASSIGN_OR_RETURN(node, ParseEndpoint(value));
      if (node < 0) {
        return InvalidArgumentError("bad standby clause: " + value);
      }
      config.standby_nodes.push_back(node);
    } else {
      return InvalidArgumentError("unknown fault clause: " + key);
    }
  }
  return config;
}

FaultConfig MakeChaosSchedule(const ChaosOptions& options) {
  FaultConfig config;
  config.seed = options.seed;
  config.drop_prob = options.drop_prob;
  const int standby_count =
      std::max(0, std::min(options.num_standby, options.num_nodes - 2));
  std::vector<int> members;
  std::vector<int> standby;
  for (int node = 0; node < options.num_nodes; ++node) {
    if (node >= options.num_nodes - standby_count) {
      standby.push_back(node);
      config.standby_nodes.push_back(node);
    } else {
      members.push_back(node);
    }
  }
  std::vector<int> crashed;
  // All randomness comes from one seeded ordinal stream, so the schedule
  // is a pure function of ChaosOptions.
  uint64_t ordinal = 0;
  auto uniform = [&] {
    return FaultUniform(options.seed ^ 0xc4a05c4edULL, ordinal++);
  };
  auto take = [&](std::vector<int>* pool) {
    size_t index = static_cast<size_t>(uniform() *
                                       static_cast<double>(pool->size()));
    index = std::min(index, pool->size() - 1);
    const int node = (*pool)[index];
    pool->erase(pool->begin() + static_cast<long>(index));
    return node;
  };

  enum EventClass { kCrash = 0, kRejoinEv, kJoinEv, kLeaveEv, kDegradeEv };
  // First pass walks every class once (feasibility permitting) so short
  // schedules still interleave all transition kinds; later events are
  // hash-picked among whatever is feasible.
  static constexpr EventClass kForced[] = {kCrash, kRejoinEv, kJoinEv,
                                           kLeaveEv, kDegradeEv};
  double now_ms = options.first_event_ms;
  for (int k = 0; k < options.events; ++k) {
    std::vector<EventClass> feasible;
    // Crashes and leaves keep the cluster at >= 2 live members.
    if (members.size() > 2) {
      feasible.push_back(kCrash);
    }
    if (!crashed.empty()) {
      feasible.push_back(kRejoinEv);
    }
    if (!standby.empty()) {
      feasible.push_back(kJoinEv);
    }
    if (members.size() > 2) {
      feasible.push_back(kLeaveEv);
    }
    if (members.size() >= 2) {
      feasible.push_back(kDegradeEv);
    }
    if (feasible.empty()) {
      break;
    }
    EventClass chosen = feasible[0];
    if (k < static_cast<int>(sizeof(kForced) / sizeof(kForced[0]))) {
      const EventClass want = kForced[k];
      if (std::find(feasible.begin(), feasible.end(), want) !=
          feasible.end()) {
        chosen = want;
      }
    } else {
      size_t index = static_cast<size_t>(
          uniform() * static_cast<double>(feasible.size()));
      chosen = feasible[std::min(index, feasible.size() - 1)];
    }
    switch (chosen) {
      case kCrash: {
        const int node = take(&members);
        config.crashes.push_back({node, FromMillis(now_ms)});
        crashed.push_back(node);
        break;
      }
      case kRejoinEv: {
        const int node = take(&crashed);
        config.membership.push_back(
            {MembershipEventKind::kRejoin, node, FromMillis(now_ms)});
        members.push_back(node);
        break;
      }
      case kJoinEv: {
        const int node = take(&standby);
        config.membership.push_back(
            {MembershipEventKind::kJoin, node, FromMillis(now_ms)});
        members.push_back(node);
        break;
      }
      case kLeaveEv: {
        const int node = take(&members);
        config.membership.push_back(
            {MembershipEventKind::kLeave, node, FromMillis(now_ms)});
        break;
      }
      case kDegradeEv: {
        std::vector<int> pool = members;
        const int src = take(&pool);
        const int dst = take(&pool);
        LinkDegradation window;
        window.src = src;
        window.dst = dst;
        window.start = FromMillis(now_ms);
        window.end = FromMillis(now_ms + options.degrade_duration_ms);
        window.bandwidth_factor = options.degrade_factor;
        config.degradations.push_back(window);
        break;
      }
    }
    now_ms += options.spacing_ms * (0.5 + uniform());
  }
  // Close any crash window left open so every crashed node rejoins and the
  // post-quiesce state check covers the full crash->rejoin lifecycle.
  while (!crashed.empty()) {
    const int node = take(&crashed);
    config.membership.push_back(
        {MembershipEventKind::kRejoin, node, FromMillis(now_ms)});
    now_ms += options.spacing_ms;
  }
  return config;
}

}  // namespace hipress
