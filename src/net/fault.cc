#include "src/net/fault.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/string_util.h"

namespace hipress {

SimTime FaultConfig::CrashTime(int node) const {
  SimTime earliest = -1;
  for (const NodeCrash& crash : crashes) {
    if (crash.node == node && (earliest < 0 || crash.at < earliest)) {
      earliest = crash.at;
    }
  }
  return earliest;
}

double FaultConfig::DegradationFactor(int src, int dst, SimTime when) const {
  double factor = 1.0;
  for (const LinkDegradation& window : degradations) {
    const bool src_match = window.src < 0 || window.src == src;
    const bool dst_match = window.dst < 0 || window.dst == dst;
    if (src_match && dst_match && when >= window.start && when < window.end &&
        window.bandwidth_factor > 0.0) {
      factor = std::min(factor, window.bandwidth_factor);
    }
  }
  return factor;
}

double FaultUniform(uint64_t seed, uint64_t ordinal) {
  uint64_t z = seed + (ordinal + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

namespace {

// Parses an endpoint that is either an integer or the '*' wildcard (-1).
StatusOr<int> ParseEndpoint(const std::string& text) {
  if (text == "*") {
    return -1;
  }
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value < 0) {
    return InvalidArgumentError("bad fault endpoint: " + text);
  }
  return static_cast<int>(value);
}

StatusOr<double> ParseDouble(const std::string& text) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return InvalidArgumentError("bad fault number: " + text);
  }
  return value;
}

}  // namespace

StatusOr<FaultConfig> ParseFaultSpec(const std::string& spec) {
  FaultConfig config;
  for (const std::string& raw : Split(spec, ',')) {
    const std::string clause = Trim(raw);
    if (clause.empty()) {
      continue;
    }
    const size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("fault clause missing '=': " + clause);
    }
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    if (key == "drop") {
      ASSIGN_OR_RETURN(config.drop_prob, ParseDouble(value));
      if (config.drop_prob < 0.0 || config.drop_prob >= 1.0) {
        return InvalidArgumentError("drop probability must be in [0, 1)");
      }
    } else if (key == "seed") {
      ASSIGN_OR_RETURN(const double seed, ParseDouble(value));
      config.seed = static_cast<uint64_t>(seed);
    } else if (key == "crash") {
      // crash=N@MS
      const std::vector<std::string> parts = Split(value, '@');
      if (parts.size() != 2) {
        return InvalidArgumentError("crash clause wants N@MS: " + value);
      }
      NodeCrash crash;
      ASSIGN_OR_RETURN(crash.node, ParseEndpoint(parts[0]));
      ASSIGN_OR_RETURN(const double at_ms, ParseDouble(parts[1]));
      if (crash.node < 0 || at_ms < 0.0) {
        return InvalidArgumentError("bad crash clause: " + value);
      }
      crash.at = FromMillis(at_ms);
      config.crashes.push_back(crash);
    } else if (key == "degrade") {
      // degrade=A-B@T0-T1@F (ms, remaining-bandwidth factor)
      const std::vector<std::string> parts = Split(value, '@');
      if (parts.size() != 3) {
        return InvalidArgumentError("degrade clause wants A-B@T0-T1@F: " +
                                    value);
      }
      const std::vector<std::string> link = Split(parts[0], '-');
      const std::vector<std::string> window = Split(parts[1], '-');
      if (link.size() != 2 || window.size() != 2) {
        return InvalidArgumentError("bad degrade clause: " + value);
      }
      LinkDegradation degradation;
      ASSIGN_OR_RETURN(degradation.src, ParseEndpoint(link[0]));
      ASSIGN_OR_RETURN(degradation.dst, ParseEndpoint(link[1]));
      ASSIGN_OR_RETURN(const double start_ms, ParseDouble(window[0]));
      ASSIGN_OR_RETURN(const double end_ms, ParseDouble(window[1]));
      ASSIGN_OR_RETURN(degradation.bandwidth_factor, ParseDouble(parts[2]));
      if (start_ms < 0.0 || end_ms <= start_ms ||
          degradation.bandwidth_factor <= 0.0 ||
          degradation.bandwidth_factor > 1.0) {
        return InvalidArgumentError("bad degrade clause: " + value);
      }
      degradation.start = FromMillis(start_ms);
      degradation.end = FromMillis(end_ms);
      config.degradations.push_back(degradation);
    } else {
      return InvalidArgumentError("unknown fault clause: " + key);
    }
  }
  return config;
}

}  // namespace hipress
