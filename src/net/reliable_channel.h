// Reliable transport over the lossy simulated network.
//
// The raw Network is fire-and-forget: under fault injection a message may
// simply never arrive. ReliableChannel layers the classic recovery loop on
// top — ack on delivery, a per-transfer timeout derived from the network's
// uncontended send time plus current endpoint backlog, and capped
// exponential backoff with a bounded retry budget. Exhausting the budget
// declares the peer failed and reports an UNAVAILABLE Status upward instead
// of hanging, which is what lets the BSP barrier above degrade gracefully
// rather than deadlock when a node dies.
//
// Everything is scheduled on the simulator and all randomness comes from
// the network's seeded fault schedule, so runs stay bit-reproducible.
#ifndef HIPRESS_SRC_NET_RELIABLE_CHANNEL_H_
#define HIPRESS_SRC_NET_RELIABLE_CHANNEL_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/net/network.h"
#include "src/sim/simulator.h"

namespace hipress {

struct ReliableTransportConfig {
  // Wire size of an acknowledgement message.
  uint64_t ack_bytes = 64;
  // Per-attempt timeout: factor * (uncontended data + ack time) + current
  // endpoint backlog + slack. The backlog term keeps honest congestion from
  // masquerading as loss.
  double timeout_factor = 3.0;
  SimTime timeout_slack = FromMicros(100.0);
  // Total attempts per transfer (first send + retries). Exhausting the
  // budget fails the transfer and marks the peer dead.
  int max_attempts = 5;
  // Capped exponential backoff between attempts.
  SimTime backoff_base = FromMicros(100.0);
  double backoff_factor = 2.0;
  SimTime backoff_cap = FromMillis(10.0);
};

class ReliableChannel {
 public:
  // `metrics` (optional) receives "net.retries", "net.retransmit_bytes",
  // "net.acks", "net.peer_failures" and the "net.backoff_us" histogram;
  // `spans` (optional) records each backoff wait on the sender's
  // "net:retry" lane.
  ReliableChannel(Simulator* sim, Network* net, ReliableTransportConfig config,
                  MetricsRegistry* metrics = nullptr,
                  SpanCollector* spans = nullptr);

  // Sends `message` reliably; `on_complete` fires with OkStatus() once the
  // sender observes the ack (possibly after retries), or with an
  // UNAVAILABLE error once the retry budget for the peer is exhausted.
  // Sends to a peer already marked failed fail fast on the next event.
  void Send(NetMessage message, std::function<void(const Status&)> on_complete);

  // As above, plus `on_deliver` fires exactly once at the *receiver's*
  // delivery time with the first successfully delivered copy of the
  // message (duplicates from spurious retransmits are latched out). The
  // delivered NetMessage aliases the transfer's payload shared_ptr — the
  // channel's ack/timeout/backoff bookkeeping holds the same refcounted
  // block across every retransmit rather than a byte copy, so a pooled
  // payload travels the full retry lifecycle without leaving pool memory
  // (docs/COMMUNICATION.md).
  void Send(NetMessage message,
            std::function<void(const NetMessage&)> on_deliver,
            std::function<void(const Status&)> on_complete);

  // Invoked (at most once per peer) when a retry budget exhausts against
  // that peer; fires before the offending transfer's on_complete.
  void set_on_peer_failure(std::function<void(int peer)> handler) {
    on_peer_failure_ = std::move(handler);
  }

  // Current membership epoch. Every outgoing message is stamped with it at
  // Send time; a message delivered after the channel advanced past its
  // stamp is rejected as stale — acked (the sender's transfer completes)
  // but never handed to on_deliver, because it was built over a worker set
  // that no longer exists ("net.stale_epoch_rejected").
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }
  uint64_t epoch() const { return epoch_; }
  uint64_t stale_epoch_rejected() const { return stale_epoch_rejected_; }

  // Clears the failed mark on `peer` so it can carry traffic again — the
  // rejoin path, called once the node has been re-admitted to the
  // membership view and its state re-synced. No-op for a healthy peer.
  void ReinstatePeer(int peer);

  bool peer_failed(int node) const { return peer_failed_[node]; }
  const std::vector<int>& failed_peers() const { return failed_peers_; }
  uint64_t retries() const { return retries_; }
  uint64_t acks() const { return acks_; }

  // Wires the always-on black box: retries and budget exhaustion append
  // events to the sender's ring, and exhaustion triggers a dump — the
  // recorder's tail then shows the doomed transfer's final retransmits
  // (docs/OBSERVABILITY.md). Not owned; null disables.
  void set_flight_recorder(FlightRecorder* recorder) {
    flight_ = recorder;
    if (flight_ != nullptr) {
      ev_retry_ = flight_->Intern("net.retry");
      ev_exhausted_ = flight_->Intern("net.retry_exhausted");
    }
  }

 private:
  struct Transfer {
    // Holds the payload shared_ptr for the transfer's whole lifetime;
    // retransmits re-send this exact message, refcount and all.
    NetMessage message;
    std::function<void(const NetMessage&)> on_deliver;  // may be empty
    std::function<void(const Status&)> on_complete;
    int attempts = 0;
    bool done = false;       // sender-side: ack observed or transfer failed
    bool delivered = false;  // receiver-side: first copy handed upward
  };

  void Attempt(uint64_t id);
  void HandleTimeout(uint64_t id, int attempt);
  void MarkPeerFailed(int peer);
  SimTime AttemptTimeout(const NetMessage& message) const;
  SimTime BackoffDelay(int attempt) const;

  Simulator* sim_;
  Network* net_;
  ReliableTransportConfig config_;
  SpanCollector* spans_ = nullptr;
  Counter* retries_metric_ = nullptr;
  Counter* retransmit_bytes_metric_ = nullptr;
  Counter* acks_metric_ = nullptr;
  Counter* peer_failures_metric_ = nullptr;
  Counter* budget_exhausted_metric_ = nullptr;
  Counter* stale_epoch_metric_ = nullptr;
  Histogram* backoff_us_ = nullptr;
  // Black-box event sink and interned ids (set_flight_recorder).
  FlightRecorder* flight_ = nullptr;
  uint16_t ev_retry_ = 0;
  uint16_t ev_exhausted_ = 0;

  std::function<void(int)> on_peer_failure_;
  std::unordered_map<uint64_t, Transfer> transfers_;
  std::vector<bool> peer_failed_;
  std::vector<int> failed_peers_;
  uint64_t next_transfer_id_ = 1;
  uint64_t retries_ = 0;
  uint64_t acks_ = 0;
  uint64_t epoch_ = 0;
  uint64_t stale_epoch_rejected_ = 0;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_NET_RELIABLE_CHANNEL_H_
