// Simulated cluster network.
//
// Models N homogeneous nodes joined through a configurable interconnect
// Topology (src/net/topology.h). The default FlatTopology reproduces the
// original model — full-duplex per-node links at the paper's settings
// (100/56/25/10 Gbps), every pair one propagation latency apart — while
// FatTreeTopology routes cross-rack traffic over shared, possibly
// oversubscribed ToR/spine links. Every directed link a route crosses is
// FIFO-serialized independently and forwards cut-through, so the model
// captures per-link serialization, bidirectional bandwidth, endpoint
// contention, and — under a fat tree — cross-job contention on the shared
// fabric (docs/TOPOLOGY.md).
#ifndef HIPRESS_SRC_NET_NETWORK_H_
#define HIPRESS_SRC_NET_NETWORK_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/buffer_pool.h"
#include "src/common/flight_recorder.h"
#include "src/common/metrics.h"
#include "src/common/units.h"
#include "src/net/fault.h"
#include "src/net/topology.h"
#include "src/sim/simulator.h"

namespace hipress {

struct NetworkConfig {
  Bandwidth link_bandwidth = Bandwidth::Gbps(100.0);
  SimTime latency = FromMicros(5.0);
  // Fixed per-message software overhead (RPC framing, RDMA post, etc.).
  SimTime per_message_overhead = FromMicros(2.0);
  // Interconnect shape; defaults to the flat full-duplex model.
  TopologyConfig topology;
  // Deterministic per-transfer bandwidth jitter in [0, 1): each message's
  // serialization time is scaled by a factor in [1, 1 + jitter], drawn from
  // a hash of (src, dst, tag) and a per-sender sequence number — so
  // concurrent jobs on disjoint nodes draw independent jitter streams.
  // Models the interference the paper's cost-model future work worries
  // about; 0 disables.
  double bandwidth_jitter = 0.0;
  uint64_t jitter_seed = 0x71773;
  // Deterministic fault injection (drops, degradation windows, crashes);
  // defaults to a perfect network. See src/net/fault.h.
  FaultConfig faults;

  // Planning-time view of the configured topology, used by SeCoPa and the
  // cost models so compression decisions price against the real path:
  // end-to-end propagation of a worst-case (cross-rack) route, and the
  // fair-share per-flow bandwidth once the oversubscribed tier is split
  // among its rack's hosts. Both collapse to the flat values under kFlat.
  SimTime path_latency() const {
    if (topology.kind == TopologyKind::kFatTree) {
      return latency + 2 * topology.tor_hop_latency;
    }
    return latency;
  }
  Bandwidth effective_bandwidth() const {
    if (topology.kind == TopologyKind::kFatTree &&
        topology.oversubscription > 1.0) {
      return Bandwidth{link_bandwidth.bits_per_second /
                       topology.oversubscription};
    }
    return link_bandwidth;
  }
};

// A message in flight. The payload pointer is opaque to the network and may
// be null for timing-only simulations.
struct NetMessage {
  int src = -1;
  int dst = -1;
  uint64_t bytes = 0;
  uint64_t tag = 0;
  // Membership epoch the sender stamped at Send time (ReliableChannel).
  // A receiver whose channel has advanced past it rejects the frame as
  // stale instead of handing it upward (docs/FAULT_TOLERANCE.md).
  uint64_t epoch = 0;
  std::shared_ptr<void> payload;
};

// Wraps a copy of `bytes` as a NetMessage payload backed by `pool`. The
// block recycles into the pool when the last reference drops, so
// real-data sends stop allocating once the pool is warm. Readers downcast
// with std::static_pointer_cast<PooledBytes>(message.payload).
inline std::shared_ptr<PooledBytes> MakePooledPayload(
    std::span<const uint8_t> bytes, BufferPool* pool = &BufferPool::Global()) {
  auto payload = std::make_shared<PooledBytes>(pool);
  payload->resize(bytes.size());
  if (!bytes.empty()) {
    std::memcpy(payload->data(), bytes.data(), bytes.size());
  }
  return payload;
}

class Network {
 public:
  // `metrics` (optional) receives transfer counts/bytes and the endpoint
  // queueing-delay histogram ("net.messages_sent", "net.tx_bytes",
  // "net.queue_delay_us"); `spans` (optional) receives one uplink span on
  // the sender's track and one downlink span on the receiver's per message
  // (plus fabric spans for cross-rack hops), for the merged Perfetto trace.
  Network(Simulator* sim, int num_nodes, NetworkConfig config,
          MetricsRegistry* metrics = nullptr, SpanCollector* spans = nullptr);

  // Sends `message` from message.src to message.dst; `on_delivered` fires at
  // the receiver's delivery time. src/dst must be valid and distinct
  // (CHECK-enforced: out-of-range or equal endpoints abort). Under fault
  // injection a dropped or blackholed message never fires `on_delivered` —
  // reliability is ReliableChannel's job, one layer up.
  void Send(NetMessage message,
            std::function<void(const NetMessage&)> on_delivered);

  // True when `node` is not inside a crash window at simulated time
  // `when`; a scheduled rejoin closes the window (src/net/fault.h).
  bool AliveAt(int node, SimTime when) const {
    return config_.faults.AliveAt(node, when);
  }
  bool alive(int node) const { return AliveAt(node, sim_->now()); }

  // Earliest time a new transfer from src to dst could start serializing,
  // given the current backlog on every link of its route.
  SimTime EarliestStart(int src, int dst) const;

  // Pure serialization time of `bytes` on one NIC link (no latency or
  // overhead).
  SimTime TransferTime(uint64_t bytes) const {
    return config_.link_bandwidth.TransferTime(bytes);
  }

  // Modelled end-to-end time for an uncontended `bytes` transfer over the
  // topology's worst-case route: cut-through serialization bounded by the
  // slowest link tier, plus propagation across every hop and the fixed
  // overhead. Identical to the original flat formula under FlatTopology.
  SimTime UncontendedSendTime(uint64_t bytes) const;

  int num_nodes() const { return num_nodes_; }
  const NetworkConfig& config() const { return config_; }
  const Topology& topology() const { return *topology_; }

  // Pool backing wire-path payloads (batch frames, retransmit blocks,
  // staging copies). Owned by the network so wire allocations are gated
  // separately from compute-side scratch: it publishes "net.pool_hits"/
  // "net.pool_misses" (plus bytes_in_use/peak_bytes) on the registry the
  // network was constructed with. After warm-up the wire path must stop
  // missing — the invariant bench/bench_wire_pool.cc gates.
  BufferPool* wire_pool() { return &wire_pool_; }

  uint64_t tx_bytes(int node) const { return tx_bytes_[node]; }
  uint64_t rx_bytes(int node) const { return rx_bytes_[node]; }
  // Cumulative serialization time charged to a node's NIC uplink/downlink —
  // the transmit and receive sides of endpoint contention.
  SimTime uplink_busy(int node) const { return link_busy_[node]; }
  SimTime downlink_busy(int node) const {
    return link_busy_[num_nodes_ + node];
  }
  // Cumulative serialization on a ToR fabric link (0 when flat or idle).
  SimTime tor_uplink_busy(int tor) const {
    return link_busy_[2 * num_nodes_ + tor];
  }
  uint64_t messages_delivered() const { return messages_delivered_; }
  uint64_t messages_dropped() const { return messages_dropped_; }

  // Wires the always-on black box: every send/delivery/drop appends a
  // compact event to the owning node's ring (src/common/flight_recorder.h).
  // Not owned; null disables.
  void set_flight_recorder(FlightRecorder* recorder) {
    flight_ = recorder;
    if (flight_ != nullptr) {
      ev_send_ = flight_->Intern("net.send");
      ev_deliver_ = flight_->Intern("net.deliver");
      ev_drop_ = flight_->Intern("net.drop");
    }
  }
  FlightRecorder* flight_recorder() const { return flight_; }

 private:
  Simulator* sim_;
  int num_nodes_;
  NetworkConfig config_;
  SpanCollector* spans_ = nullptr;
  std::unique_ptr<Topology> topology_;
  BufferPool wire_pool_;
  // Cached metric handles; all null when no registry is wired.
  Counter* messages_sent_metric_ = nullptr;
  Counter* messages_delivered_metric_ = nullptr;
  Counter* tx_bytes_metric_ = nullptr;
  Counter* drops_metric_ = nullptr;
  Counter* dropped_bytes_metric_ = nullptr;
  Counter* degraded_metric_ = nullptr;
  Histogram* queue_delay_us_ = nullptr;
  Histogram* transfer_bytes_ = nullptr;
  // Black-box event sink and its interned event ids (set_flight_recorder).
  FlightRecorder* flight_ = nullptr;
  uint16_t ev_send_ = 0;
  uint16_t ev_deliver_ = 0;
  uint16_t ev_drop_ = 0;

  // Per directed link (uplinks, downlinks, then ToR fabric links): time the
  // link is serialized through, and cumulative busy time.
  std::vector<SimTime> link_free_;
  std::vector<SimTime> link_busy_;
  std::vector<uint64_t> tx_bytes_;
  std::vector<uint64_t> rx_bytes_;
  // Per-sender jitter sequence; keeps jitter draws independent across
  // disjoint sender sets (multi-job determinism).
  std::vector<uint64_t> jitter_seq_;
  uint64_t messages_delivered_ = 0;
  uint64_t messages_sent_ = 0;
  uint64_t messages_dropped_ = 0;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_NET_NETWORK_H_
