#include "src/net/topology.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace hipress {
namespace {

class FlatTopology : public Topology {
 public:
  FlatTopology(int num_nodes, SimTime endpoint_latency)
      : num_nodes_(num_nodes), endpoint_latency_(endpoint_latency) {}

  int num_links() const override { return 2 * num_nodes_; }
  int num_tors() const override { return 0; }
  int tor_of(int /*node*/) const override { return -1; }

  void FillRoute(int src, int dst, Route* route) const override {
    route->hops = 2;
    route->link[0] = src;
    route->link[1] = num_nodes_ + dst;
    route->hop_latency[1] = endpoint_latency_;
    route->serialize_scale[0] = 1.0;
    route->serialize_scale[1] = 1.0;
  }

  std::string Describe() const override {
    return StrFormat("flat(nodes=%d)", num_nodes_);
  }

 private:
  int num_nodes_;
  SimTime endpoint_latency_;
};

class FatTreeTopology : public Topology {
 public:
  FatTreeTopology(const TopologyConfig& config, int num_nodes,
                  SimTime endpoint_latency)
      : num_nodes_(num_nodes),
        hosts_per_tor_(std::max(1, config.hosts_per_tor)),
        oversubscription_(std::max(config.oversubscription, 1e-9)),
        tor_hop_latency_(config.tor_hop_latency),
        endpoint_latency_(endpoint_latency) {
    num_tors_ = (num_nodes_ + hosts_per_tor_ - 1) / hosts_per_tor_;
    // A ToR uplink runs at hosts_per_tor / oversubscription times the host
    // NIC rate; serialization time scales by the inverse.
    fabric_scale_ = oversubscription_ / static_cast<double>(hosts_per_tor_);
  }

  int num_links() const override { return 2 * num_nodes_ + 2 * num_tors_; }
  int num_tors() const override { return num_tors_; }
  int tor_of(int node) const override { return node / hosts_per_tor_; }

  void FillRoute(int src, int dst, Route* route) const override {
    const int src_tor = tor_of(src);
    const int dst_tor = tor_of(dst);
    if (src_tor == dst_tor) {
      // Rack-local: the ToR switches the flow without touching the spine,
      // reproducing the flat model's timing exactly.
      route->hops = 2;
      route->link[0] = src;
      route->link[1] = num_nodes_ + dst;
      route->hop_latency[1] = endpoint_latency_;
      route->serialize_scale[0] = 1.0;
      route->serialize_scale[1] = 1.0;
      return;
    }
    route->hops = 4;
    route->link[0] = src;
    route->link[1] = 2 * num_nodes_ + src_tor;
    route->link[2] = 2 * num_nodes_ + num_tors_ + dst_tor;
    route->link[3] = num_nodes_ + dst;
    route->hop_latency[1] = tor_hop_latency_;
    route->hop_latency[2] = tor_hop_latency_;
    route->hop_latency[3] = endpoint_latency_;
    route->serialize_scale[0] = 1.0;
    route->serialize_scale[1] = fabric_scale_;
    route->serialize_scale[2] = fabric_scale_;
    route->serialize_scale[3] = 1.0;
  }

  std::string Describe() const override {
    return StrFormat("fattree(nodes=%d,tors=%d,hosts=%d,ratio=%.2f)",
                     num_nodes_, num_tors_, hosts_per_tor_,
                     oversubscription_);
  }

 private:
  int num_nodes_;
  int hosts_per_tor_;
  double oversubscription_;
  SimTime tor_hop_latency_;
  SimTime endpoint_latency_;
  int num_tors_ = 0;
  double fabric_scale_ = 1.0;
};

}  // namespace

std::unique_ptr<Topology> MakeTopology(const TopologyConfig& config,
                                       int num_nodes,
                                       SimTime endpoint_latency) {
  CHECK_GT(num_nodes, 0);
  switch (config.kind) {
    case TopologyKind::kFlat:
      return std::make_unique<FlatTopology>(num_nodes, endpoint_latency);
    case TopologyKind::kFatTree:
      return std::make_unique<FatTreeTopology>(config, num_nodes,
                                               endpoint_latency);
  }
  return std::make_unique<FlatTopology>(num_nodes, endpoint_latency);
}

}  // namespace hipress
