#include "src/net/reliable_channel.h"

#include <algorithm>
#include <utility>

#include "src/common/string_util.h"

namespace hipress {

ReliableChannel::ReliableChannel(Simulator* sim, Network* net,
                                 ReliableTransportConfig config,
                                 MetricsRegistry* metrics,
                                 SpanCollector* spans)
    : sim_(sim), net_(net), config_(config), spans_(spans) {
  peer_failed_.assign(static_cast<size_t>(net->num_nodes()), false);
  if (metrics != nullptr) {
    retries_metric_ = &metrics->counter("net.retries");
    retransmit_bytes_metric_ = &metrics->counter("net.retransmit_bytes");
    acks_metric_ = &metrics->counter("net.acks");
    peer_failures_metric_ = &metrics->counter("net.peer_failures");
    budget_exhausted_metric_ = &metrics->counter("net.retry_budget_exhausted");
    stale_epoch_metric_ = &metrics->counter("net.stale_epoch_rejected");
    backoff_us_ = &metrics->histogram("net.backoff_us");
  }
}

SimTime ReliableChannel::AttemptTimeout(const NetMessage& message) const {
  const SimTime round_trip = net_->UncontendedSendTime(message.bytes) +
                             net_->UncontendedSendTime(config_.ack_bytes);
  // Both directions' visible backlog: the data message queues behind
  // src->dst, and the ack will queue behind the receiver's own sends on
  // the reverse path (bulk traffic there otherwise triggers spurious
  // retransmit storms).
  const SimTime backlog =
      std::max<SimTime>(
          0, net_->EarliestStart(message.src, message.dst) - sim_->now()) +
      std::max<SimTime>(
          0, net_->EarliestStart(message.dst, message.src) - sim_->now());
  return static_cast<SimTime>(config_.timeout_factor *
                              static_cast<double>(round_trip)) +
         backlog + config_.timeout_slack;
}

SimTime ReliableChannel::BackoffDelay(int attempt) const {
  double delay = static_cast<double>(config_.backoff_base);
  for (int i = 1; i < attempt; ++i) {
    delay *= config_.backoff_factor;
  }
  return std::min<SimTime>(config_.backoff_cap,
                           static_cast<SimTime>(delay));
}

void ReliableChannel::Send(NetMessage message,
                           std::function<void(const Status&)> on_complete) {
  Send(std::move(message), nullptr, std::move(on_complete));
}

void ReliableChannel::Send(NetMessage message,
                           std::function<void(const NetMessage&)> on_deliver,
                           std::function<void(const Status&)> on_complete) {
  const int known_dead =
      peer_failed(message.dst) ? message.dst
      : peer_failed(message.src) ? message.src
                                 : -1;
  if (known_dead >= 0) {
    // Known-dead endpoint: fail fast on the next event instead of burning
    // a full retry budget per transfer. The blamed peer and the epoch the
    // send was attempted under let the caller tell a stale plan from a
    // fresh failure.
    const uint64_t epoch = epoch_;
    sim_->Schedule(0,
                   [known_dead, epoch, on_complete = std::move(on_complete)] {
      on_complete(UnavailableError(StrFormat(
          "peer %d already marked failed (send attempted at epoch %llu)",
          known_dead, static_cast<unsigned long long>(epoch))));
    });
    return;
  }
  // Stamp the sender's current membership epoch; retransmits reuse the
  // stamp, so a transfer that outlives a membership change is rejected on
  // delivery rather than feeding a dissolved worker set.
  message.epoch = epoch_;
  const uint64_t id = next_transfer_id_++;
  Transfer& transfer = transfers_[id];
  transfer.message = std::move(message);
  transfer.on_deliver = std::move(on_deliver);
  transfer.on_complete = std::move(on_complete);
  Attempt(id);
}

void ReliableChannel::Attempt(uint64_t id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end() || it->second.done) {
    return;
  }
  Transfer& transfer = it->second;
  ++transfer.attempts;
  const int attempt = transfer.attempts;
  const NetMessage& data = transfer.message;
  const SimTime timeout = AttemptTimeout(data);
  // Data out; the receiver acks every received copy (duplicates from
  // spurious retransmits are absorbed by the `done` latch).
  net_->Send(data, [this, id](const NetMessage& delivered) {
    // First successful copy reaches the application; later duplicates only
    // refresh the ack. `delivered` aliases the transfer's stored payload —
    // no copy happened on the way here.
    auto deliver_it = transfers_.find(id);
    if (deliver_it != transfers_.end() && !deliver_it->second.delivered) {
      deliver_it->second.delivered = true;
      if (delivered.epoch < epoch_) {
        // The membership view advanced while this copy was in flight: the
        // payload was built over a worker set that no longer exists.
        // Reject it (still acked below — the *transfer* is done, the
        // content is just obsolete).
        ++stale_epoch_rejected_;
        if (stale_epoch_metric_ != nullptr) {
          stale_epoch_metric_->Increment();
        }
      } else if (deliver_it->second.on_deliver) {
        deliver_it->second.on_deliver(delivered);
      }
    }
    NetMessage ack;
    ack.src = delivered.dst;
    ack.dst = delivered.src;
    ack.bytes = config_.ack_bytes;
    ack.tag = delivered.tag;
    net_->Send(ack, [this, id](const NetMessage&) {
      auto ack_it = transfers_.find(id);
      if (ack_it == transfers_.end() || ack_it->second.done) {
        return;
      }
      ack_it->second.done = true;
      ++acks_;
      if (acks_metric_ != nullptr) {
        acks_metric_->Increment();
      }
      auto on_complete = std::move(ack_it->second.on_complete);
      transfers_.erase(ack_it);
      on_complete(OkStatus());
    });
  });
  sim_->Schedule(timeout, [this, id, attempt] { HandleTimeout(id, attempt); });
}

void ReliableChannel::HandleTimeout(uint64_t id, int attempt) {
  auto it = transfers_.find(id);
  if (it == transfers_.end() || it->second.done ||
      it->second.attempts != attempt) {
    return;  // acked meanwhile, or a newer attempt owns the transfer
  }
  Transfer& transfer = it->second;
  if (transfer.attempts >= config_.max_attempts) {
    // Blame the endpoint that actually died: a crashed *sender* blackholes
    // its own retransmits, and declaring the destination failed would evict
    // an innocent node from the topology.
    if (budget_exhausted_metric_ != nullptr) {
      budget_exhausted_metric_->Increment();
    }
    const int dead = !net_->alive(transfer.message.src)
                         ? transfer.message.src
                         : transfer.message.dst;
    if (flight_ != nullptr) {
      flight_->Record(transfer.message.src, ev_exhausted_, sim_->now(),
                      static_cast<uint64_t>(dead), transfer.message.bytes);
      flight_->TriggerDump("retry-budget-exhausted");
    }
    MarkPeerFailed(dead);
    return;
  }
  ++retries_;
  if (retries_metric_ != nullptr) {
    retries_metric_->Increment();
    retransmit_bytes_metric_->Increment(transfer.message.bytes);
  }
  if (flight_ != nullptr) {
    flight_->Record(transfer.message.src, ev_retry_, sim_->now(),
                    static_cast<uint64_t>(transfer.message.dst),
                    static_cast<uint64_t>(transfer.attempts));
  }
  const SimTime backoff = BackoffDelay(transfer.attempts);
  if (backoff_us_ != nullptr) {
    backoff_us_->Observe(static_cast<double>(backoff) / kMicrosecond);
  }
  if (spans_ != nullptr) {
    spans_->Add(transfer.message.src, kTraceLaneRetry,
                StrFormat("backoff #%d ->%d", transfer.attempts,
                          transfer.message.dst),
                sim_->now(), sim_->now() + backoff);
  }
  sim_->Schedule(backoff, [this, id] { Attempt(id); });
}

void ReliableChannel::MarkPeerFailed(int peer) {
  const bool first_failure = !peer_failed_[peer];
  if (first_failure) {
    peer_failed_[peer] = true;
    failed_peers_.push_back(peer);
    if (peer_failures_metric_ != nullptr) {
      peer_failures_metric_->Increment();
    }
  }
  // Fail every open transfer touching the dead peer (either direction), not
  // just the one whose budget ran out — they would each waste a full budget
  // discovering the same corpse.
  std::vector<uint64_t> doomed;
  for (const auto& [id, transfer] : transfers_) {
    if (!transfer.done && (transfer.message.dst == peer ||
                           transfer.message.src == peer)) {
      doomed.push_back(id);
    }
  }
  std::vector<std::function<void(const Status&)>> callbacks;
  callbacks.reserve(doomed.size());
  for (const uint64_t id : doomed) {
    auto it = transfers_.find(id);
    if (it == transfers_.end() || it->second.done) {
      continue;
    }
    it->second.done = true;
    callbacks.push_back(std::move(it->second.on_complete));
    transfers_.erase(it);
  }
  // Peer-failure handler first: the engine uses it to cancel whole task
  // graphs before individual send completions trickle in.
  if (first_failure && on_peer_failure_) {
    on_peer_failure_(peer);
  }
  const Status status = UnavailableError(StrFormat(
      "retry budget exhausted: peer %d unresponsive after %d attempts "
      "at epoch %llu",
      peer, config_.max_attempts,
      static_cast<unsigned long long>(epoch_)));
  for (auto& callback : callbacks) {
    callback(status);
  }
}

void ReliableChannel::ReinstatePeer(int peer) {
  if (peer < 0 || peer >= static_cast<int>(peer_failed_.size()) ||
      !peer_failed_[peer]) {
    return;
  }
  peer_failed_[peer] = false;
  failed_peers_.erase(
      std::remove(failed_peers_.begin(), failed_peers_.end(), peer),
      failed_peers_.end());
}

}  // namespace hipress
