// Cluster interconnect topologies for the simulated network.
//
// A Topology maps a (src, dst) node pair onto the ordered list of directed
// links a message crosses — its Route — plus per-hop propagation latency and
// per-link serialization scaling. The Network prices and serializes every
// transfer through that route, so endpoint NICs and shared fabric links
// contend independently.
//
//  - FlatTopology: the original model — every node pair is joined by the
//    sender's uplink and the receiver's downlink, one propagation latency
//    apart. Two hops, no shared fabric.
//  - FatTreeTopology: NIC -> ToR -> spine -> ToR -> NIC. Nodes group into
//    top-of-rack switches (`hosts_per_tor`); same-rack traffic short-cuts
//    through the ToR and behaves like the flat model, while cross-rack
//    traffic additionally crosses the sender ToR's uplink and the receiver
//    ToR's downlink into the spine. ToR uplinks carry
//    hosts_per_tor / oversubscription times the host NIC bandwidth, so an
//    oversubscription ratio > hosts_per_tor makes the fabric itself the
//    per-flow bottleneck, and any ratio > 1 makes it the shared bottleneck
//    once enough flows collide (docs/TOPOLOGY.md).
//
// Link ids are dense and stable: uplink(node) = node,
// downlink(node) = N + node, ToR uplink(t) = 2N + t,
// ToR downlink(t) = 2N + T + t.
#ifndef HIPRESS_SRC_NET_TOPOLOGY_H_
#define HIPRESS_SRC_NET_TOPOLOGY_H_

#include <memory>
#include <string>

#include "src/common/units.h"

namespace hipress {

enum class TopologyKind {
  kFlat,
  kFatTree,
};

struct TopologyConfig {
  TopologyKind kind = TopologyKind::kFlat;
  // Fat-tree shape; ignored under kFlat. `oversubscription` is the classic
  // ratio of rack-internal to rack-external capacity: a ToR uplink carries
  // hosts_per_tor * host_bandwidth / oversubscription.
  int hosts_per_tor = 16;
  double oversubscription = 1.0;
  // Extra one-way propagation per fabric hop (NIC->ToR handoff into the
  // spine and back down); a cross-rack route adds two of these on top of
  // the endpoint latency.
  SimTime tor_hop_latency = FromMicros(1.0);
};

// An ordered walk over directed links, filled allocation-free into caller
// storage. Segment 0 is the sender's NIC uplink; the last segment is the
// receiver's NIC downlink. `hop_latency[i]` is the propagation delay between
// segment i-1 and segment i (index 0 unused); `serialize_scale[i]` scales
// the NIC serialization time on that link (1.0 = host NIC rate, < 1.0 = a
// fatter fabric link).
struct Route {
  static constexpr int kMaxHops = 4;
  int hops = 0;
  int link[kMaxHops] = {};
  SimTime hop_latency[kMaxHops] = {};
  double serialize_scale[kMaxHops] = {1.0, 1.0, 1.0, 1.0};
};

class Topology {
 public:
  virtual ~Topology() = default;

  // Total directed links (NIC uplinks + downlinks + fabric links).
  virtual int num_links() const = 0;
  virtual int num_tors() const = 0;  // 0 under kFlat
  virtual void FillRoute(int src, int dst, Route* route) const = 0;
  // Rack index of `node`; -1 under kFlat.
  virtual int tor_of(int node) const = 0;
  virtual std::string Describe() const = 0;
};

// `endpoint_latency` is the flat end-to-end propagation delay (the existing
// NetworkConfig::latency); topologies distribute it over the route so a
// flat route and a same-rack fat-tree route reproduce the original timing.
std::unique_ptr<Topology> MakeTopology(const TopologyConfig& config,
                                       int num_nodes,
                                       SimTime endpoint_latency);

}  // namespace hipress

#endif  // HIPRESS_SRC_NET_TOPOLOGY_H_
