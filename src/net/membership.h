// Epoch-numbered membership views of the live worker set.
//
// PR 2's fault layer only ever shrinks the cluster: a crashed node is gone
// forever. The MembershipManager turns that into a full lifecycle — planned
// leaves (drain + clean exit), planned joins from a standby pool, and
// crash rejoins — by maintaining an epoch-numbered view of the current
// members. Every transition produces a new epoch; the trainer re-plans
// partitions/codecs over the new view at the next iteration boundary and
// stamps the ReliableChannel with the new epoch so messages sent under an
// older view are rejected on delivery (docs/FAULT_TOLERANCE.md).
//
// The manager is pure bookkeeping: it never touches the simulator, so
// attaching it to a run without membership events changes no timing.
#ifndef HIPRESS_SRC_NET_MEMBERSHIP_H_
#define HIPRESS_SRC_NET_MEMBERSHIP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/units.h"

namespace hipress {

// Why a node entered or exited the view.
enum class MembershipChange {
  kJoin,    // standby node admitted
  kLeave,   // planned drain + exit
  kCrash,   // fail-stop detection (retry budget exhausted / ground truth)
  kRejoin,  // crashed node re-admitted after state re-sync
};

const char* MembershipChangeName(MembershipChange change);

// One recorded transition; the log of these replays bit-identically for a
// fixed fault schedule (LogString()).
struct MembershipRecord {
  uint64_t epoch = 0;  // epoch the transition created
  MembershipChange change = MembershipChange::kJoin;
  int node = -1;
  SimTime at = 0;
  int members_after = 0;  // view size once the transition applied
};

class MembershipManager {
 public:
  // `num_nodes` is the full node id space [0, num_nodes); `standby` lists
  // nodes excluded from the initial view (epoch 0). `metrics` (optional)
  // receives the "membership.epoch"/"membership.size" gauges and
  // per-transition counters ("membership.joins", ...).
  MembershipManager(int num_nodes, const std::vector<int>& standby,
                    MetricsRegistry* metrics = nullptr);

  // Current view. `members()` is always sorted ascending.
  uint64_t epoch() const { return epoch_; }
  const std::vector<int>& members() const { return members_; }
  int size() const { return static_cast<int>(members_.size()); }
  bool is_member(int node) const;

  // Admits `node` (kJoin or kRejoin) / removes `node` (kLeave or kCrash)
  // at simulated time `at`, advancing the epoch. CHECK-fails on a
  // transition that does not apply (admitting a member, removing a
  // non-member, removing the last member) — the trainer validates
  // schedules before applying them.
  uint64_t Admit(int node, MembershipChange change, SimTime at);
  uint64_t Remove(int node, MembershipChange change, SimTime at);

  uint64_t joins() const { return joins_; }
  uint64_t leaves() const { return leaves_; }
  uint64_t crashes() const { return crashes_; }
  uint64_t rejoins() const { return rejoins_; }

  const std::vector<MembershipRecord>& log() const { return log_; }

  // Deterministic one-line-per-transition serialization; two runs of the
  // same fault schedule must reproduce it byte-for-byte (the chaos-soak
  // replay gate in bench/bench_membership.cc).
  std::string LogString() const;

 private:
  void Record(MembershipChange change, int node, SimTime at);

  int num_nodes_;
  uint64_t epoch_ = 0;
  std::vector<int> members_;
  std::vector<MembershipRecord> log_;
  uint64_t joins_ = 0;
  uint64_t leaves_ = 0;
  uint64_t crashes_ = 0;
  uint64_t rejoins_ = 0;
  Gauge* epoch_gauge_ = nullptr;
  Gauge* size_gauge_ = nullptr;
  Counter* joins_counter_ = nullptr;
  Counter* leaves_counter_ = nullptr;
  Counter* crashes_counter_ = nullptr;
  Counter* rejoins_counter_ = nullptr;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_NET_MEMBERSHIP_H_
