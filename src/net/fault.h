// Deterministic fault injection for the simulated cluster network.
//
// Three fault classes, all derived from seeded hashes or fixed schedules so
// a run is bit-reproducible (no wall-clock randomness):
//
//  * per-message drops — each transfer is dropped with probability
//    `drop_prob`, decided by a SplitMix64 hash of (seed, message ordinal);
//  * link degradation windows — a chosen link (or wildcard endpoint) loses
//    bandwidth during [start, end), modelling congested or flapping links;
//  * scheduled node crashes — from time `at` the node neither sends nor
//    receives; messages touching it are blackholed.
//
// The network applies these at Send/delivery time; recovery (retries,
// backoff, peer-failure reporting) lives one layer up in ReliableChannel.
#ifndef HIPRESS_SRC_NET_FAULT_H_
#define HIPRESS_SRC_NET_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace hipress {

// Bandwidth cut on a link during [start, end). src/dst of -1 match any
// endpoint, so {-1, 3} degrades every transfer into node 3.
struct LinkDegradation {
  int src = -1;
  int dst = -1;
  SimTime start = 0;
  SimTime end = 0;
  // Remaining bandwidth fraction in (0, 1]; 0.25 = link at quarter speed.
  double bandwidth_factor = 1.0;
};

// Node `node` fails at time `at` and never recovers (fail-stop).
struct NodeCrash {
  int node = -1;
  SimTime at = 0;
};

struct FaultConfig {
  // Per-message drop probability in [0, 1).
  double drop_prob = 0.0;
  // Seed for the drop schedule; same seed => bit-identical schedule.
  uint64_t seed = 0x5eedf001;
  std::vector<LinkDegradation> degradations;
  std::vector<NodeCrash> crashes;

  bool any() const {
    return drop_prob > 0.0 || !degradations.empty() || !crashes.empty();
  }

  // Crash time for `node`, or -1 when it never crashes.
  SimTime CrashTime(int node) const;

  // Smallest remaining-bandwidth factor over the windows matching
  // (src, dst) at time `when`; 1.0 when no window matches.
  double DegradationFactor(int src, int dst, SimTime when) const;
};

// Deterministic uniform double in [0, 1) from (seed, ordinal): the
// SplitMix64 finalizer, the same generator the network's bandwidth jitter
// uses. Order-independent — message k's fate does not depend on k-1.
double FaultUniform(uint64_t seed, uint64_t ordinal);

// Parses a fault spec of comma-separated clauses:
//   drop=P            per-message drop probability
//   seed=S            drop-schedule seed
//   crash=N@MS        node N crashes at MS milliseconds
//   degrade=A-B@T0-T1@F   link A->B at factor F during [T0, T1) ms
//                         (A or B may be '*' for any endpoint)
// e.g. "drop=0.01,seed=7,crash=3@40,degrade=0-1@10-20@0.5".
StatusOr<FaultConfig> ParseFaultSpec(const std::string& spec);

}  // namespace hipress

#endif  // HIPRESS_SRC_NET_FAULT_H_
