// Deterministic fault injection for the simulated cluster network.
//
// Three fault classes, all derived from seeded hashes or fixed schedules so
// a run is bit-reproducible (no wall-clock randomness):
//
//  * per-message drops — each transfer is dropped with probability
//    `drop_prob`, decided by a SplitMix64 hash of (seed, message ordinal);
//  * link degradation windows — a chosen link (or wildcard endpoint) loses
//    bandwidth during [start, end), modelling congested or flapping links;
//  * scheduled node crashes — from time `at` the node neither sends nor
//    receives; messages touching it are blackholed.
//
// The network applies these at Send/delivery time; recovery (retries,
// backoff, peer-failure reporting) lives one layer up in ReliableChannel.
#ifndef HIPRESS_SRC_NET_FAULT_H_
#define HIPRESS_SRC_NET_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace hipress {

// Bandwidth cut on a link during [start, end). src/dst of -1 match any
// endpoint, so {-1, 3} degrades every transfer into node 3.
struct LinkDegradation {
  int src = -1;
  int dst = -1;
  SimTime start = 0;
  SimTime end = 0;
  // Remaining bandwidth fraction in (0, 1]; 0.25 = link at quarter speed.
  double bandwidth_factor = 1.0;
};

// Node `node` fails at time `at`. Without a matching kRejoin membership
// event the failure is fail-stop; with one, the node is dead during
// [at, rejoin.at) and may be re-admitted by the trainer's membership
// layer (docs/FAULT_TOLERANCE.md).
struct NodeCrash {
  int node = -1;
  SimTime at = 0;
};

// Scheduled membership transitions, applied by the trainer at the first
// iteration boundary at or after `at` (the network only consults kRejoin,
// which reopens a crashed node's liveness window).
enum class MembershipEventKind {
  kJoin,    // a standby node is admitted to the worker set
  kLeave,   // a member drains its in-flight work and exits cleanly
  kRejoin,  // a previously crashed node comes back and re-syncs state
};

struct MembershipEvent {
  MembershipEventKind kind = MembershipEventKind::kJoin;
  int node = -1;
  SimTime at = 0;
};

const char* MembershipEventKindName(MembershipEventKind kind);

struct FaultConfig {
  // Per-message drop probability in [0, 1).
  double drop_prob = 0.0;
  // Seed for the drop schedule; same seed => bit-identical schedule.
  uint64_t seed = 0x5eedf001;
  std::vector<LinkDegradation> degradations;
  std::vector<NodeCrash> crashes;
  // Elastic-membership schedule: planned joins/leaves and crash rejoins.
  std::vector<MembershipEvent> membership;
  // Nodes that start outside the worker set and only participate once a
  // kJoin event admits them.
  std::vector<int> standby_nodes;

  bool any() const {
    return drop_prob > 0.0 || !degradations.empty() || !crashes.empty() ||
           !membership.empty() || !standby_nodes.empty();
  }

  // Crash time for `node`, or -1 when it never crashes.
  SimTime CrashTime(int node) const;

  // Interval-based liveness: false while `node` sits inside a crash window
  // [crash.at, rejoin.at) that no kRejoin event has closed by `when`.
  // Standby nodes count as alive — they are silent, not dead.
  bool AliveAt(int node, SimTime when) const;

  // Smallest remaining-bandwidth factor over the windows matching
  // (src, dst) at time `when`; 1.0 when no window matches.
  double DegradationFactor(int src, int dst, SimTime when) const;
};

// Deterministic uniform double in [0, 1) from (seed, ordinal): the
// SplitMix64 finalizer, the same generator the network's bandwidth jitter
// uses. Order-independent — message k's fate does not depend on k-1.
double FaultUniform(uint64_t seed, uint64_t ordinal);

// Parses a fault spec of comma-separated clauses:
//   drop=P            per-message drop probability
//   seed=S            drop-schedule seed
//   crash=N@MS        node N crashes at MS milliseconds
//   degrade=A-B@T0-T1@F   link A->B at factor F during [T0, T1) ms
//                         (A or B may be '*' for any endpoint)
//   join=N@MS         standby node N joins the worker set at MS ms
//   leave=N@MS        member N drains and leaves at MS ms
//   rejoin=N@MS       crashed node N rejoins (re-syncs state) at MS ms
//   standby=N         node N starts outside the worker set
// e.g. "drop=0.01,seed=7,crash=3@40,rejoin=3@120,standby=5,join=5@60".
StatusOr<FaultConfig> ParseFaultSpec(const std::string& spec);

// Deterministic chaos-soak schedule generator (bench_membership,
// train_cluster --chaos). Emits a FaultConfig whose crash/join/leave/
// rejoin/degradation events interleave over the run, derived purely from
// `seed` so two runs with the same options are bit-identical.
struct ChaosOptions {
  uint64_t seed = 1;
  int num_nodes = 8;     // total nodes, including standby
  int num_standby = 1;   // nodes held out of the initial worker set
  int events = 6;        // membership/degradation events to schedule
  double first_event_ms = 40.0;
  double spacing_ms = 60.0;  // nominal gap between events (jittered)
  double drop_prob = 0.0;    // optional background loss
  double degrade_factor = 0.35;
  double degrade_duration_ms = 30.0;
};

// The generated schedule always keeps at least two live members, pairs
// every crash with a later rejoin, and covers each event class at least
// once when `events` allows.
FaultConfig MakeChaosSchedule(const ChaosOptions& options);

}  // namespace hipress

#endif  // HIPRESS_SRC_NET_FAULT_H_
