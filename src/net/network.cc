#include "src/net/network.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace hipress {
namespace {

// Per-message jitter stream id: a hash of the flow identity (src, dst, tag)
// and a per-sender sequence number. Mixing the flow identity in keeps
// concurrent jobs on disjoint senders drawing independent streams — one
// job's traffic cannot shift another's jitter draws.
uint64_t JitterOrdinal(int src, int dst, uint64_t tag, uint64_t seq) {
  auto mix = [](uint64_t h, uint64_t v) {
    return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  };
  uint64_t h = mix(static_cast<uint64_t>(src) + 1,
                   static_cast<uint64_t>(dst) + 1);
  h = mix(h, tag);
  return mix(h, seq);
}

}  // namespace

Network::Network(Simulator* sim, int num_nodes, NetworkConfig config,
                 MetricsRegistry* metrics, SpanCollector* spans)
    : sim_(sim),
      num_nodes_(num_nodes),
      config_(config),
      spans_(spans),
      topology_(MakeTopology(config.topology, num_nodes, config.latency)),
      wire_pool_(metrics, "net") {
  CHECK_GT(num_nodes, 0);
  // std::max keeps GCC's range analysis from flagging the vector fill.
  const auto nodes = static_cast<size_t>(std::max(num_nodes, 1));
  const auto links = static_cast<size_t>(std::max(topology_->num_links(), 1));
  link_free_.assign(links, 0);
  link_busy_.assign(links, 0);
  tx_bytes_.assign(nodes, 0);
  rx_bytes_.assign(nodes, 0);
  jitter_seq_.assign(nodes, 0);
  if (metrics != nullptr) {
    messages_sent_metric_ = &metrics->counter("net.messages_sent");
    messages_delivered_metric_ = &metrics->counter("net.messages_delivered");
    tx_bytes_metric_ = &metrics->counter("net.tx_bytes");
    drops_metric_ = &metrics->counter("net.drops");
    dropped_bytes_metric_ = &metrics->counter("net.dropped_bytes");
    degraded_metric_ = &metrics->counter("net.degraded_transfers");
    queue_delay_us_ = &metrics->histogram("net.queue_delay_us");
    transfer_bytes_ = &metrics->histogram("net.transfer_bytes",
                                          HistogramBuckets::DefaultBytes());
  }
}

SimTime Network::EarliestStart(int src, int dst) const {
  Route route;
  topology_->FillRoute(src, dst, &route);
  SimTime earliest = sim_->now();
  for (int i = 0; i < route.hops; ++i) {
    earliest = std::max(earliest, link_free_[route.link[i]]);
  }
  return earliest;
}

SimTime Network::UncontendedSendTime(uint64_t bytes) const {
  SimTime serialize = TransferTime(bytes);
  if (config_.topology.kind == TopologyKind::kFatTree &&
      topology_->num_tors() > 1) {
    // Worst-case (cross-rack) route: cut-through forwarding bounds the
    // transfer by the slowest tier, and the fabric adds two hops.
    const double fabric_scale =
        config_.topology.oversubscription /
        static_cast<double>(std::max(1, config_.topology.hosts_per_tor));
    if (fabric_scale > 1.0) {
      serialize = std::max(
          serialize, static_cast<SimTime>(static_cast<double>(serialize) *
                                          fabric_scale));
    }
    return serialize + config_.path_latency() + config_.per_message_overhead;
  }
  return serialize + config_.latency + config_.per_message_overhead;
}

void Network::Send(NetMessage message,
                   std::function<void(const NetMessage&)> on_delivered) {
  CHECK_GE(message.src, 0);
  CHECK_LT(message.src, num_nodes_);
  CHECK_GE(message.dst, 0);
  CHECK_LT(message.dst, num_nodes_);
  CHECK_NE(message.src, message.dst);

  // A crashed sender transmits nothing: blackhole without touching links.
  if (!alive(message.src)) {
    ++messages_dropped_;
    if (drops_metric_ != nullptr) {
      drops_metric_->Increment();
      dropped_bytes_metric_->Increment(message.bytes);
    }
    if (flight_ != nullptr) {
      flight_->Record(message.src, ev_drop_, sim_->now(),
                      static_cast<uint64_t>(message.dst), message.bytes);
    }
    return;
  }
  if (flight_ != nullptr) {
    flight_->Record(message.src, ev_send_, sim_->now(),
                    static_cast<uint64_t>(message.dst), message.bytes);
  }

  SimTime serialize = TransferTime(message.bytes);
  if (config_.bandwidth_jitter > 0.0) {
    // Deterministic, order-independent slowdown factor in [1, 1 + jitter]
    // hashed from the flow identity and a per-sender sequence number.
    const uint64_t ordinal =
        JitterOrdinal(message.src, message.dst, message.tag,
                      jitter_seq_[message.src]++);
    const double uniform = FaultUniform(config_.jitter_seed, ordinal);
    serialize = static_cast<SimTime>(
        static_cast<double>(serialize) *
        (1.0 + config_.bandwidth_jitter * uniform));
  }
  // Link-degradation window: the transfer serializes at the cut bandwidth.
  const double degrade_factor =
      config_.faults.DegradationFactor(message.src, message.dst, sim_->now());
  if (degrade_factor < 1.0) {
    serialize =
        static_cast<SimTime>(static_cast<double>(serialize) / degrade_factor);
    if (degraded_metric_ != nullptr) {
      degraded_metric_->Increment();
    }
  }
  // Seeded per-message loss: the message still burns link time (the bits
  // were transmitted) but is never delivered.
  const bool lost =
      config_.faults.drop_prob > 0.0 &&
      FaultUniform(config_.faults.seed, messages_sent_) <
          config_.faults.drop_prob;
  ++messages_sent_;
  // Every link of the route serializes independently and forwards
  // cut-through: segment i may begin once its link is free and the first
  // bit has arrived (previous segment's start plus one hop latency), and
  // finishes no earlier than the previous segment's last bit plus the hop
  // latency. On a flat route this reduces to the original two-endpoint
  // model: a congested receiver never blocks the sender's uplink, and an
  // idle path delivers one propagation latency after the uplink finishes.
  Route route;
  topology_->FillRoute(message.src, message.dst, &route);
  SimTime start[Route::kMaxHops];
  SimTime done[Route::kMaxHops];
  start[0] = std::max(sim_->now(), link_free_[route.link[0]]) +
             config_.per_message_overhead;
  done[0] = start[0] + serialize;
  link_free_[route.link[0]] = done[0];
  link_busy_[route.link[0]] += serialize;
  // Queueing delay beyond the unavoidable overhead + propagation: uplink
  // backlog plus any wait past the arrival of the first bit downstream.
  SimTime queue_wait = start[0] - config_.per_message_overhead - sim_->now();
  for (int i = 1; i < route.hops; ++i) {
    const double scale = route.serialize_scale[i];
    const SimTime hop_serialize =
        scale == 1.0 ? serialize
                     : static_cast<SimTime>(static_cast<double>(serialize) *
                                            scale);
    const SimTime first_bit = start[i - 1] + route.hop_latency[i];
    start[i] = std::max(first_bit, link_free_[route.link[i]]);
    done[i] = std::max(start[i] + hop_serialize,
                       done[i - 1] + route.hop_latency[i]);
    link_free_[route.link[i]] = done[i];
    link_busy_[route.link[i]] += hop_serialize;
    queue_wait += start[i] - first_bit;
  }
  const SimTime deliver_at = done[route.hops - 1];
  tx_bytes_[message.src] += message.bytes;
  rx_bytes_[message.dst] += message.bytes;

  if (messages_sent_metric_ != nullptr) {
    messages_sent_metric_->Increment();
    tx_bytes_metric_->Increment(message.bytes);
    transfer_bytes_->Observe(static_cast<double>(message.bytes));
    queue_delay_us_->Observe(static_cast<double>(queue_wait) / kMicrosecond);
  }
  // The crash schedule is static, so delivery to a node that will be dead
  // at arrival time is decidable now: the bits are sent but never received.
  const bool blackholed = !AliveAt(message.dst, deliver_at);
  if (spans_ != nullptr) {
    const std::string label = StrFormat(
        "%s %d->%d", HumanBytes(message.bytes).c_str(), message.src,
        message.dst);
    spans_->Add(message.src, kTraceLaneNetUplink,
                (lost || blackholed ? "tx(lost) " : "tx ") + label, start[0],
                done[0]);
    if (!lost && !blackholed) {
      if (route.hops == 4) {
        spans_->Add(message.src, kTraceLaneNetFabric, "tor-up " + label,
                    start[1], done[1]);
        spans_->Add(message.dst, kTraceLaneNetFabric, "tor-down " + label,
                    start[2], done[2]);
      }
      spans_->Add(message.dst, kTraceLaneNetDownlink, "rx " + label,
                  start[route.hops - 1], deliver_at);
    }
  }
  if (lost || blackholed) {
    ++messages_dropped_;
    if (drops_metric_ != nullptr) {
      drops_metric_->Increment();
      dropped_bytes_metric_->Increment(message.bytes);
    }
    if (flight_ != nullptr) {
      flight_->Record(message.src, ev_drop_, sim_->now(),
                      static_cast<uint64_t>(message.dst), message.bytes);
    }
    return;
  }
  sim_->ScheduleAt(deliver_at, [this, message = std::move(message),
                                on_delivered = std::move(on_delivered)] {
    ++messages_delivered_;
    if (messages_delivered_metric_ != nullptr) {
      messages_delivered_metric_->Increment();
    }
    if (flight_ != nullptr) {
      flight_->Record(message.dst, ev_deliver_, sim_->now(),
                      static_cast<uint64_t>(message.src), message.bytes);
    }
    on_delivered(message);
  });
}

}  // namespace hipress
