#include "src/net/network.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace hipress {

Network::Network(Simulator* sim, int num_nodes, NetworkConfig config,
                 MetricsRegistry* metrics, SpanCollector* spans)
    : sim_(sim),
      num_nodes_(num_nodes),
      config_(config),
      spans_(spans),
      wire_pool_(metrics, "net") {
  CHECK_GT(num_nodes, 0);
  // std::max keeps GCC's range analysis from flagging the vector fill.
  const auto nodes = static_cast<size_t>(std::max(num_nodes, 1));
  uplink_free_.assign(nodes, 0);
  downlink_free_.assign(nodes, 0);
  uplink_busy_.assign(nodes, 0);
  tx_bytes_.assign(nodes, 0);
  rx_bytes_.assign(nodes, 0);
  if (metrics != nullptr) {
    messages_sent_metric_ = &metrics->counter("net.messages_sent");
    messages_delivered_metric_ = &metrics->counter("net.messages_delivered");
    tx_bytes_metric_ = &metrics->counter("net.tx_bytes");
    drops_metric_ = &metrics->counter("net.drops");
    dropped_bytes_metric_ = &metrics->counter("net.dropped_bytes");
    degraded_metric_ = &metrics->counter("net.degraded_transfers");
    queue_delay_us_ = &metrics->histogram("net.queue_delay_us");
    transfer_bytes_ = &metrics->histogram("net.transfer_bytes",
                                          HistogramBuckets::DefaultBytes());
  }
}

SimTime Network::EarliestStart(int src, int dst) const {
  return std::max({sim_->now(), uplink_free_[src], downlink_free_[dst]});
}

void Network::Send(NetMessage message,
                   std::function<void(const NetMessage&)> on_delivered) {
  CHECK_GE(message.src, 0);
  CHECK_LT(message.src, num_nodes_);
  CHECK_GE(message.dst, 0);
  CHECK_LT(message.dst, num_nodes_);
  CHECK_NE(message.src, message.dst);

  // A crashed sender transmits nothing: blackhole without touching links.
  if (!alive(message.src)) {
    ++messages_dropped_;
    if (drops_metric_ != nullptr) {
      drops_metric_->Increment();
      dropped_bytes_metric_->Increment(message.bytes);
    }
    return;
  }

  SimTime serialize = TransferTime(message.bytes);
  if (config_.bandwidth_jitter > 0.0) {
    // Deterministic, order-independent slowdown factor in [1, 1 + jitter]
    // hashed from the message counter.
    const double uniform = FaultUniform(config_.jitter_seed, messages_sent_);
    serialize = static_cast<SimTime>(
        static_cast<double>(serialize) *
        (1.0 + config_.bandwidth_jitter * uniform));
  }
  // Link-degradation window: the transfer serializes at the cut bandwidth.
  const double degrade_factor =
      config_.faults.DegradationFactor(message.src, message.dst, sim_->now());
  if (degrade_factor < 1.0) {
    serialize =
        static_cast<SimTime>(static_cast<double>(serialize) / degrade_factor);
    if (degraded_metric_ != nullptr) {
      degraded_metric_->Increment();
    }
  }
  // Seeded per-message loss: the message still burns uplink/downlink time
  // (the bits were transmitted) but is never delivered.
  const bool lost =
      config_.faults.drop_prob > 0.0 &&
      FaultUniform(config_.faults.seed, messages_sent_) <
          config_.faults.drop_prob;
  ++messages_sent_;
  // Uplink and downlink serialize independently: a congested receiver must
  // not block the sender's uplink for unrelated flows. Delivery is
  // cut-through — when the downlink is idle the last bit arrives one
  // propagation latency after it left the sender.
  const SimTime up_start = std::max(sim_->now(), uplink_free_[message.src]) +
                           config_.per_message_overhead;
  const SimTime up_done = up_start + serialize;
  uplink_free_[message.src] = up_done;
  uplink_busy_[message.src] += serialize;
  tx_bytes_[message.src] += message.bytes;
  rx_bytes_[message.dst] += message.bytes;

  const SimTime down_start =
      std::max(up_start + config_.latency, downlink_free_[message.dst]);
  const SimTime deliver_at = down_start + serialize;
  downlink_free_[message.dst] = deliver_at;

  if (messages_sent_metric_ != nullptr) {
    messages_sent_metric_->Increment();
    tx_bytes_metric_->Increment(message.bytes);
    transfer_bytes_->Observe(static_cast<double>(message.bytes));
    // Queueing delay: time the message waited for its endpoints beyond the
    // unavoidable overhead + propagation — uplink backlog plus any extra
    // downlink backlog past the arrival of the first bit.
    const SimTime uplink_wait =
        up_start - config_.per_message_overhead - sim_->now();
    const SimTime downlink_wait = down_start - (up_start + config_.latency);
    queue_delay_us_->Observe(static_cast<double>(uplink_wait + downlink_wait) /
                             kMicrosecond);
  }
  // The crash schedule is static, so delivery to a node that will be dead
  // at arrival time is decidable now: the bits are sent but never received.
  const bool blackholed = !AliveAt(message.dst, deliver_at);
  if (spans_ != nullptr) {
    const std::string label = StrFormat(
        "%s %d->%d", HumanBytes(message.bytes).c_str(), message.src,
        message.dst);
    spans_->Add(message.src, kTraceLaneNetUplink,
                (lost || blackholed ? "tx(lost) " : "tx ") + label, up_start,
                up_done);
    if (!lost && !blackholed) {
      spans_->Add(message.dst, kTraceLaneNetDownlink, "rx " + label,
                  down_start, deliver_at);
    }
  }
  if (lost || blackholed) {
    ++messages_dropped_;
    if (drops_metric_ != nullptr) {
      drops_metric_->Increment();
      dropped_bytes_metric_->Increment(message.bytes);
    }
    return;
  }
  sim_->ScheduleAt(deliver_at, [this, message = std::move(message),
                                on_delivered = std::move(on_delivered)] {
    ++messages_delivered_;
    if (messages_delivered_metric_ != nullptr) {
      messages_delivered_metric_->Increment();
    }
    on_delivered(message);
  });
}

}  // namespace hipress
