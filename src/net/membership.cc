#include "src/net/membership.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace hipress {

const char* MembershipChangeName(MembershipChange change) {
  switch (change) {
    case MembershipChange::kJoin:
      return "join";
    case MembershipChange::kLeave:
      return "leave";
    case MembershipChange::kCrash:
      return "crash";
    case MembershipChange::kRejoin:
      return "rejoin";
  }
  return "unknown";
}

MembershipManager::MembershipManager(int num_nodes,
                                     const std::vector<int>& standby,
                                     MetricsRegistry* metrics)
    : num_nodes_(num_nodes) {
  CHECK_GT(num_nodes, 0);
  for (int node = 0; node < num_nodes; ++node) {
    if (std::find(standby.begin(), standby.end(), node) == standby.end()) {
      members_.push_back(node);
    }
  }
  CHECK(!members_.empty()) << "every node is standby";
  if (metrics != nullptr) {
    epoch_gauge_ = &metrics->gauge("membership.epoch");
    size_gauge_ = &metrics->gauge("membership.size");
    joins_counter_ = &metrics->counter("membership.joins");
    leaves_counter_ = &metrics->counter("membership.leaves");
    crashes_counter_ = &metrics->counter("membership.crashes");
    rejoins_counter_ = &metrics->counter("membership.rejoins");
    epoch_gauge_->Set(0.0);
    size_gauge_->Set(static_cast<double>(members_.size()));
  }
}

bool MembershipManager::is_member(int node) const {
  return std::binary_search(members_.begin(), members_.end(), node);
}

uint64_t MembershipManager::Admit(int node, MembershipChange change,
                                  SimTime at) {
  CHECK(change == MembershipChange::kJoin ||
        change == MembershipChange::kRejoin)
      << "Admit wants kJoin or kRejoin";
  CHECK_GE(node, 0);
  CHECK_LT(node, num_nodes_);
  CHECK(!is_member(node)) << "node " << node << " is already a member";
  members_.insert(
      std::lower_bound(members_.begin(), members_.end(), node), node);
  Record(change, node, at);
  return epoch_;
}

uint64_t MembershipManager::Remove(int node, MembershipChange change,
                                   SimTime at) {
  CHECK(change == MembershipChange::kLeave ||
        change == MembershipChange::kCrash)
      << "Remove wants kLeave or kCrash";
  CHECK(is_member(node)) << "node " << node << " is not a member";
  CHECK_GT(members_.size(), 1u) << "removing the last member";
  members_.erase(
      std::lower_bound(members_.begin(), members_.end(), node));
  Record(change, node, at);
  return epoch_;
}

void MembershipManager::Record(MembershipChange change, int node,
                               SimTime at) {
  ++epoch_;
  log_.push_back(MembershipRecord{epoch_, change, node, at, size()});
  switch (change) {
    case MembershipChange::kJoin:
      ++joins_;
      if (joins_counter_ != nullptr) {
        joins_counter_->Increment();
      }
      break;
    case MembershipChange::kLeave:
      ++leaves_;
      if (leaves_counter_ != nullptr) {
        leaves_counter_->Increment();
      }
      break;
    case MembershipChange::kCrash:
      ++crashes_;
      if (crashes_counter_ != nullptr) {
        crashes_counter_->Increment();
      }
      break;
    case MembershipChange::kRejoin:
      ++rejoins_;
      if (rejoins_counter_ != nullptr) {
        rejoins_counter_->Increment();
      }
      break;
  }
  if (epoch_gauge_ != nullptr) {
    epoch_gauge_->Set(static_cast<double>(epoch_));
    size_gauge_->Set(static_cast<double>(members_.size()));
  }
}

std::string MembershipManager::LogString() const {
  std::string out;
  for (const MembershipRecord& record : log_) {
    out += StrFormat("epoch %llu: %s node %d at %.3f ms (%d members)\n",
                     static_cast<unsigned long long>(record.epoch),
                     MembershipChangeName(record.change), record.node,
                     ToMillis(record.at), record.members_after);
  }
  return out;
}

}  // namespace hipress
