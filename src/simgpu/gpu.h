// Simulated accelerator device.
//
// The paper runs compression kernels on the same GPU as DNN computation, on
// separate CUDA streams. We model a device as a set of FIFO streams over the
// discrete-event simulator: stream 0 carries DNN forward/backward compute,
// stream 1 carries compression kernels (encode/decode/merge), so compression
// overlaps communication but serializes against other kernels on its stream.
// Every executed interval is recorded so benches can reconstruct the GPU
// utilization timelines of Figure 9.
#ifndef HIPRESS_SRC_SIMGPU_GPU_H_
#define HIPRESS_SRC_SIMGPU_GPU_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/buffer_pool.h"
#include "src/common/kernel_cost.h"
#include "src/common/metrics.h"
#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace hipress {

enum class GpuTaskKind {
  kCompute,  // DNN forward/backward.
  kEncode,
  kDecode,
  kMerge,
  kMemcpy,
};

const char* GpuTaskKindName(GpuTaskKind kind);

struct GpuInterval {
  SimTime start = 0;
  SimTime end = 0;
  GpuTaskKind kind = GpuTaskKind::kCompute;
};

class GpuDevice {
 public:
  // Stream 0: DNN compute; stream 1: compression kernels.
  static constexpr int kComputeStream = 0;
  static constexpr int kKernelStream = 1;

  // `metrics` (optional) receives per-kind task counts, busy nanoseconds
  // and kernel-duration histograms ("gpu.tasks.encode", "gpu.busy_ns.*",
  // "gpu.kernel_us"), aggregated across every device wired to it.
  GpuDevice(Simulator* sim, int id, int num_streams = 2,
            MetricsRegistry* metrics = nullptr);

  // Runs a task of `duration` ns FIFO on `stream`; `done` fires at its finish
  // time. Returns the task's scheduled start time (>= now; later when the
  // stream has a backlog), so callers can attribute queueing separately
  // from service (the critical-path profiler's wait category).
  SimTime Submit(int stream, GpuTaskKind kind, SimTime duration,
                 std::function<void()> done);

  SimTime SubmitCompute(SimTime duration, std::function<void()> done) {
    return Submit(kComputeStream, GpuTaskKind::kCompute, duration,
                  std::move(done));
  }
  SimTime SubmitKernel(GpuTaskKind kind, SimTime duration,
                       std::function<void()> done) {
    return Submit(kKernelStream, kind, duration, std::move(done));
  }

  // Pool-backed host staging for kernel payloads, mirroring HiPress's
  // preallocated pinned staging area: repeated launches of same-sized
  // kernels reuse one recycled block instead of allocating per launch.
  // Returned bytes are uninitialized; the block returns to the pool when
  // the handle is dropped.
  PooledBytes AcquireStaging(size_t bytes) { return {staging_pool_, bytes}; }
  // Refcounted variant for the wire path: encode writes into the staging
  // block and the same handle becomes the SyncTask/NetMessage payload, so
  // a compressed gradient leaves the device and reaches the batch frame
  // without an intermediate copy (docs/COMMUNICATION.md). The block
  // recycles when the last wire reference drops.
  std::shared_ptr<PooledBytes> AcquireSharedStaging(size_t bytes) {
    return std::make_shared<PooledBytes>(staging_pool_, bytes);
  }
  void set_staging_pool(BufferPool* pool) { staging_pool_ = pool; }

  int id() const { return id_; }
  SimTime stream_free_at(int stream) const { return stream_free_[stream]; }
  SimTime busy_time(int stream) const { return stream_busy_[stream]; }
  const std::vector<GpuInterval>& timeline() const { return timeline_; }
  void set_record_timeline(bool record) { record_timeline_ = record; }

  // Fraction of [window_start, window_end) covered by compute intervals.
  double ComputeUtilization(SimTime window_start, SimTime window_end) const;

 private:
  // Cached per-kind metric handles (index = GpuTaskKind); null w/o metrics.
  struct KindMetrics {
    Counter* tasks = nullptr;
    Counter* busy_ns = nullptr;
  };

  Simulator* sim_;
  int id_;
  std::vector<SimTime> stream_free_;
  std::vector<SimTime> stream_busy_;
  std::vector<GpuInterval> timeline_;
  bool record_timeline_ = false;
  std::vector<KindMetrics> kind_metrics_;
  Histogram* kernel_us_ = nullptr;  // non-compute kernel durations
  BufferPool* staging_pool_ = &BufferPool::Global();
};

}  // namespace hipress

#endif  // HIPRESS_SRC_SIMGPU_GPU_H_
