#include "src/simgpu/gpu.h"

#include <algorithm>

#include "src/common/logging.h"

namespace hipress {

const char* GpuTaskKindName(GpuTaskKind kind) {
  switch (kind) {
    case GpuTaskKind::kCompute:
      return "compute";
    case GpuTaskKind::kEncode:
      return "encode";
    case GpuTaskKind::kDecode:
      return "decode";
    case GpuTaskKind::kMerge:
      return "merge";
    case GpuTaskKind::kMemcpy:
      return "memcpy";
  }
  return "unknown";
}

GpuDevice::GpuDevice(Simulator* sim, int id, int num_streams,
                     MetricsRegistry* metrics)
    : sim_(sim), id_(id) {
  CHECK_GT(num_streams, 0);
  // std::max keeps GCC's range analysis from flagging the vector fill.
  const auto streams = static_cast<size_t>(std::max(num_streams, 1));
  stream_free_.assign(streams, 0);
  stream_busy_.assign(streams, 0);
  if (metrics != nullptr) {
    constexpr GpuTaskKind kKinds[] = {GpuTaskKind::kCompute,
                                      GpuTaskKind::kEncode,
                                      GpuTaskKind::kDecode, GpuTaskKind::kMerge,
                                      GpuTaskKind::kMemcpy};
    kind_metrics_.resize(std::size(kKinds));
    for (const GpuTaskKind kind : kKinds) {
      const std::string name = GpuTaskKindName(kind);
      KindMetrics& slot = kind_metrics_[static_cast<size_t>(kind)];
      slot.tasks = &metrics->counter("gpu.tasks." + name);
      slot.busy_ns = &metrics->counter("gpu.busy_ns." + name);
    }
    kernel_us_ = &metrics->histogram("gpu.kernel_us");
  }
}

SimTime GpuDevice::Submit(int stream, GpuTaskKind kind, SimTime duration,
                          std::function<void()> done) {
  CHECK_GE(stream, 0);
  CHECK_LT(static_cast<size_t>(stream), stream_free_.size());
  CHECK_GE(duration, 0);
  const SimTime start = std::max(sim_->now(), stream_free_[stream]);
  const SimTime end = start + duration;
  stream_free_[stream] = end;
  stream_busy_[stream] += duration;
  if (record_timeline_) {
    timeline_.push_back(GpuInterval{start, end, kind});
  }
  if (const size_t k = static_cast<size_t>(kind); k < kind_metrics_.size()) {
    kind_metrics_[k].tasks->Increment();
    kind_metrics_[k].busy_ns->Increment(static_cast<uint64_t>(duration));
    if (kind != GpuTaskKind::kCompute) {
      kernel_us_->Observe(static_cast<double>(duration) / kMicrosecond);
    }
  }
  sim_->ScheduleAt(end, std::move(done));
  return start;
}

double GpuDevice::ComputeUtilization(SimTime window_start,
                                     SimTime window_end) const {
  if (window_end <= window_start) {
    return 0.0;
  }
  SimTime covered = 0;
  for (const GpuInterval& interval : timeline_) {
    if (interval.kind != GpuTaskKind::kCompute) {
      continue;
    }
    const SimTime lo = std::max(interval.start, window_start);
    const SimTime hi = std::min(interval.end, window_end);
    if (hi > lo) {
      covered += hi - lo;
    }
  }
  return static_cast<double>(covered) /
         static_cast<double>(window_end - window_start);
}

}  // namespace hipress
