#include "src/hipress/hipress.h"

#include "src/compll/dsl_compressor.h"

namespace hipress {

StatusOr<HiPressResult> RunTrainingSimulation(const HiPressOptions& options) {
  HiPressResult result;
  ASSIGN_OR_RETURN(result.profile, GetModelProfile(options.model));
  ClusterSpec cluster = options.cluster;
  if (options.disable_rdma) {
    cluster.net = WithoutRdma(cluster.net);
  }
  ASSIGN_OR_RETURN(result.config,
                   MakeSystemConfig(options.system, cluster,
                                    options.algorithm, options.codec_params));
  ASSIGN_OR_RETURN(result.report,
                   SimulateTraining(result.profile, result.config,
                                    options.train));
  return result;
}

Status RegisterDslAlgorithms() {
  return compll::DslCompressor::RegisterBuiltinsIntoRegistry();
}

}  // namespace hipress
