// HiPress — top-level public API.
//
// Ties CaSync, CompLL and the substrates together the way the paper's
// framework does: pick a model (Table 6), a system (baseline or HiPress
// configuration), a compression algorithm, and a cluster; run data-parallel
// training; collect the evaluation metrics.
//
//   HiPressOptions options;
//   options.model = "bert-large";
//   options.system = "hipress-ps";
//   options.algorithm = "onebit";
//   options.cluster = ClusterSpec::Ec2(16);
//   auto result = RunTrainingSimulation(options);
//   // result->report.throughput, .scaling_efficiency, ...
#ifndef HIPRESS_SRC_HIPRESS_HIPRESS_H_
#define HIPRESS_SRC_HIPRESS_HIPRESS_H_

#include <string>

#include "src/common/status.h"
#include "src/models/model_profile.h"
#include "src/strategies/presets.h"
#include "src/train/trainer.h"

namespace hipress {

struct HiPressOptions {
  std::string model = "bert-large";
  std::string system = "hipress-ps";  // see presets.h for the catalogue
  std::string algorithm = "onebit";
  CompressorParams codec_params;
  ClusterSpec cluster = ClusterSpec::Ec2(16);
  TrainOptions train;
  // Strips RDMA from the network (BytePS on EC2, Section 6.1).
  bool disable_rdma = false;
};

struct HiPressResult {
  ModelProfile profile;
  SyncConfig config;
  TrainReport report;
};

// Runs one end-to-end training simulation.
StatusOr<HiPressResult> RunTrainingSimulation(const HiPressOptions& options);

// Registers the CompLL DSL-built algorithms ("dsl-onebit", ...) into the
// global compressor registry. Idempotent.
Status RegisterDslAlgorithms();

}  // namespace hipress

#endif  // HIPRESS_SRC_HIPRESS_HIPRESS_H_
