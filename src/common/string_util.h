// Small string helpers used by CompLL's parser and by report formatting.
#ifndef HIPRESS_SRC_COMMON_STRING_UTIL_H_
#define HIPRESS_SRC_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace hipress {

// Splits `text` on `delimiter`, keeping empty fields.
std::vector<std::string> Split(const std::string& text, char delimiter);

// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& text);

bool StartsWith(const std::string& text, const std::string& prefix);
bool EndsWith(const std::string& text, const std::string& suffix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

// Joins items with a separator.
std::string Join(const std::vector<std::string>& items,
                 const std::string& separator);

// Formats a byte count with a human unit, e.g. "392.0MB", "64KB".
std::string HumanBytes(uint64_t bytes);

}  // namespace hipress

#endif  // HIPRESS_SRC_COMMON_STRING_UTIL_H_
