#include "src/common/profiler.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "src/common/string_util.h"

namespace hipress {

const char* CostPrimitiveName(CostPrimitive primitive) {
  switch (primitive) {
    case CostPrimitive::kEncode:
      return "encode";
    case CostPrimitive::kDecode:
      return "decode";
    case CostPrimitive::kMerge:
      return "merge";
    case CostPrimitive::kSend:
      return "send";
  }
  return "unknown";
}

namespace {

size_t Index(CostPrimitive primitive) {
  return static_cast<size_t>(primitive);
}

}  // namespace

CostSampleStats CostSampleStats::Since(const CostSampleStats& earlier) const {
  CostSampleStats window;
  window.count = count - earlier.count;
  window.sum_x = sum_x - earlier.sum_x;
  window.sum_y = sum_y - earlier.sum_y;
  window.sum_xx = sum_xx - earlier.sum_xx;
  window.sum_xy = sum_xy - earlier.sum_xy;
  return window;
}

bool CostSampleStats::Fit(KernelCost* out) const {
  if (count < 2) {
    return false;
  }
  const double n = static_cast<double>(count);
  const double denom = n * sum_xx - sum_x * sum_x;
  // denom == 0 when every sample sits at one byte size; floating-point
  // cancellation can leave a tiny positive residue there, so require a
  // meaningful spread relative to the magnitudes involved.
  if (denom <= 1e-9 * n * sum_xx) {
    return false;
  }
  // y = intercept + slope * x; slope is ns per byte.
  const double slope = (n * sum_xy - sum_x * sum_y) / denom;
  const double intercept = (sum_y - slope * sum_x) / n;
  if (slope <= 0) {
    return false;  // throughput would be infinite or negative
  }
  out->launch_overhead = static_cast<SimTime>(std::max(0.0, intercept));
  out->bytes_per_second = static_cast<double>(kSecond) / slope;
  return true;
}

double CostSampleStats::MeanThroughput() const {
  if (count == 0 || sum_y <= 0) {
    return 0.0;
  }
  return sum_x / sum_y * static_cast<double>(kSecond);
}

void CostModelAuditor::SetPrediction(CostPrimitive primitive,
                                     KernelCost cost) {
  PrimitiveStats& stats = stats_[Index(primitive)];
  stats.prediction = cost;
  stats.has_prediction = true;
}

const KernelCost& CostModelAuditor::prediction(
    CostPrimitive primitive) const {
  return stats_[Index(primitive)].prediction;
}

bool CostModelAuditor::has_prediction(CostPrimitive primitive) const {
  return stats_[Index(primitive)].has_prediction;
}

void CostModelAuditor::AddSample(CostPrimitive primitive, uint64_t bytes,
                                 SimTime measured) {
  PrimitiveStats& stats = stats_[Index(primitive)];
  if (stats.count == 0) {
    stats.min_bytes = bytes;
    stats.max_bytes = bytes;
  } else {
    stats.min_bytes = std::min(stats.min_bytes, bytes);
    stats.max_bytes = std::max(stats.max_bytes, bytes);
  }
  ++stats.count;
  const double x = static_cast<double>(bytes);
  const double y = static_cast<double>(measured);
  stats.sum_x += x;
  stats.sum_y += y;
  stats.sum_xx += x * x;
  stats.sum_xy += x * y;
  if (stats.has_prediction) {
    const double predicted =
        static_cast<double>(stats.prediction.Time(bytes));
    if (predicted > 0) {
      stats.sum_rel_err += std::abs(y - predicted) / predicted;
    }
  }
}

uint64_t CostModelAuditor::samples(CostPrimitive primitive) const {
  return stats_[Index(primitive)].count;
}

double CostModelAuditor::MeanRelativeError(CostPrimitive primitive) const {
  const PrimitiveStats& stats = stats_[Index(primitive)];
  if (stats.count == 0) {
    return 0.0;
  }
  return stats.sum_rel_err / static_cast<double>(stats.count);
}

double CostModelAuditor::MeanMeasured(CostPrimitive primitive) const {
  const PrimitiveStats& stats = stats_[Index(primitive)];
  if (stats.count == 0) {
    return 0.0;
  }
  return stats.sum_y / static_cast<double>(stats.count);
}

bool CostModelAuditor::Fit(CostPrimitive primitive, KernelCost* out) const {
  const PrimitiveStats& stats = stats_[Index(primitive)];
  if (stats.count >= 2 && stats.min_bytes == stats.max_bytes) {
    return false;  // one byte size: the slope is unidentifiable
  }
  return Snapshot(primitive).Fit(out);
}

CostSampleStats CostModelAuditor::Snapshot(CostPrimitive primitive) const {
  const PrimitiveStats& stats = stats_[Index(primitive)];
  CostSampleStats snapshot;
  snapshot.count = stats.count;
  snapshot.sum_x = stats.sum_x;
  snapshot.sum_y = stats.sum_y;
  snapshot.sum_xx = stats.sum_xx;
  snapshot.sum_xy = stats.sum_xy;
  return snapshot;
}

void CostModelAuditor::Publish(MetricsRegistry* registry) const {
  constexpr CostPrimitive kAll[] = {CostPrimitive::kEncode,
                                    CostPrimitive::kDecode,
                                    CostPrimitive::kMerge,
                                    CostPrimitive::kSend};
  for (const CostPrimitive primitive : kAll) {
    const PrimitiveStats& stats = stats_[Index(primitive)];
    if (stats.count == 0) {
      continue;
    }
    const char* name = CostPrimitiveName(primitive);
    Counter& count =
        registry->counter(StrFormat("costmodel.samples.%s", name));
    // Publish is a snapshot: top the counter up to the current total so
    // repeated publishes stay idempotent.
    const uint64_t have = count.value();
    if (stats.count > have) {
      count.Increment(stats.count - have);
    }
    registry->gauge(StrFormat("costmodel.err.%s", name))
        .Set(MeanRelativeError(primitive));
    KernelCost fitted;
    if (Fit(primitive, &fitted)) {
      registry->gauge(StrFormat("costmodel.fit.%s.launch_us", name))
          .Set(static_cast<double>(fitted.launch_overhead) / kMicrosecond);
      registry->gauge(StrFormat("costmodel.fit.%s.gbps", name))
          .Set(fitted.bytes_per_second / 1e9);
    }
  }
}

// ---------------------------------------------------------------------------
// Step reports
// ---------------------------------------------------------------------------

std::string StepRecordToJson(const StepRecord& record) {
  return StrFormat(
      "{\"iteration\":%d,\"iteration_ms\":%.6f,\"compute_ms\":%.6f,"
      "\"encode_ms\":%.6f,\"merge_ms\":%.6f,\"send_ms\":%.6f,"
      "\"recv_ms\":%.6f,\"decode_ms\":%.6f,\"wait_ms\":%.6f,"
      "\"path_tasks\":%d,\"straggler_skew_ms\":%.6f,\"degraded\":%s}",
      record.iteration, record.iteration_ms, record.compute_ms,
      record.encode_ms, record.merge_ms, record.send_ms, record.recv_ms,
      record.decode_ms, record.wait_ms, record.path_tasks,
      record.straggler_skew_ms, record.degraded ? "true" : "false");
}

Status WriteStepReport(const std::string& path,
                       const std::vector<StepRecord>& steps) {
  std::ofstream file(path);
  if (!file.good()) {
    return InvalidArgumentError("cannot open step report file: " + path);
  }
  for (const StepRecord& record : steps) {
    file << StepRecordToJson(record) << "\n";
  }
  if (!file.good()) {
    return InternalError("failed writing step report file: " + path);
  }
  return OkStatus();
}

}  // namespace hipress
