// Runtime SIMD tier detection and dispatch for the CPU compression kernels.
//
// The hand-vectorized codecs (src/compress/simd_kernels.h) and the CompLL
// code generator's vector backend (src/compll/codegen.h) both compile three
// variants of every hot loop — portable scalar, AVX2, AVX-512 — and select
// one at runtime from CPUID. All variants are bit-identical by construction
// (docs/KERNELS.md), so the tier only changes speed, never bytes.
//
// Selection order:
//   1. Compile-time: building with -DHIPRESS_FORCE_SCALAR=ON pins the
//      scalar tier (the CI forced-scalar configuration), and non-x86-64 or
//      non-GCC/Clang toolchains only ever see the scalar tier.
//   2. Environment: HIPRESS_SIMD=scalar|avx2|avx512 caps the tier below
//      (never above) what the CPU supports — used by tests and by
//      bench_kernels' scalar-vs-SIMD panel via SimdTierOverride.
//   3. CPUID: the highest tier the host supports.
#ifndef HIPRESS_SRC_COMMON_SIMD_H_
#define HIPRESS_SRC_COMMON_SIMD_H_

#include <string_view>

namespace hipress {

enum class SimdTier {
  kScalar = 0,  // portable C++, any CPU
  kAvx2 = 1,    // AVX2 + FMA + F16C (every AVX2-era x86-64 core)
  kAvx512 = 2,  // AVX-512 F + BW + VL
};

// True when this binary carries vector kernel variants at all (x86-64,
// GCC/Clang, not HIPRESS_FORCE_SCALAR).
bool SimdCompiledIn();

// Highest tier the host CPU supports (ignores env overrides). Cached after
// the first call.
SimdTier SimdHostTier();

// Tier the kernels actually dispatch to: min(host tier, HIPRESS_SIMD env
// cap, override). Cached; the env var is read once.
SimdTier ActiveSimdTier();

// Process-wide override used by tests and benches to force a lower tier
// (e.g. measure scalar vs AVX2 in one process). Passing a tier above the
// host's capability clamps to the host tier. Not thread-safe with respect
// to concurrently running kernels — set it between kernel invocations.
void SimdTierOverride(SimdTier tier);
void ClearSimdTierOverride();

// "scalar", "avx2", "avx512".
std::string_view SimdTierName(SimdTier tier);

// Parses a tier name (as in HIPRESS_SIMD); returns kScalar for unknown
// strings.
SimdTier ParseSimdTier(std::string_view name);

}  // namespace hipress

#endif  // HIPRESS_SRC_COMMON_SIMD_H_
