// Deterministic, seedable RNG (SplitMix64 seeding a xoshiro256** core).
// All stochastic behaviour in the library — stochastic rounding in
// quantizers, sampling in DGC threshold estimation, synthetic workloads —
// goes through this so runs are reproducible.
#ifndef HIPRESS_SRC_COMMON_RNG_H_
#define HIPRESS_SRC_COMMON_RNG_H_

#include <cstdint>

namespace hipress {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform 32-bit value.
  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform float in [0, 1).
  float NextFloat();

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  // Standard normal (Box-Muller, no caching for determinism of call counts).
  double NextGaussian();

  // Derives an independent stream for the given id (e.g., per-node RNGs).
  Rng Fork(uint64_t stream_id) const;

 private:
  uint64_t state_[4];
};

}  // namespace hipress

#endif  // HIPRESS_SRC_COMMON_RNG_H_
