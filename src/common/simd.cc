#include "src/common/simd.h"

#include <atomic>
#include <cstdlib>

namespace hipress {
namespace {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(HIPRESS_FORCE_SCALAR)
constexpr bool kSimdCompiledIn = true;

SimdTier DetectHostTier() {
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl")) {
    return SimdTier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
      __builtin_cpu_supports("f16c")) {
    return SimdTier::kAvx2;
  }
  return SimdTier::kScalar;
}
#else
constexpr bool kSimdCompiledIn = false;

SimdTier DetectHostTier() { return SimdTier::kScalar; }
#endif

SimdTier EnvCap() {
  const char* env = std::getenv("HIPRESS_SIMD");
  if (env == nullptr || *env == '\0') {
    return SimdTier::kAvx512;  // no cap
  }
  return ParseSimdTier(env);
}

// kNoOverride sentinel keeps the override slot lock-free.
constexpr int kNoOverride = -1;
std::atomic<int> g_override{kNoOverride};

}  // namespace

bool SimdCompiledIn() { return kSimdCompiledIn; }

SimdTier SimdHostTier() {
  static const SimdTier tier = DetectHostTier();
  return tier;
}

SimdTier ActiveSimdTier() {
  static const SimdTier capped = [] {
    const SimdTier host = SimdHostTier();
    const SimdTier cap = EnvCap();
    return host < cap ? host : cap;
  }();
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced != kNoOverride) {
    const SimdTier tier = static_cast<SimdTier>(forced);
    return tier < capped ? tier : capped;
  }
  return capped;
}

void SimdTierOverride(SimdTier tier) {
  g_override.store(static_cast<int>(tier), std::memory_order_relaxed);
}

void ClearSimdTierOverride() {
  g_override.store(kNoOverride, std::memory_order_relaxed);
}

std::string_view SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "scalar";
}

SimdTier ParseSimdTier(std::string_view name) {
  if (name == "avx512") {
    return SimdTier::kAvx512;
  }
  if (name == "avx2") {
    return SimdTier::kAvx2;
  }
  return SimdTier::kScalar;
}

}  // namespace hipress
