// Pooled workspace memory for the synchronization hot path.
//
// HiPress's on-GPU kernels never malloc per iteration: device buffers live
// in a pool sized during the first rounds, which is a large part of why the
// CompLL kernels beat the OSS baselines (PAPER.md §4-5). This is the CPU
// reproduction of that discipline. A size-bucketed, thread-safe BufferPool
// recycles raw byte blocks; Tensor/ByteBuffer storage, codec scratch,
// dataflow aggregation buffers and network payloads all draw from it, so
// after one warm-up iteration the steady-state sync path performs zero
// fresh heap allocations ("mem.pool_misses" stops moving — the invariant
// tests/buffer_pool_test.cc asserts).
//
// Layering: BufferPool hands out raw Blocks; PooledArray<T> is the RAII
// owner used like a trivially-copyable-element std::vector; Workspace is a
// per-sync facade that stamps out PooledArrays from one pool. See
// docs/MEMORY.md for design notes, invariants and knobs.
#ifndef HIPRESS_SRC_COMMON_BUFFER_POOL_H_
#define HIPRESS_SRC_COMMON_BUFFER_POOL_H_

#include <algorithm>
#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace hipress {

// Size-bucketed free-list allocator. Requests round up to the next
// power-of-two bucket (minimum kMinBucketBytes); a Release keyed by the
// block's bucket capacity makes the block immediately reusable by any
// later Acquire that rounds to the same bucket, regardless of element
// type. Thread-safe; a single mutex guards the free lists (the sync path
// acquires at partition granularity, so contention is negligible next to
// encode/decode work).
class BufferPool {
 public:
  // A raw allocation. `capacity` is always the bucket-rounded byte size —
  // Release() uses it to find the owning bucket, so callers must hand back
  // the Block unmodified.
  struct Block {
    void* data = nullptr;
    size_t capacity = 0;
    explicit operator bool() const { return data != nullptr; }
  };

  struct Stats {
    uint64_t hits = 0;          // acquisitions served from a free list
    uint64_t misses = 0;        // acquisitions that had to malloc
    uint64_t bytes_in_use = 0;  // acquired minus released
    uint64_t peak_bytes = 0;    // high-water mark of bytes_in_use
    uint64_t free_bytes = 0;    // cached in free lists, ready to reuse
    uint64_t free_blocks = 0;
    uint64_t trims = 0;          // Trim() calls that released anything
    uint64_t trimmed_bytes = 0;  // bytes returned to the heap by Trim()
  };

  // `registry`, when set, receives live "<prefix>.pool_hits"/
  // "<prefix>.pool_misses" counters and "<prefix>.bytes_in_use"/
  // "<prefix>.peak_bytes" gauges. The default prefix "mem" is the
  // process-wide workspace pool; the Network wire pool publishes under
  // "net" so wire-path and compute-path allocation behavior are gated
  // independently (docs/MEMORY.md, docs/COMMUNICATION.md). Local pools
  // (tests, benches) pass nullptr and read stats() directly.
  explicit BufferPool(MetricsRegistry* registry = nullptr,
                      const char* metric_prefix = "mem");
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Never returns null for bytes > 0; a zero-byte request returns an empty
  // Block (Release of which is a no-op).
  Block Acquire(size_t bytes);
  void Release(Block block);

  Stats stats() const;

  // Watermark-based trim: returns cached free blocks to the heap, largest
  // buckets first, until at most `keep_free_bytes` remain cached; returns
  // the bytes released. Trim(0) drops everything (the old behavior).
  // Outstanding blocks are unaffected. Shrinking batch sizes or worker
  // sets call this with a scaled-down watermark so peak-size buckets are
  // released while the warm steady-state buckets keep the pool miss-free
  // (docs/MEMORY.md).
  size_t Trim(size_t keep_free_bytes = 0);

  // When set, every pool miss (fresh malloc) is recorded as a zero-width
  // span on `spans` (lane kTraceLaneMemAlloc, wall-clock ns since pool
  // construction), making warm-up allocation bursts visible in the unified
  // Perfetto trace. Pass nullptr to detach; `spans` must outlive the
  // attachment.
  void set_trace(SpanCollector* spans, int node = 0);

  // Process-wide pool backing Tensor/ByteBuffer storage and default
  // Workspace scratch. Intentionally leaked: buffers with static storage
  // duration release into it during program teardown.
  static BufferPool& Global();

  // Bucket a request of `bytes` rounds up to (what Acquire will actually
  // reserve). Exposed for tests and capacity planning.
  static size_t BucketCapacity(size_t bytes);

 private:
  static constexpr size_t kMinBucketBytes = 64;
  static constexpr int kNumBuckets = 52;  // 64B << 51 covers any size_t ask

  static int BucketIndex(size_t bytes);

  mutable std::mutex mutex_;
  std::array<std::vector<void*>, kNumBuckets> free_lists_;
  Stats stats_;
  MetricsRegistry* registry_ = nullptr;
  Counter* hits_counter_ = nullptr;
  Counter* misses_counter_ = nullptr;
  Gauge* in_use_gauge_ = nullptr;
  Gauge* peak_gauge_ = nullptr;
  SpanCollector* spans_ = nullptr;
  int trace_node_ = 0;
  std::chrono::steady_clock::time_point trace_origin_;
};

// Move-only RAII array over a pooled Block. The deliberate subset of
// std::vector that the sync path needs: resize() preserves the prefix but
// leaves grown tails uninitialized (callers overwrite; use assign() to
// fill), push_back() amortizes through the pool. Element types must be
// trivially copyable so blocks can be recycled across types.
template <typename T>
class PooledArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "PooledArray recycles raw byte blocks across element types");

 public:
  PooledArray() = default;
  explicit PooledArray(BufferPool* pool) : pool_(pool) {}
  PooledArray(BufferPool* pool, size_t count) : pool_(pool) { resize(count); }

  PooledArray(PooledArray&& other) noexcept { *this = std::move(other); }
  PooledArray& operator=(PooledArray&& other) noexcept {
    if (this != &other) {
      ReleaseBlock();
      pool_ = other.pool_;
      block_ = other.block_;
      size_ = other.size_;
      other.block_ = BufferPool::Block();
      other.size_ = 0;
    }
    return *this;
  }

  PooledArray(const PooledArray&) = delete;
  PooledArray& operator=(const PooledArray&) = delete;

  ~PooledArray() { ReleaseBlock(); }

  T* data() { return static_cast<T*>(block_.data); }
  const T* data() const { return static_cast<const T*>(block_.data); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return block_.capacity / sizeof(T); }

  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return data()[i]; }
  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  std::span<T> span() { return {data(), size_}; }
  std::span<const T> span() const { return {data(), size_}; }

  void reserve(size_t count) {
    if (count > capacity()) {
      Grow(count);
    }
  }

  // Grown tail is uninitialized.
  void resize(size_t count) {
    reserve(count);
    size_ = count;
  }

  void assign(size_t count, T value) {
    resize(count);
    for (size_t i = 0; i < count; ++i) {
      data()[i] = value;
    }
  }

  void push_back(const T& value) {
    if (size_ == capacity()) {
      Grow(size_ + 1);
    }
    data()[size_++] = value;
  }

  // Keeps capacity; the block stays owned for reuse.
  void clear() { size_ = 0; }

 private:
  BufferPool* pool() {
    return pool_ != nullptr ? pool_ : &BufferPool::Global();
  }

  void Grow(size_t count) {
    const size_t want_elems = std::max(count, capacity() * 2);
    BufferPool::Block grown = pool()->Acquire(want_elems * sizeof(T));
    if (size_ > 0) {
      std::memcpy(grown.data, block_.data, size_ * sizeof(T));
    }
    ReleaseBlock();
    block_ = grown;
  }

  void ReleaseBlock() {
    if (block_) {
      pool()->Release(block_);
      block_ = BufferPool::Block();
    }
  }

  BufferPool* pool_ = nullptr;  // nullptr = BufferPool::Global()
  BufferPool::Block block_;
  size_t size_ = 0;
};

using PooledBytes = PooledArray<uint8_t>;
using PooledFloats = PooledArray<float>;
using PooledU32 = PooledArray<uint32_t>;

// Per-sync scratch facade: one object to thread through a dataflow round
// or codec call, stamping out pooled arrays from a single pool.
class Workspace {
 public:
  explicit Workspace(BufferPool* pool = &BufferPool::Global())
      : pool_(pool) {}

  BufferPool* pool() const { return pool_; }

  PooledFloats floats(size_t count) { return {pool_, count}; }
  PooledFloats zeroed_floats(size_t count) {
    PooledFloats out(pool_);
    out.assign(count, 0.0f);
    return out;
  }
  PooledBytes bytes(size_t count) { return {pool_, count}; }
  PooledU32 indices(size_t count) { return {pool_, count}; }

 private:
  BufferPool* pool_;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_COMMON_BUFFER_POOL_H_
