#include "src/common/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace hipress {
namespace {

std::atomic<FlightRecorder*> g_global_recorder{nullptr};

// Fatal-log hook: dump the installed recorder's rings before the process
// aborts, so a CHECK failure leaves a black box behind.
void DumpGlobalOnFatal() {
  FlightRecorder* recorder =
      g_global_recorder.load(std::memory_order_acquire);
  if (recorder != nullptr) {
    recorder->TriggerDump("fatal");
  }
}

void AppendU32(std::string* out, uint32_t value) {
  char bytes[4];
  std::memcpy(bytes, &value, sizeof(value));
  out->append(bytes, sizeof(bytes));
}

void AppendU64(std::string* out, uint64_t value) {
  char bytes[8];
  std::memcpy(bytes, &value, sizeof(value));
  out->append(bytes, sizeof(bytes));
}

size_t RoundUpPowerOfTwo(size_t value) {
  size_t result = 1;
  while (result < value) {
    result <<= 1;
  }
  return result;
}

}  // namespace

FlightRecorder::FlightRecorder(Options options) : options_(options) {
  CHECK_GT(options_.num_nodes, 0);
  CHECK_GT(options_.events_per_node, 0u);
  const size_t capacity = RoundUpPowerOfTwo(options_.events_per_node);
  mask_ = capacity - 1;
  rings_ = std::vector<Ring>(static_cast<size_t>(options_.num_nodes));
  for (Ring& ring : rings_) {
    ring.records.assign(capacity, FlightRecord());
  }
  // Id 0 is reserved so a zeroed record decodes as "(empty)".
  type_names_.push_back("(empty)");
}

FlightRecorder::~FlightRecorder() { ClearGlobal(this); }

uint16_t FlightRecorder::Intern(const std::string& name) {
  std::lock_guard<std::mutex> lock(intern_mutex_);
  for (size_t i = 0; i < type_names_.size(); ++i) {
    if (type_names_[i] == name) {
      return static_cast<uint16_t>(i);
    }
  }
  CHECK_LT(type_names_.size(), 65536u) << "flight-record type table full";
  type_names_.push_back(name);
  return static_cast<uint16_t>(type_names_.size() - 1);
}

uint64_t FlightRecorder::events_recorded() const {
  uint64_t total = 0;
  for (const Ring& ring : rings_) {
    total += ring.head.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t FlightRecorder::events_overwritten() const {
  const uint64_t capacity = mask_ + 1;
  uint64_t total = 0;
  for (const Ring& ring : rings_) {
    const uint64_t head = ring.head.load(std::memory_order_relaxed);
    total += head > capacity ? head - capacity : 0;
  }
  return total;
}

std::vector<FlightRecord> FlightRecorder::Snapshot(int node) const {
  std::vector<FlightRecord> out;
  if (node < 0 || node >= num_nodes()) {
    return out;
  }
  const Ring& ring = rings_[node];
  const uint64_t head = ring.head.load(std::memory_order_acquire);
  const uint64_t capacity = mask_ + 1;
  const uint64_t valid = std::min(head, capacity);
  out.reserve(valid);
  for (uint64_t i = head - valid; i < head; ++i) {
    out.push_back(ring.records[i & mask_]);
  }
  return out;
}

std::vector<std::string> FlightRecorder::type_names() const {
  std::lock_guard<std::mutex> lock(intern_mutex_);
  return type_names_;
}

std::string FlightRecorder::Serialize() const {
  std::string out;
  out.append(kFlightDumpMagic, sizeof(kFlightDumpMagic));
  AppendU32(&out, kFlightDumpVersion);
  const std::vector<std::string> names = type_names();
  AppendU32(&out, static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    AppendU32(&out, static_cast<uint32_t>(name.size()));
    out.append(name);
  }
  AppendU32(&out, static_cast<uint32_t>(num_nodes()));
  AppendU32(&out, static_cast<uint32_t>(mask_ + 1));
  for (int node = 0; node < num_nodes(); ++node) {
    const std::vector<FlightRecord> records = Snapshot(node);
    AppendU64(&out, rings_[node].head.load(std::memory_order_relaxed));
    AppendU32(&out, static_cast<uint32_t>(records.size()));
    for (const FlightRecord& record : records) {
      AppendU64(&out, record.time_type);
      AppendU64(&out, record.a0);
      AppendU64(&out, record.a1);
    }
  }
  return out;
}

Status FlightRecorder::Dump(const std::string& path) const {
  const std::string bytes = Serialize();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return InvalidArgumentError("cannot open flight dump: " + path);
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  std::fclose(file);
  if (written != bytes.size()) {
    return InternalError("short write to flight dump: " + path);
  }
  dumps_written_.fetch_add(1, std::memory_order_relaxed);
  dump_bytes_.store(bytes.size(), std::memory_order_relaxed);
  return Status::Ok();
}

void FlightRecorder::TriggerDump(const std::string& reason) {
  if (options_.dump_path.empty()) {
    return;
  }
  // Stamp the trigger as the newest node-0 event, timed just after the
  // newest record so decoded tails end with the cause.
  SimTime last = 0;
  for (int node = 0; node < num_nodes(); ++node) {
    const std::vector<FlightRecord> records = Snapshot(node);
    if (!records.empty()) {
      last = std::max(last, records.back().time());
    }
  }
  Record(0, Intern("fr.dump:" + reason), last);
  const Status status = Dump(options_.dump_path);
  if (!status.ok()) {
    std::fprintf(stderr, "flight recorder: dump failed: %s\n",
                 status.message().c_str());
    return;
  }
  std::fprintf(stderr, "flight recorder: dumped %d ring(s) to %s (%s)\n",
               num_nodes(), options_.dump_path.c_str(), reason.c_str());
}

void FlightRecorder::PublishMetrics(MetricsRegistry* registry) const {
  if (registry == nullptr) {
    return;
  }
  registry->gauge("fr.events_recorded")
      .Set(static_cast<double>(events_recorded()));
  registry->gauge("fr.events_overwritten")
      .Set(static_cast<double>(events_overwritten()));
  registry->gauge("fr.ring_nodes").Set(static_cast<double>(num_nodes()));
  registry->gauge("fr.ring_capacity")
      .Set(static_cast<double>(capacity_per_node()));
  registry->gauge("fr.dumps_written")
      .Set(static_cast<double>(dumps_written()));
  registry->gauge("fr.dump_bytes")
      .Set(static_cast<double>(dump_bytes_.load(std::memory_order_relaxed)));
}

void FlightRecorder::InstallGlobal(FlightRecorder* recorder) {
  g_global_recorder.store(recorder, std::memory_order_release);
  SetFatalHandler(recorder != nullptr ? &DumpGlobalOnFatal : nullptr);
}

void FlightRecorder::ClearGlobal(FlightRecorder* recorder) {
  FlightRecorder* expected = recorder;
  if (g_global_recorder.compare_exchange_strong(expected, nullptr,
                                                std::memory_order_acq_rel)) {
    SetFatalHandler(nullptr);
  }
}

FlightRecorder* FlightRecorder::Global() {
  return g_global_recorder.load(std::memory_order_acquire);
}

}  // namespace hipress
