// Linear kernel-cost line: launch overhead + bytes / throughput.
//
// The unit of the repository's cost modelling (Table 2's T_enc / T_dec /
// T_merge curves): speed profiles calibrate one line per (algorithm,
// implementation, platform) triple, the SeCoPa planner and the CaSync
// engine evaluate it, and the cost-model auditor (src/common/profiler.h)
// fits fresh lines from measured samples to quantify drift.
#ifndef HIPRESS_SRC_COMMON_KERNEL_COST_H_
#define HIPRESS_SRC_COMMON_KERNEL_COST_H_

#include <cstdint>

#include "src/common/units.h"

namespace hipress {

struct KernelCost {
  SimTime launch_overhead = FromMicros(20.0);
  double bytes_per_second = 100e9;

  SimTime Time(uint64_t bytes) const {
    return launch_overhead +
           static_cast<SimTime>(static_cast<double>(bytes) /
                                bytes_per_second *
                                static_cast<double>(kSecond));
  }
};

}  // namespace hipress

#endif  // HIPRESS_SRC_COMMON_KERNEL_COST_H_
