// Always-on black-box flight recorder.
//
// A FlightRecorder keeps one fixed-size binary ring buffer of compact event
// records per node. Recording is a relaxed fetch_add plus a 24-byte store —
// cheap enough (bench_observability gates <= 100 ns/event and <= 3% wall
// overhead at 1024-node scale) to stay on for every run, unlike the full
// span trace. When a run dies — a CHECK failure, ReliableChannel retry-budget
// exhaustion, a watchdog trip — the rings are dumped to a binary file that
// tools/flight_decode.py turns back into JSONL or a Perfetto trace (lane 21),
// reconstructing each node's last moments (docs/OBSERVABILITY.md).
//
// Event types are interned strings: Intern("net.send") returns a stable
// 16-bit id, and each record packs (sim_time_ns << 16 | type_id) with two
// free-form u64 arguments. The recorder never influences simulation
// decisions, so replay fingerprints are bit-identical with it on or off.
#ifndef HIPRESS_SRC_COMMON_FLIGHT_RECORDER_H_
#define HIPRESS_SRC_COMMON_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace hipress {

class MetricsRegistry;

// One recorded event: 24 bytes. The top 48 bits of `time_type` hold the
// sim time in nanoseconds (enough for ~3.2 simulated days), the low 16 the
// interned type id.
struct FlightRecord {
  uint64_t time_type = 0;
  uint64_t a0 = 0;
  uint64_t a1 = 0;

  SimTime time() const { return static_cast<SimTime>(time_type >> 16); }
  uint16_t type() const { return static_cast<uint16_t>(time_type & 0xffff); }
};
static_assert(sizeof(FlightRecord) == 24, "records must stay compact");

class FlightRecorder {
 public:
  struct Options {
    int num_nodes = 1;
    // Ring capacity per node; rounded up to a power of two. 256 records is
    // 6 KiB/node — a 1024-node cluster's black box fits in 6 MiB.
    size_t events_per_node = 256;
    // When non-empty, TriggerDump() writes the rings here. The trainer
    // threads --flight-record through this field.
    std::string dump_path;
  };

  explicit FlightRecorder(Options options);
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Returns the stable id for `name`, interning it on first use. Ids are
  // assigned in interning order; at most 65535 distinct types. Hot paths
  // intern once up front and cache the id.
  uint16_t Intern(const std::string& name);

  // Appends an event to `node`'s ring, overwriting the oldest record once
  // the ring is full. Lock-free: a relaxed fetch_add claims the slot.
  void Record(int node, uint16_t type, SimTime now, uint64_t a0 = 0,
              uint64_t a1 = 0) {
    if (node < 0 || node >= static_cast<int>(rings_.size())) {
      return;
    }
    Ring& ring = rings_[node];
    const uint64_t seq = ring.head.fetch_add(1, std::memory_order_relaxed);
    FlightRecord& slot = ring.records[seq & mask_];
    slot.time_type = (static_cast<uint64_t>(now) << 16) |
                     static_cast<uint64_t>(type);
    slot.a0 = a0;
    slot.a1 = a1;
  }

  int num_nodes() const { return static_cast<int>(rings_.size()); }
  size_t capacity_per_node() const { return mask_ + 1; }
  const std::string& dump_path() const { return options_.dump_path; }

  // Total events ever recorded / overwritten after their ring filled.
  uint64_t events_recorded() const;
  uint64_t events_overwritten() const;
  uint64_t dumps_written() const {
    return dumps_written_.load(std::memory_order_relaxed);
  }

  // Snapshot of `node`'s retained records, oldest to newest.
  std::vector<FlightRecord> Snapshot(int node) const;
  // Interned type names, indexed by id.
  std::vector<std::string> type_names() const;

  // Binary serialization: "HPFR" magic, version, the string table, then one
  // section per node ring (tools/flight_decode.py reads this format).
  std::string Serialize() const;
  Status Dump(const std::string& path) const;

  // Dumps to options_.dump_path (no-op without one), stamping the reason
  // into a final "fr.dump" event on node 0. Called from the fatal-log
  // handler, retry-budget exhaustion and watchdog trips.
  void TriggerDump(const std::string& reason);

  // Publishes fr.* gauges (events recorded/overwritten, ring geometry,
  // dumps written) into `registry`.
  void PublishMetrics(MetricsRegistry* registry) const;

  // Process-wide instance for the fatal path: InstallGlobal registers
  // `recorder` (not owned) and hooks the logging fatal handler so a CHECK
  // failure dumps the rings before aborting. ClearGlobal(recorder) detaches
  // only if `recorder` is still the installed one.
  static void InstallGlobal(FlightRecorder* recorder);
  static void ClearGlobal(FlightRecorder* recorder);
  static FlightRecorder* Global();

 private:
  struct Ring {
    std::atomic<uint64_t> head{0};
    std::vector<FlightRecord> records;
  };

  Options options_;
  uint64_t mask_ = 0;
  std::vector<Ring> rings_;
  mutable std::mutex intern_mutex_;
  std::vector<std::string> type_names_;
  // Mutated by the (logically const) Dump path.
  mutable std::atomic<uint64_t> dumps_written_{0};
  mutable std::atomic<uint64_t> dump_bytes_{0};
};

// Binary dump format constants, shared with tools/flight_decode.py.
inline constexpr char kFlightDumpMagic[4] = {'H', 'P', 'F', 'R'};
inline constexpr uint32_t kFlightDumpVersion = 1;

}  // namespace hipress

#endif  // HIPRESS_SRC_COMMON_FLIGHT_RECORDER_H_
