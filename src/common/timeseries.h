// Windowed time-series telemetry.
//
// MetricsRegistry snapshots answer "what happened over the whole run"; the
// flight recorder answers "what were the last events before it died". This
// layer answers the question in between — "how has sim.queue_depth (or
// cp.share.send, net.pool_misses, a job<k> rollup) evolved over the last
// few seconds" — cheaply enough to stay on at 1024-node scale. Each
// WindowedSeries is a fixed ring of aggregation windows of equal sim-time
// width holding count/min/max/sum/last; observing a sample is O(1) and
// allocation-free once constructed.
//
// TimeSeriesHub owns the series for a run. Series are either observed
// directly (Series("train.iteration_ms").Observe(now, ms)) or attached to a
// MetricsRegistry counter/gauge and pulled by SampleAll at iteration
// boundaries (counters sample as per-interval deltas). The HealthMonitor
// (src/common/watchdog.h) evaluates its rules over these windows.
#ifndef HIPRESS_SRC_COMMON_TIMESERIES_H_
#define HIPRESS_SRC_COMMON_TIMESERIES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace hipress {

class MetricsRegistry;

// One aggregation window: [start, start + width) in sim time.
struct SeriesWindow {
  SimTime start = 0;
  uint64_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  double last = 0.0;

  double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

// Ring of the most recent `num_windows` aggregation windows. Windows the
// simulation skipped (no samples) are materialized empty, so the ring is a
// gap-free recent history. Not thread-safe; the single-threaded simulation
// loop is the only writer.
class WindowedSeries {
 public:
  WindowedSeries(std::string name, SimTime window_width, size_t num_windows);

  const std::string& name() const { return name_; }
  SimTime window_width() const { return width_; }

  void Observe(SimTime now, double value);

  // Retained windows, oldest to newest (at most num_windows; empty before
  // the first Observe).
  std::vector<SeriesWindow> Windows() const;
  uint64_t total_samples() const { return total_samples_; }
  double last_value() const { return last_value_; }

  // Median of the per-window means over up to `n` windows ending just
  // before the newest window — the rolling baseline the watchdog compares
  // the newest window against. 0 when no prior windows exist.
  double RollingMedianBefore(size_t n) const;
  // Number of windows currently retained.
  size_t size() const;

 private:
  // Advances the ring so `ordinal` is the newest window, zero-filling any
  // skipped windows.
  void AdvanceTo(int64_t ordinal);
  SeriesWindow& Slot(int64_t ordinal) {
    return ring_[static_cast<size_t>(ordinal) % ring_.size()];
  }
  const SeriesWindow& Slot(int64_t ordinal) const {
    return ring_[static_cast<size_t>(ordinal) % ring_.size()];
  }

  std::string name_;
  SimTime width_;
  std::vector<SeriesWindow> ring_;
  int64_t first_ordinal_ = -1;  // oldest retained window; -1 before data
  int64_t last_ordinal_ = -1;   // newest window
  uint64_t total_samples_ = 0;
  double last_value_ = 0.0;
};

// Owns a run's series and their registry attachments.
class TimeSeriesHub {
 public:
  struct Options {
    SimTime window_width = 50 * kMillisecond;
    size_t num_windows = 64;
  };

  TimeSeriesHub() : TimeSeriesHub(Options()) {}
  explicit TimeSeriesHub(Options options);
  TimeSeriesHub(const TimeSeriesHub&) = delete;
  TimeSeriesHub& operator=(const TimeSeriesHub&) = delete;

  // Returns the series named `name`, creating it on first use.
  WindowedSeries& Series(const std::string& name);
  // nullptr when the series does not exist.
  const WindowedSeries* Find(const std::string& name) const;

  // Attaches a registry metric; every SampleAll observes its current value
  // (gauge) or the delta since the previous sample (counter) into the
  // series of the same name.
  void AttachGauge(MetricsRegistry* registry, const std::string& metric);
  void AttachCounter(MetricsRegistry* registry, const std::string& metric);

  // Pulls every attachment once. Called at iteration boundaries.
  void SampleAll(SimTime now);

  std::vector<const WindowedSeries*> AllSeries() const;
  SimTime window_width() const { return options_.window_width; }

 private:
  struct Attachment {
    std::string metric;
    bool is_counter = false;
    MetricsRegistry* registry = nullptr;
    uint64_t last_counter = 0;
  };

  Options options_;
  std::vector<std::unique_ptr<WindowedSeries>> series_;
  std::vector<Attachment> attachments_;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_COMMON_TIMESERIES_H_
