// Bit-level helpers used by the quantization codecs and the CompLL code
// generator for packing sub-byte integer arrays.
#ifndef HIPRESS_SRC_COMMON_BITOPS_H_
#define HIPRESS_SRC_COMMON_BITOPS_H_

#include <cstddef>
#include <cstdint>

namespace hipress {

// Number of bytes needed to store `count` values of `bits` bits each,
// padded to whole bytes.
constexpr size_t PackedBytes(size_t count, unsigned bits) {
  return (count * bits + 7) / 8;
}

// Writes the low `bits` bits of `value` at bit offset `bit_pos` in `buffer`.
// Values must not straddle more than 8 bytes; bits must be in [1, 32].
inline void WriteBits(uint8_t* buffer, size_t bit_pos, unsigned bits,
                      uint32_t value) {
  for (unsigned i = 0; i < bits; ++i) {
    const size_t pos = bit_pos + i;
    const size_t byte = pos >> 3;
    const unsigned offset = pos & 7;
    const uint8_t mask = static_cast<uint8_t>(1u << offset);
    if ((value >> i) & 1u) {
      buffer[byte] |= mask;
    } else {
      buffer[byte] &= static_cast<uint8_t>(~mask);
    }
  }
}

// Reads `bits` bits starting at bit offset `bit_pos` in `buffer`.
inline uint32_t ReadBits(const uint8_t* buffer, size_t bit_pos,
                         unsigned bits) {
  uint32_t value = 0;
  for (unsigned i = 0; i < bits; ++i) {
    const size_t pos = bit_pos + i;
    const size_t byte = pos >> 3;
    const unsigned offset = pos & 7;
    value |= static_cast<uint32_t>((buffer[byte] >> offset) & 1u) << i;
  }
  return value;
}

// Fast paths for whole-byte-aligned 1/2/4-bit packing used by hot codec
// loops: pack 8/4/2 values into one byte in a single store.
inline uint8_t Pack8x1(const uint8_t* values) {
  uint8_t byte = 0;
  for (int i = 0; i < 8; ++i) {
    byte |= static_cast<uint8_t>((values[i] & 1u) << i);
  }
  return byte;
}

inline void Unpack8x1(uint8_t byte, uint8_t* values) {
  for (int i = 0; i < 8; ++i) {
    values[i] = (byte >> i) & 1u;
  }
}

inline uint8_t Pack4x2(const uint8_t* values) {
  return static_cast<uint8_t>((values[0] & 3u) | ((values[1] & 3u) << 2) |
                              ((values[2] & 3u) << 4) |
                              ((values[3] & 3u) << 6));
}

inline void Unpack4x2(uint8_t byte, uint8_t* values) {
  values[0] = byte & 3u;
  values[1] = (byte >> 2) & 3u;
  values[2] = (byte >> 4) & 3u;
  values[3] = (byte >> 6) & 3u;
}

inline uint8_t Pack2x4(const uint8_t* values) {
  return static_cast<uint8_t>((values[0] & 0xfu) | ((values[1] & 0xfu) << 4));
}

inline void Unpack2x4(uint8_t byte, uint8_t* values) {
  values[0] = byte & 0xfu;
  values[1] = (byte >> 4) & 0xfu;
}

}  // namespace hipress

#endif  // HIPRESS_SRC_COMMON_BITOPS_H_
