// Time, size and bandwidth units shared by the simulator and cost models.
// Simulated time is int64 nanoseconds to keep event ordering exact.
#ifndef HIPRESS_SRC_COMMON_UNITS_H_
#define HIPRESS_SRC_COMMON_UNITS_H_

#include <cstdint>

namespace hipress {

// Simulated time in nanoseconds.
using SimTime = int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / kSecond; }
constexpr double ToMillis(SimTime t) {
  return static_cast<double>(t) / kMillisecond;
}
constexpr SimTime FromSeconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}
constexpr SimTime FromMillis(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
}
constexpr SimTime FromMicros(double us) {
  return static_cast<SimTime>(us * static_cast<double>(kMicrosecond));
}

constexpr uint64_t kKiB = 1024;
constexpr uint64_t kMiB = 1024 * kKiB;
constexpr uint64_t kGiB = 1024 * kMiB;

constexpr double ToMiB(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}

// Bandwidth in bits per second. Networks are quoted in Gbps (SI).
struct Bandwidth {
  double bits_per_second = 0.0;

  static constexpr Bandwidth Gbps(double gbps) {
    return Bandwidth{gbps * 1e9};
  }
  static constexpr Bandwidth GBps(double gigabytes_per_second) {
    return Bandwidth{gigabytes_per_second * 8e9};
  }

  constexpr double bytes_per_second() const { return bits_per_second / 8.0; }

  // Time to move `bytes` at this bandwidth (no latency term).
  constexpr SimTime TransferTime(uint64_t bytes) const {
    if (bits_per_second <= 0.0) {
      return 0;
    }
    return static_cast<SimTime>(static_cast<double>(bytes) /
                                bytes_per_second() *
                                static_cast<double>(kSecond));
  }
};

}  // namespace hipress

#endif  // HIPRESS_SRC_COMMON_UNITS_H_
