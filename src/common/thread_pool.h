// Fixed-size worker pool used to model GPU thread-block parallelism for
// compression kernels and to run concurrent simulation components.
#ifndef HIPRESS_SRC_COMMON_THREAD_POOL_H_
#define HIPRESS_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hipress {

class ThreadPool {
 public:
  // Creates `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; returns a future for its completion.
  std::future<void> Submit(std::function<void()> task);

  // Runs fn(begin, end) shards of [0, total) across the pool and blocks until
  // all shards complete. Grain controls the minimum shard size.
  void ParallelFor(size_t total, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

  // Process-wide pool sized to hardware concurrency; lazily constructed.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_COMMON_THREAD_POOL_H_
