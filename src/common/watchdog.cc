#include "src/common/watchdog.h"

#include <algorithm>

#include "src/common/flight_recorder.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/string_util.h"

namespace hipress {

std::string HealthReport::Summary() const {
  if (!enabled) {
    return "health: off";
  }
  std::string out = StrFormat("health: %zu rule trip(s) over %llu checks",
                              trips.size(),
                              static_cast<unsigned long long>(evaluations));
  if (tripped_at_end.empty()) {
    out += ", all clear";
    return out;
  }
  out += ", STILL TRIPPED:";
  for (const std::string& rule : tripped_at_end) {
    out += " " + rule;
  }
  return out;
}

HealthMonitor::HealthMonitor(TimeSeriesHub* hub, MetricsRegistry* metrics,
                             FlightRecorder* recorder)
    : hub_(hub), metrics_(metrics), recorder_(recorder) {
  CHECK(hub_ != nullptr);
  report_.enabled = true;
}

void HealthMonitor::AddRule(HealthRule rule) {
  RuleState state;
  state.rule = std::move(rule);
  if (recorder_ != nullptr) {
    state.trip_event = recorder_->Intern("health.trip:" + state.rule.name);
    state.clear_event = recorder_->Intern("health.clear:" + state.rule.name);
  }
  if (metrics_ != nullptr) {
    metrics_->gauge("health." + state.rule.name).Set(0.0);
  }
  rules_.push_back(std::move(state));
}

std::vector<HealthRule> HealthMonitor::DefaultTrainerRules() {
  std::vector<HealthRule> rules;
  // Iteration-progress stall: the newest iteration took 3x the rolling
  // median — a straggler, a retry stall or a scheduler pathology.
  rules.push_back(HealthRule{"stall", "train.iteration_ms",
                             HealthRuleKind::kAboveMedianFactor, 3.0, 3, 2,
                             2});
  // Send-bandwidth collapse: measured send throughput fell below 40% of
  // its rolling median (link degradation, retry storms eating the wire).
  rules.push_back(HealthRule{"bw_collapse", "net.send_gbps",
                             HealthRuleKind::kBelowMedianFraction, 0.4, 3, 2,
                             2});
  // Retry storm: more than 64 transport retries within one iteration.
  rules.push_back(HealthRule{"retry_storm", "net.retries",
                             HealthRuleKind::kAboveValue, 64.0, 0, 2, 2});
  // Steady-state pool-miss growth: the wire pool must stop allocating once
  // warm (min_history skips the warm-up iterations).
  rules.push_back(HealthRule{"pool_miss_growth", "net.pool_misses",
                             HealthRuleKind::kAboveValue, 0.0, 3, 2, 2});
  // Scheduler queue-depth blowup vs. the run's own rolling baseline.
  rules.push_back(HealthRule{"queue_blowup", "sim.queue_depth",
                             HealthRuleKind::kAboveMedianFactor, 4.0, 3, 2,
                             2});
  return rules;
}

bool HealthMonitor::Violated(const RuleState& state, double* observed,
                             double* bound) const {
  const WindowedSeries* series = hub_->Find(state.rule.series);
  if (series == nullptr || series->size() == 0) {
    return false;
  }
  const std::vector<SeriesWindow> windows = series->Windows();
  const SeriesWindow& newest = windows.back();
  if (newest.count == 0) {
    return false;
  }
  *observed = newest.mean();
  // Arm only once `min_history` prior windows carry samples: warm-up must
  // not trip steady-state rules, and the rolling median is meaningless
  // before it has history.
  size_t prior = 0;
  for (size_t i = 0; i + 1 < windows.size(); ++i) {
    prior += windows[i].count > 0 ? 1 : 0;
  }
  if (prior < state.rule.min_history) {
    return false;
  }
  switch (state.rule.kind) {
    case HealthRuleKind::kAboveValue:
      *bound = state.rule.threshold;
      return *observed > *bound;
    case HealthRuleKind::kAboveMedianFactor:
    case HealthRuleKind::kBelowMedianFraction: {
      const double median = series->RollingMedianBefore(16);
      *bound = state.rule.threshold * median;
      if (median <= 0.0) {
        return false;
      }
      return state.rule.kind == HealthRuleKind::kAboveMedianFactor
                 ? *observed > *bound
                 : *observed < *bound;
    }
  }
  return false;
}

void HealthMonitor::Evaluate(SimTime now) {
  ++report_.evaluations;
  for (RuleState& state : rules_) {
    double observed = 0.0;
    double bound = 0.0;
    const bool violated = Violated(state, &observed, &bound);
    if (violated) {
      ++state.violation_streak;
      state.healthy_streak = 0;
    } else {
      ++state.healthy_streak;
      state.violation_streak = 0;
    }
    if (!state.tripped && state.violation_streak >= state.rule.trip_after) {
      state.tripped = true;
      state.open_trip = static_cast<int>(report_.trips.size());
      report_.trips.push_back(
          HealthTrip{state.rule.name, now, -1, observed, bound});
      if (metrics_ != nullptr) {
        metrics_->gauge("health." + state.rule.name).Set(1.0);
        metrics_->counter("health.trips").Increment();
      }
      if (recorder_ != nullptr) {
        recorder_->Record(0, state.trip_event, now,
                          static_cast<uint64_t>(observed * 1000.0),
                          static_cast<uint64_t>(std::max(0.0, bound) *
                                                1000.0));
      }
      LOG(Warning) << "watchdog: rule '" << state.rule.name
                   << "' tripped at t=" << ToMillis(now) << "ms (observed "
                   << observed << ", bound " << bound << ")";
      if (on_trip_) {
        on_trip_(state.rule);
      }
    } else if (state.tripped &&
               state.healthy_streak >= state.rule.clear_after) {
      state.tripped = false;
      report_.trips[state.open_trip].cleared_at = now;
      state.open_trip = -1;
      if (metrics_ != nullptr) {
        metrics_->gauge("health." + state.rule.name).Set(0.0);
      }
      if (recorder_ != nullptr) {
        recorder_->Record(0, state.clear_event, now);
      }
      LOG(Info) << "watchdog: rule '" << state.rule.name << "' cleared at t="
                << ToMillis(now) << "ms";
    }
  }
}

bool HealthMonitor::any_tripped() const {
  return std::any_of(rules_.begin(), rules_.end(),
                     [](const RuleState& state) { return state.tripped; });
}

HealthReport HealthMonitor::Finalize() {
  report_.tripped_at_end.clear();
  for (const RuleState& state : rules_) {
    if (state.tripped) {
      report_.tripped_at_end.push_back(state.rule.name);
    }
  }
  if (metrics_ != nullptr) {
    metrics_->gauge("health.rules").Set(static_cast<double>(rules_.size()));
    metrics_->gauge("health.tripped_at_end")
        .Set(static_cast<double>(report_.tripped_at_end.size()));
  }
  return report_;
}

}  // namespace hipress
