// Cost-model drift auditing and per-iteration step reports.
//
// Two pieces, both feeding the observability story:
//
//  * CostModelAuditor — accumulates measured per-primitive samples
//    (bytes, duration) next to the calibrated KernelCost lines the SeCoPa
//    planner and the CaSync engine plan with, publishes mean relative
//    error gauges ("costmodel.err.<primitive>"), and fits fresh
//    least-squares KernelCost lines from the samples so planning inputs
//    can be audited — and optionally refreshed — from real runs
//    (docs/COST_MODEL.md).
//
//  * StepRecord — one iteration's critical-path wall-time attribution
//    (compute / encode / merge / send+wire / recv / decode / wait),
//    serialized as one JSON object per line (`train_cluster
//    --step-report steps.jsonl`). The categories mirror
//    src/casync/critical_path.h; plain doubles here keep this layer free
//    of casync dependencies.
#ifndef HIPRESS_SRC_COMMON_PROFILER_H_
#define HIPRESS_SRC_COMMON_PROFILER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/kernel_cost.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/units.h"

namespace hipress {

// The cost-model primitives the planner prices (Eq. 1/2's T_send, T_enc,
// T_dec plus the raw path's merge kernel).
enum class CostPrimitive {
  kEncode,
  kDecode,
  kMerge,
  kSend,
};
inline constexpr int kNumCostPrimitives = 4;

const char* CostPrimitiveName(CostPrimitive primitive);

// Least-squares sufficient statistics over (x = bytes, y = ns) samples.
// Snapshots of one primitive's accumulated statistics subtract cleanly
// (`Since`), so a caller holding the previous iteration's snapshot can fit
// a cost line over just the samples recorded in between — the windowed
// view the runtime-adaptive controller estimates effective bandwidth from
// (docs/ADAPTIVE.md) without the auditor growing any per-sample state.
struct CostSampleStats {
  uint64_t count = 0;
  double sum_x = 0.0;
  double sum_y = 0.0;
  double sum_xx = 0.0;
  double sum_xy = 0.0;

  // Delta window: statistics accumulated after `earlier` was taken.
  // `earlier` must be a prefix snapshot of the same primitive's stream.
  CostSampleStats Since(const CostSampleStats& earlier) const;

  // Least-squares line fit time = launch_overhead + bytes / throughput.
  // False when under-determined (fewer than two samples, or a degenerate
  // spread of byte sizes) or when the fitted throughput is non-positive.
  bool Fit(KernelCost* out) const;

  // Aggregate bytes/second over the window (sum bytes / sum duration);
  // 0 when empty. The fallback bandwidth estimate when Fit is
  // under-determined — biased low by per-message overheads, but monotone
  // in the real link speed and always available.
  double MeanThroughput() const;
};

// Accumulates (bytes, measured duration) samples per primitive against a
// predicted KernelCost line. Tracks mean relative error incrementally and
// keeps least-squares sufficient statistics, so memory stays O(1) per
// primitive regardless of sample volume. Not thread-safe — the simulator
// is single-threaded; wrap externally if recording from worker threads.
class CostModelAuditor {
 public:
  // Installs the prediction the samples are audited against. Until set,
  // AddSample still accumulates fit statistics but relative error is 0.
  void SetPrediction(CostPrimitive primitive, KernelCost cost);
  const KernelCost& prediction(CostPrimitive primitive) const;
  bool has_prediction(CostPrimitive primitive) const;

  void AddSample(CostPrimitive primitive, uint64_t bytes, SimTime measured);

  uint64_t samples(CostPrimitive primitive) const;
  // Mean over samples of |measured - predicted| / predicted (0 when no
  // samples or no prediction installed).
  double MeanRelativeError(CostPrimitive primitive) const;
  // Mean measured duration in ns (0 when no samples).
  double MeanMeasured(CostPrimitive primitive) const;

  // Least-squares line fit time = launch_overhead + bytes / throughput
  // over the recorded samples. Returns false when under-determined (fewer
  // than two samples, or all samples at one byte size — the slope is
  // unidentifiable) or when the fitted throughput is non-positive.
  bool Fit(CostPrimitive primitive, KernelCost* out) const;

  // Snapshot of the primitive's whole-run sufficient statistics; diff two
  // snapshots with CostSampleStats::Since for a windowed fit.
  CostSampleStats Snapshot(CostPrimitive primitive) const;

  // Publishes "costmodel.samples.<p>" counters, "costmodel.err.<p>"
  // gauges, and — where a fit exists — "costmodel.fit.<p>.launch_us" /
  // "costmodel.fit.<p>.gbps" gauges into `registry`.
  void Publish(MetricsRegistry* registry) const;

 private:
  struct PrimitiveStats {
    KernelCost prediction;
    bool has_prediction = false;
    uint64_t count = 0;
    double sum_rel_err = 0.0;  // sum of |measured - predicted| / predicted
    // Least-squares sufficient statistics over (x = bytes, y = ns).
    double sum_x = 0.0;
    double sum_y = 0.0;
    double sum_xx = 0.0;
    double sum_xy = 0.0;
    uint64_t min_bytes = 0;
    uint64_t max_bytes = 0;
  };

  std::array<PrimitiveStats, kNumCostPrimitives> stats_{};
};

// ---------------------------------------------------------------------------
// Step reports
// ---------------------------------------------------------------------------

// One training iteration's wall-time attribution along the critical path.
// All durations in milliseconds; the attribution fields sum to
// iteration_ms by construction (src/casync/critical_path.h).
struct StepRecord {
  int iteration = 0;
  double iteration_ms = 0.0;
  double compute_ms = 0.0;
  double encode_ms = 0.0;
  double merge_ms = 0.0;
  double send_ms = 0.0;  // send + wire (queueing through delivery)
  double recv_ms = 0.0;
  double decode_ms = 0.0;
  double wait_ms = 0.0;  // resource queueing along the path
  int path_tasks = 0;    // chain length of the bounding task graph
  // Max-minus-median of the per-node last-sync-completion offsets (the
  // straggler skew this iteration).
  double straggler_skew_ms = 0.0;
  bool degraded = false;  // a recovery window overlapped this iteration
};

// {"iteration":0,"iteration_ms":...,...} — keys in declaration order,
// deterministic for fixed values.
std::string StepRecordToJson(const StepRecord& record);

// Writes one JSON object per line (JSONL).
Status WriteStepReport(const std::string& path,
                       const std::vector<StepRecord>& steps);

}  // namespace hipress

#endif  // HIPRESS_SRC_COMMON_PROFILER_H_
