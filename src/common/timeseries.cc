#include "src/common/timeseries.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace hipress {

WindowedSeries::WindowedSeries(std::string name, SimTime window_width,
                               size_t num_windows)
    : name_(std::move(name)), width_(window_width) {
  CHECK_GT(width_, 0);
  CHECK_GT(num_windows, 0u);
  ring_.assign(num_windows, SeriesWindow());
}

void WindowedSeries::AdvanceTo(int64_t ordinal) {
  if (first_ordinal_ < 0) {
    first_ordinal_ = ordinal;
    last_ordinal_ = ordinal - 1;  // the loop below initializes `ordinal`
  }
  // Zero-fill every skipped window so the retained history has no gaps.
  for (int64_t o = last_ordinal_ + 1; o <= ordinal; ++o) {
    SeriesWindow& window = Slot(o);
    window = SeriesWindow();
    window.start = static_cast<SimTime>(o) * width_;
  }
  last_ordinal_ = ordinal;
  const int64_t capacity = static_cast<int64_t>(ring_.size());
  first_ordinal_ = std::max(first_ordinal_, last_ordinal_ - capacity + 1);
}

void WindowedSeries::Observe(SimTime now, double value) {
  const int64_t ordinal = static_cast<int64_t>(now / width_);
  if (ordinal > last_ordinal_ || first_ordinal_ < 0) {
    AdvanceTo(ordinal);
  }
  // Late samples for already-rotated windows fold into the oldest retained
  // window rather than corrupting a newer one.
  SeriesWindow& window =
      Slot(std::clamp(ordinal, first_ordinal_, last_ordinal_));
  if (window.count == 0) {
    window.min = value;
    window.max = value;
  } else {
    window.min = std::min(window.min, value);
    window.max = std::max(window.max, value);
  }
  window.sum += value;
  window.last = value;
  ++window.count;
  ++total_samples_;
  last_value_ = value;
}

size_t WindowedSeries::size() const {
  if (first_ordinal_ < 0) {
    return 0;
  }
  return static_cast<size_t>(last_ordinal_ - first_ordinal_ + 1);
}

std::vector<SeriesWindow> WindowedSeries::Windows() const {
  std::vector<SeriesWindow> out;
  if (first_ordinal_ < 0) {
    return out;
  }
  out.reserve(size());
  for (int64_t o = first_ordinal_; o <= last_ordinal_; ++o) {
    out.push_back(Slot(o));
  }
  return out;
}

double WindowedSeries::RollingMedianBefore(size_t n) const {
  if (first_ordinal_ < 0 || last_ordinal_ == first_ordinal_ || n == 0) {
    return 0.0;
  }
  std::vector<double> means;
  means.reserve(n);
  for (int64_t o = last_ordinal_ - 1;
       o >= first_ordinal_ && means.size() < n; --o) {
    const SeriesWindow& window = Slot(o);
    if (window.count > 0) {
      means.push_back(window.mean());
    }
  }
  if (means.empty()) {
    return 0.0;
  }
  std::sort(means.begin(), means.end());
  const size_t mid = means.size() / 2;
  if (means.size() % 2 == 1) {
    return means[mid];
  }
  return 0.5 * (means[mid - 1] + means[mid]);
}

TimeSeriesHub::TimeSeriesHub(Options options) : options_(options) {
  CHECK_GT(options_.window_width, 0);
  CHECK_GT(options_.num_windows, 0u);
}

WindowedSeries& TimeSeriesHub::Series(const std::string& name) {
  for (const auto& series : series_) {
    if (series->name() == name) {
      return *series;
    }
  }
  series_.push_back(std::make_unique<WindowedSeries>(
      name, options_.window_width, options_.num_windows));
  return *series_.back();
}

const WindowedSeries* TimeSeriesHub::Find(const std::string& name) const {
  for (const auto& series : series_) {
    if (series->name() == name) {
      return series.get();
    }
  }
  return nullptr;
}

void TimeSeriesHub::AttachGauge(MetricsRegistry* registry,
                                const std::string& metric) {
  CHECK(registry != nullptr);
  Series(metric);
  attachments_.push_back(Attachment{metric, false, registry, 0});
}

void TimeSeriesHub::AttachCounter(MetricsRegistry* registry,
                                  const std::string& metric) {
  CHECK(registry != nullptr);
  Series(metric);
  attachments_.push_back(
      Attachment{metric, true, registry, registry->counter_value(metric)});
}

void TimeSeriesHub::SampleAll(SimTime now) {
  for (Attachment& attachment : attachments_) {
    if (attachment.is_counter) {
      const uint64_t value = attachment.registry->counter_value(
          attachment.metric);
      const uint64_t delta =
          value >= attachment.last_counter ? value - attachment.last_counter
                                           : 0;
      attachment.last_counter = value;
      Series(attachment.metric).Observe(now, static_cast<double>(delta));
    } else {
      Series(attachment.metric)
          .Observe(now, attachment.registry->gauge_value(attachment.metric));
    }
  }
}

std::vector<const WindowedSeries*> TimeSeriesHub::AllSeries() const {
  std::vector<const WindowedSeries*> out;
  out.reserve(series_.size());
  for (const auto& series : series_) {
    out.push_back(series.get());
  }
  return out;
}

}  // namespace hipress
