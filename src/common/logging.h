// Minimal leveled logging with compile-away debug logs and CHECK macros.
#ifndef HIPRESS_SRC_COMMON_LOGGING_H_
#define HIPRESS_SRC_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace hipress {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Global minimum level; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Hook invoked once, after a fatal message prints and before the process
// aborts. The flight recorder installs its ring dump here so a CHECK
// failure leaves a black box behind (src/common/flight_recorder.h).
// nullptr uninstalls. Re-entrant fatals skip the handler.
using FatalHandler = void (*)();
void SetFatalHandler(FatalHandler handler);

// One log statement. Streams into itself, emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is disabled.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace hipress

#define HIPRESS_LOG_ENABLED(level) \
  (::hipress::LogLevel::level >= ::hipress::GetLogLevel())

#define LOG(level)                          \
  !HIPRESS_LOG_ENABLED(k##level)            \
      ? (void)0                             \
      : ::hipress::LogMessageVoidify() &    \
            ::hipress::LogMessage(::hipress::LogLevel::k##level, __FILE__, \
                                  __LINE__)                                \
                .stream()

#define CHECK(condition)                                                  \
  (condition) ? (void)0                                                   \
              : ::hipress::LogMessageVoidify() &                          \
                    ::hipress::LogMessage(::hipress::LogLevel::kFatal,    \
                                          __FILE__, __LINE__)             \
                            .stream()                                     \
                        << "Check failed: " #condition " "

#define CHECK_EQ(a, b) CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_NE(a, b) CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LT(a, b) CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_LE(a, b) CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GT(a, b) CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_GE(a, b) CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#endif  // HIPRESS_SRC_COMMON_LOGGING_H_
