#include "src/common/thread_pool.h"

#include <algorithm>

namespace hipress {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& thread : threads_) {
    thread.join();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t total, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (total == 0) {
    return;
  }
  grain = std::max<size_t>(1, grain);
  const size_t max_shards = (total + grain - 1) / grain;
  const size_t num_shards = std::min(max_shards, num_threads());
  if (num_shards <= 1) {
    fn(0, total);
    return;
  }
  const size_t shard_size = (total + num_shards - 1) / num_shards;
  std::vector<std::future<void>> futures;
  futures.reserve(num_shards);
  for (size_t shard = 0; shard < num_shards; ++shard) {
    const size_t begin = shard * shard_size;
    const size_t end = std::min(total, begin + shard_size);
    if (begin >= end) {
      break;
    }
    futures.push_back(Submit([&fn, begin, end] { fn(begin, end); }));
  }
  for (auto& future : futures) {
    future.wait();
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) {
        return;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool =
      new ThreadPool(std::max(2u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace hipress
