#include "src/common/buffer_pool.h"

#include <new>
#include <string>

namespace hipress {

BufferPool::BufferPool(MetricsRegistry* registry, const char* metric_prefix)
    : registry_(registry),
      trace_origin_(std::chrono::steady_clock::now()) {
  if (registry_ != nullptr) {
    const std::string prefix(metric_prefix);
    hits_counter_ = &registry_->counter(prefix + ".pool_hits");
    misses_counter_ = &registry_->counter(prefix + ".pool_misses");
    in_use_gauge_ = &registry_->gauge(prefix + ".bytes_in_use");
    peak_gauge_ = &registry_->gauge(prefix + ".peak_bytes");
  }
}

BufferPool::~BufferPool() { Trim(); }

int BufferPool::BucketIndex(size_t bytes) {
  size_t capacity = kMinBucketBytes;
  int index = 0;
  while (capacity < bytes) {
    capacity <<= 1;
    ++index;
  }
  CHECK_LT(index, kNumBuckets) << "request of " << bytes
                               << " bytes exceeds the largest pool bucket";
  return index;
}

size_t BufferPool::BucketCapacity(size_t bytes) {
  return kMinBucketBytes << BucketIndex(bytes);
}

BufferPool::Block BufferPool::Acquire(size_t bytes) {
  if (bytes == 0) {
    return Block();
  }
  const int index = BucketIndex(bytes);
  const size_t capacity = kMinBucketBytes << index;
  Block block;
  block.capacity = capacity;
  bool miss = false;
  SpanCollector* spans = nullptr;
  int trace_node = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<void*>& free_list = free_lists_[index];
    if (!free_list.empty()) {
      block.data = free_list.back();
      free_list.pop_back();
      ++stats_.hits;
      stats_.free_bytes -= capacity;
      --stats_.free_blocks;
    } else {
      block.data = ::operator new(capacity);
      ++stats_.misses;
      miss = true;
    }
    stats_.bytes_in_use += capacity;
    if (stats_.bytes_in_use > stats_.peak_bytes) {
      stats_.peak_bytes = stats_.bytes_in_use;
    }
    if (registry_ != nullptr) {
      if (miss) {
        misses_counter_->Increment();
      } else {
        hits_counter_->Increment();
      }
      in_use_gauge_->Set(static_cast<double>(stats_.bytes_in_use));
      peak_gauge_->Set(static_cast<double>(stats_.peak_bytes));
    }
    spans = spans_;
    trace_node = trace_node_;
  }
  if (miss && spans != nullptr) {
    const SimTime now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - trace_origin_)
                            .count();
    spans->Add(trace_node, kTraceLaneMemAlloc,
               "alloc " + std::to_string(capacity) + "B", now, now);
  }
  return block;
}

void BufferPool::Release(Block block) {
  if (!block) {
    return;
  }
  const int index = BucketIndex(block.capacity);
  CHECK_EQ(static_cast<size_t>(kMinBucketBytes << index), block.capacity)
      << "released block capacity is not bucket-rounded";
  std::lock_guard<std::mutex> lock(mutex_);
  free_lists_[index].push_back(block.data);
  stats_.bytes_in_use -= block.capacity;
  stats_.free_bytes += block.capacity;
  ++stats_.free_blocks;
  if (registry_ != nullptr) {
    in_use_gauge_->Set(static_cast<double>(stats_.bytes_in_use));
  }
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t BufferPool::Trim(size_t keep_free_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t released = 0;
  // Largest buckets first: the peak-size blocks a shrunken batch (or
  // worker set) will never ask for again are exactly the ones worth
  // returning to the heap, while small warm buckets keep serving the
  // steady-state path miss-free.
  for (int index = kNumBuckets - 1; index >= 0; --index) {
    std::vector<void*>& free_list = free_lists_[index];
    const size_t capacity = kMinBucketBytes << index;
    while (!free_list.empty() && stats_.free_bytes > keep_free_bytes) {
      ::operator delete(free_list.back());
      free_list.pop_back();
      stats_.free_bytes -= capacity;
      --stats_.free_blocks;
      released += capacity;
    }
    if (stats_.free_bytes <= keep_free_bytes) {
      break;
    }
  }
  stats_.trims += released > 0 ? 1 : 0;
  stats_.trimmed_bytes += released;
  return released;
}

void BufferPool::set_trace(SpanCollector* spans, int node) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_ = spans;
  trace_node_ = node;
}

BufferPool& BufferPool::Global() {
  // Leaked on purpose: Tensor/ByteBuffer destructors release blocks here,
  // and statics of unknown destruction order may hold such buffers.
  static BufferPool* pool = new BufferPool(&MetricsRegistry::Default());
  return *pool;
}

}  // namespace hipress
