#include "src/common/metrics.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace hipress {
namespace {

// JSON forbids NaN/Inf literals; metrics are measurements, so non-finite
// values collapse to 0 rather than poisoning the document.
// Finite values use std::to_chars shortest form: it round-trips to the
// exact same double, so compare_bench.py exact-tolerance rules (replay
// fingerprints, gate booleans) can never flap on serialization.
std::string JsonNumber(double value) {
  if (!std::isfinite(value)) {
    return "0";
  }
  char buffer[32];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  CHECK(result.ec == std::errc());
  return std::string(buffer, result.ptr);
}

std::string JsonString(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  out += "\"";
  return out;
}

}  // namespace

// ------------------------------------------------------------------ Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lock(mutex_);
  ++counts_[bucket];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_;
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      // Bucket i holds ranks (cumulative, next]; interpolate linearly
      // within its bounds, tightened by the observed extremes (the
      // overflow bucket has no upper bound; min/max cap both ends).
      double lo = i == 0 ? min_ : bounds_[i - 1];
      double hi = i < bounds_.size() ? bounds_[i] : max_;
      lo = std::max(lo, min_);
      hi = std::min(hi, max_);
      if (hi < lo) {
        hi = lo;
      }
      const double fraction = std::clamp(
          (target - cumulative) / static_cast<double>(counts_[i]), 0.0, 1.0);
      return std::clamp(lo + (hi - lo) * fraction, min_, max_);
    }
    cumulative = next;
  }
  return max_;
}

// ----------------------------------------------------------- HistogramBuckets

std::vector<double> HistogramBuckets::Exponential(double start, double factor,
                                                  int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(std::max(count, 0)));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> HistogramBuckets::Linear(double start, double step,
                                             int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(std::max(count, 0)));
  for (int i = 0; i < count; ++i) {
    bounds.push_back(start + step * i);
  }
  return bounds;
}

std::vector<double> HistogramBuckets::DefaultTime() {
  return Exponential(1.0, 2.0, 20);  // 1us .. ~0.5s in microseconds
}

std::vector<double> HistogramBuckets::DefaultBytes() {
  return Exponential(64.0, 4.0, 22);  // 64B .. ~256GB
}

// ------------------------------------------------------------ MetricsRegistry

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    if (bounds.empty()) {
      bounds = HistogramBuckets::DefaultTime();
    }
    slot = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot;
}

uint64_t MetricsRegistry::counter_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t value = 0;
  if (name == "metrics.nonfinite_gauges") {
    value = nonfinite_gauges_.value();
  }
  const auto it = counters_.find(name);
  return value + (it == counters_.end() ? 0 : it->second->value());
}

double MetricsRegistry::gauge_value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

uint64_t MetricsRegistry::histogram_count(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? 0 : it->second->count();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Detect non-finite gauges before serializing the counters, so the
  // occurrence counter below reflects this very dump. The value still
  // collapses to 0 in the document (JSON forbids NaN/Inf literals), but
  // the loss is signalled instead of silent.
  for (const auto& [name, gauge] : gauges_) {
    if (!std::isfinite(gauge->value())) {
      nonfinite_gauges_.Increment();
      if (warned_nonfinite_.insert(name).second) {
        LOG(Warning) << "non-finite gauge '" << name
                     << "' exported as 0 (metrics.nonfinite_gauges)";
      }
    }
  }
  static constexpr char kNonfiniteName[] = "metrics.nonfinite_gauges";
  const uint64_t nonfinite = nonfinite_gauges_.value();
  bool synthetic_pending = nonfinite > 0;
  std::ostringstream out;
  out << "{\"counters\":{";
  bool first = true;
  auto emit = [&](const std::string& name, uint64_t value) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << JsonString(name) << ":" << value;
  };
  for (const auto& [name, counter] : counters_) {
    uint64_t value = counter->value();
    if (synthetic_pending && name == kNonfiniteName) {
      value += nonfinite;  // merge with a user-registered twin
      synthetic_pending = false;
    } else if (synthetic_pending && name > kNonfiniteName) {
      emit(kNonfiniteName, nonfinite);
      synthetic_pending = false;
    }
    emit(name, value);
  }
  if (synthetic_pending) {
    emit(kNonfiniteName, nonfinite);
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << JsonString(name) << ":" << JsonNumber(gauge->value());
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) {
      out << ",";
    }
    first = false;
    const std::vector<uint64_t> counts = histogram->bucket_counts();
    const std::vector<double>& bounds = histogram->bounds();
    out << JsonString(name) << ":{\"count\":" << histogram->count()
        << ",\"sum\":" << JsonNumber(histogram->sum())
        << ",\"min\":" << JsonNumber(histogram->min())
        << ",\"max\":" << JsonNumber(histogram->max())
        << ",\"p50\":" << JsonNumber(histogram->Quantile(0.5))
        << ",\"p95\":" << JsonNumber(histogram->Quantile(0.95))
        << ",\"p99\":" << JsonNumber(histogram->Quantile(0.99))
        << ",\"buckets\":[";
    for (size_t i = 0; i < bounds.size(); ++i) {
      if (i > 0) {
        out << ",";
      }
      out << "{\"le\":" << JsonNumber(bounds[i]) << ",\"count\":" << counts[i]
          << "}";
    }
    out << "],\"overflow\":" << counts.back() << "}";
  }
  out << "}}";
  return out.str();
}

Status MetricsRegistry::WriteJson(const std::string& path) const {
  std::ofstream file(path);
  if (!file.good()) {
    return InvalidArgumentError("cannot open metrics file: " + path);
  }
  file << ToJson() << "\n";
  if (!file.good()) {
    return InternalError("failed writing metrics file: " + path);
  }
  return OkStatus();
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

// -------------------------------------------------------------- SpanCollector

const char* TraceLaneName(int lane) {
  switch (lane) {
    case kTraceLaneNetUplink:
      return "net:uplink";
    case kTraceLaneNetDownlink:
      return "net:downlink";
    case kTraceLaneCoordinator:
      return "coordinator";
    case kTraceLaneRetry:
      return "net:retry";
    case kTraceLaneRecovery:
      return "recovery";
    case kTraceLaneMemAlloc:
      return "mem:alloc";
    case kTraceLaneCriticalPath:
      return "critical-path";
    case kTraceLaneAdaptive:
      return "adaptive";
    case kTraceLaneMembership:
      return "membership";
    case kTraceLaneNetFabric:
      return "net:fabric";
    case kTraceLaneLinkBusy:
      return "net:busy";
    case kTraceLaneFlight:
      return "flight";
    default:
      return "lane";
  }
}

void SpanCollector::Add(int node, int lane, std::string name, SimTime start,
                        SimTime end) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(TraceSpan{node, lane, std::move(name), start, end});
}

std::vector<TraceSpan> SpanCollector::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

size_t SpanCollector::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

}  // namespace hipress
