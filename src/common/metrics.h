// Process-wide metrics and unified tracing.
//
// MetricsRegistry is the repository's observability backbone: counters,
// gauges and fixed-bucket histograms registered by name, serializable as
// JSON (the `BENCH_<name>.json` files CI archives, and the metrics block
// attached to every TrainReport). Hot layers — the CaSync engine, the
// network, the bulk coordinator, the GPU device model and both trainers —
// record into a registry instead of ad-hoc struct members, so one dump
// carries the whole per-primitive latency breakdown the paper's Figure 11
// argues from.
//
// SpanCollector is the tracing half: components append named [start, end)
// spans on (node, lane) rows; the exporter in src/train/trace.h merges them
// with GPU kernel timelines into a single Perfetto/chrome://tracing JSON,
// one process track per node.
#ifndef HIPRESS_SRC_COMMON_METRICS_H_
#define HIPRESS_SRC_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"

namespace hipress {

// Monotonically increasing integer metric. Thread-safe.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins floating-point metric. Thread-safe.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: `bounds` are sorted inclusive upper bounds; an
// observation lands in the first bucket whose bound is >= the value, or in
// the overflow bucket. Tracks count/sum/min/max. Thread-safe.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t count() const;
  double sum() const;
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  // Quantile estimate for q in [0, 1], linearly interpolated within the
  // bucket containing the target rank (Prometheus histogram_quantile
  // semantics), clamped to the observed [min, max]. 0 when empty.
  double Quantile(double q) const;
  const std::vector<double>& bounds() const { return bounds_; }
  // One count per bound, plus the trailing overflow bucket.
  std::vector<uint64_t> bucket_counts() const;

 private:
  const std::vector<double> bounds_;
  mutable std::mutex mutex_;
  std::vector<uint64_t> counts_;  // bounds_.size() + 1 (overflow last)
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Bucket-boundary helpers for the common shapes.
struct HistogramBuckets {
  // {start, start*factor, ...}, `count` bounds.
  static std::vector<double> Exponential(double start, double factor,
                                         int count);
  // {start, start+step, ...}, `count` bounds.
  static std::vector<double> Linear(double start, double step, int count);
  // 20 power-of-two microsecond-scale bounds: 1us .. ~0.5s.
  static std::vector<double> DefaultTime();
  // 22 power-of-four byte-scale bounds: 64B .. ~256GB.
  static std::vector<double> DefaultBytes();
};

// Named metric registry. Registration returns references that stay valid
// for the registry's lifetime, so hot paths can cache them and skip the
// name lookup. All methods are thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  // The first registration of `name` fixes the bucket bounds; later calls
  // ignore `bounds`. Empty bounds select DefaultTime().
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  // Point reads; 0 when the metric does not exist.
  uint64_t counter_value(const std::string& name) const;
  double gauge_value(const std::string& name) const;
  uint64_t histogram_count(const std::string& name) const;

  // {"counters":{...},"gauges":{...},"histograms":{...}} with names in
  // sorted order; deterministic for fixed metric values. Histogram blocks
  // carry interpolated "p50"/"p95"/"p99" quantiles. Non-finite gauges are
  // exported as 0, but not silently: each occurrence bumps the synthetic
  // "metrics.nonfinite_gauges" counter (serialized alongside the real
  // counters) and the first occurrence per name logs a warning.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

  // Process-wide default instance (components not wired to an explicit
  // registry record here).
  static MetricsRegistry& Default();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  // Non-finite gauge accounting (see ToJson): occurrence counter plus the
  // names already warned about, so the log stays one line per gauge.
  mutable Counter nonfinite_gauges_;
  mutable std::set<std::string> warned_nonfinite_;
};

// ---------------------------------------------------------------------------
// Unified tracing
// ---------------------------------------------------------------------------

// Well-known trace lanes. Lanes 0..9 are reserved for GPU task kinds (the
// GpuTaskKind enum values); network and coordinator rows sit above them.
inline constexpr int kTraceLaneNetUplink = 10;
inline constexpr int kTraceLaneNetDownlink = 11;
inline constexpr int kTraceLaneCoordinator = 12;
// Reliable-transport retries/backoff waits and trainer-level recovery
// windows (fault injection, src/net/reliable_channel.h).
inline constexpr int kTraceLaneRetry = 13;
inline constexpr int kTraceLaneRecovery = 14;
// Pool-miss markers from src/common/buffer_pool.h: each fresh allocation
// the BufferPool could not serve from a free list (warm-up bursts should
// be the only activity on this row).
inline constexpr int kTraceLaneMemAlloc = 15;
// The measured iteration's critical path (src/casync/critical_path.h):
// one highlighted "cp:<category>" span per chain element on its executing
// node, plus the leading "cp:compute" gate.
inline constexpr int kTraceLaneCriticalPath = 16;
// Adaptive-controller decisions (src/casync/adaptive.h): one span per
// iteration boundary where the controller re-planned, named
// "adaptive:<codec>" (docs/ADAPTIVE.md).
inline constexpr int kTraceLaneAdaptive = 17;
// Elastic-membership transitions (src/net/membership.h): drain windows for
// planned leaves, donor re-sync transfers for joins/rejoins, and crash
// evictions, one span per epoch change (docs/FAULT_TOLERANCE.md).
inline constexpr int kTraceLaneMembership = 18;
// Fat-tree fabric hops (src/net/topology.h): ToR uplink/downlink segments
// of a cross-rack route, charged to the sending/receiving node's track
// (docs/TOPOLOGY.md).
inline constexpr int kTraceLaneNetFabric = 19;
// Per-iteration endpoint busy summaries from the trainer: one "tx busy" and
// one "rx busy" span over the measured window, so transmit- and
// receive-side serialization load chart side by side.
inline constexpr int kTraceLaneLinkBusy = 20;
// Flight-recorder events (src/common/flight_recorder.h): instant markers
// decoded from a black-box dump by tools/flight_decode.py --perfetto, one
// per ring record on the owning node's track (docs/OBSERVABILITY.md).
inline constexpr int kTraceLaneFlight = 21;

// Human-readable row name for a lane ("net:uplink", "coordinator", ...);
// lanes 0..9 are resolved by the exporter against GpuTaskKindName.
const char* TraceLaneName(int lane);

struct TraceSpan {
  int node = 0;  // track (Perfetto pid)
  int lane = 0;  // row within the track (Perfetto tid)
  std::string name;
  SimTime start = 0;
  SimTime end = 0;
};

// Append-only span log. The simulator is single-threaded, but DistTrainer
// and tests may record from worker threads, so appends are mutex-guarded.
class SpanCollector {
 public:
  void Add(int node, int lane, std::string name, SimTime start, SimTime end);

  // Snapshot of the recorded spans, in insertion order.
  std::vector<TraceSpan> spans() const;
  size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceSpan> spans_;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_COMMON_METRICS_H_
