#include "src/common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace hipress {

std::vector<std::string> Split(const std::string& text, char delimiter) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    const size_t pos = text.find(delimiter, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string Trim(const std::string& text) {
  const char* whitespace = " \t\r\n";
  const size_t begin = text.find_first_not_of(whitespace);
  if (begin == std::string::npos) {
    return "";
  }
  const size_t end = text.find_last_not_of(whitespace);
  return text.substr(begin, end - begin + 1);
}

bool StartsWith(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string result;
  if (size > 0) {
    result.resize(static_cast<size_t>(size));
    std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return result;
}

std::string Join(const std::vector<std::string>& items,
                 const std::string& separator) {
  std::string result;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) {
      result += separator;
    }
    result += items[i];
  }
  return result;
}

std::string HumanBytes(uint64_t bytes) {
  if (bytes >= 1024ull * 1024 * 1024) {
    return StrFormat("%.1fGB", static_cast<double>(bytes) / (1024.0 * 1024 * 1024));
  }
  if (bytes >= 1024ull * 1024) {
    return StrFormat("%.1fMB", static_cast<double>(bytes) / (1024.0 * 1024));
  }
  if (bytes >= 1024ull) {
    return StrFormat("%.0fKB", static_cast<double>(bytes) / 1024.0);
  }
  return StrFormat("%lluB", static_cast<unsigned long long>(bytes));
}

}  // namespace hipress
