// Rule-driven cluster health watchdog.
//
// HealthMonitor evaluates declarative rules over the TimeSeriesHub's
// windows at iteration boundaries: an iteration-progress stall (newest
// iteration time far above the rolling median), a send-bandwidth collapse
// (measured gbps far below its rolling median), a retry storm, steady-state
// buffer-pool miss growth, and scheduler queue-depth blowup. A rule trips
// after `trip_after` consecutive violating evaluations and clears after
// `clear_after` healthy ones — hysteresis so a single straggler iteration
// does not page. Trips emit flight-recorder events, bump health.* metrics,
// optionally trigger a black-box dump, and accumulate into the HealthReport
// that TrainReport/ClusterRunReport carry and `train_cluster` summarizes
// (non-zero exit with --health-exit when a rule is still tripped at the
// end). Evaluation is driven purely by sim time and the deterministic
// series, so trips replay bit-identically for a fixed seed.
#ifndef HIPRESS_SRC_COMMON_WATCHDOG_H_
#define HIPRESS_SRC_COMMON_WATCHDOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/timeseries.h"
#include "src/common/units.h"

namespace hipress {

class FlightRecorder;
class MetricsRegistry;

// Run-level observability knobs shared by SimulateTraining and
// RunClusterJobs. The black box and the watchdog are on by default —
// bench_observability gates their combined overhead at <= 3% wall — and
// off only for the recorder-off arm of that A/B.
struct ObservabilityOptions {
  bool flight_recorder = true;
  size_t flight_events_per_node = 256;
  // Dump destination for TriggerDump (fatal path, retry-budget exhaustion,
  // watchdog trips, end-of-run). train_cluster --flight-record=FILE.
  // Empty: record to the rings but never write a file.
  std::string flight_dump_path;
  bool watchdog = true;
};

enum class HealthRuleKind {
  // Newest window mean > threshold * rolling median of prior windows.
  kAboveMedianFactor,
  // Newest window mean < threshold * rolling median of prior windows.
  kBelowMedianFraction,
  // Newest window mean > threshold (absolute bound).
  kAboveValue,
};

struct HealthRule {
  std::string name;    // "stall", "bw_collapse", ...
  std::string series;  // TimeSeriesHub series the rule watches
  HealthRuleKind kind = HealthRuleKind::kAboveValue;
  double threshold = 0.0;  // factor / fraction / absolute bound
  // Median-relative rules arm only once this many prior windows carry
  // samples, so warm-up cannot trip them.
  size_t min_history = 3;
  int trip_after = 2;   // consecutive violations before tripping
  int clear_after = 2;  // consecutive healthy evaluations before clearing
};

// One trip episode: [tripped_at, cleared_at), cleared_at < 0 while open.
struct HealthTrip {
  std::string rule;
  SimTime tripped_at = 0;
  SimTime cleared_at = -1;
  double observed = 0.0;  // newest-window value at trip time
  double bound = 0.0;     // the violated bound at trip time
};

struct HealthReport {
  bool enabled = false;
  uint64_t evaluations = 0;
  std::vector<HealthTrip> trips;
  // Rules still tripped when the run ended (train_cluster --health-exit
  // turns a non-empty list into a non-zero exit).
  std::vector<std::string> tripped_at_end;

  bool healthy() const { return tripped_at_end.empty(); }
  std::string Summary() const;
};

class HealthMonitor {
 public:
  HealthMonitor(TimeSeriesHub* hub, MetricsRegistry* metrics,
                FlightRecorder* recorder);

  void AddRule(HealthRule rule);
  // The standard trainer rule set over the series the trainer feeds:
  // stall (train.iteration_ms), bw_collapse (net.send_gbps), retry_storm
  // (net.retries delta), pool_miss_growth (net.pool_misses delta past
  // warm-up), queue_blowup (sim.queue_depth).
  static std::vector<HealthRule> DefaultTrainerRules();

  // Invoked once per trip, after the recorder event and metrics; the
  // trainer hooks the flight-recorder dump here.
  void set_on_trip(std::function<void(const HealthRule&)> on_trip) {
    on_trip_ = std::move(on_trip);
  }

  // Evaluates every rule against its series' newest window.
  void Evaluate(SimTime now);

  bool any_tripped() const;
  // Closes the report (records still-tripped rules) and returns it.
  HealthReport Finalize();
  const std::vector<HealthTrip>& trips() const { return report_.trips; }
  uint64_t evaluations() const { return report_.evaluations; }

 private:
  struct RuleState {
    HealthRule rule;
    uint16_t trip_event = 0;
    uint16_t clear_event = 0;
    int violation_streak = 0;
    int healthy_streak = 0;
    bool tripped = false;
    int open_trip = -1;  // index into report_.trips while tripped
  };

  // True when the rule's bound is violated; fills *observed / *bound.
  bool Violated(const RuleState& state, double* observed, double* bound) const;

  TimeSeriesHub* hub_;
  MetricsRegistry* metrics_;
  FlightRecorder* recorder_;
  std::vector<RuleState> rules_;
  std::function<void(const HealthRule&)> on_trip_;
  HealthReport report_;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_COMMON_WATCHDOG_H_
