#include "src/common/logging.h"

#include <atomic>
#include <cstring>
#include <mutex>

namespace hipress {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;
std::atomic<FatalHandler> g_fatal_handler{nullptr};
std::atomic<bool> g_in_fatal{false};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

void SetFatalHandler(FatalHandler handler) {
  g_fatal_handler.store(handler, std::memory_order_release);
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    // Run the handler outside the log mutex (it may log), and only for the
    // first fatal: a CHECK failing inside the handler must still abort.
    if (!g_in_fatal.exchange(true, std::memory_order_acq_rel)) {
      FatalHandler handler = g_fatal_handler.load(std::memory_order_acquire);
      if (handler != nullptr) {
        handler();
      }
    }
    std::abort();
  }
}

}  // namespace hipress
