#include "src/common/rng.h"

#include <cmath>

namespace hipress {
namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

float Rng::NextFloat() {
  return static_cast<float>(NextU64() >> 40) * 0x1.0p-24f;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  while (u1 <= 0.0) {
    u1 = NextDouble();
  }
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Fork(uint64_t stream_id) const {
  Rng copy = *this;
  // Mix the stream id into a fresh seed derived from this generator's state.
  uint64_t seed = copy.NextU64() ^ (stream_id * 0x9e3779b97f4a7c15ULL + 1);
  return Rng(seed);
}

}  // namespace hipress
