// Lightweight Status / StatusOr error handling, used across all HiPress
// modules instead of exceptions. Mirrors the absl::Status surface closely
// enough that call sites read familiarly, without the dependency.
#ifndef HIPRESS_SRC_COMMON_STATUS_H_
#define HIPRESS_SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace hipress {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kCancelled,
  // A peer or transport is (possibly transiently) unreachable; the caller
  // may retry at a higher level or degrade to the surviving peers.
  kUnavailable,
};

// Human-readable name for a status code, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  // Default constructed status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Returns "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status ResourceExhaustedError(std::string message);
Status CancelledError(std::string message);
Status UnavailableError(std::string message);

// Value-or-error union. Accessing value() on a non-OK StatusOr aborts, so
// callers must check ok() (or use the RETURN_IF_ERROR / ASSIGN_OR_RETURN
// macros) first.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define HIPRESS_CONCAT_IMPL(x, y) x##y
#define HIPRESS_CONCAT(x, y) HIPRESS_CONCAT_IMPL(x, y)

#define RETURN_IF_ERROR(expr)                 \
  do {                                        \
    ::hipress::Status _status = (expr);       \
    if (!_status.ok()) {                      \
      return _status;                         \
    }                                         \
  } while (false)

#define ASSIGN_OR_RETURN(lhs, expr)                              \
  auto HIPRESS_CONCAT(_status_or_, __LINE__) = (expr);           \
  if (!HIPRESS_CONCAT(_status_or_, __LINE__).ok()) {             \
    return HIPRESS_CONCAT(_status_or_, __LINE__).status();       \
  }                                                              \
  lhs = std::move(HIPRESS_CONCAT(_status_or_, __LINE__)).value()

}  // namespace hipress

#endif  // HIPRESS_SRC_COMMON_STATUS_H_
