// FIFO-serialized simulated resource (one server, unit capacity by default).
//
// Used for anything that processes requests one at a time in simulated time:
// a network link direction, a GPU compute stream, a copy engine. Callers
// submit jobs with a service duration; the resource runs them back to back
// and invokes each completion callback at its finish time.
#ifndef HIPRESS_SRC_SIM_RESOURCE_H_
#define HIPRESS_SRC_SIM_RESOURCE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace hipress {

class SimResource {
 public:
  SimResource(Simulator* sim, std::string name)
      : sim_(sim), name_(std::move(name)) {}

  // Enqueues a job of `duration` ns; `done` fires when it completes.
  // Returns the job's scheduled start time (now, or when the backlog
  // drains), for queueing-vs-service attribution.
  SimTime Submit(SimTime duration, std::function<void()> done);

  // Total busy time accumulated so far (for utilization metrics).
  SimTime busy_time() const { return busy_time_; }
  // Time when the current backlog will drain (>= now).
  SimTime free_at() const { return free_at_; }
  bool busy() const { return outstanding_ > 0; }
  uint64_t jobs_completed() const { return jobs_completed_; }
  const std::string& name() const { return name_; }

 private:
  Simulator* sim_;
  std::string name_;
  SimTime free_at_ = 0;
  SimTime busy_time_ = 0;
  uint64_t jobs_completed_ = 0;
  uint64_t outstanding_ = 0;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_SIM_RESOURCE_H_
