// Discrete-event simulation core.
//
// The cluster substrate (network links, GPU streams, training loops) runs on
// this engine. Events at equal timestamps fire in scheduling order, which
// makes whole-cluster simulations bit-reproducible.
//
// Internally the scheduler is a two-rung ladder/calendar queue sized for
// thousand-node multi-job clusters (millions of pending events): near-future
// events hash into fine fixed-width buckets over a bounded frame and the
// active bucket is kept as a small binary heap; mid-future events hash into a
// coarse outer calendar whose buckets are subdivided into fresh frames as
// they come due; far-future events wait in an unsorted spillover that seeds
// the next outer calendar. Bucket widths adapt to event density (span- and
// count-aware), and an overcrowded bucket is split into a finer sub-frame
// instead of heapified wholesale, so per-event cost stays near O(1) at any
// queue depth. Event records live in slab arenas and recycle through a
// free list, and callables are constructed in place inside the record
// (oversized captures spill to a BufferPool), so steady-state scheduling
// performs zero heap allocations — the BufferPool discipline applied to
// the simulator itself. The `(when, seq)` FIFO tie-break of the original
// global heap is preserved exactly, so existing runs stay bit-identical.
#ifndef HIPRESS_SRC_SIM_SIMULATOR_H_
#define HIPRESS_SRC_SIM_SIMULATOR_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/buffer_pool.h"
#include "src/common/logging.h"
#include "src/common/units.h"

namespace hipress {

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  uint64_t events_processed() const { return events_processed_; }

  // Schedules `fn` to run `delay` ns from now (delay >= 0). The callable is
  // constructed in place inside a pooled event record; any callable type
  // (lambda, std::function, function pointer) works without conversion.
  template <typename Fn>
  void Schedule(SimTime delay, Fn&& fn) {
    CHECK_GE(delay, 0);
    ScheduleAt(now_ + delay, std::forward<Fn>(fn));
  }

  // Schedules `fn` at absolute time `when` (must be >= now()).
  template <typename Fn>
  void ScheduleAt(SimTime when, Fn&& fn) {
    CHECK_GE(when, now_);
    EventRecord* record = AcquireRecord();
    record->when = when;
    ConstructCallable(record, std::forward<Fn>(fn));
    Enqueue(record);
  }

  // Runs until the event queue drains. Returns the final time.
  SimTime Run();

  // Runs until the queue drains or simulated time would exceed `deadline`;
  // events after the deadline stay queued. Returns the current time.
  SimTime RunUntil(SimTime deadline);

  // Runs a single event if one is pending; returns false when idle.
  bool Step();

  bool idle() const { return queued_ == 0; }

  // --- scheduler health (docs/TOPOLOGY.md) --------------------------------
  // Pending events right now, and the high-water mark over the run.
  uint64_t queue_depth() const { return queued_; }
  uint64_t queue_peak_depth() const { return queue_peak_depth_; }
  // Event records served from the recycle list vs. fresh slab memory. After
  // warm-up, the free list must serve everything: a steady-state schedule
  // rate with zero new misses is the invariant bench_sim_scale gates.
  uint64_t sched_pool_hits() const { return sched_pool_hits_; }
  uint64_t sched_pool_misses() const { return sched_pool_misses_; }
  // Events whose captures did not fit the record's inline storage and
  // spilled to the (pooled) side allocator.
  uint64_t sched_spilled_events() const { return sched_spilled_events_; }
  // Wall-clock seconds spent inside Run()/RunUntil() event loops; with
  // events_processed() this yields events per wall second.
  double run_wall_seconds() const { return run_wall_seconds_; }
  double events_per_wall_second() const {
    return run_wall_seconds_ > 0.0
               ? static_cast<double>(events_processed_) / run_wall_seconds_
               : 0.0;
  }

 private:
  // One pending event. Records live in slab arenas and never move, so the
  // callable is constructed directly into `inline_storage` (or a pooled
  // spill block when the capture is larger) and invoked in place.
  struct EventRecord {
    static constexpr size_t kInlineBytes = 128;

    SimTime when = 0;
    uint64_t seq = 0;             // FIFO tie-break for same-time events
    EventRecord* next = nullptr;  // bucket chain / free-list link
    void (*invoke)(EventRecord*) = nullptr;   // run, then destroy callable
    void (*discard)(EventRecord*) = nullptr;  // destroy without running
    BufferPool::Block spill;                  // oversized-capture storage
    alignas(std::max_align_t) unsigned char inline_storage[kInlineBytes];

    void* callable() {
      return spill ? spill.data : static_cast<void*>(inline_storage);
    }
  };

  // Orders records later-first so std::push_heap/pop_heap keep the earliest
  // `(when, seq)` at the heap front — the exact ordering of the original
  // global priority queue.
  struct RecordLater {
    bool operator()(const EventRecord* a, const EventRecord* b) const {
      if (a->when != b->when) {
        return a->when > b->when;
      }
      return a->seq > b->seq;
    }
  };

  static constexpr int kBuckets = 2048;  // power of two; frame = B * width
  static constexpr int kBucketsShift = 11;
  static constexpr int kBitmapWords = kBuckets / 64;
  static constexpr int kMinWidthShift = 6;    // 64 ns fine buckets
  static constexpr int kMaxWidthShift = 26;   // 67 ms fine buckets
  static constexpr int kMaxOuterShift = 40;   // ~18 min outer buckets
  static constexpr int kSlabRecords = 256;
  // Ladder behavior: a bucket chain longer than this is split into a finer
  // sub-frame instead of heapified wholesale, and frame rebuilds narrow the
  // width until the expected chain stays near kTargetChain.
  static constexpr size_t kSplitThreshold = 1024;
  static constexpr uint64_t kTargetChain = 32;

  template <typename Fn>
  void ConstructCallable(EventRecord* record, Fn&& fn) {
    using F = std::decay_t<Fn>;
    static_assert(alignof(F) <= alignof(std::max_align_t),
                  "over-aligned callables are not supported");
    void* where;
    if constexpr (sizeof(F) <= EventRecord::kInlineBytes) {
      record->spill = BufferPool::Block();
      where = record->inline_storage;
    } else {
      record->spill = spill_pool_.Acquire(sizeof(F));
      where = record->spill.data;
      ++sched_spilled_events_;
    }
    ::new (where) F(std::forward<Fn>(fn));
    record->invoke = [](EventRecord* rec) {
      F* f = static_cast<F*>(rec->callable());
      (*f)();
      f->~F();
    };
    record->discard = [](EventRecord* rec) {
      static_cast<F*>(rec->callable())->~F();
    };
  }

  EventRecord* AcquireRecord();
  void ReleaseRecord(EventRecord* record);
  void Enqueue(EventRecord* record);
  void PushActive(EventRecord* record);
  EventRecord* PopActive();
  // Ensures the globally earliest pending event sits at the active heap's
  // front, advancing the frame/spillover as needed. False when empty. Does
  // not execute anything, so RunUntil can peek across frame boundaries.
  bool PrepareNext();
  static int ScanBitmap(const uint64_t* bitmap, int from);
  void PushSpill(EventRecord* record);
  void PushOuter(int bucket, EventRecord* record);
  // Seeds the outer calendar (or, for thin spillovers, a frame directly)
  // from the unsorted far-future queue.
  void RebuildFromSpill();
  // Subdivides outer bucket `bucket` into a fresh fine frame anchored at
  // its earliest event; leftovers past the frame stay in the outer bucket.
  void BuildFrameFromOuter(int bucket);
  void NarrowFrame(int bucket);
  void DrainAll();

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;

  // Calendar frame: bucket b spans
  // [frame_start_ + b << width_shift_, frame_start_ + (b + 1) << width_shift_).
  // Every queued record with when < active_end_ lives in the active heap;
  // buckets after active_bucket_ hold unsorted chains; records at or past
  // frame_end_ wait unsorted in the spillover.
  SimTime frame_start_ = 0;
  SimTime frame_end_ = 0;
  SimTime active_end_ = 0;
  int width_shift_ = 0;
  int active_bucket_ = -1;
  std::vector<EventRecord*> buckets_;
  uint64_t bucket_bitmap_[kBitmapWords] = {};
  std::vector<EventRecord*> active_;  // binary heap, earliest at front

  // Outer (coarse) calendar: mid-future records with
  // frame_end_ <= when < outer_end_ chain into outer bucket
  // (when - outer_start_) >> outer_shift_. The fine frame is always carved
  // out of outer bucket outer_cursor_; when the frame drains, the cursor
  // bucket is rescanned (frame leftovers re-chain into it) and then the
  // cursor advances. Inactive until the spillover seeds it.
  bool outer_active_ = false;
  SimTime outer_start_ = 0;
  SimTime outer_end_ = 0;
  int outer_shift_ = 0;
  int outer_cursor_ = 0;
  std::vector<EventRecord*> outer_buckets_;
  uint64_t outer_bitmap_[kBitmapWords] = {};

  // Far-future records (when >= outer_end_, or >= frame_end_ while the
  // outer calendar is inactive) wait here unsorted.
  std::vector<EventRecord*> spill_queue_;
  std::vector<EventRecord*> rebuild_scratch_;  // reused across rebuilds
  SimTime spill_min_ = 0;
  SimTime spill_max_ = 0;

  // Record arena + recycle list; spill_pool_ backs oversized captures.
  std::vector<std::unique_ptr<EventRecord[]>> slabs_;
  int slab_used_ = kSlabRecords;
  EventRecord* free_records_ = nullptr;
  BufferPool spill_pool_;

  uint64_t queued_ = 0;
  uint64_t queue_peak_depth_ = 0;
  uint64_t sched_pool_hits_ = 0;
  uint64_t sched_pool_misses_ = 0;
  uint64_t sched_spilled_events_ = 0;
  double run_wall_seconds_ = 0.0;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_SIM_SIMULATOR_H_
