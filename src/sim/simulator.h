// Discrete-event simulation core.
//
// The cluster substrate (network links, GPU streams, training loops) runs on
// this engine. Events at equal timestamps fire in scheduling order, which
// makes whole-cluster simulations bit-reproducible.
#ifndef HIPRESS_SRC_SIM_SIMULATOR_H_
#define HIPRESS_SRC_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/units.h"

namespace hipress {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }
  uint64_t events_processed() const { return events_processed_; }

  // Schedules `fn` to run `delay` ns from now (delay >= 0).
  void Schedule(SimTime delay, std::function<void()> fn);

  // Schedules `fn` at absolute time `when` (must be >= now()).
  void ScheduleAt(SimTime when, std::function<void()> fn);

  // Runs until the event queue drains. Returns the final time.
  SimTime Run();

  // Runs until the queue drains or simulated time would exceed `deadline`;
  // events after the deadline stay queued. Returns the current time.
  SimTime RunUntil(SimTime deadline);

  // Runs a single event if one is pending; returns false when idle.
  bool Step();

  bool idle() const { return queue_.empty(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;  // Tie-break so same-time events run FIFO.
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_SIM_SIMULATOR_H_
