#include "src/sim/simulator.h"

#include "src/common/logging.h"

namespace hipress {

void Simulator::Schedule(SimTime delay, std::function<void()> fn) {
  CHECK_GE(delay, 0);
  ScheduleAt(now_ + delay, std::move(fn));
}

void Simulator::ScheduleAt(SimTime when, std::function<void()> fn) {
  CHECK_GE(when, now_);
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

SimTime Simulator::Run() {
  while (Step()) {
  }
  return now_;
}

SimTime Simulator::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Step();
  }
  if (now_ < deadline && queue_.empty()) {
    now_ = deadline;
  }
  return now_;
}

bool Simulator::Step() {
  if (queue_.empty()) {
    return false;
  }
  // Move the event out before popping so the handler can schedule more.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.when;
  ++events_processed_;
  event.fn();
  return true;
}

}  // namespace hipress
