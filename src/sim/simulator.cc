#include "src/sim/simulator.h"

#include <algorithm>
#include <bit>
#include <chrono>

namespace hipress {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Simulator::Simulator() : spill_pool_(nullptr, "sim") {
  buckets_.assign(kBuckets, nullptr);
  outer_buckets_.assign(kBuckets, nullptr);
  width_shift_ = 16;  // 65.5 us buckets, ~134 ms frame before re-framing
  frame_start_ = 0;
  frame_end_ = static_cast<SimTime>(kBuckets) << width_shift_;
  active_bucket_ = 0;
  active_end_ = SimTime{1} << width_shift_;
}

Simulator::~Simulator() { DrainAll(); }

SimTime Simulator::Run() {
  const auto start = std::chrono::steady_clock::now();
  while (Step()) {
  }
  run_wall_seconds_ += SecondsSince(start);
  return now_;
}

SimTime Simulator::RunUntil(SimTime deadline) {
  const auto start = std::chrono::steady_clock::now();
  // PrepareNext surfaces the globally earliest event without running it, so
  // peeking across bucket/frame boundaries is free of side effects. Events
  // exactly at the deadline still run; `now_` only jumps to the deadline
  // when nothing at all remains queued.
  while (PrepareNext() && active_.front()->when <= deadline) {
    Step();
  }
  if (now_ < deadline && queued_ == 0) {
    now_ = deadline;
  }
  run_wall_seconds_ += SecondsSince(start);
  return now_;
}

bool Simulator::Step() {
  if (!PrepareNext()) {
    return false;
  }
  EventRecord* record = PopActive();
  --queued_;
  now_ = record->when;
  ++events_processed_;
  record->invoke(record);  // may schedule more events
  ReleaseRecord(record);
  return true;
}

void Simulator::Enqueue(EventRecord* record) {
  record->seq = next_seq_++;
  ++queued_;
  if (queued_ > queue_peak_depth_) {
    queue_peak_depth_ = queued_;
  }
  if (record->when < active_end_) {
    PushActive(record);
    return;
  }
  if (record->when < frame_end_) {
    const int b =
        static_cast<int>((record->when - frame_start_) >> width_shift_);
    record->next = buckets_[b];
    buckets_[b] = record;
    bucket_bitmap_[b >> 6] |= uint64_t{1} << (b & 63);
    return;
  }
  if (outer_active_ && record->when < outer_end_) {
    PushOuter(static_cast<int>((record->when - outer_start_) >> outer_shift_),
              record);
    return;
  }
  PushSpill(record);
}

void Simulator::PushSpill(EventRecord* record) {
  if (spill_queue_.empty()) {
    spill_min_ = record->when;
    spill_max_ = record->when;
  } else {
    spill_min_ = std::min(spill_min_, record->when);
    spill_max_ = std::max(spill_max_, record->when);
  }
  record->next = nullptr;
  spill_queue_.push_back(record);
}

void Simulator::PushOuter(int bucket, EventRecord* record) {
  record->next = outer_buckets_[bucket];
  outer_buckets_[bucket] = record;
  outer_bitmap_[bucket >> 6] |= uint64_t{1} << (bucket & 63);
}

void Simulator::PushActive(EventRecord* record) {
  active_.push_back(record);
  std::push_heap(active_.begin(), active_.end(), RecordLater{});
}

Simulator::EventRecord* Simulator::PopActive() {
  std::pop_heap(active_.begin(), active_.end(), RecordLater{});
  EventRecord* record = active_.back();
  active_.pop_back();
  return record;
}

bool Simulator::PrepareNext() {
  while (active_.empty()) {
    const int b = ScanBitmap(bucket_bitmap_, active_bucket_ + 1);
    if (b >= 0) {
      active_bucket_ = b;
      active_end_ =
          frame_start_ + (static_cast<SimTime>(b + 1) << width_shift_);
      EventRecord* chain = buckets_[b];
      buckets_[b] = nullptr;
      bucket_bitmap_[b >> 6] &= ~(uint64_t{1} << (b & 63));
      while (chain != nullptr) {
        EventRecord* next = chain->next;
        if (next != nullptr) {
          __builtin_prefetch(next);
        }
        chain->next = nullptr;
        active_.push_back(chain);
        chain = next;
      }
      if (active_.size() > kSplitThreshold && width_shift_ > kMinWidthShift) {
        // Ladder step: heapifying a chain this long costs O(n log n) with
        // scattered accesses; subdivide the bucket into a finer frame and
        // rescan instead.
        NarrowFrame(b);
        continue;
      }
      std::make_heap(active_.begin(), active_.end(), RecordLater{});
      return true;
    }
    if (outer_active_) {
      // Rescan from the cursor (inclusive): a just-drained frame re-chains
      // its leftovers into the cursor bucket, which must be carved again
      // before advancing.
      const int ob = ScanBitmap(outer_bitmap_, outer_cursor_);
      if (ob >= 0) {
        BuildFrameFromOuter(ob);
        continue;
      }
      outer_active_ = false;
    }
    if (spill_queue_.empty()) {
      return false;
    }
    RebuildFromSpill();
  }
  return true;
}

int Simulator::ScanBitmap(const uint64_t* bitmap, int from) {
  if (from >= kBuckets) {
    return -1;
  }
  int word = from >> 6;
  uint64_t bits = bitmap[word] & (~uint64_t{0} << (from & 63));
  while (true) {
    if (bits != 0) {
      return (word << 6) + std::countr_zero(bits);
    }
    if (++word >= kBitmapWords) {
      return -1;
    }
    bits = bitmap[word];
  }
}

void Simulator::RebuildFromSpill() {
  if (spill_queue_.size() <= kSplitThreshold) {
    // Thin spillover: one fine frame anchored at the earliest far-future
    // event covers it without the outer rung. Pick a bucket width that
    // spreads the span across the calendar — narrow for dense schedules,
    // wide when events stretch far apart — then narrow further until the
    // expected chain approaches kTargetChain (the far tail just stays in
    // the spillover for the next rebuild).
    frame_start_ = spill_min_;
    const SimTime span = spill_max_ - spill_min_;
    int shift = kMinWidthShift;
    while (shift < kMaxWidthShift && (span >> shift) >= kBuckets) {
      ++shift;
    }
    const uint64_t count = spill_queue_.size();
    while (shift > kMinWidthShift && span > 0 &&
           (count << shift) / static_cast<uint64_t>(span) > kTargetChain) {
      --shift;
    }
    width_shift_ = shift;
    frame_end_ = frame_start_ + (static_cast<SimTime>(kBuckets) << shift);
    active_bucket_ = -1;
    active_end_ = frame_start_;
    rebuild_scratch_.swap(spill_queue_);
    spill_queue_.clear();
    spill_min_ = 0;
    spill_max_ = 0;
    for (size_t i = 0; i < rebuild_scratch_.size(); ++i) {
      if (i + 8 < rebuild_scratch_.size()) {
        __builtin_prefetch(rebuild_scratch_[i + 8]);
      }
      EventRecord* record = rebuild_scratch_[i];
      if (record->when < frame_end_) {
        const int b =
            static_cast<int>((record->when - frame_start_) >> width_shift_);
        record->next = buckets_[b];
        buckets_[b] = record;
        bucket_bitmap_[b >> 6] |= uint64_t{1} << (b & 63);
      } else {
        PushSpill(record);
      }
    }
    rebuild_scratch_.clear();
    return;
  }
  // Deep spillover: seed the coarse outer calendar over the whole span so
  // each later rebuild touches only one outer bucket instead of rescanning
  // the entire far-future set. Oversized outer chains are fine — they get
  // carved into frames (and split further) as they come due.
  outer_start_ = spill_min_;
  const SimTime span = spill_max_ - spill_min_;
  int shift = kMinWidthShift;
  while (shift < kMaxOuterShift && (span >> shift) >= kBuckets) {
    ++shift;
  }
  outer_shift_ = shift;
  outer_end_ = outer_start_ + (static_cast<SimTime>(kBuckets) << shift);
  outer_cursor_ = 0;
  outer_active_ = true;
  // Empty frame sentinel until the first carve; the fine bitmap is clear,
  // so PrepareNext falls through to the outer scan.
  frame_start_ = outer_start_;
  frame_end_ = outer_start_;
  active_end_ = outer_start_;
  active_bucket_ = -1;
  rebuild_scratch_.swap(spill_queue_);
  spill_queue_.clear();
  spill_min_ = 0;
  spill_max_ = 0;
  for (size_t i = 0; i < rebuild_scratch_.size(); ++i) {
    if (i + 8 < rebuild_scratch_.size()) {
      __builtin_prefetch(rebuild_scratch_[i + 8]);
    }
    EventRecord* record = rebuild_scratch_[i];
    if (record->when < outer_end_) {
      PushOuter(
          static_cast<int>((record->when - outer_start_) >> outer_shift_),
          record);
    } else {
      PushSpill(record);
    }
  }
  rebuild_scratch_.clear();
}

void Simulator::BuildFrameFromOuter(int bucket) {
  outer_cursor_ = bucket;
  EventRecord* chain = outer_buckets_[bucket];
  outer_buckets_[bucket] = nullptr;
  outer_bitmap_[bucket >> 6] &= ~(uint64_t{1} << (bucket & 63));
  const SimTime bucket_end =
      outer_start_ + (static_cast<SimTime>(bucket + 1) << outer_shift_);
  // Single cold pass over the chain (records scheduled long ago are cache
  // misses; prefetch the next link while inspecting the current one),
  // collecting into scratch so the distribution pass below runs warm.
  SimTime lo = chain->when;
  rebuild_scratch_.clear();
  while (chain != nullptr) {
    EventRecord* next = chain->next;
    if (next != nullptr) {
      __builtin_prefetch(next);
    }
    chain->next = nullptr;
    lo = std::min(lo, chain->when);
    rebuild_scratch_.push_back(chain);
    chain = next;
  }
  const uint64_t count = rebuild_scratch_.size();
  // Anchor the frame at the chain minimum (so it always admits at least one
  // event) and size the width like RebuildFromSpill: span-fit over the rest
  // of this outer bucket, then density-narrowed toward kTargetChain.
  const SimTime span = bucket_end - lo;
  int shift = kMinWidthShift;
  while (shift < kMaxWidthShift && (span >> shift) >= kBuckets) {
    ++shift;
  }
  while (shift > kMinWidthShift && span > 0 &&
         (count << shift) / static_cast<uint64_t>(span) > kTargetChain) {
    --shift;
  }
  frame_start_ = lo;
  frame_end_ = std::min(
      bucket_end, frame_start_ + (static_cast<SimTime>(kBuckets) << shift));
  width_shift_ = shift;
  active_bucket_ = -1;
  active_end_ = frame_start_;
  // Distribute: in-frame records go to fine buckets; the tail re-chains
  // into this same outer bucket, which the cursor rescans after the frame
  // drains. The frame never reaches past bucket_end, so Enqueue routing
  // into later outer buckets stays consistent.
  for (EventRecord* record : rebuild_scratch_) {
    if (record->when < frame_end_) {
      const int fb =
          static_cast<int>((record->when - frame_start_) >> width_shift_);
      record->next = buckets_[fb];
      buckets_[fb] = record;
      bucket_bitmap_[fb >> 6] |= uint64_t{1} << (fb & 63);
    } else {
      PushOuter(bucket, record);
    }
  }
  rebuild_scratch_.clear();
}

void Simulator::NarrowFrame(int bucket) {
  // `active_` holds the oversized chain, not yet heapified. Later buckets
  // hold events at or past this bucket's end; they move up a rung — into
  // the cursor's outer bucket when the outer calendar is live (the frame is
  // always carved from that bucket, so its window covers them), otherwise
  // into the spillover — so the finer frame can take over just this
  // bucket's window. The new frame_end_ is exactly the old bucket end,
  // which keeps every displaced record at or past frame_end_ — the
  // invariant Enqueue routing and in-order draining rely on.
  const SimTime bucket_start =
      frame_start_ + (static_cast<SimTime>(bucket) << width_shift_);
  const SimTime bucket_end = bucket_start + (SimTime{1} << width_shift_);
  for (int b = ScanBitmap(bucket_bitmap_, bucket + 1); b >= 0;
       b = ScanBitmap(bucket_bitmap_, b + 1)) {
    EventRecord* chain = buckets_[b];
    buckets_[b] = nullptr;
    bucket_bitmap_[b >> 6] &= ~(uint64_t{1} << (b & 63));
    while (chain != nullptr) {
      EventRecord* next = chain->next;
      chain->next = nullptr;
      if (outer_active_) {
        PushOuter(outer_cursor_, chain);
      } else {
        PushSpill(chain);
      }
      chain = next;
    }
  }
  // Subdivide the window; with 2048 buckets one ladder step covers the old
  // bucket exactly, and the density correction can go finer still.
  int shift = std::max(kMinWidthShift, width_shift_ - kBucketsShift);
  const uint64_t count = active_.size();
  const uint64_t window = uint64_t{1} << width_shift_;
  while (shift > kMinWidthShift &&
         (count << shift) / window > kTargetChain) {
    --shift;
  }
  frame_start_ = bucket_start;
  frame_end_ = bucket_end;
  width_shift_ = shift;
  active_bucket_ = -1;
  active_end_ = frame_start_;
  rebuild_scratch_.swap(active_);
  active_.clear();
  for (EventRecord* record : rebuild_scratch_) {
    const int b =
        static_cast<int>((record->when - frame_start_) >> width_shift_);
    record->next = buckets_[b];
    buckets_[b] = record;
    bucket_bitmap_[b >> 6] |= uint64_t{1} << (b & 63);
  }
  rebuild_scratch_.clear();
}

Simulator::EventRecord* Simulator::AcquireRecord() {
  if (free_records_ != nullptr) {
    EventRecord* record = free_records_;
    free_records_ = record->next;
    record->next = nullptr;
    ++sched_pool_hits_;
    return record;
  }
  if (slab_used_ == kSlabRecords) {
    slabs_.push_back(std::make_unique<EventRecord[]>(kSlabRecords));
    slab_used_ = 0;
  }
  ++sched_pool_misses_;
  return &slabs_.back()[slab_used_++];
}

void Simulator::ReleaseRecord(EventRecord* record) {
  if (record->spill) {
    spill_pool_.Release(record->spill);
    record->spill = BufferPool::Block();
  }
  record->invoke = nullptr;
  record->discard = nullptr;
  record->next = free_records_;
  free_records_ = record;
}

void Simulator::DrainAll() {
  auto drop = [this](EventRecord* record) {
    if (record->discard != nullptr) {
      record->discard(record);
    }
    if (record->spill) {
      spill_pool_.Release(record->spill);
      record->spill = BufferPool::Block();
    }
  };
  for (EventRecord* record : active_) {
    drop(record);
  }
  active_.clear();
  for (int b = 0; b < kBuckets; ++b) {
    for (EventRecord* record = buckets_[b]; record != nullptr;
         record = record->next) {
      drop(record);
    }
    buckets_[b] = nullptr;
    for (EventRecord* record = outer_buckets_[b]; record != nullptr;
         record = record->next) {
      drop(record);
    }
    outer_buckets_[b] = nullptr;
  }
  for (EventRecord* record : spill_queue_) {
    drop(record);
  }
  spill_queue_.clear();
  queued_ = 0;
}

}  // namespace hipress
