#include "src/sim/resource.h"

#include <algorithm>

#include "src/common/logging.h"

namespace hipress {

SimTime SimResource::Submit(SimTime duration, std::function<void()> done) {
  CHECK_GE(duration, 0);
  const SimTime start = std::max(sim_->now(), free_at_);
  free_at_ = start + duration;
  busy_time_ += duration;
  ++outstanding_;
  sim_->ScheduleAt(free_at_, [this, done = std::move(done)] {
    ++jobs_completed_;
    --outstanding_;
    done();
  });
  return start;
}

}  // namespace hipress
