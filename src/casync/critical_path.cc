#include "src/casync/critical_path.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace hipress {

const char* CpCategoryName(CpCategory category) {
  switch (category) {
    case CpCategory::kCompute:
      return "compute";
    case CpCategory::kEncode:
      return "encode";
    case CpCategory::kMerge:
      return "merge";
    case CpCategory::kSend:
      return "send";
    case CpCategory::kRecv:
      return "recv";
    case CpCategory::kDecode:
      return "decode";
    case CpCategory::kWait:
      return "wait";
  }
  return "unknown";
}

SimTime CpAttribution::total() const {
  SimTime sum = 0;
  for (const SimTime t : time) {
    sum += t;
  }
  return sum;
}

void CpAttribution::Add(const CpAttribution& other) {
  for (size_t i = 0; i < time.size(); ++i) {
    time[i] += other.time[i];
  }
}

double CpAttribution::Share(CpCategory category) const {
  const SimTime sum = total();
  if (sum <= 0) {
    return 0.0;
  }
  return static_cast<double>((*this)[category]) / static_cast<double>(sum);
}

namespace {

CpCategory CategoryOf(PrimitiveType type) {
  switch (type) {
    case PrimitiveType::kEncode:
      return CpCategory::kEncode;
    case PrimitiveType::kMerge:
      return CpCategory::kMerge;
    case PrimitiveType::kSend:
      return CpCategory::kSend;
    case PrimitiveType::kRecv:
      return CpCategory::kRecv;
    case PrimitiveType::kDecode:
      return CpCategory::kDecode;
    case PrimitiveType::kBarrier:
      // Barriers are zero-cost joins; any recorded width is queueing.
      return CpCategory::kWait;
  }
  return CpCategory::kWait;
}

bool Completed(const SyncTask& task) {
  return task.end_time != kTaskNeverRan;
}

}  // namespace

CriticalPath AnalyzeCriticalPath(const TaskGraph& graph) {
  CriticalPath path;
  if (graph.empty()) {
    return path;
  }
  // Reverse adjacency: predecessors of every task.
  std::vector<std::vector<TaskId>> preds(graph.size());
  for (TaskId id = 0; id < graph.size(); ++id) {
    for (const TaskId dependent : graph.task(id).dependents) {
      preds[dependent].push_back(id);
    }
  }
  // Terminal: the completed task finishing last (first one on ties, so the
  // extracted chain is deterministic).
  TaskId terminal = kInvalidTask;
  for (TaskId id = 0; id < graph.size(); ++id) {
    const SyncTask& task = graph.task(id);
    if (!Completed(task)) {
      continue;
    }
    if (terminal == kInvalidTask ||
        task.end_time > graph.task(terminal).end_time) {
      terminal = id;
    }
  }
  if (terminal == kInvalidTask) {
    return path;  // nothing executed (e.g. cancelled before any dispatch)
  }
  // Walk back through the predecessor whose completion gated each task's
  // readiness (the max-end predecessor: pending_deps hits zero exactly
  // when it completes).
  std::vector<TaskId> chain;
  TaskId cursor = terminal;
  for (;;) {
    chain.push_back(cursor);
    TaskId gate = kInvalidTask;
    for (const TaskId pred : preds[cursor]) {
      const SyncTask& task = graph.task(pred);
      if (!Completed(task)) {
        continue;
      }
      if (gate == kInvalidTask ||
          task.end_time > graph.task(gate).end_time) {
        gate = pred;
      }
    }
    if (gate == kInvalidTask) {
      break;
    }
    cursor = gate;
  }
  std::reverse(chain.begin(), chain.end());

  path.steps.reserve(chain.size());
  SimTime prev_end = kTaskNeverRan;
  for (const TaskId id : chain) {
    const SyncTask& task = graph.task(id);
    CpStep step;
    step.task = id;
    step.type = task.type;
    step.node = task.node;
    step.ready = task.ready_time != kTaskNeverRan ? task.ready_time
                                                  : task.end_time;
    step.start = task.start_time != kTaskNeverRan ? task.start_time
                                                  : step.ready;
    step.start = std::max(step.start, step.ready);
    step.end = std::max(task.end_time, step.start);
    // Queueing between readiness and resource start.
    path.attribution[CpCategory::kWait] += step.start - step.ready;
    // Service time to the primitive's category.
    path.attribution[CategoryOf(task.type)] += step.end - step.start;
    // Defensive: any gap between the gating predecessor's end and this
    // task's recorded readiness is queueing too, so the attribution keeps
    // summing to the chain's extent even on imperfect timings.
    if (prev_end != kTaskNeverRan && step.ready > prev_end) {
      path.attribution[CpCategory::kWait] += step.ready - prev_end;
    }
    prev_end = step.end;
    path.steps.push_back(step);
  }
  path.path_start = path.steps.front().ready;
  path.path_end = path.steps.back().end;
  return path;
}

IterationAttribution AttributeIteration(
    const std::vector<const TaskGraph*>& graphs, SimTime window_start,
    SimTime window_end) {
  IterationAttribution result;
  for (size_t i = 0; i < graphs.size(); ++i) {
    if (graphs[i] == nullptr) {
      continue;
    }
    CriticalPath path = AnalyzeCriticalPath(*graphs[i]);
    if (path.empty()) {
      continue;
    }
    if (result.bounding_graph < 0 || path.path_end > result.path.path_end) {
      result.path = std::move(path);
      result.bounding_graph = static_cast<int>(i);
    }
  }
  if (result.bounding_graph < 0) {
    // No synchronization ran; the whole window is compute.
    result.attribution[CpCategory::kCompute] =
        std::max<SimTime>(0, window_end - window_start);
    return result;
  }
  result.attribution = result.path.attribution;
  // Backward compute (plus launch bookkeeping) gates the chain's first
  // task; the BSP barrier tail past the chain waits on the slowest node's
  // compute. Both are compute from the iteration's point of view.
  result.attribution[CpCategory::kCompute] +=
      std::max<SimTime>(0, result.path.path_start - window_start);
  result.attribution[CpCategory::kCompute] +=
      std::max<SimTime>(0, window_end - result.path.path_end);
  return result;
}

void AddCriticalPathSpans(const CriticalPath& path, SimTime window_start,
                          int compute_node, SpanCollector* spans) {
  if (spans == nullptr || path.empty()) {
    return;
  }
  if (path.path_start > window_start) {
    spans->Add(compute_node, kTraceLaneCriticalPath, "cp:compute",
               window_start, path.path_start);
  }
  for (const CpStep& step : path.steps) {
    const int node = step.node >= 0 ? step.node : compute_node;
    if (step.start > step.ready) {
      spans->Add(node, kTraceLaneCriticalPath, "cp:wait", step.ready,
                 step.start);
    }
    if (step.end > step.start) {
      spans->Add(node, kTraceLaneCriticalPath,
                 StrFormat("cp:%s", CpCategoryName(CategoryOf(step.type))),
                 step.start, step.end);
    }
  }
}

}  // namespace hipress
