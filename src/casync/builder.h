// Task-graph builders for the CaSync synchronization strategies.
//
// Given a gradient and its <compress?, K> plan, these construct the
// dependency graph of encode/decode/merge/send/recv primitives for either
// topology (Section 3.1):
//
//  * PS (bipartite, aggregators co-located with workers): each partition is
//    owned by one aggregator; workers encode and push their shard, the
//    aggregator decodes+merges arrivals as they land (pipelining), encodes
//    the aggregate once, and pushes it back; workers decode.
//  * Ring: each partition travels the ring; every aggregation hop is
//    decode+merge+encode (data dependency, Section 3.3's beta/gamma
//    analysis), dissemination forwards the final encoded buffer with decodes
//    overlapping the forwarding sends.
//
// Decode-into-aggregate is modelled fused (Section 5's decode/merge fusion):
// compressed arrivals emit a single decode-cost task; explicit merge tasks
// appear only on the raw path.
#ifndef HIPRESS_SRC_CASYNC_BUILDER_H_
#define HIPRESS_SRC_CASYNC_BUILDER_H_

#include <cstdint>
#include <vector>

#include "src/casync/config.h"
#include "src/casync/task.h"

namespace hipress {

struct GradientSync {
  uint32_t id = 0;
  uint64_t bytes = 0;
  bool compress = false;
  int partitions = 1;
  // Compression rate r for wire sizing (ignored when !compress).
  double rate = 1.0;
};

// Minimum bytes on the wire for a compressed partition (codec headers).
inline constexpr uint64_t kMinWireBytes = 16;

// Appends the synchronization task DAG for `gradient` to `graph`,
// dispatching on config.strategy. Tasks become runnable when the engine
// executes the graph, so callers launch the graph at the moment the
// gradient is ready.
void AppendSyncTasks(const SyncConfig& config, const GradientSync& gradient,
                     TaskGraph* graph);

// Degraded-mode variant: builds the same strategy topology over only the
// physical nodes listed in `nodes` (the survivors after a node failure),
// in order. The builder runs with num_nodes = nodes.size() and the logical
// node/peer ids are then remapped through `nodes`, so any strategy composes
// with any survivor set. Partition counts are clamped to the survivor count.
void AppendSyncTasksOver(const SyncConfig& config, const GradientSync& gradient,
                         const std::vector<int>& nodes, TaskGraph* graph);

void AppendPsSyncTasks(const SyncConfig& config, const GradientSync& gradient,
                       TaskGraph* graph);
void AppendRingSyncTasks(const SyncConfig& config,
                         const GradientSync& gradient, TaskGraph* graph);
// Binomial-tree reduce + broadcast: ceil(log2 N) rounds each way, root
// rotated per partition. Demonstrates that CaSync's primitives compose
// into topologies beyond the paper's two (Section 3.1's generality claim).
void AppendTreeSyncTasks(const SyncConfig& config,
                         const GradientSync& gradient, TaskGraph* graph);

}  // namespace hipress

#endif  // HIPRESS_SRC_CASYNC_BUILDER_H_
