#include "src/casync/secopa.h"

#include <algorithm>
#include <cmath>

namespace hipress {

SeCoPaPlanner::SeCoPaPlanner(const SyncConfig& config, double rate)
    : config_(config), rate_(rate) {
  codec_ =
      GetCodecSpeed(config.algorithm, config.codec_impl, config.platform);
}

SeCoPaPlanner::SeCoPaPlanner(const SyncConfig& config, double rate,
                             const CodecSpeed& codec)
    : config_(config), rate_(rate), codec_(codec) {}

SeCoPaPlanner SeCoPaPlanner::WithBandwidth(Bandwidth bandwidth) const {
  SyncConfig config = config_;
  // `bandwidth` is a measured end-to-end rate, so it already folds in any
  // fabric oversubscription; neutralize the topology discount to avoid
  // double-counting it.
  config.net.link_bandwidth = bandwidth;
  config.net.topology.oversubscription = 1.0;
  return SeCoPaPlanner(config, rate_, codec_);
}

SeCoPaPlanner SeCoPaPlanner::WithCodec(double rate,
                                       const CodecSpeed& codec) const {
  return SeCoPaPlanner(config_, rate, codec);
}

namespace {

int CeilLog2(int n) {
  int rounds = 0;
  while ((1 << rounds) < n) {
    ++rounds;
  }
  return rounds;
}

}  // namespace

double SeCoPaPlanner::Alpha() const {
  if (config_.strategy == StrategyKind::kTree) {
    // Binomial tree: log N serial rounds to reduce, log N to broadcast.
    return 2.0 * CeilLog2(config_.num_nodes);
  }
  // Co-located deployment (Section 6.1): both strategies take 2(N-1)
  // serial communication steps — local shards never cross the network.
  return 2.0 * (config_.num_nodes - 1);
}

double SeCoPaPlanner::Beta(int partitions) const {
  switch (config_.strategy) {
    case StrategyKind::kPs:
      return static_cast<double>(partitions);
    case StrategyKind::kRing:
      return static_cast<double>(config_.num_nodes);
    case StrategyKind::kTree:
      // One encode per reduce round along the root path, plus the
      // broadcast encode.
      return static_cast<double>(CeilLog2(config_.num_nodes) + 1);
  }
  return 1.0;
}

double SeCoPaPlanner::Gamma() const {
  if (config_.strategy == StrategyKind::kTree) {
    return static_cast<double>(CeilLog2(config_.num_nodes) + 1);
  }
  return static_cast<double>(config_.num_nodes);
}

SimTime SeCoPaPlanner::SendTime(double bytes) const {
  return static_cast<SimTime>(
             bytes / config_.net.effective_bandwidth().bytes_per_second() *
             static_cast<double>(kSecond)) +
         config_.net.path_latency() + config_.net.per_message_overhead;
}

SimTime SeCoPaPlanner::SyncCostPlain(uint64_t bytes, int partitions) const {
  const double partition_bytes =
      static_cast<double>(bytes) / std::max(1, partitions);
  // At most N partitions transfer in parallel; beyond that the batches of
  // Section 3.3's relaxation pipeline, scaling the wire term by K/N.
  const double batches = std::max(
      1.0, static_cast<double>(partitions) / config_.num_nodes);
  return static_cast<SimTime>(Alpha() * static_cast<double>(SendTime(partition_bytes)) *
                              batches);
}

SimTime SeCoPaPlanner::SyncCostCompressed(uint64_t bytes,
                                          int partitions) const {
  const double partition_bytes =
      static_cast<double>(bytes) / std::max(1, partitions);
  const double batches = std::max(
      1.0, static_cast<double>(partitions) / config_.num_nodes);
  const auto partition_u64 = static_cast<uint64_t>(partition_bytes);
  // Wire term batches; the codec terms already scale with K through the
  // Table 3 beta/gamma coefficients (their kernels pipeline with the
  // batched transfers).
  const double send =
      Alpha() * static_cast<double>(SendTime(rate_ * partition_bytes)) *
      batches;
  const double enc = Beta(partitions) *
                     static_cast<double>(codec_.encode.Time(partition_u64));
  const double dec = Gamma() *
                     static_cast<double>(codec_.decode.Time(partition_u64));
  return static_cast<SimTime>(send + enc + dec);
}

SyncPlan SeCoPaPlanner::Plan(uint64_t bytes) const {
  // Ring chunks cannot exceed the ring length; PS partitions may go beyond
  // N to deepen the compression/communication pipeline.
  const int max_partitions = config_.strategy == StrategyKind::kRing
                                 ? config_.num_nodes
                                 : 2 * config_.num_nodes;
  return Plan(bytes, max_partitions);
}

SyncPlan SeCoPaPlanner::Plan(uint64_t bytes, int max_partitions) const {
  SyncPlan plan;
  plan.t_plain = SyncCostPlain(bytes, 1);
  plan.plain_partitions = 1;
  plan.t_compressed = SyncCostCompressed(bytes, 1);
  plan.partitions = 1;
  // Uncompressed partitions below ~256 KB only multiply message counts
  // without shrinking the serialization term meaningfully; cap the plain
  // scan so tiny gradients stay whole (matching the raw chunking rule).
  const int max_plain = std::min<int>(
      max_partitions,
      std::max<int>(1, static_cast<int>(bytes / (256 * 1024))));
  // Both expressions are convex in K; a linear scan over the small K range
  // is cheap and avoids edge cases at the K = N boundary.
  for (int k = 2; k <= max_partitions; ++k) {
    if (k <= max_plain) {
      const SimTime plain = SyncCostPlain(bytes, k);
      if (plain < plan.t_plain) {
        plan.t_plain = plain;
        plan.plain_partitions = k;
      }
    }
    const SimTime compressed = SyncCostCompressed(bytes, k);
    if (compressed < plan.t_compressed) {
      plan.t_compressed = compressed;
      plan.partitions = k;
    }
  }
  plan.compress = plan.t_compressed < plan.t_plain;
  if (!plan.compress) {
    plan.partitions = plan.plain_partitions;
  }
  return plan;
}

}  // namespace hipress
