#include "src/casync/coordinator.h"

#include "src/common/string_util.h"

namespace hipress {

void BulkCoordinator::Enqueue(int src, int dst, uint64_t bytes,
                              std::function<void()> on_delivered) {
  EnqueueWithStatus(src, dst, bytes,
                    [on_delivered = std::move(on_delivered)](const Status&) {
                      if (on_delivered) {
                        on_delivered();
                      }
                    });
}

void BulkCoordinator::EnqueueWithStatus(
    int src, int dst, uint64_t bytes,
    std::function<void(const Status&)> on_complete) {
  LinkQueue& queue = links_[{src, dst}];
  if (queue.pending.empty()) {
    queue.first_enqueued_at = sim_->now();
  }
  queue.pending.push_back(Pending{bytes, std::move(on_complete), sim_->now()});
  queue.queued_bytes += bytes;

  if (queue.queued_bytes >= size_threshold_) {
    Flush(src, dst);
    return;
  }
  // Work-conserving: when the link is idle there is nothing to batch
  // against — send immediately. Batching only pays under backpressure.
  if (net_->EarliestStart(src, dst) <= sim_->now()) {
    Flush(src, dst);
    return;
  }
  if (queue.pending.size() == 1) {
    // First entry in an empty queue arms the batch timeout.
    const uint64_t epoch = queue.flush_epoch;
    sim_->Schedule(timeout_, [this, src, dst, epoch] {
      auto it = links_.find({src, dst});
      if (it != links_.end() && it->second.flush_epoch == epoch &&
          !it->second.pending.empty()) {
        Flush(src, dst);
      }
    });
  }
}

void BulkCoordinator::Flush(int src, int dst) {
  LinkQueue& queue = links_[{src, dst}];
  std::vector<Pending> batch = std::move(queue.pending);
  const uint64_t batch_bytes = queue.queued_bytes;
  queue.pending.clear();
  queue.queued_bytes = 0;
  ++queue.flush_epoch;
  ++batches_sent_;
  transfers_batched_ += batch.size();

  if (batches_metric_ != nullptr) {
    batches_metric_->Increment();
    transfers_metric_->Increment(batch.size());
    batch_bytes_->Observe(static_cast<double>(batch_bytes));
    for (const Pending& pending : batch) {
      queue_delay_us_->Observe(
          static_cast<double>(sim_->now() - pending.enqueued_at) /
          kMicrosecond);
    }
  }
  if (spans_ != nullptr) {
    // A coordinator round: from the first transfer queued on this link to
    // the flush decision. The batched wire transfer itself shows up on the
    // network lanes.
    spans_->Add(src, kTraceLaneCoordinator,
                StrFormat("round %d->%d (%zu, %s)", src, dst, batch.size(),
                          HumanBytes(batch_bytes).c_str()),
                queue.first_enqueued_at, sim_->now());
  }

  NetMessage message;
  message.src = src;
  message.dst = dst;
  message.bytes = batch_bytes;
  if (channel_ != nullptr) {
    // Reliable path: the whole batch shares one transfer's fate — delivered
    // (possibly after retries) or failed with the channel's peer status.
    channel_->Send(std::move(message),
                   [batch = std::move(batch)](const Status& status) mutable {
                     for (Pending& pending : batch) {
                       pending.on_complete(status);
                     }
                   });
    return;
  }
  net_->Send(std::move(message),
             [batch = std::move(batch)](const NetMessage&) mutable {
               for (Pending& pending : batch) {
                 pending.on_complete(OkStatus());
               }
             });
}

}  // namespace hipress
