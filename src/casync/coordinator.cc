#include "src/casync/coordinator.h"

#include "src/common/string_util.h"

namespace hipress {

namespace {

// Per-entry frame overhead: u64 tag + u32 payload length.
constexpr size_t kEntryHeaderBytes = sizeof(uint64_t) + sizeof(uint32_t);

template <typename T>
void AppendScalar(PooledBytes& frame, T value) {
  const size_t offset = frame.size();
  frame.resize(offset + sizeof(T));
  std::memcpy(frame.data() + offset, &value, sizeof(T));
}

}  // namespace

void BulkCoordinator::Enqueue(int src, int dst, uint64_t bytes,
                              std::function<void()> on_delivered) {
  EnqueueWithStatus(src, dst, bytes,
                    [on_delivered = std::move(on_delivered)](const Status&) {
                      if (on_delivered) {
                        on_delivered();
                      }
                    });
}

void BulkCoordinator::EnqueueWithStatus(
    int src, int dst, uint64_t bytes,
    std::function<void(const Status&)> on_complete) {
  Pending pending;
  pending.bytes = bytes;
  pending.on_complete = std::move(on_complete);
  EnqueuePending(src, dst, std::move(pending));
}

void BulkCoordinator::EnqueueTransfer(
    int src, int dst, uint64_t tag, std::shared_ptr<PooledBytes> payload,
    std::function<void(std::span<const uint8_t>)> on_deliver,
    std::function<void(const Status&)> on_complete) {
  CHECK(payload != nullptr) << "EnqueueTransfer requires a payload; use "
                               "EnqueueWithStatus for metadata-only sends";
  Pending pending;
  pending.bytes = payload->size();
  pending.tag = tag;
  pending.payload = std::move(payload);
  pending.on_deliver = std::move(on_deliver);
  pending.on_complete = std::move(on_complete);
  EnqueuePending(src, dst, std::move(pending));
}

void BulkCoordinator::EnqueuePending(int src, int dst, Pending pending) {
  LinkQueue& queue = links_[{src, dst}];
  if (queue.pending.empty()) {
    queue.first_enqueued_at = sim_->now();
  }
  pending.enqueued_at = sim_->now();
  queue.queued_bytes += pending.bytes;
  queue.pending.push_back(std::move(pending));

  if (queue.queued_bytes >= size_threshold_) {
    Flush(src, dst);
    return;
  }
  // Work-conserving: when the link is idle there is nothing to batch
  // against — send immediately. Batching only pays under backpressure.
  if (net_->EarliestStart(src, dst) <= sim_->now()) {
    Flush(src, dst);
    return;
  }
  if (queue.pending.size() == 1) {
    // First entry in an empty queue arms the batch timeout.
    const uint64_t epoch = queue.flush_epoch;
    sim_->Schedule(timeout_, [this, src, dst, epoch] {
      auto it = links_.find({src, dst});
      if (it != links_.end() && it->second.flush_epoch == epoch &&
          !it->second.pending.empty()) {
        Flush(src, dst);
      }
    });
  }
}

std::shared_ptr<PooledBytes> BulkCoordinator::BuildFrame(
    const std::vector<Pending>& batch) {
  // One pass to size the frame exactly, so the single resize below acquires
  // the right bucket up front instead of growing through smaller ones.
  size_t frame_bytes = sizeof(uint32_t);
  for (const Pending& pending : batch) {
    frame_bytes += kEntryHeaderBytes;
    if (pending.payload != nullptr) {
      frame_bytes += pending.payload->size();
    }
  }
  auto frame = std::make_shared<PooledBytes>(net_->wire_pool());
  frame->reserve(frame_bytes);
  AppendScalar(*frame, static_cast<uint32_t>(batch.size()));
  for (const Pending& pending : batch) {
    AppendScalar(*frame, pending.tag);
    const uint32_t len =
        pending.payload != nullptr
            ? static_cast<uint32_t>(pending.payload->size())
            : 0;
    AppendScalar(*frame, len);
    if (len > 0) {
      const size_t offset = frame->size();
      frame->resize(offset + len);
      std::memcpy(frame->data() + offset, pending.payload->data(), len);
    }
  }
  CHECK_EQ(frame->size(), frame_bytes);
  return frame;
}

void BulkCoordinator::DispatchFrame(const NetMessage& message,
                                    std::vector<Pending>& batch) {
  auto frame = std::static_pointer_cast<PooledBytes>(message.payload);
  BatchFrameReader reader(frame->span());
  CHECK_EQ(reader.entry_count(), batch.size())
      << "delivered batch frame does not match the flushed transfer count";
  for (Pending& pending : batch) {
    const BatchFrameReader::Entry entry = reader.Next();
    if (pending.on_deliver) {
      pending.on_deliver(entry.payload);
    }
  }
}

void BulkCoordinator::Flush(int src, int dst) {
  LinkQueue& queue = links_[{src, dst}];
  std::vector<Pending> batch = std::move(queue.pending);
  const uint64_t batch_bytes = queue.queued_bytes;
  queue.pending.clear();
  queue.queued_bytes = 0;
  ++queue.flush_epoch;
  ++batches_sent_;
  transfers_batched_ += batch.size();

  bool has_payload = false;
  for (const Pending& pending : batch) {
    if (pending.payload != nullptr) {
      has_payload = true;
      break;
    }
  }

  NetMessage message;
  message.src = src;
  message.dst = dst;
  message.bytes = batch_bytes;
  if (has_payload) {
    // Real-data batch: serialize into one pooled frame. The wire size is
    // the frame size (payloads plus framing headers), and the payload
    // shared_ptr keeps exactly this block alive across retransmits. The
    // enqueued payloads themselves drop here — frame assembly is the last
    // copy on the send path.
    std::shared_ptr<PooledBytes> frame = BuildFrame(batch);
    message.bytes = frame->size();
    message.payload = std::move(frame);
    for (Pending& pending : batch) {
      pending.payload.reset();
    }
  }
  // Padding between what this batch used and the pool bucket it occupies
  // (projected from batch_bytes for metadata-only batches): the price of
  // bucket-aligned sizing, bounded by the threshold's bucket rounding.
  const uint64_t waste =
      message.bytes > 0
          ? BufferPool::BucketCapacity(message.bytes) - message.bytes
          : 0;
  bucket_waste_bytes_ += waste;

  if (batches_metric_ != nullptr) {
    batches_metric_->Increment();
    transfers_metric_->Increment(batch.size());
    waste_metric_->Increment(waste);
    batch_bytes_->Observe(static_cast<double>(batch_bytes));
    for (const Pending& pending : batch) {
      queue_delay_us_->Observe(
          static_cast<double>(sim_->now() - pending.enqueued_at) /
          kMicrosecond);
    }
  }
  if (spans_ != nullptr) {
    // A coordinator round: from the first transfer queued on this link to
    // the flush decision. The batched wire transfer itself shows up on the
    // network lanes.
    spans_->Add(src, kTraceLaneCoordinator,
                StrFormat("round %d->%d (%zu, %s)", src, dst, batch.size(),
                          HumanBytes(batch_bytes).c_str()),
                queue.first_enqueued_at, sim_->now());
  }

  if (channel_ != nullptr) {
    // Reliable path: the whole batch shares one transfer's fate — delivered
    // (possibly after retries) or failed with the channel's peer status.
    // The batch is shared between the deliver and completion callbacks;
    // exactly one delivery dispatch fires (the channel latches duplicates).
    auto shared_batch = std::make_shared<std::vector<Pending>>(std::move(batch));
    channel_->Send(
        std::move(message),
        has_payload ? std::function<void(const NetMessage&)>(
                          [shared_batch](const NetMessage& delivered) {
                            DispatchFrame(delivered, *shared_batch);
                          })
                    : nullptr,
        [shared_batch](const Status& status) {
          for (Pending& pending : *shared_batch) {
            pending.on_complete(status);
          }
        });
    return;
  }
  net_->Send(std::move(message),
             [batch = std::move(batch),
              has_payload](const NetMessage& delivered) mutable {
               if (has_payload) {
                 DispatchFrame(delivered, batch);
               }
               for (Pending& pending : batch) {
                 pending.on_complete(OkStatus());
               }
             });
}

}  // namespace hipress
