#include "src/casync/engine.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace hipress {

const char* StrategyKindName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kPs:
      return "ps";
    case StrategyKind::kRing:
      return "ring";
    case StrategyKind::kTree:
      return "tree";
  }
  return "unknown";
}

CaSyncEngine::CaSyncEngine(Simulator* sim, Network* net,
                           std::vector<GpuDevice*> gpus,
                           const SyncConfig& config, MetricsRegistry* metrics,
                           SpanCollector* spans)
    : sim_(sim), net_(net), gpus_(std::move(gpus)), config_(config) {
  CHECK_EQ(static_cast<int>(gpus_.size()), config_.num_nodes);
  codec_speed_ =
      GetCodecSpeed(config_.algorithm, config_.codec_impl, config_.platform);
  merge_cost_ = GetMergeCost(config_.platform);
  // The lines the planner prices with become the audit baselines; every
  // executed task then lands a measured sample next to them.
  auditor_.SetPrediction(CostPrimitive::kEncode, codec_speed_.encode);
  auditor_.SetPrediction(CostPrimitive::kDecode, codec_speed_.decode);
  auditor_.SetPrediction(CostPrimitive::kMerge, merge_cost_);
  auditor_.SetPrediction(
      CostPrimitive::kSend,
      KernelCost{config_.net.path_latency() + config_.net.per_message_overhead,
                 config_.net.effective_bandwidth().bytes_per_second()});
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics = owned_metrics_.get();
  }
  metrics_ = metrics;
  auto primitive = [metrics](const char* name) {
    PrimitiveMetrics handles;
    handles.tasks = &metrics->counter(StrFormat("engine.%s_tasks", name));
    handles.time_ns = &metrics->counter(StrFormat("engine.%s_time_ns", name));
    handles.duration_us = &metrics->histogram(StrFormat("engine.%s_us", name));
    return handles;
  };
  encode_metrics_ = primitive("encode");
  decode_metrics_ = primitive("decode");
  merge_metrics_ = primitive("merge");
  send_tasks_ = &metrics_->counter("engine.send_tasks");
  wire_bytes_ = &metrics_->counter("engine.wire_bytes");
  send_bytes_ = &metrics_->histogram("engine.send_bytes",
                                     HistogramBuckets::DefaultBytes());
  if (config_.bulk) {
    coordinator_ = std::make_unique<BulkCoordinator>(
        sim_, net_, config_.bulk_size_threshold, config_.bulk_timeout,
        metrics_, spans);
  }
  node_failed_.assign(gpus_.size(), false);
  graphs_cancelled_ = &metrics_->counter("engine.graphs_cancelled");
  if (config_.reliable_transport || config_.net.faults.any()) {
    reliable_ = std::make_unique<ReliableChannel>(sim_, net_, config_.reliable,
                                                  metrics_, spans);
    reliable_->set_on_peer_failure([this](int peer) { OnPeerFailure(peer); });
    if (coordinator_ != nullptr) {
      coordinator_->set_channel(reliable_.get());
    }
  }
  serial_.reserve(gpus_.size());
  for (size_t node = 0; node < gpus_.size(); ++node) {
    serial_.push_back(std::make_unique<SimResource>(
        sim_, StrFormat("serial/%zu", node)));
  }
}

SimTime CaSyncEngine::compute_busy(int node) const {
  return gpus_[node]->busy_time(GpuDevice::kKernelStream);
}

bool CaSyncEngine::Idle() const {
  for (const std::weak_ptr<RunningGraph>& entry : active_) {
    const auto running = entry.lock();
    if (running != nullptr && !running->done_fired) {
      return false;
    }
  }
  return coordinator_ == nullptr || coordinator_->Idle();
}

void CaSyncEngine::ApplyCodec(const std::string& algorithm, CodecImpl impl,
                              const CodecSpeed& speed) {
  CHECK(Idle()) << "codec swap with task graphs in flight: plans already "
                   "executing were priced under the previous codec";
  config_.algorithm = algorithm;
  config_.codec_impl = impl;
  codec_speed_ = speed;
  auditor_.SetPrediction(CostPrimitive::kEncode, codec_speed_.encode);
  auditor_.SetPrediction(CostPrimitive::kDecode, codec_speed_.decode);
}

void CaSyncEngine::ReviveNode(int node) {
  CHECK(Idle()) << "rejoin with task graphs in flight: active graphs were "
                   "built over the pre-rejoin membership";
  CHECK_GE(node, 0);
  CHECK_LT(node, static_cast<int>(node_failed_.size()));
  if (!node_failed_[node]) {
    return;
  }
  node_failed_[node] = false;
  failed_nodes_.erase(
      std::remove(failed_nodes_.begin(), failed_nodes_.end(), node),
      failed_nodes_.end());
  if (reliable_ != nullptr) {
    reliable_->ReinstatePeer(node);
  }
}

EngineStats CaSyncEngine::stats() const {
  EngineStats stats;
  stats.encode_tasks = encode_metrics_.tasks->value();
  stats.decode_tasks = decode_metrics_.tasks->value();
  stats.merge_tasks = merge_metrics_.tasks->value();
  stats.send_tasks = send_tasks_->value();
  stats.encode_time = static_cast<SimTime>(encode_metrics_.time_ns->value());
  stats.decode_time = static_cast<SimTime>(decode_metrics_.time_ns->value());
  stats.merge_time = static_cast<SimTime>(merge_metrics_.time_ns->value());
  stats.wire_bytes = wire_bytes_->value();
  return stats;
}

void CaSyncEngine::Execute(TaskGraph* graph, std::function<void()> on_done) {
  Execute(graph, [on_done = std::move(on_done)](const Status&) {
    if (on_done) {
      on_done();
    }
  });
}

void CaSyncEngine::Execute(TaskGraph* graph,
                           std::function<void(const Status&)> on_done) {
  auto running = std::make_shared<RunningGraph>();
  running->graph = graph;
  running->remaining = graph->size();
  running->on_done = std::move(on_done);
  if (running->remaining == 0) {
    running->done_fired = true;
    if (running->on_done) {
      running->on_done(OkStatus());
    }
    return;
  }
  // A graph that talks to an already-failed node can never complete; fail
  // it up front so the caller rebuilds over the survivors immediately.
  if (!failed_nodes_.empty()) {
    for (TaskId id = 0; id < graph->size(); ++id) {
      const SyncTask& task = graph->task(id);
      const bool dead_node = task.node >= 0 && node_failed_[task.node];
      const bool dead_peer = task.peer >= 0 && node_failed_[task.peer];
      if (dead_node || dead_peer) {
        Fail(running, UnavailableError(StrFormat(
                          "graph involves failed node %d",
                          dead_node ? task.node : task.peer)));
        return;
      }
    }
  }
  active_.erase(std::remove_if(active_.begin(), active_.end(),
                               [](const std::weak_ptr<RunningGraph>& entry) {
                                 return entry.expired();
                               }),
                active_.end());
  active_.push_back(running);
  // Snapshot the roots before dispatching: barriers complete synchronously
  // and may drop another task's dependency count to zero mid-scan, which
  // dispatches it from Complete(); re-dispatching it here would run it
  // twice.
  std::vector<TaskId> roots;
  for (TaskId id = 0; id < graph->size(); ++id) {
    if (graph->task(id).pending_deps == 0) {
      roots.push_back(id);
    }
  }
  for (const TaskId id : roots) {
    Dispatch(running, id);
  }
}

SimTime CaSyncEngine::ComputeDuration(const SyncTask& task) const {
  switch (task.type) {
    case PrimitiveType::kEncode:
      return codec_speed_.encode.Time(task.bytes);
    case PrimitiveType::kDecode:
      return codec_speed_.decode.Time(task.bytes);
    case PrimitiveType::kMerge:
      return merge_cost_.Time(task.bytes);
    default:
      return 0;
  }
}

void CaSyncEngine::Dispatch(const GraphHandle& running, TaskId id) {
  if (running->done_fired) {
    return;  // cancelled graph: nothing new leaves the task manager
  }
  SyncTask& task = running->graph->task(id);
  task.ready_time = sim_->now();
  switch (task.type) {
    case PrimitiveType::kEncode:
    case PrimitiveType::kDecode:
    case PrimitiveType::kMerge: {
      const SimTime duration = ComputeDuration(task);
      auto done = [this, running, id] { Complete(running, id); };
      GpuTaskKind kind = GpuTaskKind::kMerge;
      CostPrimitive primitive = CostPrimitive::kMerge;
      const PrimitiveMetrics* handles = &merge_metrics_;
      if (task.type == PrimitiveType::kEncode) {
        kind = GpuTaskKind::kEncode;
        primitive = CostPrimitive::kEncode;
        handles = &encode_metrics_;
      } else if (task.type == PrimitiveType::kDecode) {
        kind = GpuTaskKind::kDecode;
        primitive = CostPrimitive::kDecode;
        handles = &decode_metrics_;
      }
      handles->tasks->Increment();
      handles->time_ns->Increment(static_cast<uint64_t>(duration));
      handles->duration_us->Observe(static_cast<double>(duration) /
                                    kMicrosecond);
      auditor_.AddSample(primitive, task.bytes, duration);
      if (config_.pipelining) {
        // CaSync: a dedicated kernel queue (the paper adds a task queue and
        // scheduling thread to each DNN system) overlaps compression with
        // both DNN compute and communication.
        task.start_time =
            gpus_[task.node]->SubmitKernel(kind, duration, std::move(done));
      } else if (config_.codec_on_compute_stream) {
        // OSS engine integrations (BytePS/MXNet) push codec ops through the
        // framework's single execution queue: they contend with backward
        // computation on the device and cannot hide behind it.
        task.start_time = gpus_[task.node]->Submit(
            GpuDevice::kComputeStream, kind, duration, std::move(done));
      } else {
        // OSS allreduce-path integrations (TF Ring-DGC): codec ops overlap
        // backward but serialize against the node's communication.
        task.start_time = serial_[task.node]->Submit(duration, std::move(done));
      }
      return;
    }
    case PrimitiveType::kSend: {
      // Comm tasks leave the task manager immediately; queueing, batching
      // and the wire all live between start and completion, so the whole
      // span is the send's service time (and the auditor's drift signal).
      task.start_time = task.ready_time;
      send_tasks_->Increment();
      wire_bytes_->Increment(task.bytes);
      send_bytes_->Observe(static_cast<double>(task.bytes));
      const SimTime copy_overhead = config_.extra_copy_overhead;
      auto deliver = [this, running, id](const Status& status) {
        if (!status.ok()) {
          Fail(running, status);
          return;
        }
        Complete(running, id);
      };
      // Raw network or reliable transport, depending on configuration.
      // `on_payload` (the task's receiver-side deliver hook) fires at the
      // destination's delivery time with the payload bytes; the reliable
      // path latches it to the first delivered copy under retransmits.
      auto transmit = [this, deliver](
                          NetMessage message,
                          std::function<void(std::span<const uint8_t>)>
                              on_payload) {
        std::function<void(const NetMessage&)> on_deliver;
        if (on_payload) {
          on_deliver = [on_payload = std::move(on_payload)](
                           const NetMessage& delivered) {
            auto bytes =
                std::static_pointer_cast<PooledBytes>(delivered.payload);
            on_payload(bytes != nullptr ? bytes->span()
                                        : std::span<const uint8_t>());
          };
        }
        if (reliable_ != nullptr) {
          reliable_->Send(std::move(message), std::move(on_deliver), deliver);
          return;
        }
        net_->Send(std::move(message),
                   [on_deliver = std::move(on_deliver),
                    deliver](const NetMessage& delivered) {
                     if (on_deliver) {
                       on_deliver(delivered);
                     }
                     deliver(OkStatus());
                   });
      };
      auto start_send = [this, running, id, deliver, transmit] {
        if (running->done_fired) {
          return;
        }
        SyncTask& send = running->graph->task(id);
        if (config_.pipelining) {
          if (coordinator_ != nullptr) {
            if (send.payload != nullptr) {
              // Pooled real-data path: the payload rides the batch frame by
              // reference; the graph's ref drops here so the block recycles
              // as soon as the frame is assembled.
              coordinator_->EnqueueTransfer(send.node, send.peer,
                                            send.gradient_id,
                                            std::move(send.payload),
                                            send.deliver, deliver);
              return;
            }
            coordinator_->EnqueueWithStatus(send.node, send.peer, send.bytes,
                                            deliver);
            return;
          }
          NetMessage message;
          message.src = send.node;
          message.dst = send.peer;
          message.bytes = send.bytes;
          message.tag = send.gradient_id;
          message.payload = std::move(send.payload);
          transmit(std::move(message), send.deliver);
          return;
        }
        // Non-pipelined: the send waits for the node's sync path to drain,
        // then blocks it for the transfer's duration (the OSS path's
        // synchronous send). The wire transfer starts only once the node
        // owns the slot, and endpoint contention still applies on the
        // shared network.
        serial_[send.node]->Submit(0, [this, running, id, transmit] {
          SyncTask& inner = running->graph->task(id);
          serial_[inner.node]->Submit(
              net_->UncontendedSendTime(inner.bytes), [] {});
          NetMessage message;
          message.src = inner.node;
          message.dst = inner.peer;
          message.bytes = inner.bytes;
          message.tag = inner.gradient_id;
          message.payload = std::move(inner.payload);
          transmit(std::move(message), inner.deliver);
        });
      };
      if (copy_overhead > 0) {
        // Extra staging copies before the transfer (BytePS OSS path).
        sim_->Schedule(copy_overhead, start_send);
      } else {
        start_send();
      }
      return;
    }
    case PrimitiveType::kRecv:
    case PrimitiveType::kBarrier: {
      // Zero-cost join points: complete immediately (the paying work — the
      // matching send, or upstream kernels — is in the dependencies).
      task.start_time = task.ready_time;
      Complete(running, id);
      return;
    }
  }
}

void CaSyncEngine::Complete(const GraphHandle& running, TaskId id) {
  if (running->done_fired) {
    return;  // straggler completion on a cancelled graph
  }
  SyncTask& task = running->graph->task(id);
  task.end_time = sim_->now();
  if (task.type == PrimitiveType::kSend && task.ready_time != kTaskNeverRan) {
    // Measured end-to-end latency vs the uncontended send model: endpoint
    // contention, coordinator batching, jitter and retries all surface as
    // relative error here.
    auditor_.AddSample(CostPrimitive::kSend, task.bytes,
                       task.end_time - task.ready_time);
  }
  if (task.action) {
    task.action();
  }
  for (const TaskId dependent : task.dependents) {
    if (--running->graph->task(dependent).pending_deps == 0) {
      Dispatch(running, dependent);
    }
  }
  if (--running->remaining == 0) {
    running->done_fired = true;
    if (running->on_done) {
      running->on_done(OkStatus());
    }
  }
}

void CaSyncEngine::Fail(const GraphHandle& running, const Status& status) {
  if (running->done_fired) {
    return;
  }
  running->done_fired = true;
  graphs_cancelled_->Increment();
  if (running->on_done) {
    running->on_done(status);
  }
}

void CaSyncEngine::OnPeerFailure(int peer) {
  if (node_failed_[peer]) {
    return;
  }
  node_failed_[peer] = true;
  failed_nodes_.push_back(peer);
  LOG(Warning) << "peer " << peer
               << " declared failed; cancelling its in-flight task graphs";
  // Cancel every running graph that communicates with the dead node; the
  // caller rebuilds those synchronization topologies over the survivors.
  const Status status =
      UnavailableError(StrFormat("node %d failed", peer));
  std::vector<GraphHandle> doomed;
  for (const std::weak_ptr<RunningGraph>& entry : active_) {
    const GraphHandle running = entry.lock();
    if (running == nullptr || running->done_fired) {
      continue;
    }
    for (TaskId id = 0; id < running->graph->size(); ++id) {
      const SyncTask& task = running->graph->task(id);
      if (task.node == peer || task.peer == peer) {
        doomed.push_back(running);
        break;
      }
    }
  }
  for (const GraphHandle& running : doomed) {
    Fail(running, status);
  }
}

}  // namespace hipress
