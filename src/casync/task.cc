#include "src/casync/task.h"

#include <queue>

namespace hipress {

const char* PrimitiveTypeName(PrimitiveType type) {
  switch (type) {
    case PrimitiveType::kEncode:
      return "encode";
    case PrimitiveType::kDecode:
      return "decode";
    case PrimitiveType::kMerge:
      return "merge";
    case PrimitiveType::kSend:
      return "send";
    case PrimitiveType::kRecv:
      return "recv";
    case PrimitiveType::kBarrier:
      return "barrier";
  }
  return "unknown";
}

bool TaskGraph::IsAcyclic() const {
  std::vector<int> pending(tasks_.size());
  std::queue<TaskId> ready;
  for (size_t i = 0; i < tasks_.size(); ++i) {
    pending[i] = tasks_[i].pending_deps;
    if (pending[i] == 0) {
      ready.push(static_cast<TaskId>(i));
    }
  }
  size_t visited = 0;
  while (!ready.empty()) {
    const TaskId id = ready.front();
    ready.pop();
    ++visited;
    for (const TaskId dependent : tasks_[id].dependents) {
      if (--pending[dependent] == 0) {
        ready.push(dependent);
      }
    }
  }
  return visited == tasks_.size();
}

}  // namespace hipress
