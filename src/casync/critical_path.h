// Critical-path profiler for synchronization rounds.
//
// The paper's Figure 11 argues from a per-primitive latency breakdown; this
// module explains *which chain* of encode/merge/send/recv/decode tasks
// bounds an iteration. Given a TaskGraph executed with the engine's task
// timing recording (SyncTask::{ready,start,end}_time), AnalyzeCriticalPath
// walks the dependency DAG backwards from the last-finishing task, always
// following the predecessor whose completion gated the successor's
// readiness, and attributes every nanosecond of the chain to a category:
// the primitive's service time (encode/merge/send+wire/recv/decode) or
// resource queueing (wait).
//
// AttributeIteration lifts this to a whole training iteration: the graph
// finishing last bounds the BSP barrier; time before its chain starts is
// DNN compute (backward gates gradient readiness), time after it is the
// barrier waiting on the slowest node's compute. The attribution therefore
// sums exactly to the iteration's wall time — the invariant the step
// report (`train_cluster --step-report`) and the `cp.*` gauges rest on.
#ifndef HIPRESS_SRC_CASYNC_CRITICAL_PATH_H_
#define HIPRESS_SRC_CASYNC_CRITICAL_PATH_H_

#include <array>
#include <vector>

#include "src/casync/task.h"
#include "src/common/metrics.h"
#include "src/common/units.h"

namespace hipress {

// Wall-time categories along an iteration's critical path.
enum class CpCategory {
  kCompute,  // DNN forward/backward gating gradient readiness
  kEncode,
  kMerge,
  kSend,  // send + wire: queueing through delivery
  kRecv,
  kDecode,
  kWait,  // resource queueing (kernel-stream / serial-slot backlog)
};
inline constexpr int kNumCpCategories = 7;

const char* CpCategoryName(CpCategory category);

// Per-category nanosecond totals.
struct CpAttribution {
  std::array<SimTime, kNumCpCategories> time{};

  SimTime& operator[](CpCategory category) {
    return time[static_cast<size_t>(category)];
  }
  SimTime operator[](CpCategory category) const {
    return time[static_cast<size_t>(category)];
  }
  SimTime total() const;
  void Add(const CpAttribution& other);
  // Fraction of total() in `category`; 0 when empty.
  double Share(CpCategory category) const;
};

// One element of the critical path, in execution order.
struct CpStep {
  TaskId task = kInvalidTask;
  PrimitiveType type = PrimitiveType::kBarrier;
  int node = -1;
  SimTime ready = 0;
  SimTime start = 0;
  SimTime end = 0;
};

struct CriticalPath {
  std::vector<CpStep> steps;  // chain in execution order; empty if none ran
  SimTime path_start = 0;     // first step's ready time
  SimTime path_end = 0;       // last step's end time
  // Service + wait along the chain; sums to path_end - path_start.
  CpAttribution attribution;

  bool empty() const { return steps.empty(); }
};

// Extracts the longest weighted dependency chain from an executed graph.
// Tasks that never completed (cancelled graphs, in-flight stragglers) are
// skipped; a graph where nothing completed yields an empty path. Safe on
// degraded and partially-executed graphs.
CriticalPath AnalyzeCriticalPath(const TaskGraph& graph);

// Attributes the window [window_start, window_end) across `graphs`: picks
// the graph whose critical path ends last, charges the window before its
// chain (and after it, the BSP barrier's compute wait) to kCompute, and
// folds in the chain's own attribution. `bounding_graph` is the index into
// `graphs` (-1 when no graph executed — then the whole window is compute).
struct IterationAttribution {
  CpAttribution attribution;  // sums exactly to window_end - window_start
  CriticalPath path;          // the bounding graph's chain
  int bounding_graph = -1;
};

IterationAttribution AttributeIteration(
    const std::vector<const TaskGraph*>& graphs, SimTime window_start,
    SimTime window_end);

// Emits one span per chain element on the `critical-path` lane (16) of the
// unified Perfetto trace, named "cp:<primitive>", on the executing node's
// track — plus a leading "cp:compute" span on node `compute_node` covering
// [window_start, path_start). No-op when `spans` is null.
void AddCriticalPathSpans(const CriticalPath& path, SimTime window_start,
                          int compute_node, SpanCollector* spans);

}  // namespace hipress

#endif  // HIPRESS_SRC_CASYNC_CRITICAL_PATH_H_
