// CaSync execution engine.
//
// Realizes the architecture of Figure 2 on the simulated cluster: each
// node's task manager maintains computing and communication queues; ready
// tasks dispatch to the node's GPU kernel stream (computing primitives) or
// to the network / bulk coordinator (communication primitives); completions
// clear dependency edges and promote newly-ready tasks. Multiple task
// graphs — typically one per gradient — execute concurrently, which is what
// produces the compression/communication pipelining the paper relies on.
//
// With `pipelining` disabled the engine routes every sync-path task through
// a per-node serial resource, reproducing the OSS co-designs where
// compression kernels and transfers block one another.
#ifndef HIPRESS_SRC_CASYNC_ENGINE_H_
#define HIPRESS_SRC_CASYNC_ENGINE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/casync/config.h"
#include "src/casync/coordinator.h"
#include "src/casync/task.h"
#include "src/common/metrics.h"
#include "src/common/profiler.h"
#include "src/common/status.h"
#include "src/net/network.h"
#include "src/net/reliable_channel.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"
#include "src/simgpu/gpu.h"

namespace hipress {

// Aggregate execution statistics, for latency breakdowns (Figure 11) and
// the ablation benches. Snapshot of the engine's metrics registry
// ("engine.*" counters) at one instant.
struct EngineStats {
  uint64_t encode_tasks = 0;
  uint64_t decode_tasks = 0;
  uint64_t merge_tasks = 0;
  uint64_t send_tasks = 0;
  SimTime encode_time = 0;  // modelled kernel time summed over all nodes
  SimTime decode_time = 0;
  SimTime merge_time = 0;
  uint64_t wire_bytes = 0;  // bytes handed to the network / coordinator
};

class CaSyncEngine {
 public:
  // `gpus` holds one device per node (the node's sync GPU; local
  // aggregation across a node's other GPUs is modelled upstream by the
  // trainer). All pointers must outlive the engine.
  //
  // Per-primitive task counts, modelled durations and wire bytes are
  // recorded into `metrics` ("engine.encode_tasks", "engine.encode_us",
  // "engine.wire_bytes", ...); when null the engine keeps a private
  // registry so stats() always works. `spans` is forwarded to the bulk
  // coordinator for the merged trace.
  CaSyncEngine(Simulator* sim, Network* net, std::vector<GpuDevice*> gpus,
               const SyncConfig& config, MetricsRegistry* metrics = nullptr,
               SpanCollector* spans = nullptr);

  // Begins executing `graph` now; `on_done` fires at the simulated time the
  // last task completes. The graph must outlive execution. Multiple graphs
  // may be in flight concurrently.
  void Execute(TaskGraph* graph, std::function<void()> on_done);

  // Status-aware variant: `on_done` fires with OkStatus() on completion, or
  // exactly once with an UNAVAILABLE error when the graph is cancelled
  // because a peer it communicates with was declared failed (reliable
  // transport's retry budget exhausted). A graph that touches an
  // already-failed node fails immediately. After a failure the caller is
  // expected to rebuild the synchronization topology over the survivors
  // (AppendSyncTasksOver) and re-execute.
  void Execute(TaskGraph* graph, std::function<void(const Status&)> on_done);

  const SyncConfig& config() const { return config_; }
  BulkCoordinator* coordinator() { return coordinator_.get(); }
  // Non-null when fault injection or reliable transport is configured.
  ReliableChannel* reliable_channel() { return reliable_.get(); }

  // Nodes declared failed by the reliable transport, in detection order.
  const std::vector<int>& failed_nodes() const { return failed_nodes_; }
  bool node_failed(int node) const { return node_failed_[node]; }

  // Clears the failed mark on `node` — the crash-rejoin path: the
  // membership layer re-admits the node at an iteration boundary after its
  // model state has been re-synced from a donor, and subsequent task
  // graphs may include it again. CHECK-fails unless Idle() (in-flight
  // graphs were built over the old membership); idempotent for a node
  // that was never marked failed.
  void ReviveNode(int node);

  // Total simulated time the node's sync path spent on compression-related
  // kernels (for latency breakdowns).
  SimTime compute_busy(int node) const;

  // Snapshot of the engine's execution counters (assembled from the
  // metrics registry; subtract two snapshots for a per-iteration delta).
  EngineStats stats() const;

  // The registry this engine records into (the injected one, or the
  // engine-owned fallback).
  MetricsRegistry& metrics() { return *metrics_; }

  // True when no task graph is in flight (and, under bulk coordination, no
  // batch is queued awaiting flush) — the only state in which the engine's
  // codec may be swapped.
  bool Idle() const;

  // Repoints the engine at a different compression codec between
  // iterations (the adaptive controller's switch path, docs/ADAPTIVE.md):
  // updates the kernel-cost lines Dispatch prices encode/decode with and
  // the auditor's prediction baselines. CHECK-fails unless Idle() — tasks
  // already dispatched were costed under the old codec, and pooled wire
  // buffers handed to the network must drain before their sizing
  // assumptions change.
  void ApplyCodec(const std::string& algorithm, CodecImpl impl,
                  const CodecSpeed& speed);

  // Cost-model drift audit: every executed task contributes a measured
  // sample next to the KernelCost line the planner prices with — kernel
  // service times for encode/decode/merge, ready-to-delivery latency for
  // sends (so contention, batching and retransmits register as drift
  // against the uncontended send model). Publish into a registry with
  // auditor().Publish(&metrics()).
  const CostModelAuditor& auditor() const { return auditor_; }
  CostModelAuditor& auditor() { return auditor_; }

 private:
  struct RunningGraph {
    TaskGraph* graph = nullptr;
    size_t remaining = 0;
    std::function<void(const Status&)> on_done;
    // Once set, no further tasks dispatch and on_done has fired; straggler
    // completions from kernels/transfers already in flight are ignored.
    bool done_fired = false;
  };
  using GraphHandle = std::shared_ptr<RunningGraph>;

  void Dispatch(const GraphHandle& running, TaskId id);
  void Complete(const GraphHandle& running, TaskId id);
  // Fails the graph once: fires on_done with `status` and freezes dispatch.
  void Fail(const GraphHandle& running, const Status& status);
  void OnPeerFailure(int peer);
  SimTime ComputeDuration(const SyncTask& task) const;

  // Cached handles into metrics_, one per instrumented primitive.
  struct PrimitiveMetrics {
    Counter* tasks = nullptr;
    Counter* time_ns = nullptr;
    Histogram* duration_us = nullptr;
  };

  Simulator* sim_;
  Network* net_;
  std::vector<GpuDevice*> gpus_;
  SyncConfig config_;
  CodecSpeed codec_speed_;
  KernelCost merge_cost_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;  // when none injected
  MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<BulkCoordinator> coordinator_;
  std::unique_ptr<ReliableChannel> reliable_;
  // Per-node serializer used when pipelining is off.
  std::vector<std::unique_ptr<SimResource>> serial_;
  // In-flight graphs, so a peer failure can cancel every graph that talks
  // to the dead node (expired entries pruned on Execute).
  std::vector<std::weak_ptr<RunningGraph>> active_;
  std::vector<bool> node_failed_;
  std::vector<int> failed_nodes_;
  CostModelAuditor auditor_;
  Counter* graphs_cancelled_ = nullptr;
  PrimitiveMetrics encode_metrics_;
  PrimitiveMetrics decode_metrics_;
  PrimitiveMetrics merge_metrics_;
  Counter* send_tasks_ = nullptr;
  Counter* wire_bytes_ = nullptr;
  Histogram* send_bytes_ = nullptr;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_CASYNC_ENGINE_H_
