// CaSync task graph.
//
// Section 3.1 decouples gradient synchronization into five primitives —
// encode, decode, merge, send, recv — and coordinates them through a
// dependency graph (Figure 2). A TaskGraph is one synchronization round's
// worth of primitives with data-dependency edges; the engine drains it over
// the simulated cluster, dispatching computing tasks to per-node GPU kernel
// streams and communication tasks to the network (optionally through the
// bulk coordinator).
#ifndef HIPRESS_SRC_CASYNC_TASK_H_
#define HIPRESS_SRC_CASYNC_TASK_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/buffer_pool.h"
#include "src/common/units.h"

namespace hipress {

enum class PrimitiveType {
  kEncode,
  kDecode,
  kMerge,
  kSend,
  kRecv,
  // Synthetic no-op used as a join point (e.g. "gradient fully synced").
  kBarrier,
};

const char* PrimitiveTypeName(PrimitiveType type);

using TaskId = uint32_t;
inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();

// Sentinel for the recorded task times below: the task never reached that
// execution stage (e.g. its graph was cancelled by a peer failure).
inline constexpr SimTime kTaskNeverRan = -1;

struct SyncTask {
  PrimitiveType type = PrimitiveType::kBarrier;
  int node = -1;  // executing node
  int peer = -1;  // destination node for kSend (unused otherwise)
  // Bytes of *input* processed for compute tasks (cost-model argument), or
  // wire bytes for kSend.
  uint64_t bytes = 0;
  // Gradient this task belongs to (for tracing and bulk batching).
  uint32_t gradient_id = 0;
  // Dependency bookkeeping, managed by the engine at run time.
  int pending_deps = 0;
  std::vector<TaskId> dependents;
  // Execution timestamps recorded by the engine (kTaskNeverRan until the
  // task reaches each stage): ready = last dependency cleared, start =
  // began occupying its resource (GPU stream / serial slot; equals ready
  // for communication tasks, whose queueing is part of the wire span),
  // end = completed. start - ready is queueing; end - start is service.
  // The critical-path profiler (src/casync/critical_path.h) consumes them.
  SimTime ready_time = kTaskNeverRan;
  SimTime start_time = kTaskNeverRan;
  SimTime end_time = kTaskNeverRan;
  // Optional real-data action executed when the task runs (integration
  // tests move actual tensors through the graph; pure timing runs leave it
  // empty).
  std::function<void()> action;
  // Optional pooled wire payload for kSend: the engine moves it into the
  // outgoing NetMessage (or the coordinator's batch frame), so the block
  // travels by refcount through batching and retransmits — never by copy.
  // Pure timing runs leave it null. For payload sends through the bulk
  // coordinator, wire accounting uses payload->size() (plus framing).
  std::shared_ptr<PooledBytes> payload;
  // Receiver-side hook for kSend, fired at the *destination's* delivery
  // time with bytes aliasing the delivered frame/payload (valid only for
  // the duration of the call — copy out or decode in place). Exactly once
  // per delivered send, even when the reliable channel retransmits.
  std::function<void(std::span<const uint8_t>)> deliver;
};

class TaskGraph {
 public:
  TaskId Add(SyncTask task) {
    tasks_.push_back(std::move(task));
    return static_cast<TaskId>(tasks_.size() - 1);
  }

  // Declares that `to` cannot start until `from` completes.
  void AddDep(TaskId from, TaskId to) {
    tasks_[from].dependents.push_back(to);
    ++tasks_[to].pending_deps;
  }

  SyncTask& task(TaskId id) { return tasks_[id]; }
  const SyncTask& task(TaskId id) const { return tasks_[id]; }
  size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }

  std::vector<SyncTask>& tasks() { return tasks_; }
  const std::vector<SyncTask>& tasks() const { return tasks_; }

  // Simple cycle check (Kahn); true when every task is reachable by
  // repeatedly removing zero-dependency tasks.
  bool IsAcyclic() const;

 private:
  std::vector<SyncTask> tasks_;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_CASYNC_TASK_H_
