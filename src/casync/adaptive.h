// Runtime-adaptive compression controller (docs/ADAPTIVE.md).
//
// The paper fixes codec and selective-compression choices at plan time
// (Section 3.3); GraVAC and CGX (PAPERS.md) show that trading compression
// gain against compression cost *during* training recovers throughput when
// the bottleneck moves. This controller closes that loop over signals the
// repository already measures:
//
//  * per-primitive critical-path attribution — cp.share.send spiking says
//    the wire, not the kernels, bounds the iteration
//    (src/casync/critical_path.h);
//  * the cost-model auditor's send samples — a windowed least-squares fit
//    over the latest iteration's (bytes, ready-to-delivery) pairs estimates
//    the *effective* link bandwidth, which collapses during the
//    link-degradation windows the fault layer injects
//    (src/common/profiler.h, src/net/fault.h).
//
// When both agree the wire degraded (send share above the high watermark
// AND the bandwidth estimate well below what the active plan was priced
// with) for `trigger_iterations` consecutive iterations, the controller
// re-plans: every gradient is repriced through the SeCoPaPlanner re-plan
// path (WithBandwidth/WithCodec) at the observed bandwidth, across a
// candidate codec ladder — switching codec, compression ratio and the
// selective-compression cutoff per gradient in one decision. The reverse
// watermark relaxes the plan when bandwidth recovers. Hysteresis (distinct
// high/low watermarks, consecutive-iteration trigger streaks, a cooldown
// after every decision, and a minimum bandwidth delta) prevents codec
// flapping across a noisy degradation boundary.
//
// Decisions are a pure function of the observed inputs — no wall-clock or
// unseeded randomness — so a replay with the same seed and fault spec
// yields a bit-identical decision sequence (DecisionLog; gated by
// tests/adaptive_test.cc and bench/bench_adaptive.cc). Plans swap only at
// iteration boundaries: the trainer rebuilds task graphs from the
// refreshed GradientSync plans and the engine repoints its kernel-cost
// lines (CaSyncEngine::ApplyCodec) while no graph is in flight, so pooled
// wire buffers and batch frames already handed to the network are never
// touched.
#ifndef HIPRESS_SRC_CASYNC_ADAPTIVE_H_
#define HIPRESS_SRC_CASYNC_ADAPTIVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/casync/builder.h"
#include "src/casync/config.h"
#include "src/casync/critical_path.h"
#include "src/casync/secopa.h"
#include "src/common/profiler.h"

namespace hipress {

// One rung of the candidate codec ladder. `rate` and `speed` are the same
// inputs the SeCoPa planner prices the static plan with, so candidate
// comparison is apples-to-apples with plan-time selection.
struct AdaptiveCodecOption {
  std::string algorithm;
  CodecImpl impl = CodecImpl::kCompLL;
  double rate = 1.0;  // compressed/original bytes
  CodecSpeed speed;   // T_enc / T_dec lines
};

struct AdaptiveOptions {
  bool enabled = false;
  // Watermarks on the send share of the iteration's critical path. The gap
  // between them is the first hysteresis band: tightening arms above
  // `send_share_high`, relaxing arms below `send_share_low`, and the region
  // in between never triggers.
  double send_share_high = 0.45;
  double send_share_low = 0.15;
  // Consecutive iterations a watermark must stay breached before the
  // controller acts (absorbs one-iteration noise spikes).
  int trigger_iterations = 2;
  // Iterations after any decision during which no new decision arms.
  int cooldown_iterations = 2;
  // Minimum relative distance between the observed bandwidth and the
  // bandwidth the active plan was priced with; re-planning on smaller
  // drift would churn plans for sub-noise gains.
  double min_bandwidth_change = 0.2;
  // Send samples required in the iteration window before the bandwidth
  // estimate is trusted (an almost-empty window fits garbage).
  uint64_t min_send_samples = 4;
  // Floor on the bandwidth estimate, as a fraction of the configured link
  // bandwidth (guards the planner against degenerate early fits).
  double min_bandwidth_fraction = 0.02;
  // Additional codec-ladder rungs by registry name (the configured codec
  // is always rung 0). Resolved by the trainer; unknown names error.
  std::vector<std::string> candidate_algorithms;
};

// One iteration-boundary decision. Every Observe() call produces one (most
// with replanned == false), so the decision log lines up 1:1 with
// iterations on replay.
struct AdaptiveDecision {
  int iteration = 0;
  bool replanned = false;       // plans were refreshed this boundary
  bool codec_switched = false;  // the active ladder rung changed
  std::string algorithm;        // active codec after this boundary
  double send_share = 0.0;      // cp.share.send input
  double observed_gbps = 0.0;   // windowed effective-bandwidth estimate
  double planned_gbps = 0.0;    // bandwidth the active plan prices
  int compressed_units = 0;     // gradients compressed under the plan
  int replanned_units = 0;      // gradients whose <compress?, K> changed
  std::string reason;           // deterministic, human-readable
};

// Whole-run summary carried on the TrainReport.
struct AdaptiveReport {
  bool enabled = false;
  int replans = 0;
  int codec_switches = 0;
  std::string final_algorithm;
  std::vector<AdaptiveDecision> decisions;
  // One line per decision, fixed formatting — the replay artifact two runs
  // of the same configuration must reproduce byte-for-byte.
  std::string decision_log;
};

class AdaptiveController {
 public:
  // `config` must have compression + SeCoPa enabled (the controller's
  // levers are the SeCoPa cutoffs). `unit_bytes` lists the sync units in
  // launch order; `codecs` is the candidate ladder, rung 0 the configured
  // codec the initial plan uses.
  AdaptiveController(const SyncConfig& config, const AdaptiveOptions& options,
                     std::vector<uint64_t> unit_bytes,
                     std::vector<AdaptiveCodecOption> codecs);

  // Per-unit <compress?, K, rate> plans under the active codec and
  // bandwidth estimate. Index-aligned with `unit_bytes`; refreshed by a
  // replanning Observe().
  const std::vector<GradientSync>& plans() const { return plans_; }
  const AdaptiveCodecOption& active_codec() const {
    return codecs_[active_codec_];
  }
  double planned_gbps() const { return planned_gbps_; }

  // Membership change at an iteration boundary: re-prices every unit's
  // plan over the new view size (SeCoPa's alpha/beta/gamma terms and the
  // 2N partition cap all depend on it), keeping the active codec and
  // bandwidth estimate. Clears the tighten/relax streaks — attributions
  // observed over the old membership are not evidence about the new one —
  // but deliberately leaves any cooldown running: membership is a
  // correctness event, not a performance trigger, and must not reopen the
  // decision window early (the cooldown-crash regression in
  // tests/adaptive_test.cc). Returns true when the view size changed and
  // plans were rebuilt.
  bool OnMembershipChange(int num_nodes);

  // Feed iteration `iteration`'s critical-path attribution and the
  // engine's auditor (whose send statistics the controller snapshots for
  // the window estimate). When the returned decision has replanned set,
  // the caller applies plans() to the next iteration's graphs — and, if
  // codec_switched, repoints the engine via ApplyCodec — before building
  // the next iteration's task graphs.
  AdaptiveDecision Observe(int iteration, const CpAttribution& attribution,
                           const CostModelAuditor& auditor);

  const std::vector<AdaptiveDecision>& decisions() const {
    return decisions_;
  }
  int replans() const { return replans_; }
  int codec_switches() const { return codec_switches_; }

  // Deterministic one-line-per-decision serialization (see
  // AdaptiveReport::decision_log).
  std::string DecisionLog() const;

  // The summary the trainer copies onto the TrainReport.
  AdaptiveReport Report() const;

 private:
  // Replaces plans_ by repricing every unit with `codec` at
  // `bytes_per_second`; returns the number of units whose plan changed.
  int Replan(size_t codec, double bytes_per_second);
  // Total planned sync cost of all units under a candidate, at the
  // planner's current bandwidth.
  SimTime TotalPlannedCost(const SeCoPaPlanner& planner) const;

  SyncConfig config_;
  AdaptiveOptions options_;
  std::vector<uint64_t> unit_bytes_;
  std::vector<AdaptiveCodecOption> codecs_;
  size_t active_codec_ = 0;
  std::vector<GradientSync> plans_;
  double nominal_bps_ = 0.0;  // configured link bandwidth
  double planned_bps_ = 0.0;  // bandwidth the active plan was priced with
  double planned_gbps_ = 0.0;
  double estimate_bps_ = 0.0;  // latest trusted window estimate
  CostSampleStats last_send_snapshot_;
  int tighten_streak_ = 0;
  int relax_streak_ = 0;
  int cooldown_left_ = 0;
  int replans_ = 0;
  int codec_switches_ = 0;
  std::vector<AdaptiveDecision> decisions_;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_CASYNC_ADAPTIVE_H_
