#include "src/casync/dataflow.h"

#include <algorithm>

namespace hipress {
namespace {

struct PartitionRange {
  size_t offset;
  size_t count;
};

std::vector<PartitionRange> MakePartitions(size_t elements, int partitions) {
  const size_t k = std::max(1, partitions);
  std::vector<PartitionRange> ranges;
  ranges.reserve(k);
  const size_t base = elements / k;
  size_t offset = 0;
  for (size_t p = 0; p < k; ++p) {
    // Remainder spread over the leading partitions for balance.
    const size_t count = base + (p < elements % k ? 1 : 0);
    ranges.push_back(PartitionRange{offset, count});
    offset += count;
  }
  return ranges;
}

}  // namespace

StatusOr<std::vector<Tensor>> DataflowRunner::Run(
    const std::vector<Tensor>& inputs, int partitions) const {
  if (inputs.empty()) {
    return InvalidArgumentError("dataflow: no worker inputs");
  }
  for (const Tensor& input : inputs) {
    if (input.size() != inputs[0].size()) {
      return InvalidArgumentError("dataflow: worker gradient sizes differ");
    }
  }
  switch (strategy_) {
    case StrategyKind::kPs:
      return RunPs(inputs, partitions);
    case StrategyKind::kRing:
      return RunRing(inputs, partitions);
    case StrategyKind::kTree:
      return RunTree(inputs, partitions);
  }
  return InvalidArgumentError("dataflow: unknown strategy");
}

StatusOr<std::vector<Tensor>> DataflowRunner::RunPs(
    const std::vector<Tensor>& inputs, int partitions) const {
  const int n = static_cast<int>(inputs.size());
  const size_t elements = inputs[0].size();
  const auto ranges = MakePartitions(elements, partitions);

  std::vector<Tensor> outputs(n);
  for (int w = 0; w < n; ++w) {
    outputs[w] = Tensor(inputs[w].name(), elements);
  }

  for (size_t p = 0; p < ranges.size(); ++p) {
    const auto [offset, count] = ranges[p];
    if (count == 0) {
      continue;
    }
    const int aggregator = static_cast<int>(p) % n;

    // Aggregate the co-located shard plus each worker's (compressed) push.
    std::vector<float> aggregate(
        inputs[aggregator].slice(offset, count).begin(),
        inputs[aggregator].slice(offset, count).end());
    for (int w = 0; w < n; ++w) {
      if (w == aggregator) {
        continue;
      }
      const auto shard = inputs[w].slice(offset, count);
      if (codec_ != nullptr) {
        ByteBuffer wire;
        RETURN_IF_ERROR(codec_->Encode(shard, &wire));
        RETURN_IF_ERROR(
            codec_->DecodeAdd(wire, std::span<float>(aggregate)));
      } else {
        for (size_t i = 0; i < count; ++i) {
          aggregate[i] += shard[i];
        }
      }
    }

    // Pull phase. Compressed: every replica — including the aggregator —
    // installs decode(encode(aggregate)) so replicas stay bit-identical.
    if (codec_ != nullptr) {
      ByteBuffer wire;
      RETURN_IF_ERROR(
          codec_->Encode(std::span<const float>(aggregate), &wire));
      std::vector<float> pulled(count, 0.0f);
      RETURN_IF_ERROR(codec_->Decode(wire, std::span<float>(pulled)));
      for (int w = 0; w < n; ++w) {
        std::copy(pulled.begin(), pulled.end(),
                  outputs[w].slice(offset, count).begin());
      }
    } else {
      for (int w = 0; w < n; ++w) {
        std::copy(aggregate.begin(), aggregate.end(),
                  outputs[w].slice(offset, count).begin());
      }
    }
  }
  return outputs;
}

StatusOr<std::vector<Tensor>> DataflowRunner::RunRing(
    const std::vector<Tensor>& inputs, int partitions) const {
  const int n = static_cast<int>(inputs.size());
  const size_t elements = inputs[0].size();
  const auto ranges = MakePartitions(elements, partitions);

  std::vector<Tensor> outputs(n);
  for (int w = 0; w < n; ++w) {
    outputs[w] = Tensor(inputs[w].name(), elements);
  }

  for (size_t c = 0; c < ranges.size(); ++c) {
    const auto [offset, count] = ranges[c];
    if (count == 0) {
      continue;
    }
    const int start = static_cast<int>(c) % n;

    // Aggregation: the chunk value travels start -> start+1 -> ... with a
    // decode+merge+encode at every hop (data dependency chain).
    std::vector<float> value(inputs[start].slice(offset, count).begin(),
                             inputs[start].slice(offset, count).end());
    for (int h = 1; h < n; ++h) {
      const int v = (start + h) % n;
      const auto local = inputs[v].slice(offset, count);
      if (codec_ != nullptr) {
        ByteBuffer wire;
        RETURN_IF_ERROR(
            codec_->Encode(std::span<const float>(value), &wire));
        std::vector<float> next(local.begin(), local.end());
        RETURN_IF_ERROR(codec_->DecodeAdd(wire, std::span<float>(next)));
        value = std::move(next);
      } else {
        for (size_t i = 0; i < count; ++i) {
          value[i] += local[i];
        }
      }
    }

    // Dissemination: encode once, forward the same buffer; every node
    // (including the final aggregator, for replica consistency) installs
    // the decoded value.
    if (codec_ != nullptr) {
      ByteBuffer wire;
      RETURN_IF_ERROR(codec_->Encode(std::span<const float>(value), &wire));
      std::vector<float> decoded(count, 0.0f);
      RETURN_IF_ERROR(codec_->Decode(wire, std::span<float>(decoded)));
      for (int w = 0; w < n; ++w) {
        std::copy(decoded.begin(), decoded.end(),
                  outputs[w].slice(offset, count).begin());
      }
    } else {
      for (int w = 0; w < n; ++w) {
        std::copy(value.begin(), value.end(),
                  outputs[w].slice(offset, count).begin());
      }
    }
  }
  return outputs;
}

StatusOr<std::vector<Tensor>> DataflowRunner::RunTree(
    const std::vector<Tensor>& inputs, int partitions) const {
  const int n = static_cast<int>(inputs.size());
  const size_t elements = inputs[0].size();
  const auto ranges = MakePartitions(elements, partitions);

  std::vector<Tensor> outputs(n);
  for (int w = 0; w < n; ++w) {
    outputs[w] = Tensor(inputs[w].name(), elements);
  }
  int rounds = 0;
  while ((1 << rounds) < n) {
    ++rounds;
  }

  for (size_t p = 0; p < ranges.size(); ++p) {
    const auto [offset, count] = ranges[p];
    if (count == 0) {
      continue;
    }
    const int root = static_cast<int>(p) % n;
    auto node = [&](int logical) { return (logical + root) % n; };

    // Per-logical-node partial aggregates, seeded with the local shards.
    std::vector<std::vector<float>> partial(n);
    for (int u = 0; u < n; ++u) {
      const auto shard = inputs[node(u)].slice(offset, count);
      partial[u].assign(shard.begin(), shard.end());
    }

    // Reduce: each round, odd-subtree owners push (compressed) to their
    // parents, which decode+merge.
    for (int r = 0; r < rounds; ++r) {
      const int stride = 1 << r;
      for (int u = stride; u < n; u += 2 * stride) {
        const int v = u - stride;
        if (codec_ != nullptr) {
          ByteBuffer wire;
          RETURN_IF_ERROR(
              codec_->Encode(std::span<const float>(partial[u]), &wire));
          RETURN_IF_ERROR(
              codec_->DecodeAdd(wire, std::span<float>(partial[v])));
        } else {
          for (size_t i = 0; i < count; ++i) {
            partial[v][i] += partial[u][i];
          }
        }
      }
    }

    // Broadcast: every replica installs decode(encode(aggregate)) so all
    // nodes stay bit-identical (compressed), or the exact sum (raw).
    std::vector<float> final_value = partial[0];
    if (codec_ != nullptr) {
      ByteBuffer wire;
      RETURN_IF_ERROR(
          codec_->Encode(std::span<const float>(final_value), &wire));
      std::vector<float> decoded(count, 0.0f);
      RETURN_IF_ERROR(codec_->Decode(wire, std::span<float>(decoded)));
      final_value = std::move(decoded);
    }
    for (int w = 0; w < n; ++w) {
      std::copy(final_value.begin(), final_value.end(),
                outputs[w].slice(offset, count).begin());
    }
  }
  return outputs;
}

}  // namespace hipress
