#include "src/casync/dataflow.h"

#include <algorithm>

namespace hipress {
namespace {

struct PartitionRange {
  size_t offset;
  size_t count;
};

std::vector<PartitionRange> MakePartitions(size_t elements, int partitions) {
  const size_t k = std::max(1, partitions);
  std::vector<PartitionRange> ranges;
  ranges.reserve(k);
  const size_t base = elements / k;
  size_t offset = 0;
  for (size_t p = 0; p < k; ++p) {
    // Remainder spread over the leading partitions for balance.
    const size_t count = base + (p < elements % k ? 1 : 0);
    ranges.push_back(PartitionRange{offset, count});
    offset += count;
  }
  return ranges;
}

}  // namespace

StatusOr<std::vector<Tensor>> DataflowRunner::Run(
    const std::vector<Tensor>& inputs, int partitions) const {
  if (inputs.empty()) {
    return InvalidArgumentError("dataflow: no worker inputs");
  }
  for (const Tensor& input : inputs) {
    if (input.size() != inputs[0].size()) {
      return InvalidArgumentError("dataflow: worker gradient sizes differ");
    }
  }
  switch (strategy_) {
    case StrategyKind::kPs:
      return RunPs(inputs, partitions);
    case StrategyKind::kRing:
      return RunRing(inputs, partitions);
    case StrategyKind::kTree:
      return RunTree(inputs, partitions);
  }
  return InvalidArgumentError("dataflow: unknown strategy");
}

StatusOr<std::vector<Tensor>> DataflowRunner::RunPs(
    const std::vector<Tensor>& inputs, int partitions) const {
  const int n = static_cast<int>(inputs.size());
  const size_t elements = inputs[0].size();
  const auto ranges = MakePartitions(elements, partitions);

  std::vector<Tensor> outputs(n);
  for (int w = 0; w < n; ++w) {
    outputs[w] = Tensor(inputs[w].name(), elements);
  }

  // Scratch reused across every partition: one aggregation buffer and one
  // wire payload, drawn from the pool once per run.
  Workspace ws(pool_);
  PooledFloats aggregate = ws.floats(0);
  ByteBuffer wire(ws.pool());

  for (size_t p = 0; p < ranges.size(); ++p) {
    const auto [offset, count] = ranges[p];
    if (count == 0) {
      continue;
    }
    const int aggregator = static_cast<int>(p) % n;

    // Aggregate the co-located shard plus each worker's (compressed) push.
    aggregate.resize(count);
    const auto seed = inputs[aggregator].slice(offset, count);
    std::copy(seed.begin(), seed.end(), aggregate.begin());
    for (int w = 0; w < n; ++w) {
      if (w == aggregator) {
        continue;
      }
      const auto shard = inputs[w].slice(offset, count);
      if (codec_ != nullptr) {
        RETURN_IF_ERROR(codec_->Encode(shard, &wire));
        RETURN_IF_ERROR(codec_->DecodeAdd(wire, aggregate.span()));
      } else {
        for (size_t i = 0; i < count; ++i) {
          aggregate[i] += shard[i];
        }
      }
    }

    // Pull phase. Compressed: every replica — including the aggregator —
    // installs decode(encode(aggregate)) so replicas stay bit-identical.
    // Decode once into worker 0's slice, then replicate that result; the
    // wire payload is parsed exactly once regardless of worker count.
    if (codec_ != nullptr) {
      RETURN_IF_ERROR(
          codec_->Encode(std::span<const float>(aggregate.span()), &wire));
      const auto pulled = outputs[0].slice(offset, count);
      RETURN_IF_ERROR(codec_->Decode(wire, pulled));
      for (int w = 1; w < n; ++w) {
        std::copy(pulled.begin(), pulled.end(),
                  outputs[w].slice(offset, count).begin());
      }
    } else {
      for (int w = 0; w < n; ++w) {
        std::copy(aggregate.begin(), aggregate.end(),
                  outputs[w].slice(offset, count).begin());
      }
    }
  }
  return outputs;
}

StatusOr<std::vector<Tensor>> DataflowRunner::RunRing(
    const std::vector<Tensor>& inputs, int partitions) const {
  const int n = static_cast<int>(inputs.size());
  const size_t elements = inputs[0].size();
  const auto ranges = MakePartitions(elements, partitions);

  std::vector<Tensor> outputs(n);
  for (int w = 0; w < n; ++w) {
    outputs[w] = Tensor(inputs[w].name(), elements);
  }

  // Ping-pong hop buffers and the wire payload, reused across chunks.
  Workspace ws(pool_);
  PooledFloats value = ws.floats(0);
  PooledFloats next = ws.floats(0);
  ByteBuffer wire(ws.pool());

  for (size_t c = 0; c < ranges.size(); ++c) {
    const auto [offset, count] = ranges[c];
    if (count == 0) {
      continue;
    }
    const int start = static_cast<int>(c) % n;

    // Aggregation: the chunk value travels start -> start+1 -> ... with a
    // decode+merge+encode at every hop (data dependency chain).
    value.resize(count);
    const auto first = inputs[start].slice(offset, count);
    std::copy(first.begin(), first.end(), value.begin());
    for (int h = 1; h < n; ++h) {
      const int v = (start + h) % n;
      const auto local = inputs[v].slice(offset, count);
      if (codec_ != nullptr) {
        RETURN_IF_ERROR(
            codec_->Encode(std::span<const float>(value.span()), &wire));
        next.resize(count);
        std::copy(local.begin(), local.end(), next.begin());
        RETURN_IF_ERROR(codec_->DecodeAdd(wire, next.span()));
        std::swap(value, next);
      } else {
        for (size_t i = 0; i < count; ++i) {
          value[i] += local[i];
        }
      }
    }

    // Dissemination: encode once, forward the same buffer; every node
    // (including the final aggregator, for replica consistency) installs
    // the decoded value. Decoded once, then replicated.
    if (codec_ != nullptr) {
      RETURN_IF_ERROR(
          codec_->Encode(std::span<const float>(value.span()), &wire));
      const auto decoded = outputs[0].slice(offset, count);
      RETURN_IF_ERROR(codec_->Decode(wire, decoded));
      for (int w = 1; w < n; ++w) {
        std::copy(decoded.begin(), decoded.end(),
                  outputs[w].slice(offset, count).begin());
      }
    } else {
      for (int w = 0; w < n; ++w) {
        std::copy(value.begin(), value.end(),
                  outputs[w].slice(offset, count).begin());
      }
    }
  }
  return outputs;
}

StatusOr<std::vector<Tensor>> DataflowRunner::RunTree(
    const std::vector<Tensor>& inputs, int partitions) const {
  const int n = static_cast<int>(inputs.size());
  const size_t elements = inputs[0].size();
  const auto ranges = MakePartitions(elements, partitions);

  std::vector<Tensor> outputs(n);
  for (int w = 0; w < n; ++w) {
    outputs[w] = Tensor(inputs[w].name(), elements);
  }
  int rounds = 0;
  while ((1 << rounds) < n) {
    ++rounds;
  }

  // Per-logical-node partial aggregates and the wire payload: acquired
  // once per run, re-seeded for each partition.
  Workspace ws(pool_);
  std::vector<PooledFloats> partial;
  partial.reserve(n);
  for (int u = 0; u < n; ++u) {
    partial.emplace_back(ws.pool());
  }
  ByteBuffer wire(ws.pool());

  for (size_t p = 0; p < ranges.size(); ++p) {
    const auto [offset, count] = ranges[p];
    if (count == 0) {
      continue;
    }
    const int root = static_cast<int>(p) % n;
    auto node = [&](int logical) { return (logical + root) % n; };

    // Seed the partials with the local shards.
    for (int u = 0; u < n; ++u) {
      const auto shard = inputs[node(u)].slice(offset, count);
      partial[u].resize(count);
      std::copy(shard.begin(), shard.end(), partial[u].begin());
    }

    // Reduce: each round, odd-subtree owners push (compressed) to their
    // parents, which decode+merge.
    for (int r = 0; r < rounds; ++r) {
      const int stride = 1 << r;
      for (int u = stride; u < n; u += 2 * stride) {
        const int v = u - stride;
        if (codec_ != nullptr) {
          RETURN_IF_ERROR(codec_->Encode(
              std::span<const float>(partial[u].span()), &wire));
          RETURN_IF_ERROR(codec_->DecodeAdd(wire, partial[v].span()));
        } else {
          for (size_t i = 0; i < count; ++i) {
            partial[v][i] += partial[u][i];
          }
        }
      }
    }

    // Broadcast: every replica installs decode(encode(aggregate)) so all
    // nodes stay bit-identical (compressed), or the exact sum (raw). The
    // compressed payload is decoded once, then replicated.
    if (codec_ != nullptr) {
      RETURN_IF_ERROR(
          codec_->Encode(std::span<const float>(partial[0].span()), &wire));
      const auto decoded = outputs[0].slice(offset, count);
      RETURN_IF_ERROR(codec_->Decode(wire, decoded));
      for (int w = 1; w < n; ++w) {
        std::copy(decoded.begin(), decoded.end(),
                  outputs[w].slice(offset, count).begin());
      }
    } else {
      for (int w = 0; w < n; ++w) {
        std::copy(partial[0].begin(), partial[0].end(),
                  outputs[w].slice(offset, count).begin());
      }
    }
  }
  return outputs;
}

}  // namespace hipress
