#include "src/casync/adaptive.h"

#include <algorithm>
#include <limits>

#include "src/common/logging.h"
#include "src/common/string_util.h"

namespace hipress {

AdaptiveController::AdaptiveController(
    const SyncConfig& config, const AdaptiveOptions& options,
    std::vector<uint64_t> unit_bytes, std::vector<AdaptiveCodecOption> codecs)
    : config_(config),
      options_(options),
      unit_bytes_(std::move(unit_bytes)),
      codecs_(std::move(codecs)) {
  CHECK(config_.compression && config_.secopa)
      << "adaptive re-planning drives the SeCoPa cutoffs; it requires "
         "compression with SeCoPa enabled";
  CHECK(!codecs_.empty()) << "need at least the configured codec";
  CHECK(!unit_bytes_.empty()) << "nothing to plan";
  // Price against the real path: under an oversubscribed fat tree the
  // fair-share fabric bandwidth, not the NIC rate, bounds steady traffic.
  nominal_bps_ = config_.net.effective_bandwidth().bytes_per_second();
  estimate_bps_ = nominal_bps_;
  // The initial plan is exactly the fixed plan: rung 0 priced at the
  // configured link bandwidth.
  Replan(0, nominal_bps_);
}

int AdaptiveController::Replan(size_t codec, double bytes_per_second) {
  const AdaptiveCodecOption& option = codecs_[codec];
  const SeCoPaPlanner planner =
      SeCoPaPlanner(config_, option.rate, option.speed)
          .WithBandwidth(Bandwidth{bytes_per_second * 8.0});
  int changed = 0;
  plans_.resize(unit_bytes_.size());
  for (size_t i = 0; i < unit_bytes_.size(); ++i) {
    const SyncPlan plan = planner.Plan(unit_bytes_[i]);
    GradientSync sync;
    sync.id = static_cast<uint32_t>(i);
    sync.bytes = unit_bytes_[i];
    sync.compress = plan.compress;
    sync.partitions = plan.partitions;
    sync.rate = option.rate;
    GradientSync& active = plans_[i];
    if (active.bytes != sync.bytes || active.compress != sync.compress ||
        active.partitions != sync.partitions || active.rate != sync.rate) {
      active = sync;
      ++changed;
    }
    active.id = sync.id;
  }
  active_codec_ = codec;
  planned_bps_ = bytes_per_second;
  planned_gbps_ = bytes_per_second * 8.0 / 1e9;
  return changed;
}

bool AdaptiveController::OnMembershipChange(int num_nodes) {
  CHECK_GT(num_nodes, 0);
  if (num_nodes == config_.num_nodes) {
    return false;
  }
  config_.num_nodes = num_nodes;
  // Re-price every unit over the new view with the active codec at the
  // bandwidth the current plan was built with: the SeCoPa cost terms and
  // the 2N partition cap changed underneath the plan, so the old plan is
  // stale regardless of performance signals.
  Replan(active_codec_, planned_bps_);
  // Streaks were evidence about the old membership; a running cooldown
  // stays — this was not a performance decision.
  tighten_streak_ = 0;
  relax_streak_ = 0;
  return true;
}

SimTime AdaptiveController::TotalPlannedCost(
    const SeCoPaPlanner& planner) const {
  SimTime total = 0;
  for (const uint64_t bytes : unit_bytes_) {
    const SyncPlan plan = planner.Plan(bytes);
    total += plan.compress ? plan.t_compressed : plan.t_plain;
  }
  return total;
}

AdaptiveDecision AdaptiveController::Observe(int iteration,
                                             const CpAttribution& attribution,
                                             const CostModelAuditor& auditor) {
  AdaptiveDecision decision;
  decision.iteration = iteration;
  decision.send_share = attribution.Share(CpCategory::kSend);

  // Windowed effective-bandwidth estimate over the send samples recorded
  // since the previous Observe: prefer the least-squares slope (immune to
  // per-message overheads), fall back to aggregate bytes/second when the
  // window's byte sizes are degenerate, and keep the previous estimate
  // when the window is too thin to trust.
  const CostSampleStats snapshot = auditor.Snapshot(CostPrimitive::kSend);
  const CostSampleStats window = snapshot.Since(last_send_snapshot_);
  last_send_snapshot_ = snapshot;
  if (window.count >= options_.min_send_samples) {
    KernelCost fitted;
    double estimate = window.Fit(&fitted) ? fitted.bytes_per_second
                                          : window.MeanThroughput();
    if (estimate > 0) {
      estimate_bps_ =
          std::clamp(estimate, options_.min_bandwidth_fraction * nominal_bps_,
                     nominal_bps_);
    }
  }
  decision.observed_gbps = estimate_bps_ * 8.0 / 1e9;

  // Hysteresis: both the share watermark and the bandwidth delta must
  // agree, in the same direction, for `trigger_iterations` in a row.
  const bool wire_slow =
      estimate_bps_ <= planned_bps_ * (1.0 - options_.min_bandwidth_change);
  const bool wire_fast =
      estimate_bps_ >= planned_bps_ * (1.0 + options_.min_bandwidth_change);
  tighten_streak_ =
      (decision.send_share >= options_.send_share_high && wire_slow)
          ? tighten_streak_ + 1
          : 0;
  relax_streak_ = (decision.send_share <= options_.send_share_low && wire_fast)
                      ? relax_streak_ + 1
                      : 0;

  if (cooldown_left_ > 0) {
    --cooldown_left_;
    decision.reason = "cooldown";
  } else if (tighten_streak_ >= options_.trigger_iterations ||
             relax_streak_ >= options_.trigger_iterations) {
    const bool tighten = tighten_streak_ >= options_.trigger_iterations;
    const double target_bps = estimate_bps_;
    // Reprice the whole ladder at the observed bandwidth and take the
    // cheapest rung; ties keep the lower index (deterministic).
    size_t best = active_codec_;
    SimTime best_cost = std::numeric_limits<SimTime>::max();
    for (size_t c = 0; c < codecs_.size(); ++c) {
      const SeCoPaPlanner planner =
          SeCoPaPlanner(config_, codecs_[c].rate, codecs_[c].speed)
              .WithBandwidth(Bandwidth{target_bps * 8.0});
      const SimTime cost = TotalPlannedCost(planner);
      if (cost < best_cost) {
        best = c;
        best_cost = cost;
      }
    }
    decision.codec_switched = best != active_codec_;
    decision.replanned_units = Replan(best, target_bps);
    decision.replanned =
        decision.codec_switched || decision.replanned_units > 0;
    decision.reason = StrFormat(
        "%s: send_share=%.4f observed=%.3fGbps streak=%d",
        tighten ? "tighten" : "relax", decision.send_share,
        decision.observed_gbps, tighten ? tighten_streak_ : relax_streak_);
    // Every trigger starts a cooldown — including no-op re-pricings, so a
    // boundary-riding signal cannot re-evaluate the ladder every iteration.
    cooldown_left_ = options_.cooldown_iterations;
    tighten_streak_ = 0;
    relax_streak_ = 0;
    if (decision.replanned) {
      ++replans_;
    }
    if (decision.codec_switched) {
      ++codec_switches_;
    }
  } else {
    decision.reason = "hold";
  }

  decision.algorithm = codecs_[active_codec_].algorithm;
  decision.planned_gbps = planned_gbps_;
  decision.compressed_units = 0;
  for (const GradientSync& plan : plans_) {
    if (plan.compress) {
      ++decision.compressed_units;
    }
  }
  decisions_.push_back(decision);
  return decision;
}

std::string AdaptiveController::DecisionLog() const {
  std::string log;
  for (const AdaptiveDecision& d : decisions_) {
    log += StrFormat(
        "iter=%d codec=%s send_share=%.4f observed_gbps=%.3f "
        "planned_gbps=%.3f replanned=%d switched=%d changed=%d "
        "compressed=%d reason=%s\n",
        d.iteration, d.algorithm.c_str(), d.send_share, d.observed_gbps,
        d.planned_gbps, d.replanned ? 1 : 0, d.codec_switched ? 1 : 0,
        d.replanned_units, d.compressed_units, d.reason.c_str());
  }
  return log;
}

AdaptiveReport AdaptiveController::Report() const {
  AdaptiveReport report;
  report.enabled = true;
  report.replans = replans_;
  report.codec_switches = codec_switches_;
  report.final_algorithm = codecs_[active_codec_].algorithm;
  report.decisions = decisions_;
  report.decision_log = DecisionLog();
  return report;
}

}  // namespace hipress
