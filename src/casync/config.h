// Synchronization configuration shared by the CaSync engine, graph
// builders, the SeCoPa planner, and the strategy presets.
//
// One struct expresses the whole design space of Section 6.3's ablation:
// baselines are CaSync configurations with optimizations switched off
// (Default -> +compression -> +pipelining -> +bulk -> +SeCoPa).
#ifndef HIPRESS_SRC_CASYNC_CONFIG_H_
#define HIPRESS_SRC_CASYNC_CONFIG_H_

#include <string>

#include "src/compress/compressor.h"
#include "src/compress/speed_profile.h"
#include "src/net/network.h"
#include "src/net/reliable_channel.h"

namespace hipress {

enum class StrategyKind {
  kPs,    // parameter-server bipartite graph (aggregators co-located)
  kRing,  // logical ring
  kTree,  // binomial tree reduce + broadcast (generality demonstration)
};

const char* StrategyKindName(StrategyKind kind);

struct SyncConfig {
  StrategyKind strategy = StrategyKind::kPs;
  int num_nodes = 16;

  // --- compression ------------------------------------------------------
  bool compression = false;
  std::string algorithm = "onebit";
  CodecImpl codec_impl = CodecImpl::kCompLL;
  CompressorParams codec_params;

  // --- CaSync optimizations (Figure 11 ablation axes) --------------------
  // Overlap compression kernels with communication. Off models the OSS
  // co-designs where encode/decode serialize against transfers.
  bool pipelining = true;
  // When pipelining is off: whether codec kernels additionally contend
  // with DNN computation on the device's main execution queue (the MXNet /
  // BytePS engine integration) rather than running on a side queue that
  // still overlaps backward (the TensorFlow allreduce path).
  bool codec_on_compute_stream = true;
  // Coordinated bulk communication (Section 3.2): batch small messages per
  // link with balanced sizes.
  bool bulk = true;
  // Selective compression and partitioning (Section 3.3). Off compresses
  // every gradient and uses fixed_partitions.
  bool secopa = true;
  int fixed_partitions = 1;

  // --- baseline-fidelity knobs -------------------------------------------
  // Extra per-message copy overhead on the sync path (BytePS's extra memory
  // copies, Section 6.3 "pipelining" discussion).
  SimTime extra_copy_overhead = 0;
  // Ring gradient fusion-buffer bytes (Horovod batching); CaSync-Ring uses
  // per-gradient rings instead. 0 disables fusion.
  uint64_t ring_fusion_bytes = 0;
  // Horovod executes collectives in a fixed order on a single stream: a
  // bucket's allreduce cannot start until the previous one finished. CaSync
  // lifts this by scheduling per-gradient task graphs concurrently.
  bool sequential_collectives = false;
  // Horovod's per-tensor negotiation (readiness coordination through the
  // master) costs a fixed slice per gradient in a bucket; it dominates for
  // many-gradient NLP models (Table 1's low Ring scaling efficiencies).
  SimTime per_gradient_negotiation = 0;
  // BytePS-style partition size for PS strategies when SeCoPa is off.
  uint64_t ps_partition_bytes = 4 * kMiB;

  // --- bulk coordinator tuning -------------------------------------------
  uint64_t bulk_size_threshold = 8 * kMiB;
  SimTime bulk_timeout = FromMicros(150.0);

  // --- fault tolerance ----------------------------------------------------
  // Route sync-path transfers through the ack/retry/backoff ReliableChannel
  // (docs/FAULT_TOLERANCE.md). Engaged automatically whenever fault
  // injection is configured (net.faults); set it explicitly to pay the ack
  // overhead even on a perfect network.
  bool reliable_transport = false;
  ReliableTransportConfig reliable;

  // --- platform -----------------------------------------------------------
  GpuPlatform platform = GpuPlatform::kV100;
  NetworkConfig net;
  int gpus_per_node = 8;
  // Intra-node interconnect for local aggregation (NVLink ~150 GB/s on the
  // EC2 nodes, PCIe ~10 GB/s on the local 1080 Ti nodes).
  double intra_node_bytes_per_sec = 150e9;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_CASYNC_CONFIG_H_
