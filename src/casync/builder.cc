#include "src/casync/builder.h"

#include <algorithm>

#include "src/common/logging.h"

namespace hipress {
namespace {

uint64_t WireBytes(uint64_t partition_bytes, const GradientSync& gradient) {
  if (!gradient.compress) {
    return partition_bytes;
  }
  const auto compressed = static_cast<uint64_t>(
      static_cast<double>(partition_bytes) * gradient.rate);
  return std::max(compressed, kMinWireBytes);
}

SyncTask MakeTask(PrimitiveType type, int node, uint64_t bytes,
                  uint32_t gradient_id, int peer = -1) {
  SyncTask task;
  task.type = type;
  task.node = node;
  task.peer = peer;
  task.bytes = bytes;
  task.gradient_id = gradient_id;
  return task;
}

}  // namespace

void AppendSyncTasks(const SyncConfig& config, const GradientSync& gradient,
                     TaskGraph* graph) {
  switch (config.strategy) {
    case StrategyKind::kPs:
      AppendPsSyncTasks(config, gradient, graph);
      return;
    case StrategyKind::kRing:
      AppendRingSyncTasks(config, gradient, graph);
      return;
    case StrategyKind::kTree:
      AppendTreeSyncTasks(config, gradient, graph);
      return;
  }
}

void AppendSyncTasksOver(const SyncConfig& config, const GradientSync& gradient,
                         const std::vector<int>& nodes, TaskGraph* graph) {
  CHECK_GT(nodes.size(), 0u);
  SyncConfig degraded = config;
  degraded.num_nodes = static_cast<int>(nodes.size());
  GradientSync clamped = gradient;
  clamped.partitions = std::min(std::max(1, gradient.partitions),
                                degraded.num_nodes);
  const size_t first = graph->size();
  AppendSyncTasks(degraded, clamped, graph);
  // The builders emitted logical ids in [0, nodes.size()); map them onto the
  // surviving physical nodes.
  for (size_t id = first; id < graph->size(); ++id) {
    SyncTask& task = graph->task(static_cast<TaskId>(id));
    if (task.node >= 0) {
      task.node = nodes[task.node];
    }
    if (task.peer >= 0) {
      task.peer = nodes[task.peer];
    }
  }
}

void AppendPsSyncTasks(const SyncConfig& config, const GradientSync& gradient,
                       TaskGraph* graph) {
  const int n = config.num_nodes;
  CHECK_GT(n, 0);
  const int k = std::max(1, gradient.partitions);
  const uint64_t partition_bytes =
      std::max<uint64_t>(1, gradient.bytes / static_cast<uint64_t>(k));
  const uint64_t wire = WireBytes(partition_bytes, gradient);

  for (int p = 0; p < k; ++p) {
    // Aggregator assignment: spread partitions across nodes, offset by the
    // gradient id so different gradients load-balance (BytePS-style).
    const int aggregator = static_cast<int>((gradient.id + p) % n);

    // Aggregate-ready join point: all remote shards merged.
    const TaskId aggregate =
        graph->Add(MakeTask(PrimitiveType::kBarrier, aggregator,
                            partition_bytes, gradient.id));

    for (int w = 0; w < n; ++w) {
      if (w == aggregator) {
        // Co-located shard: merged locally, no network round trip
        // (Section 6.1's adjusted alpha = 2(N-1)).
        const TaskId local_merge = graph->Add(MakeTask(
            PrimitiveType::kMerge, aggregator, partition_bytes, gradient.id));
        graph->AddDep(local_merge, aggregate);
        continue;
      }
      TaskId head;
      if (gradient.compress) {
        const TaskId enc = graph->Add(MakeTask(
            PrimitiveType::kEncode, w, partition_bytes, gradient.id));
        head = enc;
      } else {
        head = kInvalidTask;
      }
      const TaskId send = graph->Add(MakeTask(PrimitiveType::kSend, w, wire,
                                              gradient.id, aggregator));
      if (head != kInvalidTask) {
        graph->AddDep(head, send);
      }
      const TaskId recv = graph->Add(MakeTask(
          PrimitiveType::kRecv, aggregator, wire, gradient.id));
      graph->AddDep(send, recv);
      if (gradient.compress) {
        // Fused decode+merge into the aggregate.
        const TaskId dec = graph->Add(MakeTask(
            PrimitiveType::kDecode, aggregator, partition_bytes, gradient.id));
        graph->AddDep(recv, dec);
        graph->AddDep(dec, aggregate);
      } else {
        const TaskId merge = graph->Add(MakeTask(
            PrimitiveType::kMerge, aggregator, partition_bytes, gradient.id));
        graph->AddDep(recv, merge);
        graph->AddDep(merge, aggregate);
      }
    }

    // Push the aggregate back to the workers.
    TaskId push_root = aggregate;
    if (gradient.compress) {
      const TaskId enc_back = graph->Add(MakeTask(
          PrimitiveType::kEncode, aggregator, partition_bytes, gradient.id));
      graph->AddDep(aggregate, enc_back);
      push_root = enc_back;
    }
    for (int w = 0; w < n; ++w) {
      if (w == aggregator) {
        continue;
      }
      const TaskId send = graph->Add(MakeTask(PrimitiveType::kSend, aggregator,
                                              wire, gradient.id, w));
      graph->AddDep(push_root, send);
      const TaskId recv =
          graph->Add(MakeTask(PrimitiveType::kRecv, w, wire, gradient.id));
      graph->AddDep(send, recv);
      if (gradient.compress) {
        const TaskId dec = graph->Add(MakeTask(
            PrimitiveType::kDecode, w, partition_bytes, gradient.id));
        graph->AddDep(recv, dec);
      }
    }
  }
}

void AppendRingSyncTasks(const SyncConfig& config,
                         const GradientSync& gradient, TaskGraph* graph) {
  const int n = config.num_nodes;
  CHECK_GT(n, 0);
  if (n == 1) {
    graph->Add(MakeTask(PrimitiveType::kBarrier, 0, gradient.bytes,
                        gradient.id));
    return;
  }
  const int k = std::max(1, gradient.partitions);
  const uint64_t chunk_bytes =
      std::max<uint64_t>(1, gradient.bytes / static_cast<uint64_t>(k));
  const uint64_t wire = WireBytes(chunk_bytes, gradient);

  for (int c = 0; c < k; ++c) {
    const int start = c % n;  // chunks start spread around the ring

    // ---------------- aggregation phase: N-1 hops ----------------------
    // prev_ready: the task after which node u's partially-aggregated chunk
    // value is available for forwarding.
    TaskId prev_ready = kInvalidTask;
    for (int h = 1; h < n; ++h) {
      const int u = (start + h - 1) % n;
      const int v = (start + h) % n;
      TaskId forward_root = prev_ready;
      if (gradient.compress) {
        // Data dependency: u can only encode after it has decoded and
        // merged its predecessor's chunk (Section 3.3).
        const TaskId enc = graph->Add(
            MakeTask(PrimitiveType::kEncode, u, chunk_bytes, gradient.id));
        if (prev_ready != kInvalidTask) {
          graph->AddDep(prev_ready, enc);
        }
        forward_root = enc;
      }
      const TaskId send = graph->Add(
          MakeTask(PrimitiveType::kSend, u, wire, gradient.id, v));
      if (forward_root != kInvalidTask) {
        graph->AddDep(forward_root, send);
      }
      const TaskId recv =
          graph->Add(MakeTask(PrimitiveType::kRecv, v, wire, gradient.id));
      graph->AddDep(send, recv);
      if (gradient.compress) {
        const TaskId dec = graph->Add(
            MakeTask(PrimitiveType::kDecode, v, chunk_bytes, gradient.id));
        graph->AddDep(recv, dec);
        prev_ready = dec;  // fused decode+merge
      } else {
        const TaskId merge = graph->Add(
            MakeTask(PrimitiveType::kMerge, v, chunk_bytes, gradient.id));
        graph->AddDep(recv, merge);
        prev_ready = merge;
      }
    }

    // ---------------- dissemination phase: N-1 hops ---------------------
    // The fully-aggregated chunk lives at f = start + N - 1. It is encoded
    // once; intermediate nodes forward the encoded buffer and decode in
    // parallel with the forwarding (gamma analysis: only the last decode is
    // on the critical path).
    const int final_node = (start + n - 1) % n;
    TaskId carry = prev_ready;
    if (gradient.compress) {
      const TaskId enc_final = graph->Add(MakeTask(
          PrimitiveType::kEncode, final_node, chunk_bytes, gradient.id));
      graph->AddDep(prev_ready, enc_final);
      carry = enc_final;
    }
    for (int g = 1; g < n; ++g) {
      const int u = (final_node + g - 1) % n;
      const int v = (final_node + g) % n;
      const TaskId send = graph->Add(
          MakeTask(PrimitiveType::kSend, u, wire, gradient.id, v));
      graph->AddDep(carry, send);
      const TaskId recv =
          graph->Add(MakeTask(PrimitiveType::kRecv, v, wire, gradient.id));
      graph->AddDep(send, recv);
      if (gradient.compress) {
        // Receiver's decode overlaps the onward forward (the forward
        // depends on recv, not on the decode).
        const TaskId dec = graph->Add(
            MakeTask(PrimitiveType::kDecode, v, chunk_bytes, gradient.id));
        graph->AddDep(recv, dec);
      }
      carry = recv;
    }
  }
}

void AppendTreeSyncTasks(const SyncConfig& config,
                         const GradientSync& gradient, TaskGraph* graph) {
  const int n = config.num_nodes;
  CHECK_GT(n, 0);
  if (n == 1) {
    graph->Add(MakeTask(PrimitiveType::kBarrier, 0, gradient.bytes,
                        gradient.id));
    return;
  }
  const int k = std::max(1, gradient.partitions);
  const uint64_t partition_bytes =
      std::max<uint64_t>(1, gradient.bytes / static_cast<uint64_t>(k));
  const uint64_t wire = WireBytes(partition_bytes, gradient);
  int rounds = 0;
  while ((1 << rounds) < n) {
    ++rounds;
  }

  for (int p = 0; p < k; ++p) {
    // Rotate the tree root per partition so no node hotspots.
    const int root = static_cast<int>((gradient.id + p) % n);
    auto node = [&](int logical) { return (logical + root) % n; };

    // ready[u]: task after which logical node u's partial aggregate is
    // current (kInvalidTask = the local gradient, available at launch).
    std::vector<TaskId> ready(n, kInvalidTask);

    // ---------------- reduce phase: log N rounds toward logical 0 -------
    for (int r = 0; r < rounds; ++r) {
      const int stride = 1 << r;
      for (int u = stride; u < n; u += 2 * stride) {
        const int v = u - stride;  // u sends its aggregate to v
        TaskId forward_root = ready[u];
        if (gradient.compress) {
          const TaskId enc = graph->Add(MakeTask(
              PrimitiveType::kEncode, node(u), partition_bytes, gradient.id));
          if (ready[u] != kInvalidTask) {
            graph->AddDep(ready[u], enc);
          }
          forward_root = enc;
        }
        const TaskId send = graph->Add(MakeTask(
            PrimitiveType::kSend, node(u), wire, gradient.id, node(v)));
        if (forward_root != kInvalidTask) {
          graph->AddDep(forward_root, send);
        }
        const TaskId recv = graph->Add(
            MakeTask(PrimitiveType::kRecv, node(v), wire, gradient.id));
        graph->AddDep(send, recv);
        const TaskId absorb = graph->Add(MakeTask(
            gradient.compress ? PrimitiveType::kDecode : PrimitiveType::kMerge,
            node(v), partition_bytes, gradient.id));
        graph->AddDep(recv, absorb);
        if (ready[v] != kInvalidTask) {
          // Merges into v's aggregate serialize with v's earlier rounds.
          graph->AddDep(ready[v], absorb);
        }
        ready[v] = absorb;
      }
    }

    // ---------------- broadcast phase: reverse rounds from logical 0 ----
    // carry[u]: the task holding the (encoded, when compressed) final
    // aggregate at logical node u, ready to forward.
    std::vector<TaskId> carry(n, kInvalidTask);
    if (gradient.compress) {
      const TaskId enc_root = graph->Add(MakeTask(
          PrimitiveType::kEncode, node(0), partition_bytes, gradient.id));
      if (ready[0] != kInvalidTask) {
        graph->AddDep(ready[0], enc_root);
      }
      carry[0] = enc_root;
    } else {
      carry[0] = ready[0];
    }
    for (int r = rounds - 1; r >= 0; --r) {
      const int stride = 1 << r;
      for (int v = 0; v + stride < n; v += 2 * stride) {
        const int u = v + stride;
        const TaskId send = graph->Add(MakeTask(
            PrimitiveType::kSend, node(v), wire, gradient.id, node(u)));
        if (carry[v] != kInvalidTask) {
          graph->AddDep(carry[v], send);
        }
        const TaskId recv = graph->Add(
            MakeTask(PrimitiveType::kRecv, node(u), wire, gradient.id));
        graph->AddDep(send, recv);
        if (gradient.compress) {
          // Decode overlaps onward forwarding (only recv gates the carry).
          const TaskId dec = graph->Add(MakeTask(
              PrimitiveType::kDecode, node(u), partition_bytes, gradient.id));
          graph->AddDep(recv, dec);
        }
        carry[u] = recv;
      }
    }
  }
}

}  // namespace hipress
