// Global coordinator for compression-aware bulk synchronization
// (Section 3.2, Figure 3).
//
// Nodes submit the metadata of pending transfers (source, destination,
// bytes); the coordinator maintains per-link queues and flushes each queue
// as one batched message, either when the queued bytes reach the size
// threshold or when the batch timeout expires — "whichever is met first".
// Link conflict avoidance falls out of the network model: every uplink and
// downlink is FIFO-serialized, so batched messages on disjoint links flow in
// parallel while same-link batches queue. The coordinator's own metadata
// traffic is not modelled; the paper measures it as negligible because it
// overlaps the previous batch's bulk transfer.
//
// Real-data transfers (EnqueueTransfer) ride the same queues with pooled
// payloads: the flush assembles one batch frame directly into a PooledBytes
// block drawn from the network's wire pool, and the size threshold rounds
// up to a whole BufferPool bucket so flushed frames land in a recycled
// block instead of a fresh heap allocation. See docs/COMMUNICATION.md.
#ifndef HIPRESS_SRC_CASYNC_COORDINATOR_H_
#define HIPRESS_SRC_CASYNC_COORDINATOR_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "src/common/buffer_pool.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/net/network.h"
#include "src/net/reliable_channel.h"
#include "src/sim/simulator.h"

namespace hipress {

// Batch frame layout (little-endian, positional):
//   u32 entry_count
//   per entry: u64 tag, u32 payload_len, payload bytes
// Entries map one-to-one onto the flushed transfers in enqueue order, so
// the receiver dispatches entry i to the i-th transfer's on_deliver.
// Metadata-only transfers batched alongside real ones carry len = 0.
//
// BatchFrameReader is the allocation-free cursor over such a frame. Like
// ByteBuffer::ReadAt, every read is bounds-checked: a truncated or
// corrupted frame is a programming error upstream (the coordinator built
// the frame it is now parsing) and aborts rather than reading out of
// bounds. Spans returned by Next() alias the frame.
class BatchFrameReader {
 public:
  explicit BatchFrameReader(std::span<const uint8_t> frame) : frame_(frame) {
    count_ = Read<uint32_t>();
  }

  uint32_t entry_count() const { return count_; }

  struct Entry {
    uint64_t tag = 0;
    std::span<const uint8_t> payload;
  };

  // Reads the next entry; CHECK-fails past entry_count() or on a frame too
  // short for its own headers/payload lengths.
  Entry Next() {
    CHECK_LT(read_, count_) << "BatchFrameReader::Next past the "
                            << count_ << " entries the frame declares";
    ++read_;
    Entry entry;
    entry.tag = Read<uint64_t>();
    const uint32_t len = Read<uint32_t>();
    CHECK(len <= frame_.size() - offset_)
        << "batch frame entry of " << len << " bytes at offset " << offset_
        << " overruns frame of " << frame_.size() << " bytes";
    entry.payload = frame_.subspan(offset_, len);
    offset_ += len;
    return entry;
  }

 private:
  template <typename T>
  T Read() {
    CHECK(sizeof(T) <= frame_.size() && offset_ <= frame_.size() - sizeof(T))
        << "batch frame read of " << sizeof(T) << " bytes at offset "
        << offset_ << " overruns frame of " << frame_.size() << " bytes";
    T value;
    std::memcpy(&value, frame_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  std::span<const uint8_t> frame_;
  size_t offset_ = 0;
  uint32_t count_ = 0;
  uint32_t read_ = 0;
};

class BulkCoordinator {
 public:
  // `metrics` (optional) receives batch/transfer counts, batch-size and
  // queueing-delay histograms ("coordinator.batches",
  // "coordinator.batch_bytes", "coordinator.queue_delay_us") plus the
  // bucket-padding counter ("coordinator.batch_bucket_waste_bytes");
  // `spans` (optional) receives one coordinator-round span per flushed
  // batch on the source node's track.
  //
  // `size_threshold` rounds up to the containing BufferPool bucket
  // (BucketCapacity), so a size-triggered flush produces a frame that fits
  // the recycled block a previous batch released — the wire path stops
  // allocating once every link has flushed once.
  BulkCoordinator(Simulator* sim, Network* net, uint64_t size_threshold,
                  SimTime timeout, MetricsRegistry* metrics = nullptr,
                  SpanCollector* spans = nullptr)
      : sim_(sim),
        net_(net),
        size_threshold_(BufferPool::BucketCapacity(size_threshold)),
        timeout_(timeout),
        spans_(spans) {
    if (metrics != nullptr) {
      batches_metric_ = &metrics->counter("coordinator.batches");
      transfers_metric_ = &metrics->counter("coordinator.transfers_batched");
      waste_metric_ = &metrics->counter("coordinator.batch_bucket_waste_bytes");
      batch_bytes_ = &metrics->histogram("coordinator.batch_bytes",
                                         HistogramBuckets::DefaultBytes());
      queue_delay_us_ = &metrics->histogram("coordinator.queue_delay_us");
    }
  }

  // Routes flushed batches through `channel` (reliable transport) instead
  // of the raw network; batch completions then carry the channel's Status,
  // including peer-failure reports. Must outlive the coordinator.
  void set_channel(ReliableChannel* channel) { channel_ = channel; }

  // Submits one transfer's metadata; `on_delivered` fires when the batch
  // containing it arrives at `dst`. Raw-network path only — the batch is
  // assumed delivered.
  void Enqueue(int src, int dst, uint64_t bytes,
               std::function<void()> on_delivered);

  // Status-aware variant: `on_complete` fires with OkStatus() on delivery,
  // or with the reliable channel's error (UNAVAILABLE peer) when the batch
  // could not be delivered.
  void EnqueueWithStatus(int src, int dst, uint64_t bytes,
                         std::function<void(const Status&)> on_complete);

  // Real-data variant: the transfer carries `payload` (pooled, refcounted)
  // through the batch frame to the receiver. `on_deliver` (optional) fires
  // at the receiver's delivery time with a span aliasing this transfer's
  // bytes inside the delivered frame; `on_complete` fires as in
  // EnqueueWithStatus. The coordinator holds the payload shared_ptr until
  // the flush has assembled the frame; the frame itself is a pooled block
  // that the reliable channel re-sends by reference on retransmit.
  void EnqueueTransfer(int src, int dst, uint64_t tag,
                       std::shared_ptr<PooledBytes> payload,
                       std::function<void(std::span<const uint8_t>)> on_deliver,
                       std::function<void(const Status&)> on_complete);

  // True when no link holds queued transfers awaiting a flush. The adaptive
  // controller's codec swap asserts this at iteration boundaries: a pending
  // batch would otherwise be priced under one codec and delivered under
  // another.
  bool Idle() const {
    for (const auto& [link, queue] : links_) {
      if (!queue.pending.empty()) {
        return false;
      }
    }
    return true;
  }

  uint64_t batches_sent() const { return batches_sent_; }
  uint64_t transfers_batched() const { return transfers_batched_; }
  // Bucket-rounded threshold actually in force (tests assert alignment).
  uint64_t size_threshold() const { return size_threshold_; }
  // Cumulative padding between flushed frames (or metadata batch bytes)
  // and the pool bucket each one occupies.
  uint64_t bucket_waste_bytes() const { return bucket_waste_bytes_; }

 private:
  struct Pending {
    uint64_t bytes;
    uint64_t tag = 0;
    std::shared_ptr<PooledBytes> payload;  // null for metadata-only
    std::function<void(std::span<const uint8_t>)> on_deliver;
    std::function<void(const Status&)> on_complete;
    SimTime enqueued_at = 0;
  };
  struct LinkQueue {
    std::vector<Pending> pending;
    uint64_t queued_bytes = 0;
    uint64_t flush_epoch = 0;  // invalidates stale timeout events
    SimTime first_enqueued_at = 0;
  };

  void EnqueuePending(int src, int dst, Pending pending);
  void Flush(int src, int dst);
  // Serializes `batch` into one pooled frame drawn from the network's wire
  // pool and fans delivered entries back out to each transfer's on_deliver.
  std::shared_ptr<PooledBytes> BuildFrame(const std::vector<Pending>& batch);
  static void DispatchFrame(const NetMessage& message,
                            std::vector<Pending>& batch);

  Simulator* sim_;
  Network* net_;
  ReliableChannel* channel_ = nullptr;
  uint64_t size_threshold_;
  SimTime timeout_;
  SpanCollector* spans_ = nullptr;
  Counter* batches_metric_ = nullptr;
  Counter* transfers_metric_ = nullptr;
  Counter* waste_metric_ = nullptr;
  Histogram* batch_bytes_ = nullptr;
  Histogram* queue_delay_us_ = nullptr;
  std::map<std::pair<int, int>, LinkQueue> links_;
  uint64_t batches_sent_ = 0;
  uint64_t transfers_batched_ = 0;
  uint64_t bucket_waste_bytes_ = 0;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_CASYNC_COORDINATOR_H_
