// Global coordinator for compression-aware bulk synchronization
// (Section 3.2, Figure 3).
//
// Nodes submit the metadata of pending transfers (source, destination,
// bytes); the coordinator maintains per-link queues and flushes each queue
// as one batched message, either when the queued bytes reach the size
// threshold or when the batch timeout expires — "whichever is met first".
// Link conflict avoidance falls out of the network model: every uplink and
// downlink is FIFO-serialized, so batched messages on disjoint links flow in
// parallel while same-link batches queue. The coordinator's own metadata
// traffic is not modelled; the paper measures it as negligible because it
// overlaps the previous batch's bulk transfer.
#ifndef HIPRESS_SRC_CASYNC_COORDINATOR_H_
#define HIPRESS_SRC_CASYNC_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/net/network.h"
#include "src/net/reliable_channel.h"
#include "src/sim/simulator.h"

namespace hipress {

class BulkCoordinator {
 public:
  // `metrics` (optional) receives batch/transfer counts, batch-size and
  // queueing-delay histograms ("coordinator.batches",
  // "coordinator.batch_bytes", "coordinator.queue_delay_us"); `spans`
  // (optional) receives one coordinator-round span per flushed batch on the
  // source node's track.
  BulkCoordinator(Simulator* sim, Network* net, uint64_t size_threshold,
                  SimTime timeout, MetricsRegistry* metrics = nullptr,
                  SpanCollector* spans = nullptr)
      : sim_(sim),
        net_(net),
        size_threshold_(size_threshold),
        timeout_(timeout),
        spans_(spans) {
    if (metrics != nullptr) {
      batches_metric_ = &metrics->counter("coordinator.batches");
      transfers_metric_ = &metrics->counter("coordinator.transfers_batched");
      batch_bytes_ = &metrics->histogram("coordinator.batch_bytes",
                                         HistogramBuckets::DefaultBytes());
      queue_delay_us_ = &metrics->histogram("coordinator.queue_delay_us");
    }
  }

  // Routes flushed batches through `channel` (reliable transport) instead
  // of the raw network; batch completions then carry the channel's Status,
  // including peer-failure reports. Must outlive the coordinator.
  void set_channel(ReliableChannel* channel) { channel_ = channel; }

  // Submits one transfer's metadata; `on_delivered` fires when the batch
  // containing it arrives at `dst`. Raw-network path only — the batch is
  // assumed delivered.
  void Enqueue(int src, int dst, uint64_t bytes,
               std::function<void()> on_delivered);

  // Status-aware variant: `on_complete` fires with OkStatus() on delivery,
  // or with the reliable channel's error (UNAVAILABLE peer) when the batch
  // could not be delivered.
  void EnqueueWithStatus(int src, int dst, uint64_t bytes,
                         std::function<void(const Status&)> on_complete);

  uint64_t batches_sent() const { return batches_sent_; }
  uint64_t transfers_batched() const { return transfers_batched_; }

 private:
  struct Pending {
    uint64_t bytes;
    std::function<void(const Status&)> on_complete;
    SimTime enqueued_at = 0;
  };
  struct LinkQueue {
    std::vector<Pending> pending;
    uint64_t queued_bytes = 0;
    uint64_t flush_epoch = 0;  // invalidates stale timeout events
    SimTime first_enqueued_at = 0;
  };

  void Flush(int src, int dst);

  Simulator* sim_;
  Network* net_;
  ReliableChannel* channel_ = nullptr;
  uint64_t size_threshold_;
  SimTime timeout_;
  SpanCollector* spans_ = nullptr;
  Counter* batches_metric_ = nullptr;
  Counter* transfers_metric_ = nullptr;
  Histogram* batch_bytes_ = nullptr;
  Histogram* queue_delay_us_ = nullptr;
  std::map<std::pair<int, int>, LinkQueue> links_;
  uint64_t batches_sent_ = 0;
  uint64_t transfers_batched_ = 0;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_CASYNC_COORDINATOR_H_
