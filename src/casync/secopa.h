// SeCoPa — selective compression and partitioning (Section 3.3).
//
// Implements the paper's cost model verbatim:
//
//   T_sync_orig(m, K) = alpha * T_send(m/K)                          (Eq. 1)
//   T_sync_cpr(m, K)  = alpha * T_send(r * m/K)
//                     + beta * T_enc(m/K) + gamma * T_dec(m/K)       (Eq. 2)
//
// with the Table 3 coefficients. As deployed in Section 6.1 (aggregators
// co-located with workers), CaSync-PS uses alpha = 2(N-1), beta = K,
// gamma = N; CaSync-Ring uses alpha = 2(N-1), beta = N, gamma = N. For
// K > N the K partitions are grouped into ceil(K/N) serial batches.
//
// The planner scans K and decides, per gradient, whether compression pays
// and how many partitions to use — producing the <compress?, K> plans of
// Table 7. All inputs (T_enc/T_dec curves, compression rate r, network
// timing) come from the same profiles the simulator executes with, matching
// the paper's profile-on-first-iteration approach.
#ifndef HIPRESS_SRC_CASYNC_SECOPA_H_
#define HIPRESS_SRC_CASYNC_SECOPA_H_

#include <memory>

#include "src/casync/config.h"
#include "src/compress/compressor.h"
#include "src/compress/speed_profile.h"

namespace hipress {

struct SyncPlan {
  bool compress = false;
  int partitions = 1;
  SimTime t_plain = 0;       // best no-compression cost
  int plain_partitions = 1;  // K achieving t_plain
  SimTime t_compressed = 0;  // best with-compression cost
};

class SeCoPaPlanner {
 public:
  // `config` supplies strategy, node count, network timing, and codec;
  // `rate` is the codec's compression rate r (compressed/original bytes).
  SeCoPaPlanner(const SyncConfig& config, double rate);

  // Recalibration path: plan with explicit T_enc/T_dec lines instead of
  // the static speed profile — typically CostModelAuditor::Fit() output,
  // so drifted calibration can be refreshed from measured runs
  // (docs/COST_MODEL.md).
  SeCoPaPlanner(const SyncConfig& config, double rate,
                const CodecSpeed& codec);

  // The T_enc/T_dec lines this planner prices with.
  const CodecSpeed& codec_speed() const { return codec_; }

  // Incremental re-plan paths (runtime adaptation, docs/ADAPTIVE.md):
  // derive a planner identical to this one except for the wire term's
  // bandwidth, or the codec's rate and T_enc/T_dec lines. Cheap — no
  // profile lookup — so the adaptive controller can reprice every gradient
  // at each decision boundary; the task-graph builders consume the
  // refreshed <compress?, K> plans unchanged.
  SeCoPaPlanner WithBandwidth(Bandwidth bandwidth) const;
  SeCoPaPlanner WithCodec(double rate, const CodecSpeed& codec) const;

  // Cost of synchronizing an m-byte gradient in K partitions, per Eq. 1/2.
  SimTime SyncCostPlain(uint64_t bytes, int partitions) const;
  SimTime SyncCostCompressed(uint64_t bytes, int partitions) const;

  // Full per-gradient decision. max_partitions defaults to 2N.
  SyncPlan Plan(uint64_t bytes) const;
  SyncPlan Plan(uint64_t bytes, int max_partitions) const;

  double rate() const { return rate_; }

 private:
  double Alpha() const;
  double Beta(int partitions) const;
  double Gamma() const;
  SimTime SendTime(double bytes) const;

  SyncConfig config_;
  double rate_;
  CodecSpeed codec_;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_CASYNC_SECOPA_H_
