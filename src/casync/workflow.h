// Workflow introspection (Figure 2's per-role workflow specifications).
//
// The task manager executes whatever the builders emit; these helpers
// render, for a given strategy and node role, the sequence of primitives a
// node runs for one gradient — the human-readable form of the workflow the
// paper's task manager "consults". Used by tooling and docs; tests pin the
// descriptions to the builders' actual task counts.
#ifndef HIPRESS_SRC_CASYNC_WORKFLOW_H_
#define HIPRESS_SRC_CASYNC_WORKFLOW_H_

#include <string>

#include "src/casync/config.h"

namespace hipress {

enum class NodeRole {
  kWorker,
  kAggregator,
  kBoth,  // ring/tree nodes and co-located PS deployments
};

const char* NodeRoleName(NodeRole role);

// Role a node plays under the strategy (co-located PS => kBoth).
NodeRole RoleOf(const SyncConfig& config, int node);

// One-line workflow for the role, e.g. for a compressed PS worker:
//   "encode -> send(aggregator) | recv(aggregator) -> decode".
std::string DescribeWorkflow(const SyncConfig& config, NodeRole role,
                             bool compressed);

// Multi-line summary of the whole synchronization strategy (roles, steps,
// alpha/beta/gamma shape) for --explain style tooling.
std::string DescribeStrategy(const SyncConfig& config, bool compressed);

}  // namespace hipress

#endif  // HIPRESS_SRC_CASYNC_WORKFLOW_H_
