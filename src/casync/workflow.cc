#include "src/casync/workflow.h"

#include "src/common/string_util.h"

namespace hipress {

const char* NodeRoleName(NodeRole role) {
  switch (role) {
    case NodeRole::kWorker:
      return "worker";
    case NodeRole::kAggregator:
      return "aggregator";
    case NodeRole::kBoth:
      return "worker+aggregator";
  }
  return "unknown";
}

NodeRole RoleOf(const SyncConfig& config, int node) {
  // All shipped deployments co-locate roles (Section 6.1); a disaggregated
  // PS would return kWorker/kAggregator by node id here.
  (void)node;
  (void)config;
  return NodeRole::kBoth;
}

std::string DescribeWorkflow(const SyncConfig& config, NodeRole role,
                             bool compressed) {
  const char* enc = compressed ? "encode -> " : "";
  const char* dec = compressed ? " -> decode" : " -> merge";
  switch (config.strategy) {
    case StrategyKind::kPs:
      if (role == NodeRole::kWorker) {
        return StrFormat("%ssend(aggregator) | recv(aggregator)%s", enc,
                         compressed ? " -> decode" : "");
      }
      if (role == NodeRole::kAggregator) {
        return StrFormat(
            "recv(x%d workers)%s -> barrier -> %ssend(x%d workers)",
            config.num_nodes - 1, dec, enc, config.num_nodes - 1);
      }
      return StrFormat(
          "[worker] %ssend | [aggregator] recv%s -> barrier -> %ssend | "
          "[worker] recv%s",
          enc, dec, enc, compressed ? " -> decode" : "");
    case StrategyKind::kRing:
      return StrFormat(
          "x%d: recv(pred)%s -> %ssend(succ); then forward encoded "
          "aggregate x%d with overlapped decode",
          config.num_nodes - 1, dec, enc, config.num_nodes - 1);
    case StrategyKind::kTree:
      return StrFormat(
          "log2(%d) reduce rounds: recv(child)%s, %ssend(parent); "
          "then broadcast with overlapped decode",
          config.num_nodes, dec, enc);
  }
  return "unknown strategy";
}

std::string DescribeStrategy(const SyncConfig& config, bool compressed) {
  std::string out = StrFormat(
      "strategy %s over %d nodes (%s roles)\n", StrategyKindName(config.strategy),
      config.num_nodes, NodeRoleName(RoleOf(config, 0)));
  out += "  workflow: " +
         DescribeWorkflow(config, NodeRole::kBoth, compressed) + "\n";
  out += StrFormat(
      "  pipelining %s, bulk coordination %s, SeCoPa %s\n",
      config.pipelining ? "on" : "off", config.bulk ? "on" : "off",
      config.secopa ? "on" : "off");
  return out;
}

}  // namespace hipress
