// Functional dataflow runner: executes the same primitive chains the task
// graphs describe, but on real tensors with real codecs (no simulated
// timing). Integration tests use it to verify that
//
//  * the raw (no-compression) pipelines produce the exact element-wise sum
//    on every node, for both PS and Ring;
//  * compressed pipelines leave every replica bit-identical (all nodes end
//    with decode(encode(aggregate)), so training stays consistent); and
//  * quantized results stay within the codec's reconstruction bounds.
//
// This is the "verify the correctness of the implemented algorithms"
// property Section 2.5 says the OSS co-designs make hard.
#ifndef HIPRESS_SRC_CASYNC_DATAFLOW_H_
#define HIPRESS_SRC_CASYNC_DATAFLOW_H_

#include <vector>

#include "src/casync/config.h"
#include "src/common/buffer_pool.h"
#include "src/common/status.h"
#include "src/compress/compressor.h"
#include "src/tensor/tensor.h"

namespace hipress {

class DataflowRunner {
 public:
  // `codec` may be null for raw synchronization. Scratch (aggregation
  // buffers, wire payloads) is drawn from `pool` — the global pool by
  // default — and reused across partitions within a run, so steady-state
  // runs allocate nothing. Both must outlive the runner.
  DataflowRunner(StrategyKind strategy, const Compressor* codec,
                 BufferPool* pool = &BufferPool::Global())
      : strategy_(strategy), codec_(codec), pool_(pool) {}

  // Synchronizes inputs (one gradient per worker, equal sizes); returns the
  // per-worker results after the full push/pull or ring traversal.
  StatusOr<std::vector<Tensor>> Run(const std::vector<Tensor>& inputs,
                                    int partitions) const;

 private:
  StatusOr<std::vector<Tensor>> RunPs(const std::vector<Tensor>& inputs,
                                      int partitions) const;
  StatusOr<std::vector<Tensor>> RunRing(const std::vector<Tensor>& inputs,
                                        int partitions) const;
  StatusOr<std::vector<Tensor>> RunTree(const std::vector<Tensor>& inputs,
                                        int partitions) const;

  StrategyKind strategy_;
  const Compressor* codec_;
  BufferPool* pool_;
};

}  // namespace hipress

#endif  // HIPRESS_SRC_CASYNC_DATAFLOW_H_
