#include "src/compll/dsl_compressor.h"

#include <cstring>

#include "src/common/rng.h"
#include "src/compll/analyzer.h"
#include "src/compll/parser.h"
#include "src/compress/registry.h"
#include "src/tensor/tensor.h"

namespace hipress::compll {
namespace {

constexpr size_t kProbeElements = 4096;

}  // namespace

DslCompressor::DslCompressor(std::string name, bool is_sparse,
                             CompressorParams params,
                             std::unique_ptr<Program> program)
    : name_(std::move(name)),
      is_sparse_(is_sparse),
      params_(params),
      program_(std::move(program)) {
  interpreter_ = std::make_unique<Interpreter>(program_.get(), params_.seed);
  RegisterStandardExtensions(*interpreter_);
}

StatusOr<std::unique_ptr<DslCompressor>> DslCompressor::Create(
    std::string name, const std::string& source, bool is_sparse,
    const CompressorParams& params) {
  ASSIGN_OR_RETURN(Program parsed, ParseProgram(source));
  if (parsed.FindFunction("encode") == nullptr) {
    return InvalidArgumentError("DSL program lacks an encode function");
  }
  if (parsed.FindFunction("decode") == nullptr) {
    return InvalidArgumentError("DSL program lacks a decode function");
  }
  // Static validation first: authors get every diagnostic at once instead
  // of the interpreter's first runtime error.
  RETURN_IF_ERROR(ValidateProgram(parsed));
  auto program = std::make_unique<Program>(std::move(parsed));
  std::unique_ptr<DslCompressor> compressor(
      new DslCompressor(std::move(name), is_sparse, params,
                        std::move(program)));

  // Probe the rate with a small Gaussian gradient: run a full round trip so
  // a broken program fails fast at Create time, not deep inside training.
  Rng rng(params.seed);
  Tensor probe("probe", kProbeElements);
  probe.FillGaussian(rng);
  ByteBuffer encoded;
  RETURN_IF_ERROR(compressor->Encode(probe.span(), &encoded));
  std::vector<float> decoded(kProbeElements, 0.0f);
  RETURN_IF_ERROR(compressor->Decode(encoded, decoded));
  compressor->probed_rate_ =
      static_cast<double>(encoded.size()) /
      static_cast<double>(kProbeElements * sizeof(float));
  return compressor;
}

StatusOr<std::unique_ptr<DslCompressor>> DslCompressor::CreateBuiltin(
    const std::string& algorithm, const CompressorParams& params) {
  const DslAlgorithm* entry = FindDslAlgorithm(algorithm);
  if (entry == nullptr) {
    return NotFoundError("no built-in DSL algorithm named " + algorithm);
  }
  return Create(entry->name, entry->source, entry->is_sparse, params);
}

StatusOr<ParamBindings> DslCompressor::BindParams(
    const std::string& block_name) const {
  ParamBindings bindings;
  const ParamBlock* block = program_->FindParamBlock(block_name);
  if (block == nullptr) {
    return bindings;  // parameterless algorithm
  }
  for (const Field& field : block->fields) {
    if (field.name == "bitwidth") {
      bindings[field.name] = static_cast<double>(params_.bitwidth);
    } else if (field.name == "threshold") {
      bindings[field.name] = static_cast<double>(params_.threshold);
    } else if (field.name == "ratio") {
      bindings[field.name] = params_.sparsity_ratio;
    } else if (field.name == "seed") {
      bindings[field.name] = static_cast<double>(params_.seed);
    } else {
      return InvalidArgumentError(
          "no CompressorParams binding for DSL param field '" + field.name +
          "'");
    }
  }
  return bindings;
}

StatusOr<size_t> DslCompressor::EncodeInto(std::span<const float> gradient,
                                           std::span<uint8_t> out) const {
  ASSIGN_OR_RETURN(ParamBindings bindings, BindParams("EncodeParams"));
  std::lock_guard<std::mutex> lock(mutex_);
  ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                   interpreter_->RunEncode(gradient, bindings));
  // Wrapper framing: element count header, then the DSL payload.
  const size_t needed = kCountHeaderBytes + payload.size();
  if (out.size() < needed) {
    return ResourceExhaustedError("dsl: output capacity too small");
  }
  const uint32_t count = static_cast<uint32_t>(gradient.size());
  std::memcpy(out.data(), &count, sizeof(count));
  std::memcpy(out.data() + kCountHeaderBytes, payload.data(),
              payload.size());
  return needed;
}

Status DslCompressor::Decode(const ByteBuffer& in,
                             std::span<float> out) const {
  if (in.size() < kCountHeaderBytes) {
    return InvalidArgumentError("dsl: buffer shorter than header");
  }
  size_t offset = 0;
  const uint32_t count = in.ReadAt<uint32_t>(offset);
  if (out.size() != count) {
    return InvalidArgumentError("dsl: output size mismatch");
  }
  ASSIGN_OR_RETURN(ParamBindings bindings, BindParams("DecodeParams"));
  std::lock_guard<std::mutex> lock(mutex_);
  std::span<const uint8_t> payload(in.data() + kCountHeaderBytes,
                                   in.size() - kCountHeaderBytes);
  ASSIGN_OR_RETURN(std::vector<float> decoded,
                   interpreter_->RunDecode(payload, bindings));
  // Sub-byte packing rounds the element count up to a whole byte; drop the
  // slack.
  if (decoded.size() < count) {
    return InvalidArgumentError("dsl: decode produced too few elements");
  }
  std::memcpy(out.data(), decoded.data(), count * sizeof(float));
  return OkStatus();
}

StatusOr<size_t> DslCompressor::EncodedElementCount(
    const ByteBuffer& in) const {
  if (in.size() < kCountHeaderBytes) {
    return InvalidArgumentError("dsl: buffer shorter than header");
  }
  size_t offset = 0;
  return static_cast<size_t>(in.ReadAt<uint32_t>(offset));
}

size_t DslCompressor::MaxEncodedSize(size_t elements) const {
  // Probed rate with 2x slack for sparse jitter, plus framing.
  const double bytes =
      static_cast<double>(elements * sizeof(float)) * probed_rate_;
  return kCountHeaderBytes + 64 +
         static_cast<size_t>(bytes * (is_sparse_ ? 2.0 : 1.05));
}

size_t DslCompressor::WorstCaseEncodedSize(size_t elements) const {
  // Hard bound for any built-in program: sparse algorithms emit at most one
  // (index, value) pair per element, dense ones at most 4 bytes/element. A
  // program exceeding this fails its Create-time probe rather than at
  // training time.
  return kCountHeaderBytes + 64 +
         elements * (sizeof(uint32_t) + sizeof(float));
}

double DslCompressor::CompressionRate(size_t elements) const {
  return probed_rate_;
}

Status DslCompressor::RegisterBuiltinsIntoRegistry() {
  for (const DslAlgorithm& entry : BuiltinDslAlgorithms()) {
    if (CompressorRegistry::Instance().Contains(entry.name)) {
      continue;
    }
    const DslAlgorithm* algorithm = &entry;
    RETURN_IF_ERROR(CompressorRegistry::Instance().Register(
        entry.name,
        [algorithm](const CompressorParams& params)
            -> std::unique_ptr<Compressor> {
          auto compressor =
              DslCompressor::Create(algorithm->name, algorithm->source,
                                    algorithm->is_sparse, params);
          if (!compressor.ok()) {
            return nullptr;
          }
          return std::move(compressor).value();
        }));
  }
  return OkStatus();
}

}  // namespace hipress::compll
