// The five state-of-the-art compression algorithms expressed in CompLL's
// DSL (Section 4.4, Table 5). TernGrad's encode follows the paper's Figure 5
// listing. The sparsification programs additionally use the registered
// extension operators findex/scatter/stride/gather on top of the Table 4
// built-ins, exercising the toolkit's extensibility path.
#ifndef HIPRESS_SRC_COMPLL_BUILTIN_ALGORITHMS_H_
#define HIPRESS_SRC_COMPLL_BUILTIN_ALGORITHMS_H_

#include <string>
#include <vector>

namespace hipress::compll {

struct DslAlgorithm {
  std::string name;     // registry name, e.g. "dsl-terngrad"
  std::string algorithm;  // base algorithm, e.g. "terngrad"
  const char* source;   // DSL program text
  bool is_sparse;
};

// All built-in DSL programs.
const std::vector<DslAlgorithm>& BuiltinDslAlgorithms();

// Lookup by base algorithm name ("onebit", "tbq", "terngrad", "dgc",
// "graddrop"); nullptr if unknown.
const DslAlgorithm* FindDslAlgorithm(const std::string& algorithm);

// Lines of code of a DSL program, counting non-empty, non-comment lines —
// the metric Table 5 reports.
int CountDslLines(const char* source);

}  // namespace hipress::compll

#endif  // HIPRESS_SRC_COMPLL_BUILTIN_ALGORITHMS_H_
