// CompLL DSL lexer. The language is a C subset (Section 4.3): identifiers,
// integer/float literals, the usual operators, and '\' line continuations as
// used in the paper's Figure 5 listing. '//' comments run to end of line.
#ifndef HIPRESS_SRC_COMPLL_LEXER_H_
#define HIPRESS_SRC_COMPLL_LEXER_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace hipress::compll {

enum class TokenKind {
  kIdentifier,
  kIntLiteral,
  kFloatLiteral,
  // Punctuation / operators.
  kLParen,     // (
  kRParen,     // )
  kLBrace,     // {
  kRBrace,     // }
  kLBracket,   // [
  kRBracket,   // ]
  kComma,      // ,
  kSemicolon,  // ;
  kDot,        // .
  kAssign,     // =
  kPlus,       // +
  kMinus,      // -
  kStar,       // *
  kSlash,      // /
  kPercent,    // %
  kLess,       // <
  kGreater,    // >
  kLessEq,     // <=
  kGreaterEq,  // >=
  kEqEq,       // ==
  kNotEq,      // !=
  kShl,        // <<
  kShr,        // >>
  kAmp,        // &
  kPipe,       // |
  kCaret,      // ^
  kAndAnd,     // &&
  kOrOr,       // ||
  kBang,       // !
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  double number = 0.0;  // for literals
  int line = 0;
  int column = 0;
};

const char* TokenKindName(TokenKind kind);

// Tokenizes `source`; returns a lexer error with line/column on bad input.
StatusOr<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace hipress::compll

#endif  // HIPRESS_SRC_COMPLL_LEXER_H_
