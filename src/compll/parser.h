// Recursive-descent parser for the CompLL DSL.
#ifndef HIPRESS_SRC_COMPLL_PARSER_H_
#define HIPRESS_SRC_COMPLL_PARSER_H_

#include <string>

#include "src/common/status.h"
#include "src/compll/ast.h"

namespace hipress::compll {

// Parses DSL source into a Program. Errors carry line numbers.
StatusOr<Program> ParseProgram(const std::string& source);

}  // namespace hipress::compll

#endif  // HIPRESS_SRC_COMPLL_PARSER_H_
