// Runtime values for the CompLL interpreter.
//
// Numeric scalars and arrays are carried as doubles regardless of declared
// DSL type (the declared type governs packing width and integer semantics);
// compressed payloads are byte buffers with a read cursor for stream-style
// extract<>() calls.
#ifndef HIPRESS_SRC_COMPLL_VALUE_H_
#define HIPRESS_SRC_COMPLL_VALUE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/compll/types.h"

namespace hipress::compll {

enum class ValueKind {
  kScalar,
  kArray,
  kBytes,
};

struct Value {
  ValueKind kind = ValueKind::kScalar;
  ScalarType elem_type = ScalarType::kFloat;

  double scalar = 0.0;
  std::shared_ptr<std::vector<double>> array;
  std::shared_ptr<std::vector<uint8_t>> bytes;
  // Read cursor (in bytes) for extract<>() over a kBytes value. Shared so
  // sequential extracts through the same buffer binding advance together.
  std::shared_ptr<size_t> cursor;

  static Value Scalar(ScalarType type, double v) {
    Value value;
    value.kind = ValueKind::kScalar;
    value.elem_type = type;
    value.scalar = v;
    return value;
  }

  static Value Float(double v) { return Scalar(ScalarType::kFloat, v); }
  static Value Int(long long v) {
    return Scalar(ScalarType::kInt32, static_cast<double>(v));
  }

  static Value Array(ScalarType elem, std::vector<double> data) {
    Value value;
    value.kind = ValueKind::kArray;
    value.elem_type = elem;
    value.array = std::make_shared<std::vector<double>>(std::move(data));
    return value;
  }

  static Value Bytes(std::vector<uint8_t> data) {
    Value value;
    value.kind = ValueKind::kBytes;
    value.elem_type = ScalarType::kUint8;
    value.bytes = std::make_shared<std::vector<uint8_t>>(std::move(data));
    value.cursor = std::make_shared<size_t>(0);
    return value;
  }

  bool is_scalar() const { return kind == ValueKind::kScalar; }
  bool is_array() const { return kind == ValueKind::kArray; }
  bool is_bytes() const { return kind == ValueKind::kBytes; }

  size_t size() const {
    if (is_array()) {
      return array ? array->size() : 0;
    }
    if (is_bytes()) {
      return bytes ? bytes->size() : 0;
    }
    return 0;
  }

  // Truncates toward zero, matching C integer conversion; used whenever a
  // value lands in an integer-typed slot.
  long long AsInt() const { return static_cast<long long>(scalar); }
  bool AsBool() const { return scalar != 0.0; }

  std::string DebugString() const;
};

// Clamps `v` to the representable range of `type` (wrap-around for uints,
// matching C conversion semantics for the packed types).
double CoerceToType(ScalarType type, double v);

}  // namespace hipress::compll

#endif  // HIPRESS_SRC_COMPLL_VALUE_H_
