// Tree-walking interpreter for CompLL DSL programs.
//
// The interpreter is the toolkit's reference backend: it executes encode()
// and decode() directly against float tensors, delegating bulk operator work
// to the common operator library. Tests cross-validate the C++ code
// generator and the hand-optimized native codecs against it. It is also how
// DSL-authored algorithms become usable Compressors at runtime (see
// DslCompressor) without a compile step.
//
// Extension operators can be registered by name, mirroring the paper's open
// operator library: the sparsification programs use three registered
// extensions (findex, scatter, stride) on top of Table 4's built-ins.
#ifndef HIPRESS_SRC_COMPLL_INTERPRETER_H_
#define HIPRESS_SRC_COMPLL_INTERPRETER_H_

#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/compll/ast.h"
#include "src/compll/operators.h"
#include "src/compll/value.h"

namespace hipress::compll {

// Scalar bindings for a `param` block, keyed by field name.
using ParamBindings = std::map<std::string, double>;

class Interpreter {
 public:
  // `program` must outlive the interpreter.
  explicit Interpreter(const Program* program, uint64_t seed = 0x5eed);

  // Extension operator: receives evaluated argument values.
  using ExtensionFn =
      std::function<StatusOr<Value>(std::vector<Value>& args)>;
  Status RegisterOperator(const std::string& name, ExtensionFn fn);

  // Runs the DSL `encode` function on `gradient`; returns the bytes the
  // program assigned to its compressed-output parameter.
  StatusOr<std::vector<uint8_t>> RunEncode(std::span<const float> gradient,
                                           const ParamBindings& params);

  // Runs the DSL `decode` function on `payload`; returns the floats the
  // program assigned to its gradient-output parameter. Sub-byte packing can
  // round the recovered length up; callers truncate to the true count.
  StatusOr<std::vector<float>> RunDecode(std::span<const uint8_t> payload,
                                         const ParamBindings& params);

  // Invokes an arbitrary DSL function with the given values (for tests).
  StatusOr<Value> CallFunction(const std::string& name,
                               std::vector<Value> args);

 private:
  struct ExecResult {
    bool returned = false;
    Value value;
  };

  // Entry-point plumbing shared by RunEncode / RunDecode: binds the two
  // array parameters plus optional param struct, runs the body, and returns
  // the final binding of the output parameter.
  StatusOr<Value> RunEntry(const std::string& fn_name, Value input,
                           Value output_seed, const ParamBindings& params);

  StatusOr<ExecResult> ExecBlock(const std::vector<StmtPtr>& body);
  StatusOr<ExecResult> ExecStmt(const Stmt& stmt);
  StatusOr<Value> Eval(const Expr& expr);
  StatusOr<Value> EvalCall(const CallExpr& call);
  StatusOr<Value> EvalBinary(const BinaryExpr& expr);
  StatusOr<Value> EvalBuiltinMath(const CallExpr& call,
                                  std::vector<Value>& args);

  // Variable lookup/assignment through the scope chain then globals.
  Value* FindVar(const std::string& name);
  Status AssignVar(const std::string& name, Value value, int line);

  Status ErrorAt(int line, const std::string& message) const;

  const Program* program_;
  uint64_t seed_;
  uint64_t random_counter_ = 0;

  std::map<std::string, Value> globals_;
  // One scope per active function call (innermost last).
  std::vector<std::map<std::string, Value>> scopes_;
  // Param-struct bindings visible as `<var>.<field>`, per scope depth; the
  // block name recovers each field's declared type (a uint8 field written
  // to the wire must occupy one byte, not a float's four).
  struct BoundParams {
    std::string block;
    ParamBindings bindings;
  };
  std::vector<std::map<std::string, BoundParams>> param_scopes_;
  std::map<std::string, ExtensionFn> extensions_;
  int call_depth_ = 0;
};

// Registers the standard extension operators (findex, scatter, stride) used
// by the built-in sparsification programs.
void RegisterStandardExtensions(Interpreter& interpreter);

}  // namespace hipress::compll

#endif  // HIPRESS_SRC_COMPLL_INTERPRETER_H_
