#include "src/compll/lexer.h"

#include <cctype>
#include <cstdlib>

#include "src/common/string_util.h"

namespace hipress::compll {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kIntLiteral:
      return "int literal";
    case TokenKind::kFloatLiteral:
      return "float literal";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kAssign:
      return "'='";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPercent:
      return "'%'";
    case TokenKind::kLess:
      return "'<'";
    case TokenKind::kGreater:
      return "'>'";
    case TokenKind::kLessEq:
      return "'<='";
    case TokenKind::kGreaterEq:
      return "'>='";
    case TokenKind::kEqEq:
      return "'=='";
    case TokenKind::kNotEq:
      return "'!='";
    case TokenKind::kShl:
      return "'<<'";
    case TokenKind::kShr:
      return "'>>'";
    case TokenKind::kAmp:
      return "'&'";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kCaret:
      return "'^'";
    case TokenKind::kAndAnd:
      return "'&&'";
    case TokenKind::kOrOr:
      return "'||'";
    case TokenKind::kBang:
      return "'!'";
    case TokenKind::kEof:
      return "end of input";
  }
  return "?";
}

StatusOr<std::vector<Token>> Tokenize(const std::string& source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto push = [&](TokenKind kind, std::string text, size_t advance) {
    tokens.push_back(Token{kind, std::move(text), 0.0, line, column});
    column += static_cast<int>(advance);
    i += advance;
  };

  while (i < n) {
    const char c = source[i];
    // Whitespace and line continuations.
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++column;
      ++i;
      continue;
    }
    if (c == '\\') {
      // Line continuation (the paper's listings wrap long lines with '\').
      ++column;
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') {
        ++i;
      }
      continue;
    }
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(source[j])) ||
                       source[j] == '_')) {
        ++j;
      }
      push(TokenKind::kIdentifier, source.substr(i, j - i), j - i);
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(source[j])) ||
                       source[j] == '.' || source[j] == 'e' ||
                       source[j] == 'E' ||
                       ((source[j] == '+' || source[j] == '-') && j > i &&
                        (source[j - 1] == 'e' || source[j - 1] == 'E')))) {
        if (source[j] == '.' || source[j] == 'e' || source[j] == 'E') {
          is_float = true;
        }
        ++j;
      }
      // Trailing 'f' suffix.
      size_t token_end = j;
      if (j < n && (source[j] == 'f' || source[j] == 'F')) {
        is_float = true;
        ++token_end;
      }
      Token token;
      token.kind = is_float ? TokenKind::kFloatLiteral : TokenKind::kIntLiteral;
      token.text = source.substr(i, j - i);
      token.number = std::strtod(token.text.c_str(), nullptr);
      token.line = line;
      token.column = column;
      tokens.push_back(std::move(token));
      column += static_cast<int>(token_end - i);
      i = token_end;
      continue;
    }
    // Two-character operators first.
    if (i + 1 < n) {
      const char d = source[i + 1];
      TokenKind kind = TokenKind::kEof;
      if (c == '<' && d == '<') {
        kind = TokenKind::kShl;
      } else if (c == '>' && d == '>') {
        kind = TokenKind::kShr;
      } else if (c == '<' && d == '=') {
        kind = TokenKind::kLessEq;
      } else if (c == '>' && d == '=') {
        kind = TokenKind::kGreaterEq;
      } else if (c == '=' && d == '=') {
        kind = TokenKind::kEqEq;
      } else if (c == '!' && d == '=') {
        kind = TokenKind::kNotEq;
      } else if (c == '&' && d == '&') {
        kind = TokenKind::kAndAnd;
      } else if (c == '|' && d == '|') {
        kind = TokenKind::kOrOr;
      }
      if (kind != TokenKind::kEof) {
        push(kind, source.substr(i, 2), 2);
        continue;
      }
    }
    // Single-character tokens.
    TokenKind kind;
    switch (c) {
      case '(':
        kind = TokenKind::kLParen;
        break;
      case ')':
        kind = TokenKind::kRParen;
        break;
      case '{':
        kind = TokenKind::kLBrace;
        break;
      case '}':
        kind = TokenKind::kRBrace;
        break;
      case '[':
        kind = TokenKind::kLBracket;
        break;
      case ']':
        kind = TokenKind::kRBracket;
        break;
      case ',':
        kind = TokenKind::kComma;
        break;
      case ';':
        kind = TokenKind::kSemicolon;
        break;
      case '.':
        kind = TokenKind::kDot;
        break;
      case '=':
        kind = TokenKind::kAssign;
        break;
      case '+':
        kind = TokenKind::kPlus;
        break;
      case '-':
        kind = TokenKind::kMinus;
        break;
      case '*':
        kind = TokenKind::kStar;
        break;
      case '/':
        kind = TokenKind::kSlash;
        break;
      case '%':
        kind = TokenKind::kPercent;
        break;
      case '<':
        kind = TokenKind::kLess;
        break;
      case '>':
        kind = TokenKind::kGreater;
        break;
      case '&':
        kind = TokenKind::kAmp;
        break;
      case '|':
        kind = TokenKind::kPipe;
        break;
      case '^':
        kind = TokenKind::kCaret;
        break;
      case '!':
        kind = TokenKind::kBang;
        break;
      default:
        return InvalidArgumentError(StrFormat(
            "lex error at %d:%d: unexpected character '%c'", line, column, c));
    }
    push(kind, std::string(1, c), 1);
  }
  tokens.push_back(Token{TokenKind::kEof, "", 0.0, line, column});
  return tokens;
}

}  // namespace hipress::compll
