// DslCompressor — adapts an interpreted CompLL DSL program to the Compressor
// interface, making DSL-authored algorithms directly usable by CaSync.
//
// This mirrors the paper's automated integration: CompLL "creates wrapper
// functions for encode and decode primitives to obtain pointers to gradients
// and the algorithm-specific arguments from the training context". The
// wrapper owns the framing metadata the DSL program does not (a uint32
// element-count header), binds CompressorParams fields to the program's
// param block by name, and truncates packing slack on decode.
#ifndef HIPRESS_SRC_COMPLL_DSL_COMPRESSOR_H_
#define HIPRESS_SRC_COMPLL_DSL_COMPRESSOR_H_

#include <memory>
#include <mutex>
#include <string>

#include "src/compll/ast.h"
#include "src/compll/builtin_algorithms.h"
#include "src/compll/interpreter.h"
#include "src/compress/compressor.h"

namespace hipress::compll {

class DslCompressor : public Compressor {
 public:
  // Parses and validates `source`; probes a small random gradient to
  // estimate the compression rate for the cost model.
  static StatusOr<std::unique_ptr<DslCompressor>> Create(
      std::string name, const std::string& source, bool is_sparse,
      const CompressorParams& params);

  // Convenience: builds the DslCompressor for a built-in DSL algorithm
  // ("onebit", "tbq", "terngrad", "dgc", "graddrop").
  static StatusOr<std::unique_ptr<DslCompressor>> CreateBuiltin(
      const std::string& algorithm, const CompressorParams& params = {});

  std::string_view name() const override { return name_; }
  bool is_sparse() const override { return is_sparse_; }

  StatusOr<size_t> EncodeInto(std::span<const float> gradient,
                              std::span<uint8_t> out) const override;
  Status Decode(const ByteBuffer& in, std::span<float> out) const override;
  StatusOr<size_t> EncodedElementCount(const ByteBuffer& in) const override;
  size_t MaxEncodedSize(size_t elements) const override;
  size_t WorstCaseEncodedSize(size_t elements) const override;
  double CompressionRate(size_t elements) const override;

  // Registers this algorithm into the global CompressorRegistry under
  // "dsl-<name>", the automated-integration step.
  static Status RegisterBuiltinsIntoRegistry();

 private:
  DslCompressor(std::string name, bool is_sparse, CompressorParams params,
                std::unique_ptr<Program> program);

  // Field-name to CompressorParams bindings for the encode/decode param
  // blocks of this program.
  StatusOr<ParamBindings> BindParams(const std::string& block_name) const;

  std::string name_;
  bool is_sparse_;
  CompressorParams params_;
  std::unique_ptr<Program> program_;
  double probed_rate_ = 1.0;

  // The interpreter mutates globals during a run; Encode/Decode are
  // logically const, so serialize access.
  mutable std::mutex mutex_;
  mutable std::unique_ptr<Interpreter> interpreter_;
};

}  // namespace hipress::compll

#endif  // HIPRESS_SRC_COMPLL_DSL_COMPRESSOR_H_
