// CompLL common operator library (Table 4).
//
// These are the "highly-optimized common operators" the paper ships as CUDA
// kernels: sort, filter, map, reduce, random, concat, extract. Here they are
// optimized host implementations — parallelized over the global worker pool
// for large inputs, with the bit-packing paths (sub-byte uint arrays, the
// minimal zero padding rule of Section 4.3) shared with the code generator's
// emitted code. The interpreter delegates its bulk work to these functions,
// so an algorithm written against the operator library inherits the same
// optimizations whether interpreted or generated.
#ifndef HIPRESS_SRC_COMPLL_OPERATORS_H_
#define HIPRESS_SRC_COMPLL_OPERATORS_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "src/common/status.h"
#include "src/compll/types.h"
#include "src/compll/value.h"

namespace hipress::compll {

// Built-in user-defined-function names accepted where a udf argument is
// expected (reduce comparators/combiners and sort orders).
enum class BuiltinUdf {
  kSmaller,  // reduce: minimum          sort: ascending
  kGreater,  // reduce: maximum          sort: descending
  kSum,      // reduce: sum
  kMaxAbs,   // reduce: max |x|
};
StatusOr<BuiltinUdf> ParseBuiltinUdf(const std::string& name);

// map(G, udf): H[i] = udf(G[i]). The per-element function is supplied by the
// caller (the interpreter closes over a DSL function; generated code inlines
// it). Parallelized; `udf` must be thread-safe.
std::vector<double> MapOp(std::span<const double> input,
                          const std::function<double(double)>& udf);

// reduce(G, udf) for the builtin combiners (single parallel pass).
double ReduceOp(std::span<const double> input, BuiltinUdf udf);
// reduce(G, udf) with a user combiner: sequential fold (user folds are rare
// and order-sensitive).
double ReduceOp(std::span<const double> input,
                const std::function<double(double, double)>& udf);

// filter(G, pred): elements where pred(G[i]) != 0, order preserved.
std::vector<double> FilterOp(std::span<const double> input,
                             const std::function<double(double)>& pred);
// Companion returning the *indices* of selected elements (registered
// extension operator used by the sparsification algorithms).
std::vector<double> FilterIndexOp(std::span<const double> input,
                                  const std::function<double(double)>& pred);

// sort(G, udf): sorted copy, ascending for kSmaller / descending for
// kGreater.
std::vector<double> SortOp(std::span<const double> input, BuiltinUdf order);

// random(a, b): uniform value in [a, b) from a deterministic per-call
// stream. `index` is the element index, so parallel map bodies stay
// reproducible.
double RandomOp(double a, double b, uint64_t seed, uint64_t index);

// ----------------------------------------------------------- concat/extract

// Incremental builder implementing concat(...): scalars and arrays appended
// in order; sub-byte arrays are bit-packed with minimal zero padding so the
// total is a whole number of bytes (Section 4.3).
class ConcatBuilder {
 public:
  void AppendScalar(ScalarType type, double value);
  void AppendArray(ScalarType elem_type, std::span<const double> values);
  std::vector<uint8_t> Finish() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::vector<uint8_t> buffer_;
};

// Stream reader implementing extract<T>() / extract<T*>(): reads fields in
// the order concat wrote them, advancing `cursor`.
class ExtractReader {
 public:
  ExtractReader(std::span<const uint8_t> buffer, size_t* cursor)
      : buffer_(buffer), cursor_(cursor) {}

  StatusOr<double> ReadScalar(ScalarType type);
  // Reads `count` packed elements; count < 0 consumes the rest of the
  // buffer (element count inferred from remaining bits).
  StatusOr<std::vector<double>> ReadArray(ScalarType elem_type, long long count);

  size_t remaining() const {
    return *cursor_ <= buffer_.size() ? buffer_.size() - *cursor_ : 0;
  }

 private:
  std::span<const uint8_t> buffer_;
  size_t* cursor_;
};

}  // namespace hipress::compll

#endif  // HIPRESS_SRC_COMPLL_OPERATORS_H_
