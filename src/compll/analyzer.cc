#include "src/compll/analyzer.h"

#include <map>

#include "src/common/string_util.h"
#include "src/compll/operators.h"

namespace hipress::compll {
namespace {

const std::set<std::string>& StandardExtensions() {
  static const std::set<std::string>* extensions =
      new std::set<std::string>{"scatter", "stride", "gather"};
  return *extensions;
}

bool IsMathBuiltin(const std::string& name) {
  return name == "floor" || name == "ceil" || name == "abs" ||
         name == "sqrt" || name == "min" || name == "max";
}

class Analyzer {
 public:
  Analyzer(const Program& program, const std::set<std::string>& extensions)
      : program_(program), extensions_(extensions) {}

  std::vector<Diagnostic> Run() {
    CheckTopLevel();
    for (const FunctionDecl& fn : program_.functions) {
      CheckFunction(fn);
    }
    return std::move(diagnostics_);
  }

 private:
  void Report(int line, std::string message) {
    diagnostics_.push_back(Diagnostic{line, std::move(message)});
  }

  // ------------------------------------------------------------ top level

  void CheckTopLevel() {
    std::set<std::string> names;
    for (const ParamBlock& block : program_.param_blocks) {
      if (!names.insert(block.name).second) {
        Report(0, "duplicate param block '" + block.name + "'");
      }
      std::set<std::string> fields;
      for (const Field& field : block.fields) {
        if (!fields.insert(field.name).second) {
          Report(0, "duplicate field '" + field.name + "' in param block '" +
                        block.name + "'");
        }
      }
    }
    for (const GlobalDecl& decl : program_.globals) {
      for (const std::string& name : decl.names) {
        if (!globals_.insert(name).second) {
          Report(0, "duplicate global '" + name + "'");
        }
      }
    }
    std::set<std::string> functions;
    for (const FunctionDecl& fn : program_.functions) {
      if (!functions.insert(fn.name).second) {
        Report(0, "duplicate function '" + fn.name + "'");
      }
    }
    CheckEntrySignature("encode", ScalarType::kFloat, ScalarType::kUint8);
    CheckEntrySignature("decode", ScalarType::kUint8, ScalarType::kFloat);
  }

  void CheckEntrySignature(const std::string& name, ScalarType input,
                           ScalarType output) {
    const FunctionDecl* fn = program_.FindFunction(name);
    if (fn == nullptr) {
      return;  // a library of udfs alone is legal
    }
    if (fn->params.size() < 2 || fn->params.size() > 3) {
      Report(0, name + " must take (input*, output*[, params])");
      return;
    }
    if (!fn->params[0].type.is_array || fn->params[0].type.scalar != input) {
      Report(0, name + "'s first parameter must be " +
                    TypeName(Type{input, true, {}}));
    }
    if (!fn->params[1].type.is_array || fn->params[1].type.scalar != output) {
      Report(0, name + "'s second parameter must be " +
                    TypeName(Type{output, true, {}}));
    }
    if (fn->params.size() == 3 &&
        fn->params[2].type.scalar != ScalarType::kParamStruct) {
      Report(0, name + "'s third parameter must be a param struct");
    }
    if (fn->return_type.scalar != ScalarType::kVoid) {
      Report(0, name + " must return void");
    }
  }

  // ------------------------------------------------------------ functions

  void CheckFunction(const FunctionDecl& fn) {
    scope_.clear();
    param_structs_.clear();
    for (const Field& param : fn.params) {
      scope_.insert(param.name);
      if (param.type.scalar == ScalarType::kParamStruct) {
        param_structs_[param.name] = param.type.struct_name;
      }
    }
    CheckBlock(fn.body);

    const bool needs_return = fn.return_type.scalar != ScalarType::kVoid &&
                              fn.name != "encode" && fn.name != "decode";
    if (needs_return &&
        (fn.body.empty() ||
         !AlwaysReturns(*fn.body.back()))) {
      Report(fn.body.empty() ? 0 : fn.body.back()->line,
             "function '" + fn.name + "' may fall off the end without "
             "returning a value");
    }
  }

  static bool AlwaysReturns(const Stmt& stmt) {
    if (stmt.kind == StmtKind::kReturn) {
      return true;
    }
    if (stmt.kind == StmtKind::kIf) {
      const auto& if_stmt = static_cast<const IfStmt&>(stmt);
      return !if_stmt.then_body.empty() && !if_stmt.else_body.empty() &&
             AlwaysReturns(*if_stmt.then_body.back()) &&
             AlwaysReturns(*if_stmt.else_body.back());
    }
    return false;
  }

  void CheckBlock(const std::vector<StmtPtr>& body) {
    for (const StmtPtr& stmt : body) {
      CheckStmt(*stmt);
    }
  }

  void CheckStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kDecl: {
        const auto& decl = static_cast<const DeclStmt&>(stmt);
        if (decl.init != nullptr) {
          CheckExpr(*decl.init);
        }
        scope_.insert(decl.name);
        return;
      }
      case StmtKind::kAssign: {
        const auto& assign = static_cast<const AssignStmt&>(stmt);
        CheckExpr(*assign.value);
        if (assign.target->kind == ExprKind::kVar) {
          const auto& var = static_cast<const VarExpr&>(*assign.target);
          if (!IsKnownVariable(var.name)) {
            Report(stmt.line,
                   "assignment to undefined variable '" + var.name + "'");
          }
        } else {
          CheckExpr(*assign.target);
        }
        return;
      }
      case StmtKind::kReturn: {
        const auto& ret = static_cast<const ReturnStmt&>(stmt);
        if (ret.value != nullptr) {
          CheckExpr(*ret.value);
        }
        return;
      }
      case StmtKind::kExpr:
        CheckExpr(*static_cast<const ExprStmt&>(stmt).expr);
        return;
      case StmtKind::kIf: {
        const auto& if_stmt = static_cast<const IfStmt&>(stmt);
        CheckExpr(*if_stmt.condition);
        CheckBlock(if_stmt.then_body);
        CheckBlock(if_stmt.else_body);
        return;
      }
    }
  }

  bool IsKnownVariable(const std::string& name) const {
    return scope_.count(name) > 0 || globals_.count(name) > 0;
  }

  // udf names passed as bare identifiers to operators are function refs,
  // not variable reads.
  void CheckUdfRef(const Expr& expr, int want_params, const char* context) {
    if (expr.kind != ExprKind::kVar) {
      Report(expr.line, std::string(context) + " requires a function name");
      return;
    }
    const std::string& name = static_cast<const VarExpr&>(expr).name;
    if (want_params == 2 && ParseBuiltinUdf(name).ok()) {
      return;  // builtin combiner
    }
    const FunctionDecl* fn = program_.FindFunction(name);
    if (fn == nullptr) {
      Report(expr.line, std::string(context) + ": no function named '" +
                            name + "'");
      return;
    }
    if (static_cast<int>(fn->params.size()) != want_params) {
      Report(expr.line,
             StrFormat("%s: '%s' must take %d parameter(s), takes %zu",
                       context, name.c_str(), want_params,
                       fn->params.size()));
    }
  }

  void CheckExpr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kNumber:
        return;
      case ExprKind::kVar: {
        const auto& var = static_cast<const VarExpr&>(expr);
        if (!IsKnownVariable(var.name) &&
            program_.FindFunction(var.name) == nullptr) {
          Report(expr.line, "undefined variable '" + var.name + "'");
        }
        return;
      }
      case ExprKind::kUnary:
        CheckExpr(*static_cast<const UnaryExpr&>(expr).operand);
        return;
      case ExprKind::kBinary: {
        const auto& binary = static_cast<const BinaryExpr&>(expr);
        CheckExpr(*binary.lhs);
        CheckExpr(*binary.rhs);
        return;
      }
      case ExprKind::kMember: {
        const auto& member = static_cast<const MemberExpr&>(expr);
        if (member.member == "size") {
          CheckExpr(*member.object);
          return;
        }
        if (member.object->kind == ExprKind::kVar) {
          const auto& var = static_cast<const VarExpr&>(*member.object);
          auto it = param_structs_.find(var.name);
          if (it != param_structs_.end()) {
            const ParamBlock* block = program_.FindParamBlock(it->second);
            bool found = false;
            if (block != nullptr) {
              for (const Field& field : block->fields) {
                found = found || field.name == member.member;
              }
            }
            if (!found) {
              Report(expr.line, "param block '" + it->second +
                                    "' has no field '" + member.member + "'");
            }
            return;
          }
        }
        Report(expr.line,
               "unsupported member access '." + member.member + "'");
        return;
      }
      case ExprKind::kIndex: {
        const auto& index = static_cast<const IndexExpr&>(expr);
        CheckExpr(*index.object);
        CheckExpr(*index.index);
        return;
      }
      case ExprKind::kCall:
        CheckCall(static_cast<const CallExpr&>(expr));
        return;
    }
  }

  void CheckCall(const CallExpr& call) {
    const std::string& name = call.callee;
    auto check_args = [&](size_t from = 0) {
      for (size_t i = from; i < call.args.size(); ++i) {
        CheckExpr(*call.args[i]);
      }
    };

    if (name == "map" || name == "filter" || name == "findex") {
      if (call.args.size() != 2) {
        Report(call.line, name + "(G, udf) takes 2 arguments");
        check_args();
        return;
      }
      CheckExpr(*call.args[0]);
      CheckUdfRef(*call.args[1], 1, name.c_str());
      return;
    }
    if (name == "reduce") {
      if (call.args.size() != 2) {
        Report(call.line, "reduce(G, udf) takes 2 arguments");
        check_args();
        return;
      }
      CheckExpr(*call.args[0]);
      CheckUdfRef(*call.args[1], 2, "reduce");
      return;
    }
    if (name == "sort") {
      if (call.args.size() != 2 || call.args[1]->kind != ExprKind::kVar) {
        Report(call.line, "sort(G, order) takes an array and an order");
        check_args();
        return;
      }
      CheckExpr(*call.args[0]);
      const std::string& order =
          static_cast<const VarExpr&>(*call.args[1]).name;
      auto builtin = ParseBuiltinUdf(order);
      if (!builtin.ok() || (builtin.value() != BuiltinUdf::kSmaller &&
                            builtin.value() != BuiltinUdf::kGreater)) {
        Report(call.line, "sort order must be 'smaller' or 'greater'");
      }
      return;
    }
    if (name == "random") {
      if (!call.type_arg.has_value()) {
        Report(call.line, "random requires a type argument: random<float>");
      }
      if (call.args.size() != 2) {
        Report(call.line, "random(a, b) takes 2 arguments");
      }
      check_args();
      return;
    }
    if (name == "concat") {
      if (call.args.empty()) {
        Report(call.line, "concat needs at least one argument");
      }
      check_args();
      return;
    }
    if (name == "extract") {
      if (!call.type_arg.has_value()) {
        Report(call.line, "extract requires a type argument: extract<T>");
      }
      if (call.args.empty() || call.args.size() > 2) {
        Report(call.line, "extract<T>(buffer[, count])");
      }
      if (call.args.size() == 2 && call.type_arg.has_value() &&
          !call.type_arg->is_array) {
        Report(call.line, "extract count only applies to array types");
      }
      check_args();
      return;
    }
    if (IsMathBuiltin(name)) {
      const size_t expected = (name == "min" || name == "max") ? 2 : 1;
      if (call.args.size() != expected) {
        Report(call.line, StrFormat("%s takes %zu argument(s)", name.c_str(),
                                    expected));
      }
      check_args();
      return;
    }
    if (StandardExtensions().count(name) > 0 || extensions_.count(name) > 0) {
      check_args();
      return;
    }
    if (const FunctionDecl* fn = program_.FindFunction(name)) {
      if (fn->params.size() != call.args.size()) {
        Report(call.line,
               StrFormat("'%s' takes %zu argument(s), given %zu",
                         name.c_str(), fn->params.size(), call.args.size()));
      }
      check_args();
      return;
    }
    Report(call.line, "unknown function '" + name + "'");
  }

  const Program& program_;
  const std::set<std::string>& extensions_;
  std::vector<Diagnostic> diagnostics_;
  std::set<std::string> globals_;
  std::set<std::string> scope_;
  std::map<std::string, std::string> param_structs_;
};

}  // namespace

std::vector<Diagnostic> AnalyzeProgram(
    const Program& program, const std::set<std::string>& extension_operators) {
  Analyzer analyzer(program, extension_operators);
  return analyzer.Run();
}

Status ValidateProgram(const Program& program,
                       const std::set<std::string>& extension_operators) {
  const auto diagnostics = AnalyzeProgram(program, extension_operators);
  if (diagnostics.empty()) {
    return OkStatus();
  }
  std::vector<std::string> messages;
  messages.reserve(diagnostics.size());
  for (const Diagnostic& diagnostic : diagnostics) {
    messages.push_back(StrFormat("line %d: %s", diagnostic.line,
                                 diagnostic.message.c_str()));
  }
  return InvalidArgumentError("DSL validation failed: " +
                              Join(messages, "; "));
}

}  // namespace hipress::compll
