// CompLL semantic analyzer.
//
// Static validation of a parsed DSL program, run before interpretation or
// code generation so authors get every diagnostic at once (the paper's
// workflow: the toolkit rejects malformed algorithms at development time,
// not inside a training job). Checks:
//
//   * unique function / param-block / global names;
//   * variables defined before use; assignment targets exist;
//   * calls resolve to user functions, Table 4 operators, math builtins, or
//     registered extension operators — with correct arity;
//   * udf arguments of map/filter/findex name 1-argument functions, reduce
//     accepts builtin combiners or 2-argument functions, sort orders are
//     builtin;
//   * random<>/extract<> carry their type arguments;
//   * member access is `.size` or a field of a param-struct parameter;
//   * entry points have the unified API shape (Figure 4): encode(float*,
//     uint8*[, Params]) and decode(uint8*, float*[, Params]);
//   * non-void functions return on their final statement path.
#ifndef HIPRESS_SRC_COMPLL_ANALYZER_H_
#define HIPRESS_SRC_COMPLL_ANALYZER_H_

#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/compll/ast.h"

namespace hipress::compll {

struct Diagnostic {
  int line = 0;
  std::string message;
};

// Returns every problem found (empty = program is well-formed).
// `extension_operators` lists extra registered operator names (scatter,
// stride, gather are always accepted as the standard extensions).
std::vector<Diagnostic> AnalyzeProgram(
    const Program& program,
    const std::set<std::string>& extension_operators = {});

// Convenience: InvalidArgument with all diagnostics joined, or OK.
Status ValidateProgram(const Program& program,
                       const std::set<std::string>& extension_operators = {});

}  // namespace hipress::compll

#endif  // HIPRESS_SRC_COMPLL_ANALYZER_H_
