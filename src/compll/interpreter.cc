#include "src/compll/interpreter.h"

#include <cmath>

#include "src/common/string_util.h"

namespace hipress::compll {
namespace {

constexpr int kMaxCallDepth = 64;

bool IsIntegerType(ScalarType type) {
  return type != ScalarType::kFloat && ScalarBits(type) > 0;
}

}  // namespace

Interpreter::Interpreter(const Program* program, uint64_t seed)
    : program_(program), seed_(seed) {
  // Globals start zero-initialized with their declared types.
  for (const GlobalDecl& decl : program->globals) {
    for (const std::string& name : decl.names) {
      if (decl.type.is_array) {
        globals_[name] = Value::Array(decl.type.scalar, {});
      } else {
        globals_[name] = Value::Scalar(decl.type.scalar, 0.0);
      }
    }
  }
}

Status Interpreter::RegisterOperator(const std::string& name,
                                     ExtensionFn fn) {
  if (extensions_.count(name) > 0) {
    return AlreadyExistsError("operator already registered: " + name);
  }
  extensions_[name] = std::move(fn);
  return OkStatus();
}

Status Interpreter::ErrorAt(int line, const std::string& message) const {
  return InvalidArgumentError(
      StrFormat("runtime error at line %d: %s", line, message.c_str()));
}

// ------------------------------------------------------------ entry points

StatusOr<Value> Interpreter::RunEntry(const std::string& fn_name, Value input,
                                      Value output_seed,
                                      const ParamBindings& params) {
  const FunctionDecl* fn = program_->FindFunction(fn_name);
  if (fn == nullptr) {
    return NotFoundError("DSL program has no '" + fn_name + "' function");
  }
  if (fn->params.size() < 2) {
    return InvalidArgumentError(fn_name + " must take (input, output[, params])");
  }

  scopes_.emplace_back();
  param_scopes_.emplace_back();
  auto& scope = scopes_.back();
  scope[fn->params[0].name] = std::move(input);
  const std::string output_name = fn->params[1].name;
  scope[output_name] = std::move(output_seed);
  if (fn->params.size() >= 3) {
    param_scopes_.back()[fn->params[2].name] =
        BoundParams{fn->params[2].type.struct_name, params};
  }

  auto result = ExecBlock(fn->body);
  if (!result.ok()) {
    scopes_.pop_back();
    param_scopes_.pop_back();
    return result.status();
  }
  Value output = scopes_.back()[output_name];
  scopes_.pop_back();
  param_scopes_.pop_back();
  return output;
}

StatusOr<std::vector<uint8_t>> Interpreter::RunEncode(
    std::span<const float> gradient, const ParamBindings& params) {
  random_counter_ = 0;
  std::vector<double> data(gradient.begin(), gradient.end());
  Value input = Value::Array(ScalarType::kFloat, std::move(data));
  Value output = Value::Bytes({});
  ASSIGN_OR_RETURN(Value result,
                   RunEntry("encode", std::move(input), std::move(output),
                            params));
  if (!result.is_bytes()) {
    return InvalidArgumentError(
        "encode did not assign a byte buffer (concat result) to its output");
  }
  return *result.bytes;
}

StatusOr<std::vector<float>> Interpreter::RunDecode(
    std::span<const uint8_t> payload, const ParamBindings& params) {
  random_counter_ = 0;
  Value input = Value::Bytes(
      std::vector<uint8_t>(payload.begin(), payload.end()));
  Value output = Value::Array(ScalarType::kFloat, {});
  ASSIGN_OR_RETURN(Value result,
                   RunEntry("decode", std::move(input), std::move(output),
                            params));
  if (!result.is_array()) {
    return InvalidArgumentError(
        "decode did not assign an array to its gradient output");
  }
  std::vector<float> floats(result.array->size());
  for (size_t i = 0; i < floats.size(); ++i) {
    floats[i] = static_cast<float>((*result.array)[i]);
  }
  return floats;
}

StatusOr<Value> Interpreter::CallFunction(const std::string& name,
                                          std::vector<Value> args) {
  const FunctionDecl* fn = program_->FindFunction(name);
  if (fn == nullptr) {
    return NotFoundError("no such DSL function: " + name);
  }
  if (fn->params.size() != args.size()) {
    return InvalidArgumentError(
        StrFormat("%s expects %zu args, got %zu", name.c_str(),
                  fn->params.size(), args.size()));
  }
  if (++call_depth_ > kMaxCallDepth) {
    --call_depth_;
    return ResourceExhaustedError("DSL call depth exceeded");
  }
  scopes_.emplace_back();
  param_scopes_.emplace_back();
  for (size_t i = 0; i < args.size(); ++i) {
    Value arg = std::move(args[i]);
    if (arg.is_scalar()) {
      arg.scalar = CoerceToType(fn->params[i].type.scalar, arg.scalar);
      arg.elem_type = fn->params[i].type.scalar;
    }
    scopes_.back()[fn->params[i].name] = std::move(arg);
  }
  auto result = ExecBlock(fn->body);
  scopes_.pop_back();
  param_scopes_.pop_back();
  --call_depth_;
  if (!result.ok()) {
    return result.status();
  }
  Value value = result.value().returned ? result.value().value
                                        : Value::Float(0.0);
  if (value.is_scalar() && fn->return_type.scalar != ScalarType::kVoid &&
      !fn->return_type.is_array) {
    value.scalar = CoerceToType(fn->return_type.scalar, value.scalar);
    value.elem_type = fn->return_type.scalar;
  }
  return value;
}

// -------------------------------------------------------------- statements

StatusOr<Interpreter::ExecResult> Interpreter::ExecBlock(
    const std::vector<StmtPtr>& body) {
  for (const StmtPtr& stmt : body) {
    ASSIGN_OR_RETURN(ExecResult result, ExecStmt(*stmt));
    if (result.returned) {
      return result;
    }
  }
  return ExecResult{};
}

StatusOr<Interpreter::ExecResult> Interpreter::ExecStmt(const Stmt& stmt) {
  switch (stmt.kind) {
    case StmtKind::kDecl: {
      const auto& decl = static_cast<const DeclStmt&>(stmt);
      Value value;
      if (decl.init != nullptr) {
        ASSIGN_OR_RETURN(value, Eval(*decl.init));
      } else if (decl.type.is_array) {
        value = Value::Array(decl.type.scalar, {});
      } else {
        value = Value::Scalar(decl.type.scalar, 0.0);
      }
      if (value.is_scalar()) {
        value.scalar = CoerceToType(decl.type.scalar, value.scalar);
        value.elem_type = decl.type.scalar;
      } else if (value.is_array()) {
        // Re-tag the array with the declared element type; values coerce
        // lazily at pack/consume time.
        value.elem_type = decl.type.scalar;
      }
      scopes_.back()[decl.name] = std::move(value);
      return ExecResult{};
    }
    case StmtKind::kAssign: {
      const auto& assign = static_cast<const AssignStmt&>(stmt);
      ASSIGN_OR_RETURN(Value value, Eval(*assign.value));
      if (assign.target->kind == ExprKind::kVar) {
        const auto& var = static_cast<const VarExpr&>(*assign.target);
        RETURN_IF_ERROR(AssignVar(var.name, std::move(value), stmt.line));
        return ExecResult{};
      }
      // Element assignment: arr[i] = v.
      const auto& index_expr = static_cast<const IndexExpr&>(*assign.target);
      if (index_expr.object->kind != ExprKind::kVar) {
        return ErrorAt(stmt.line, "indexed assignment target must be a variable");
      }
      const auto& base = static_cast<const VarExpr&>(*index_expr.object);
      Value* target = FindVar(base.name);
      if (target == nullptr) {
        return ErrorAt(stmt.line, "undefined variable '" + base.name + "'");
      }
      if (!target->is_array()) {
        return ErrorAt(stmt.line, "'" + base.name + "' is not an array");
      }
      ASSIGN_OR_RETURN(Value index, Eval(*index_expr.index));
      const long long i = index.AsInt();
      if (i < 0 || static_cast<size_t>(i) >= target->array->size()) {
        return ErrorAt(stmt.line,
                       StrFormat("index %lld out of range [0, %zu)", i,
                                 target->array->size()));
      }
      (*target->array)[static_cast<size_t>(i)] =
          CoerceToType(target->elem_type, value.scalar);
      return ExecResult{};
    }
    case StmtKind::kReturn: {
      const auto& ret = static_cast<const ReturnStmt&>(stmt);
      ExecResult result;
      result.returned = true;
      if (ret.value != nullptr) {
        ASSIGN_OR_RETURN(result.value, Eval(*ret.value));
      }
      return result;
    }
    case StmtKind::kExpr: {
      const auto& expr_stmt = static_cast<const ExprStmt&>(stmt);
      ASSIGN_OR_RETURN(Value ignored, Eval(*expr_stmt.expr));
      (void)ignored;
      return ExecResult{};
    }
    case StmtKind::kIf: {
      const auto& if_stmt = static_cast<const IfStmt&>(stmt);
      ASSIGN_OR_RETURN(Value condition, Eval(*if_stmt.condition));
      if (condition.AsBool()) {
        return ExecBlock(if_stmt.then_body);
      }
      return ExecBlock(if_stmt.else_body);
    }
  }
  return ErrorAt(stmt.line, "unknown statement kind");
}

// ------------------------------------------------------------- expressions

Value* Interpreter::FindVar(const std::string& name) {
  if (!scopes_.empty()) {
    auto it = scopes_.back().find(name);
    if (it != scopes_.back().end()) {
      return &it->second;
    }
  }
  auto it = globals_.find(name);
  if (it != globals_.end()) {
    return &it->second;
  }
  return nullptr;
}

Status Interpreter::AssignVar(const std::string& name, Value value,
                              int line) {
  Value* existing = FindVar(name);
  if (existing == nullptr) {
    return ErrorAt(line, "assignment to undefined variable '" + name + "'");
  }
  if (existing->is_scalar() && value.is_scalar()) {
    // Preserve the declared type of the slot.
    value.scalar = CoerceToType(existing->elem_type, value.scalar);
    value.elem_type = existing->elem_type;
  }
  *existing = std::move(value);
  return OkStatus();
}

StatusOr<Value> Interpreter::Eval(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kNumber: {
      const auto& number = static_cast<const NumberExpr&>(expr);
      return number.is_float ? Value::Float(number.value)
                             : Value::Int(static_cast<long long>(number.value));
    }
    case ExprKind::kVar: {
      const auto& var = static_cast<const VarExpr&>(expr);
      Value* value = FindVar(var.name);
      if (value == nullptr) {
        return ErrorAt(expr.line, "undefined variable '" + var.name + "'");
      }
      return *value;
    }
    case ExprKind::kBinary:
      return EvalBinary(static_cast<const BinaryExpr&>(expr));
    case ExprKind::kUnary: {
      const auto& unary = static_cast<const UnaryExpr&>(expr);
      ASSIGN_OR_RETURN(Value operand, Eval(*unary.operand));
      if (unary.op == TokenKind::kMinus) {
        return Value::Scalar(operand.elem_type == ScalarType::kFloat
                                 ? ScalarType::kFloat
                                 : ScalarType::kInt32,
                             -operand.scalar);
      }
      return Value::Int(operand.AsBool() ? 0 : 1);
    }
    case ExprKind::kCall:
      return EvalCall(static_cast<const CallExpr&>(expr));
    case ExprKind::kMember: {
      const auto& member = static_cast<const MemberExpr&>(expr);
      // `<array>.size`.
      if (member.member == "size") {
        ASSIGN_OR_RETURN(Value object, Eval(*member.object));
        if (!object.is_array() && !object.is_bytes()) {
          return ErrorAt(expr.line, ".size requires an array");
        }
        return Value::Int(static_cast<long long>(object.size()));
      }
      // `<params-var>.<field>`.
      if (member.object->kind == ExprKind::kVar) {
        const auto& var = static_cast<const VarExpr&>(*member.object);
        if (!param_scopes_.empty()) {
          auto scope_it = param_scopes_.back().find(var.name);
          if (scope_it != param_scopes_.back().end()) {
            const BoundParams& bound = scope_it->second;
            auto field_it = bound.bindings.find(member.member);
            if (field_it == bound.bindings.end()) {
              return ErrorAt(expr.line, "param struct has no field '" +
                                            member.member + "'");
            }
            // The field's declared type governs integer semantics and wire
            // width (e.g. a uint8 bitwidth concats as one byte).
            ScalarType field_type = ScalarType::kFloat;
            if (const ParamBlock* block =
                    program_->FindParamBlock(bound.block)) {
              for (const Field& field : block->fields) {
                if (field.name == member.member) {
                  field_type = field.type.scalar;
                }
              }
            }
            return Value::Scalar(field_type,
                                 CoerceToType(field_type, field_it->second));
          }
        }
      }
      return ErrorAt(expr.line, "unsupported member access '." +
                                    member.member + "'");
    }
    case ExprKind::kIndex: {
      const auto& index_expr = static_cast<const IndexExpr&>(expr);
      ASSIGN_OR_RETURN(Value object, Eval(*index_expr.object));
      ASSIGN_OR_RETURN(Value index, Eval(*index_expr.index));
      if (!object.is_array()) {
        return ErrorAt(expr.line, "indexing requires an array");
      }
      const long long i = index.AsInt();
      if (i < 0 || static_cast<size_t>(i) >= object.array->size()) {
        return ErrorAt(expr.line,
                       StrFormat("index %lld out of range [0, %zu)", i,
                                 object.array->size()));
      }
      return Value::Scalar(object.elem_type,
                           (*object.array)[static_cast<size_t>(i)]);
    }
  }
  return ErrorAt(expr.line, "unknown expression kind");
}

StatusOr<Value> Interpreter::EvalBinary(const BinaryExpr& expr) {
  ASSIGN_OR_RETURN(Value lhs, Eval(*expr.lhs));
  ASSIGN_OR_RETURN(Value rhs, Eval(*expr.rhs));
  if (!lhs.is_scalar() || !rhs.is_scalar()) {
    return ErrorAt(expr.line, "binary operators require scalar operands");
  }
  const bool both_int =
      IsIntegerType(lhs.elem_type) && IsIntegerType(rhs.elem_type);
  const double a = lhs.scalar;
  const double b = rhs.scalar;
  const long long ia = lhs.AsInt();
  const long long ib = rhs.AsInt();

  auto number = [&](double v) {
    return both_int ? Value::Int(static_cast<long long>(v)) : Value::Float(v);
  };

  switch (expr.op) {
    case TokenKind::kPlus:
      return number(both_int ? static_cast<double>(ia + ib) : a + b);
    case TokenKind::kMinus:
      return number(both_int ? static_cast<double>(ia - ib) : a - b);
    case TokenKind::kStar:
      return number(both_int ? static_cast<double>(ia * ib) : a * b);
    case TokenKind::kSlash:
      if (both_int) {
        if (ib == 0) {
          return ErrorAt(expr.line, "integer division by zero");
        }
        return Value::Int(ia / ib);
      }
      return Value::Float(a / b);
    case TokenKind::kPercent:
      if (ib == 0) {
        return ErrorAt(expr.line, "modulo by zero");
      }
      return Value::Int(ia % ib);
    case TokenKind::kShl:
      return Value::Int(ia << ib);
    case TokenKind::kShr:
      return Value::Int(ia >> ib);
    case TokenKind::kAmp:
      return Value::Int(ia & ib);
    case TokenKind::kPipe:
      return Value::Int(ia | ib);
    case TokenKind::kCaret:
      return Value::Int(ia ^ ib);
    case TokenKind::kLess:
      return Value::Int(a < b ? 1 : 0);
    case TokenKind::kGreater:
      return Value::Int(a > b ? 1 : 0);
    case TokenKind::kLessEq:
      return Value::Int(a <= b ? 1 : 0);
    case TokenKind::kGreaterEq:
      return Value::Int(a >= b ? 1 : 0);
    case TokenKind::kEqEq:
      return Value::Int(a == b ? 1 : 0);
    case TokenKind::kNotEq:
      return Value::Int(a != b ? 1 : 0);
    case TokenKind::kAndAnd:
      return Value::Int((a != 0.0 && b != 0.0) ? 1 : 0);
    case TokenKind::kOrOr:
      return Value::Int((a != 0.0 || b != 0.0) ? 1 : 0);
    default:
      return ErrorAt(expr.line, "unsupported binary operator");
  }
}

StatusOr<Value> Interpreter::EvalCall(const CallExpr& call) {
  // --- Table 4 common operators ---------------------------------------
  if (call.callee == "map") {
    if (call.args.size() != 2) {
      return ErrorAt(call.line, "map(G, udf) takes 2 arguments");
    }
    ASSIGN_OR_RETURN(Value input, Eval(*call.args[0]));
    if (!input.is_array()) {
      return ErrorAt(call.line, "map: first argument must be an array");
    }
    if (call.args[1]->kind != ExprKind::kVar) {
      return ErrorAt(call.line, "map: second argument must name a udf");
    }
    const std::string udf_name =
        static_cast<const VarExpr&>(*call.args[1]).name;
    const FunctionDecl* fn = program_->FindFunction(udf_name);
    if (fn == nullptr || fn->params.size() != 1) {
      return ErrorAt(call.line,
                     "map: '" + udf_name + "' is not a 1-argument function");
    }
    // Sequential walk so udfs may read globals and call random(); the
    // per-element random counter keeps stochastic rounding reproducible.
    std::vector<double> output(input.array->size());
    for (size_t i = 0; i < input.array->size(); ++i) {
      random_counter_ = i;
      ASSIGN_OR_RETURN(
          Value mapped,
          CallFunction(udf_name, {Value::Scalar(input.elem_type,
                                                (*input.array)[i])}));
      output[i] = mapped.scalar;
    }
    return Value::Array(fn->return_type.scalar, std::move(output));
  }

  if (call.callee == "reduce") {
    if (call.args.size() != 2) {
      return ErrorAt(call.line, "reduce(G, udf) takes 2 arguments");
    }
    ASSIGN_OR_RETURN(Value input, Eval(*call.args[0]));
    if (!input.is_array()) {
      return ErrorAt(call.line, "reduce: first argument must be an array");
    }
    if (call.args[1]->kind != ExprKind::kVar) {
      return ErrorAt(call.line, "reduce: second argument must name a udf");
    }
    const std::string udf_name =
        static_cast<const VarExpr&>(*call.args[1]).name;
    if (auto builtin = ParseBuiltinUdf(udf_name); builtin.ok()) {
      return Value::Float(ReduceOp(*input.array, builtin.value()));
    }
    const FunctionDecl* fn = program_->FindFunction(udf_name);
    if (fn == nullptr || fn->params.size() != 2) {
      return ErrorAt(call.line, "reduce: '" + udf_name +
                                    "' is not a builtin or 2-argument udf");
    }
    double accum = input.array->empty() ? 0.0 : (*input.array)[0];
    for (size_t i = 1; i < input.array->size(); ++i) {
      ASSIGN_OR_RETURN(
          Value combined,
          CallFunction(udf_name, {Value::Float(accum),
                                  Value::Scalar(input.elem_type,
                                                (*input.array)[i])}));
      accum = combined.scalar;
    }
    return Value::Float(accum);
  }

  if (call.callee == "filter" || call.callee == "findex") {
    if (call.args.size() != 2) {
      return ErrorAt(call.line, call.callee + "(G, udf) takes 2 arguments");
    }
    ASSIGN_OR_RETURN(Value input, Eval(*call.args[0]));
    if (!input.is_array()) {
      return ErrorAt(call.line, call.callee + ": first argument must be an array");
    }
    if (call.args[1]->kind != ExprKind::kVar) {
      return ErrorAt(call.line, call.callee + ": second argument must name a udf");
    }
    const std::string udf_name =
        static_cast<const VarExpr&>(*call.args[1]).name;
    const FunctionDecl* fn = program_->FindFunction(udf_name);
    if (fn == nullptr || fn->params.size() != 1) {
      return ErrorAt(call.line, call.callee + ": '" + udf_name +
                                    "' is not a 1-argument function");
    }
    std::vector<double> output;
    for (size_t i = 0; i < input.array->size(); ++i) {
      random_counter_ = i;
      ASSIGN_OR_RETURN(
          Value keep,
          CallFunction(udf_name, {Value::Scalar(input.elem_type,
                                                (*input.array)[i])}));
      if (keep.AsBool()) {
        output.push_back(call.callee == "filter"
                             ? (*input.array)[i]
                             : static_cast<double>(i));
      }
    }
    return Value::Array(call.callee == "filter" ? input.elem_type
                                                : ScalarType::kInt32,
                        std::move(output));
  }

  if (call.callee == "sort") {
    if (call.args.size() != 2 || call.args[1]->kind != ExprKind::kVar) {
      return ErrorAt(call.line, "sort(G, order) takes an array and an order");
    }
    ASSIGN_OR_RETURN(Value input, Eval(*call.args[0]));
    if (!input.is_array()) {
      return ErrorAt(call.line, "sort: first argument must be an array");
    }
    const std::string order_name =
        static_cast<const VarExpr&>(*call.args[1]).name;
    auto order = ParseBuiltinUdf(order_name);
    if (!order.ok() || (order.value() != BuiltinUdf::kSmaller &&
                        order.value() != BuiltinUdf::kGreater)) {
      return ErrorAt(call.line, "sort: order must be 'smaller' or 'greater'");
    }
    return Value::Array(input.elem_type, SortOp(*input.array, order.value()));
  }

  if (call.callee == "random") {
    if (call.args.size() != 2) {
      return ErrorAt(call.line, "random(a, b) takes 2 arguments");
    }
    ASSIGN_OR_RETURN(Value a, Eval(*call.args[0]));
    ASSIGN_OR_RETURN(Value b, Eval(*call.args[1]));
    const double v = RandomOp(a.scalar, b.scalar, seed_, random_counter_);
    if (call.type_arg.has_value() &&
        call.type_arg->scalar != ScalarType::kFloat) {
      return Value::Scalar(call.type_arg->scalar,
                           CoerceToType(call.type_arg->scalar, v));
    }
    return Value::Float(v);
  }

  if (call.callee == "concat") {
    ConcatBuilder builder;
    for (const ExprPtr& arg : call.args) {
      ASSIGN_OR_RETURN(Value value, Eval(*arg));
      if (value.is_scalar()) {
        builder.AppendScalar(value.elem_type, value.scalar);
      } else if (value.is_array()) {
        builder.AppendArray(value.elem_type, *value.array);
      } else {
        // Byte buffers concatenate verbatim.
        ConcatBuilder* b = &builder;
        for (uint8_t byte : *value.bytes) {
          b->AppendScalar(ScalarType::kUint8, static_cast<double>(byte));
        }
      }
    }
    return Value::Bytes(builder.Finish());
  }

  if (call.callee == "extract") {
    if (call.args.empty() || call.args.size() > 2) {
      return ErrorAt(call.line, "extract<T>(buffer[, count])");
    }
    if (!call.type_arg.has_value()) {
      return ErrorAt(call.line, "extract requires a type argument");
    }
    ASSIGN_OR_RETURN(Value buffer, Eval(*call.args[0]));
    if (!buffer.is_bytes()) {
      return ErrorAt(call.line, "extract: argument must be a compressed buffer");
    }
    ExtractReader reader(*buffer.bytes, buffer.cursor.get());
    if (call.type_arg->is_array) {
      long long count = -1;
      if (call.args.size() == 2) {
        ASSIGN_OR_RETURN(Value count_value, Eval(*call.args[1]));
        count = count_value.AsInt();
      }
      auto values = reader.ReadArray(call.type_arg->scalar, count);
      if (!values.ok()) {
        return ErrorAt(call.line, values.status().message());
      }
      return Value::Array(call.type_arg->scalar, std::move(values).value());
    }
    auto value = reader.ReadScalar(call.type_arg->scalar);
    if (!value.ok()) {
      return ErrorAt(call.line, value.status().message());
    }
    return Value::Scalar(call.type_arg->scalar, value.value());
  }

  // --- scalar math builtins -------------------------------------------
  if (call.callee == "floor" || call.callee == "ceil" ||
      call.callee == "abs" || call.callee == "sqrt" ||
      call.callee == "min" || call.callee == "max") {
    std::vector<Value> args;
    args.reserve(call.args.size());
    for (const ExprPtr& arg : call.args) {
      ASSIGN_OR_RETURN(Value value, Eval(*arg));
      args.push_back(std::move(value));
    }
    return EvalBuiltinMath(call, args);
  }

  // --- registered extension operators ----------------------------------
  if (auto it = extensions_.find(call.callee); it != extensions_.end()) {
    std::vector<Value> args;
    args.reserve(call.args.size());
    for (const ExprPtr& arg : call.args) {
      ASSIGN_OR_RETURN(Value value, Eval(*arg));
      args.push_back(std::move(value));
    }
    auto result = it->second(args);
    if (!result.ok()) {
      return ErrorAt(call.line, result.status().message());
    }
    return std::move(result).value();
  }

  // --- user-defined functions -------------------------------------------
  if (program_->FindFunction(call.callee) != nullptr) {
    std::vector<Value> args;
    args.reserve(call.args.size());
    for (const ExprPtr& arg : call.args) {
      ASSIGN_OR_RETURN(Value value, Eval(*arg));
      args.push_back(std::move(value));
    }
    return CallFunction(call.callee, std::move(args));
  }

  return ErrorAt(call.line, "unknown function '" + call.callee + "'");
}

StatusOr<Value> Interpreter::EvalBuiltinMath(const CallExpr& call,
                                             std::vector<Value>& args) {
  auto require = [&](size_t n) -> Status {
    if (args.size() != n) {
      return ErrorAt(call.line,
                     StrFormat("%s takes %zu argument(s)",
                               call.callee.c_str(), n));
    }
    return OkStatus();
  };
  if (call.callee == "floor") {
    RETURN_IF_ERROR(require(1));
    return Value::Float(std::floor(args[0].scalar));
  }
  if (call.callee == "ceil") {
    RETURN_IF_ERROR(require(1));
    return Value::Float(std::ceil(args[0].scalar));
  }
  if (call.callee == "abs") {
    RETURN_IF_ERROR(require(1));
    return Value::Scalar(args[0].elem_type, std::abs(args[0].scalar));
  }
  if (call.callee == "sqrt") {
    RETURN_IF_ERROR(require(1));
    return Value::Float(std::sqrt(args[0].scalar));
  }
  if (call.callee == "min") {
    RETURN_IF_ERROR(require(2));
    return Value::Float(std::min(args[0].scalar, args[1].scalar));
  }
  if (call.callee == "max") {
    RETURN_IF_ERROR(require(2));
    return Value::Float(std::max(args[0].scalar, args[1].scalar));
  }
  return ErrorAt(call.line, "unknown math builtin");
}

// ------------------------------------------------------------- extensions

void RegisterStandardExtensions(Interpreter& interpreter) {
  // scatter(indices, values, n): dense n-element array with values placed
  // at the given indices, zero elsewhere.
  (void)interpreter.RegisterOperator(
      "scatter", [](std::vector<Value>& args) -> StatusOr<Value> {
        if (args.size() != 3 || !args[0].is_array() || !args[1].is_array() ||
            !args[2].is_scalar()) {
          return InvalidArgumentError("scatter(indices, values, n)");
        }
        const auto& indices = *args[0].array;
        const auto& values = *args[1].array;
        if (indices.size() != values.size()) {
          return InvalidArgumentError(
              "scatter: indices/values length mismatch");
        }
        const long long n = args[2].AsInt();
        if (n < 0) {
          return InvalidArgumentError("scatter: negative size");
        }
        std::vector<double> dense(static_cast<size_t>(n), 0.0);
        for (size_t i = 0; i < indices.size(); ++i) {
          const auto idx = static_cast<long long>(indices[i]);
          if (idx < 0 || idx >= n) {
            return InvalidArgumentError("scatter: index out of range");
          }
          dense[static_cast<size_t>(idx)] = values[i];
        }
        return Value::Array(ScalarType::kFloat, std::move(dense));
      });

  // stride(G, step): every step-th element of G (deterministic sampling).
  (void)interpreter.RegisterOperator(
      "stride", [](std::vector<Value>& args) -> StatusOr<Value> {
        if (args.size() != 2 || !args[0].is_array() || !args[1].is_scalar()) {
          return InvalidArgumentError("stride(G, step)");
        }
        const long long step = args[1].AsInt();
        if (step <= 0) {
          return InvalidArgumentError("stride: step must be positive");
        }
        const auto& input = *args[0].array;
        std::vector<double> output;
        output.reserve(input.size() / static_cast<size_t>(step) + 1);
        for (size_t i = 0; i < input.size();
             i += static_cast<size_t>(step)) {
          output.push_back(input[i]);
        }
        return Value::Array(args[0].elem_type, std::move(output));
      });

  // gather(G, indices): G[indices[i]] for each i.
  (void)interpreter.RegisterOperator(
      "gather", [](std::vector<Value>& args) -> StatusOr<Value> {
        if (args.size() != 2 || !args[0].is_array() || !args[1].is_array()) {
          return InvalidArgumentError("gather(G, indices)");
        }
        const auto& input = *args[0].array;
        const auto& indices = *args[1].array;
        std::vector<double> output(indices.size());
        for (size_t i = 0; i < indices.size(); ++i) {
          const auto idx = static_cast<long long>(indices[i]);
          if (idx < 0 || static_cast<size_t>(idx) >= input.size()) {
            return InvalidArgumentError("gather: index out of range");
          }
          output[i] = input[static_cast<size_t>(idx)];
        }
        return Value::Array(args[0].elem_type, std::move(output));
      });
}

}  // namespace hipress::compll
