// CompLL DSL abstract syntax tree.
#ifndef HIPRESS_SRC_COMPLL_AST_H_
#define HIPRESS_SRC_COMPLL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/compll/lexer.h"
#include "src/compll/types.h"

namespace hipress::compll {

// ------------------------------------------------------------ expressions --

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kNumber,
  kVar,
  kBinary,
  kUnary,
  kCall,
  kMember,
  kIndex,
};

struct Expr {
  explicit Expr(ExprKind kind, int line) : kind(kind), line(line) {}
  virtual ~Expr() = default;
  ExprKind kind;
  int line;
};

struct NumberExpr : Expr {
  NumberExpr(double value, bool is_float, int line)
      : Expr(ExprKind::kNumber, line), value(value), is_float(is_float) {}
  double value;
  bool is_float;
};

struct VarExpr : Expr {
  VarExpr(std::string name, int line)
      : Expr(ExprKind::kVar, line), name(std::move(name)) {}
  std::string name;
};

struct BinaryExpr : Expr {
  BinaryExpr(TokenKind op, ExprPtr lhs, ExprPtr rhs, int line)
      : Expr(ExprKind::kBinary, line),
        op(op),
        lhs(std::move(lhs)),
        rhs(std::move(rhs)) {}
  TokenKind op;
  ExprPtr lhs;
  ExprPtr rhs;
};

struct UnaryExpr : Expr {
  UnaryExpr(TokenKind op, ExprPtr operand, int line)
      : Expr(ExprKind::kUnary, line), op(op), operand(std::move(operand)) {}
  TokenKind op;
  ExprPtr operand;
};

// Calls cover both common operators (map, reduce, concat, extract, ...) and
// user-defined functions. `type_arg` holds the angle-bracket argument in
// forms like random<float>(0, 1) or extract<float>(buffer).
struct CallExpr : Expr {
  CallExpr(std::string callee, int line)
      : Expr(ExprKind::kCall, line), callee(std::move(callee)) {}
  std::string callee;
  std::optional<Type> type_arg;
  std::vector<ExprPtr> args;
};

// `object.member`, e.g. gradient.size or params.bitwidth.
struct MemberExpr : Expr {
  MemberExpr(ExprPtr object, std::string member, int line)
      : Expr(ExprKind::kMember, line),
        object(std::move(object)),
        member(std::move(member)) {}
  ExprPtr object;
  std::string member;
};

struct IndexExpr : Expr {
  IndexExpr(ExprPtr object, ExprPtr index, int line)
      : Expr(ExprKind::kIndex, line),
        object(std::move(object)),
        index(std::move(index)) {}
  ExprPtr object;
  ExprPtr index;
};

// ------------------------------------------------------------- statements --

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind {
  kDecl,
  kAssign,
  kReturn,
  kExpr,
  kIf,
};

struct Stmt {
  explicit Stmt(StmtKind kind, int line) : kind(kind), line(line) {}
  virtual ~Stmt() = default;
  StmtKind kind;
  int line;
};

struct DeclStmt : Stmt {
  DeclStmt(Type type, std::string name, ExprPtr init, int line)
      : Stmt(StmtKind::kDecl, line),
        type(type),
        name(std::move(name)),
        init(std::move(init)) {}
  Type type;
  std::string name;
  ExprPtr init;  // may be null
};

struct AssignStmt : Stmt {
  AssignStmt(ExprPtr target, ExprPtr value, int line)
      : Stmt(StmtKind::kAssign, line),
        target(std::move(target)),
        value(std::move(value)) {}
  ExprPtr target;  // VarExpr or IndexExpr
  ExprPtr value;
};

struct ReturnStmt : Stmt {
  ReturnStmt(ExprPtr value, int line)
      : Stmt(StmtKind::kReturn, line), value(std::move(value)) {}
  ExprPtr value;  // may be null for bare return
};

struct ExprStmt : Stmt {
  ExprStmt(ExprPtr expr, int line)
      : Stmt(StmtKind::kExpr, line), expr(std::move(expr)) {}
  ExprPtr expr;
};

struct IfStmt : Stmt {
  IfStmt(ExprPtr condition, int line)
      : Stmt(StmtKind::kIf, line), condition(std::move(condition)) {}
  ExprPtr condition;
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;
};

// ------------------------------------------------------------ top level ----

struct Field {
  Type type;
  std::string name;
};

// `param Name { ... }` block (algorithm parameters, Figure 5 lines 1-3).
struct ParamBlock {
  std::string name;
  std::vector<Field> fields;
};

// File-scope variable declarations (Figure 5 line 4).
struct GlobalDecl {
  Type type;
  std::vector<std::string> names;
};

struct FunctionDecl {
  Type return_type;
  std::string name;
  std::vector<Field> params;
  std::vector<StmtPtr> body;
};

struct Program {
  std::vector<ParamBlock> param_blocks;
  std::vector<GlobalDecl> globals;
  std::vector<FunctionDecl> functions;

  const FunctionDecl* FindFunction(const std::string& name) const {
    for (const auto& fn : functions) {
      if (fn.name == name) {
        return &fn;
      }
    }
    return nullptr;
  }

  const ParamBlock* FindParamBlock(const std::string& name) const {
    for (const auto& block : param_blocks) {
      if (block.name == name) {
        return &block;
      }
    }
    return nullptr;
  }
};

}  // namespace hipress::compll

#endif  // HIPRESS_SRC_COMPLL_AST_H_
