#include "src/compll/builtin_algorithms.h"

#include "src/common/string_util.h"

namespace hipress::compll {
namespace {

// ---------------------------------------------------------------- onebit --

constexpr const char* kOnebitDsl = R"DSL(
// onebit: 1-bit quantization, reconstructing with signed means.
float posMean, negMean;

float relu(float elem) {
  if (elem >= 0) { return elem; }
  return 0;
}

float reluNeg(float elem) {
  if (elem < 0) { return elem; }
  return 0;
}

float isPos(float elem) {
  if (elem >= 0) { return 1; }
  return 0;
}

uint1 signBit(float elem) {
  if (elem >= 0) { return 1; }
  return 0;
}

float bitToFloat(uint1 s) {
  if (s > 0) { return posMean; }
  return negMean;
}

void encode(float* gradient, uint8* compressed) {
  float posSum = reduce(map(gradient, relu), sum);
  float posCnt = reduce(map(gradient, isPos), sum);
  float negSum = reduce(map(gradient, reluNeg), sum);
  float negCnt = gradient.size - posCnt;
  posMean = 0;
  negMean = 0;
  if (posCnt > 0) { posMean = posSum / posCnt; }
  if (negCnt > 0) { negMean = negSum / negCnt; }
  uint1* S = map(gradient, signBit);
  compressed = concat(negMean, posMean, S);
}

void decode(uint8* compressed, float* gradient) {
  negMean = extract<float>(compressed);
  posMean = extract<float>(compressed);
  uint1* S = extract<uint1*>(compressed);
  gradient = map(S, bitToFloat);
}
)DSL";

// ------------------------------------------------------------------- tbq --

constexpr const char* kTbqDsl = R"DSL(
// TBQ: threshold binary quantization to {0, +tau, -tau}.
param EncodeParams {
  float threshold;
}
param DecodeParams {
  float threshold;
}
float tau;

uint2 quantize(float elem) {
  if (elem > tau) { return 1; }
  if (elem < -tau) { return 2; }
  return 0;
}

float dequantize(uint2 q) {
  if (q == 1) { return tau; }
  if (q == 2) { return -tau; }
  return 0;
}

void encode(float* gradient, uint8* compressed, EncodeParams params) {
  tau = params.threshold;
  uint2* Q = map(gradient, quantize);
  compressed = concat(tau, Q);
}

void decode(uint8* compressed, float* gradient, DecodeParams params) {
  tau = extract<float>(compressed);
  uint2* Q = extract<uint2*>(compressed);
  gradient = map(Q, dequantize);
}
)DSL";

// -------------------------------------------------------------- terngrad --

// Encode follows the paper's Figure 5 line by line (bitwidth = 2).
constexpr const char* kTernGradDsl = R"DSL(
// TernGrad: stochastic min/max quantization (Figure 5 of the paper).
param EncodeParams {
  uint8 bitwidth;
}
param DecodeParams {
  uint8 bitwidth;
}
float min, max, gap;

uint2 floatToUint(float elem) {
  float r = (elem - min) / gap;
  return floor(r + random<float>(0, 1));
}

float uintToFloat(uint2 q) {
  return min + q * gap;
}

void encode(float* gradient, uint8* compressed, EncodeParams params) {
  min = reduce(gradient, smaller);
  max = reduce(gradient, greater);
  gap = (max - min) / ((1 << params.bitwidth) - 1);
  uint8 tail = gradient.size % (1 << params.bitwidth);
  uint2* Q = map(gradient, floatToUint);
  compressed = concat(params.bitwidth, tail, min, max, Q);
}

void decode(uint8* compressed, float* gradient, DecodeParams params) {
  uint8 bitwidth = extract<uint8>(compressed);
  uint8 tail = extract<uint8>(compressed);
  min = extract<float>(compressed);
  max = extract<float>(compressed);
  gap = (max - min) / ((1 << bitwidth) - 1);
  uint2* Q = extract<uint2*>(compressed);
  gradient = map(Q, uintToFloat);
}
)DSL";

// ------------------------------------------------------------------- dgc --

constexpr const char* kDgcDsl = R"DSL(
// DGC: top-k sparsification; threshold from exact selection over
// magnitudes, payload as (indices, values).
param EncodeParams {
  float ratio;
}
param DecodeParams {
  float ratio;
}
float threshold;

float magnitude(float elem) {
  return abs(elem);
}

uint1 aboveThreshold(float elem) {
  if (abs(elem) >= threshold) { return 1; }
  return 0;
}

void encode(float* gradient, uint8* compressed, EncodeParams params) {
  float* mags = map(gradient, magnitude);
  float* sorted = sort(mags, greater);
  int32 k = max(1, ceil(gradient.size * params.ratio));
  threshold = sorted[k - 1];
  int32* idx = findex(gradient, aboveThreshold);
  float* vals = filter(gradient, aboveThreshold);
  compressed = concat(gradient.size, idx.size, idx, vals);
}

void decode(uint8* compressed, float* gradient, DecodeParams params) {
  int32 n = extract<int32>(compressed);
  int32 k = extract<int32>(compressed);
  int32* idx = extract<int32*>(compressed, k);
  float* vals = extract<float*>(compressed, k);
  gradient = scatter(idx, vals, n);
}
)DSL";

// -------------------------------------------------------------- graddrop --

constexpr const char* kGradDropDsl = R"DSL(
// GradDrop: drop below a sampled-quantile threshold; the 1-in-100 strided
// sample keeps threshold estimation O(n/100 log n).
param EncodeParams {
  float ratio;
}
param DecodeParams {
  float ratio;
}
float threshold;

float magnitude(float elem) {
  return abs(elem);
}

uint1 keep(float elem) {
  if (abs(elem) >= threshold) { return 1; }
  return 0;
}

void encode(float* gradient, uint8* compressed, EncodeParams params) {
  float* mags = map(gradient, magnitude);
  float* sample = stride(mags, 100);
  float* sorted = sort(sample, greater);
  int32 k = max(1, ceil(sorted.size * params.ratio));
  threshold = sorted[k - 1];
  int32* idx = findex(gradient, keep);
  float* vals = gather(gradient, idx);
  compressed = concat(gradient.size, idx.size, idx, vals);
}

void decode(uint8* compressed, float* gradient, DecodeParams params) {
  int32 n = extract<int32>(compressed);
  int32 k = extract<int32>(compressed);
  int32* idx = extract<int32*>(compressed, k);
  float* vals = extract<float*>(compressed, k);
  gradient = scatter(idx, vals, n);
}
)DSL";

}  // namespace

const std::vector<DslAlgorithm>& BuiltinDslAlgorithms() {
  static const std::vector<DslAlgorithm>* algorithms =
      new std::vector<DslAlgorithm>{
          {"dsl-onebit", "onebit", kOnebitDsl, false},
          {"dsl-tbq", "tbq", kTbqDsl, false},
          {"dsl-terngrad", "terngrad", kTernGradDsl, false},
          {"dsl-dgc", "dgc", kDgcDsl, true},
          {"dsl-graddrop", "graddrop", kGradDropDsl, true},
      };
  return *algorithms;
}

const DslAlgorithm* FindDslAlgorithm(const std::string& algorithm) {
  for (const DslAlgorithm& entry : BuiltinDslAlgorithms()) {
    if (entry.algorithm == algorithm || entry.name == algorithm) {
      return &entry;
    }
  }
  return nullptr;
}

int CountDslLines(const char* source) {
  int lines = 0;
  for (const std::string& raw : Split(source, '\n')) {
    const std::string line = Trim(raw);
    if (line.empty() || StartsWith(line, "//")) {
      continue;
    }
    ++lines;
  }
  return lines;
}

}  // namespace hipress::compll
