#include "src/compll/codegen.h"

#include <map>
#include <set>
#include <sstream>

#include "src/common/string_util.h"
#include "src/compll/operators.h"
#include "src/compll/parser.h"

namespace hipress::compll {
namespace {

// The fixed runtime preamble embedded in every generated unit: the common
// operator library lowered to host C++ (CUDA kernels in the paper's
// backend). Kept dependency-free so generated files compile standalone.
constexpr const char* kRuntimePreamble = R"CPP(
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <vector>

// SIMD backend gate: only GCC on x86-64 gets the multi-ISA clones (the
// target/optimize attribute combination used here is GCC-specific); every
// other toolchain compiles the portable scalar tier. COMPLL_FORCE_SCALAR
// pins the scalar tier at compile time regardless of host support.
#if COMPLL_ENABLE_SIMD && defined(__x86_64__) && defined(__GNUC__) && \
    !defined(__clang__) && !defined(COMPLL_FORCE_SCALAR) &&           \
    !defined(HIPRESS_FORCE_SCALAR)
#define COMPLL_SIMD 1
#define COMPLL_VEC(isa) \
  __attribute__((target(isa), optimize("O3", "tree-vectorize")))
#else
#define COMPLL_SIMD 0
#endif

namespace {

using Array = std::vector<double>;
using Bytes = std::vector<uint8_t>;

// Runtime tier selection, mirroring hipress ActiveSimdTier(): CPUID caps
// the tier to what the host executes, the HIPRESS_SIMD environment variable
// caps it further (scalar < avx2 < avx512).
inline int __simd_tier_detect() {
#if COMPLL_SIMD
  int tier = 0;
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    tier = 1;
  }
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl")) {
    tier = 2;
  }
  if (const char* env = std::getenv("HIPRESS_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) {
      tier = 0;
    } else if (std::strcmp(env, "avx2") == 0 && tier > 1) {
      tier = 1;
    }
  }
  return tier;
#else
  return 0;
#endif
}
inline int __simd_tier() {
  static const int tier = __simd_tier_detect();
  return tier;
}

// Branch-free select: both arms are evaluated (they are pure in converted
// udfs), so tiled map loops built from selects auto-vectorize.
inline double __select(double c, double a, double b) {
  return c != 0.0 ? a : b;
}

inline double __coerce_float(double v) {
  return static_cast<double>(static_cast<float>(v));
}
inline double __coerce_int32(double v) {
  return static_cast<double>(static_cast<int32_t>(v));
}
inline double __coerce_uint(double v, unsigned bits) {
  const uint64_t mask = (1ull << bits) - 1;
  return static_cast<double>(
      static_cast<uint64_t>(static_cast<int64_t>(v)) & mask);
}

// Deterministic per-element uniform in [0,1): counter-based, so results do
// not depend on execution order (the GPU backend keys this on thread id).
inline double __random01(uint64_t seed, uint64_t index) {
  uint64_t z = seed + index * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 40) * 0x1.0p-24;
}
inline double __random(double a, double b, uint64_t seed, uint64_t index) {
  return a + (b - a) * __random01(seed, index);
}

template <typename F>
Array __map(const Array& input, F udf) {
  Array output(input.size());
  for (size_t i = 0; i < input.size(); ++i) {
    output[i] = udf(input[i], i);
  }
  return output;
}

template <typename F>
Array __filter(const Array& input, F pred) {
  Array output;
  for (size_t i = 0; i < input.size(); ++i) {
    if (pred(input[i], i) != 0.0) {
      output.push_back(input[i]);
    }
  }
  return output;
}

template <typename F>
Array __findex(const Array& input, F pred) {
  Array output;
  for (size_t i = 0; i < input.size(); ++i) {
    if (pred(input[i], i) != 0.0) {
      output.push_back(static_cast<double>(i));
    }
  }
  return output;
}

inline Array __sort_asc(Array input) {
  std::sort(input.begin(), input.end());
  return input;
}
inline Array __sort_desc(Array input) {
  std::sort(input.begin(), input.end(), std::greater<double>());
  return input;
}

inline double __reduce_min(const Array& input) {
  double r = input.empty() ? 0.0 : input[0];
  for (double v : input) r = std::min(r, v);
  return r;
}
inline double __reduce_max(const Array& input) {
  double r = input.empty() ? 0.0 : input[0];
  for (double v : input) r = std::max(r, v);
  return r;
}
// Canonical deterministic sum: within each 4096-element block, lane j
// accumulates elements with index = j (mod 8) and lanes merge in ascending
// order; block partials merge in block order. The interpreter's ReduceOp
// uses the same schedule, so generated code and interpreter agree to the
// last bit at every input size, on every tier. The 8-lane inner loop is
// what the AVX2/AVX-512 clones auto-vectorize (2x4 / 1x8 doubles).
#define COMPLL_BLOCK_SUM8_BODY                     \
  {                                                \
    double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};    \
    const size_t n8 = n & ~static_cast<size_t>(7); \
    for (size_t i = 0; i < n8; i += 8) {           \
      for (size_t j = 0; j < 8; ++j) {             \
        lanes[j] += x[i + j];                      \
      }                                            \
    }                                              \
    for (size_t j = 0; j < n - n8; ++j) {          \
      lanes[j] += x[n8 + j];                       \
    }                                              \
    double r = 0.0;                                \
    for (size_t j = 0; j < 8; ++j) {               \
      r += lanes[j];                               \
    }                                              \
    return r;                                      \
  }

inline double __block_sum8_scalar(const double* x, size_t n)
    COMPLL_BLOCK_SUM8_BODY
#if COMPLL_SIMD
COMPLL_VEC("avx2,fma")
inline double __block_sum8_avx2(const double* x, size_t n)
    COMPLL_BLOCK_SUM8_BODY
COMPLL_VEC("avx512f,avx512bw,avx512vl")
inline double __block_sum8_avx512(const double* x, size_t n)
    COMPLL_BLOCK_SUM8_BODY
#endif
#undef COMPLL_BLOCK_SUM8_BODY

inline double __block_sum8(const double* x, size_t n) {
#if COMPLL_SIMD
  const int tier = __simd_tier();
  if (tier >= 2) return __block_sum8_avx512(x, n);
  if (tier >= 1) return __block_sum8_avx2(x, n);
#endif
  return __block_sum8_scalar(x, n);
}

inline double __reduce_sum_ptr(const double* x, size_t n) {
  constexpr size_t kBlock = 4096;
  double total = 0.0;
  for (size_t base = 0; base < n; base += kBlock) {
    const size_t len = n - base < kBlock ? n - base : kBlock;
    total += __block_sum8(x + base, len);
  }
  return total;
}
inline double __reduce_sum(const Array& input) {
  return __reduce_sum_ptr(input.data(), input.size());
}
inline double __reduce_maxabs(const Array& input) {
  double r = 0.0;
  for (double v : input) r = std::max(r, std::abs(v));
  return r;
}

inline Array __stride(const Array& input, double step_value) {
  const size_t step = step_value < 1.0 ? 1 : static_cast<size_t>(step_value);
  Array output;
  for (size_t i = 0; i < input.size(); i += step) {
    output.push_back(input[i]);
  }
  return output;
}

inline Array __gather(const Array& input, const Array& indices) {
  Array output(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    output[i] = input[static_cast<size_t>(indices[i])];
  }
  return output;
}

inline Array __scatter(const Array& indices, const Array& values, double n) {
  Array output(static_cast<size_t>(n), 0.0);
  for (size_t i = 0; i < indices.size(); ++i) {
    output[static_cast<size_t>(indices[i])] = values[i];
  }
  return output;
}

// concat: append primitives with the minimal-zero-padding packing rule.
inline void __append_f32(Bytes& buffer, double v) {
  const float f = static_cast<float>(v);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&f);
  buffer.insert(buffer.end(), p, p + sizeof(f));
}
inline void __append_i32(Bytes& buffer, double v) {
  const int32_t i = static_cast<int32_t>(v);
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&i);
  buffer.insert(buffer.end(), p, p + sizeof(i));
}
inline void __append_byte(Bytes& buffer, double v) {
  buffer.push_back(static_cast<uint8_t>(__coerce_uint(v, 8)));
}
inline void __write_bits(uint8_t* buffer, size_t bit_pos, unsigned bits,
                         uint32_t value) {
  for (unsigned i = 0; i < bits; ++i) {
    const size_t pos = bit_pos + i;
    if ((value >> i) & 1u) {
      buffer[pos >> 3] |= static_cast<uint8_t>(1u << (pos & 7));
    }
  }
}
inline uint32_t __read_bits(const uint8_t* buffer, size_t bit_pos,
                            unsigned bits) {
  uint32_t value = 0;
  for (unsigned i = 0; i < bits; ++i) {
    const size_t pos = bit_pos + i;
    value |= static_cast<uint32_t>((buffer[pos >> 3] >> (pos & 7)) & 1u) << i;
  }
  return value;
}
inline void __append_packed(Bytes& buffer, const Array& values,
                            unsigned bits) {
  if (bits == 32) {
    for (double v : values) __append_f32(buffer, v);
    return;
  }
  const size_t offset = buffer.size();
  buffer.resize(offset + (values.size() * bits + 7) / 8, 0);
  if (bits == 1 || bits == 2 || bits == 4) {
    // Fast path: sub-byte groups never straddle a byte, so each output
    // byte is assembled independently — no read-modify-write of partial
    // bytes, and the group loop is vectorizable.
    const size_t per = 8 / bits;
    const uint32_t mask = (1u << bits) - 1u;
    uint8_t* out = buffer.data() + offset;
    const size_t num_bytes = (values.size() * bits + 7) / 8;
    for (size_t b = 0; b < num_bytes; ++b) {
      const size_t base = b * per;
      const size_t limit =
          values.size() - base < per ? values.size() - base : per;
      uint32_t byte = 0;
      for (size_t j = 0; j < limit; ++j) {
        byte |= (static_cast<uint32_t>(__coerce_uint(values[base + j], bits)) &
                 mask)
                << (j * bits);
      }
      out[b] = static_cast<uint8_t>(byte);
    }
    return;
  }
  for (size_t i = 0; i < values.size(); ++i) {
    __write_bits(buffer.data() + offset, i * bits, bits,
                 static_cast<uint32_t>(__coerce_uint(values[i], bits)));
  }
}
inline void __append_i32_array(Bytes& buffer, const Array& values) {
  for (double v : values) __append_i32(buffer, v);
}
inline void __append_f32_array(Bytes& buffer, const Array& values) {
  for (double v : values) __append_f32(buffer, v);
}

// extract: sequential reads through a cursor.
struct Reader {
  const uint8_t* data;
  size_t size;
  size_t cursor = 0;

  double read_f32() {
    float f = 0.0f;
    if (cursor + sizeof(f) <= size) {
      std::memcpy(&f, data + cursor, sizeof(f));
      cursor += sizeof(f);
    }
    return static_cast<double>(f);
  }
  double read_i32() {
    int32_t i = 0;
    if (cursor + sizeof(i) <= size) {
      std::memcpy(&i, data + cursor, sizeof(i));
      cursor += sizeof(i);
    }
    return static_cast<double>(i);
  }
  double read_byte() {
    return cursor < size ? static_cast<double>(data[cursor++]) : 0.0;
  }
  Array read_packed(unsigned bits, long long count) {
    size_t elements;
    size_t bytes;
    if (count < 0) {
      bytes = size - cursor;
      elements = bytes * 8 / bits;
    } else {
      elements = static_cast<size_t>(count);
      bytes = (elements * bits + 7) / 8;
    }
    Array values(elements, 0.0);
    if (bits == 1 || bits == 2 || bits == 4) {
      // Fast path mirroring __append_packed: whole bytes fan out to their
      // sub-byte groups without bit-serial reads.
      const size_t per = 8 / bits;
      const uint32_t mask = (1u << bits) - 1u;
      const uint8_t* in = data + cursor;
      for (size_t b = 0; b * per < elements; ++b) {
        const size_t base = b * per;
        const size_t limit = elements - base < per ? elements - base : per;
        const uint32_t byte = in[b];
        for (size_t j = 0; j < limit; ++j) {
          values[base + j] =
              static_cast<double>((byte >> (j * bits)) & mask);
        }
      }
      cursor += bytes;
      return values;
    }
    for (size_t i = 0; i < elements; ++i) {
      values[i] =
          static_cast<double>(__read_bits(data + cursor, i * bits, bits));
    }
    cursor += bytes;
    return values;
  }
  Array read_f32_array(long long count) {
    const size_t elements = count < 0 ? (size - cursor) / sizeof(float)
                                      : static_cast<size_t>(count);
    Array values(elements, 0.0);
    for (size_t i = 0; i < elements; ++i) {
      values[i] = read_f32();
    }
    return values;
  }
  Array read_i32_array(long long count) {
    const size_t elements = count < 0 ? (size - cursor) / sizeof(int32_t)
                                      : static_cast<size_t>(count);
    Array values(elements, 0.0);
    for (size_t i = 0; i < elements; ++i) {
      values[i] = read_i32();
    }
    return values;
  }
};

}  // namespace
)CPP";

// Static expression types the generator tracks (a reduced Type).
struct CgType {
  ScalarType scalar = ScalarType::kFloat;
  bool is_array = false;
  bool is_bytes = false;

  static CgType Scalar(ScalarType s) { return CgType{s, false, false}; }
  static CgType Array(ScalarType s) { return CgType{s, true, false}; }
  static CgType Bytes() {
    return CgType{ScalarType::kUint8, false, true};
  }
  bool IsInt() const {
    return !is_array && !is_bytes && scalar != ScalarType::kFloat &&
           ScalarBits(scalar) > 0;
  }
};

class Codegen {
 public:
  Codegen(const Program& program, const CodegenOptions& options)
      : program_(program), options_(options) {}

  StatusOr<std::string> Generate() {
    out_ << "// Generated by CompLL from DSL source. Do not edit.\n";
    out_ << "// Algorithm: " << options_.algorithm_name << "\n";
    out_ << "#define COMPLL_ENABLE_SIMD " << (options_.simd ? 1 : 0)
         << "\n";
    out_ << kRuntimePreamble << "\n";
    out_ << "namespace compll_gen_" << options_.algorithm_name << " {\n\n";
    out_ << "constexpr uint64_t kSeed = " << options_.seed << "ull;\n\n";

    EmitParamStructs();
    RETURN_IF_ERROR(EmitGlobals());
    if (options_.simd) {
      RETURN_IF_ERROR(PrepareVectorUdfs());
    }
    RETURN_IF_ERROR(EmitFunctionPrototypes());
    EmitVectorMapKernels();
    for (const FunctionDecl& fn : program_.functions) {
      RETURN_IF_ERROR(EmitFunction(fn));
    }
    out_ << "}  // namespace compll_gen_" << options_.algorithm_name << "\n";
    EmitCApi();
    return out_.str();
  }

 private:
  // ------------------------------------------------------------ sections --

  // Plain-C entry points so the generated unit can be built as a shared
  // object and loaded at runtime — the paper's automated integration path.
  // Param-struct fields are passed positionally as doubles.
  void EmitCApi() {
    const std::string& ns = "compll_gen_" + options_.algorithm_name;
    auto emit_param_fill = [&](const FunctionDecl* fn) {
      if (fn == nullptr || fn->params.size() < 3) {
        out_ << "  (void)params; (void)n_params;\n";
        return std::string();
      }
      const std::string type = fn->params[2].type.struct_name;
      out_ << "  " << ns << "::" << type << " p;\n";
      const ParamBlock* block = program_.FindParamBlock(type);
      if (block != nullptr) {
        for (size_t i = 0; i < block->fields.size(); ++i) {
          out_ << "  if (n_params > " << i << ") { p."
               << block->fields[i].name << " = params[" << i << "]; }\n";
        }
      }
      return std::string(", p");
    };

    const FunctionDecl* encode = program_.FindFunction("encode");
    const FunctionDecl* decode = program_.FindFunction("decode");
    if (encode != nullptr) {
      out_ << "\nextern \"C\" int " << options_.algorithm_name
           << "_encode_c(const float* input, size_t n, uint8_t* out,\n"
           << "    size_t out_capacity, size_t* out_size,\n"
           << "    const double* params, size_t n_params) {\n";
      const std::string pass = emit_param_fill(encode);
      out_ << "  std::vector<uint8_t> buffer;\n"
           << "  " << ns << "::" << options_.algorithm_name
           << "_encode(input, n, buffer" << pass << ");\n"
           << "  if (buffer.size() > out_capacity) { return -1; }\n"
           << "  std::memcpy(out, buffer.data(), buffer.size());\n"
           << "  *out_size = buffer.size();\n"
           << "  return 0;\n}\n";
    }
    // Raw kernel hooks for microbenchmarks (bench_kernels' generated-vs-
    // hand-tuned panel) — they expose the vector operator loops without the
    // Array marshalling of the entry points.
    if (options_.simd) {
      out_ << "\nextern \"C\" double " << options_.algorithm_name
           << "_reduce_sum_c(const double* x, size_t n) {\n"
           << "  return __reduce_sum_ptr(x, n);\n}\n";
      for (const auto& [name, body] : vector_udfs_) {
        out_ << "\nextern \"C\" void " << options_.algorithm_name << "_map_"
             << name << "_c(const double* in, double* out, size_t n) {\n"
             << "  " << ns << "::__map_vec_" << name << "_ptr(in, out, n);\n"
             << "}\n";
      }
    }

    if (decode != nullptr) {
      out_ << "\nextern \"C\" int " << options_.algorithm_name
           << "_decode_c(const uint8_t* input, size_t n, float* out,\n"
           << "    size_t out_capacity, size_t* out_size,\n"
           << "    const double* params, size_t n_params) {\n";
      const std::string pass = emit_param_fill(decode);
      out_ << "  std::vector<double> buffer;\n"
           << "  " << ns << "::" << options_.algorithm_name
           << "_decode(input, n, buffer" << pass << ");\n"
           << "  if (buffer.size() > out_capacity) { return -1; }\n"
           << "  for (size_t i = 0; i < buffer.size(); ++i) {\n"
           << "    out[i] = static_cast<float>(buffer[i]);\n"
           << "  }\n"
           << "  *out_size = buffer.size();\n"
           << "  return 0;\n}\n";
    }
  }

  void EmitParamStructs() {
    for (const ParamBlock& block : program_.param_blocks) {
      out_ << "struct " << block.name << " {\n";
      for (const Field& field : block.fields) {
        out_ << "  double " << field.name << " = 0;\n";
      }
      out_ << "};\n\n";
    }
  }

  Status EmitGlobals() {
    for (const GlobalDecl& decl : program_.globals) {
      for (const std::string& name : decl.names) {
        if (decl.type.is_array) {
          out_ << "static Array g_" << name << ";\n";
          globals_[name] = CgType::Array(decl.type.scalar);
        } else {
          out_ << "static double g_" << name << " = 0;\n";
          globals_[name] = CgType::Scalar(decl.type.scalar);
        }
      }
    }
    out_ << "\n";
    return OkStatus();
  }

  Status EmitFunctionPrototypes() {
    for (const FunctionDecl& fn : program_.functions) {
      if (fn.name == "encode" || fn.name == "decode") {
        continue;
      }
      ASSIGN_OR_RETURN(std::string signature,
                       UdfSignature(fn, /*with_default=*/true));
      out_ << signature << ";\n";
    }
    out_ << "\n";
    return OkStatus();
  }

  StatusOr<std::string> UdfSignature(const FunctionDecl& fn,
                                     bool with_default) {
    std::string result = "static double " + fn.name + "(";
    for (size_t i = 0; i < fn.params.size(); ++i) {
      if (fn.params[i].type.is_array) {
        result += "const Array& " + fn.params[i].name;
      } else {
        result += "double " + fn.params[i].name;
      }
      result += ", ";
    }
    // Hidden element index for counter-based randomness (GPU analogue:
    // thread id). Defaulted in the prototype only.
    result += with_default ? "size_t __idx = 0)" : "size_t __idx)";
    return result;
  }

  // ---------------------------------------------------- SIMD map lowering --
  //
  // A udf is vector-lowerable when it takes one scalar parameter, is pure
  // (no assignments, no user-defined calls, no array reads) and its control
  // flow if-converts into one branch-free expression: each `if` merges into
  // __select(cond, then-value, else-value). The udf is then emitted
  // branch-free and every map over it lowers to a tiled loop with per-ISA
  // clones (EmitVectorMapKernels) instead of the generic __map.

  struct BranchFreeBody {
    std::vector<std::string> decls;  // "const double r = ...;" prefix lines
    std::string value;               // the single return expression
  };

  static bool IsPureExpr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kNumber:
      case ExprKind::kVar:
        return true;
      case ExprKind::kUnary:
        return IsPureExpr(*static_cast<const UnaryExpr&>(expr).operand);
      case ExprKind::kBinary: {
        const auto& binary = static_cast<const BinaryExpr&>(expr);
        return IsPureExpr(*binary.lhs) && IsPureExpr(*binary.rhs);
      }
      case ExprKind::kMember:
        return IsPureExpr(*static_cast<const MemberExpr&>(expr).object);
      case ExprKind::kIndex:
        return false;  // array access is not a per-element map
      case ExprKind::kCall: {
        const auto& call = static_cast<const CallExpr&>(expr);
        const bool builtin = call.callee == "random" ||
                             call.callee == "floor" || call.callee == "ceil" ||
                             call.callee == "sqrt" || call.callee == "abs" ||
                             call.callee == "min" || call.callee == "max";
        if (!builtin) {
          return false;  // user udf calls may touch globals; stay branchy
        }
        for (const ExprPtr& argument : call.args) {
          if (!IsPureExpr(*argument)) {
            return false;
          }
        }
        return true;
      }
    }
    return false;
  }

  // Folds a statement worklist into the expression it returns. `if`
  // statements recurse with the continuation appended to both arms (the
  // arm that does not return falls through to it), which duplicates the
  // tail — bounded by the depth cap. Falling off the end mirrors the
  // branchy lowering's trailing `return 0;`.
  StatusOr<std::string> ConvertValue(const std::vector<const Stmt*>& work,
                                     bool allow_decls, int depth,
                                     BranchFreeBody* body) {
    if (depth > 8) {
      return InvalidArgumentError("codegen: if-conversion too deep");
    }
    for (size_t idx = 0; idx < work.size(); ++idx) {
      const Stmt& stmt = *work[idx];
      switch (stmt.kind) {
        case StmtKind::kReturn: {
          const auto& ret = static_cast<const ReturnStmt&>(stmt);
          if (ret.value == nullptr || !IsPureExpr(*ret.value)) {
            return InvalidArgumentError("codegen: return not convertible");
          }
          ASSIGN_OR_RETURN(auto value, EmitExpr(*ret.value));
          return Coerce(return_coerce_, value.code);
        }
        case StmtKind::kDecl: {
          const auto& decl = static_cast<const DeclStmt&>(stmt);
          if (!allow_decls || decl.type.is_array || decl.init == nullptr ||
              !IsPureExpr(*decl.init)) {
            return InvalidArgumentError("codegen: decl not convertible");
          }
          ASSIGN_OR_RETURN(auto init, EmitExpr(*decl.init));
          body->decls.push_back("const double " + decl.name + " = " +
                                Coerce(decl.type.scalar, init.code) + ";");
          scope_[decl.name] = CgType::Scalar(decl.type.scalar);
          continue;
        }
        case StmtKind::kIf: {
          const auto& if_stmt = static_cast<const IfStmt&>(stmt);
          if (!IsPureExpr(*if_stmt.condition)) {
            return InvalidArgumentError("codegen: condition not convertible");
          }
          ASSIGN_OR_RETURN(auto condition, EmitExpr(*if_stmt.condition));
          const std::vector<const Stmt*> rest(work.begin() + idx + 1,
                                              work.end());
          auto with_rest = [&rest](const std::vector<StmtPtr>& arm) {
            std::vector<const Stmt*> merged;
            for (const StmtPtr& s : arm) {
              merged.push_back(s.get());
            }
            merged.insert(merged.end(), rest.begin(), rest.end());
            return merged;
          };
          ASSIGN_OR_RETURN(
              std::string then_value,
              ConvertValue(with_rest(if_stmt.then_body), false, depth + 1,
                           body));
          ASSIGN_OR_RETURN(
              std::string else_value,
              ConvertValue(with_rest(if_stmt.else_body), false, depth + 1,
                           body));
          return "__select(" + condition.code + ", " + then_value + ", " +
                 else_value + ")";
        }
        case StmtKind::kAssign:
        case StmtKind::kExpr:
          return InvalidArgumentError("codegen: stmt blocks if-conversion");
      }
    }
    return std::string("0");
  }

  static void CollectMapUdfsExpr(const Expr& expr,
                                 std::set<std::string>* names) {
    switch (expr.kind) {
      case ExprKind::kNumber:
      case ExprKind::kVar:
        return;
      case ExprKind::kUnary:
        CollectMapUdfsExpr(*static_cast<const UnaryExpr&>(expr).operand,
                           names);
        return;
      case ExprKind::kBinary: {
        const auto& binary = static_cast<const BinaryExpr&>(expr);
        CollectMapUdfsExpr(*binary.lhs, names);
        CollectMapUdfsExpr(*binary.rhs, names);
        return;
      }
      case ExprKind::kMember:
        CollectMapUdfsExpr(*static_cast<const MemberExpr&>(expr).object,
                           names);
        return;
      case ExprKind::kIndex: {
        const auto& index = static_cast<const IndexExpr&>(expr);
        CollectMapUdfsExpr(*index.object, names);
        CollectMapUdfsExpr(*index.index, names);
        return;
      }
      case ExprKind::kCall: {
        const auto& call = static_cast<const CallExpr&>(expr);
        if (call.callee == "map" && call.args.size() == 2 &&
            call.args[1]->kind == ExprKind::kVar) {
          names->insert(static_cast<const VarExpr&>(*call.args[1]).name);
        }
        for (const ExprPtr& argument : call.args) {
          CollectMapUdfsExpr(*argument, names);
        }
        return;
      }
    }
  }

  static void CollectMapUdfsStmt(const Stmt& stmt,
                                 std::set<std::string>* names) {
    switch (stmt.kind) {
      case StmtKind::kDecl: {
        const auto& decl = static_cast<const DeclStmt&>(stmt);
        if (decl.init != nullptr) {
          CollectMapUdfsExpr(*decl.init, names);
        }
        return;
      }
      case StmtKind::kAssign: {
        const auto& assign = static_cast<const AssignStmt&>(stmt);
        CollectMapUdfsExpr(*assign.target, names);
        CollectMapUdfsExpr(*assign.value, names);
        return;
      }
      case StmtKind::kReturn: {
        const auto& ret = static_cast<const ReturnStmt&>(stmt);
        if (ret.value != nullptr) {
          CollectMapUdfsExpr(*ret.value, names);
        }
        return;
      }
      case StmtKind::kExpr:
        CollectMapUdfsExpr(*static_cast<const ExprStmt&>(stmt).expr, names);
        return;
      case StmtKind::kIf: {
        const auto& if_stmt = static_cast<const IfStmt&>(stmt);
        CollectMapUdfsExpr(*if_stmt.condition, names);
        for (const StmtPtr& s : if_stmt.then_body) {
          CollectMapUdfsStmt(*s, names);
        }
        for (const StmtPtr& s : if_stmt.else_body) {
          CollectMapUdfsStmt(*s, names);
        }
        return;
      }
    }
  }

  Status PrepareVectorUdfs() {
    std::set<std::string> map_udfs;
    for (const FunctionDecl& fn : program_.functions) {
      for (const StmtPtr& stmt : fn.body) {
        CollectMapUdfsStmt(*stmt, &map_udfs);
      }
    }
    for (const std::string& name : map_udfs) {
      const FunctionDecl* fn = program_.FindFunction(name);
      if (fn == nullptr || fn->params.size() != 1 ||
          fn->params[0].type.is_array) {
        continue;
      }
      scope_.clear();
      scope_[fn->params[0].name] =
          CgType::Scalar(fn->params[0].type.scalar);
      return_coerce_ = fn->return_type.scalar;
      std::vector<const Stmt*> work;
      for (const StmtPtr& stmt : fn->body) {
        work.push_back(stmt.get());
      }
      BranchFreeBody body;
      StatusOr<std::string> value =
          ConvertValue(work, /*allow_decls=*/true, 0, &body);
      scope_.clear();
      if (!value.ok()) {
        continue;  // stays on the branchy scalar lowering
      }
      body.value = std::move(value.value());
      vector_udfs_[name] = std::move(body);
    }
    return OkStatus();
  }

  void EmitMapTile(const std::string& name, const std::string& suffix,
                   const std::string& attr) {
    out_ << attr << "static void __map_tile_" << name << "_" << suffix
         << "(const double* __in, double* __res, size_t __len,\n"
         << "    size_t __base) {\n"
         << "  for (size_t __i = 0; __i < __len; ++__i) {\n"
         << "    __res[__i] = " << name << "(__in[__i], __base + __i);\n"
         << "  }\n"
         << "}\n";
  }

  void EmitVectorMapKernels() {
    if (vector_udfs_.empty()) {
      return;
    }
    out_ << "// Tiled map kernels: one clone per ISA, dispatched per tile\n"
         << "// on __simd_tier(). Every clone evaluates the same branch-free\n"
         << "// per-element expression, so outputs are bit-identical across\n"
         << "// tiers; only throughput changes.\n";
    for (const auto& [name, body] : vector_udfs_) {
      EmitMapTile(name, "scalar", "");
      out_ << "#if COMPLL_SIMD\n";
      EmitMapTile(name, "avx2", "COMPLL_VEC(\"avx2,fma\")\n");
      EmitMapTile(name, "avx512",
                  "COMPLL_VEC(\"avx512f,avx512bw,avx512vl\")\n");
      out_ << "#endif\n";
      out_ << "static void __map_vec_" << name
           << "_ptr(const double* __in, double* __res, size_t __n) {\n"
           << "  constexpr size_t __tile = 4096;\n"
           << "  for (size_t __b = 0; __b < __n; __b += __tile) {\n"
           << "    const size_t __len = __n - __b < __tile ? __n - __b "
              ": __tile;\n"
           << "#if COMPLL_SIMD\n"
           << "    const int __tier = __simd_tier();\n"
           << "    if (__tier >= 2) {\n"
           << "      __map_tile_" << name
           << "_avx512(__in + __b, __res + __b, __len, __b);\n"
           << "      continue;\n"
           << "    }\n"
           << "    if (__tier >= 1) {\n"
           << "      __map_tile_" << name
           << "_avx2(__in + __b, __res + __b, __len, __b);\n"
           << "      continue;\n"
           << "    }\n"
           << "#endif\n"
           << "    __map_tile_" << name
           << "_scalar(__in + __b, __res + __b, __len, __b);\n"
           << "  }\n"
           << "}\n"
           << "static Array __map_vec_" << name << "(const Array& __in) {\n"
           << "  Array __res(__in.size());\n"
           << "  __map_vec_" << name
           << "_ptr(__in.data(), __res.data(), __in.size());\n"
           << "  return __res;\n"
           << "}\n\n";
    }
  }

  Status EmitFunction(const FunctionDecl& fn) {
    scope_.clear();
    if (fn.name == "encode" || fn.name == "decode") {
      return EmitEntry(fn);
    }
    if (auto it = vector_udfs_.find(fn.name); it != vector_udfs_.end()) {
      // Branch-free form (see PrepareVectorUdfs): decl prefix + one return.
      ASSIGN_OR_RETURN(std::string signature,
                       UdfSignature(fn, /*with_default=*/false));
      out_ << signature << " {\n";
      out_ << "  (void)__idx;\n";
      for (const std::string& decl : it->second.decls) {
        out_ << "  " << decl << "\n";
      }
      out_ << "  return " << it->second.value << ";\n}\n\n";
      return OkStatus();
    }
    ASSIGN_OR_RETURN(std::string signature,
                     UdfSignature(fn, /*with_default=*/false));
    out_ << signature << " {\n";
    out_ << "  (void)__idx;\n";
    for (const Field& param : fn.params) {
      scope_[param.name] = param.type.is_array
                               ? CgType::Array(param.type.scalar)
                               : CgType::Scalar(param.type.scalar);
    }
    return_coerce_ = fn.return_type.scalar;
    indent_ = 1;
    RETURN_IF_ERROR(EmitBlock(fn.body));
    out_ << "  return 0;\n}\n\n";
    return OkStatus();
  }

  Status EmitEntry(const FunctionDecl& fn) {
    if (fn.params.size() < 2) {
      return InvalidArgumentError(fn.name + " must take at least 2 params");
    }
    const bool is_encode = fn.name == "encode";
    const std::string& input = fn.params[0].name;
    const std::string& output = fn.params[1].name;
    const std::string params_type =
        fn.params.size() >= 3 ? fn.params[2].type.struct_name : "";
    const std::string prefix = options_.algorithm_name;

    if (is_encode) {
      out_ << "void " << prefix
           << "_encode(const float* __input, size_t __n, Bytes& __out";
      if (!params_type.empty()) {
        out_ << ", const " << params_type << "& " << fn.params[2].name;
      }
      out_ << ") {\n";
      out_ << "  Array " << input << "(__input, __input + __n);\n";
      out_ << "  Bytes " << output << ";\n";
      scope_[input] = CgType::Array(ScalarType::kFloat);
      scope_[output] = CgType::Bytes();
    } else {
      out_ << "void " << prefix
           << "_decode(const uint8_t* __input, size_t __n, Array& __out";
      if (!params_type.empty()) {
        out_ << ", const " << params_type << "& " << fn.params[2].name;
      }
      out_ << ") {\n";
      out_ << "  Reader __reader_" << input << "{__input, __n, 0};\n";
      out_ << "  Array " << output << ";\n";
      scope_[input] = CgType::Bytes();
      scope_[output] = CgType::Array(ScalarType::kFloat);
      reader_names_[input] = "__reader_" + input;
    }
    if (!params_type.empty()) {
      param_vars_[fn.params[2].name] = params_type;
    }
    // Element index for any udf invoked outside a map/filter loop.
    out_ << "  [[maybe_unused]] constexpr size_t __idx = 0;\n";
    return_coerce_ = ScalarType::kVoid;
    indent_ = 1;
    RETURN_IF_ERROR(EmitBlock(fn.body));
    out_ << "  __out = std::move(" << output << ");\n}\n\n";
    param_vars_.clear();
    reader_names_.clear();
    return OkStatus();
  }

  // ----------------------------------------------------------- statements --

  std::string Indent() const { return std::string(indent_ * 2, ' '); }

  Status EmitBlock(const std::vector<StmtPtr>& body) {
    for (const StmtPtr& stmt : body) {
      RETURN_IF_ERROR(EmitStmt(*stmt));
    }
    return OkStatus();
  }

  Status EmitStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case StmtKind::kDecl: {
        const auto& decl = static_cast<const DeclStmt&>(stmt);
        if (decl.type.is_array) {
          scope_[decl.name] = CgType::Array(decl.type.scalar);
          if (decl.init != nullptr) {
            ASSIGN_OR_RETURN(auto init, EmitExpr(*decl.init));
            out_ << Indent() << "Array " << decl.name << " = " << init.code
                 << ";\n";
          } else {
            out_ << Indent() << "Array " << decl.name << ";\n";
          }
          return OkStatus();
        }
        scope_[decl.name] = CgType::Scalar(decl.type.scalar);
        if (decl.init != nullptr) {
          ASSIGN_OR_RETURN(auto init, EmitExpr(*decl.init));
          out_ << Indent() << "double " << decl.name << " = "
               << Coerce(decl.type.scalar, init.code) << ";\n";
        } else {
          out_ << Indent() << "double " << decl.name << " = 0;\n";
        }
        return OkStatus();
      }
      case StmtKind::kAssign: {
        const auto& assign = static_cast<const AssignStmt&>(stmt);
        ASSIGN_OR_RETURN(auto value, EmitExpr(*assign.value));
        if (assign.target->kind == ExprKind::kVar) {
          const auto& var = static_cast<const VarExpr&>(*assign.target);
          ASSIGN_OR_RETURN(CgType target_type, TypeOfVar(var.name, stmt.line));
          const std::string lhs = VarRef(var.name);
          if (target_type.is_array || target_type.is_bytes) {
            out_ << Indent() << lhs << " = " << value.code << ";\n";
          } else {
            out_ << Indent() << lhs << " = "
                 << Coerce(target_type.scalar, value.code) << ";\n";
          }
          return OkStatus();
        }
        const auto& index_expr = static_cast<const IndexExpr&>(*assign.target);
        ASSIGN_OR_RETURN(auto object, EmitExpr(*index_expr.object));
        ASSIGN_OR_RETURN(auto index, EmitExpr(*index_expr.index));
        out_ << Indent() << object.code << "[static_cast<size_t>("
             << index.code << ")] = " << value.code << ";\n";
        return OkStatus();
      }
      case StmtKind::kReturn: {
        const auto& ret = static_cast<const ReturnStmt&>(stmt);
        if (ret.value == nullptr) {
          out_ << Indent() << "return;\n";
          return OkStatus();
        }
        ASSIGN_OR_RETURN(auto value, EmitExpr(*ret.value));
        out_ << Indent() << "return " << Coerce(return_coerce_, value.code)
             << ";\n";
        return OkStatus();
      }
      case StmtKind::kExpr: {
        const auto& expr_stmt = static_cast<const ExprStmt&>(stmt);
        ASSIGN_OR_RETURN(auto value, EmitExpr(*expr_stmt.expr));
        out_ << Indent() << "(void)(" << value.code << ");\n";
        return OkStatus();
      }
      case StmtKind::kIf: {
        const auto& if_stmt = static_cast<const IfStmt&>(stmt);
        ASSIGN_OR_RETURN(auto condition, EmitExpr(*if_stmt.condition));
        out_ << Indent() << "if ((" << condition.code << ") != 0.0) {\n";
        ++indent_;
        RETURN_IF_ERROR(EmitBlock(if_stmt.then_body));
        --indent_;
        if (!if_stmt.else_body.empty()) {
          out_ << Indent() << "} else {\n";
          ++indent_;
          RETURN_IF_ERROR(EmitBlock(if_stmt.else_body));
          --indent_;
        }
        out_ << Indent() << "}\n";
        return OkStatus();
      }
    }
    return InternalError("codegen: unknown statement kind");
  }

  // ---------------------------------------------------------- expressions --

  struct EmittedExpr {
    std::string code;
    CgType type;
  };

  static std::string Coerce(ScalarType type, const std::string& code) {
    switch (type) {
      case ScalarType::kFloat:
        return "__coerce_float(" + code + ")";
      case ScalarType::kInt32:
        return "__coerce_int32(" + code + ")";
      case ScalarType::kUint1:
      case ScalarType::kUint2:
      case ScalarType::kUint4:
      case ScalarType::kUint8:
        return StrFormat("__coerce_uint(%s, %u)", code.c_str(),
                         ScalarBits(type));
      case ScalarType::kVoid:
      case ScalarType::kParamStruct:
        return code;
    }
    return code;
  }

  std::string VarRef(const std::string& name) const {
    if (scope_.count(name) > 0) {
      return name;
    }
    return "g_" + name;
  }

  StatusOr<CgType> TypeOfVar(const std::string& name, int line) const {
    if (auto it = scope_.find(name); it != scope_.end()) {
      return it->second;
    }
    if (auto it = globals_.find(name); it != globals_.end()) {
      return it->second;
    }
    return InvalidArgumentError(
        StrFormat("codegen: undefined variable '%s' at line %d", name.c_str(),
                  line));
  }

  StatusOr<EmittedExpr> EmitExpr(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kNumber: {
        const auto& number = static_cast<const NumberExpr&>(expr);
        if (number.is_float) {
          return EmittedExpr{StrFormat("%g", number.value),
                             CgType::Scalar(ScalarType::kFloat)};
        }
        return EmittedExpr{
            StrFormat("%lld", static_cast<long long>(number.value)),
            CgType::Scalar(ScalarType::kInt32)};
      }
      case ExprKind::kVar: {
        const auto& var = static_cast<const VarExpr&>(expr);
        ASSIGN_OR_RETURN(CgType type, TypeOfVar(var.name, expr.line));
        return EmittedExpr{VarRef(var.name), type};
      }
      case ExprKind::kUnary: {
        const auto& unary = static_cast<const UnaryExpr&>(expr);
        ASSIGN_OR_RETURN(auto operand, EmitExpr(*unary.operand));
        if (unary.op == TokenKind::kMinus) {
          return EmittedExpr{"(-(" + operand.code + "))", operand.type};
        }
        return EmittedExpr{"(((" + operand.code + ") == 0.0) ? 1.0 : 0.0)",
                           CgType::Scalar(ScalarType::kInt32)};
      }
      case ExprKind::kBinary:
        return EmitBinary(static_cast<const BinaryExpr&>(expr));
      case ExprKind::kMember:
        return EmitMember(static_cast<const MemberExpr&>(expr));
      case ExprKind::kIndex: {
        const auto& index_expr = static_cast<const IndexExpr&>(expr);
        ASSIGN_OR_RETURN(auto object, EmitExpr(*index_expr.object));
        ASSIGN_OR_RETURN(auto index, EmitExpr(*index_expr.index));
        return EmittedExpr{object.code + "[static_cast<size_t>(" +
                               index.code + ")]",
                           CgType::Scalar(object.type.scalar)};
      }
      case ExprKind::kCall:
        return EmitCall(static_cast<const CallExpr&>(expr));
    }
    return InternalError("codegen: unknown expression kind");
  }

  StatusOr<EmittedExpr> EmitBinary(const BinaryExpr& expr) {
    ASSIGN_OR_RETURN(auto lhs, EmitExpr(*expr.lhs));
    ASSIGN_OR_RETURN(auto rhs, EmitExpr(*expr.rhs));
    const bool both_int = lhs.type.IsInt() && rhs.type.IsInt();
    const CgType int_type = CgType::Scalar(ScalarType::kInt32);
    const CgType result_type =
        both_int ? int_type : CgType::Scalar(ScalarType::kFloat);
    auto ll = [](const std::string& code) {
      return "static_cast<long long>(" + code + ")";
    };
    switch (expr.op) {
      case TokenKind::kPlus:
      case TokenKind::kMinus:
      case TokenKind::kStar: {
        const char* op = expr.op == TokenKind::kPlus
                             ? "+"
                             : (expr.op == TokenKind::kMinus ? "-" : "*");
        return EmittedExpr{"(" + lhs.code + " " + op + " " + rhs.code + ")",
                           result_type};
      }
      case TokenKind::kSlash:
        if (both_int) {
          return EmittedExpr{StrFormat("static_cast<double>(%s / %s)",
                                       ll(lhs.code).c_str(),
                                       ll(rhs.code).c_str()),
                             int_type};
        }
        return EmittedExpr{"(" + lhs.code + " / " + rhs.code + ")",
                           result_type};
      case TokenKind::kPercent:
        return EmittedExpr{StrFormat("static_cast<double>(%s %% %s)",
                                     ll(lhs.code).c_str(),
                                     ll(rhs.code).c_str()),
                           int_type};
      case TokenKind::kShl:
        return EmittedExpr{StrFormat("static_cast<double>(%s << %s)",
                                     ll(lhs.code).c_str(),
                                     ll(rhs.code).c_str()),
                           int_type};
      case TokenKind::kShr:
        return EmittedExpr{StrFormat("static_cast<double>(%s >> %s)",
                                     ll(lhs.code).c_str(),
                                     ll(rhs.code).c_str()),
                           int_type};
      case TokenKind::kAmp:
      case TokenKind::kPipe:
      case TokenKind::kCaret: {
        const char* op = expr.op == TokenKind::kAmp
                             ? "&"
                             : (expr.op == TokenKind::kPipe ? "|" : "^");
        return EmittedExpr{StrFormat("static_cast<double>(%s %s %s)",
                                     ll(lhs.code).c_str(), op,
                                     ll(rhs.code).c_str()),
                           int_type};
      }
      case TokenKind::kLess:
      case TokenKind::kGreater:
      case TokenKind::kLessEq:
      case TokenKind::kGreaterEq:
      case TokenKind::kEqEq:
      case TokenKind::kNotEq: {
        const char* op = "==";
        switch (expr.op) {
          case TokenKind::kLess:
            op = "<";
            break;
          case TokenKind::kGreater:
            op = ">";
            break;
          case TokenKind::kLessEq:
            op = "<=";
            break;
          case TokenKind::kGreaterEq:
            op = ">=";
            break;
          case TokenKind::kNotEq:
            op = "!=";
            break;
          default:
            break;
        }
        return EmittedExpr{StrFormat("((%s %s %s) ? 1.0 : 0.0)",
                                     lhs.code.c_str(), op, rhs.code.c_str()),
                           int_type};
      }
      case TokenKind::kAndAnd:
        return EmittedExpr{StrFormat("(((%s != 0.0) && (%s != 0.0)) ? 1.0 : 0.0)",
                                     lhs.code.c_str(), rhs.code.c_str()),
                           int_type};
      case TokenKind::kOrOr:
        return EmittedExpr{StrFormat("(((%s != 0.0) || (%s != 0.0)) ? 1.0 : 0.0)",
                                     lhs.code.c_str(), rhs.code.c_str()),
                           int_type};
      default:
        return InvalidArgumentError("codegen: unsupported binary operator");
    }
  }

  StatusOr<EmittedExpr> EmitMember(const MemberExpr& expr) {
    if (expr.member == "size") {
      ASSIGN_OR_RETURN(auto object, EmitExpr(*expr.object));
      return EmittedExpr{
          "static_cast<double>(" + object.code + ".size())",
          CgType::Scalar(ScalarType::kInt32)};
    }
    if (expr.object->kind == ExprKind::kVar) {
      const auto& var = static_cast<const VarExpr&>(*expr.object);
      if (auto it = param_vars_.find(var.name); it != param_vars_.end()) {
        // Param fields are declared uint8/float etc.; look up the declared
        // type so integer semantics (shifts) come out right.
        const ParamBlock* block = program_.FindParamBlock(it->second);
        ScalarType field_type = ScalarType::kFloat;
        if (block != nullptr) {
          for (const Field& field : block->fields) {
            if (field.name == expr.member) {
              field_type = field.type.scalar;
            }
          }
        }
        return EmittedExpr{var.name + "." + expr.member,
                           CgType::Scalar(field_type)};
      }
    }
    return InvalidArgumentError("codegen: unsupported member access '." +
                                expr.member + "'");
  }

  // Emits a udf reference as a lambda adapting (double, size_t) -> double.
  StatusOr<std::string> UdfLambda(const Expr& udf_expr) {
    if (udf_expr.kind != ExprKind::kVar) {
      return InvalidArgumentError("codegen: udf argument must be a name");
    }
    const std::string name = static_cast<const VarExpr&>(udf_expr).name;
    return "[](double __x, size_t __i) { return " + name + "(__x, __i); }";
  }

  StatusOr<EmittedExpr> EmitCall(const CallExpr& call) {
    const std::string& callee = call.callee;

    auto arg = [&](size_t i) -> StatusOr<EmittedExpr> {
      return EmitExpr(*call.args[i]);
    };

    if (callee == "map" || callee == "filter" || callee == "findex") {
      if (call.args.size() != 2) {
        return InvalidArgumentError("codegen: " + callee + " takes 2 args");
      }
      ASSIGN_OR_RETURN(auto input, arg(0));
      if (callee == "map" && call.args[1]->kind == ExprKind::kVar) {
        // Vector-lowered udfs get the tiled per-ISA kernel instead of the
        // generic per-element loop.
        const std::string udf_name =
            static_cast<const VarExpr&>(*call.args[1]).name;
        if (vector_udfs_.count(udf_name) > 0) {
          ScalarType elem = ScalarType::kFloat;
          if (const FunctionDecl* fn_decl = program_.FindFunction(udf_name)) {
            elem = fn_decl->return_type.scalar;
          }
          return EmittedExpr{"__map_vec_" + udf_name + "(" + input.code + ")",
                             CgType::Array(elem)};
        }
      }
      ASSIGN_OR_RETURN(std::string lambda, UdfLambda(*call.args[1]));
      const std::string fn =
          callee == "map" ? "__map" : (callee == "filter" ? "__filter" : "__findex");
      ScalarType elem = ScalarType::kFloat;
      if (callee == "map") {
        const std::string udf_name =
            static_cast<const VarExpr&>(*call.args[1]).name;
        if (const FunctionDecl* fn_decl = program_.FindFunction(udf_name)) {
          elem = fn_decl->return_type.scalar;
        }
      } else if (callee == "findex") {
        elem = ScalarType::kInt32;
      } else {
        elem = input.type.scalar;
      }
      return EmittedExpr{fn + "(" + input.code + ", " + lambda + ")",
                         CgType::Array(elem)};
    }

    if (callee == "reduce") {
      if (call.args.size() != 2 || call.args[1]->kind != ExprKind::kVar) {
        return InvalidArgumentError("codegen: reduce(G, udf)");
      }
      ASSIGN_OR_RETURN(auto input, arg(0));
      const std::string udf =
          static_cast<const VarExpr&>(*call.args[1]).name;
      std::string fn;
      if (udf == "smaller") {
        fn = "__reduce_min";
      } else if (udf == "greater") {
        fn = "__reduce_max";
      } else if (udf == "sum") {
        fn = "__reduce_sum";
      } else if (udf == "maxAbs") {
        fn = "__reduce_maxabs";
      } else {
        return InvalidArgumentError("codegen: reduce needs a builtin udf");
      }
      return EmittedExpr{fn + "(" + input.code + ")",
                         CgType::Scalar(ScalarType::kFloat)};
    }

    if (callee == "sort") {
      if (call.args.size() != 2 || call.args[1]->kind != ExprKind::kVar) {
        return InvalidArgumentError("codegen: sort(G, order)");
      }
      ASSIGN_OR_RETURN(auto input, arg(0));
      const std::string order =
          static_cast<const VarExpr&>(*call.args[1]).name;
      const std::string fn =
          order == "greater" ? "__sort_desc" : "__sort_asc";
      return EmittedExpr{fn + "(" + input.code + ")", input.type};
    }

    if (callee == "random") {
      if (call.args.size() != 2) {
        return InvalidArgumentError("codegen: random(a, b)");
      }
      ASSIGN_OR_RETURN(auto a, arg(0));
      ASSIGN_OR_RETURN(auto b, arg(1));
      // Inside udfs, __idx is the hidden element index.
      return EmittedExpr{"__random(" + a.code + ", " + b.code +
                             ", kSeed, __idx)",
                         CgType::Scalar(ScalarType::kFloat)};
    }

    if (callee == "concat") {
      // concat only appears as the RHS of an assignment to the output
      // buffer; emit an immediately-invoked lambda building the bytes.
      std::string code = "[&]() { Bytes __b;";
      for (const ExprPtr& argument : call.args) {
        ASSIGN_OR_RETURN(auto value, EmitExpr(*argument));
        if (value.type.is_bytes) {
          code += " __b.insert(__b.end(), " + value.code + ".begin(), " +
                  value.code + ".end());";
        } else if (value.type.is_array) {
          const unsigned bits = ScalarBits(value.type.scalar);
          if (value.type.scalar == ScalarType::kFloat) {
            code += " __append_f32_array(__b, " + value.code + ");";
          } else if (value.type.scalar == ScalarType::kInt32) {
            code += " __append_i32_array(__b, " + value.code + ");";
          } else {
            code += StrFormat(" __append_packed(__b, %s, %u);",
                              value.code.c_str(), bits);
          }
        } else {
          switch (value.type.scalar) {
            case ScalarType::kFloat:
              code += " __append_f32(__b, " + value.code + ");";
              break;
            case ScalarType::kInt32:
              code += " __append_i32(__b, " + value.code + ");";
              break;
            default:
              code += " __append_byte(__b, " + value.code + ");";
              break;
          }
        }
      }
      code += " return __b; }()";
      return EmittedExpr{code, CgType::Bytes()};
    }

    if (callee == "extract") {
      if (!call.type_arg.has_value() || call.args.empty()) {
        return InvalidArgumentError("codegen: extract<T>(buffer[, count])");
      }
      if (call.args[0]->kind != ExprKind::kVar) {
        return InvalidArgumentError("codegen: extract buffer must be a var");
      }
      const std::string buffer =
          static_cast<const VarExpr&>(*call.args[0]).name;
      auto it = reader_names_.find(buffer);
      if (it == reader_names_.end()) {
        return InvalidArgumentError(
            "codegen: extract source must be the decode input buffer");
      }
      const std::string reader = it->second;
      const Type& type = *call.type_arg;
      if (!type.is_array) {
        switch (type.scalar) {
          case ScalarType::kFloat:
            return EmittedExpr{reader + ".read_f32()",
                               CgType::Scalar(ScalarType::kFloat)};
          case ScalarType::kInt32:
            return EmittedExpr{reader + ".read_i32()",
                               CgType::Scalar(ScalarType::kInt32)};
          default:
            return EmittedExpr{reader + ".read_byte()",
                               CgType::Scalar(type.scalar)};
        }
      }
      std::string count = "-1";
      if (call.args.size() == 2) {
        ASSIGN_OR_RETURN(auto count_expr, arg(1));
        count = "static_cast<long long>(" + count_expr.code + ")";
      }
      switch (type.scalar) {
        case ScalarType::kFloat:
          return EmittedExpr{reader + ".read_f32_array(" + count + ")",
                             CgType::Array(ScalarType::kFloat)};
        case ScalarType::kInt32:
          return EmittedExpr{reader + ".read_i32_array(" + count + ")",
                             CgType::Array(ScalarType::kInt32)};
        default:
          return EmittedExpr{
              StrFormat("%s.read_packed(%u, %s)", reader.c_str(),
                        ScalarBits(type.scalar), count.c_str()),
              CgType::Array(type.scalar)};
      }
    }

    // Extension operators with direct lowerings.
    if (callee == "stride" || callee == "gather" || callee == "scatter") {
      std::vector<EmittedExpr> args;
      for (const ExprPtr& argument : call.args) {
        ASSIGN_OR_RETURN(auto value, EmitExpr(*argument));
        args.push_back(std::move(value));
      }
      std::string code = "__" + callee + "(";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) {
          code += ", ";
        }
        code += args[i].code;
      }
      code += ")";
      const ScalarType elem =
          callee == "scatter" ? ScalarType::kFloat : args[0].type.scalar;
      return EmittedExpr{code, CgType::Array(elem)};
    }

    // Math builtins.
    if (callee == "floor" || callee == "ceil" || callee == "sqrt" ||
        callee == "abs") {
      if (call.args.size() != 1) {
        return InvalidArgumentError("codegen: " + callee + " takes 1 arg");
      }
      ASSIGN_OR_RETURN(auto value, arg(0));
      const std::string fn = callee == "abs" ? "std::abs" : "std::" + callee;
      return EmittedExpr{fn + "(" + value.code + ")",
                         CgType::Scalar(ScalarType::kFloat)};
    }
    if (callee == "min" || callee == "max") {
      if (call.args.size() != 2) {
        return InvalidArgumentError("codegen: " + callee + " takes 2 args");
      }
      ASSIGN_OR_RETURN(auto a, arg(0));
      ASSIGN_OR_RETURN(auto b, arg(1));
      return EmittedExpr{StrFormat("std::%s<double>(%s, %s)", callee.c_str(),
                                   a.code.c_str(), b.code.c_str()),
                         CgType::Scalar(ScalarType::kFloat)};
    }

    // User-defined function call.
    if (const FunctionDecl* fn = program_.FindFunction(callee)) {
      std::string code = callee + "(";
      for (size_t i = 0; i < call.args.size(); ++i) {
        ASSIGN_OR_RETURN(auto value, EmitExpr(*call.args[i]));
        code += value.code + ", ";
      }
      code += "__idx)";  // propagate the hidden element index
      return EmittedExpr{code, CgType::Scalar(fn->return_type.scalar)};
    }

    return InvalidArgumentError("codegen: unknown function '" + callee + "'");
  }

  const Program& program_;
  CodegenOptions options_;
  std::ostringstream out_;
  int indent_ = 0;
  ScalarType return_coerce_ = ScalarType::kVoid;
  std::map<std::string, CgType> scope_;
  std::map<std::string, CgType> globals_;
  std::map<std::string, std::string> param_vars_;   // var -> struct name
  std::map<std::string, std::string> reader_names_;  // buffer var -> reader
  // Udfs successfully if-converted for SIMD map lowering (PrepareVectorUdfs).
  std::map<std::string, BranchFreeBody> vector_udfs_;
};

}  // namespace

StatusOr<std::string> GenerateCpp(const Program& program,
                                  const CodegenOptions& options) {
  Codegen generator(program, options);
  return generator.Generate();
}

StatusOr<std::string> GenerateCppFromSource(const std::string& source,
                                            const CodegenOptions& options) {
  ASSIGN_OR_RETURN(Program program, ParseProgram(source));
  return GenerateCpp(program, options);
}

}  // namespace hipress::compll
