#include "src/compll/types.h"

#include "src/common/logging.h"

namespace hipress::compll {

Type Type::Uint(unsigned bits, bool array) {
  switch (bits) {
    case 1:
      return Type{ScalarType::kUint1, array, {}};
    case 2:
      return Type{ScalarType::kUint2, array, {}};
    case 4:
      return Type{ScalarType::kUint4, array, {}};
    case 8:
      return Type{ScalarType::kUint8, array, {}};
    default:
      LOG(Fatal) << "unsupported uint bitwidth " << bits;
      return Type::Void();
  }
}

unsigned ScalarBits(ScalarType type) {
  switch (type) {
    case ScalarType::kUint1:
      return 1;
    case ScalarType::kUint2:
      return 2;
    case ScalarType::kUint4:
      return 4;
    case ScalarType::kUint8:
      return 8;
    case ScalarType::kInt32:
    case ScalarType::kFloat:
      return 32;
    case ScalarType::kVoid:
    case ScalarType::kParamStruct:
      return 0;
  }
  return 0;
}

std::optional<ScalarType> ParseScalarType(const std::string& name) {
  if (name == "void") {
    return ScalarType::kVoid;
  }
  if (name == "uint1") {
    return ScalarType::kUint1;
  }
  if (name == "uint2") {
    return ScalarType::kUint2;
  }
  if (name == "uint4") {
    return ScalarType::kUint4;
  }
  if (name == "uint8") {
    return ScalarType::kUint8;
  }
  if (name == "int32") {
    return ScalarType::kInt32;
  }
  if (name == "float") {
    return ScalarType::kFloat;
  }
  return std::nullopt;
}

std::string TypeName(const Type& type) {
  std::string base;
  switch (type.scalar) {
    case ScalarType::kVoid:
      base = "void";
      break;
    case ScalarType::kUint1:
      base = "uint1";
      break;
    case ScalarType::kUint2:
      base = "uint2";
      break;
    case ScalarType::kUint4:
      base = "uint4";
      break;
    case ScalarType::kUint8:
      base = "uint8";
      break;
    case ScalarType::kInt32:
      base = "int32";
      break;
    case ScalarType::kFloat:
      base = "float";
      break;
    case ScalarType::kParamStruct:
      base = type.struct_name;
      break;
  }
  if (type.is_array) {
    base += "*";
  }
  return base;
}

std::string CppStorageType(ScalarType type) {
  switch (type) {
    case ScalarType::kUint1:
    case ScalarType::kUint2:
    case ScalarType::kUint4:
    case ScalarType::kUint8:
      return "uint8_t";
    case ScalarType::kInt32:
      return "int32_t";
    case ScalarType::kFloat:
      return "float";
    case ScalarType::kVoid:
      return "void";
    case ScalarType::kParamStruct:
      return "struct";
  }
  return "void";
}

}  // namespace hipress::compll
