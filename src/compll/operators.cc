#include "src/compll/operators.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <mutex>

#include "src/common/bitops.h"
#include "src/common/thread_pool.h"
#include "src/compress/compressor.h"

namespace hipress::compll {
namespace {

constexpr size_t kParallelGrain = 32 * 1024;

// Canonical deterministic sum schedule, shared with the SIMD kernels
// (src/compress/simd_kernels.h) and with CompLL-generated code: within a
// 4096-element block, lane j accumulates elements with index = j (mod 8)
// and the 8 lanes merge in ascending order. Block partials merge in block
// order. Any implementation following this schedule — scalar, AVX2,
// AVX-512, interpreter, generated — produces bit-identical sums at every
// input size and thread count.
constexpr size_t kSumBlockElements = 4096;

double BlockSum8(const double* x, size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  const size_t n8 = n & ~static_cast<size_t>(7);
  for (size_t i = 0; i < n8; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      lanes[j] += x[i + j];
    }
  }
  for (size_t j = 0; j < n - n8; ++j) {
    lanes[j] += x[n8 + j];
  }
  double r = 0.0;
  for (size_t j = 0; j < 8; ++j) {
    r += lanes[j];
  }
  return r;
}

double BlockedSum(std::span<const double> input) {
  const size_t num_blocks =
      (input.size() + kSumBlockElements - 1) / kSumBlockElements;
  std::vector<double> partials(num_blocks);
  ThreadPool::Global().ParallelFor(
      num_blocks, kParallelGrain / kSumBlockElements + 1,
      [&](size_t block_begin, size_t block_end) {
        for (size_t b = block_begin; b < block_end; ++b) {
          const size_t begin = b * kSumBlockElements;
          const size_t end =
              std::min(input.size(), begin + kSumBlockElements);
          partials[b] = BlockSum8(input.data() + begin, end - begin);
        }
      });
  double total = 0.0;
  for (const double partial : partials) {
    total += partial;
  }
  return total;
}

}  // namespace

StatusOr<BuiltinUdf> ParseBuiltinUdf(const std::string& name) {
  if (name == "smaller") {
    return BuiltinUdf::kSmaller;
  }
  if (name == "greater") {
    return BuiltinUdf::kGreater;
  }
  if (name == "sum") {
    return BuiltinUdf::kSum;
  }
  if (name == "maxAbs") {
    return BuiltinUdf::kMaxAbs;
  }
  return NotFoundError("unknown builtin udf: " + name);
}

std::vector<double> MapOp(std::span<const double> input,
                          const std::function<double(double)>& udf) {
  std::vector<double> output(input.size());
  ThreadPool::Global().ParallelFor(
      input.size(), kParallelGrain, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          output[i] = udf(input[i]);
        }
      });
  return output;
}

double ReduceOp(std::span<const double> input, BuiltinUdf udf) {
  if (input.empty()) {
    return 0.0;
  }
  if (udf == BuiltinUdf::kSum) {
    // Sum is not associative in floating point; use the canonical blocked
    // schedule so the result matches the SIMD kernels and generated code
    // bit for bit regardless of sharding.
    return BlockedSum(input);
  }
  auto combine = [udf](double a, double b) {
    switch (udf) {
      case BuiltinUdf::kSmaller:
        return std::min(a, b);
      case BuiltinUdf::kGreater:
        return std::max(a, b);
      case BuiltinUdf::kSum:
        return a + b;
      case BuiltinUdf::kMaxAbs:
        return std::max(std::abs(a), std::abs(b));
    }
    return a;
  };
  // Per-shard partials merged afterwards; min/max/maxabs are associative
  // and commutative, so shard order does not matter.
  std::vector<double> partials;
  std::mutex partials_mutex;
  ThreadPool::Global().ParallelFor(
      input.size(), kParallelGrain, [&](size_t begin, size_t end) {
        double local =
            udf == BuiltinUdf::kMaxAbs ? std::abs(input[begin]) : input[begin];
        for (size_t i = begin + 1; i < end; ++i) {
          local = combine(local, input[i]);
        }
        std::lock_guard<std::mutex> lock(partials_mutex);
        partials.push_back(local);
      });
  double result = partials[0];
  for (size_t i = 1; i < partials.size(); ++i) {
    result = combine(result, partials[i]);
  }
  return result;
}

double ReduceOp(std::span<const double> input,
                const std::function<double(double, double)>& udf) {
  if (input.empty()) {
    return 0.0;
  }
  double accum = input[0];
  for (size_t i = 1; i < input.size(); ++i) {
    accum = udf(accum, input[i]);
  }
  return accum;
}

std::vector<double> FilterOp(std::span<const double> input,
                             const std::function<double(double)>& pred) {
  std::vector<double> output;
  output.reserve(input.size() / 8);
  for (const double v : input) {
    if (pred(v) != 0.0) {
      output.push_back(v);
    }
  }
  return output;
}

std::vector<double> FilterIndexOp(std::span<const double> input,
                                  const std::function<double(double)>& pred) {
  std::vector<double> output;
  output.reserve(input.size() / 8);
  for (size_t i = 0; i < input.size(); ++i) {
    if (pred(input[i]) != 0.0) {
      output.push_back(static_cast<double>(i));
    }
  }
  return output;
}

std::vector<double> SortOp(std::span<const double> input, BuiltinUdf order) {
  std::vector<double> output(input.begin(), input.end());
  if (order == BuiltinUdf::kGreater) {
    std::sort(output.begin(), output.end(), std::greater<double>());
  } else {
    std::sort(output.begin(), output.end());
  }
  return output;
}

double RandomOp(double a, double b, uint64_t seed, uint64_t index) {
  return a + (b - a) * static_cast<double>(HashUniform(seed, index));
}

// ------------------------------------------------------------------ concat

void ConcatBuilder::AppendScalar(ScalarType type, double value) {
  switch (type) {
    case ScalarType::kFloat: {
      const float f = static_cast<float>(value);
      const auto* p = reinterpret_cast<const uint8_t*>(&f);
      buffer_.insert(buffer_.end(), p, p + sizeof(f));
      return;
    }
    case ScalarType::kInt32: {
      const int32_t i = static_cast<int32_t>(value);
      const auto* p = reinterpret_cast<const uint8_t*>(&i);
      buffer_.insert(buffer_.end(), p, p + sizeof(i));
      return;
    }
    case ScalarType::kUint1:
    case ScalarType::kUint2:
    case ScalarType::kUint4:
    case ScalarType::kUint8: {
      // Scalars of sub-byte type occupy one byte (Section 4.3: unsupported
      // widths are stored in a byte and extracted with bit operations).
      const uint8_t byte = static_cast<uint8_t>(
          CoerceToType(type, value));
      buffer_.push_back(byte);
      return;
    }
    case ScalarType::kVoid:
    case ScalarType::kParamStruct:
      return;
  }
}

void ConcatBuilder::AppendArray(ScalarType elem_type,
                                std::span<const double> values) {
  const unsigned bits = ScalarBits(elem_type);
  if (elem_type == ScalarType::kFloat) {
    const size_t offset = buffer_.size();
    buffer_.resize(offset + values.size() * sizeof(float));
    auto* out = reinterpret_cast<float*>(buffer_.data() + offset);
    for (size_t i = 0; i < values.size(); ++i) {
      out[i] = static_cast<float>(values[i]);
    }
    return;
  }
  if (elem_type == ScalarType::kInt32) {
    const size_t offset = buffer_.size();
    buffer_.resize(offset + values.size() * sizeof(int32_t));
    auto* out = reinterpret_cast<int32_t*>(buffer_.data() + offset);
    for (size_t i = 0; i < values.size(); ++i) {
      out[i] = static_cast<int32_t>(values[i]);
    }
    return;
  }
  // Sub-byte (and uint8) arrays: bit-pack with minimal zero padding so the
  // array occupies a whole number of bytes.
  const size_t offset = buffer_.size();
  buffer_.resize(offset + PackedBytes(values.size(), bits), 0);
  uint8_t* out = buffer_.data() + offset;
  for (size_t i = 0; i < values.size(); ++i) {
    const uint32_t v =
        static_cast<uint32_t>(CoerceToType(elem_type, values[i]));
    WriteBits(out, i * bits, bits, v);
  }
}

// ----------------------------------------------------------------- extract

StatusOr<double> ExtractReader::ReadScalar(ScalarType type) {
  switch (type) {
    case ScalarType::kFloat: {
      if (remaining() < sizeof(float)) {
        return OutOfRangeError("extract<float>: buffer exhausted");
      }
      float f;
      std::memcpy(&f, buffer_.data() + *cursor_, sizeof(f));
      *cursor_ += sizeof(f);
      return static_cast<double>(f);
    }
    case ScalarType::kInt32: {
      if (remaining() < sizeof(int32_t)) {
        return OutOfRangeError("extract<int32>: buffer exhausted");
      }
      int32_t i;
      std::memcpy(&i, buffer_.data() + *cursor_, sizeof(i));
      *cursor_ += sizeof(i);
      return static_cast<double>(i);
    }
    case ScalarType::kUint1:
    case ScalarType::kUint2:
    case ScalarType::kUint4:
    case ScalarType::kUint8: {
      if (remaining() < 1) {
        return OutOfRangeError("extract<uintN>: buffer exhausted");
      }
      const uint8_t byte = buffer_[*cursor_];
      *cursor_ += 1;
      return CoerceToType(type, static_cast<double>(byte));
    }
    case ScalarType::kVoid:
    case ScalarType::kParamStruct:
      return InvalidArgumentError("extract: unsupported scalar type");
  }
  return InvalidArgumentError("extract: unsupported scalar type");
}

StatusOr<std::vector<double>> ExtractReader::ReadArray(ScalarType elem_type,
                                                       long long count) {
  const unsigned bits = ScalarBits(elem_type);
  if (bits == 0) {
    return InvalidArgumentError("extract: unsupported array element type");
  }
  size_t elements;
  size_t bytes;
  if (count < 0) {
    // Consume the rest of the buffer; element count inferred from bits.
    bytes = remaining();
    elements = bytes * 8 / bits;
  } else {
    elements = static_cast<size_t>(count);
    bytes = elem_type == ScalarType::kFloat || elem_type == ScalarType::kInt32
                ? elements * 4
                : PackedBytes(elements, bits);
    if (bytes > remaining()) {
      return OutOfRangeError("extract<T*>: buffer exhausted");
    }
  }

  std::vector<double> values(elements);
  const uint8_t* base = buffer_.data() + *cursor_;
  if (elem_type == ScalarType::kFloat) {
    for (size_t i = 0; i < elements; ++i) {
      float f;
      std::memcpy(&f, base + i * sizeof(float), sizeof(f));
      values[i] = static_cast<double>(f);
    }
  } else if (elem_type == ScalarType::kInt32) {
    for (size_t i = 0; i < elements; ++i) {
      int32_t v;
      std::memcpy(&v, base + i * sizeof(int32_t), sizeof(v));
      values[i] = static_cast<double>(v);
    }
  } else {
    for (size_t i = 0; i < elements; ++i) {
      values[i] = static_cast<double>(ReadBits(base, i * bits, bits));
    }
  }
  *cursor_ += bytes;
  return values;
}

}  // namespace hipress::compll
