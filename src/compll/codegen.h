// CompLL code generator.
//
// The paper's CompLL translates DSL programs into CUDA kernels wired into
// the DNN system. Our substrate has no GPU, so the generator emits a
// self-contained C++ translation unit with the same structure a CUDA
// backend would produce: a runtime preamble (the common operator library,
// specialized per call site), file-scope globals, user-defined functions
// (taking a hidden element-index parameter so counter-based randomness is
// reproducible — the GPU analogue is the thread id), and the two entry
// points:
//
//   void <name>_encode(const float* input, size_t n,
//                      std::vector<uint8_t>& compressed, EncodeParams p);
//   void <name>_decode(const uint8_t* input, size_t n,
//                      std::vector<float>& gradient, DecodeParams p);
//
// Generated sources compile standalone (tests compile them with the host
// compiler); semantics are cross-validated against the interpreter.
#ifndef HIPRESS_SRC_COMPLL_CODEGEN_H_
#define HIPRESS_SRC_COMPLL_CODEGEN_H_

#include <string>

#include "src/common/status.h"
#include "src/compll/ast.h"

namespace hipress::compll {

struct CodegenOptions {
  // Namespace / symbol prefix for the generated unit.
  std::string algorithm_name = "algorithm";
  uint64_t seed = 0x5eed;
  // Emit the SIMD backend: branch-free (if-converted) udfs, tiled map
  // kernels cloned per ISA (scalar/AVX2/AVX-512) behind a runtime CPUID
  // dispatch, and the blocked vector-width-invariant reduce. The emitted
  // unit still compiles and runs everywhere — non-GCC or non-x86 hosts
  // (and -DCOMPLL_FORCE_SCALAR / -DHIPRESS_FORCE_SCALAR builds) collapse
  // to the scalar clones. Outputs are bit-identical across tiers.
  bool simd = true;
};

// Generates a C++ translation unit for the program. Fails on constructs the
// generator cannot translate (which the built-in programs never use).
StatusOr<std::string> GenerateCpp(const Program& program,
                                  const CodegenOptions& options);

// Parses `source` then generates (convenience for tools/tests).
StatusOr<std::string> GenerateCppFromSource(const std::string& source,
                                            const CodegenOptions& options);

}  // namespace hipress::compll

#endif  // HIPRESS_SRC_COMPLL_CODEGEN_H_
