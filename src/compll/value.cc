#include "src/compll/value.h"

#include <cmath>
#include <cstdint>

#include "src/common/string_util.h"

namespace hipress::compll {

std::string Value::DebugString() const {
  switch (kind) {
    case ValueKind::kScalar:
      return StrFormat("%s(%g)", TypeName(Type{elem_type, false, {}}).c_str(),
                       scalar);
    case ValueKind::kArray:
      return StrFormat("%s*[%zu]",
                       TypeName(Type{elem_type, false, {}}).c_str(), size());
    case ValueKind::kBytes:
      return StrFormat("bytes[%zu]", size());
  }
  return "?";
}

double CoerceToType(ScalarType type, double v) {
  switch (type) {
    case ScalarType::kFloat:
      return static_cast<double>(static_cast<float>(v));
    case ScalarType::kInt32:
      return static_cast<double>(static_cast<int32_t>(v));
    case ScalarType::kUint1:
    case ScalarType::kUint2:
    case ScalarType::kUint4:
    case ScalarType::kUint8: {
      const unsigned bits = ScalarBits(type);
      const uint64_t mask = (1ull << bits) - 1;
      // Truncate toward zero then wrap, like C unsigned conversion.
      const auto integral = static_cast<int64_t>(v);
      return static_cast<double>(static_cast<uint64_t>(integral) & mask);
    }
    case ScalarType::kVoid:
    case ScalarType::kParamStruct:
      return v;
  }
  return v;
}

}  // namespace hipress::compll
