#include "src/compll/parser.h"

#include <utility>

#include "src/common/string_util.h"

namespace hipress::compll {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Program> Parse() {
    Program program;
    while (!AtEnd()) {
      if (CheckIdent("param")) {
        auto block = ParseParamBlock();
        if (!block.ok()) {
          return block.status();
        }
        program.param_blocks.push_back(std::move(block).value());
        continue;
      }
      // Either a global declaration or a function definition; both start
      // with a type name.
      auto result = ParseGlobalOrFunction(&program);
      if (!result.ok()) {
        return result;
      }
    }
    return program;
  }

 private:
  // ---------------------------------------------------------- utilities --

  const Token& Peek(size_t ahead = 0) const {
    const size_t index = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[index];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEof; }

  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool CheckIdent(const std::string& text) const {
    return Peek().kind == TokenKind::kIdentifier && Peek().text == text;
  }

  bool Match(TokenKind kind) {
    if (Check(kind)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Expect(TokenKind kind, const char* context) {
    if (Check(kind)) {
      Advance();
      return OkStatus();
    }
    return Error(StrFormat("expected %s %s, found %s '%s'",
                           TokenKindName(kind), context,
                           TokenKindName(Peek().kind), Peek().text.c_str()));
  }

  Status Error(const std::string& message) const {
    return InvalidArgumentError(
        StrFormat("parse error at line %d: %s", Peek().line, message.c_str()));
  }

  // True if the current token begins a type (scalar type name or a declared
  // param struct name).
  bool AtType(const Program* program) const {
    if (Peek().kind != TokenKind::kIdentifier) {
      return false;
    }
    if (ParseScalarType(Peek().text).has_value()) {
      return true;
    }
    return program != nullptr && program->FindParamBlock(Peek().text) != nullptr;
  }

  // Parses "type" or "type*".
  StatusOr<Type> ParseType(const Program* program) {
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected a type name");
    }
    Type type;
    const std::string name = Peek().text;
    if (auto scalar = ParseScalarType(name); scalar.has_value()) {
      type.scalar = *scalar;
    } else if (program != nullptr &&
               program->FindParamBlock(name) != nullptr) {
      type = Type::Struct(name);
    } else {
      return Error("unknown type '" + name + "'");
    }
    Advance();
    if (Match(TokenKind::kStar)) {
      type.is_array = true;
    }
    return type;
  }

  // ---------------------------------------------------------- top level --

  StatusOr<ParamBlock> ParseParamBlock() {
    Advance();  // 'param'
    if (!Check(TokenKind::kIdentifier)) {
      return Error("expected param block name");
    }
    ParamBlock block;
    block.name = Advance().text;
    RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "after param block name"));
    while (!Check(TokenKind::kRBrace)) {
      ASSIGN_OR_RETURN(Type type, ParseType(nullptr));
      if (!Check(TokenKind::kIdentifier)) {
        return Error("expected field name in param block");
      }
      const std::string name = Advance().text;
      RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "after param field"));
      block.fields.push_back(Field{type, name});
    }
    Advance();  // '}'
    return block;
  }

  Status ParseGlobalOrFunction(Program* program) {
    ASSIGN_OR_RETURN(Type type, ParseType(program));
    if (!Check(TokenKind::kIdentifier)) {
      return Error("expected identifier after type");
    }
    const std::string name = Advance().text;
    if (Check(TokenKind::kLParen)) {
      return ParseFunctionRest(program, type, name);
    }
    // Global declaration: one or more comma-separated names.
    GlobalDecl decl;
    decl.type = type;
    decl.names.push_back(name);
    while (Match(TokenKind::kComma)) {
      if (!Check(TokenKind::kIdentifier)) {
        return Error("expected identifier in declaration list");
      }
      decl.names.push_back(Advance().text);
    }
    RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "after global declaration"));
    program->globals.push_back(std::move(decl));
    return OkStatus();
  }

  Status ParseFunctionRest(Program* program, const Type& return_type,
                           const std::string& name) {
    FunctionDecl fn;
    fn.return_type = return_type;
    fn.name = name;
    Advance();  // '('
    if (!Check(TokenKind::kRParen)) {
      for (;;) {
        ASSIGN_OR_RETURN(Type type, ParseType(program));
        if (!Check(TokenKind::kIdentifier)) {
          return Error("expected parameter name");
        }
        fn.params.push_back(Field{type, Advance().text});
        if (!Match(TokenKind::kComma)) {
          break;
        }
      }
    }
    RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after parameter list"));
    RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "to open function body"));
    ASSIGN_OR_RETURN(fn.body, ParseBlockBody(program));
    program->functions.push_back(std::move(fn));
    return OkStatus();
  }

  // ---------------------------------------------------------- statements --

  // Parses statements until '}' (consumed).
  StatusOr<std::vector<StmtPtr>> ParseBlockBody(const Program* program) {
    std::vector<StmtPtr> body;
    while (!Check(TokenKind::kRBrace)) {
      if (AtEnd()) {
        return Error("unexpected end of input in block");
      }
      ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement(program));
      body.push_back(std::move(stmt));
    }
    Advance();  // '}'
    return body;
  }

  StatusOr<StmtPtr> ParseStatement(const Program* program) {
    const int line = Peek().line;
    if (CheckIdent("return")) {
      Advance();
      ExprPtr value;
      if (!Check(TokenKind::kSemicolon)) {
        ASSIGN_OR_RETURN(value, ParseExpression());
      }
      RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "after return"));
      return StmtPtr(new ReturnStmt(std::move(value), line));
    }
    if (CheckIdent("if")) {
      return ParseIf(program);
    }
    if (AtType(program) && Peek(1).kind == TokenKind::kIdentifier) {
      // Declaration.
      ASSIGN_OR_RETURN(Type type, ParseType(program));
      const std::string name = Advance().text;
      ExprPtr init;
      if (Match(TokenKind::kAssign)) {
        ASSIGN_OR_RETURN(init, ParseExpression());
      }
      RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "after declaration"));
      return StmtPtr(new DeclStmt(type, name, std::move(init), line));
    }
    if (AtType(program) && Peek(1).kind == TokenKind::kStar &&
        Peek(2).kind == TokenKind::kIdentifier) {
      // Array declaration: "uint2* Q = ...".
      ASSIGN_OR_RETURN(Type type, ParseType(program));
      const std::string name = Advance().text;
      ExprPtr init;
      if (Match(TokenKind::kAssign)) {
        ASSIGN_OR_RETURN(init, ParseExpression());
      }
      RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "after declaration"));
      return StmtPtr(new DeclStmt(type, name, std::move(init), line));
    }
    // Assignment or expression statement.
    ASSIGN_OR_RETURN(ExprPtr expr, ParseExpression());
    if (Match(TokenKind::kAssign)) {
      if (expr->kind != ExprKind::kVar && expr->kind != ExprKind::kIndex) {
        return Error("assignment target must be a variable or element");
      }
      ASSIGN_OR_RETURN(ExprPtr value, ParseExpression());
      RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "after assignment"));
      return StmtPtr(new AssignStmt(std::move(expr), std::move(value), line));
    }
    RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "after expression"));
    return StmtPtr(new ExprStmt(std::move(expr), line));
  }

  StatusOr<StmtPtr> ParseIf(const Program* program) {
    const int line = Peek().line;
    Advance();  // 'if'
    RETURN_IF_ERROR(Expect(TokenKind::kLParen, "after if"));
    ASSIGN_OR_RETURN(ExprPtr condition, ParseExpression());
    RETURN_IF_ERROR(Expect(TokenKind::kRParen, "after if condition"));
    auto stmt = std::make_unique<IfStmt>(std::move(condition), line);
    RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "to open if body"));
    ASSIGN_OR_RETURN(stmt->then_body, ParseBlockBody(program));
    if (CheckIdent("else")) {
      Advance();
      RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "to open else body"));
      ASSIGN_OR_RETURN(stmt->else_body, ParseBlockBody(program));
    }
    return StmtPtr(std::move(stmt));
  }

  // --------------------------------------------------------- expressions --

  StatusOr<ExprPtr> ParseExpression() { return ParseBinary(0); }

  // Binary operator precedence, low to high.
  static int Precedence(TokenKind kind) {
    switch (kind) {
      case TokenKind::kOrOr:
        return 1;
      case TokenKind::kAndAnd:
        return 2;
      case TokenKind::kPipe:
        return 3;
      case TokenKind::kCaret:
        return 4;
      case TokenKind::kAmp:
        return 5;
      case TokenKind::kEqEq:
      case TokenKind::kNotEq:
        return 6;
      case TokenKind::kLess:
      case TokenKind::kGreater:
      case TokenKind::kLessEq:
      case TokenKind::kGreaterEq:
        return 7;
      case TokenKind::kShl:
      case TokenKind::kShr:
        return 8;
      case TokenKind::kPlus:
      case TokenKind::kMinus:
        return 9;
      case TokenKind::kStar:
      case TokenKind::kSlash:
      case TokenKind::kPercent:
        return 10;
      default:
        return 0;
    }
  }

  StatusOr<ExprPtr> ParseBinary(int min_precedence) {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      const TokenKind op = Peek().kind;
      const int precedence = Precedence(op);
      if (precedence == 0 || precedence < min_precedence) {
        return lhs;
      }
      const int line = Peek().line;
      Advance();
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseBinary(precedence + 1));
      lhs = std::make_unique<BinaryExpr>(op, std::move(lhs), std::move(rhs),
                                         line);
    }
  }

  StatusOr<ExprPtr> ParseUnary() {
    if (Check(TokenKind::kMinus) || Check(TokenKind::kBang)) {
      const TokenKind op = Peek().kind;
      const int line = Advance().line;
      ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return ExprPtr(new UnaryExpr(op, std::move(operand), line));
    }
    return ParsePostfix();
  }

  StatusOr<ExprPtr> ParsePostfix() {
    ASSIGN_OR_RETURN(ExprPtr expr, ParsePrimary());
    for (;;) {
      if (Check(TokenKind::kDot)) {
        const int line = Advance().line;
        if (!Check(TokenKind::kIdentifier)) {
          return Error("expected member name after '.'");
        }
        expr = std::make_unique<MemberExpr>(std::move(expr), Advance().text,
                                            line);
        continue;
      }
      if (Check(TokenKind::kLBracket)) {
        const int line = Advance().line;
        ASSIGN_OR_RETURN(ExprPtr index, ParseExpression());
        RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "after index"));
        expr = std::make_unique<IndexExpr>(std::move(expr), std::move(index),
                                           line);
        continue;
      }
      return expr;
    }
  }

  // True when the upcoming tokens match '<' type ['*'] '>' '(' — a generic
  // call like random<float>(...) rather than a less-than comparison.
  bool AtGenericCallSuffix() const {
    if (Peek().kind != TokenKind::kLess) {
      return false;
    }
    size_t i = 1;
    if (Peek(i).kind != TokenKind::kIdentifier ||
        !ParseScalarType(Peek(i).text).has_value()) {
      return false;
    }
    ++i;
    if (Peek(i).kind == TokenKind::kStar) {
      ++i;
    }
    return Peek(i).kind == TokenKind::kGreater &&
           Peek(i + 1).kind == TokenKind::kLParen;
  }

  StatusOr<ExprPtr> ParsePrimary() {
    const Token& token = Peek();
    if (token.kind == TokenKind::kIntLiteral ||
        token.kind == TokenKind::kFloatLiteral) {
      const bool is_float = token.kind == TokenKind::kFloatLiteral;
      const double value = token.number;
      const int line = token.line;
      Advance();
      return ExprPtr(new NumberExpr(value, is_float, line));
    }
    if (token.kind == TokenKind::kLParen) {
      Advance();
      ASSIGN_OR_RETURN(ExprPtr expr, ParseExpression());
      RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close expression"));
      return expr;
    }
    if (token.kind == TokenKind::kIdentifier) {
      const std::string name = token.text;
      const int line = token.line;
      Advance();
      // Generic call: name<type>(args).
      if (AtGenericCallSuffix()) {
        Advance();  // '<'
        ASSIGN_OR_RETURN(Type type_arg, ParseType(nullptr));
        RETURN_IF_ERROR(Expect(TokenKind::kGreater, "after type argument"));
        return ParseCallArgs(name, type_arg, line);
      }
      // Plain call: name(args).
      if (Check(TokenKind::kLParen)) {
        return ParseCallArgs(name, std::nullopt, line);
      }
      return ExprPtr(new VarExpr(name, line));
    }
    return Error(StrFormat("unexpected token %s '%s' in expression",
                           TokenKindName(token.kind), token.text.c_str()));
  }

  StatusOr<ExprPtr> ParseCallArgs(const std::string& callee,
                                  std::optional<Type> type_arg, int line) {
    auto call = std::make_unique<CallExpr>(callee, line);
    call->type_arg = type_arg;
    RETURN_IF_ERROR(Expect(TokenKind::kLParen, "to open call"));
    if (!Check(TokenKind::kRParen)) {
      for (;;) {
        ASSIGN_OR_RETURN(ExprPtr arg, ParseExpression());
        call->args.push_back(std::move(arg));
        if (!Match(TokenKind::kComma)) {
          break;
        }
      }
    }
    RETURN_IF_ERROR(Expect(TokenKind::kRParen, "to close call"));
    return ExprPtr(std::move(call));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Program> ParseProgram(const std::string& source) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace hipress::compll
