// CompLL DSL type system.
//
// The DSL supports the basic data types from Section 4.3 — uint1, uint2,
// uint4, uint8, int32, float — plus array (pointer) variants, void for
// procedures, byte buffers for compressed outputs, and named param structs.
// Sub-byte uint types are first-class: the code generator packs arrays of
// them with minimal zero padding, and the interpreter models their reduced
// range exactly.
#ifndef HIPRESS_SRC_COMPLL_TYPES_H_
#define HIPRESS_SRC_COMPLL_TYPES_H_

#include <optional>
#include <string>

namespace hipress::compll {

enum class ScalarType {
  kVoid,
  kUint1,
  kUint2,
  kUint4,
  kUint8,
  kInt32,
  kFloat,
  kParamStruct,  // named parameter block
};

struct Type {
  ScalarType scalar = ScalarType::kVoid;
  bool is_array = false;           // T* in the DSL
  std::string struct_name;         // for kParamStruct

  bool operator==(const Type& other) const {
    return scalar == other.scalar && is_array == other.is_array &&
           struct_name == other.struct_name;
  }

  static Type Void() { return Type{ScalarType::kVoid, false, {}}; }
  static Type Float(bool array = false) {
    return Type{ScalarType::kFloat, array, {}};
  }
  static Type Int32(bool array = false) {
    return Type{ScalarType::kInt32, array, {}};
  }
  static Type Uint(unsigned bits, bool array = false);
  static Type Struct(std::string name) {
    return Type{ScalarType::kParamStruct, false, std::move(name)};
  }
};

// Bit width of a scalar type (0 for void/struct).
unsigned ScalarBits(ScalarType type);

// Parses a type keyword ("uint2", "float", ...); nullopt if not a type name.
std::optional<ScalarType> ParseScalarType(const std::string& name);

// DSL spelling ("uint2", "float", ...).
std::string TypeName(const Type& type);

// C++ storage type emitted by the code generator ("uint8_t", "float", ...).
// Sub-byte uints are stored in a byte each (packed only inside arrays).
std::string CppStorageType(ScalarType type);

}  // namespace hipress::compll

#endif  // HIPRESS_SRC_COMPLL_TYPES_H_
