#include "src/compress/oss_baselines.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "src/common/bitops.h"
#include "src/common/buffer_pool.h"
#include "src/compress/sparse_format.h"

namespace hipress {
namespace {

constexpr size_t kOnebitHeaderBytes = kCountHeaderBytes + 2 * sizeof(float);
constexpr size_t kTbqHeaderBytes = kCountHeaderBytes + sizeof(float);
constexpr size_t kTernGradHeaderBytes =
    kCountHeaderBytes + sizeof(uint8_t) + 2 * sizeof(float);

}  // namespace

// ---------------------------------------------------------------- onebit --

StatusOr<size_t> OssOnebitCompressor::EncodeInto(
    std::span<const float> gradient, std::span<uint8_t> out) const {
  const size_t n = gradient.size();
  const size_t needed = kOnebitHeaderBytes + PackedBytes(n, 1);
  if (out.size() < needed) {
    return ResourceExhaustedError("oss-onebit: output capacity too small");
  }
  uint8_t* bytes = out.data();

  // Pass 1 & 2: separate scans for positive and negative means (the OSS
  // version reduces each side independently).
  double pos_sum = 0.0;
  size_t pos_count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (gradient[i] >= 0.0f) {
      pos_sum += gradient[i];
      ++pos_count;
    }
  }
  double neg_sum = 0.0;
  size_t neg_count = 0;
  for (size_t i = 0; i < n; ++i) {
    if (gradient[i] < 0.0f) {
      neg_sum += gradient[i];
      ++neg_count;
    }
  }
  const float pos_mean =
      pos_count > 0 ? static_cast<float>(pos_sum / static_cast<double>(pos_count)) : 0.0f;
  const float neg_mean =
      neg_count > 0 ? static_cast<float>(neg_sum / static_cast<double>(neg_count)) : 0.0f;

  const uint32_t count = static_cast<uint32_t>(n);
  std::memcpy(bytes, &count, sizeof(count));
  std::memcpy(bytes + sizeof(count), &neg_mean, sizeof(neg_mean));
  std::memcpy(bytes + sizeof(count) + sizeof(neg_mean), &pos_mean,
              sizeof(pos_mean));

  // Pass 3: per-bit writes through the generic bit I/O path.
  uint8_t* packed = bytes + kOnebitHeaderBytes;
  std::memset(packed, 0, PackedBytes(n, 1));
  for (size_t i = 0; i < n; ++i) {
    WriteBits(packed, i, 1, gradient[i] >= 0.0f ? 1u : 0u);
  }
  return needed;
}

Status OssOnebitCompressor::Decode(const ByteBuffer& in,
                                   std::span<float> out) const {
  if (in.size() < kOnebitHeaderBytes) {
    return InvalidArgumentError("oss-onebit: buffer shorter than header");
  }
  size_t offset = 0;
  const uint32_t count = in.ReadAt<uint32_t>(offset);
  const float neg_mean = in.ReadAt<float>(offset);
  const float pos_mean = in.ReadAt<float>(offset);
  if (out.size() != count) {
    return InvalidArgumentError("oss-onebit: output size mismatch");
  }
  if (in.size() < kOnebitHeaderBytes + PackedBytes(count, 1)) {
    return InvalidArgumentError("oss-onebit: truncated payload");
  }
  const uint8_t* packed = in.data() + kOnebitHeaderBytes;
  for (size_t i = 0; i < count; ++i) {
    out[i] = ReadBits(packed, i, 1) != 0 ? pos_mean : neg_mean;
  }
  return OkStatus();
}

StatusOr<size_t> OssOnebitCompressor::EncodedElementCount(
    const ByteBuffer& in) const {
  if (in.size() < kCountHeaderBytes) {
    return InvalidArgumentError("oss-onebit: buffer shorter than header");
  }
  size_t offset = 0;
  return static_cast<size_t>(in.ReadAt<uint32_t>(offset));
}

size_t OssOnebitCompressor::MaxEncodedSize(size_t elements) const {
  return kOnebitHeaderBytes + PackedBytes(elements, 1);
}

double OssOnebitCompressor::CompressionRate(size_t elements) const {
  if (elements == 0) {
    return 1.0;
  }
  return static_cast<double>(MaxEncodedSize(elements)) /
         static_cast<double>(elements * sizeof(float));
}

// ------------------------------------------------------------------- tbq --

StatusOr<size_t> OssTbqCompressor::EncodeInto(std::span<const float> gradient,
                                              std::span<uint8_t> out) const {
  const size_t n = gradient.size();
  const size_t needed = kTbqHeaderBytes + PackedBytes(n, 2);
  if (out.size() < needed) {
    return ResourceExhaustedError("oss-tbq: output capacity too small");
  }
  uint8_t* bytes = out.data();
  const uint32_t count = static_cast<uint32_t>(n);
  std::memcpy(bytes, &count, sizeof(count));
  std::memcpy(bytes + sizeof(count), &threshold_, sizeof(threshold_));

  // Materialize the ternary codes in a temporary array first (extra copy),
  // then pack with generic bit writes.
  Workspace ws;
  PooledBytes codes = ws.bytes(0);
  codes.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (gradient[i] > threshold_) {
      codes[i] = 1;
    } else if (gradient[i] < -threshold_) {
      codes[i] = 2;
    }
  }
  uint8_t* packed = bytes + kTbqHeaderBytes;
  std::memset(packed, 0, PackedBytes(n, 2));
  for (size_t i = 0; i < n; ++i) {
    WriteBits(packed, i * 2, 2, codes[i]);
  }
  return needed;
}

Status OssTbqCompressor::Decode(const ByteBuffer& in,
                                std::span<float> out) const {
  if (in.size() < kTbqHeaderBytes) {
    return InvalidArgumentError("oss-tbq: buffer shorter than header");
  }
  size_t offset = 0;
  const uint32_t count = in.ReadAt<uint32_t>(offset);
  const float tau = in.ReadAt<float>(offset);
  if (out.size() != count) {
    return InvalidArgumentError("oss-tbq: output size mismatch");
  }
  if (in.size() < kTbqHeaderBytes + PackedBytes(count, 2)) {
    return InvalidArgumentError("oss-tbq: truncated payload");
  }
  const uint8_t* packed = in.data() + kTbqHeaderBytes;
  for (size_t i = 0; i < count; ++i) {
    const uint32_t code = ReadBits(packed, i * 2, 2);
    out[i] = code == 1 ? tau : (code == 2 ? -tau : 0.0f);
  }
  return OkStatus();
}

StatusOr<size_t> OssTbqCompressor::EncodedElementCount(
    const ByteBuffer& in) const {
  if (in.size() < kCountHeaderBytes) {
    return InvalidArgumentError("oss-tbq: buffer shorter than header");
  }
  size_t offset = 0;
  return static_cast<size_t>(in.ReadAt<uint32_t>(offset));
}

size_t OssTbqCompressor::MaxEncodedSize(size_t elements) const {
  return kTbqHeaderBytes + PackedBytes(elements, 2);
}

double OssTbqCompressor::CompressionRate(size_t elements) const {
  if (elements == 0) {
    return 1.0;
  }
  return static_cast<double>(MaxEncodedSize(elements)) /
         static_cast<double>(elements * sizeof(float));
}

// -------------------------------------------------------------- terngrad --

StatusOr<size_t> OssTernGradCompressor::EncodeInto(
    std::span<const float> gradient, std::span<uint8_t> out) const {
  if (!(bitwidth_ == 1 || bitwidth_ == 2 || bitwidth_ == 4 || bitwidth_ == 8)) {
    return InvalidArgumentError("oss-terngrad: bitwidth must be 1/2/4/8");
  }
  const size_t n = gradient.size();
  const size_t needed = kTernGradHeaderBytes + PackedBytes(n, bitwidth_);
  if (out.size() < needed) {
    return ResourceExhaustedError("oss-terngrad: output capacity too small");
  }
  uint8_t* bytes = out.data();

  float min_value = n > 0 ? gradient[0] : 0.0f;
  float max_value = min_value;
  for (size_t i = 1; i < n; ++i) {
    min_value = std::min(min_value, gradient[i]);
  }
  for (size_t i = 1; i < n; ++i) {
    max_value = std::max(max_value, gradient[i]);
  }

  const uint32_t count = static_cast<uint32_t>(n);
  const uint8_t bits = static_cast<uint8_t>(bitwidth_);
  size_t write = 0;
  std::memcpy(bytes + write, &count, sizeof(count));
  write += sizeof(count);
  std::memcpy(bytes + write, &bits, sizeof(bits));
  write += sizeof(bits);
  std::memcpy(bytes + write, &min_value, sizeof(min_value));
  write += sizeof(min_value);
  std::memcpy(bytes + write, &max_value, sizeof(max_value));

  const uint32_t levels = (1u << bitwidth_) - 1;
  const float gap =
      levels > 0 ? (max_value - min_value) / static_cast<float>(levels) : 0.0f;

  // Temporary quantized array, then a second packing pass.
  Workspace ws;
  PooledU32 quantized = ws.indices(0);
  quantized.assign(n, 0);
  if (gap > 0.0f) {
    for (size_t i = 0; i < n; ++i) {
      const float r = (gradient[i] - min_value) / gap;
      const float u = HashUniform(seed_, i);
      quantized[i] =
          std::min(levels, static_cast<uint32_t>(std::floor(r + u)));
    }
  }
  uint8_t* packed = bytes + kTernGradHeaderBytes;
  std::memset(packed, 0, PackedBytes(n, bitwidth_));
  for (size_t i = 0; i < n; ++i) {
    WriteBits(packed, i * bitwidth_, bitwidth_, quantized[i]);
  }
  return needed;
}

Status OssTernGradCompressor::Decode(const ByteBuffer& in,
                                     std::span<float> out) const {
  if (in.size() < kTernGradHeaderBytes) {
    return InvalidArgumentError("oss-terngrad: buffer shorter than header");
  }
  size_t offset = 0;
  const uint32_t count = in.ReadAt<uint32_t>(offset);
  const uint8_t bits = in.ReadAt<uint8_t>(offset);
  const float min_value = in.ReadAt<float>(offset);
  const float max_value = in.ReadAt<float>(offset);
  if (out.size() != count) {
    return InvalidArgumentError("oss-terngrad: output size mismatch");
  }
  if (in.size() < kTernGradHeaderBytes + PackedBytes(count, bits)) {
    return InvalidArgumentError("oss-terngrad: truncated payload");
  }
  const uint32_t levels = (1u << bits) - 1;
  const float gap =
      levels > 0 ? (max_value - min_value) / static_cast<float>(levels) : 0.0f;
  const uint8_t* packed = in.data() + kTernGradHeaderBytes;
  for (size_t i = 0; i < count; ++i) {
    const uint32_t q = ReadBits(packed, i * bits, bits);
    out[i] = min_value + static_cast<float>(q) * gap;
  }
  return OkStatus();
}

StatusOr<size_t> OssTernGradCompressor::EncodedElementCount(
    const ByteBuffer& in) const {
  if (in.size() < kCountHeaderBytes) {
    return InvalidArgumentError("oss-terngrad: buffer shorter than header");
  }
  size_t offset = 0;
  return static_cast<size_t>(in.ReadAt<uint32_t>(offset));
}

size_t OssTernGradCompressor::MaxEncodedSize(size_t elements) const {
  return kTernGradHeaderBytes + PackedBytes(elements, bitwidth_);
}

double OssTernGradCompressor::CompressionRate(size_t elements) const {
  if (elements == 0) {
    return 1.0;
  }
  return static_cast<double>(MaxEncodedSize(elements)) /
         static_cast<double>(elements * sizeof(float));
}

// ------------------------------------------------------------------- dgc --

StatusOr<size_t> OssDgcCompressor::EncodeInto(std::span<const float> gradient,
                                              std::span<uint8_t> out) const {
  const size_t n = gradient.size();
  if (n == 0) {
    return SparseEncodeInto(0, {}, {}, out);
  }
  const size_t target_k = std::max<size_t>(
      1,
      static_cast<size_t>(std::ceil(static_cast<double>(n) * ratio_)));

  // Full sort of every index by magnitude: exact but O(n log n).
  Workspace ws;
  PooledU32 order = ws.indices(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return std::abs(gradient[a]) > std::abs(gradient[b]);
  });
  order.resize(std::min(target_k, n));
  std::sort(order.begin(), order.end());

  PooledFloats values = ws.floats(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    values[i] = gradient[order[i]];
  }
  return SparseEncodeInto(static_cast<uint32_t>(n), order.span(),
                          values.span(), out);
}

Status OssDgcCompressor::Decode(const ByteBuffer& in,
                                std::span<float> out) const {
  return SparseDecode(in, out);
}

StatusOr<size_t> OssDgcCompressor::EncodedElementCount(
    const ByteBuffer& in) const {
  ASSIGN_OR_RETURN(SparseView view, SparseParse(in));
  return static_cast<size_t>(view.count);
}

size_t OssDgcCompressor::MaxEncodedSize(size_t elements) const {
  const size_t k = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(static_cast<double>(elements) * ratio_)));
  return SparseEncodedSize(std::min(elements, k));
}

double OssDgcCompressor::CompressionRate(size_t elements) const {
  if (elements == 0) {
    return 1.0;
  }
  return static_cast<double>(MaxEncodedSize(elements)) /
         static_cast<double>(elements * sizeof(float));
}

}  // namespace hipress
